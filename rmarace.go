// Package rmarace is a Go reproduction of "Rethinking Data Race
// Detection in MPI-RMA Programs" (Vinayagame et al., Correctness'23 @
// SC-W 2023): an on-the-fly data-race detector for one-sided (MPI-RMA)
// communication built on an interval BST with a fragmentation+merging
// insertion algorithm, together with the baselines it is evaluated
// against and a simulated MPI runtime to run them on.
//
// # Quick start
//
// Write the SPMD program against the instrumented runtime and run it
// under a detection method:
//
//	report, err := rmarace.Run(2, rmarace.OurContribution, func(p *rmarace.Proc) error {
//		win, err := p.WinCreate("X", 64)
//		if err != nil {
//			return err
//		}
//		if err := win.LockAll(); err != nil {
//			return err
//		}
//		if p.Rank() == 0 {
//			buf := p.Alloc("buf", 32)
//			// MPI_Put(buf[2..11]) ... buf[7] = 1234  -> data race
//			if err := win.Put(1, 0, buf, 2, 10, rmarace.Debug{File: "main.c", Line: 3}); err != nil {
//				return err
//			}
//			if err := buf.Store(7, []byte{0x12}, rmarace.Debug{File: "main.c", Line: 4}); err != nil {
//				return err
//			}
//		}
//		return win.UnlockAll()
//	})
//	if report.Race != nil {
//		fmt.Println(report.Race.Message())
//	}
//
// # Architecture
//
// The detection algorithms live in internal packages re-exported here:
// the paper's contribution (internal/core, Algorithm 1 over the
// interval tree of internal/itree), the legacy RMA-Analyzer
// (internal/detector.Legacy over internal/legacybst), a MUST-RMA
// simulator (vector clocks + shadow memory) and a no-op baseline. The
// simulated MPI runtime is internal/mpi and the PMPI-style
// instrumentation layer internal/rma. Package-level documentation of
// every internal package describes its role; DESIGN.md maps the paper's
// systems and experiments onto them.
package rmarace

import (
	"io"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/obs"
	"rmarace/internal/obs/span"
	"rmarace/internal/rma"
)

// Method selects the analysis compared in the paper's evaluation.
type Method = detector.Method

// The four methods, in the paper's presentation order.
const (
	Baseline        = detector.Baseline
	RMAAnalyzer     = detector.RMAAnalyzer
	MustRMA         = detector.MustRMAMethod
	OurContribution = detector.OurContribution
)

// Methods lists all four methods.
func Methods() []Method { return detector.Methods() }

// Race is a detected data race; Message formats the paper's Fig. 9
// report.
type Race = detector.Race

// Event is one instrumented access, for users driving an Analyzer
// directly (e.g. replaying their own traces).
type Event = detector.Event

// Analyzer is the per-(process, window) detection interface.
type Analyzer = detector.Analyzer

// NewAnalyzer returns the paper's contribution as a standalone
// analyzer: the interval BST with fragmentation and merging.
func NewAnalyzer() *core.Analyzer { return core.New() }

// NewLegacyAnalyzer returns the original RMA-Analyzer emulation.
func NewLegacyAnalyzer() Analyzer { return detector.NewLegacy() }

// Debug locates an access in the instrumented program (file:line).
type Debug = access.Debug

// World is a simulated MPI job; Proc a rank's instrumented handle;
// Buffer an instrumented memory region; Win an MPI-RMA window.
type (
	World   = mpi.World
	Proc    = rma.Proc
	Buffer  = rma.Buffer
	Win     = rma.Win
	Session = rma.Session
	Config  = rma.Config
)

// Buffer allocation options.
var (
	// OnStack marks a buffer as stack-allocated (invisible to the
	// MUST-RMA simulator's local-access instrumentation).
	OnStack = rma.OnStack
	// Untracked marks a buffer as alias-filtered (skipped by the
	// tree-based analyzers, still analysed by MUST-RMA).
	Untracked = rma.Untracked
)

// AccumOp is the reduction operation of the accumulate extension
// (MPI_Accumulate / MPI_Fetch_and_op); same-operation accumulates never
// race with each other.
type AccumOp = access.AccumOp

// Accumulate reduction operations.
const (
	AccumSum     = access.AccumSum
	AccumReplace = access.AccumReplace
	AccumMax     = access.AccumMax
	AccumMin     = access.AccumMin
	AccumBand    = access.AccumBand
)

// MPI_Win_lock modes.
const (
	LockExclusive = rma.LockExclusive
	LockShared    = rma.LockShared
)

// Vector is the vector-datatype descriptor for PutVector/GetVector.
type Vector = rma.Vector

// Op is a collective reduction operator (Allreduce/Reduce).
type Op = mpi.Op

// Collective reduction operators.
const (
	OpSum = mpi.OpSum
	OpMax = mpi.OpMax
	OpMin = mpi.OpMin
)

// Observability surface (package internal/obs): a session configured
// with a Recorder records pipeline metrics; a *Registry recorder
// additionally yields the full metrics snapshot in the run report.
type (
	// Recorder is the metrics sink of Config.Recorder.
	Recorder = obs.Recorder
	// Registry is the concrete lock-free metrics registry.
	Registry = obs.Registry
	// RunReport is the structured run report
	// (schema "rmarace/run-report/v1").
	RunReport = obs.RunReport
)

// NewRegistry returns a fresh metrics registry to pass as
// Config.Recorder.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Live observability (PR 4): a session configured with
// Config.TelemetryAddr serves /metrics, /report, /healthz and
// /debug/pprof while it runs (Session.Telemetry returns the server);
// Config.Spans records causal spans exported with Session.WriteSpans;
// Config.FlightLog keeps a per-(rank, window) flight recorder whose
// snapshot rides on a detected Race.
type (
	// SpanTracer holds a traced run's per-rank span rings; export with
	// Session.WriteSpans or SpanTracer.WriteChromeTrace.
	SpanTracer = span.Tracer
	// FlightEntry is one flight-recorder event attached to Race.FlightLog.
	FlightEntry = detector.FlightEntry
)

// WriteFlight renders a race's flight-recorder snapshot as the human
// postmortem dump, marking the two conflicting accesses — the library
// form of `rmarace postmortem`.
func WriteFlight(w io.Writer, entries []FlightEntry, race *Race) {
	detector.WriteFlight(w, entries, race)
}

// NewWorld creates a simulated MPI job of n ranks.
func NewWorld(n int) *World { return mpi.NewWorld(n) }

// NewSession attaches an analysis session to a world.
func NewSession(w *World, cfg Config) *Session { return rma.NewSession(w, cfg) }

// Report summarises an instrumented run.
type Report struct {
	// Race is the first detected data race, or nil for a clean run.
	Race *Race
	// EpochTime is the cumulative time all ranks spent inside epochs.
	EpochTime time.Duration
	// MaxNodes is the total BST high-water mark over all ranks and
	// windows.
	MaxNodes int
	// Run is the structured run report, built when the session was
	// configured with a Recorder (nil otherwise). With a *Registry
	// recorder it carries the full metrics snapshot.
	Run *RunReport
	// Err is the non-race error that ended the run, if any.
	Err error
}

// Run executes body once per rank under the given method and returns
// the run report. A detected race aborts the program (the simulated
// MPI_Abort) and is reported in Report.Race, not as an error.
func Run(ranks int, method Method, body func(*Proc) error) (Report, error) {
	return RunConfig(ranks, Config{Method: method}, body)
}

// RunConfig is Run with full session configuration.
func RunConfig(ranks int, cfg Config, body func(*Proc) error) (Report, error) {
	world := mpi.NewWorld(ranks)
	session := rma.NewSession(world, cfg)
	err := world.Run(func(mp *mpi.Proc) error { return body(session.Proc(mp)) })
	session.Close()

	var rep Report
	rep.Race = session.Race()
	rep.EpochTime, _ = session.EpochTime()
	rep.MaxNodes = session.TotalMaxNodes()
	if cfg.Recorder != nil {
		rep.Run = session.Report("run")
	}
	if rep.Race == nil && err != nil {
		rep.Err = err
		return rep, err
	}
	return rep, nil
}
