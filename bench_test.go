package rmarace

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. The
// benches run scaled-down workloads so a full -bench pass stays fast;
// the cmd/ tools regenerate every experiment at paper scale (see
// EXPERIMENTS.md for paper-vs-measured numbers). Set
// RMARACE_BENCH_VERTICES to raise the MiniVite benchmark input.
import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/apps/cfdproxy"
	"rmarace/internal/benchkit"
	"rmarace/internal/apps/minivite"
	"rmarace/internal/codes"
	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/engine"
	"rmarace/internal/figure3"
	"rmarace/internal/interval"
	"rmarace/internal/micro"
	"rmarace/internal/store"
	"rmarace/internal/trace"
)

func benchVertices() int {
	if s := os.Getenv("RMARACE_BENCH_VERTICES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 64000
}

// BenchmarkFigure3Matrix derives the full Fig. 3 race-situation matrix.
func BenchmarkFigure3Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := figure3.Table(); len(got) != 2 || len(got[0]) != 10 {
			b.Fatal("bad matrix shape")
		}
	}
}

// BenchmarkPaperCodes runs the paper's example programs (Figs. 2, 8, 9)
// under the contribution once per iteration.
func BenchmarkPaperCodes(b *testing.B) {
	programs := codes.All()
	for i := 0; i < b.N; i++ {
		for _, pr := range programs {
			detected, _, err := pr.Run(OurContribution)
			if err != nil {
				b.Fatal(err)
			}
			if detected != pr.Racy {
				b.Fatalf("%s verdict drifted", pr.Name)
			}
		}
	}
}

// BenchmarkTable2Validation runs the four Table 2 codes under the three
// tools once per iteration.
func BenchmarkTable2Validation(b *testing.B) {
	cases := micro.Suite()
	for i := 0; i < b.N; i++ {
		for _, name := range micro.Table2Cases {
			c := micro.Find(cases, name)
			for _, m := range micro.Table2Methods {
				if _, err := c.Run(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkTable3Suite evaluates the full 154-code suite under the
// three tools per iteration and reports the confusion matrices as
// metrics.
func BenchmarkTable3Suite(b *testing.B) {
	cases := micro.Suite()
	var confs [3]micro.Confusion
	for i := 0; i < b.N; i++ {
		for j, m := range micro.Table2Methods {
			conf, _, err := micro.Evaluate(m, cases)
			if err != nil {
				b.Fatal(err)
			}
			confs[j] = conf
		}
	}
	b.ReportMetric(float64(confs[0].FP), "legacy-FP")
	b.ReportMetric(float64(confs[1].FN), "must-FN")
	b.ReportMetric(float64(confs[2].TP), "ours-TP")
}

// BenchmarkFigure5Code1 measures detecting the Code 1 race end to end.
func BenchmarkFigure5Code1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _ := Run(2, OurContribution, code1)
		if rep.Race == nil {
			b.Fatal("Code 1 race missed")
		}
	}
}

// BenchmarkFigure8bCode2Loop drives Code 2's access stream through the
// contribution analyzer; the nodes metric shows the merged tree size
// (2 in the paper vs 5,002 legacy).
func BenchmarkFigure8bCode2Loop(b *testing.B) {
	var nodes int
	for i := 0; i < b.N; i++ {
		z := core.New()
		iAddr := uint64(1 << 20)
		var tick uint64
		for it := 0; it < 1000; it++ {
			for k := 0; k < 4; k++ {
				tp := access.LocalRead
				if k == 3 {
					tp = access.LocalWrite
				}
				tick++
				z.Access(detector.Event{Acc: access.Access{
					Interval: interval.Span(iAddr, 8), Type: tp, Rank: 0,
					Debug: access.Debug{File: "code2.c", Line: 2 + k},
				}, Time: tick})
			}
			tick++
			z.Access(detector.Event{Acc: access.Access{
				Interval: interval.At(uint64(it)), Type: access.RMAWrite, Rank: 0,
				Debug: access.Debug{File: "code2.c", Line: 3},
			}, Time: tick, CallTime: tick})
		}
		nodes = z.Nodes()
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkFigure9InjectedRace measures MiniVite with the duplicated
// MPI_Put until the abort.
func BenchmarkFigure9InjectedRace(b *testing.B) {
	cfg := minivite.Small()
	cfg.InjectRace = true
	for i := 0; i < b.N; i++ {
		res, err := minivite.Run(cfg, detector.OurContribution)
		if err != nil {
			b.Fatal(err)
		}
		if res.Race == nil {
			b.Fatal("injected race missed")
		}
	}
}

// benchCFDConfig is the scaled Figure 10 workload.
func benchCFDConfig() cfdproxy.Config {
	return cfdproxy.Config{Ranks: 12, Iters: 10, Points: 20, InteriorOps: 200}
}

// BenchmarkFigure10CFDProxy measures the CFD-Proxy epoch time per
// method; the epochs-ms and nodes metrics correspond to the figure's
// bars and the §5.3 node claim.
func BenchmarkFigure10CFDProxy(b *testing.B) {
	for _, m := range detector.Methods() {
		b.Run(m.String(), func(b *testing.B) {
			var res cfdproxy.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = cfdproxy.Run(benchCFDConfig(), m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.EpochTime.Milliseconds()), "epoch-ms")
			b.ReportMetric(float64(res.MaxNodesPerProcess), "nodes")
		})
	}
}

func benchMiniVite(b *testing.B, vertices int, ranks int) {
	for _, m := range detector.Methods() {
		b.Run(fmt.Sprintf("%s/r%d", m, ranks), func(b *testing.B) {
			var res minivite.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = minivite.Run(minivite.Default(ranks, vertices), m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.PerProcessTime.Microseconds())/1000, "proc-ms")
			b.ReportMetric(float64(res.MaxNodesPerProcess), "nodes")
		})
	}
}

// BenchmarkFigure11MiniVite is the strong-scaling series at the small
// input (640,000 vertices in the paper; scaled here, see
// RMARACE_BENCH_VERTICES).
func BenchmarkFigure11MiniVite(b *testing.B) {
	v := benchVertices()
	for _, ranks := range []int{8, 32} {
		benchMiniVite(b, v, ranks)
	}
}

// BenchmarkFigure12MiniViteLarge doubles the input size (1,280,000 in
// the paper).
func BenchmarkFigure12MiniViteLarge(b *testing.B) {
	benchMiniVite(b, 2*benchVertices(), 32)
}

// BenchmarkTable4NodeCounts reports the per-process node counts of the
// two tree-based analyzers on MiniVite.
func BenchmarkTable4NodeCounts(b *testing.B) {
	v := benchVertices()
	for _, ranks := range []int{8, 32} {
		b.Run(fmt.Sprintf("r%d", ranks), func(b *testing.B) {
			var legacy, ours minivite.Result
			var err error
			for i := 0; i < b.N; i++ {
				legacy, err = minivite.Run(minivite.Default(ranks, v), detector.RMAAnalyzer)
				if err != nil {
					b.Fatal(err)
				}
				ours, err = minivite.Run(minivite.Default(ranks, v), detector.OurContribution)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(legacy.MaxNodesPerProcess), "legacy-nodes")
			b.ReportMetric(float64(ours.MaxNodesPerProcess), "ours-nodes")
			b.ReportMetric(100*float64(legacy.MaxNodesPerProcess-ours.MaxNodesPerProcess)/
				float64(legacy.MaxNodesPerProcess), "reduction-pct")
		})
	}
}

// BenchmarkAblationFragmentationOnly compares the full algorithm with
// the merging pass disabled (§4.1's node explosion) on the CFD-like
// adjacent stream.
func BenchmarkAblationFragmentationOnly(b *testing.B) {
	stream := adjacentStream(20000)
	for _, variant := range []struct {
		name string
		mk   func() *core.Analyzer
	}{
		{"full", func() *core.Analyzer { return core.New() }},
		{"no-merge", func() *core.Analyzer { return core.New(core.WithoutMerging()) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				z := variant.mk()
				for _, ev := range stream {
					if r := z.Access(ev); r != nil {
						b.Fatal(r)
					}
				}
				nodes = z.Nodes()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationNoAliasFilter measures the contribution with the
// alias filter disabled: every interior access reaches the tree, the
// cost MUST-RMA always pays.
func BenchmarkAblationNoAliasFilter(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "filtered"
		if disable {
			name = "instrument-all"
		}
		b.Run(name, func(b *testing.B) {
			body := func(p *Proc) error {
				win, err := p.WinCreate("X", 64)
				if err != nil {
					return err
				}
				scratch := p.Alloc("scratch", 4096, Untracked())
				if err := win.LockAll(); err != nil {
					return err
				}
				for k := 0; k < 2048; k++ {
					off := (k * 8) % (scratch.Size() - 8)
					v, err := scratch.LoadU64(off, Debug{File: "interior.c", Line: 9})
					if err != nil {
						return err
					}
					if err := scratch.StoreU64(off, v+1, Debug{File: "interior.c", Line: 10}); err != nil {
						return err
					}
				}
				return win.UnlockAll()
			}
			for i := 0; i < b.N; i++ {
				rep, err := RunConfig(4, Config{Method: OurContribution, DisableAliasFilter: disable}, body)
				if err != nil || rep.Race != nil {
					b.Fatal(err, rep.Race)
				}
			}
		})
	}
}

// BenchmarkAblationAdjacency replays synthetic traces of varying
// adjacency through the contribution, the Fig. 10-vs-Fig. 11 contrast
// in one knob.
func BenchmarkAblationAdjacency(b *testing.B) {
	for _, adj := range []float64{0.0, 0.5, 0.95} {
		b.Run(fmt.Sprintf("adj%.2f", adj), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pr, pw := io.Pipe()
				go func() {
					_, err := trace.Generate(pw, trace.GenConfig{
						Ranks: 4, Events: 20000, Epochs: 1,
						Adjacency: adj, WriteFraction: 0.4, SafeOnly: true, Seed: 3,
					})
					pw.CloseWithError(err)
				}()
				r, err := trace.NewReader(pr)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := trace.Replay(r, func(int) detector.Analyzer { return core.New() })
				if err != nil || res.Race != nil {
					b.Fatal(err, res.Race)
				}
				nodes = res.MaxNodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationStridedMerging runs MiniVite under the plain
// contribution and under the §6(3) regular-section extension; the nodes
// metric shows the compression the paper hypothesises for non-adjacent
// accesses.
func BenchmarkAblationStridedMerging(b *testing.B) {
	cfg := minivite.Default(8, benchVertices()/4)
	variants := []struct {
		name    string
		strided bool
	}{
		{"plain", false},
		{"strided", true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				res, err := minivite.RunOpts(cfg, Config{Method: OurContribution, StridedMerging: v.strided})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.MaxNodesPerProcess
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationUnbalanced contrasts the stabbing query across the
// pluggable store backends at equal size — the balanced AVL interval
// tree against the legacy lower-bound descent (the §4.2 complexity
// claim), plus the shadow-memory and regular-section representations.
func BenchmarkAblationUnbalanced(b *testing.B) {
	const n = 1 << 14
	for _, name := range store.Names() {
		st, err := store.New(name)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			st.Insert(access.Access{Interval: interval.Span(uint64(i)*16, 8), Type: access.RMARead})
		}
		b.Run(name+"-stab", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				iv := interval.Span(uint64(i%n)*16, 8)
				found := 0
				st.Stab(iv, func(access.Access) bool { found++; return true })
				if found == 0 {
					b.Fatal("stab miss")
				}
			}
		})
	}
}

// BenchmarkNotificationThroughput drives a CFD-Proxy-shaped stream of
// adjacent target-side accesses through the analysis engine, unbatched
// (one channel message per access, the pre-pipeline behaviour) versus
// coalesced into DefaultNotifBatch-sized batches, and then — at batch
// 64 — across shard counts, where the engine's per-shard worker pool
// analyses the granule-striped sub-batches in parallel. Batching
// amortises the channel, lock and condvar traffic and lets the
// analyzer's frontier fast path elide the per-access neighbour search;
// sharding spreads the analysis itself over cores.
func BenchmarkNotificationThroughput(b *testing.B) {
	stream := benchkit.AdjacentStream(1 << 14)
	run := func(b *testing.B, batch, shards int) {
		b.ReportAllocs()
		e := engine.New(engine.Config{
			Ranks:       1,
			NewAnalyzer: func(int) detector.Analyzer { return core.Build(core.WithShards(shards)) },
		})
		e.StartReceiver(0)
		defer e.Close()
		b.ResetTimer()
		var sent int64
		for i := 0; i < b.N; {
			// One analysis epoch per pass over the stream.
			for off := 0; off < len(stream) && i < b.N; off += batch {
				end := off + batch
				if end > len(stream) {
					end = len(stream)
				}
				evs := append(e.GetEventBuf(), stream[off:end]...)
				if err := e.Notify(0, evs); err != nil {
					b.Fatal(err)
				}
				sent += int64(end - off)
				i += end - off
			}
			if err := e.WaitReceived(0, sent); err != nil {
				b.Fatal(err)
			}
			e.EpochEnd(0)
		}
	}
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) { run(b, batch, 1) })
	}
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("batch64/shards%d", shards), func(b *testing.B) { run(b, 64, shards) })
	}
}

// BenchmarkInsert compares per-access analyzer cost on the two access
// patterns of the evaluation: adjacent (CFD-Proxy-like) and strided
// (MiniVite-like).
func BenchmarkInsert(b *testing.B) {
	patterns := []struct {
		name   string
		stream []detector.Event
	}{
		{"adjacent", adjacentStream(4096)},
		{"strided", stridedStream(4096)},
	}
	for _, pat := range patterns {
		b.Run("ours/"+pat.name, func(b *testing.B) {
			b.ReportAllocs()
			z := core.New()
			for i := 0; i < b.N; i++ {
				if r := z.Access(pat.stream[i%len(pat.stream)]); r != nil {
					b.Fatal(r)
				}
				if i%len(pat.stream) == len(pat.stream)-1 {
					z.EpochEnd()
				}
			}
		})
		b.Run("legacy/"+pat.name, func(b *testing.B) {
			b.ReportAllocs()
			z := detector.NewLegacy()
			for i := 0; i < b.N; i++ {
				if r := z.Access(pat.stream[i%len(pat.stream)]); r != nil {
					b.Fatal(r)
				}
				if i%len(pat.stream) == len(pat.stream)-1 {
					z.EpochEnd()
				}
			}
		})
	}
}

// adjacentStream emits n adjacent same-line RMA writes (mergeable).
// Shared with the `rmarace bench` CLI suite so both measure identical
// workloads.
func adjacentStream(n int) []detector.Event { return benchkit.AdjacentStream(n) }

// stridedStream emits n strided reads at distinct lines (unmergeable).
func stridedStream(n int) []detector.Event { return benchkit.StridedStream(n) }
