module rmarace

go 1.22
