// Tracereplay: record a synthetic workload's accesses to a trace file,
// then replay the trace under all four detection methods and compare
// their tree sizes and timings — the workflow the rmarace CLI automates
// for real traces.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/trace"
)

func main() {
	log.SetFlags(0)

	path := filepath.Join(os.TempDir(), "rmarace-example-trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := trace.Generate(f, trace.GenConfig{
		Ranks:         4,
		Events:        50000,
		Epochs:        2,
		Adjacency:     0.8, // CFD-like: mostly mergeable
		WriteFraction: 0.4,
		SafeOnly:      true,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d accesses to %s\n", n, path)

	for _, method := range detector.Methods() {
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		r, err := trace.NewReader(rf)
		if err != nil {
			log.Fatal(err)
		}
		shared := detector.NewMustShared(r.Header.Ranks)
		start := time.Now()
		res, err := trace.Replay(r, func(owner int) detector.Analyzer {
			switch method {
			case detector.Baseline:
				return detector.NewBaseline()
			case detector.RMAAnalyzer:
				return detector.NewLegacy()
			case detector.MustRMAMethod:
				return detector.NewMustRMA(shared, owner)
			default:
				return core.New()
			}
		})
		elapsed := time.Since(start)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		status := "clean"
		if res.Race != nil {
			status = "RACE: " + res.Race.Message()
		}
		fmt.Printf("  %-16s %8d max nodes  %10v  %s\n", method, res.MaxNodes, elapsed, status)
	}
}
