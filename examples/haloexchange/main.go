// Haloexchange: a CFD-style stencil halo exchange over MPI-RMA, first
// correct, then with a seeded off-by-one overlap bug.
//
// Each rank owns a strip of cells and exposes two ghost regions in a
// window. Every iteration the rank puts its boundary cells into the
// neighbours' ghost regions. The correct version writes disjoint,
// iteration-indexed slots; the buggy version makes the left put one
// cell too wide so two neighbouring origins write one common byte — a
// cross-origin RMA_Write/RMA_Write race that the detector pins to the
// two Put call sites.
//
// Run with: go run ./examples/haloexchange
package main

import (
	"fmt"
	"log"

	"rmarace"
)

const (
	ranks    = 4
	cells    = 64 // strip width per rank, in bytes
	ghost    = 8  // halo width, in bytes
	iters    = 5
	putLineL = 40 // debug line of the left put
	putLineR = 44
)

func exchange(overlapBug bool) func(p *rmarace.Proc) error {
	return func(p *rmarace.Proc) error {
		// Window layout per rank: [left ghost | right ghost] per
		// iteration, so slots are never rewritten within the epoch.
		// One spare slot of slack keeps the buggy variant's spill
		// inside the window (the bug is an overlap, not an
		// out-of-bounds).
		win, err := p.WinCreate("halo", 2*ghost*(iters+1))
		if err != nil {
			return err
		}
		strip := p.Alloc("strip", cells)

		if err := win.LockAll(); err != nil {
			return err
		}
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		right := (p.Rank() + 1) % p.Size()
		for it := 0; it < iters; it++ {
			width := ghost
			if overlapBug {
				// One byte too many: spills into the slot the right
				// neighbour's put also writes.
				width = ghost + 1
			}
			// Left boundary cells -> left neighbour's right ghost.
			if err := win.Put(left, 2*ghost*it+ghost, strip, 0, width, rmarace.Debug{File: "haloexchange.go", Line: putLineL}); err != nil {
				return err
			}
			// Right boundary cells -> right neighbour's left ghost.
			if err := win.Put(right, 2*ghost*it, strip, cells-ghost, ghost, rmarace.Debug{File: "haloexchange.go", Line: putLineR}); err != nil {
				return err
			}
		}
		return win.UnlockAll()
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("correct halo exchange:")
	report, err := rmarace.Run(ranks, rmarace.OurContribution, exchange(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  clean run, %d BST nodes high-water across ranks, %.3fms in epochs\n",
		report.MaxNodes, float64(report.EpochTime.Microseconds())/1000)

	fmt.Println("with the off-by-one overlap bug:")
	report, _ = rmarace.Run(ranks, rmarace.OurContribution, exchange(true))
	if report.Race == nil {
		log.Fatal("expected a race")
	}
	fmt.Printf("  RACE: %s\n", report.Race.Message())
}
