// Graphcommunity: a MiniVite-style distributed graph community
// detection exchange, run clean and with the paper's Fig. 9 injected
// duplicate MPI_Put.
//
// Each rank owns a slice of vertices. After a local Louvain-style
// sweep, boundary vertices push their community assignment into a
// dedicated slot of the ghost owner's window. The injected-bug variant
// issues the same MPI_Put twice from two source lines, reproducing the
// error report of Fig. 9: two RMA_WRITEs on the same target interval.
//
// Run with: go run ./examples/graphcommunity
package main

import (
	"fmt"
	"log"

	"rmarace"
)

const (
	ranks          = 4
	verticesPerRnk = 200
	slotStride     = 16
)

func community(injectDuplicatePut bool) func(p *rmarace.Proc) error {
	return func(p *rmarace.Proc) error {
		segBytes := verticesPerRnk * slotStride
		win, err := p.WinCreate("commwin", (p.Size()-1)*segBytes)
		if err != nil {
			return err
		}
		// Vertex state: {community, degree, weight} records.
		state := p.Alloc("state", verticesPerRnk*24)
		// Interior scratch the alias analysis filters out.
		scratch := p.Alloc("scratch", 1024, rmarace.Untracked())

		if err := win.LockAll(); err != nil {
			return err
		}
		injected := false
		for v := 0; v < verticesPerRnk; v++ {
			// Local sweep: pick the best community for v (simulated by
			// a scratch update plus one state store).
			if err := scratch.StoreU64((v*8)%(scratch.Size()-8), uint64(v), rmarace.Debug{File: "dspl.hpp", Line: 590}); err != nil {
				return err
			}
			if err := state.StoreU64(v*24, uint64(v%7), rmarace.Debug{File: "dspl.hpp", Line: 601}); err != nil {
				return err
			}

			// Boundary vertices (every third) push their community to
			// the ghost owner.
			if v%3 != 0 {
				continue
			}
			target := (p.Rank() + 1 + v%(p.Size()-1)) % p.Size()
			if target == p.Rank() {
				target = (target + 1) % p.Size()
			}
			seg := p.Rank()
			if p.Rank() > target {
				seg--
			}
			slot := seg*segBytes + v*slotStride
			if err := win.Put(target, slot, state, v*24+8, 8, rmarace.Debug{File: "dspl.hpp", Line: 612}); err != nil {
				return err
			}
			if injectDuplicatePut && !injected && v > verticesPerRnk/2 {
				injected = true
				if err := win.Put(target, slot, state, v*24+8, 8, rmarace.Debug{File: "dspl.hpp", Line: 614}); err != nil {
					return err
				}
			}
		}
		return win.UnlockAll()
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("clean community-detection exchange:")
	report, err := rmarace.Run(ranks, rmarace.OurContribution, community(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  no race; %d BST nodes high-water across ranks\n", report.MaxNodes)

	fmt.Println("with the duplicated MPI_Put of Fig. 9 (Code 3):")
	report, _ = rmarace.Run(ranks, rmarace.OurContribution, community(true))
	if report.Race == nil {
		log.Fatal("expected the injected race")
	}
	fmt.Printf("  %s\n", report.Race.Message())
}
