// Quickstart: detect the paper's Code 1 data race with the public API.
//
// The program is Fig. 8a of the paper: process 0 loads buf[4], issues
// an MPI_Put whose source interval buf[2..11] is read asynchronously,
// and then stores to buf[7] while the Put may still be reading it — a
// data race the original RMA-Analyzer misses and the new insertion
// algorithm catches.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmarace"
)

func main() {
	log.SetFlags(0)

	program := func(p *rmarace.Proc) error {
		win, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("buf", 32)

			// temp = buf[4]
			if _, err := buf.Load(4, 1, rmarace.Debug{File: "quickstart.go", Line: 30}); err != nil {
				return err
			}
			// MPI_Put(buf[2], 10, X) — reads buf[2..11] asynchronously.
			if err := win.Put(1, 0, buf, 2, 10, rmarace.Debug{File: "quickstart.go", Line: 33}); err != nil {
				return err
			}
			// buf[7] = 1234 — races with the Put's read.
			if err := buf.Store(7, []byte{0xd2}, rmarace.Debug{File: "quickstart.go", Line: 36}); err != nil {
				return err
			}
		}
		return win.UnlockAll()
	}

	fmt.Println("running Code 1 under both detectors:")
	for _, method := range []rmarace.Method{rmarace.RMAAnalyzer, rmarace.OurContribution} {
		report, err := rmarace.Run(2, method, program)
		if err != nil && report.Race == nil {
			log.Fatalf("%v: %v", method, err)
		}
		if report.Race != nil {
			fmt.Printf("  %-16s -> RACE: %s\n", method, report.Race.Message())
		} else {
			fmt.Printf("  %-16s -> no error found\n", method)
		}
	}
}
