// Bfsfrontier: a Graph500-style level-synchronised distributed BFS over
// MPI-RMA — the workload class the paper's background motivates
// (Graph500's MPI-3 RMA port gained 2x, §2.1). Each level runs in one
// fence epoch:
//
//   - vertex ownership is block-cyclic; a rank claims a neighbour by an
//     atomic MPI_Fetch_and_op(SUM) on the owner's visited table —
//     same-operation atomics never race, so concurrent claims of one
//     vertex are safe and exactly one claimer sees old == 0;
//   - the claimer MPI_Puts the vertex id into its own inbox segment at
//     the owner, then MPI_Win_fence separates the level: reading the
//     inboxes in the next epoch cannot race with the previous level's
//     puts.
//
// The run is checked under the paper's detector; a -race-bug variant
// drops the atomic claim (plain Get+Put read-modify-write), which the
// detector reports immediately.
//
// Run with: go run ./examples/bfsfrontier
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"rmarace"
)

const (
	ranks    = 4
	vertices = 4096 // global vertex count
	degree   = 4    // synthetic out-degree
	inboxCap = 2048 // per-origin inbox slots at each owner
)

func owner(v int) int    { return v % ranks }
func localIdx(v int) int { return v / ranks }
func neighbor(v, k int) int {
	// Deterministic pseudo-random expander-ish neighbours.
	x := uint64(v)*2862933555777941757 + uint64(k)*3037000493 + 1
	return int(x % uint64(vertices))
}

func bfs(atomicClaims bool, levelsOut *int, visitedOut *int) func(p *rmarace.Proc) error {
	return func(p *rmarace.Proc) error {
		me := p.Rank()
		nLocal := (vertices + ranks - 1) / ranks

		// visited window: one 8-byte claim slot per local vertex.
		visited, err := p.WinCreate("visited", nLocal*8)
		if err != nil {
			return err
		}
		// inbox window: one segment of inboxCap vertex ids per origin
		// plus one count slot per origin — double-buffered by level
		// parity, so draining one half never shares locations with the
		// next level's puts into the other half within one fence epoch.
		segBytes := inboxCap * 8
		halfBytes := ranks*segBytes + ranks*8
		inbox, err := p.WinCreate("inbox", 2*halfBytes)
		if err != nil {
			return err
		}
		scratch := p.Alloc("scratch", 16)
		// Staging slots for enqueued ids: one distinct slot per enqueue
		// per level, so a slot is never stored to while an earlier
		// put may still be reading it (that would be the paper's
		// Code 1 pattern).
		ids := p.Alloc("ids", ranks*inboxCap*8)

		if err := visited.Fence(); err != nil {
			return err
		}
		if err := inbox.Fence(); err != nil {
			return err
		}

		// Level 0: the root's owner claims it with the same atomic the
		// exploration uses — the visited table is only ever touched by
		// same-operation accumulates.
		var frontier []int
		const root = 1
		if me == owner(root) {
			if _, err := visited.FetchAndOp(me, localIdx(root)*8, 1, rmarace.AccumSum, rmarace.Debug{File: "bfs.c", Line: 30}); err != nil {
				return err
			}
			frontier = append(frontier, root)
		}

		levels := 0
		for {
			half := (levels % 2) * halfBytes
			// Explore: claim unvisited neighbours at their owners and
			// enqueue them in our inbox segment there.
			counts := make([]int, ranks)
			enq := 0
			for _, u := range frontier {
				for k := 0; k < degree; k++ {
					v := neighbor(u, k)
					o := owner(v)
					slot := localIdx(v) * 8
					var old uint64
					if atomicClaims {
						var err error
						old, err = visited.FetchAndOp(o, slot, 1, rmarace.AccumSum, rmarace.Debug{File: "bfs.c", Line: 44})
						if err != nil {
							return err
						}
					} else {
						// BUG: non-atomic read-modify-write claim.
						if err := visited.Get(scratch, 0, o, slot, 8, rmarace.Debug{File: "bfs.c", Line: 48}); err != nil {
							return err
						}
						old = binary.LittleEndian.Uint64(scratch.Raw())
						binary.LittleEndian.PutUint64(scratch.Raw()[8:], old+1)
						if err := visited.Put(o, slot, scratch, 8, 8, rmarace.Debug{File: "bfs.c", Line: 52}); err != nil {
							return err
						}
					}
					if old != 0 || counts[o] >= inboxCap {
						continue
					}
					// First claimer: enqueue v at its owner.
					if err := ids.StoreU64(enq*8, uint64(v), rmarace.Debug{File: "bfs.c", Line: 58}); err != nil {
						return err
					}
					if err := inbox.Put(o, half+me*segBytes+counts[o]*8, ids, enq*8, 8, rmarace.Debug{File: "bfs.c", Line: 60}); err != nil {
						return err
					}
					counts[o]++
					enq++
				}
			}
			// Publish per-owner counts, one slot per (origin, owner).
			for o := 0; o < ranks; o++ {
				binary.LittleEndian.PutUint64(scratch.Raw(), uint64(counts[o]))
				if err := inbox.Put(o, half+ranks*segBytes+me*8, scratch, 0, 8, rmarace.Debug{File: "bfs.c", Line: 67}); err != nil {
					return err
				}
			}

			// Level boundary: fence completes all puts and atomics.
			if err := visited.Fence(); err != nil {
				return err
			}
			if err := inbox.Fence(); err != nil {
				return err
			}

			// Drain the inboxes into the next frontier (a fresh epoch:
			// these instrumented reads cannot race with last level's
			// puts).
			frontier = frontier[:0]
			for o := 0; o < ranks; o++ {
				cnt, err := inbox.Buffer().LoadU64(half+ranks*segBytes+o*8, rmarace.Debug{File: "bfs.c", Line: 80})
				if err != nil {
					return err
				}
				for i := 0; i < int(cnt); i++ {
					raw, err := inbox.Buffer().Load(half+o*segBytes+i*8, 8, rmarace.Debug{File: "bfs.c", Line: 84})
					if err != nil {
						return err
					}
					frontier = append(frontier, int(binary.LittleEndian.Uint64(raw)))
				}
			}
			levels++

			// Global termination: any rank with a non-empty frontier?
			sum, err := p.Allreduce([]int64{int64(len(frontier))}, rmarace.OpSum)
			if err != nil {
				return err
			}
			if sum[0] == 0 {
				break
			}
			if levels > 64 {
				return fmt.Errorf("bfs: no convergence")
			}
		}

		if err := visited.FenceEnd(); err != nil {
			return err
		}
		if err := inbox.FenceEnd(); err != nil {
			return err
		}

		// Count visited vertices (uninstrumented verification read).
		local := 0
		for i := 0; i < nLocal; i++ {
			if binary.LittleEndian.Uint64(visited.Buffer().Raw()[i*8:]) != 0 {
				local++
			}
		}
		total, err := p.Allreduce([]int64{int64(local)}, rmarace.OpSum)
		if err != nil {
			return err
		}
		if me == 0 {
			*levelsOut = levels
			*visitedOut = int(total[0])
		}
		return nil
	}
}

func main() {
	log.SetFlags(0)
	raceBug := flag.Bool("race-bug", false, "replace the atomic claim with a racy Get/Put read-modify-write")
	flag.Parse()

	var levels, visited int
	report, err := rmarace.Run(ranks, rmarace.OurContribution, bfs(!*raceBug, &levels, &visited))
	if *raceBug {
		if report.Race == nil {
			log.Fatal("expected the read-modify-write race")
		}
		fmt.Printf("RACE: %s\n", report.Race.Message())
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	if report.Race != nil {
		log.Fatalf("unexpected race: %v", report.Race)
	}
	fmt.Printf("BFS over %d vertices on %d ranks: %d levels, %d vertices reached; no data races\n",
		vertices, ranks, levels, visited)
}
