// Atomiccounter: a distributed work queue built from the MPI-RMA
// extensions — MPI_Fetch_and_op claims task indices from an atomic
// counter on rank 0 and per-target exclusive locks guard a shared
// result table. Same-operation atomics never race; the buggy variant
// replaces the fetch-and-op with a Get/Put pair, the classic
// read-modify-write race the detector catches at once.
//
// Run with: go run ./examples/atomiccounter
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"rmarace"
)

const (
	ranks = 4
	tasks = 24
)

// worker claims tasks from the shared counter and records results.
func worker(atomic bool) func(p *rmarace.Proc) error {
	return func(p *rmarace.Proc) error {
		counter, err := p.WinCreate("counter", 8)
		if err != nil {
			return err
		}
		results, err := p.WinCreate("results", tasks*8)
		if err != nil {
			return err
		}
		if err := counter.LockAll(); err != nil {
			return err
		}
		if err := results.LockAll(); err != nil {
			return err
		}

		scratch := p.Alloc("scratch", 16)
		for {
			var task uint64
			if atomic {
				// MPI_Fetch_and_op: one atomic claim.
				t, err := counter.FetchAndOp(0, 0, 1, rmarace.AccumSum, rmarace.Debug{File: "queue.c", Line: 21})
				if err != nil {
					return err
				}
				task = t
			} else {
				// Buggy: read-modify-write with Get and Put — two
				// workers can claim the same task, and the detector
				// flags the overlapping accesses.
				if err := counter.Get(scratch, 0, 0, 0, 8, rmarace.Debug{File: "queue.c", Line: 27}); err != nil {
					return err
				}
				task = binary.LittleEndian.Uint64(scratch.Raw())
				binary.LittleEndian.PutUint64(scratch.Raw()[8:], task+1)
				if err := counter.Put(0, 0, scratch, 8, 8, rmarace.Debug{File: "queue.c", Line: 31}); err != nil {
					return err
				}
			}
			if task >= tasks {
				break
			}
			// Record the result under an exclusive lock on the table
			// owner (tasks are sharded by owner).
			owner := int(task) % p.Size()
			binary.LittleEndian.PutUint64(scratch.Raw(), task*task)
			if err := results.Lock(rmarace.LockExclusive, owner); err != nil {
				return err
			}
			if err := results.Put(owner, int(task)*8, scratch, 0, 8, rmarace.Debug{File: "queue.c", Line: 43}); err != nil {
				return err
			}
			if err := results.Unlock(owner); err != nil {
				return err
			}
		}

		if err := results.UnlockAll(); err != nil {
			return err
		}
		return counter.UnlockAll()
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("atomic work queue (fetch-and-op + exclusive locks):")
	report, err := rmarace.Run(ranks, rmarace.OurContribution, worker(true))
	if err != nil {
		log.Fatal(err)
	}
	if report.Race != nil {
		log.Fatalf("unexpected race: %v", report.Race)
	}
	fmt.Printf("  clean: %d tasks processed, %.3fms in epochs\n", tasks, float64(report.EpochTime.Microseconds())/1000)

	fmt.Println("broken work queue (Get/Put read-modify-write):")
	report, _ = rmarace.Run(ranks, rmarace.OurContribution, worker(false))
	if report.Race == nil {
		log.Fatal("expected the read-modify-write race")
	}
	fmt.Printf("  RACE: %s\n", report.Race.Message())
}
