// Command microbench regenerates the paper's validation results over
// the 154-code microbenchmark suite: Table 2 (tool-by-tool verdicts on
// four named codes) and Table 3 (FP/FN/TP/TN per tool).
//
// Usage:
//
//	microbench            # both tables
//	microbench -table2    # Table 2 only
//	microbench -table3    # Table 3 only
//	microbench -mismatches must-rma   # list one tool's FP/FN cases
//	microbench -list      # list all 154 cases with ground truth
//	microbench -figure3   # regenerate the Fig. 3 race-situation matrix
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rmarace/internal/detector"
	"rmarace/internal/figure3"
	"rmarace/internal/micro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("microbench: ")
	table2 := flag.Bool("table2", false, "print Table 2 only")
	table3 := flag.Bool("table3", false, "print Table 3 only")
	list := flag.Bool("list", false, "list all suite cases with ground truth")
	fig3 := flag.Bool("figure3", false, "print the Figure 3 race-situation matrix")
	doc := flag.Bool("doc", false, "print the markdown catalogue of all 154 suite codes")
	mismatches := flag.String("mismatches", "", "list FP/FN cases for a tool: rma-analyzer|must-rma|our-contribution")
	flag.Parse()

	if *fig3 {
		figure3.Write(os.Stdout)
		return
	}
	if *doc {
		micro.WriteSuiteDoc(os.Stdout)
		return
	}

	if *list {
		for _, c := range micro.Suite() {
			verdict := "safe"
			if c.Racy {
				verdict = "race"
			}
			fmt.Printf("%-70s %s\n", c.Name, verdict)
		}
		return
	}
	if *mismatches != "" {
		method, err := methodByName(*mismatches)
		if err != nil {
			log.Fatal(err)
		}
		if err := micro.WriteMismatches(os.Stdout, method); err != nil {
			log.Fatal(err)
		}
		return
	}

	both := !*table2 && !*table3
	if *table2 || both {
		fmt.Println("Table 2: detection results on four microbenchmark codes (yes: error detected, x: none)")
		if err := micro.WriteTable2(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *table3 || both {
		fmt.Println("Table 3: confusion matrix over the microbenchmark suite")
		if err := micro.WriteTable3(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func methodByName(name string) (detector.Method, error) {
	switch name {
	case "rma-analyzer":
		return detector.RMAAnalyzer, nil
	case "must-rma":
		return detector.MustRMAMethod, nil
	case "our-contribution":
		return detector.OurContribution, nil
	case "baseline":
		return detector.Baseline, nil
	}
	return 0, fmt.Errorf("unknown tool %q", name)
}
