// Command tracegen writes a synthetic memory-access trace for the
// rmarace replay CLI and the detector benchmarks.
//
// Usage:
//
//	tracegen -o trace.jsonl -ranks 8 -events 100000 -epochs 4 -adjacency 0.8
//	tracegen -o racy.jsonl -ranks 2 -events 100 -racy   # plant a deterministic race
//	tracegen -o big.bin -format bin -ranks 10000 -owners 10000 -skew 0.7 \
//	         -events 1250000 -epochs 4   # 5M-event binary scale-sweep trace
package main

import (
	"flag"
	"log"
	"os"

	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	out := flag.String("o", "-", "output file (- for stdout)")
	format := flag.String("format", "json", "trace format: json (JSON Lines) or bin (RMTB binary)")
	cfg := trace.GenConfig{}
	flag.IntVar(&cfg.Ranks, "ranks", 4, "simulated rank count")
	flag.IntVar(&cfg.Events, "events", 10000, "access events per epoch")
	flag.IntVar(&cfg.Epochs, "epochs", 1, "number of epochs")
	flag.IntVar(&cfg.Owners, "owners", 1, "distinct window owners the accesses spread over (<= ranks)")
	flag.Float64Var(&cfg.OwnerSkew, "skew", 0, "owner skew in [0,1): 0 uniform, near 1 concentrates accesses on owner 0 and leaves the tail cold")
	flag.Float64Var(&cfg.Adjacency, "adjacency", 0.5, "fraction of adjacent (mergeable) accesses")
	flag.Float64Var(&cfg.WriteFraction, "writes", 0.5, "fraction of strided RMA accesses that write")
	flag.BoolVar(&cfg.SafeOnly, "safe", true, "partition the address space so the trace is race-free")
	flag.BoolVar(&cfg.PlantRace, "racy", false, "plant one deterministic racing write pair in the last epoch (for postmortem/flight-recorder demos)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	var n int
	var err error
	switch *format {
	case "json":
		n, err = trace.Generate(w, cfg)
	case "bin":
		var bw *tracebin.Writer
		bw, err = tracebin.NewWriter(w, trace.Header{Ranks: cfg.Ranks, Window: "synthetic"})
		if err == nil {
			n, err = trace.GenerateTo(bw, cfg)
		}
	default:
		log.Fatalf("unknown format %q (want json or bin)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d events (%s)", n, *format)
}
