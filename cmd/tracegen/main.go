// Command tracegen writes a synthetic memory-access trace for the
// rmarace replay CLI and the detector benchmarks.
//
// Usage:
//
//	tracegen -o trace.jsonl -ranks 8 -events 100000 -epochs 4 -adjacency 0.8
//	tracegen -o racy.jsonl -ranks 2 -events 100 -racy   # plant a deterministic race
package main

import (
	"flag"
	"log"
	"os"

	"rmarace/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	out := flag.String("o", "-", "output file (- for stdout)")
	cfg := trace.GenConfig{}
	flag.IntVar(&cfg.Ranks, "ranks", 4, "simulated rank count")
	flag.IntVar(&cfg.Events, "events", 10000, "access events per epoch")
	flag.IntVar(&cfg.Epochs, "epochs", 1, "number of epochs")
	flag.Float64Var(&cfg.Adjacency, "adjacency", 0.5, "fraction of adjacent (mergeable) accesses")
	flag.Float64Var(&cfg.WriteFraction, "writes", 0.5, "fraction of strided RMA accesses that write")
	flag.BoolVar(&cfg.SafeOnly, "safe", true, "partition the address space so the trace is race-free")
	flag.BoolVar(&cfg.PlantRace, "racy", false, "plant one deterministic racing write pair in the last epoch (for postmortem/flight-recorder demos)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	n, err := trace.Generate(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d events", n)
}
