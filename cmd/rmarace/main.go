// Command rmarace is the reproduction's main CLI: it replays recorded
// access traces under any of the four analysis methods and reports
// races, node counts and analysis statistics.
//
// Usage:
//
//	rmarace replay -method our-contribution trace.jsonl
//	rmarace replay -compare trace.jsonl
//	rmarace replay -shards 8 trace.jsonl   # sharded contribution analyzer
//	rmarace replay -report out.json trace.jsonl   # write a structured run report
//	rmarace stats out.json   # summarise a run report
//	rmarace demo    # run the paper's Code 1 and print the report
//	rmarace codes   # run every example program of the paper under all tools
//	rmarace bench   # run the perf suite and write BENCH_PR2.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rmarace"
	"rmarace/internal/benchkit"
	"rmarace/internal/codes"
	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/rma"
	"rmarace/internal/store"
	"rmarace/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rmarace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "replay":
		replayCmd(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "demo":
		demoCmd()
	case "codes":
		codesCmd()
	case "bench":
		benchCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rmarace replay [-method NAME] [-store NAME] [-shards K] [-compare] [-report FILE] TRACE
  rmarace stats REPORT
  rmarace demo
  rmarace codes
  rmarace bench [-o FILE] [-vertices N]

methods: baseline, rma-analyzer, must-rma, our-contribution
stores (tree-based methods): avl (default), legacy, shadow, strided
-shards splits the contribution analyzer into K address-space shards
-report records analysis metrics and writes a structured run report
        (schema rmarace/run-report/v1); summarise it with rmarace stats`)
	os.Exit(2)
}

func newAnalyzer(method detector.Method, ranks int, storeName string, shards int, rec obs.Recorder) func(int) detector.Analyzer {
	var shared *detector.MustShared
	if method == detector.MustRMAMethod {
		shared = detector.NewMustShared(ranks)
	}
	recording := rec != nil && rec.Enabled()
	// Each analyzer owns its backend, so one is built per owner.
	newStore := func(owner int) store.AccessStore {
		st, err := store.New(storeName)
		if err != nil {
			log.Fatal(err)
		}
		if recording {
			st = store.Instrument(st, rec, owner)
		}
		return st
	}
	return func(owner int) detector.Analyzer {
		switch method {
		case detector.Baseline:
			return detector.NewBaseline()
		case detector.RMAAnalyzer:
			if storeName != "" {
				return detector.NewLegacyWithStore(newStore(owner))
			}
			return detector.NewLegacy()
		case detector.MustRMAMethod:
			return detector.NewMustRMA(shared, owner)
		default:
			var opts []core.Option
			if storeName != "" {
				opts = append(opts, core.WithStoreFactory(func() store.AccessStore { return newStore(owner) }))
			}
			if shards > 1 {
				opts = append(opts, core.WithShards(shards))
			}
			if recording {
				opts = append(opts, core.WithRecorder(rec, owner))
			}
			return core.Build(opts...)
		}
	}
}

func replayOne(path string, method detector.Method, storeName string, shards int, reportPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if reportPath != "" {
		reg = obs.NewRegistry()
	}
	start := time.Now()
	res, err := trace.Replay(r, newAnalyzer(method, r.Header.Ranks, storeName, shards, obs.OrDisabled(reg)))
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%-16s %8d events  %3d epochs  %8d max nodes  %10v", method, res.Events, res.Epochs, res.MaxNodes, elapsed)
	if res.Race != nil {
		fmt.Printf("\n  RACE: %s", res.Race.Message())
	}
	fmt.Println()
	if reportPath != "" {
		rep := replayReport(r.Header, method, res, reg)
		out, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		log.Printf("wrote %s", reportPath)
	}
	return nil
}

// replayReport converts a replay result plus the metrics registry into
// the structured run report written by -report.
func replayReport(h trace.Header, method detector.Method, res trace.ReplayResult, reg *obs.Registry) *obs.RunReport {
	rep := &obs.RunReport{
		Schema:   obs.ReportSchema,
		Source:   "replay",
		Method:   method.String(),
		Ranks:    h.Ranks,
		Events:   int64(res.Events),
		Epochs:   int64(res.Epochs),
		MaxNodes: int64(res.MaxNodes),
	}
	// Older traces may omit the window name; the schema rejects
	// anonymous windows, so only emit the section when named.
	if h.Window != "" {
		rep.Windows = []obs.WindowReport{{
			Name:          h.Window,
			TotalMaxNodes: res.MaxNodes,
			Accesses:      uint64(res.Events),
		}}
	}
	if reg != nil {
		rep.EpochLatency = obs.EpochLatencyFromRegistry(reg)
		rep.Metrics = reg.Snapshot()
	}
	if res.Race != nil {
		rep.Races = append(rep.Races, rma.RaceReport(res.Race))
	}
	return rep
}

// statsCmd reads a run report written by `replay -report`, `bench` or
// the library and prints its human summary.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		log.Fatal(err)
	}
	rep.Summary(os.Stdout)
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	methodName := fs.String("method", "our-contribution", "analysis method")
	storeName := fs.String("store", "", "storage backend for the tree-based methods (avl, legacy, shadow, strided)")
	shards := fs.Int("shards", 1, "address-space shard count for the contribution analyzer (power of two; 1 = serial)")
	compare := fs.Bool("compare", false, "replay under all four methods")
	report := fs.String("report", "", "write a structured run report (JSON) to this path")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if _, err := store.New(*storeName); err != nil {
		log.Fatal(err)
	}

	if *compare {
		if *report != "" {
			log.Fatal("-report and -compare are mutually exclusive (one report per replay)")
		}
		for _, m := range detector.Methods() {
			if err := replayOne(path, m, *storeName, *shards, ""); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	method, err := methodByName(*methodName)
	if err != nil {
		log.Fatal(err)
	}
	if err := replayOne(path, method, *storeName, *shards, *report); err != nil {
		log.Fatal(err)
	}
}

// benchCmd runs the perf suite (insert hot path, sharded notification
// pipeline, Figure 10, Table 4) and writes the JSON snapshot.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "BENCH_PR2.json", "output JSON path")
	vertices := fs.Int("vertices", 0, "MiniVite benchmark input size (0 = scaled default)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	rep := benchkit.Suite(benchkit.Options{Vertices: *vertices})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-44s %12d  %10.1f ns/op  %6d B/op  %4d allocs/op", r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Metrics {
			fmt.Printf("  %s=%.1f", k, v)
		}
		fmt.Println()
	}
	log.Printf("wrote %s", *out)
}

func methodByName(name string) (detector.Method, error) {
	switch name {
	case "baseline":
		return detector.Baseline, nil
	case "rma-analyzer":
		return detector.RMAAnalyzer, nil
	case "must-rma":
		return detector.MustRMAMethod, nil
	case "our-contribution":
		return detector.OurContribution, nil
	}
	return 0, fmt.Errorf("unknown method %q", name)
}

// demoCmd runs the paper's Code 1 under the contribution and the
// legacy tool, showing the accuracy fix end to end.
func demoCmd() {
	body := func(p *rmarace.Proc) error {
		win, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("buf", 32)
			if _, err := buf.Load(4, 1, rmarace.Debug{File: "code1.c", Line: 4}); err != nil {
				return err
			}
			if err := win.Put(1, 0, buf, 2, 10, rmarace.Debug{File: "code1.c", Line: 5}); err != nil {
				return err
			}
			if err := buf.Store(7, []byte{0x12}, rmarace.Debug{File: "code1.c", Line: 6}); err != nil {
				return err
			}
		}
		return win.UnlockAll()
	}

	fmt.Println("Code 1 (Fig. 8a): Load(buf[4]); MPI_Put(buf[2..11]); buf[7] = 0x12")
	for _, m := range []rmarace.Method{rmarace.RMAAnalyzer, rmarace.OurContribution} {
		rep, err := rmarace.Run(2, m, body)
		if err != nil && rep.Race == nil {
			log.Fatal(err)
		}
		if rep.Race != nil {
			fmt.Printf("  %-16s -> %s\n", m, rep.Race.Message())
		} else {
			fmt.Printf("  %-16s -> no error found (false negative)\n", m)
		}
	}
}

// codesCmd runs every example program from the paper under the three
// tools and prints the verdict matrix.
func codesCmd() {
	fmt.Printf("%-14s %-38s %-8s %-14s %-10s %s\n",
		"program", "paper", "truth", "RMA-Analyzer", "MUST-RMA", "Our Contribution")
	for _, pr := range codes.All() {
		truth := "safe"
		if pr.Racy {
			truth = "race"
		}
		verdicts := make([]string, 0, 3)
		for _, m := range []detector.Method{detector.RMAAnalyzer, detector.MustRMAMethod, detector.OurContribution} {
			detected, _, err := pr.Run(m)
			if err != nil {
				log.Fatalf("%s under %v: %v", pr.Name, m, err)
			}
			if detected {
				verdicts = append(verdicts, "error")
			} else {
				verdicts = append(verdicts, "-")
			}
		}
		fmt.Printf("%-14s %-38s %-8s %-14s %-10s %s\n",
			pr.Name, pr.Paper, truth, verdicts[0], verdicts[1], verdicts[2])
	}
}
