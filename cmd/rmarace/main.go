// Command rmarace is the reproduction's main CLI: it replays recorded
// access traces under any of the four analysis methods and reports
// races, node counts and analysis statistics.
//
// Usage:
//
//	rmarace replay -method our-contribution trace.jsonl
//	rmarace replay -compare trace.jsonl
//	rmarace replay -shards 8 trace.jsonl   # sharded contribution analyzer
//	rmarace replay -report out.json trace.jsonl   # write a structured run report
//	rmarace replay -telemetry :9090 -spans spans.json -flight 64 trace.jsonl
//	rmarace replay -batch 64 -evict 2 -compact big.bin   # bounded-memory streaming replay
//	rmarace convert -o trace.bin trace.jsonl   # JSON <-> binary trace conversion
//	rmarace stats out.json   # summarise a run report
//	rmarace stats -format prom out.json   # Prometheus text exposition
//	rmarace postmortem out.json   # render a race's flight-recorder dump
//	rmarace demo    # run the paper's Code 1 and print the report
//	rmarace codes   # run every example program of the paper under all tools
//	rmarace bench   # run the perf suite and write BENCH_PR8.json
//	rmarace bench -telemetry :9090 -spans spans.json
//	rmarace serve -addr :8080   # multi-tenant analysis daemon
//	rmarace submit -addr http://host:8080 trace.bin   # analyse via a daemon
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rmarace"
	"rmarace/internal/benchkit"
	"rmarace/internal/codes"
	"rmarace/internal/detector"
	"rmarace/internal/fuzz"
	"rmarace/internal/obs"
	"rmarace/internal/obs/olog"
	"rmarace/internal/obs/span"
	"rmarace/internal/obs/telemetry"
	"rmarace/internal/serve"
	"rmarace/internal/store"
	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rmarace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "replay":
		replayCmd(os.Args[2:])
	case "convert":
		convertCmd(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "postmortem":
		postmortemCmd(os.Args[2:])
	case "demo":
		demoCmd()
	case "codes":
		codesCmd()
	case "bench":
		benchCmd(os.Args[2:])
	case "serve":
		serveCmd(os.Args[2:])
	case "submit":
		submitCmd(os.Args[2:])
	case "watch":
		watchCmd(os.Args[2:])
	case "fuzz":
		fuzzCmd(os.Args[2:])
	case "conformance":
		conformanceCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rmarace replay [-method NAME] [-store NAME] [-shards K] [-compare] [-report FILE]
                 [-telemetry ADDR] [-spans FILE] [-flight N]
                 [-batch N] [-evict K] [-compact] TRACE
  rmarace convert [-o FILE] [-to bin|json] TRACE
  rmarace stats [-format text|prom] REPORT
  rmarace postmortem [-method NAME] [-flight N] REPORT|TRACE
  rmarace demo
  rmarace codes
  rmarace bench [-o FILE] [-vertices N] [-telemetry ADDR] [-spans FILE]
  rmarace serve [-addr ADDR] [-workers N] [-max-sessions N] [-tenant-sessions N]
                [-max-bytes N] [-max-records N] [-retain N] [-log-level LEVEL]
  rmarace submit [-addr URL] [-tenant NAME] [-method NAME] [-store NAME]
                 [-shards K] [-batch N] [-evict K] [-compact] [-flight N]
                 [-spans] [-retry N] TRACE
  rmarace watch [-addr URL] SESSION
  rmarace fuzz [-duration D] [-seed N] [-schedules K] [-stores LIST]
               [-shards LIST] [-batches LIST] [-out DIR] [-canary]
  rmarace conformance [-out FILE] [-baseline FILE] [-quiet]

methods: baseline, rma-analyzer, must-rma, our-contribution
stores (tree-based methods): avl (default), legacy, shadow, strided
TRACE may be JSON Lines or the RMTB binary format; replay, convert and
        postmortem sniff the leading bytes and pick the right decoder
-shards splits the contribution analyzer into K address-space shards
-batch coalesces up to N access events per owner into pooled batches
-evict retires a (rank,window) analyzer after K accessless epochs
-compact releases retained analyzer capacity at every epoch boundary
convert rewrites a trace into the other format losslessly (-to forces
        the target; default is the opposite of the input's)
-report records analysis metrics and writes a structured run report
        (schema rmarace/run-report/v1); summarise it with rmarace stats
-telemetry serves live /metrics, /report, /healthz and /debug/pprof
        on ADDR for the duration of the run
-spans exports a causal span timeline as Chrome trace-event JSON
        (open it in Perfetto or chrome://tracing)
-flight keeps a flight recorder of the last N events per window owner;
        a detected race carries the snapshot (render with postmortem)
fuzz generates random MPI-RMA programs and differentially checks every
        store × shard × batch configuration against the brute-force
        oracle under permuted schedules; a divergence is minimised by
        delta debugging and written to -out as a replayable reproducer
        (-canary adds the known-faulty legacy backend, which must fail)
conformance scores every detector configuration over the labeled
        scenario corpus (internal/conformance) with per-category
        precision/recall/F1; -out writes the JSON baseline, -baseline
        diffs against a committed CONFORMANCE.json and exits 1 on any
        per-category F1 regression
serve starts the long-lived multi-tenant analysis daemon: POST traces
        (either format, streamed) to /v1/analyze and read verdicts,
        reports, postmortems and Prometheus /metrics back; submit is
        its client (-retry retries 429 rejects per their Retry-After,
        -spans captures a Perfetto timeline on the session)
serve -log-level turns on structured JSON logging to stderr; every
        line carries the tenant and session id, so one grep follows a
        session end to end
watch streams a served session's live progress (SSE from
        /v1/sessions/{id}/events) and exits with its verdict`)
	os.Exit(2)
}

// replayObs selects the replay command's observability extras and the
// streaming memory policy.
type replayObs struct {
	report    string // run-report JSON output path
	telemetry string // live HTTP server address
	spans     string // Chrome trace-event JSON output path
	flight    int    // flight-recorder depth per window owner
	batch     int    // pooled event-batch size per owner
	evict     int    // cold-epoch threshold for analyzer eviction
	compact   bool   // release retained capacity at epoch boundaries
}

func replayOne(path string, method detector.Method, storeName string, shards int, o replayObs) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	src, format, err := tracebin.Open(f)
	if err != nil {
		return err
	}
	head := src.Head()
	var reg *obs.Registry
	if o.report != "" || o.telemetry != "" {
		reg = obs.NewRegistry()
	}
	if o.telemetry != "" {
		srv, err := telemetry.Serve(o.telemetry, telemetry.Sources{
			Registry: reg,
			// A mid-replay /report serves whatever the registry has seen
			// so far; the counters are live, the totals fill in at the end.
			Report: func() *obs.RunReport {
				return serve.ReplayReport("replay", head, method, trace.ReplayResult{}, reg)
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("telemetry at %s (metrics, report, healthz, debug/pprof)", srv.URL())
	}
	var tr *span.Tracer
	if o.spans != "" {
		tr = span.NewLogicalTracer(head.Ranks, 0)
	}
	start := time.Now()
	factory, mustShared, err := serve.NewAnalyzerFactory(method, head.Ranks, storeName, shards, obs.OrDisabled(reg))
	if err != nil {
		return err
	}
	res, err := trace.ReplayStream(src, factory, trace.ReplayOpts{
		Spans: tr, FlightN: o.flight,
		Batch: o.batch, EvictCold: o.evict, Compact: o.compact,
		Recorder: obs.OrDisabled(reg),
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	serve.RecordClockStats(reg, mustShared)
	fmt.Printf("%-16s %8d events  %3d epochs  %8d max nodes  %10v  (%s trace)", method, res.Events, res.Epochs, res.MaxNodes, elapsed, format)
	if res.Evictions > 0 {
		fmt.Printf("\n  evicted %d cold analyzers", res.Evictions)
	}
	if res.Race != nil {
		fmt.Printf("\n  RACE: %s", res.Race.Message())
		if n := len(res.Race.FlightLog); n > 0 {
			fmt.Printf("\n  flight recorder captured %d events (rmarace postmortem renders them)", n)
		}
	}
	fmt.Println()
	if o.spans != "" {
		out, err := os.Create(o.spans)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		log.Printf("wrote %s (%d spans; open in Perfetto)", o.spans, tr.Len())
	}
	if o.report != "" {
		rep := serve.ReplayReport("replay", head, method, res, reg)
		out, err := os.Create(o.report)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		log.Printf("wrote %s", o.report)
	}
	return nil
}

// convertCmd rewrites a trace losslessly into the other format —
// JSON Lines to the RMTB binary format or back. The input format is
// sniffed; -to forces the target (defaulting to the opposite), so
// `convert -to json` also canonicalises a JSON trace.
func convertCmd(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: input path with the target format's extension)")
	to := fs.String("to", "", "target format: bin or json (default: the opposite of the input's)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	in := fs.Arg(0)
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	src, format, err := tracebin.Open(f)
	if err != nil {
		log.Fatal(err)
	}
	target := *to
	if target == "" {
		if format == "bin" {
			target = "json"
		} else {
			target = "bin"
		}
	}
	outPath := *out
	if outPath == "" {
		base := strings.TrimSuffix(strings.TrimSuffix(in, ".jsonl"), ".bin")
		if target == "bin" {
			outPath = base + ".bin"
		} else {
			outPath = base + ".jsonl"
		}
		if outPath == in {
			log.Fatalf("refusing to overwrite %s; pass -o", in)
		}
	}
	of, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	var sink trace.Sink
	switch target {
	case "bin":
		sink, err = tracebin.NewWriter(of, src.Head())
	case "json":
		sink, err = trace.NewWriter(of, src.Head())
	default:
		log.Fatalf("unknown target format %q (want bin or json)", target)
	}
	if err != nil {
		log.Fatal(err)
	}
	n, err := tracebin.Convert(sink, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("converted %d records: %s (%s) -> %s (%s, %d bytes)",
		n, in, format, outPath, target, sizeOf(outPath))
}

func sizeOf(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return fi.Size()
}

// statsCmd reads a run report written by `replay -report`, `bench` or
// the library and prints its human summary.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text (human summary) or prom (Prometheus text exposition, the live /metrics renderer)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "text":
		rep.Summary(os.Stdout)
	case "prom":
		if err := obs.WriteProm(os.Stdout, rep.Metrics); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (want text or prom)", *format)
	}
}

// postmortemCmd renders a race's flight-recorder dump: the last N
// accesses and synchronisations the detecting analyzer saw, with the
// two conflicting accesses marked. It reads either a run report written
// by `replay -report` (using its recorded flight section) or a raw
// trace, which it replays with the flight recorder on.
func postmortemCmd(args []string) {
	fs := flag.NewFlagSet("postmortem", flag.ExitOnError)
	methodName := fs.String("method", "our-contribution", "analysis method when replaying a trace")
	flight := fs.Int("flight", 64, "flight-recorder depth when replaying a trace")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	// A run report is a single schema-tagged JSON document; anything
	// else is treated as a trace stream.
	if rep, err := obs.ReadReport(bytes.NewReader(data)); err == nil {
		dumped := 0
		for i, rc := range rep.Races {
			if len(rc.Flight) == 0 {
				continue
			}
			fmt.Printf("RACE %d: %s\n", i, rc.Message)
			fmt.Printf("  window=%s owner=%d shard=%d\n", rc.Window, rc.Owner, rc.Shard)
			rc.WriteFlight(os.Stdout)
			dumped++
		}
		if dumped == 0 {
			log.Fatal("report carries no flight recording (replay with -flight N -report FILE)")
		}
		return
	}

	method, err := detector.MethodByName(*methodName)
	if err != nil {
		log.Fatal(err)
	}
	src, _, err := tracebin.Open(bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	factory, _, err := serve.NewAnalyzerFactory(method, src.Head().Ranks, "", 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := trace.ReplayStream(src, factory, trace.ReplayOpts{FlightN: *flight})
	if err != nil {
		log.Fatal(err)
	}
	if res.Race == nil {
		log.Fatalf("no race detected in %d events; nothing to dissect", res.Events)
	}
	fmt.Printf("RACE: %s\n", res.Race.Message())
	if p := res.Race.Prov; p != nil {
		fmt.Printf("  window=%s owner=%d shard=%d\n", p.Window, p.Owner, p.Shard)
	}
	detector.WriteFlight(os.Stdout, res.Race.FlightLog, res.Race)
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	methodName := fs.String("method", "our-contribution", "analysis method")
	storeName := fs.String("store", "", "storage backend for the tree-based methods (avl, legacy, shadow, strided)")
	shards := fs.Int("shards", 1, "address-space shard count for the contribution analyzer (power of two; 1 = serial)")
	compare := fs.Bool("compare", false, "replay under all four methods")
	report := fs.String("report", "", "write a structured run report (JSON) to this path")
	telAddr := fs.String("telemetry", "", "serve live /metrics, /report, /healthz and /debug/pprof on this address during the replay")
	spansPath := fs.String("spans", "", "write the replay's causal spans (Chrome trace-event JSON) to this path")
	flight := fs.Int("flight", 0, "flight-recorder depth per window owner (0 disables)")
	batch := fs.Int("batch", 0, "coalesce up to N access events per owner into pooled batches (<2 keeps the per-event path)")
	evict := fs.Int("evict", 0, "retire a (rank,window) analyzer after K consecutive accessless epochs (0 disables)")
	compact := fs.Bool("compact", false, "release retained analyzer capacity at every epoch boundary")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if _, err := store.New(*storeName); err != nil {
		log.Fatal(err)
	}
	o := replayObs{report: *report, telemetry: *telAddr, spans: *spansPath, flight: *flight,
		batch: *batch, evict: *evict, compact: *compact}

	if *compare {
		if *report != "" || *telAddr != "" || *spansPath != "" {
			log.Fatal("-compare replays four times; -report, -telemetry and -spans attach to a single replay")
		}
		for _, m := range detector.Methods() {
			if err := replayOne(path, m, *storeName, *shards,
				replayObs{flight: *flight, batch: *batch, evict: *evict, compact: *compact}); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	method, err := detector.MethodByName(*methodName)
	if err != nil {
		log.Fatal(err)
	}
	if err := replayOne(path, method, *storeName, *shards, o); err != nil {
		log.Fatal(err)
	}
}

// benchCmd runs the perf suite (insert hot path, sharded notification
// pipeline, clock memory, stack depot, Figure 10, Table 4) and writes
// the JSON snapshot.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "BENCH_PR8.json", "output JSON path")
	vertices := fs.Int("vertices", 0, "MiniVite benchmark input size (0 = scaled default)")
	telAddr := fs.String("telemetry", "", "serve live /metrics, /report, /healthz and /debug/pprof on this address during the suite")
	spansPath := fs.String("spans", "", "write the instrumented run's causal spans (Chrome trace-event JSON) to this path")
	quick := fs.Bool("quick", false, "run only the gated series (insert, notification, clock memory, stack depot, small trace-ingest sweep, serve sweep)")
	check := fs.Bool("check", false, "gate the snapshot: hot paths 0 allocs/op, adaptive clock reduction ≥ 10x, depot interned, binary ingest ≥ 5x JSON, peak RSS ≤ 2x at 4x the trace, serve sweep 0 verdict mismatches and observable quota rejection; exit 1 on failure")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	opts := benchkit.Options{Vertices: *vertices, Quick: *quick}
	if *telAddr != "" {
		reg := obs.NewRegistry()
		opts.Registry = reg
		srv, err := telemetry.Serve(*telAddr, telemetry.Sources{
			Registry: reg,
			Report: func() *obs.RunReport {
				return &obs.RunReport{Schema: obs.ReportSchema, Source: "bench", Metrics: reg.Snapshot()}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("telemetry at %s (metrics, report, healthz, debug/pprof)", srv.URL())
	}
	if *spansPath != "" {
		sf, err := os.Create(*spansPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := sf.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s (open in Perfetto)", *spansPath)
		}()
		opts.SpanSink = sf
	}
	rep := benchkit.Suite(opts)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-44s %12d  %10.1f ns/op  %6d B/op  %4d allocs/op", r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Metrics {
			fmt.Printf("  %s=%.1f", k, v)
		}
		fmt.Println()
	}
	log.Printf("wrote %s", *out)
	if *check {
		if errs := checkBench(rep); len(errs) > 0 {
			for _, e := range errs {
				log.Printf("bench check FAILED: %v", e)
			}
			os.Exit(1)
		}
		log.Print("bench check passed")
	}
}

// checkBench enforces the performance gates on a suite snapshot: the
// insert and notification hot paths stay allocation-free, the adaptive
// clock representation recovers ≥10× of the always-vector clock bytes
// at 256 ranks, the stack depot actually interns, binary trace ingest
// decodes ≥5× faster than JSON, and the bounded-memory replay's peak
// live heap grows ≤2× when the trace grows 4× (PR 7).
func checkBench(rep benchkit.Report) []error {
	var errs []error
	found := map[string]bool{}
	for _, r := range rep.Results {
		switch {
		case strings.HasPrefix(r.Name, "insert/"), strings.HasPrefix(r.Name, "notification-throughput/"):
			found["hot"] = true
			if r.AllocsPerOp != 0 {
				errs = append(errs, fmt.Errorf("%s allocates %d allocs/op on the hot path, want 0", r.Name, r.AllocsPerOp))
			}
		case strings.HasPrefix(r.Name, "clock-mem/") && strings.HasSuffix(r.Name, "/adaptive"):
			found["clock"] = true
			if red := r.Metrics["reduction_x"]; red < 10 {
				errs = append(errs, fmt.Errorf("%s clock-byte reduction %.1fx, want >= 10x", r.Name, red))
			}
		case r.Name == "stack-depot/dedup":
			found["depot"] = true
			if r.Metrics["entries"] <= 0 {
				errs = append(errs, fmt.Errorf("%s interned no stacks", r.Name))
			}
			if r.Metrics["dedup_x"] < 2 {
				errs = append(errs, fmt.Errorf("%s dedup factor %.1fx, want >= 2x", r.Name, r.Metrics["dedup_x"]))
			}
		case strings.HasPrefix(r.Name, "trace-ingest/") && strings.HasSuffix(r.Name, "/bin"):
			found["ingest"] = true
			if sp := r.Metrics["speedup_x"]; sp < 5 {
				errs = append(errs, fmt.Errorf("%s binary ingest speedup %.1fx over JSON, want >= 5x", r.Name, sp))
			}
		case strings.HasPrefix(r.Name, "trace-rss/"):
			found["rss"] = true
			if r.Metrics["rss_large_bytes"] <= 0 {
				errs = append(errs, fmt.Errorf("%s recorded no peak RSS", r.Name))
			}
			if g := r.Metrics["growth_x"]; g > 2 {
				errs = append(errs, fmt.Errorf("%s peak RSS grew %.2fx at 4x the trace, want <= 2x", r.Name, g))
			}
		case strings.HasPrefix(r.Name, "serve-agg/"):
			found["serve"] = true
			if r.Metrics["sessions"] <= 0 {
				errs = append(errs, fmt.Errorf("%s completed no sessions", r.Name))
			}
			if mm := r.Metrics["verdict_mismatches"]; mm != 0 {
				errs = append(errs, fmt.Errorf("%s served %.0f verdicts diverging from offline replay, want 0", r.Name, mm))
			}
		case r.Name == "serve-quota/rejects":
			found["squota"] = true
			if r.Metrics["quota_rejects"] < 1 {
				errs = append(errs, fmt.Errorf("%s observed no quota rejection", r.Name))
			}
		}
	}
	for _, k := range []string{"hot", "clock", "depot", "ingest", "rss", "serve", "squota"} {
		if !found[k] {
			errs = append(errs, fmt.Errorf("gated series %q missing from the suite", k))
		}
	}
	return errs
}

// serveCmd starts the long-lived analysis daemon (see internal/serve).
// Sessions pick their analysis method per request; the daemon-level
// flags bound concurrency and per-session ingest.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent replay workers (0 = GOMAXPROCS)")
	maxSessions := fs.Int("max-sessions", 0, "daemon-wide in-flight session cap (0 = 8x workers)")
	tenantSessions := fs.Int("tenant-sessions", 0, "per-tenant in-flight session cap (0 = the daemon cap)")
	maxBytes := fs.Int64("max-bytes", 0, "per-session ingest byte quota (0 = unlimited)")
	maxRecords := fs.Int64("max-records", 0, "per-session trace record quota (0 = unlimited)")
	retain := fs.Int("retain", 0, "completed sessions to retain for the API (0 = default)")
	logLevel := fs.String("log-level", "", "structured JSON logs to stderr at this level (debug|info|warn|error; default off)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	cfg := serve.Config{
		Workers:           *workers,
		MaxSessions:       *maxSessions,
		TenantSessions:    *tenantSessions,
		MaxSessionBytes:   *maxBytes,
		MaxSessionRecords: *maxRecords,
		Retain:            *retain,
	}
	if *logLevel != "" {
		cfg.Logger = olog.New(os.Stderr, olog.ParseLevel(*logLevel))
	}
	_, srv, err := serve.Start(*addr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("analysis daemon at %s (POST /v1/analyze; /v1/sessions, /metrics, /report, /healthz)", srv.URL())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

// submitCmd streams one trace file to a running daemon and prints the
// verdict — the client half of detection as a service.
func submitCmd(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	tenant := fs.String("tenant", "", "tenant name (X-Tenant header)")
	methodName := fs.String("method", "", "analysis method (default: the daemon's)")
	storeName := fs.String("store", "", "storage backend for the tree-based methods")
	shards := fs.Int("shards", 0, "address-space shard count")
	batch := fs.Int("batch", 0, "event-batch size per owner")
	evict := fs.Int("evict", 0, "cold-epoch threshold for analyzer eviction")
	compact := fs.Bool("compact", false, "release retained analyzer capacity at epoch boundaries")
	flight := fs.Int("flight", 0, "flight-recorder depth per window owner")
	spans := fs.Bool("spans", false, "capture a span timeline (read it back from /v1/sessions/{id}/spans)")
	retry := fs.Int("retry", 0, "attempts to retry a 429 admission reject, honoring its Retry-After hint")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}

	q := url.Values{}
	setIf := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	setIf("method", *methodName)
	setIf("store", *storeName)
	if *shards > 0 {
		q.Set("shards", strconv.Itoa(*shards))
	}
	if *batch > 0 {
		q.Set("batch", strconv.Itoa(*batch))
	}
	if *evict > 0 {
		q.Set("evict", strconv.Itoa(*evict))
	}
	if *compact {
		q.Set("compact", "true")
	}
	if *flight > 0 {
		q.Set("flight", strconv.Itoa(*flight))
	}
	if *spans {
		q.Set("spans", "1")
	}
	status, v, err := serve.Submit(context.Background(), *addr,
		func() (io.ReadCloser, error) { return os.Open(fs.Arg(0)) },
		serve.SubmitOpts{Tenant: *tenant, Query: q, Retries: *retry})
	if err != nil {
		log.Fatal(err)
	}
	if status != http.StatusOK {
		log.Fatalf("daemon answered %d: %s", status, v.Error)
	}
	fmt.Printf("%-16s %8d events  %3d epochs  %8d max nodes  (%s trace, session %s)\n",
		v.Method, v.Events, v.Epochs, v.MaxNodes, v.Format, v.Session)
	if v.Race != nil {
		fmt.Printf("  RACE: %s\n", v.Race.Message)
		os.Exit(1)
	}
}

// watchCmd attaches to a running (or retained) session's live event
// stream and follows it to the verdict: the terminal half of
// observability-as-a-service. Find session ids with GET /v1/sessions
// or a verdict's X-Session header.
func watchCmd(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	v, err := serve.Watch(context.Background(), *addr, fs.Arg(0), nil, func(s obs.ProgressSnapshot) {
		fmt.Printf("%-9s %10d bytes  %8d records  %8d events  %4d epochs  %d races  %.1fms\n",
			s.Stage, s.Bytes, s.Records, s.Events, s.Epochs, s.Races, float64(s.ElapsedNs)/1e6)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s  %-16s %8d events  %3d epochs  (session %s)\n",
		v.State, v.Tenant, v.Method, v.Events, v.Epochs, v.Session)
	if v.Error != "" {
		log.Fatalf("session failed: %s", v.Error)
	}
	if v.Race != nil {
		fmt.Printf("  RACE: %s\n", v.Race.Message)
		os.Exit(1)
	}
}

// demoCmd runs the paper's Code 1 under the contribution and the
// legacy tool, showing the accuracy fix end to end.
func demoCmd() {
	body := func(p *rmarace.Proc) error {
		win, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("buf", 32)
			if _, err := buf.Load(4, 1, rmarace.Debug{File: "code1.c", Line: 4}); err != nil {
				return err
			}
			if err := win.Put(1, 0, buf, 2, 10, rmarace.Debug{File: "code1.c", Line: 5}); err != nil {
				return err
			}
			if err := buf.Store(7, []byte{0x12}, rmarace.Debug{File: "code1.c", Line: 6}); err != nil {
				return err
			}
		}
		return win.UnlockAll()
	}

	fmt.Println("Code 1 (Fig. 8a): Load(buf[4]); MPI_Put(buf[2..11]); buf[7] = 0x12")
	for _, m := range []rmarace.Method{rmarace.RMAAnalyzer, rmarace.OurContribution} {
		rep, err := rmarace.Run(2, m, body)
		if err != nil && rep.Race == nil {
			log.Fatal(err)
		}
		if rep.Race != nil {
			fmt.Printf("  %-16s -> %s\n", m, rep.Race.Message())
		} else {
			fmt.Printf("  %-16s -> no error found (false negative)\n", m)
		}
	}
}

// codesCmd runs every example program from the paper under the three
// tools and prints the verdict matrix.
func codesCmd() {
	fmt.Printf("%-14s %-38s %-8s %-14s %-10s %s\n",
		"program", "paper", "truth", "RMA-Analyzer", "MUST-RMA", "Our Contribution")
	for _, pr := range codes.All() {
		truth := "safe"
		if pr.Racy {
			truth = "race"
		}
		verdicts := make([]string, 0, 3)
		for _, m := range []detector.Method{detector.RMAAnalyzer, detector.MustRMAMethod, detector.OurContribution} {
			detected, _, err := pr.Run(m)
			if err != nil {
				log.Fatalf("%s under %v: %v", pr.Name, m, err)
			}
			if detected {
				verdicts = append(verdicts, "error")
			} else {
				verdicts = append(verdicts, "-")
			}
		}
		fmt.Printf("%-14s %-38s %-8s %-14s %-10s %s\n",
			pr.Name, pr.Paper, truth, verdicts[0], verdicts[1], verdicts[2])
	}
}

// fuzzCmd is the differential fuzzing driver: seeded random MPI-RMA
// programs, each replayed under permuted deterministic schedules
// through every requested store × shard × batch configuration, with
// the brute-force oracle as ground truth. The first divergence is
// delta-debug minimised, written to -out as a replayable reproducer,
// and exits non-zero.
func fuzzCmd(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	duration := fs.Duration("duration", 30*time.Second, "how long to fuzz")
	seed := fs.Int64("seed", 1, "generator seed (same seed, same program/schedule stream)")
	schedules := fs.Int("schedules", 3, "interleavings per program (identity + K-1 seeded permutations)")
	stores := fs.String("stores", "avl,strided,shadow", "comma-separated store backends to test")
	shards := fs.String("shards", "1,4", "comma-separated shard counts")
	batches := fs.String("batches", "1,64", "comma-separated notification batch sizes")
	out := fs.String("out", "fuzz-repro", "directory for minimised reproducers")
	canary := fs.Bool("canary", false, "include the known-faulty legacy lower-bound backend (expect a divergence)")
	if fs.Parse(args) != nil || fs.NArg() != 0 {
		usage()
	}
	shardList, err := intList(*shards)
	if err != nil {
		log.Fatalf("-shards: %v", err)
	}
	batchList, err := intList(*batches)
	if err != nil {
		log.Fatalf("-batches: %v", err)
	}
	storeList := strings.Split(*stores, ",")
	if *canary {
		storeList = append(storeList, "legacy")
	}
	var cfgs []fuzz.Config
	for _, st := range storeList {
		st = strings.TrimSpace(st)
		if _, err := store.New(st); err != nil {
			log.Fatalf("-stores: %v", err)
		}
		for _, sh := range shardList {
			for _, b := range batchList {
				cfgs = append(cfgs, fuzz.Config{Store: st, Shards: sh, Batch: b})
			}
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)
	programs, racy, runs := 0, 0, 0
	lastLog := time.Now()
	for time.Now().Before(deadline) {
		p := fuzz.Gen(rng)
		scheds := make([]int64, *schedules)
		for i := 1; i < *schedules; i++ {
			scheds[i] = 1 + rng.Int63n(1<<31)
		}
		res, err := fuzz.Diff(p, scheds, cfgs)
		if err != nil {
			log.Fatalf("program #%d: %v", programs, err)
		}
		programs++
		runs += len(scheds) * len(cfgs)
		if res.Oracle.Raced() {
			racy++
		}
		if res.Failed() {
			fmt.Printf("program #%d diverged after %d clean programs:\n", programs-1, programs-1)
			for _, d := range res.Divergences {
				fmt.Printf("  %s\n", d)
			}
			min := fuzz.Minimize(p, func(q fuzz.Program) bool {
				r, err := fuzz.Diff(q, scheds, cfgs)
				return err == nil && r.Failed()
			})
			minRes, err := fuzz.Diff(min, scheds, cfgs)
			if err != nil {
				log.Fatal(err)
			}
			dir, err := fuzz.WriteRepro(*out, minRes)
			if err != nil {
				log.Fatalf("writing reproducer: %v", err)
			}
			fmt.Printf("minimised %d -> %d ops; reproducer written to %s\n",
				len(p.Ops), len(min.Ops), dir)
			fmt.Print(min.String())
			os.Exit(1)
		}
		if time.Since(lastLog) >= 5*time.Second {
			fmt.Printf("  ... %d programs (%d racy), %d differential runs, %s left\n",
				programs, racy, runs, time.Until(deadline).Round(time.Second))
			lastLog = time.Now()
		}
	}
	fmt.Printf("fuzzed %d programs (%d racy, %d race-free) x %d schedules x %d configs = %d differential runs: no divergences\n",
		programs, racy, programs-racy, *schedules, len(cfgs), runs)
}

// intList parses a comma-separated list of positive integers.
func intList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("value %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}
