package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rmarace/internal/conformance"
)

// conformanceCmd scores every detector configuration over the labeled
// conformance corpus, optionally writes the JSON baseline and
// optionally gates against a committed one. The CI conformance-gate
// job runs `rmarace conformance -baseline CONFORMANCE.json` and fails
// the build on a non-zero exit.
func conformanceCmd(args []string) {
	fs := flag.NewFlagSet("conformance", flag.ExitOnError)
	out := fs.String("out", "", "write the run's JSON report (schema "+conformance.Schema+") to FILE")
	baseline := fs.String("baseline", "", "diff against the committed baseline FILE; exit 1 on F1 regression")
	quiet := fs.Bool("quiet", false, "suppress the score table")
	fs.Parse(args)
	if fs.NArg() != 0 {
		log.Fatalf("conformance: unexpected arguments %v", fs.Args())
	}

	cases := conformance.Corpus()
	outs, err := conformance.Run(cases, conformance.Configs())
	if err != nil {
		log.Fatal(err)
	}
	rep := conformance.BuildReport(cases, outs)
	if !*quiet {
		conformance.WriteTable(os.Stdout, rep)
		for _, o := range outs {
			for _, m := range o.Mismatches {
				fmt.Printf("mismatch %s: %s\n", o.Config.Name, m)
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *baseline != "" {
		base, err := conformance.LoadReport(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		if regs := conformance.Gate(base, rep); len(regs) != 0 {
			fmt.Println("conformance regressions against", *baseline)
			for _, r := range regs {
				fmt.Println("  " + r)
			}
			os.Exit(1)
		}
		fmt.Printf("conformance gate clean against %s (%d configs, %d cases)\n",
			*baseline, len(rep.Configs), rep.Cases)
	}
}
