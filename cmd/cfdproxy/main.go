// Command cfdproxy regenerates the paper's Figure 10: the cumulative
// time spent in epochs by the simulated CFD-Proxy application under the
// four analysis methods, plus the §5.3 BST node-count reduction claim
// (≈90k legacy nodes per process collapsing to a few dozen).
//
// Usage:
//
//	cfdproxy                      # paper configuration (12 ranks, 50 iterations)
//	cfdproxy -ranks 8 -iters 20   # custom size
//	cfdproxy -nodes               # node counts only (fast: tree methods only)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"

	"rmarace/internal/apps/cfdproxy"
	"rmarace/internal/detector"
	"rmarace/internal/harness"
)

func main() {
	// The simulator allocates one tree/shadow entry per access; with the
	// default GC target the run time becomes dominated by collector
	// pacing rather than analysis work. A relaxed target (uniform across
	// all methods) makes the measured ratios reflect the algorithms.
	debug.SetGCPercent(300)
	debug.SetMemoryLimit(11 << 30) // hard backstop for the largest sweeps
	log.SetFlags(0)
	log.SetPrefix("cfdproxy: ")
	cfg := cfdproxy.Default()
	flag.IntVar(&cfg.Ranks, "ranks", cfg.Ranks, "number of simulated MPI ranks")
	flag.IntVar(&cfg.Iters, "iters", cfg.Iters, "halo-exchange iterations (split across the two windows)")
	flag.IntVar(&cfg.Points, "points", cfg.Points, "halo points per neighbour per iteration")
	flag.IntVar(&cfg.InteriorOps, "interior", cfg.InteriorOps, "alias-filtered interior accesses per rank per iteration")
	nodesOnly := flag.Bool("nodes", false, "print node counts only (runs just the two tree-based methods)")
	flag.Parse()

	if *nodesOnly {
		legacy, err := cfdproxy.Run(cfg, detector.RMAAnalyzer)
		if err != nil {
			log.Fatal(err)
		}
		ours, err := cfdproxy.Run(cfg, detector.OurContribution)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("BST nodes per process: RMA-Analyzer %d, Our Contribution %d (reduction %.2f%%)\n",
			legacy.MaxNodesPerProcess, ours.MaxNodesPerProcess,
			100*float64(legacy.MaxNodesPerProcess-ours.MaxNodesPerProcess)/float64(legacy.MaxNodesPerProcess))
		return
	}

	rows, err := harness.Figure10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CFD-Proxy: %d ranks, %d iterations, %d points/neighbour\n", cfg.Ranks, cfg.Iters, cfg.Points)
	harness.WriteFigure10(os.Stdout, rows)
}
