// Command minivite regenerates the paper's MiniVite experiments:
//
//   - Figure 9: -inject-race duplicates an MPI_Put and prints the race
//     report with its dspl.hpp:612/614 debug locations;
//   - Figures 11 and 12: -sweep runs the strong-scaling comparison of
//     the four methods over 32..256 ranks for a given input size;
//   - Table 4: -sweep -nodes prints the per-process BST node counts of
//     the two tree-based analyzers.
//
// Usage:
//
//	minivite -inject-race
//	minivite -sweep -vertices 640000
//	minivite -sweep -vertices 1280000
//	minivite -sweep -nodes            # Table 4 (both input sizes)
//	minivite -ranks 32 -vertices 640000   # one point, all methods
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"rmarace/internal/apps/minivite"
	"rmarace/internal/detector"
	"rmarace/internal/harness"
	"rmarace/internal/rma"
)

func main() {
	// The simulator allocates one tree/shadow entry per access; with the
	// default GC target the run time becomes dominated by collector
	// pacing rather than analysis work. A relaxed target (uniform across
	// all methods) makes the measured ratios reflect the algorithms.
	debug.SetGCPercent(300)
	debug.SetMemoryLimit(11 << 30) // hard backstop for the largest sweeps
	log.SetFlags(0)
	log.SetPrefix("minivite: ")
	vertices := flag.Int("vertices", 640000, "global vertex count")
	ranks := flag.Int("ranks", 32, "rank count for a single run")
	rankList := flag.String("rank-list", "32,64,128,256", "comma-separated rank counts for -sweep")
	sweep := flag.Bool("sweep", false, "run the strong-scaling sweep (Figs. 11/12)")
	nodes := flag.Bool("nodes", false, "with -sweep: print Table 4 for both input sizes")
	inject := flag.Bool("inject-race", false, "duplicate an MPI_Put (Fig. 9) and print the report")
	stridedCmp := flag.Bool("strided", false, "compare the plain contribution against the §6(3) strided-merging extension (node counts)")
	flag.Parse()

	if *stridedCmp {
		cfg := minivite.Default(*ranks, *vertices)
		plain, err := minivite.RunOpts(cfg, rma.Config{Method: detector.OurContribution})
		if err != nil {
			log.Fatal(err)
		}
		str, err := minivite.RunOpts(cfg, rma.Config{Method: detector.OurContribution, StridedMerging: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("BST nodes per process at %d ranks, %d vertices:\n", *ranks, *vertices)
		fmt.Printf("  contribution (adjacent merging only)  %8d\n", plain.MaxNodesPerProcess)
		fmt.Printf("  + strided regular sections (§6(3))    %8d (reduction %.2f%%)\n",
			str.MaxNodesPerProcess,
			100*float64(plain.MaxNodesPerProcess-str.MaxNodesPerProcess)/float64(plain.MaxNodesPerProcess))
		return
	}

	switch {
	case *inject:
		// The paper runs `mpiexec -n 2 ./miniVite -l -n 100`.
		race, err := harness.Figure9(2, max(*vertices, 1000), detector.OurContribution)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(race.Message())
		fmt.Println(race.Message()) // both conflicting ranks report, as in Fig. 9
	case *sweep && *nodes:
		rl, err := parseRanks(*rankList)
		if err != nil {
			log.Fatal(err)
		}
		p640, err := harness.MiniViteNodesSweep(640000, rl)
		if err != nil {
			log.Fatal(err)
		}
		p1280, err := harness.MiniViteNodesSweep(1280000, rl)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteTable4(os.Stdout, p640, p1280)
	case *sweep:
		rl, err := parseRanks(*rankList)
		if err != nil {
			log.Fatal(err)
		}
		points, err := harness.MiniViteSweep(*vertices, rl)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteFigure11(os.Stdout, *vertices, points)
	default:
		for _, m := range detector.Methods() {
			debug.FreeOSMemory()
			res, err := minivite.Run(minivite.Default(*ranks, *vertices), m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s per-process %8.1f ms   nodes/process %d\n",
				m, float64(res.PerProcessTime.Microseconds())/1000.0, res.MaxNodesPerProcess)
		}
	}
}

func parseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad rank count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
