package rmarace

import (
	"strings"
	"testing"
)

// code1 is the paper's Code 1 through the public API.
func code1(p *Proc) error {
	win, err := p.WinCreate("X", 64)
	if err != nil {
		return err
	}
	if err := win.LockAll(); err != nil {
		return err
	}
	if p.Rank() == 0 {
		buf := p.Alloc("buf", 32)
		if _, err := buf.Load(4, 1, Debug{File: "main.c", Line: 2}); err != nil {
			return err
		}
		if err := win.Put(1, 0, buf, 2, 10, Debug{File: "main.c", Line: 3}); err != nil {
			return err
		}
		if err := buf.Store(7, []byte{0x12}, Debug{File: "main.c", Line: 4}); err != nil {
			return err
		}
	}
	return win.UnlockAll()
}

func TestRunDetectsCode1(t *testing.T) {
	rep, _ := Run(2, OurContribution, code1)
	if rep.Race == nil {
		t.Fatal("Code 1 race not detected through the public API")
	}
	msg := rep.Race.Message()
	if !strings.Contains(msg, "main.c:4") || !strings.Contains(msg, "main.c:3") {
		t.Errorf("race message = %s", msg)
	}
}

func TestRunLegacyMissesCode1(t *testing.T) {
	rep, err := Run(2, RMAAnalyzer, code1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Race != nil {
		t.Fatalf("legacy found Code 1 (should reproduce its false negative): %v", rep.Race)
	}
}

func TestRunCleanProgram(t *testing.T) {
	rep, err := Run(4, OurContribution, func(p *Proc) error {
		win, err := p.WinCreate("X", 256)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := win.Put((p.Rank()+1)%p.Size(), 8*p.Rank(), src, 0, 8, Debug{File: "ring.c", Line: 1}); err != nil {
			return err
		}
		return win.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Race != nil {
		t.Fatalf("clean ring raced: %v", rep.Race)
	}
	if rep.EpochTime <= 0 || rep.MaxNodes <= 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
}

func TestStandaloneAnalyzer(t *testing.T) {
	z := NewAnalyzer()
	if z.Name() != "our-contribution" {
		t.Fatalf("Name = %q", z.Name())
	}
	l := NewLegacyAnalyzer()
	if l.Name() != "rma-analyzer" {
		t.Fatalf("legacy Name = %q", l.Name())
	}
}

func TestMethodsOrder(t *testing.T) {
	ms := Methods()
	if len(ms) != 4 || ms[0] != Baseline || ms[3] != OurContribution {
		t.Fatalf("Methods() = %v", ms)
	}
}

func TestRunPropagatesBodyError(t *testing.T) {
	_, err := Run(2, Baseline, func(p *Proc) error {
		if p.Rank() == 0 {
			return errTest
		}
		return p.Barrier()
	})
	if err == nil {
		t.Fatal("body error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
