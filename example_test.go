package rmarace_test

import (
	"fmt"

	"rmarace"
)

// ExampleRun reproduces the paper's Code 1: an MPI_Put's source buffer
// is stored to while the put may still be reading it.
func ExampleRun() {
	report, _ := rmarace.Run(2, rmarace.OurContribution, func(p *rmarace.Proc) error {
		win, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("buf", 32)
			if err := win.Put(1, 0, buf, 2, 10, rmarace.Debug{File: "main.c", Line: 3}); err != nil {
				return err
			}
			if err := buf.Store(7, []byte{0x12}, rmarace.Debug{File: "main.c", Line: 4}); err != nil {
				return err
			}
		}
		return win.UnlockAll()
	})
	fmt.Println(report.Race.Message())
	// Output:
	// Error when inserting memory access of type LOCAL_WRITE from file main.c:4 with already inserted interval of type RMA_READ from file main.c:3. The program will be exiting now with MPI_Abort.
}

// ExampleNewAnalyzer drives the contribution's analyzer directly with a
// hand-built access stream — the embedding mode for custom tooling.
func ExampleNewAnalyzer() {
	z := rmarace.NewAnalyzer()
	// An MPI_Get wrote addresses [0..7]; a later local read overlaps it.
	get := rmarace.Event{}
	get.Acc.Lo, get.Acc.Hi = 0, 7
	get.Acc.Type = 3 // RMA_Write
	get.Acc.Debug = rmarace.Debug{File: "app.c", Line: 10}
	get.Time, get.CallTime = 1, 1

	load := rmarace.Event{}
	load.Acc.Lo, load.Acc.Hi = 4, 4
	load.Acc.Type = 0 // Local_Read
	load.Acc.Debug = rmarace.Debug{File: "app.c", Line: 11}
	load.Time = 2

	if race := z.Access(get); race != nil {
		fmt.Println("unexpected:", race)
	}
	if race := z.Access(load); race != nil {
		fmt.Println("race detected at", race.Cur.Debug)
	}
	// Output:
	// race detected at app.c:11
}

// ExampleRun_clean shows a race-free ring exchange and the run report.
func ExampleRun_clean() {
	report, err := rmarace.Run(4, rmarace.OurContribution, func(p *rmarace.Proc) error {
		win, err := p.WinCreate("ring", 256)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		// Each rank writes its own 8-byte slot at its right neighbour.
		right := (p.Rank() + 1) % p.Size()
		if err := win.Put(right, 8*p.Rank(), src, 0, 8, rmarace.Debug{File: "ring.c", Line: 9}); err != nil {
			return err
		}
		return win.UnlockAll()
	})
	fmt.Println(err == nil, report.Race == nil)
	// Output:
	// true true
}
