// Package codes contains the paper's example programs as reusable SPMD
// bodies, each with its published per-tool verdicts: the data-race
// illustrations of Fig. 2, the false-negative Code 1 and loop Code 2 of
// Fig. 8, and the duplicated MPI_Put of Fig. 9 (Code 3). They are the
// canonical demos of the reproduction — used by the CLI, the examples
// and the regression tests.
package codes

import (
	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/rma"
)

// Program is one of the paper's example codes.
type Program struct {
	// Name identifies the program ("code1", "fig2b", ...).
	Name string
	// Paper cites the figure or listing it reproduces.
	Paper string
	// Ranks is the world size it needs.
	Ranks int
	// Racy is the ground truth.
	Racy bool
	// Expected verdicts: whether each tool reports an error.
	ExpectLegacy, ExpectMust, ExpectOurs bool
	// Body is the per-rank program.
	Body func(p *rma.Proc) error
}

func dbg(file string, line int) access.Debug { return access.Debug{File: file, Line: line} }

// Fig2a is the origin-side race of Figure 2a: an MPI_Get writes buf
// asynchronously while a Load reads it.
func Fig2a() Program {
	return Program{
		Name: "fig2a", Paper: "Figure 2a", Ranks: 2, Racy: true,
		ExpectLegacy: true, ExpectMust: true, ExpectOurs: true,
		Body: func(p *rma.Proc) error {
			w, err := p.WinCreate("X", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				buf := p.Alloc("buf", 16) // heap: MUST sees the Load
				if err := w.Get(buf, 0, 1, 0, 8, dbg("fig2a.c", 5)); err != nil {
					return err
				}
				if _, err := buf.Load(0, 8, dbg("fig2a.c", 6)); err != nil {
					return err
				}
			}
			return w.UnlockAll()
		},
	}
}

// Fig2b is the two-process race of Figure 2b: both processes Get each
// other's window into their own window, on overlapping ranges.
func Fig2b() Program {
	return Program{
		Name: "fig2b", Paper: "Figure 2b", Ranks: 2, Racy: true,
		ExpectLegacy: true, ExpectMust: true, ExpectOurs: true,
		Body: func(p *rma.Proc) error {
			w, err := p.WinCreate("X", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			// Each rank reads the peer's window location into its own
			// window at the same offset: RMA_Write (local window) vs
			// the incoming RMA_Read of the peer's Get.
			peer := 1 - p.Rank()
			if err := w.Get(w.Buffer(), 0, peer, 0, 8, dbg("fig2b.c", 7+p.Rank())); err != nil {
				return err
			}
			return w.UnlockAll()
		},
	}
}

// Code1 is Fig. 8a: Load(buf[4]); MPI_Put(buf[2],10); Store(buf[7]).
// The legacy analyzer misses the race (Fig. 5a); the contribution
// catches it.
func Code1() Program {
	return Program{
		Name: "code1", Paper: "Figure 8a / Code 1", Ranks: 2, Racy: true,
		ExpectLegacy: false, ExpectMust: true, ExpectOurs: true,
		Body: func(p *rma.Proc) error {
			w, err := p.WinCreate("X", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				buf := p.Alloc("buf", 32)
				if _, err := buf.Load(4, 1, dbg("code1.c", 4)); err != nil {
					return err
				}
				if err := w.Put(1, 0, buf, 2, 10, dbg("code1.c", 5)); err != nil {
					return err
				}
				if err := buf.Store(7, []byte{0xd2}, dbg("code1.c", 6)); err != nil {
					return err
				}
			}
			return w.UnlockAll()
		},
	}
}

// Code2 is Fig. 8b: 1,000 one-byte MPI_Gets at adjacent addresses in a
// loop, plus a final overlapping Get of buf[0] — the node-explosion
// workload the merging algorithm collapses. The program is safe only
// because every Get reads the same remote location; the final
// Get(buf[0]) overlaps the first destination and is the race the paper
// stops short of (we keep the loop safe by bounding it).
func Code2() Program {
	return Program{
		Name: "code2", Paper: "Figure 8b / Code 2", Ranks: 2, Racy: true,
		ExpectLegacy: true, ExpectMust: true, ExpectOurs: true,
		Body: func(p *rma.Proc) error {
			w, err := p.WinCreate("X", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				buf := p.Alloc("buf", 1024)
				for i := 0; i < 1000; i++ {
					if err := w.Get(buf, i, 1, 0, 1, dbg("code2.c", 4)); err != nil {
						return err
					}
				}
				// Get(buf[0], 1, X): overlaps the first destination —
				// two RMA writes to buf[0].
				if err := w.Get(buf, 0, 1, 0, 1, dbg("code2.c", 6)); err != nil {
					return err
				}
			}
			return w.UnlockAll()
		},
	}
}

// Code3 is Fig. 9: the duplicated MPI_Put of the MiniVite experiment,
// reduced to its essence.
func Code3() Program {
	return Program{
		Name: "code3", Paper: "Figure 9 / Code 3", Ranks: 2, Racy: true,
		ExpectLegacy: true, ExpectMust: true, ExpectOurs: true,
		Body: func(p *rma.Proc) error {
			w, err := p.WinCreate("commwin", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				scdata := p.Alloc("scdata", 16)
				if err := w.Put(1, 0, scdata, 0, 8, dbg("./dspl.hpp", 612)); err != nil {
					return err
				}
				if err := w.Put(1, 0, scdata, 0, 8, dbg("./dspl.hpp", 614)); err != nil {
					return err
				}
			}
			return w.UnlockAll()
		},
	}
}

// LoadThenGet is the safe order the legacy analyzer misreports
// (ll_load_get_inwindow_origin_safe, Table 2).
func LoadThenGet() Program {
	return Program{
		Name: "load_then_get", Paper: "Table 2 (ll_load_get_inwindow_origin_safe)", Ranks: 2, Racy: false,
		ExpectLegacy: true, ExpectMust: false, ExpectOurs: false,
		Body: func(p *rma.Proc) error {
			w, err := p.WinCreate("X", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				if _, err := w.Buffer().Load(0, 8, dbg("safe.c", 3)); err != nil {
					return err
				}
				if err := w.Get(w.Buffer(), 0, 1, 0, 8, dbg("safe.c", 4)); err != nil {
					return err
				}
			}
			return w.UnlockAll()
		},
	}
}

// All returns every example program.
func All() []Program {
	return []Program{Fig2a(), Fig2b(), Code1(), Code2(), Code3(), LoadThenGet()}
}

// Run executes the program under the given method and reports whether a
// race was detected.
func (pr Program) Run(method detector.Method) (bool, *detector.Race, error) {
	world := mpi.NewWorld(pr.Ranks)
	session := rma.NewSession(world, rma.Config{Method: method})
	err := world.Run(func(mp *mpi.Proc) error { return pr.Body(session.Proc(mp)) })
	session.Close()
	if r := session.Race(); r != nil {
		return true, r, nil
	}
	return false, nil, err
}
