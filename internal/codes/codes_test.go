package codes

import (
	"strings"
	"testing"

	"rmarace/internal/detector"
)

// TestPublishedVerdicts runs every example program under the three
// tools and checks the published verdicts hold.
func TestPublishedVerdicts(t *testing.T) {
	for _, pr := range All() {
		expects := []struct {
			method detector.Method
			want   bool
		}{
			{detector.RMAAnalyzer, pr.ExpectLegacy},
			{detector.MustRMAMethod, pr.ExpectMust},
			{detector.OurContribution, pr.ExpectOurs},
		}
		for _, e := range expects {
			detected, _, err := pr.Run(e.method)
			if err != nil {
				t.Fatalf("%s under %v: %v", pr.Name, e.method, err)
			}
			if detected != e.want {
				t.Errorf("%s (%s) under %v: detected=%v, want %v",
					pr.Name, pr.Paper, e.method, detected, e.want)
			}
		}
	}
}

// TestGroundTruthConsistency: the contribution's verdict must equal the
// ground truth on every example (0 FP / 0 FN).
func TestGroundTruthConsistency(t *testing.T) {
	for _, pr := range All() {
		if pr.ExpectOurs != pr.Racy {
			t.Errorf("%s: contribution verdict %v differs from ground truth %v", pr.Name, pr.ExpectOurs, pr.Racy)
		}
	}
}

// TestCode3ReportMatchesFigure9 checks the exact error text.
func TestCode3ReportMatchesFigure9(t *testing.T) {
	detected, race, err := Code3().Run(detector.OurContribution)
	if err != nil || !detected {
		t.Fatalf("code3: detected=%v err=%v", detected, err)
	}
	msg := race.Message()
	want := "Error when inserting memory access of type RMA_WRITE from file ./dspl.hpp:614 " +
		"with already inserted interval of type RMA_WRITE from file ./dspl.hpp:612. " +
		"The program will be exiting now with MPI_Abort."
	if msg != want {
		t.Errorf("message =\n%q\nwant\n%q", msg, want)
	}
}

// TestBaselineSilent: the baseline never reports.
func TestBaselineSilent(t *testing.T) {
	for _, pr := range All() {
		detected, _, err := pr.Run(detector.Baseline)
		if err != nil {
			t.Fatalf("%s: %v", pr.Name, err)
		}
		if detected {
			t.Errorf("%s: baseline detected a race", pr.Name)
		}
	}
}

// TestNamesAndPapers: every program names its paper source.
func TestNamesAndPapers(t *testing.T) {
	for _, pr := range All() {
		if pr.Name == "" || pr.Paper == "" || pr.Ranks < 2 {
			t.Errorf("underspecified program: %+v", pr)
		}
		if !strings.Contains(pr.Paper, "Figure") && !strings.Contains(pr.Paper, "Table") {
			t.Errorf("%s: paper reference %q", pr.Name, pr.Paper)
		}
	}
}
