// Package minivite reimplements the access behaviour of MiniVite, the
// distributed Louvain graph community detection proxy application used
// in the paper's Figs. 9, 11, 12 and Table 4.
//
// The simulated application distributes the graph's vertices over the
// ranks and runs one Louvain phase inside a single passive-target epoch
// on one communication window (like the original). Per local vertex it
//
//   - performs real arithmetic over the vertex's synthetic edges
//     (alias-filtered scratch: only MUST-RMA instruments it),
//   - touches four 8-byte attribute fields of two 24-byte-strided
//     record arrays (instrumented local accesses at distinct, never
//     adjacent addresses — the reason merging barely helps on MiniVite,
//     §5.3/Table 4),
//   - sends its community datum to ghost owners with a
//     rank-count-dependent expected frequency: MPI_Puts into the
//     vertex's dedicated strided slots of the targets' windows.
//
// Each rank also writes small contiguous per-neighbour header runs
// (counts arrays), the only adjacent accesses in the run — they are
// what the merging algorithm does manage to coalesce, reproducing the
// small, rank-count-dependent node reductions of Table 4 (≈3.8·P nodes
// saved per process).
//
// InjectRace duplicates one MPI_Put, reproducing the experiment of
// Fig. 9 (Code 3) including the ./dspl.hpp:612/614 error report.
package minivite

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/rma"
)

// Config sizes one MiniVite run.
type Config struct {
	Ranks int
	// Vertices is the global vertex count (the paper uses 640,000 and
	// 1,280,000).
	Vertices int
	// EdgesPerVertex controls the interior compute volume.
	EdgesPerVertex int
	// InjectRace duplicates an MPI_Put (Fig. 9 / Code 3).
	InjectRace bool
	// Seed makes the communication pattern deterministic.
	Seed int64
}

// Default returns the paper's configuration for the given rank count
// and input size.
func Default(ranks, vertices int) Config {
	return Config{Ranks: ranks, Vertices: vertices, EdgesPerVertex: 8, Seed: 1}
}

// Small is a fast configuration for tests.
func Small() Config {
	return Config{Ranks: 4, Vertices: 2000, EdgesPerVertex: 4, Seed: 1}
}

// Result aggregates one run's measurements.
type Result struct {
	Method detector.Method
	// Wall is the total wall-clock time of the run. On the single-core
	// simulator all ranks serialise, so Wall approximates the machine
	// time of the whole job.
	Wall time.Duration
	// PerProcessTime is Wall divided by the rank count — the
	// strong-scaling execution-time proxy reported for Figs. 11 and 12.
	PerProcessTime time.Duration
	// MaxNodesPerProcess is the largest per-rank BST high-water mark —
	// the Table 4 metric.
	MaxNodesPerProcess int
	// TotalAccesses counts analysed accesses over all ranks.
	TotalAccesses uint64
	// Race is non-nil when the run aborted on a detected race.
	Race *detector.Race
}

const (
	attrStride  = 24 // vertex records: three 8-byte fields per 24-byte struct
	slotStride  = 16 // remote slots: {community, degree}, only community written
	headerSlots = 11 // 8-byte slots per contiguous header run
	// maxHalfNeighbors bounds each rank's communication partners to a
	// ring neighbourhood (±maxHalfNeighbors), like a graph partitioner
	// placing adjacent vertex blocks on nearby ranks. This keeps window
	// memory O(vertices) instead of O(ranks·vertices).
	maxHalfNeighbors = 16
)

// halfNeighbors returns the one-sided neighbourhood radius for a world
// of P ranks.
func halfNeighbors(ranks int) int {
	h := (ranks - 1) / 2
	if h > maxHalfNeighbors {
		h = maxHalfNeighbors
	}
	if h < 1 {
		h = 1
	}
	return h
}

// neighborCount returns the number of communication partners per rank.
func neighborCount(ranks int) int {
	n := 2 * halfNeighbors(ranks)
	if n > ranks-1 {
		n = ranks - 1
	}
	return n
}

// deltaToSegment maps the ring distance between origin and target to
// the origin's segment index in the target's window. delta is
// (origin-target) mod ranks and must lie in the neighbourhood.
func deltaToSegment(delta, ranks int) int {
	h := halfNeighbors(ranks)
	if delta >= 1 && delta <= h {
		return delta - 1
	}
	return h + (ranks - delta) - 1
}

// commRate is the expected number of ghost-owner Puts per vertex. It
// grows with the rank count — smaller partitions cut more edges — and
// is calibrated against Table 4's per-process node counts:
// λ(32)=0.21 scaled by (P/32)^0.77.
func commRate(ranks int) float64 {
	return 0.21 * math.Pow(float64(ranks)/32.0, 0.77)
}

// headerRuns is the number of contiguous header regions each rank
// writes; merging saves (headerSlots-1) nodes per run, ≈3.8·P nodes per
// process in total.
func headerRuns(ranks int) int { return (38*ranks + 50) / 100 }

func dbgv(line int) access.Debug { return access.Debug{File: "./dspl.hpp", Line: line} }

// Run executes the simulated MiniVite under the given analysis method.
func Run(cfg Config, method detector.Method) (Result, error) {
	return RunOpts(cfg, rma.Config{Method: method})
}

// RunOpts executes MiniVite under a full analysis configuration, e.g.
// the contribution with the strided-merging extension enabled.
func RunOpts(cfg Config, rmaCfg rma.Config) (Result, error) {
	if cfg.Ranks < 2 {
		return Result{}, fmt.Errorf("minivite: need at least 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.Vertices < cfg.Ranks {
		return Result{}, fmt.Errorf("minivite: %d vertices over %d ranks", cfg.Vertices, cfg.Ranks)
	}
	method := rmaCfg.Method
	world := mpi.NewWorld(cfg.Ranks)
	session := rma.NewSession(world, rmaCfg)

	start := time.Now()
	runErr := world.Run(func(mp *mpi.Proc) error {
		return rank(session.Proc(mp), cfg)
	})
	wall := time.Since(start)
	session.Close()

	res := Result{
		Method:         method,
		Wall:           wall,
		PerProcessTime: wall / time.Duration(cfg.Ranks),
		Race:           session.Race(),
	}
	if runErr != nil && res.Race == nil {
		return res, runErr
	}
	for _, ws := range session.Stats() {
		res.TotalAccesses += ws.Accesses
		for _, n := range ws.PerRankMaxNodes {
			if n > res.MaxNodesPerProcess {
				res.MaxNodesPerProcess = n
			}
		}
	}
	return res, nil
}

// rank is the per-process MiniVite body: one Louvain phase, one epoch.
func rank(p *rma.Proc, cfg Config) error {
	me := p.Rank()
	nv := cfg.Vertices / cfg.Ranks
	rng := rand.New(rand.NewSource(cfg.Seed + int64(me)*7919))

	// The communication window: one strided slot per (neighbouring
	// origin, vertex), plus the gap-separated header runs.
	headerBytes := headerRuns(cfg.Ranks) * (headerSlots + 1) * 8
	segBytes := nv*slotStride + 64
	winBytes := neighborCount(cfg.Ranks)*segBytes + headerBytes
	w, err := p.WinCreate("commwin", winBytes)
	if err != nil {
		return err
	}

	// Two vertex record arrays (tracked: they feed the communication)
	// and interior Louvain state (alias-filtered).
	attrs := p.Alloc("scdata", nv*attrStride+32)
	degs := p.Alloc("vdegree", nv*attrStride+32)
	edges := p.Alloc("edges", 8*maxInt(nv*cfg.EdgesPerVertex, 8), rma.Untracked())

	if err := w.LockAll(); err != nil {
		return err
	}

	rate := commRate(cfg.Ranks)
	injected := false
	var word [8]byte
	for v := 0; v < nv; v++ {
		// Interior compute: iterate the vertex's edges (real work, only
		// MUST-RMA instruments the accesses).
		var acc uint64
		for e := 0; e < cfg.EdgesPerVertex; e++ {
			off := ((v*cfg.EdgesPerVertex + e) * 8) % (edges.Size() - 8)
			x, err := edges.LoadU64(off, dbgv(590))
			if err != nil {
				return err
			}
			acc = acc*6364136223846793005 + x + 1442695040888963407
		}
		word[0] = byte(acc)

		// Four attribute accesses at distinct strided addresses: fields
		// of this vertex's records, never adjacent to one another or to
		// the neighbouring vertices' fields.
		base := v * attrStride
		if _, err := attrs.Load(base, 8, dbgv(601)); err != nil {
			return err
		}
		if err := attrs.Store(base+8, word[:], dbgv(602)); err != nil {
			return err
		}
		if _, err := attrs.Load(base+16, 8, dbgv(603)); err != nil {
			return err
		}
		if err := degs.Store(base, word[:], dbgv(604)); err != nil {
			return err
		}

		// Ghost communication: expected rate Puts per vertex, each to a
		// distinct ghost owner, into this vertex's dedicated strided
		// slot there. The Put source is a record field no local access
		// touches, so every instrumented access in the run covers a
		// distinct interval (no accidental combining).
		puts := int(rate)
		if rng.Float64() < rate-float64(puts) {
			puts++
		}
		if nb := neighborCount(cfg.Ranks); puts > nb {
			puts = nb
		}
		if puts > 0 {
			h := halfNeighbors(cfg.Ranks)
			deltas := rng.Perm(neighborCount(cfg.Ranks))[:puts]
			for _, d := range deltas {
				// Map the permutation index to a signed ring offset in
				// [-h..-1, 1..h].
				off := d + 1
				if off > h {
					off = -(off - h)
				}
				target := ((me+off)%cfg.Ranks + cfg.Ranks) % cfg.Ranks
				seg := deltaToSegment(((me-target)%cfg.Ranks+cfg.Ranks)%cfg.Ranks, cfg.Ranks)
				slot := seg*segBytes + v*slotStride
				if err := w.Put(target, slot, degs, base+8, 8, dbgv(612)); err != nil {
					return err
				}
				if cfg.InjectRace && !injected && v > nv/2 {
					injected = true
					// Fig. 9 / Code 3: the duplicated MPI_Put two
					// source lines below the original.
					if err := w.Put(target, slot, degs, base+8, 8, dbgv(614)); err != nil {
						return err
					}
				}
			}
		}
	}

	// Per-neighbour header runs: the contiguous counts arrays — the
	// only adjacent instrumented accesses in MiniVite.
	hdrBase := neighborCount(cfg.Ranks) * segBytes
	for h := 0; h < headerRuns(cfg.Ranks); h++ {
		runBase := hdrBase + h*(headerSlots+1)*8
		for s := 0; s < headerSlots; s++ {
			if err := w.Buffer().Store(runBase+s*8, word[:], dbgv(608)); err != nil {
				return err
			}
		}
	}

	return w.UnlockAll()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
