package minivite

import (
	"strings"
	"testing"

	"rmarace/internal/detector"
	"rmarace/internal/rma"
)

func TestRunCleanUnderAllMethods(t *testing.T) {
	for _, m := range detector.Methods() {
		res, err := Run(Small(), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Race != nil {
			t.Fatalf("%v: unexpected race: %v", m, res.Race)
		}
		if res.Wall <= 0 || res.PerProcessTime <= 0 {
			t.Fatalf("%v: no time measured", m)
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{Ranks: 1, Vertices: 100}, detector.Baseline); err == nil {
		t.Fatal("1-rank config accepted")
	}
	if _, err := Run(Config{Ranks: 8, Vertices: 4}, detector.Baseline); err == nil {
		t.Fatal("fewer vertices than ranks accepted")
	}
}

// TestInjectedRaceDetected reproduces Fig. 9: the duplicated MPI_Put is
// caught by both tree-based analyzers with the dspl.hpp:612/614 report.
func TestInjectedRaceDetected(t *testing.T) {
	cfg := Small()
	cfg.InjectRace = true
	for _, m := range []detector.Method{detector.RMAAnalyzer, detector.OurContribution} {
		res, err := Run(cfg, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Race == nil {
			t.Fatalf("%v missed the injected duplicate-Put race", m)
		}
		msg := res.Race.Message()
		if !strings.Contains(msg, "./dspl.hpp:614") || !strings.Contains(msg, "./dspl.hpp:612") {
			t.Errorf("%v: race message lacks the Fig. 9 locations: %s", m, msg)
		}
		if !strings.Contains(msg, "RMA_WRITE") {
			t.Errorf("%v: race message should name RMA_WRITE: %s", m, msg)
		}
	}
}

// TestNodeCountsNearlyEqual is Table 4's story: merging saves only the
// header runs, so legacy and contribution node counts differ by a few
// percent at most.
func TestNodeCountsNearlyEqual(t *testing.T) {
	cfg := Small()
	legacy, err := Run(cfg, detector.RMAAnalyzer)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Run(cfg, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	if ours.MaxNodesPerProcess >= legacy.MaxNodesPerProcess {
		t.Fatalf("no reduction: legacy %d, ours %d", legacy.MaxNodesPerProcess, ours.MaxNodesPerProcess)
	}
	reduction := float64(legacy.MaxNodesPerProcess-ours.MaxNodesPerProcess) / float64(legacy.MaxNodesPerProcess)
	if reduction > 0.15 {
		t.Fatalf("reduction %.2f%% too large for MiniVite's non-adjacent accesses (legacy %d, ours %d)",
			100*reduction, legacy.MaxNodesPerProcess, ours.MaxNodesPerProcess)
	}
}

// TestNodeCountDecreasesWithRanks mirrors Table 4's rows: more ranks →
// fewer vertices per rank → smaller per-process trees.
func TestNodeCountDecreasesWithRanks(t *testing.T) {
	base := Config{Vertices: 8000, EdgesPerVertex: 2, Seed: 1}
	var prev int
	for i, ranks := range []int{4, 8, 16} {
		cfg := base
		cfg.Ranks = ranks
		res, err := Run(cfg, detector.RMAAnalyzer)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.MaxNodesPerProcess >= prev {
			t.Fatalf("nodes did not shrink: %d ranks -> %d, previous %d", ranks, res.MaxNodesPerProcess, prev)
		}
		prev = res.MaxNodesPerProcess
	}
}

// TestDeterministicAcrossMethods: the communication pattern depends
// only on the seed, so access counts agree between the tree analyzers.
func TestDeterministicAcrossMethods(t *testing.T) {
	cfg := Small()
	a, err := Run(cfg, detector.RMAAnalyzer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalAccesses != b.TotalAccesses {
		t.Fatalf("access counts differ: %d vs %d", a.TotalAccesses, b.TotalAccesses)
	}
}

func TestCalibrationFormulaAgainstTable4(t *testing.T) {
	// The analytic model behind the calibration: per-process accesses ≈
	// 4·nv + 2·nv·λ(P) + headerRuns·headerSlots. Check it against the
	// published Table 4 legacy node counts within 10%.
	cases := []struct {
		ranks, vertices int
		want            float64
	}{
		{32, 640000, 88528}, {64, 640000, 48180}, {128, 640000, 26383}, {256, 640000, 15544},
		{32, 1280000, 177223}, {64, 1280000, 97347}, {128, 1280000, 52105}, {256, 1280000, 29129},
	}
	for _, c := range cases {
		nv := float64(c.vertices / c.ranks)
		model := 4*nv + 2*nv*commRate(c.ranks) + float64(headerRuns(c.ranks)*headerSlots)
		if diff := (model - c.want) / c.want; diff > 0.10 || diff < -0.10 {
			t.Errorf("P=%d V=%d: model %.0f vs paper %.0f (%.1f%%)", c.ranks, c.vertices, model, c.want, 100*diff)
		}
	}
}

// TestStridedMergingCollapsesAttributeAccesses validates the paper's
// §6(3) hypothesis on MiniVite itself: with regular-section compression
// the strided attribute accesses — which plain merging cannot touch —
// collapse, cutting the per-process store far below the plain
// contribution's.
func TestStridedMergingCollapsesAttributeAccesses(t *testing.T) {
	cfg := Small()
	plain, err := Run(cfg, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	strided, err := RunOpts(cfg, rma.Config{Method: detector.OurContribution, StridedMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	if strided.Race != nil {
		t.Fatalf("strided mode raced: %v", strided.Race)
	}
	if strided.MaxNodesPerProcess*2 > plain.MaxNodesPerProcess {
		t.Fatalf("strided merging did not compress MiniVite: %d vs %d nodes",
			strided.MaxNodesPerProcess, plain.MaxNodesPerProcess)
	}
}

// TestStridedMergingStillCatchesInjectedRace: compression must not cost
// detection.
func TestStridedMergingStillCatchesInjectedRace(t *testing.T) {
	cfg := Small()
	cfg.InjectRace = true
	res, err := RunOpts(cfg, rma.Config{Method: detector.OurContribution, StridedMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Race == nil {
		t.Fatal("strided mode missed the injected race")
	}
}
