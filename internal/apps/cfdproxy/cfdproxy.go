// Package cfdproxy reimplements the access behaviour of CFD-Proxy, the
// computational-fluid-dynamics proxy application of the paper's Fig. 10
// experiment: an unstructured-mesh halo exchange over MPI-RMA passive
// target synchronisation.
//
// Like the original, the simulated application has two windows per MPI
// process and exactly two epochs in the whole program — one per window.
// Within an epoch every process, for each halo-exchange iteration,
// packs its boundary points into a send buffer (instrumented local
// stores), puts each point into its dedicated slot of every neighbour's
// window (origin-side RMA reads, target-side RMA writes) and performs
// interior computation on alias-filtered scratch memory (only
// ThreadSanitizer pays for those accesses).
//
// The layout gives the paper's headline §5.3 effect: every process's
// remote accesses towards a given target are adjacent and issued from
// one source line, so the merging algorithm collapses them into a
// single BST node per origin — a per-process tree of a few dozen nodes
// versus one node per access (≈90k) for the legacy analyzer.
package cfdproxy

import (
	"fmt"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/obs"
	"rmarace/internal/obs/span"
	"rmarace/internal/rma"
)

// Config sizes one CFD-Proxy run. The zero value is not runnable; use
// Default or Small.
type Config struct {
	Ranks int
	// Iters is the total number of halo-exchange iterations, split
	// evenly between the two windows (one epoch each).
	Iters int
	// Points is the number of 8-byte halo points exchanged per
	// neighbour per iteration.
	Points int
	// InteriorOps is the number of alias-filtered interior accesses per
	// rank per iteration (the computation the LLVM alias analysis
	// proves irrelevant).
	InteriorOps int
}

// Default matches the paper's Fig. 10 run: 1 node, 12 ranks,
// 50 iterations. Points is calibrated so the legacy analyzer's
// per-process BST reaches the published ≈90,004 nodes
// (2 windows × 2 accesses × 11 neighbours × 25 iterations × 82 points
// = 90,200).
func Default() Config {
	return Config{Ranks: 12, Iters: 50, Points: 82, InteriorOps: 2000}
}

// Small is a fast configuration for tests.
func Small() Config {
	return Config{Ranks: 4, Iters: 6, Points: 8, InteriorOps: 32}
}

// Result aggregates one run's measurements.
type Result struct {
	Method detector.Method
	// EpochTime is the cumulative time all ranks spent inside epochs —
	// the Fig. 10 metric.
	EpochTime time.Duration
	// MaxNodesPerProcess is the largest per-rank BST footprint (summed
	// over the two windows) — the §5.3 node-count claim.
	MaxNodesPerProcess int
	// TotalAccesses counts analysed accesses over all ranks and
	// windows.
	TotalAccesses uint64
	// Race is non-nil if the run aborted on a (would-be) data race.
	Race *detector.Race
	// Report is the structured run report, built when the session was
	// configured with a Recorder (RunOpts); nil otherwise.
	Report *obs.RunReport
	// Spans is the session's causal span tracer, non-nil when the run
	// was configured with Config.Spans; export it with WriteChromeTrace.
	Spans *span.Tracer
}

func dbg(line int) access.Debug { return access.Debug{File: "./cfdproxy/exchange.c", Line: line} }

// Run executes the simulated CFD-Proxy under the given analysis method.
func Run(cfg Config, method detector.Method) (Result, error) {
	return RunOpts(cfg, rma.Config{Method: method})
}

// RunOpts executes CFD-Proxy under a full analysis configuration, e.g.
// with a metrics Recorder attached; a configured Recorder additionally
// fills Result.Report.
func RunOpts(cfg Config, rmaCfg rma.Config) (Result, error) {
	if cfg.Ranks < 2 {
		return Result{}, fmt.Errorf("cfdproxy: need at least 2 ranks, got %d", cfg.Ranks)
	}
	world := mpi.NewWorld(cfg.Ranks)
	session := rma.NewSession(world, rmaCfg)

	runErr := world.Run(func(mp *mpi.Proc) error {
		return rank(session.Proc(mp), cfg)
	})
	session.Close()

	res := Result{Method: rmaCfg.Method, Race: session.Race()}
	if runErr != nil && res.Race == nil {
		return res, runErr
	}
	res.EpochTime, _ = session.EpochTime()
	for _, ws := range session.Stats() {
		res.TotalAccesses += ws.Accesses
	}
	res.MaxNodesPerProcess = maxPerProcessNodes(session)
	if rmaCfg.Recorder != nil {
		res.Report = session.Report("run")
	}
	res.Spans = session.Spans()
	return res, nil
}

// maxPerProcessNodes sums each rank's high-water node counts over all
// windows and returns the largest.
func maxPerProcessNodes(s *rma.Session) int {
	stats := s.Stats()
	if len(stats) == 0 {
		return 0
	}
	perRank := make([]int, len(stats[0].PerRankMaxNodes))
	for _, ws := range stats {
		for r, n := range ws.PerRankMaxNodes {
			perRank[r] += n
		}
	}
	best := 0
	for _, n := range perRank {
		if n > best {
			best = n
		}
	}
	return best
}

// rank is the per-process CFD-Proxy body.
func rank(p *rma.Proc, cfg Config) error {
	nb := cfg.Ranks - 1 // all other ranks are halo neighbours
	halfIters := cfg.Iters / 2
	if halfIters == 0 {
		halfIters = 1
	}
	ptBytes := 8
	segBytes := halfIters * cfg.Points * ptBytes // one origin's region
	winBytes := nb * segBytes

	// Two windows, as in the original application (e.g. cell-centred
	// and point-centred halo data).
	winA, err := p.WinCreate("halo.A", winBytes)
	if err != nil {
		return err
	}
	winB, err := p.WinCreate("halo.B", winBytes)
	if err != nil {
		return err
	}

	// Send buffers mirror the window layout: one slot per (neighbour,
	// iteration, point), so no location is ever written twice within an
	// epoch — re-using slots would need MPI_Win_flush synchronisation,
	// which none of the tools supports soundly (§6(2)). The original
	// application additionally updates its solution arrays between
	// flushes inside the epoch, which the legacy tool misdiagnoses (the
	// CFD-Proxy false positive of §6(2)); to measure full-run overhead
	// under every tool, the pack phase here runs before the epoch
	// opens, where the paper's instrumentation does not collect
	// accesses.
	sendA := p.Alloc("send.A", winBytes)
	sendB := p.Alloc("send.B", winBytes)
	fill(sendA, p.Rank())
	fill(sendB, p.Rank()+1)

	// Interior state: the alias analysis proves it never aliases an RMA
	// region.
	interior := p.Alloc("interior", 4096, rma.Untracked())

	for phase := 0; phase < 2; phase++ {
		w, send := winA, sendA
		if phase == 1 {
			w, send = winB, sendB
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		for iter := 0; iter < halfIters; iter++ {
			if err := exchange(p, w, send, cfg, nb, iter, cfg.Points, segBytes); err != nil {
				return err
			}
			if err := compute(interior, cfg.InteriorOps); err != nil {
				return err
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
	}
	return nil
}

// neighborIndex maps the origin rank o to its segment index in target
// t's window (ranks skip themselves).
func neighborIndex(o, t int) int {
	if o < t {
		return o
	}
	return o - 1
}

// exchange packs and puts one iteration's halo points to every
// neighbour.
func exchange(p *rma.Proc, w *rma.Win, send *rma.Buffer, cfg Config, nb, iter, points, segBytes int) error {
	me := p.Rank()
	ptBytes := 8
	for t := 0; t < cfg.Ranks; t++ {
		if t == me {
			continue
		}
		nbIdx := neighborIndex(t, me) // this neighbour's region in MY send buffer
		base := nbIdx*segBytes + iter*points*ptBytes
		// Put: one one-sided operation per point (the fine-grained
		// variant of the exchange), all from one source line. The
		// target-side slots of one origin are adjacent, which is what
		// the merging algorithm exploits.
		tgtBase := neighborIndex(me, t)*segBytes + iter*points*ptBytes
		for pt := 0; pt < points; pt++ {
			if err := w.Put(t, tgtBase+pt*ptBytes, send, base+pt*ptBytes, ptBytes, dbg(102)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fill initialises a send buffer outside the epoch (uninstrumented, as
// the paper's tooling only collects accesses within epochs).
func fill(b *rma.Buffer, seed int) {
	raw := b.Raw()
	for i := range raw {
		raw[i] = byte(i + seed)
	}
}

// compute performs interior work on alias-filtered memory: arithmetic
// plus Filtered loads/stores that only the MUST-RMA simulator analyses.
func compute(interior *rma.Buffer, ops int) error {
	var acc uint64 = 1
	for i := 0; i < ops; i++ {
		off := (i * 8) % (interior.Size() - 8)
		v, err := interior.LoadU64(off, dbg(201))
		if err != nil {
			return err
		}
		acc = acc*2862933555777941757 + v + 3037000493
		if err := interior.StoreU64(off, acc, dbg(202)); err != nil {
			return err
		}
	}
	return nil
}
