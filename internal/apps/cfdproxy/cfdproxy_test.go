package cfdproxy

import (
	"testing"

	"rmarace/internal/detector"
)

func TestRunCleanUnderAllMethods(t *testing.T) {
	for _, m := range detector.Methods() {
		res, err := Run(Small(), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Race != nil {
			t.Fatalf("%v: unexpected race: %v", m, res.Race)
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{Ranks: 1}, detector.Baseline); err == nil {
		t.Fatal("1-rank config accepted")
	}
}

// TestAccessAccounting checks the workload emits exactly the calibrated
// access volume: 3 accesses per (neighbour, iteration, point) per
// process per window (pack store, origin-side read, target-side write).
func TestAccessAccounting(t *testing.T) {
	cfg := Small()
	res, err := Run(cfg, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	nb := cfg.Ranks - 1
	half := cfg.Iters / 2
	want := uint64(2 * cfg.Ranks * nb * half * cfg.Points * 2)
	if res.TotalAccesses != want {
		t.Fatalf("accesses = %d, want %d", res.TotalAccesses, want)
	}
}

// TestNodeReduction is the §5.3 claim at test scale: the legacy tree
// holds one node per access while the merged tree stays within a few
// nodes per neighbour.
func TestNodeReduction(t *testing.T) {
	cfg := Small()
	legacy, err := Run(cfg, detector.RMAAnalyzer)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Run(cfg, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	nb := cfg.Ranks - 1
	half := cfg.Iters / 2
	wantLegacy := 2 * 2 * nb * half * cfg.Points // per process, both windows
	if legacy.MaxNodesPerProcess != wantLegacy {
		t.Errorf("legacy nodes per process = %d, want %d", legacy.MaxNodesPerProcess, wantLegacy)
	}
	// Merged: a handful of nodes per neighbour per window.
	limit := 2 * nb * 6
	if ours.MaxNodesPerProcess > limit {
		t.Errorf("merged nodes per process = %d, want <= %d", ours.MaxNodesPerProcess, limit)
	}
	if ours.MaxNodesPerProcess*10 > legacy.MaxNodesPerProcess {
		t.Errorf("node reduction too small: %d -> %d", legacy.MaxNodesPerProcess, ours.MaxNodesPerProcess)
	}
}

func TestEpochTimeMeasured(t *testing.T) {
	res, err := Run(Small(), detector.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochTime <= 0 {
		t.Fatal("no epoch time measured")
	}
}

// TestMustSeesFilteredInteriorWork: the MUST simulator analyses the
// alias-filtered interior accesses the tree analyzers skip.
func TestMustSeesFilteredInteriorWork(t *testing.T) {
	cfg := Small()
	ours, err := Run(cfg, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	must, err := Run(cfg, detector.MustRMAMethod)
	if err != nil {
		t.Fatal(err)
	}
	if must.TotalAccesses <= ours.TotalAccesses {
		t.Fatalf("MUST analysed %d accesses, tree analyzers %d; interior work missing",
			must.TotalAccesses, ours.TotalAccesses)
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := Default()
	if cfg.Ranks != 12 || cfg.Iters != 50 {
		t.Fatalf("default config = %+v; the paper uses 12 ranks and 50 iterations", cfg)
	}
	// The calibration targets the published ≈90k legacy nodes per
	// process: 2 windows × 3 accesses × 11 neighbours × 25 iters × 54
	// points = 89,100.
	nodes := 2 * 2 * (cfg.Ranks - 1) * (cfg.Iters / 2) * cfg.Points
	if nodes < 85000 || nodes > 95000 {
		t.Fatalf("default calibration gives %d legacy nodes per process, want ≈90,004", nodes)
	}
}
