package fuzz

import (
	"math/rand"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/trace"
)

// FileName is the synthetic source file of every generated access.
const FileName = "fuzz.c"

// scheduleOrder returns, per epoch, the op indices in scheduled
// execution order: a seeded interleaving of the per-(rank, thread)
// operation streams, grouped by effective epoch (a thread-1 op emits
// under its thread's last resynchronisation epoch, so hoisted hybrid
// work lands in the epoch it actually executes in). Per-thread program
// order is always preserved (each thread's ops appear in listed
// order), which is what makes the oracle's verdict set
// schedule-invariant for every program Program.ScheduleInvariant
// admits — the only ordered constructs the race predicate then cares
// about are same-stream ones, and those never reorder. (Mixed
// shared/exclusive SyncLock programs and programs with thread-1 ops
// are the exceptions: release ordering and cross-thread same-rank
// interleaving make their verdicts schedule-dependent by the
// semantics of locks and threads themselves.)
// Seed 0 is the identity schedule: global program order.
func scheduleOrder(p Program, seed int64) [][]int {
	eff := p.effEpochs()
	out := make([][]int, p.Epochs)
	var rng *rand.Rand
	if seed != 0 {
		rng = rand.New(rand.NewSource(seed))
	}
	for e := 0; e < p.Epochs; e++ {
		if rng == nil {
			for i := range p.Ops {
				if eff[i] == e {
					out[e] = append(out[e], i)
				}
			}
			continue
		}
		// Per-(rank, thread) queues, drained by a pick weighted by
		// remaining length so long streams don't starve. Thread-0-only
		// programs leave the odd queues empty, so the draw sequence is
		// identical to the historical per-rank scheduling.
		queues := make([][]int, p.Ranks*2)
		remaining := 0
		for i := range p.Ops {
			if eff[i] != e {
				continue
			}
			q := p.Ops[i].Origin*2 + p.Ops[i].Thread
			queues[q] = append(queues[q], i)
			remaining++
		}
		for remaining > 0 {
			n := rng.Intn(remaining)
			for r := range queues {
				if n < len(queues[r]) {
					out[e] = append(out[e], queues[r][0])
					queues[r] = queues[r][1:]
					break
				}
				n -= len(queues[r])
			}
			remaining--
		}
	}
	return out
}

// LiveSeq flattens a schedule into the StepBarrier sequence for a live
// run: one entry per operation (every op takes a step, analysed or
// not), holding the issuing rank.
func LiveSeq(p Program, schedSeed int64) []int {
	p = Normalize(p)
	var seq []int
	for _, idxs := range scheduleOrder(p, schedSeed) {
		for _, i := range idxs {
			seq = append(seq, p.Ops[i].Origin)
		}
	}
	return seq
}

// opTypes returns the origin- and target-side access types of a
// one-sided op, mirroring the instrumentation: Put reads its origin
// buffer and writes the target window, Get the reverse, Accumulate
// reads the origin buffer and accum-writes the target window. The
// request-based forms access memory exactly like their blocking
// counterparts.
func opTypes(k OpKind) (origin, target access.Type) {
	switch k {
	case OpPut, OpRput:
		return access.RMARead, access.RMAWrite
	case OpGet, OpRget:
		return access.RMAWrite, access.RMARead
	default: // OpAccum
		return access.RMARead, access.RMAAccum
	}
}

// Render produces the trace records the instrumentation layer would
// emit for one run of p under the given schedule, mirroring the live
// runtime's semantics record for record:
//
//   - a one-sided op yields an origin-side event at the origin's own
//     analyzer (its private buffer, stamped with the origin's epoch) and
//     a target-side event at the target's analyzer (the window region,
//     stamped with the target's epoch — notifications are drained before
//     the target's EpochEnd, so the stamp is the target's current
//     counter);
//   - local loads and stores are analysed only inside an open passive
//     or fence epoch (SyncLockAll, SyncFence); under SyncPSCW and
//     SyncLock they fall outside every epoch and are not collected;
//   - a multi-block (derived datatype) op emits one target-side event
//     per strided block and a single contiguous origin-side event
//     covering Len*Count slots;
//   - window w's streams are the synthetic owners w*Ranks + rank.
//     Target-side events and on-window locals go to the op's window
//     stream; origin-side private-buffer events always go to the
//     origin's base stream (window 0), so buffer reuse across windows
//     meets in one analyzer;
//   - a request op (Rput/Rget) leaves its origin-buffer span
//     outstanding; the rank's next OpWaitAll emits one "complete"
//     record per outstanding request, retiring the span's one-sided
//     origin accesses at the rank's own analyzer. Local completion
//     emits nothing at the target — MPI_Wait does not synchronise the
//     target side. Epoch boundaries drop outstanding requests without
//     completes (epoch_end already clears the stores);
//   - each epoch boundary emits one epoch_end per stream (UnlockAll,
//     Fence, or PSCW Wait — all ranks synchronise each phase, on every
//     window);
//   - in SyncLock programs an exclusive unlock emits a release of the
//     origin's accesses at the target's window stream, immediately
//     after the op it brackets; shared unlocks release nothing.
func Render(p Program, schedSeed int64) []trace.Record {
	p = Normalize(p)
	streams := p.Ranks * p.Windows
	times := make([]uint64, p.Ranks)
	ep := make([]uint64, streams)
	outstanding := make([][]interval.Interval, p.Ranks)
	var recs []trace.Record
	owner := func(win, r int) int { return win*p.Ranks + r }
	emit := func(ow int, a access.Access, t uint64) {
		recs = append(recs, trace.AccessRecord(ow, detector.Event{Acc: a, Time: t, CallTime: t}))
	}
	for _, idxs := range scheduleOrder(p, schedSeed) {
		for _, i := range idxs {
			op := p.Ops[i]
			o := op.Origin
			dbg := access.Debug{File: FileName, Line: op.Line}
			switch op.Kind {
			case OpSignal, OpWaitSig:
				continue // rank-internal thread sync: no records
			case OpWaitAll:
				for _, iv := range outstanding[o] {
					recs = append(recs, trace.Record{Kind: "complete", Owner: o, Rank: o, Lo: iv.Lo, Hi: iv.Hi})
				}
				outstanding[o] = outstanding[o][:0]
				continue
			}
			if op.Kind.IsRMA() {
				times[o]++
				ct := times[o]
				oT, tT := opTypes(op.Kind)
				oiv := interval.Span(localBase+uint64(op.LSlot*Slot), uint64(op.Len*op.Count*Slot))
				emit(o, access.Access{
					Interval: oiv,
					Type:     oT, Rank: o, Epoch: ep[o], Debug: dbg,
				}, ct)
				tgt := owner(op.Win, op.Target)
				for k := 0; k < op.Count; k++ {
					woff := op.WOff + k*op.Stride
					emit(tgt, access.Access{
						Interval: interval.Span(winBase+uint64(woff*Slot), uint64(op.Len*Slot)),
						Type:     tT, Rank: o, Epoch: ep[tgt], AccumOp: op.AOp, Debug: dbg,
					}, ct)
				}
				if op.Kind.IsRequest() {
					outstanding[o] = append(outstanding[o], oiv)
				}
				if p.Sync == SyncLock && !op.Shared {
					recs = append(recs, trace.Record{Kind: "release", Owner: tgt, Rank: o})
				}
				continue
			}
			if p.Sync != SyncLockAll && p.Sync != SyncFence {
				continue // outside any epoch: not collected
			}
			times[o]++
			tp := access.LocalRead
			if op.Kind == OpStore {
				tp = access.LocalWrite
			}
			ow := o
			iv := interval.Span(localBase+uint64(op.LSlot*Slot), uint64(op.Len*Slot))
			if op.OnWin {
				ow = owner(op.Win, o)
				iv = interval.Span(winBase+uint64(op.WOff*Slot), uint64(op.Len*Slot))
			}
			emit(ow, access.Access{Interval: iv, Type: tp, Rank: o, Epoch: ep[ow], Debug: dbg}, times[o])
		}
		if p.Sync != SyncLock {
			for s := 0; s < streams; s++ {
				recs = append(recs, trace.Record{Kind: "epoch_end", Owner: s})
				ep[s]++
			}
			for r := range outstanding {
				outstanding[r] = outstanding[r][:0]
			}
		}
	}
	return recs
}
