package fuzz

import (
	"math/rand"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/trace"
)

// FileName is the synthetic source file of every generated access.
const FileName = "fuzz.c"

// scheduleOrder returns, per epoch, the op indices in scheduled
// execution order: a seeded interleaving of the per-rank operation
// streams. Per-rank program order is always preserved (each rank's ops
// appear in listed order), which is what makes the oracle's verdict set
// schedule-invariant for every program Program.ScheduleInvariant admits
// — the only ordered constructs the race predicate then cares about are
// same-rank ones, and those never reorder. (Mixed shared/exclusive
// SyncLock programs are the exception: release ordering makes their
// verdicts schedule-dependent by the semantics of locks themselves.)
// Seed 0 is the identity schedule: global program order.
func scheduleOrder(p Program, seed int64) [][]int {
	spans := p.epochOps()
	out := make([][]int, len(spans))
	var rng *rand.Rand
	if seed != 0 {
		rng = rand.New(rand.NewSource(seed))
	}
	for e, span := range spans {
		if rng == nil {
			for i := span[0]; i < span[1]; i++ {
				out[e] = append(out[e], i)
			}
			continue
		}
		// Per-rank queues, drained by a pick weighted by remaining
		// length so long streams don't starve.
		queues := make([][]int, p.Ranks)
		remaining := 0
		for i := span[0]; i < span[1]; i++ {
			r := p.Ops[i].Origin
			queues[r] = append(queues[r], i)
			remaining++
		}
		for remaining > 0 {
			n := rng.Intn(remaining)
			for r := range queues {
				if n < len(queues[r]) {
					out[e] = append(out[e], queues[r][0])
					queues[r] = queues[r][1:]
					break
				}
				n -= len(queues[r])
			}
			remaining--
		}
	}
	return out
}

// LiveSeq flattens a schedule into the StepBarrier sequence for a live
// run: one entry per operation (every op takes a step, analysed or
// not), holding the issuing rank.
func LiveSeq(p Program, schedSeed int64) []int {
	p = Normalize(p)
	var seq []int
	for _, idxs := range scheduleOrder(p, schedSeed) {
		for _, i := range idxs {
			seq = append(seq, p.Ops[i].Origin)
		}
	}
	return seq
}

// opTypes returns the origin- and target-side access types of a
// one-sided op, mirroring the instrumentation: Put reads its origin
// buffer and writes the target window, Get the reverse, Accumulate
// reads the origin buffer and accum-writes the target window.
func opTypes(k OpKind) (origin, target access.Type) {
	switch k {
	case OpPut:
		return access.RMARead, access.RMAWrite
	case OpGet:
		return access.RMAWrite, access.RMARead
	default: // OpAccum
		return access.RMARead, access.RMAAccum
	}
}

// Render produces the trace records the instrumentation layer would
// emit for one run of p under the given schedule, mirroring the live
// runtime's semantics record for record:
//
//   - a one-sided op yields an origin-side event at the origin's own
//     analyzer (its private buffer, stamped with the origin's epoch) and
//     a target-side event at the target's analyzer (the window region,
//     stamped with the target's epoch — notifications are drained before
//     the target's EpochEnd, so the stamp is the target's current
//     counter);
//   - local loads and stores are analysed only inside an open passive
//     or fence epoch (SyncLockAll, SyncFence); under SyncPSCW and
//     SyncLock they fall outside every epoch and are not collected;
//   - each epoch boundary emits one epoch_end per owner (UnlockAll,
//     Fence, or PSCW Wait — all ranks synchronise each phase);
//   - in SyncLock programs an exclusive unlock emits a release of the
//     origin's accesses at the target, immediately after the op it
//     brackets; shared unlocks release nothing.
func Render(p Program, schedSeed int64) []trace.Record {
	p = Normalize(p)
	times := make([]uint64, p.Ranks)
	ep := make([]uint64, p.Ranks)
	var recs []trace.Record
	emit := func(owner int, a access.Access, t uint64) {
		recs = append(recs, trace.AccessRecord(owner, detector.Event{Acc: a, Time: t, CallTime: t}))
	}
	for _, idxs := range scheduleOrder(p, schedSeed) {
		for _, i := range idxs {
			op := p.Ops[i]
			o := op.Origin
			dbg := access.Debug{File: FileName, Line: op.Line}
			if op.Kind.IsRMA() {
				times[o]++
				ct := times[o]
				oT, tT := opTypes(op.Kind)
				emit(o, access.Access{
					Interval: interval.Span(localBase+uint64(op.LSlot*Slot), uint64(op.Len*Slot)),
					Type:     oT, Rank: o, Epoch: ep[o], Debug: dbg,
				}, ct)
				ta := access.Access{
					Interval: interval.Span(winBase+uint64(op.WOff*Slot), uint64(op.Len*Slot)),
					Type:     tT, Rank: o, Epoch: ep[op.Target], AccumOp: op.AOp, Debug: dbg,
				}
				emit(op.Target, ta, ct)
				if p.Sync == SyncLock && !op.Shared {
					recs = append(recs, trace.Record{Kind: "release", Owner: op.Target, Rank: o})
				}
				continue
			}
			if p.Sync != SyncLockAll && p.Sync != SyncFence {
				continue // outside any epoch: not collected
			}
			times[o]++
			tp := access.LocalRead
			if op.Kind == OpStore {
				tp = access.LocalWrite
			}
			iv := interval.Span(localBase+uint64(op.LSlot*Slot), uint64(op.Len*Slot))
			if op.OnWin {
				iv = interval.Span(winBase+uint64(op.WOff*Slot), uint64(op.Len*Slot))
			}
			emit(o, access.Access{Interval: iv, Type: tp, Rank: o, Epoch: ep[o], Debug: dbg}, times[o])
		}
		if p.Sync != SyncLock {
			for r := 0; r < p.Ranks; r++ {
				recs = append(recs, trace.Record{Kind: "epoch_end", Owner: r})
				ep[r]++
			}
		}
	}
	return recs
}
