package fuzz

import "rmarace/internal/access"

// Seed is one hand-written corpus program with its expected oracle
// verdict, distilled from the paper's figures and the race shapes the
// deterministic workload generator (internal/trace/generate.go)
// synthesises.
type Seed struct {
	Name string
	P    Program
	// Raced is the expected oracle verdict: does the program race?
	Raced bool
}

func rmaOp(k OpKind, origin, target, woff, lslot, n int) Op {
	return Op{Kind: k, Origin: origin, Target: target, WOff: woff, LSlot: lslot, Len: n}
}

func accum(origin, target, woff, lslot, n int, aop access.AccumOp) Op {
	op := rmaOp(OpAccum, origin, target, woff, lslot, n)
	op.AOp = aop
	return op
}

func winOp(op Op, win int) Op {
	op.Win = win
	return op
}

func strided(op Op, count, stride int) Op {
	op.Count, op.Stride = count, stride
	return op
}

func local(k OpKind, origin, slot, n int, onWin bool) Op {
	op := Op{Kind: k, Origin: origin, Len: n}
	if onWin {
		op.OnWin = true
		op.WOff = slot
	} else {
		op.LSlot = slot
	}
	return op
}

// Seeds returns the seed corpus. Every program is normalized and its
// expected verdict is pinned by TestSeedCorpusOracleVerdicts; the
// differential fuzz targets add the encoded forms to the native corpus.
func Seeds() []Seed {
	shared := func(op Op) Op { op.Shared = true; return op }
	seeds := []Seed{
		{
			// §5.2 Code 1: a local load of the destination buffer before
			// the MPI_Get that overwrites it — safe in program order
			// (the exemption the order-insensitive published tool gets
			// wrong).
			Name: "code1-load-before-get",
			P: Program{Ranks: 2, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				local(OpLoad, 0, 0, 1, false),
				rmaOp(OpGet, 0, 1, 0, 0, 1),
			}},
			Raced: false,
		},
		{
			// Fig. 3 shape: overlapping remote writes force the stab +
			// fragmentation path, and a local store on the exposed
			// window races with both.
			Name: "fig3-overlap-fragment",
			P: Program{Ranks: 2, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpPut, 0, 1, 0, 0, 2),
				rmaOp(OpPut, 0, 1, 2, 2, 2),
				local(OpStore, 1, 1, 2, true),
			}},
			Raced: true,
		},
		{
			// Fig. 5 shape: the racing interval lives off the
			// lower-bound descent path. r1's narrow get becomes the BST
			// root; r0's wide get (read-read, no race, and the legacy
			// store never fragments) lands in the left subtree; r1's
			// put then probes right of the root key, so the published
			// search walks right, misses the wide read, and drops a
			// true race — the program the legacy canary must fail on.
			Name: "fig5-lowerbound",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpGet, 1, 2, 2, 0, 1),
				rmaOp(OpGet, 0, 2, 1, 0, 3),
				rmaOp(OpPut, 1, 2, 3, 2, 1),
			}},
			Raced: true,
		},
		{
			// Fig. 7 shape: a chain of boundary-adjacent puts, then an
			// overlapping read from another rank.
			Name: "fig7-adjacent-chain",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpPut, 0, 2, 0, 0, 2),
				rmaOp(OpPut, 0, 2, 2, 2, 2),
				rmaOp(OpPut, 0, 2, 4, 4, 2),
				rmaOp(OpGet, 1, 2, 3, 0, 2),
			}},
			Raced: true,
		},
		{
			// Adjacent but disjoint remote writes: the merge fast path
			// must not blur the boundary into a false positive.
			Name: "adjacent-run-safe",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpPut, 0, 2, 0, 0, 2),
				rmaOp(OpPut, 1, 2, 2, 0, 2),
			}},
			Raced: false,
		},
		{
			// Interleaved single-slot strides from two ranks, fully
			// disjoint: the strided backend's section compression must
			// not conflate them.
			Name: "strided-safe",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpPut, 0, 2, 0, 0, 1),
				rmaOp(OpPut, 0, 2, 2, 1, 1),
				rmaOp(OpPut, 0, 2, 4, 2, 1),
				rmaOp(OpPut, 1, 2, 1, 0, 1),
				rmaOp(OpPut, 1, 2, 3, 1, 1),
				rmaOp(OpPut, 1, 2, 5, 2, 1),
			}},
			Raced: false,
		},
		{
			// Concurrent same-op accumulates are element-wise atomic and
			// race-free.
			Name: "accum-same-op",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				accum(0, 2, 0, 0, 2, access.AccumSum),
				accum(1, 2, 0, 0, 2, access.AccumSum),
			}},
			Raced: false,
		},
		{
			// Mixed-op accumulates to the same slots race.
			Name: "accum-mixed-op",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				accum(0, 2, 0, 0, 2, access.AccumSum),
				accum(1, 2, 0, 0, 2, access.AccumMax),
			}},
			Raced: true,
		},
		{
			// An accumulate against an overlapping put races whatever
			// the reduction op.
			Name: "accum-vs-put",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				accum(0, 2, 0, 0, 2, access.AccumSum),
				rmaOp(OpPut, 1, 2, 1, 0, 2),
			}},
			Raced: true,
		},
		{
			// The same conflicting writes separated by a synchronisation
			// phase: epochs keep them apart.
			Name: "epoch-separated",
			P: Program{Ranks: 2, Epochs: 2, Sync: SyncFence, Ops: []Op{
				rmaOp(OpPut, 0, 1, 0, 0, 2),
				rmaOp(OpPut, 1, 0, 0, 0, 2),
			}},
			Raced: false,
		},
		{
			// Two origins writing an overlapping region of one exposure
			// epoch under PSCW.
			Name: "pscw-race",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncPSCW, Ops: []Op{
				rmaOp(OpPut, 0, 2, 0, 0, 2),
				rmaOp(OpPut, 1, 2, 1, 0, 2),
			}},
			Raced: true,
		},
		{
			// Exclusive per-target locks serialise the conflicting
			// writes: each unlock retires the holder's accesses.
			Name: "lock-exclusive-safe",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLock, Ops: []Op{
				rmaOp(OpPut, 0, 1, 0, 0, 2),
				rmaOp(OpPut, 2, 1, 0, 0, 2),
			}},
			Raced: false,
		},
		{
			// Shared locks allow concurrent holders; nothing is retired,
			// so the overlap races.
			Name: "lock-shared-race",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLock, Ops: []Op{
				shared(rmaOp(OpPut, 0, 1, 0, 0, 2)),
				shared(rmaOp(OpPut, 2, 1, 1, 0, 2)),
			}},
			Raced: true,
		},
		{
			// Concurrent overlapping gets: no write, no race.
			Name: "get-get-safe",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpGet, 0, 2, 0, 0, 2),
				rmaOp(OpGet, 1, 2, 0, 2, 2),
			}},
			Raced: false,
		},
		{
			// Request-based put whose waitall locally completes the origin
			// buffer before it is overwritten: the §5.2 shape extended to
			// MPI_Rput — safe only because the completion retires the span.
			Name: "rput-waitall-reuse-safe",
			P: Program{Ranks: 2, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpRput, 0, 1, 0, 0, 2),
				{Kind: OpWaitAll, Origin: 0},
				local(OpStore, 0, 0, 2, false),
			}},
			Raced: false,
		},
		{
			// The same origin-buffer reuse without the waitall: the rput is
			// still outstanding, so the store races with its origin read.
			Name: "rput-no-wait-reuse-race",
			P: Program{Ranks: 2, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpRput, 0, 1, 0, 0, 2),
				local(OpStore, 0, 0, 2, false),
			}},
			Raced: true,
		},
		{
			// MPI_Wait is local completion only: the target window is NOT
			// synchronised, so a concurrent put from another rank races even
			// though the request was waited on.
			Name: "rput-waitall-target-race",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				rmaOp(OpRput, 0, 2, 0, 0, 2),
				{Kind: OpWaitAll, Origin: 0},
				rmaOp(OpPut, 1, 2, 1, 0, 2),
			}},
			Raced: true,
		},
		{
			// Same offsets, different windows: detector state is strictly
			// per-window, so the overlap is no conflict.
			Name: "two-window-disjoint-safe",
			P: Program{Ranks: 2, Epochs: 1, Sync: SyncLockAll, Windows: 2, Ops: []Op{
				winOp(rmaOp(OpPut, 0, 1, 0, 0, 2), 0),
				winOp(rmaOp(OpPut, 0, 1, 0, 2, 2), 1),
			}},
			Raced: false,
		},
		{
			// Strided (derived-datatype) put whose second block collides
			// with a contiguous put from another rank.
			Name: "strided-block-race",
			P: Program{Ranks: 3, Epochs: 1, Sync: SyncLockAll, Ops: []Op{
				strided(rmaOp(OpPut, 0, 2, 0, 0, 1), 2, 3),
				rmaOp(OpPut, 1, 2, 3, 0, 1),
			}},
			Raced: true,
		},
	}
	for i := range seeds {
		seeds[i].P = Normalize(seeds[i].P)
	}
	return seeds
}

// SeedPrograms returns just the corpus programs.
func SeedPrograms() []Program {
	s := Seeds()
	out := make([]Program, len(s))
	for i := range s {
		out[i] = s[i].P
	}
	return out
}
