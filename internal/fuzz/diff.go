package fuzz

import (
	"fmt"
	"sort"

	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/oracle"
	"rmarace/internal/store"
	"rmarace/internal/trace"
)

// Config is one production detector configuration under differential
// test: a storage backend × shard count × notification batch size.
type Config struct {
	Store  string
	Shards int
	Batch  int
}

// String renders the configuration compactly ("avl/s4/b64").
func (c Config) String() string {
	return fmt.Sprintf("%s/s%d/b%d", c.Store, c.Shards, c.Batch)
}

// Configs returns the sound matrix: every backend that must agree with
// the oracle, under unsharded and sharded analyzers and under scalar
// and batched notification delivery. The legacy backend is excluded —
// it reproduces the published RMA-Analyzer's lower-bound search bug by
// design and serves as the canary that proves the driver can catch a
// faulty subject (CanaryConfig).
func Configs() []Config {
	var out []Config
	for _, st := range []string{"avl", "strided", "shadow"} {
		for _, sh := range []int{1, 4} {
			for _, b := range []int{1, 64} {
				out = append(out, Config{Store: st, Shards: sh, Batch: b})
			}
		}
	}
	return out
}

// CanaryConfig is the deliberately faulty subject: Algorithm 1 over the
// legacy lower-bound BST, whose Stab misses stored intervals that start
// left of the probe. The differential driver must flag it; the
// acceptance test pins that.
func CanaryConfig() Config { return Config{Store: "legacy", Shards: 1, Batch: 1} }

// shardGranule forces sharded subjects to actually split generated
// accesses: the window is WinSlots*Slot bytes, so a 16-byte granule
// stripes it across all four shards and multi-slot accesses cross
// granule boundaries.
const shardGranule = 16

// newSubject builds the per-owner analyzer factory for a configuration.
func newSubject(cfg Config) func(owner int) detector.Analyzer {
	return func(owner int) detector.Analyzer {
		opts := []core.Option{
			core.WithOwner(owner),
			core.WithStoreFactory(func() store.AccessStore {
				st, err := store.New(cfg.Store)
				if err != nil {
					panic(err)
				}
				return st
			}),
		}
		if cfg.Shards > 1 {
			opts = append(opts, core.WithShards(cfg.Shards), core.WithShardGranule(shardGranule))
		}
		return core.Build(opts...)
	}
}

// RunSubject drives one rendered record stream through a production
// configuration, batching access events per owner like the engine's
// notification pipeline does (synchronisation records flush their
// owner's pending batch first, exactly as every sync path flushes
// before publishing counts). It stops at the first race, like the
// production tools.
func RunSubject(recs []trace.Record, cfg Config) (*detector.Race, error) {
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	analyzers := make(map[int]detector.Analyzer)
	pending := make(map[int][]detector.Event)
	get := func(owner int) detector.Analyzer {
		a, ok := analyzers[owner]
		if !ok {
			a = newSubject(cfg)(owner)
			analyzers[owner] = a
		}
		return a
	}
	flush := func(owner int) *detector.Race {
		evs := pending[owner]
		if len(evs) == 0 {
			return nil
		}
		pending[owner] = pending[owner][:0]
		return detector.AccessBatch(get(owner), evs)
	}
	for _, rec := range recs {
		switch rec.Kind {
		case "access":
			ev, err := rec.Event()
			if err != nil {
				return nil, err
			}
			pending[rec.Owner] = append(pending[rec.Owner], ev)
			if len(pending[rec.Owner]) >= batch {
				if race := flush(rec.Owner); race != nil {
					return race, nil
				}
			}
		case "epoch_end":
			if race := flush(rec.Owner); race != nil {
				return race, nil
			}
			get(rec.Owner).EpochEnd()
		case "release":
			if race := flush(rec.Owner); race != nil {
				return race, nil
			}
			get(rec.Owner).Release(rec.Rank)
		case "complete":
			if race := flush(rec.Owner); race != nil {
				return race, nil
			}
			detector.CompleteRequest(get(rec.Owner), rec.Rank, interval.New(rec.Lo, rec.Hi))
		default:
			return nil, fmt.Errorf("fuzz: unknown record kind %q", rec.Kind)
		}
	}
	// Final flush in deterministic owner order.
	owners := make([]int, 0, len(pending))
	for o := range pending {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		if race := flush(o); race != nil {
			return race, nil
		}
	}
	return nil, nil
}

// Divergence is one disagreement between a production configuration
// and the oracle.
type Divergence struct {
	Config    Config
	SchedSeed int64
	// Kind classifies the disagreement: "false-negative" (oracle races,
	// subject silent), "false-positive" (subject races, oracle silent),
	// "wrong-pair" (both race but the subject's pair is not a true
	// race), or "schedule-dependent-oracle" (the oracle's own verdict
	// set changed under a permuted schedule — a renderer or generator
	// bug, since the grammar guarantees invariance for every program
	// Program.ScheduleInvariant admits; mixed shared/exclusive SyncLock
	// programs are exempt because lock-acquisition order genuinely
	// decides their verdicts).
	Kind   string
	Detail string
}

// String renders the divergence for reports.
func (d Divergence) String() string {
	return fmt.Sprintf("[%s sched=%d] %s: %s", d.Config, d.SchedSeed, d.Kind, d.Detail)
}

// Result is the outcome of one differential run.
type Result struct {
	Program   Program
	Schedules []int64
	// Oracle holds the reference verdicts of the first schedule.
	Oracle      *oracle.Oracle
	Divergences []Divergence
}

// Failed reports whether any configuration diverged.
func (r Result) Failed() bool { return len(r.Divergences) > 0 }

// Diff renders p under every schedule, runs the oracle and every
// configuration on the identical record stream, and collects every
// verdict divergence. The comparison is the abort-tolerant one: a
// subject stops at its first race, so it agrees with the oracle iff it
// raced exactly when the oracle's verdict set is non-empty and its
// reported pair is a member of that set.
func Diff(p Program, schedSeeds []int64, cfgs []Config) (Result, error) {
	p = Normalize(p)
	if len(schedSeeds) == 0 {
		schedSeeds = []int64{0}
	}
	res := Result{Program: p, Schedules: schedSeeds}
	invariant := p.ScheduleInvariant()
	for si, seed := range schedSeeds {
		recs := Render(p, seed)
		o, err := oracle.FromRecords(recs)
		if err != nil {
			return res, err
		}
		if si == 0 {
			res.Oracle = o
		} else if invariant && !o.SameVerdicts(res.Oracle) {
			res.Divergences = append(res.Divergences, Divergence{
				SchedSeed: seed,
				Kind:      "schedule-dependent-oracle",
				Detail: fmt.Sprintf("verdict set changed under permutation: %d races vs %d at schedule %d",
					o.Len(), res.Oracle.Len(), schedSeeds[0]),
			})
			continue
		}
		for _, cfg := range cfgs {
			race, err := RunSubject(recs, cfg)
			if err != nil {
				return res, err
			}
			if d, ok := compare(o, race); ok {
				d.Config, d.SchedSeed = cfg, seed
				res.Divergences = append(res.Divergences, d)
			}
		}
		// The MUST-RMA subject under both clock representations: the
		// adaptive scheme must be bit-identical to always-vector.
		if d, ok, err := diffClockReps(recs, p.Ranks); err != nil {
			return res, err
		} else if ok {
			d.SchedSeed = seed
			res.Divergences = append(res.Divergences, d)
		}
		// The binary trace codec: JSON→binary→JSON must be lossless and
		// the streaming binary replay verdict-identical to JSON replay.
		// The header advertises one stream per (rank, window) pair.
		if d, ok, err := diffTraceCodec(recs, p.Ranks*p.Windows); err != nil {
			return res, err
		} else if ok {
			d.SchedSeed = seed
			res.Divergences = append(res.Divergences, d)
		}
	}
	return res, nil
}

// runMustRep drives the record stream through MUST-RMA analyzers
// backed by the given shared clock state, one analyzer per owner,
// stopping at the first race like the production engine. Replayed
// records carry no clocks, so every analyzer snapshots at processing
// time — deterministic for a fixed record order, which makes the two
// representations comparable event by event.
func runMustRep(recs []trace.Record, shared *detector.MustShared) (*detector.Race, error) {
	analyzers := make(map[int]*detector.MustAnalyzer)
	get := func(owner int) *detector.MustAnalyzer {
		a, ok := analyzers[owner]
		if !ok {
			a = detector.NewMustRMA(shared, owner)
			analyzers[owner] = a
		}
		return a
	}
	for _, rec := range recs {
		switch rec.Kind {
		case "access":
			ev, err := rec.Event()
			if err != nil {
				return nil, err
			}
			if race := get(rec.Owner).Access(ev); race != nil {
				return race, nil
			}
		case "epoch_end":
			get(rec.Owner).EpochEnd()
		case "release":
			get(rec.Owner).Release(rec.Rank)
		case "complete":
			// MUST-RMA has no request-completion notion; keeping the
			// accesses is sound (completion only ever removes pairs), and
			// both clock representations see the identical no-op.
		default:
			return nil, fmt.Errorf("fuzz: unknown record kind %q", rec.Kind)
		}
	}
	return nil, nil
}

// diffClockReps proves the adaptive epoch⇄vector clock representation
// verdict-identical to the always-vector baseline on one record
// stream: same race/no-race outcome and, when both race, the same
// access pair. Returns a "clock-rep" divergence otherwise.
func diffClockReps(recs []trace.Record, ranks int) (Divergence, bool, error) {
	adaptive, err := runMustRep(recs, detector.NewMustShared(ranks))
	if err != nil {
		return Divergence{}, false, err
	}
	vector, err := runMustRep(recs, detector.NewMustSharedVector(ranks))
	if err != nil {
		return Divergence{}, false, err
	}
	switch {
	case (adaptive == nil) != (vector == nil):
		return Divergence{Kind: "clock-rep",
			Detail: fmt.Sprintf("adaptive race=%v, vector race=%v", adaptive != nil, vector != nil)}, true, nil
	case adaptive != nil && detector.DedupKey(adaptive) != detector.DedupKey(vector):
		return Divergence{Kind: "clock-rep",
			Detail: fmt.Sprintf("adaptive pair %+v, vector pair %+v", detector.DedupKey(adaptive), detector.DedupKey(vector))}, true, nil
	}
	return Divergence{}, false, nil
}

// compare classifies a subject verdict against the oracle's set.
func compare(o *oracle.Oracle, race *detector.Race) (Divergence, bool) {
	switch {
	case race == nil && o.Raced():
		return Divergence{Kind: "false-negative",
			Detail: fmt.Sprintf("oracle found %d race(s), e.g. %+v; subject found none", o.Len(), o.Keys()[0])}, true
	case race != nil && !o.Raced():
		return Divergence{Kind: "false-positive",
			Detail: fmt.Sprintf("subject reported %s; oracle found nothing", race.Message())}, true
	case race != nil && !o.Has(detector.DedupKey(race)):
		return Divergence{Kind: "wrong-pair",
			Detail: fmt.Sprintf("subject pair %+v not in the oracle's %d verdict(s)", detector.DedupKey(race), o.Len())}, true
	}
	return Divergence{}, false
}
