package fuzz

// Minimize shrinks a failing program by delta debugging: it repeatedly
// removes chunks of the op list (halving the chunk size down to single
// ops) and keeps any removal that still fails, then tries collapsing
// the epoch and rank counts. fails must be a pure predicate — typically
// "Diff still reports a divergence" — and is always handed a normalized
// program (removal renumbers the synthetic source lines, so fails must
// not depend on absolute line values).
func Minimize(p Program, fails func(Program) bool) Program {
	p = Normalize(p)
	if !fails(p) {
		return p
	}
	for chunk := len(p.Ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(p.Ops); {
			trial := p
			trial.Ops = make([]Op, 0, len(p.Ops)-chunk)
			trial.Ops = append(trial.Ops, p.Ops[:start]...)
			trial.Ops = append(trial.Ops, p.Ops[start+chunk:]...)
			trial = Normalize(trial)
			if fails(trial) {
				p = trial
			} else {
				start += chunk
			}
		}
	}
	if p.Windows > 1 {
		trial := p
		trial.Windows = 1
		trial = Normalize(trial) // re-folds every op onto window 0
		if fails(trial) {
			p = trial
		}
	}
	for p.Epochs > 1 {
		trial := p
		trial.Epochs--
		trial = Normalize(trial)
		if !fails(trial) {
			break
		}
		p = trial
	}
	for p.Ranks > 2 {
		trial := p
		trial.Ranks--
		trial = Normalize(trial)
		if !fails(trial) {
			break
		}
		p = trial
	}
	return p
}
