// Package fuzz is the differential fuzzer that cross-checks every
// production detector configuration against the brute-force oracle of
// package oracle.
//
// It generates random MPI-RMA programs (ranks, one or two windows,
// Put/Get/Accumulate/Rput/Rget/local load-store under LockAll, Fence,
// PSCW or per-target Lock synchronisation, with byte ranges biased
// toward boundary-adjacency to stress the fragmentation and merge
// paths), renders each program deterministically into the per-owner
// event streams the real instrumentation layer would produce, replays
// the same program under permuted schedules, and fails on any
// verdict-set divergence between a production configuration and the
// oracle — with automatic delta-debug minimisation and an on-disk
// reproducer.
//
// Program grammar constraints (documented in DESIGN §9):
//
//   - up to two windows: detector state is strictly per-window, so a
//     window-w op's target-side events go to the synthetic stream
//     owner w*Ranks + target. Origin-side (private buffer) events
//     always go to the origin's base stream, so buffer reuse across
//     windows meets in one analyzer;
//   - all offsets and lengths are in 8-byte slots, so the shadow
//     backend's granule conflation is lossless;
//   - one-sided operations never target their own rank and always use a
//     private buffer (never the window) as the origin buffer. This keeps
//     the generated programs inside the regime where Table 1's
//     combination lattice is exact: a same-rank Local_Write combined
//     under an own-window RMA_Read hides the write from later
//     cross-rank readers by design (the fragment keeps the
//     higher-priority type), and real halo-exchange-style programs do
//     not produce that shape;
//   - request-based operations (Rput/Rget) exist only under SyncLockAll
//     (MPI requires a passive-target epoch); an OpWaitAll locally
//     completes every outstanding request of its rank, retiring the
//     completed origin-buffer spans ("complete" trace records). Local
//     completion never synchronises the target side;
//   - each rank may run a second rank-internal thread (Op.Thread = 1),
//     modelling hybrid MPI+threads codes: a thread-1 op executes under
//     the epoch of the thread's last OpWaitSig resynchronisation point
//     (epoch 0 before any), so un-resynchronised work races across
//     epoch boundaries exactly like a hoisted task body would.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"rmarace/internal/access"
)

// Geometry of every generated program, in 8-byte slots.
const (
	// Slot is the access granularity in bytes; everything is
	// slot-aligned so granule-based backends are exact.
	Slot = 8
	// WinSlots is the window size in slots.
	WinSlots = 16
	// LocalSlots is the per-rank private buffer size in slots.
	LocalSlots = 8
	// MaxOps bounds a decoded program's operation count.
	MaxOps = 96
	// maxLen is the largest access length in slots.
	maxLen = 3
	// maxCount is the largest strided block count of one RMA op.
	maxCount = 3
	// maxWindows is the largest window count of one program.
	maxWindows = 2
)

// Rendered (and live-irrelevant) base addresses; the differential
// comparison is address-free (detector.AccessKey), so these only need
// to keep the window and private regions disjoint, as the simulator's
// allocator does.
const (
	winBase   = uint64(1) << 20
	localBase = uint64(1) << 30
)

// SyncKind selects the synchronisation discipline of a whole program.
type SyncKind uint8

const (
	// SyncLockAll brackets each epoch in MPI_Win_lock_all ..
	// MPI_Win_unlock_all.
	SyncLockAll SyncKind = iota
	// SyncFence separates epochs with MPI_Win_fence.
	SyncFence
	// SyncPSCW uses general active-target synchronisation: every rank
	// posts to and starts towards all others each epoch, completes and
	// waits.
	SyncPSCW
	// SyncLock wraps every one-sided operation in its own per-target
	// MPI_Win_lock .. MPI_Win_unlock; an exclusive unlock retires the
	// origin's accesses at the target (Release). Lock-mode programs
	// have a single epoch and their local accesses fall outside any
	// epoch (they are not collected, matching the instrumentation).
	SyncLock
	numSyncKinds
)

// String names the sync kind.
func (s SyncKind) String() string {
	switch s {
	case SyncLockAll:
		return "lock_all"
	case SyncFence:
		return "fence"
	case SyncPSCW:
		return "pscw"
	case SyncLock:
		return "lock"
	}
	return fmt.Sprintf("SyncKind(%d)", uint8(s))
}

// OpKind is one program operation.
type OpKind uint8

const (
	OpPut OpKind = iota
	OpGet
	OpAccum
	OpLoad
	OpStore
	// OpRput and OpRget are the request-based forms of Put and Get
	// (MPI_Rput/MPI_Rget): identical access shape, but the op stays
	// outstanding until the rank's next OpWaitAll locally completes it.
	OpRput
	OpRget
	// OpWaitAll is MPI_Waitall over every outstanding request of the
	// issuing rank: each completed request retires its origin-buffer
	// span at the rank's own analyzer (local completion only — the
	// target side is NOT synchronised).
	OpWaitAll
	// OpSignal and OpWaitSig are rank-internal thread synchronisation:
	// the main thread (0) signals, the worker thread (1) waits. A
	// waiting thread resynchronises to the epoch the OpWaitSig appears
	// in; thread-1 ops before any OpWaitSig run under epoch 0.
	OpSignal
	OpWaitSig
	numOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpAccum:
		return "accum"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpRput:
		return "rput"
	case OpRget:
		return "rget"
	case OpWaitAll:
		return "waitall"
	case OpSignal:
		return "signal"
	case OpWaitSig:
		return "waitsig"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// IsRMA reports whether the op is a one-sided operation.
func (k OpKind) IsRMA() bool {
	return k == OpPut || k == OpGet || k == OpAccum || k == OpRput || k == OpRget
}

// IsRequest reports whether the op is a request-based one-sided
// operation (completed by a later OpWaitAll).
func (k OpKind) IsRequest() bool { return k == OpRput || k == OpRget }

// isMarker reports whether the op is a pure synchronisation marker
// with no memory access of its own.
func (k OpKind) isMarker() bool { return k == OpWaitAll || k == OpSignal || k == OpWaitSig }

// Op is one operation of a generated program.
type Op struct {
	Kind   OpKind
	Origin int
	// Target is the remote rank of a one-sided operation (never equal
	// to Origin); ignored for local ops.
	Target int
	// WOff is the window offset in slots (the target offset of RMA ops,
	// or the accessed offset of an on-window local op).
	WOff int
	// LSlot is the private-buffer offset in slots (the origin buffer of
	// RMA ops, or the accessed offset of an off-window local op).
	LSlot int
	// Len is the access length in slots (1..maxLen).
	Len int
	// OnWin makes a local op access the rank's own window memory
	// instead of its private buffer.
	OnWin bool
	// Shared selects a shared instead of exclusive lock in SyncLock
	// programs (shared unlocks do not retire accesses).
	Shared bool
	// AOp is the reduction operation of an OpAccum.
	AOp access.AccumOp
	// Win is the window the op addresses (0..Windows-1): the target
	// window of an RMA op, or the own window of an on-window local op.
	// Origin-side private buffers are window-independent.
	Win int
	// Thread is the rank-internal thread issuing the op: 0 is the main
	// MPI thread, 1 the worker thread. A thread-1 op executes under the
	// epoch of its thread's last OpWaitSig (epoch 0 before any).
	Thread int
	// Count is the number of strided target blocks of an RMA op
	// (derived-datatype shape): blocks of Len slots at WOff, WOff+Stride,
	// ... The origin buffer stays one contiguous Len*Count-slot span.
	Count int
	// Stride is the slot distance between consecutive target blocks
	// (>= Len so blocks never self-overlap; 0 when Count == 1).
	Stride int
	// Line is the op's synthetic source line, assigned by Normalize so
	// every op has a distinct identity in race verdicts.
	Line int
}

// Program is one generated MPI-RMA program.
type Program struct {
	Ranks  int
	Epochs int
	Sync   SyncKind
	// Windows is the window count (1 or 2). Window w's per-rank streams
	// are the synthetic owners w*Ranks .. w*Ranks+Ranks-1.
	Windows int
	// Ops run split into Epochs contiguous chunks, each rank issuing
	// its chunk ops in listed order.
	Ops []Op
}

// Normalize clamps every field into the valid grammar and assigns
// deterministic per-op source lines. It is idempotent and total: any
// input becomes a valid program, which is what lets raw fuzzer bytes
// drive generation.
func Normalize(p Program) Program {
	if p.Ranks < 2 {
		p.Ranks = 2
	}
	if p.Ranks > 4 {
		p.Ranks = 4
	}
	p.Sync %= numSyncKinds
	if p.Epochs < 1 {
		p.Epochs = 1
	}
	if p.Epochs > 3 {
		p.Epochs = 3
	}
	if p.Sync == SyncLock {
		p.Epochs = 1
	}
	if p.Windows < 1 {
		p.Windows = 1
	}
	if p.Windows > 2 {
		p.Windows = 2
	}
	if len(p.Ops) > MaxOps {
		p.Ops = p.Ops[:MaxOps]
	}
	ops := make([]Op, len(p.Ops))
	for i, op := range p.Ops {
		op.Kind %= numOpKinds
		// Requests need a passive-target epoch to stay outstanding in;
		// outside SyncLockAll they demote to their blocking forms.
		if p.Sync != SyncLockAll {
			switch op.Kind {
			case OpRput:
				op.Kind = OpPut
			case OpRget:
				op.Kind = OpGet
			}
		}
		op.Origin = mod(op.Origin, p.Ranks)
		if op.Len < 1 {
			op.Len = 1
		}
		if op.Len > maxLen {
			op.Len = maxLen
		}
		switch {
		case op.Kind.isMarker():
			// Markers access no memory; zero every shape field so the
			// encoding round-trips canonically.
			op.Target, op.WOff, op.LSlot, op.Len = 0, 0, 0, 1
			op.OnWin, op.Shared = false, false
			op.Count, op.Stride, op.Win = 1, 0, 0
			switch op.Kind {
			case OpWaitAll, OpSignal:
				op.Thread = 0
			case OpWaitSig:
				op.Thread = 1
			}
		case op.Kind.IsRMA():
			op.Target = mod(op.Target, p.Ranks)
			if op.Target == op.Origin {
				op.Target = (op.Target + 1) % p.Ranks
			}
			op.OnWin = false
			op.Thread = mod(op.Thread, 2)
			op.Win = mod(op.Win, p.Windows)
			if op.Count < 1 {
				op.Count = 1
			}
			if op.Count > maxCount {
				op.Count = maxCount
			}
			for op.Len*op.Count > LocalSlots {
				op.Count--
			}
			if op.Count == 1 {
				op.Stride = 0
			} else {
				// Keep the stride in [Len, Len+2]: never self-overlapping,
				// and sometimes exactly adjacent (Stride == Len) to drive
				// the merge path across blocks.
				op.Stride = op.Len + mod(op.Stride-op.Len, 3)
			}
			extent := (op.Count-1)*op.Stride + op.Len
			op.WOff = mod(op.WOff, WinSlots-extent+1)
			op.LSlot = mod(op.LSlot, LocalSlots-op.Len*op.Count+1)
		default: // local load/store
			op.Target = 0
			op.Shared = false
			op.Thread = mod(op.Thread, 2)
			op.Count, op.Stride = 1, 0
			if op.OnWin {
				op.Win = mod(op.Win, p.Windows)
			} else {
				op.Win = 0
			}
			op.WOff = mod(op.WOff, WinSlots-op.Len+1)
			op.LSlot = mod(op.LSlot, LocalSlots-op.Len+1)
		}
		if op.Kind == OpAccum {
			if op.AOp == access.AccumNone || op.AOp > access.AccumBand {
				op.AOp = access.AccumSum
			}
		} else {
			op.AOp = access.AccumNone
		}
		op.Line = 100 + i
		ops[i] = op
	}
	p.Ops = ops
	return p
}

func mod(v, n int) int {
	if n <= 0 {
		return 0
	}
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// epochOps returns the op index ranges of each epoch: Ops split into
// Epochs contiguous chunks, as evenly as possible.
func (p Program) epochOps() [][2]int {
	out := make([][2]int, p.Epochs)
	n := len(p.Ops)
	for e := 0; e < p.Epochs; e++ {
		out[e] = [2]int{n * e / p.Epochs, n * (e + 1) / p.Epochs}
	}
	return out
}

// effEpochs returns the effective epoch of every op: the epoch whose
// records the op's events are emitted under. Thread-0 ops execute in
// their listing chunk. A thread-1 op executes under the epoch of its
// thread's most recent OpWaitSig resynchronisation (epoch 0 before
// any): a worker thread that was not re-synchronised still runs code
// hoisted from an earlier epoch, the hybrid-concurrency race shape.
func (p Program) effEpochs() []int {
	eff := make([]int, len(p.Ops))
	chunk := make([]int, len(p.Ops))
	for e, span := range p.epochOps() {
		for i := span[0]; i < span[1]; i++ {
			chunk[i] = e
		}
	}
	resync := make([]int, p.Ranks)
	for i, op := range p.Ops {
		if op.Thread == 0 || op.Kind == OpWaitSig {
			if op.Kind == OpWaitSig {
				resync[op.Origin] = chunk[i]
			}
			eff[i] = chunk[i]
			continue
		}
		eff[i] = resync[op.Origin]
	}
	return eff
}

// String renders the program as a readable listing for reproducer
// reports.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranks=%d sync=%s epochs=%d windows=%d ops=%d\n",
		p.Ranks, p.Sync, p.Epochs, p.Windows, len(p.Ops))
	for e, span := range p.epochOps() {
		fmt.Fprintf(&b, "epoch %d:\n", e)
		for i := span[0]; i < span[1]; i++ {
			op := p.Ops[i]
			thr := ""
			if op.Thread != 0 {
				thr = fmt.Sprintf(" t%d", op.Thread)
			}
			win := ""
			if p.Windows > 1 {
				win = fmt.Sprintf("w%d ", op.Win)
			}
			switch {
			case op.Kind.isMarker():
				fmt.Fprintf(&b, "  r%d%s %s  ; line %d\n", op.Origin, thr, op.Kind, op.Line)
			case op.Kind.IsRMA():
				mode := ""
				if p.Sync == SyncLock {
					mode = " lock=excl"
					if op.Shared {
						mode = " lock=shared"
					}
				}
				aop := ""
				if op.Kind == OpAccum {
					aop = " " + op.AOp.String()
				}
				stride := ""
				if op.Count > 1 {
					stride = fmt.Sprintf(" x%d stride %d", op.Count, op.Stride)
				}
				fmt.Fprintf(&b, "  r%d%s %s r%d %swin[%d..%d)%s local[%d..%d)%s%s  ; line %d\n",
					op.Origin, thr, op.Kind, op.Target, win, op.WOff, op.WOff+op.Len,
					stride, op.LSlot, op.LSlot+op.Len*op.Count, aop, mode, op.Line)
			case op.OnWin:
				fmt.Fprintf(&b, "  r%d%s %s %swin[%d..%d)  ; line %d\n",
					op.Origin, thr, op.Kind, win, op.WOff, op.WOff+op.Len, op.Line)
			default:
				fmt.Fprintf(&b, "  r%d%s %s local[%d..%d)  ; line %d\n",
					op.Origin, thr, op.Kind, op.LSlot, op.LSlot+op.Len, op.Line)
			}
		}
	}
	return b.String()
}

// ScheduleInvariant reports whether p's oracle verdict set is
// guaranteed independent of the interleaving. Per-rank program order is
// always preserved by scheduleOrder, so the only schedule-sensitive
// construct is the release an exclusive unlock emits in SyncLock
// programs: a shared-locked access pairs with an exclusive-locked one
// iff it is stored before the exclusive holder's unlock retires it —
// which is lock-acquisition order, a genuine property of the
// interleaving, not a detector bug. (MPI itself agrees: whether two
// lock epochs conflict depends on which grant the target orders first.)
// Programs that are all-shared (no releases) or all-exclusive (every
// access retired immediately after its op, so cross-rank pairs never
// form) are invariant.
// Thread-1 ops make any program schedule-dependent: a schedule is free
// to reorder a rank's two threads against each other, and same-rank
// order is exactly what the §5.2 local-before-RMA exemption (and the
// outstanding-request set an OpWaitAll completes) depends on.
func (p Program) ScheduleInvariant() bool {
	for _, op := range p.Ops {
		if op.Thread != 0 {
			return false
		}
	}
	if p.Sync != SyncLock {
		return true
	}
	var shared, excl bool
	for _, op := range p.Ops {
		if op.Kind.IsRMA() {
			if op.Shared {
				shared = true
			} else {
				excl = true
			}
		}
	}
	return !(shared && excl)
}

// opBytes is the encoded width of one op: kind, origin, target index,
// window offset, pack1 (LSlot | OnWin | Len | Shared | Win), accum op,
// pack2 (Thread | Count | Stride).
const opBytes = 7

// Decode interprets raw bytes — typically from the native fuzzing
// engine — as a program. Total: every byte string decodes to a valid
// (possibly trivial) program, and Encode is its right inverse for
// normalized programs.
func Decode(data []byte) Program {
	var p Program
	get := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	p.Ranks = 2 + int(get(0))%3
	p.Sync = SyncKind(get(1)) % numSyncKinds
	p.Epochs = 1 + int(get(2))%3
	p.Windows = 1 + int(get(3))%maxWindows
	for off := 4; off+opBytes <= len(data) && len(p.Ops) < MaxOps; off += opBytes {
		kind := OpKind(data[off]) % numOpKinds
		op := Op{
			Kind:   kind,
			Origin: int(data[off+1]),
			WOff:   int(data[off+3]),
		}
		if kind.IsRMA() {
			// The target byte indexes the other ranks, skipping the
			// origin, so every value is a valid remote rank.
			ti := int(data[off+2]) % (p.Ranks - 1)
			op.Origin %= p.Ranks
			if ti >= op.Origin {
				ti++
			}
			op.Target = ti
		}
		pack := data[off+4]
		op.LSlot = int(pack & 0x7)
		op.OnWin = pack&0x8 != 0
		op.Len = 1 + int(pack>>4)&0x3
		op.Shared = pack&0x40 != 0
		op.Win = int(pack >> 7)
		if kind == OpAccum {
			op.AOp = access.AccumOp(1 + int(data[off+5])%5)
		}
		pack2 := data[off+6]
		op.Thread = int(pack2 & 0x1)
		op.Count = 1 + int(pack2>>1)&0x3
		op.Stride = int(pack2>>3) & 0x7
		p.Ops = append(p.Ops, op)
	}
	return Normalize(p)
}

// Encode serialises a normalized program into the byte form Decode
// reads, for seeding the native fuzz corpus.
func Encode(p Program) []byte {
	p = Normalize(p)
	out := make([]byte, 4, 4+len(p.Ops)*opBytes)
	out[0] = byte(p.Ranks - 2)
	out[1] = byte(p.Sync)
	out[2] = byte(p.Epochs - 1)
	out[3] = byte(p.Windows - 1)
	for _, op := range p.Ops {
		ti := op.Target
		if op.Kind.IsRMA() && ti > op.Origin {
			ti--
		}
		pack := byte(op.LSlot) | byte(op.Len-1)<<4 | byte(op.Win)<<7
		if op.OnWin {
			pack |= 0x8
		}
		if op.Shared {
			pack |= 0x40
		}
		aop := byte(0)
		if op.Kind == OpAccum {
			aop = byte(op.AOp) - 1
		}
		pack2 := byte(op.Thread) | byte(op.Count-1)<<1 | byte(op.Stride)<<3
		out = append(out, byte(op.Kind), byte(op.Origin), byte(ti), byte(op.WOff), pack, aop, pack2)
	}
	return out
}

// Gen generates a random program. Window offsets are biased toward
// boundary-adjacency: half the RMA ops start exactly where a previous
// op's range ended (or end where it started), the pattern that drives
// the fragmentation and merge paths hardest; a quarter overlap a
// previous range outright. A fraction of programs additionally use a
// second window, rank-internal threads with signal/wait, request-based
// Rput/Rget with waitall completion, or strided (derived-datatype)
// target blocks.
func Gen(rng *rand.Rand) Program {
	p := Program{
		Ranks:  2 + rng.Intn(3),
		Epochs: 1 + rng.Intn(3),
	}
	switch r := rng.Float64(); {
	case r < 0.4:
		p.Sync = SyncLockAll
	case r < 0.6:
		p.Sync = SyncFence
	case r < 0.8:
		p.Sync = SyncPSCW
	default:
		p.Sync = SyncLock
	}
	nops := 4 + rng.Intn(21)
	lastEnd, lastStart := -1, -1
	for i := 0; i < nops; i++ {
		var op Op
		switch r := rng.Float64(); {
		case r < 0.30:
			op.Kind = OpPut
		case r < 0.55:
			op.Kind = OpGet
		case r < 0.70:
			op.Kind = OpAccum
		case r < 0.85:
			op.Kind = OpLoad
		default:
			op.Kind = OpStore
		}
		op.Origin = rng.Intn(p.Ranks)
		op.Len = 1 + rng.Intn(maxLen)
		op.LSlot = rng.Intn(LocalSlots - op.Len + 1)
		switch r := rng.Float64(); {
		case r < 0.35 && lastEnd >= 0:
			op.WOff = lastEnd // boundary-adjacent: starts where the last ended
		case r < 0.5 && lastStart >= op.Len:
			op.WOff = lastStart - op.Len // ends where the last started
		case r < 0.75 && lastStart >= 0:
			op.WOff = lastStart // overlapping
		default:
			op.WOff = rng.Intn(WinSlots - op.Len + 1)
		}
		if op.Kind.IsRMA() {
			op.Target = rng.Intn(p.Ranks)
			op.Shared = rng.Float64() < 0.5
			if op.Kind == OpAccum {
				op.AOp = access.AccumOp(1 + rng.Intn(5))
			}
		} else {
			op.OnWin = rng.Float64() < 0.5
		}
		lastStart, lastEnd = op.WOff, op.WOff+op.Len
		p.Ops = append(p.Ops, op)
	}
	if rng.Float64() < 0.2 {
		p.Windows = 2
		for i := range p.Ops {
			p.Ops[i].Win = rng.Intn(2)
		}
	}
	if p.Sync == SyncLockAll && rng.Float64() < 0.25 {
		for i := range p.Ops {
			if rng.Float64() < 0.5 {
				switch p.Ops[i].Kind {
				case OpPut:
					p.Ops[i].Kind = OpRput
				case OpGet:
					p.Ops[i].Kind = OpRget
				}
			}
		}
		for n := 1 + rng.Intn(2); n > 0; n-- {
			at := rng.Intn(len(p.Ops) + 1)
			w := Op{Kind: OpWaitAll, Origin: rng.Intn(p.Ranks)}
			p.Ops = append(p.Ops[:at], append([]Op{w}, p.Ops[at:]...)...)
		}
	}
	if rng.Float64() < 0.2 {
		for i := range p.Ops {
			if rng.Float64() < 0.3 {
				p.Ops[i].Thread = 1
			}
		}
		for n := rng.Intn(3); n > 0; n-- {
			at := rng.Intn(len(p.Ops) + 1)
			k := OpSignal
			if rng.Float64() < 0.5 {
				k = OpWaitSig
			}
			w := Op{Kind: k, Origin: rng.Intn(p.Ranks)}
			p.Ops = append(p.Ops[:at], append([]Op{w}, p.Ops[at:]...)...)
		}
	}
	if rng.Float64() < 0.25 {
		for i := range p.Ops {
			if p.Ops[i].Kind.IsRMA() && rng.Float64() < 0.4 {
				p.Ops[i].Count = 2 + rng.Intn(2)
				p.Ops[i].Stride = p.Ops[i].Len + rng.Intn(3)
			}
		}
	}
	return Normalize(p)
}
