// Package fuzz is the differential fuzzer that cross-checks every
// production detector configuration against the brute-force oracle of
// package oracle.
//
// It generates random MPI-RMA programs (ranks, one window,
// Put/Get/Accumulate/local load-store under LockAll, Fence, PSCW or
// per-target Lock synchronisation, with byte ranges biased toward
// boundary-adjacency to stress the fragmentation and merge paths),
// renders each program deterministically into the per-owner event
// streams the real instrumentation layer would produce, replays the
// same program under permuted schedules, and fails on any verdict-set
// divergence between a production configuration and the oracle — with
// automatic delta-debug minimisation and an on-disk reproducer.
//
// Program grammar constraints (documented in DESIGN §9):
//
//   - one window: detector state is strictly per-window, so multi-window
//     programs decompose into independent single-window instances;
//   - all offsets and lengths are in 8-byte slots, so the shadow
//     backend's granule conflation is lossless;
//   - one-sided operations never target their own rank and always use a
//     private buffer (never the window) as the origin buffer. This keeps
//     the generated programs inside the regime where Table 1's
//     combination lattice is exact: a same-rank Local_Write combined
//     under an own-window RMA_Read hides the write from later
//     cross-rank readers by design (the fragment keeps the
//     higher-priority type), and real halo-exchange-style programs do
//     not produce that shape.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"rmarace/internal/access"
)

// Geometry of every generated program, in 8-byte slots.
const (
	// Slot is the access granularity in bytes; everything is
	// slot-aligned so granule-based backends are exact.
	Slot = 8
	// WinSlots is the window size in slots.
	WinSlots = 16
	// LocalSlots is the per-rank private buffer size in slots.
	LocalSlots = 8
	// MaxOps bounds a decoded program's operation count.
	MaxOps = 96
	// maxLen is the largest access length in slots.
	maxLen = 3
)

// Rendered (and live-irrelevant) base addresses; the differential
// comparison is address-free (detector.AccessKey), so these only need
// to keep the window and private regions disjoint, as the simulator's
// allocator does.
const (
	winBase   = uint64(1) << 20
	localBase = uint64(1) << 30
)

// SyncKind selects the synchronisation discipline of a whole program.
type SyncKind uint8

const (
	// SyncLockAll brackets each epoch in MPI_Win_lock_all ..
	// MPI_Win_unlock_all.
	SyncLockAll SyncKind = iota
	// SyncFence separates epochs with MPI_Win_fence.
	SyncFence
	// SyncPSCW uses general active-target synchronisation: every rank
	// posts to and starts towards all others each epoch, completes and
	// waits.
	SyncPSCW
	// SyncLock wraps every one-sided operation in its own per-target
	// MPI_Win_lock .. MPI_Win_unlock; an exclusive unlock retires the
	// origin's accesses at the target (Release). Lock-mode programs
	// have a single epoch and their local accesses fall outside any
	// epoch (they are not collected, matching the instrumentation).
	SyncLock
	numSyncKinds
)

// String names the sync kind.
func (s SyncKind) String() string {
	switch s {
	case SyncLockAll:
		return "lock_all"
	case SyncFence:
		return "fence"
	case SyncPSCW:
		return "pscw"
	case SyncLock:
		return "lock"
	}
	return fmt.Sprintf("SyncKind(%d)", uint8(s))
}

// OpKind is one program operation.
type OpKind uint8

const (
	OpPut OpKind = iota
	OpGet
	OpAccum
	OpLoad
	OpStore
	numOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpAccum:
		return "accum"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// IsRMA reports whether the op is a one-sided operation.
func (k OpKind) IsRMA() bool { return k == OpPut || k == OpGet || k == OpAccum }

// Op is one operation of a generated program.
type Op struct {
	Kind   OpKind
	Origin int
	// Target is the remote rank of a one-sided operation (never equal
	// to Origin); ignored for local ops.
	Target int
	// WOff is the window offset in slots (the target offset of RMA ops,
	// or the accessed offset of an on-window local op).
	WOff int
	// LSlot is the private-buffer offset in slots (the origin buffer of
	// RMA ops, or the accessed offset of an off-window local op).
	LSlot int
	// Len is the access length in slots (1..maxLen).
	Len int
	// OnWin makes a local op access the rank's own window memory
	// instead of its private buffer.
	OnWin bool
	// Shared selects a shared instead of exclusive lock in SyncLock
	// programs (shared unlocks do not retire accesses).
	Shared bool
	// AOp is the reduction operation of an OpAccum.
	AOp access.AccumOp
	// Line is the op's synthetic source line, assigned by Normalize so
	// every op has a distinct identity in race verdicts.
	Line int
}

// Program is one generated MPI-RMA program over a single window.
type Program struct {
	Ranks  int
	Epochs int
	Sync   SyncKind
	// Ops run split into Epochs contiguous chunks, each rank issuing
	// its chunk ops in listed order.
	Ops []Op
}

// Normalize clamps every field into the valid grammar and assigns
// deterministic per-op source lines. It is idempotent and total: any
// input becomes a valid program, which is what lets raw fuzzer bytes
// drive generation.
func Normalize(p Program) Program {
	if p.Ranks < 2 {
		p.Ranks = 2
	}
	if p.Ranks > 4 {
		p.Ranks = 4
	}
	p.Sync %= numSyncKinds
	if p.Epochs < 1 {
		p.Epochs = 1
	}
	if p.Epochs > 3 {
		p.Epochs = 3
	}
	if p.Sync == SyncLock {
		p.Epochs = 1
	}
	if len(p.Ops) > MaxOps {
		p.Ops = p.Ops[:MaxOps]
	}
	ops := make([]Op, len(p.Ops))
	for i, op := range p.Ops {
		op.Kind %= numOpKinds
		op.Origin = mod(op.Origin, p.Ranks)
		if op.Len < 1 {
			op.Len = 1
		}
		if op.Len > maxLen {
			op.Len = maxLen
		}
		op.WOff = mod(op.WOff, WinSlots-op.Len+1)
		op.LSlot = mod(op.LSlot, LocalSlots-op.Len+1)
		if op.Kind.IsRMA() {
			op.Target = mod(op.Target, p.Ranks)
			if op.Target == op.Origin {
				op.Target = (op.Target + 1) % p.Ranks
			}
			op.OnWin = false
		} else {
			op.Target = 0
			op.Shared = false
		}
		if op.Kind == OpAccum {
			if op.AOp == access.AccumNone || op.AOp > access.AccumBand {
				op.AOp = access.AccumSum
			}
		} else {
			op.AOp = access.AccumNone
		}
		op.Line = 100 + i
		ops[i] = op
	}
	p.Ops = ops
	return p
}

func mod(v, n int) int {
	if n <= 0 {
		return 0
	}
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// epochOps returns the op index ranges of each epoch: Ops split into
// Epochs contiguous chunks, as evenly as possible.
func (p Program) epochOps() [][2]int {
	out := make([][2]int, p.Epochs)
	n := len(p.Ops)
	for e := 0; e < p.Epochs; e++ {
		out[e] = [2]int{n * e / p.Epochs, n * (e + 1) / p.Epochs}
	}
	return out
}

// String renders the program as a readable listing for reproducer
// reports.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranks=%d sync=%s epochs=%d ops=%d\n", p.Ranks, p.Sync, p.Epochs, len(p.Ops))
	for e, span := range p.epochOps() {
		fmt.Fprintf(&b, "epoch %d:\n", e)
		for i := span[0]; i < span[1]; i++ {
			op := p.Ops[i]
			switch {
			case op.Kind.IsRMA():
				mode := ""
				if p.Sync == SyncLock {
					mode = " lock=excl"
					if op.Shared {
						mode = " lock=shared"
					}
				}
				aop := ""
				if op.Kind == OpAccum {
					aop = " " + op.AOp.String()
				}
				fmt.Fprintf(&b, "  r%d %s r%d win[%d..%d) local[%d..%d)%s%s  ; line %d\n",
					op.Origin, op.Kind, op.Target, op.WOff, op.WOff+op.Len,
					op.LSlot, op.LSlot+op.Len, aop, mode, op.Line)
			case op.OnWin:
				fmt.Fprintf(&b, "  r%d %s win[%d..%d)  ; line %d\n",
					op.Origin, op.Kind, op.WOff, op.WOff+op.Len, op.Line)
			default:
				fmt.Fprintf(&b, "  r%d %s local[%d..%d)  ; line %d\n",
					op.Origin, op.Kind, op.LSlot, op.LSlot+op.Len, op.Line)
			}
		}
	}
	return b.String()
}

// ScheduleInvariant reports whether p's oracle verdict set is
// guaranteed independent of the interleaving. Per-rank program order is
// always preserved by scheduleOrder, so the only schedule-sensitive
// construct is the release an exclusive unlock emits in SyncLock
// programs: a shared-locked access pairs with an exclusive-locked one
// iff it is stored before the exclusive holder's unlock retires it —
// which is lock-acquisition order, a genuine property of the
// interleaving, not a detector bug. (MPI itself agrees: whether two
// lock epochs conflict depends on which grant the target orders first.)
// Programs that are all-shared (no releases) or all-exclusive (every
// access retired immediately after its op, so cross-rank pairs never
// form) are invariant.
func (p Program) ScheduleInvariant() bool {
	if p.Sync != SyncLock {
		return true
	}
	var shared, excl bool
	for _, op := range p.Ops {
		if op.Kind.IsRMA() {
			if op.Shared {
				shared = true
			} else {
				excl = true
			}
		}
	}
	return !(shared && excl)
}

// opBytes is the encoded width of one op.
const opBytes = 6

// Decode interprets raw bytes — typically from the native fuzzing
// engine — as a program. Total: every byte string decodes to a valid
// (possibly trivial) program, and Encode is its right inverse for
// normalized programs.
func Decode(data []byte) Program {
	var p Program
	get := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	p.Ranks = 2 + int(get(0))%3
	p.Sync = SyncKind(get(1)) % numSyncKinds
	p.Epochs = 1 + int(get(2))%3
	// get(3) is reserved.
	for off := 4; off+opBytes <= len(data) && len(p.Ops) < MaxOps; off += opBytes {
		kind := OpKind(data[off]) % numOpKinds
		op := Op{
			Kind:   kind,
			Origin: int(data[off+1]),
			WOff:   int(data[off+3]),
		}
		if kind.IsRMA() {
			// The target byte indexes the other ranks, skipping the
			// origin, so every value is a valid remote rank.
			ti := int(data[off+2]) % (p.Ranks - 1)
			op.Origin %= p.Ranks
			if ti >= op.Origin {
				ti++
			}
			op.Target = ti
		}
		pack := data[off+4]
		op.LSlot = int(pack & 0x7)
		op.OnWin = pack&0x8 != 0
		op.Len = 1 + int(pack>>4)&0x3
		op.Shared = pack&0x40 != 0
		if kind == OpAccum {
			op.AOp = access.AccumOp(1 + int(data[off+5])%5)
		}
		p.Ops = append(p.Ops, op)
	}
	return Normalize(p)
}

// Encode serialises a normalized program into the byte form Decode
// reads, for seeding the native fuzz corpus.
func Encode(p Program) []byte {
	p = Normalize(p)
	out := make([]byte, 4, 4+len(p.Ops)*opBytes)
	out[0] = byte(p.Ranks - 2)
	out[1] = byte(p.Sync)
	out[2] = byte(p.Epochs - 1)
	for _, op := range p.Ops {
		ti := op.Target
		if op.Kind.IsRMA() && ti > op.Origin {
			ti--
		}
		pack := byte(op.LSlot) | byte(op.Len-1)<<4
		if op.OnWin {
			pack |= 0x8
		}
		if op.Shared {
			pack |= 0x40
		}
		aop := byte(0)
		if op.Kind == OpAccum {
			aop = byte(op.AOp) - 1
		}
		out = append(out, byte(op.Kind), byte(op.Origin), byte(ti), byte(op.WOff), pack, aop)
	}
	return out
}

// Gen generates a random program. Window offsets are biased toward
// boundary-adjacency: half the RMA ops start exactly where a previous
// op's range ended (or end where it started), the pattern that drives
// the fragmentation and merge paths hardest; a quarter overlap a
// previous range outright.
func Gen(rng *rand.Rand) Program {
	p := Program{
		Ranks:  2 + rng.Intn(3),
		Epochs: 1 + rng.Intn(3),
	}
	switch r := rng.Float64(); {
	case r < 0.4:
		p.Sync = SyncLockAll
	case r < 0.6:
		p.Sync = SyncFence
	case r < 0.8:
		p.Sync = SyncPSCW
	default:
		p.Sync = SyncLock
	}
	nops := 4 + rng.Intn(21)
	lastEnd, lastStart := -1, -1
	for i := 0; i < nops; i++ {
		var op Op
		switch r := rng.Float64(); {
		case r < 0.30:
			op.Kind = OpPut
		case r < 0.55:
			op.Kind = OpGet
		case r < 0.70:
			op.Kind = OpAccum
		case r < 0.85:
			op.Kind = OpLoad
		default:
			op.Kind = OpStore
		}
		op.Origin = rng.Intn(p.Ranks)
		op.Len = 1 + rng.Intn(maxLen)
		op.LSlot = rng.Intn(LocalSlots - op.Len + 1)
		switch r := rng.Float64(); {
		case r < 0.35 && lastEnd >= 0:
			op.WOff = lastEnd // boundary-adjacent: starts where the last ended
		case r < 0.5 && lastStart >= op.Len:
			op.WOff = lastStart - op.Len // ends where the last started
		case r < 0.75 && lastStart >= 0:
			op.WOff = lastStart // overlapping
		default:
			op.WOff = rng.Intn(WinSlots - op.Len + 1)
		}
		if op.Kind.IsRMA() {
			op.Target = rng.Intn(p.Ranks)
			op.Shared = rng.Float64() < 0.5
			if op.Kind == OpAccum {
				op.AOp = access.AccumOp(1 + rng.Intn(5))
			}
		} else {
			op.OnWin = rng.Float64() < 0.5
		}
		lastStart, lastEnd = op.WOff, op.WOff+op.Len
		p.Ops = append(p.Ops, op)
	}
	return Normalize(p)
}
