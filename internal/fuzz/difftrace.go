package fuzz

import (
	"bytes"
	"fmt"

	"rmarace/internal/detector"
	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

// renderJSON writes one rendered record stream as a JSON Lines trace.
func renderJSON(recs []trace.Record, ranks int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Ranks: ranks, Window: "fuzz"})
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := w.Record(rec); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// diffTraceCodec proves the binary trace codec lossless and
// verdict-preserving on one rendered record stream:
//
//  1. JSON → binary → JSON must be byte-identical (both JSON renderings
//     come from the same encoder, so losslessness shows up as equality),
//  2. the streaming binary replay must return the same verdict — same
//     race/no-race outcome and, when both race, the same deduplicated
//     access pair — as the JSON replay of the identical stream.
//
// Returns a "trace-codec" divergence otherwise.
func diffTraceCodec(recs []trace.Record, ranks int) (Divergence, bool, error) {
	json1, err := renderJSON(recs, ranks)
	if err != nil {
		return Divergence{}, false, err
	}

	// JSON → binary.
	jr, err := trace.NewReader(bytes.NewReader(json1))
	if err != nil {
		return Divergence{}, false, err
	}
	var bin bytes.Buffer
	bw, err := tracebin.NewWriter(&bin, jr.Head())
	if err != nil {
		return Divergence{}, false, err
	}
	if _, err := tracebin.Convert(bw, jr); err != nil {
		return Divergence{}, false, fmt.Errorf("fuzz: JSON→binary: %w", err)
	}

	// binary → JSON.
	br, err := tracebin.NewReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		return Divergence{}, false, err
	}
	var json2 bytes.Buffer
	jw2, err := trace.NewWriter(&json2, br.Head())
	if err != nil {
		return Divergence{}, false, err
	}
	if _, err := tracebin.Convert(jw2, br); err != nil {
		return Divergence{}, false, fmt.Errorf("fuzz: binary→JSON: %w", err)
	}
	if !bytes.Equal(json1, json2.Bytes()) {
		return Divergence{Kind: "trace-codec",
			Detail: fmt.Sprintf("JSON→binary→JSON not byte-identical: %d bytes vs %d", len(json1), json2.Len())}, true, nil
	}

	// Replay equivalence: JSON replay vs binary streaming replay of the
	// same stream, default sound subject.
	newA := newSubject(Config{Store: "avl", Shards: 1, Batch: 1})
	jr2, err := trace.NewReader(bytes.NewReader(json1))
	if err != nil {
		return Divergence{}, false, err
	}
	jres, err := trace.Replay(jr2, newA)
	if err != nil {
		return Divergence{}, false, err
	}
	br2, err := tracebin.NewReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		return Divergence{}, false, err
	}
	bres, err := trace.ReplayStream(br2, newA, trace.ReplayOpts{})
	if err != nil {
		return Divergence{}, false, err
	}
	switch {
	case (jres.Race == nil) != (bres.Race == nil):
		return Divergence{Kind: "trace-codec",
			Detail: fmt.Sprintf("JSON replay race=%v, binary streaming replay race=%v", jres.Race != nil, bres.Race != nil)}, true, nil
	case jres.Race != nil && detector.DedupKey(jres.Race) != detector.DedupKey(bres.Race):
		return Divergence{Kind: "trace-codec",
			Detail: fmt.Sprintf("JSON pair %+v, binary pair %+v", detector.DedupKey(jres.Race), detector.DedupKey(bres.Race))}, true, nil
	case jres.Events != bres.Events || jres.Epochs != bres.Epochs:
		return Divergence{Kind: "trace-codec",
			Detail: fmt.Sprintf("JSON replay %d events/%d epochs, binary %d/%d", jres.Events, jres.Epochs, bres.Events, bres.Epochs)}, true, nil
	}
	return Divergence{}, false, nil
}
