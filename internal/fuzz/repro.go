package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rmarace/internal/trace"
)

// WriteRepro persists a divergence reproducer: the encoded program (the
// native corpus format), a human-readable report, and the rendered
// trace of the first diverging schedule, replayable with
// `rmarace replay`. It returns the reproducer directory.
func WriteRepro(dir string, res Result) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "program.bin"), Encode(res.Program), 0o644); err != nil {
		return "", err
	}
	var sched int64
	if len(res.Divergences) > 0 {
		sched = res.Divergences[0].SchedSeed
	}
	var report strings.Builder
	report.WriteString("differential fuzzing reproducer\n\n")
	report.WriteString(res.Program.String())
	fmt.Fprintf(&report, "\nschedules tried: %v\n", res.Schedules)
	if res.Oracle != nil {
		fmt.Fprintf(&report, "oracle verdicts (schedule %d): %d race(s)\n", res.Schedules[0], res.Oracle.Len())
		for _, k := range res.Oracle.Keys() {
			fmt.Fprintf(&report, "  %+v\n", k)
		}
	}
	report.WriteString("\ndivergences:\n")
	for _, d := range res.Divergences {
		fmt.Fprintf(&report, "  %s\n", d)
	}
	fmt.Fprintf(&report, "\nreplay the trace with:\n  rmarace replay -trace repro.trace.jsonl -store <store> -shards <n>\n")
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte(report.String()), 0o644); err != nil {
		return "", err
	}
	f, err := os.Create(filepath.Join(dir, "repro.trace.jsonl"))
	if err != nil {
		return "", err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f, trace.Header{Ranks: res.Program.Ranks * res.Program.Windows, Window: "fuzzwin"})
	if err != nil {
		return "", err
	}
	for _, rec := range Render(res.Program, sched) {
		if err := tw.Record(rec); err != nil {
			return "", err
		}
	}
	if err := tw.Flush(); err != nil {
		return "", err
	}
	return dir, nil
}
