package fuzz

import (
	"math/rand"
	"reflect"
	"testing"

	"rmarace/internal/access"
)

// TestExtendedGrammarRoundTrip is the codec property test for the
// grammar extensions (multi-window, hybrid threads, request ops,
// strided datatypes): random normalized programs that exercise every
// new field must survive Encode/Decode exactly, and the sweep must
// actually have produced each extension at least once — a codec that
// silently zeroed a new field would otherwise "round-trip" trivially.
func TestExtendedGrammarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var sawWin2, sawWinOp, sawThread, sawStrided, sawRequest, sawMarker bool
	for i := 0; i < 500; i++ {
		p := Program{
			Ranks:   2 + rng.Intn(3),
			Epochs:  1 + rng.Intn(3),
			Sync:    SyncKind(rng.Intn(int(numSyncKinds))),
			Windows: 1 + rng.Intn(2),
		}
		for j, n := 0, 1+rng.Intn(12); j < n; j++ {
			p.Ops = append(p.Ops, Op{
				Kind:   OpKind(rng.Intn(int(numOpKinds))),
				Origin: rng.Intn(4), Target: rng.Intn(4),
				WOff: rng.Intn(WinSlots), LSlot: rng.Intn(LocalSlots),
				Len:   1 + rng.Intn(maxLen),
				OnWin: rng.Intn(2) == 0, Shared: rng.Intn(2) == 0,
				AOp: access.AccumOp(rng.Intn(6)),
				Win: rng.Intn(2), Thread: rng.Intn(2),
				Count: 1 + rng.Intn(maxCount), Stride: rng.Intn(6),
			})
		}
		p = Normalize(p)
		if got := Decode(Encode(p)); !reflect.DeepEqual(got, p) {
			t.Fatalf("#%d: decode(encode) != p\n got %+v\nwant %+v", i, got, p)
		}
		if p.Windows == 2 {
			sawWin2 = true
		}
		for _, op := range p.Ops {
			if op.Win != 0 {
				sawWinOp = true
			}
			if op.Thread != 0 {
				sawThread = true
			}
			if op.Count > 1 && op.Stride >= op.Len {
				sawStrided = true
			}
			if op.Kind.IsRequest() {
				sawRequest = true
			}
			if op.Kind == OpWaitAll || op.Kind == OpSignal || op.Kind == OpWaitSig {
				sawMarker = true
			}
		}
	}
	for name, saw := range map[string]bool{
		"two-window program": sawWin2,
		"non-zero Win op":    sawWinOp,
		"thread-1 op":        sawThread,
		"strided op":         sawStrided,
		"request op":         sawRequest,
		"marker op":          sawMarker,
	} {
		if !saw {
			t.Errorf("sweep never produced a %s; the property test lost coverage", name)
		}
	}
}
