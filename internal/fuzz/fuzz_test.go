package fuzz

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rmarace/internal/detector"
	"rmarace/internal/oracle"
	"rmarace/internal/rma"
	"rmarace/internal/trace"
)

// testSchedules is the default schedule set: program order plus two
// seeded permutations.
var testSchedules = []int64{0, 7, 13}

func seedByName(t *testing.T, name string) Seed {
	t.Helper()
	for _, s := range Seeds() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no seed named %q", name)
	return Seed{}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range Seeds() {
		if got := Decode(Encode(s.P)); !reflect.DeepEqual(got, s.P) {
			t.Errorf("%s: decode(encode) != p\n got %+v\nwant %+v", s.Name, got, s.P)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		p := Gen(rng)
		if got := Decode(Encode(p)); !reflect.DeepEqual(got, p) {
			t.Fatalf("gen #%d: decode(encode) != p\n got %+v\nwant %+v", i, got, p)
		}
	}
}

func TestDecodeIsTotalAndNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		data := make([]byte, rng.Intn(80))
		rng.Read(data)
		p := Decode(data)
		if got := Normalize(p); !reflect.DeepEqual(got, p) {
			t.Fatalf("decode of %d random bytes is not normalized:\n got %+v\nnorm %+v", len(data), p, got)
		}
	}
}

func TestGenProducesNormalizedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := Gen(rng)
		if got := Normalize(p); !reflect.DeepEqual(got, p) {
			t.Fatalf("gen #%d not normalized: %+v", i, p)
		}
		for _, op := range p.Ops {
			if op.Kind.IsRMA() && op.Target == op.Origin {
				t.Fatalf("gen #%d: self-targeting RMA op %+v", i, op)
			}
		}
	}
}

// TestScheduleOrderPreservesRankStreams: every permuted schedule keeps
// each (rank, thread) stream's ops in program order and schedules every
// op exactly once, in its effective epoch (a thread-1 op runs under its
// thread's last resynchronisation epoch) — the properties that make the
// oracle verdict schedule-invariant for thread-free programs.
func TestScheduleOrderPreservesRankStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		p := Gen(rng)
		for _, seed := range testSchedules {
			eff := p.effEpochs()
			last := make(map[int]int)
			n := 0
			for e, idxs := range scheduleOrder(p, seed) {
				for _, idx := range idxs {
					if eff[idx] != e {
						t.Fatalf("schedule %d leaked op %d (effective epoch %d) into epoch %d", seed, idx, eff[idx], e)
					}
					stream := p.Ops[idx].Origin*2 + p.Ops[idx].Thread
					if prev, ok := last[stream]; ok && idx < prev {
						t.Fatalf("schedule %d reordered stream %d: op %d after %d", seed, stream, idx, prev)
					}
					last[stream] = idx
					n++
				}
			}
			if n != len(p.Ops) {
				t.Fatalf("schedule %d scheduled %d of %d ops", seed, n, len(p.Ops))
			}
		}
	}
}

// TestScheduleInvariantGate pins the one grammar corner whose verdicts
// legitimately depend on the interleaving: a SyncLock program mixing
// shared and exclusive locks. The oracle's verdict set differs across
// schedules (lock-acquisition order decides whether the shared access
// is retired before the exclusive one probes), so Diff must not flag
// that as a divergence — while still differentially checking every
// subject against the matching schedule's oracle.
func TestScheduleInvariantGate(t *testing.T) {
	mixed := Normalize(Program{Ranks: 3, Sync: SyncLock, Ops: []Op{
		func() Op { op := rmaOp(OpPut, 0, 1, 0, 0, 2); op.Shared = true; return op }(),
		rmaOp(OpPut, 2, 1, 0, 0, 2),
	}})
	if mixed.ScheduleInvariant() {
		t.Fatal("mixed shared/exclusive SyncLock program reported invariant")
	}
	for _, name := range []string{"lock-exclusive-safe", "lock-shared-race", "fig5-lowerbound"} {
		if p := seedByName(t, name).P; !p.ScheduleInvariant() {
			t.Errorf("%s reported schedule-dependent", name)
		}
	}
	// shared-first order stores the shared access before the exclusive
	// holder retires anything: the oracle must see the race there...
	oShared, err := oracle.FromRecords(Render(mixed, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !oShared.Raced() {
		t.Fatal("identity schedule (shared first) found no race")
	}
	// ...and the differential driver must tolerate permutations where
	// the exclusive unlock lands first and the race vanishes.
	res, err := Diff(mixed, []int64{0, 7, 13}, Configs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("subjects diverged from their matching schedules' oracles: %v", res.Divergences)
	}
}

func TestSeedCorpusOracleVerdicts(t *testing.T) {
	for _, s := range Seeds() {
		o, err := oracle.FromRecords(Render(s.P, 0))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if o.Raced() != s.Raced {
			t.Errorf("%s: oracle raced=%v, want %v (verdicts: %v)", s.Name, o.Raced(), s.Raced, o.Keys())
		}
	}
}

// TestSeedCorpusDifferential: every sound configuration must agree with
// the oracle on every seed program under every schedule.
func TestSeedCorpusDifferential(t *testing.T) {
	for _, s := range Seeds() {
		res, err := Diff(s.P, testSchedules, Configs())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, d := range res.Divergences {
			t.Errorf("%s: %s", s.Name, d)
		}
	}
}

// TestRandomDifferential is the deterministic mini-fuzz that runs in
// every plain `go test`: generated programs through the full sound
// matrix.
func TestRandomDifferential(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		p := Gen(rng)
		res, err := Diff(p, testSchedules, Configs())
		if err != nil {
			t.Fatalf("gen #%d: %v", i, err)
		}
		if res.Failed() {
			t.Fatalf("gen #%d diverged: %v\nprogram:\n%s", i, res.Divergences, p)
		}
	}
}

// TestLegacyBackendCaughtAsFaulty is the acceptance canary: the
// differential driver must flag the legacy lower-bound store as a
// false-negative subject on the fig5 seed.
func TestLegacyBackendCaughtAsFaulty(t *testing.T) {
	s := seedByName(t, "fig5-lowerbound")
	res, err := Diff(s.P, []int64{0}, []Config{CanaryConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("legacy canary not caught; oracle found %d race(s)", res.Oracle.Len())
	}
	if res.Divergences[0].Kind != "false-negative" {
		t.Fatalf("canary divergence kind = %q, want false-negative (%s)", res.Divergences[0].Kind, res.Divergences[0])
	}
	// The same program must pass on every sound configuration.
	sound, err := Diff(s.P, []int64{0}, Configs())
	if err != nil {
		t.Fatal(err)
	}
	if sound.Failed() {
		t.Fatalf("sound configurations diverged on the canary program: %v", sound.Divergences)
	}
}

// TestMinimizeShrinksCanaryRepro: the fig5 canary program buried in
// read-only noise minimises back to (at most) its three essential ops.
func TestMinimizeShrinksCanaryRepro(t *testing.T) {
	s := seedByName(t, "fig5-lowerbound")
	noisy := s.P
	// Noise in window slots the canary ops never touch. A Get is only
	// read-only on the target side — it writes its origin buffer — so
	// the local slots (4..6 per origin) must be mutually disjoint and
	// clear of the canary ops' origin buffers (slots 0..2) or the noise
	// would race for real and mask the false negative.
	for i := 0; i < 6; i++ {
		noisy.Ops = append(noisy.Ops, rmaOp(OpGet, i%2, 2, 8+i, 4+i/2, 1))
	}
	noisy = Normalize(noisy)
	fails := func(q Program) bool {
		res, err := Diff(q, []int64{0}, []Config{CanaryConfig()})
		return err == nil && res.Failed()
	}
	if !fails(noisy) {
		t.Fatal("noisy canary program does not fail; bad test setup")
	}
	min := Minimize(noisy, fails)
	if !fails(min) {
		t.Fatal("minimized program no longer fails")
	}
	if len(min.Ops) > 3 {
		t.Fatalf("minimized to %d ops, want <= 3:\n%s", len(min.Ops), min)
	}
}

func TestWriteReproRoundTrips(t *testing.T) {
	s := seedByName(t, "fig5-lowerbound")
	res, err := Diff(s.P, []int64{0}, []Config{CanaryConfig()})
	if err != nil || !res.Failed() {
		t.Fatalf("canary diff: err=%v failed=%v", err, res.Failed())
	}
	dir, err := WriteRepro(filepath.Join(t.TempDir(), "repro"), res)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := os.ReadFile(filepath.Join(dir, "program.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(bin); !reflect.DeepEqual(got, res.Program) {
		t.Fatal("program.bin does not decode back to the reproducer program")
	}
	f, err := os.Open(filepath.Join(dir, "repro.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.FromTrace(r)
	if err != nil {
		t.Fatal(err)
	}
	if !o.SameVerdicts(res.Oracle) {
		t.Fatal("replayed reproducer trace yields different oracle verdicts")
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatal(err)
	}
}

// TestLiveMatchesOracle runs seed programs on the full simulated
// runtime under deterministic interleavings and checks the live verdict
// against the oracle of the identically-scheduled rendering.
func TestLiveMatchesOracle(t *testing.T) {
	scheds := []int64{0, 5}
	batches := []int{1, 64}
	if testing.Short() {
		scheds, batches = scheds[:1], batches[:1]
	}
	for _, s := range Seeds() {
		for _, batch := range batches {
			for _, sched := range scheds {
				race, err := RunLive(s.P, sched, rma.Config{
					Method: detector.OurContribution, NotifBatch: batch,
				})
				if err != nil {
					t.Fatalf("%s sched=%d batch=%d: %v", s.Name, sched, batch, err)
				}
				q := LiveVariant(s.P)
				o, oerr := oracle.FromRecords(Render(q, sched))
				if oerr != nil {
					t.Fatal(oerr)
				}
				if (race != nil) != o.Raced() {
					t.Errorf("%s sched=%d batch=%d: live raced=%v, oracle raced=%v (%d verdicts)",
						s.Name, sched, batch, race != nil, o.Raced(), o.Len())
					continue
				}
				if race != nil && !o.Has(detector.DedupKey(race)) {
					t.Errorf("%s sched=%d batch=%d: live pair %+v not in oracle set %v",
						s.Name, sched, batch, detector.DedupKey(race), o.Keys())
				}
			}
		}
	}
}

// FuzzDifferential is the native fuzz target of the tentpole: raw bytes
// decode into a program which every sound configuration must analyse
// identically to the oracle, under the identity and two permuted
// schedules.
func FuzzDifferential(f *testing.F) {
	for _, s := range Seeds() {
		f.Add(Encode(s.P))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := Decode(data)
		res, err := Diff(p, testSchedules, Configs())
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			dir, werr := WriteRepro(filepath.Join(t.TempDir(), "repro"), res)
			t.Fatalf("divergence (repro: %s, write err %v): %v\nprogram:\n%s",
				dir, werr, res.Divergences, res.Program)
		}
	})
}

// FuzzScheduleInterleavings replays decoded programs on the live
// runtime under fuzzer-chosen interleavings (the StepBarrier schedule
// seed is a fuzz input) and cross-checks the session verdict against
// the oracle.
func FuzzScheduleInterleavings(f *testing.F) {
	for i, s := range Seeds() {
		f.Add(int64(i), Encode(s.P))
	}
	f.Fuzz(func(t *testing.T, schedSeed int64, data []byte) {
		p := Decode(data)
		if len(p.Ops) > 24 {
			p.Ops = p.Ops[:24] // keep live goroutine runs fast
			p = Normalize(p)
		}
		race, err := RunLive(p, schedSeed, rma.Config{Method: detector.OurContribution})
		if err != nil {
			t.Fatalf("live run failed: %v\nprogram:\n%s", err, p)
		}
		q := LiveVariant(p)
		o, oerr := oracle.FromRecords(Render(q, schedSeed))
		if oerr != nil {
			t.Fatal(oerr)
		}
		if (race != nil) != o.Raced() {
			t.Fatalf("live raced=%v, oracle raced=%v (%d verdicts)\nprogram:\n%s",
				race != nil, o.Raced(), o.Len(), q)
		}
		if race != nil && !o.Has(detector.DedupKey(race)) {
			t.Fatalf("live pair %+v not in oracle set %v\nprogram:\n%s",
				detector.DedupKey(race), o.Keys(), q)
		}
	})
}

// TestClockRepAgreesOnCorpus pins the epoch-vs-vector subject directly:
// on every seed program and schedule, MUST-RMA under the adaptive clock
// representation must return the same verdict (and pair) as under
// always-vector clocks.
func TestClockRepAgreesOnCorpus(t *testing.T) {
	for _, s := range Seeds() {
		p := Normalize(s.P)
		for _, sched := range testSchedules {
			recs := Render(p, sched)
			if d, ok, err := diffClockReps(recs, p.Ranks); err != nil {
				t.Fatalf("%s sched=%d: %v", s.Name, sched, err)
			} else if ok {
				t.Errorf("%s sched=%d: %s", s.Name, sched, d)
			}
		}
	}
}

// TestTraceCodecAgreesOnCorpus pins the binary trace codec directly: on
// every seed program and schedule, JSON→binary→JSON must round-trip
// byte-identically and the streaming binary replay must return the same
// verdict (and pair) as the JSON replay.
func TestTraceCodecAgreesOnCorpus(t *testing.T) {
	for _, s := range Seeds() {
		p := Normalize(s.P)
		for _, sched := range testSchedules {
			recs := Render(p, sched)
			if d, ok, err := diffTraceCodec(recs, p.Ranks); err != nil {
				t.Fatalf("%s sched=%d: %v", s.Name, sched, err)
			} else if ok {
				t.Errorf("%s sched=%d: %s", s.Name, sched, d)
			}
		}
	}
}
