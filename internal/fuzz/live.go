package fuzz

import (
	"fmt"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/rma"
)

// RunLive executes a generated program on the full simulated MPI-RMA
// runtime — real goroutine ranks, the real instrumentation, engine and
// notification pipeline — under a deterministic interleaving enforced
// by an mpi.StepBarrier over the same schedule the renderer used. The
// returned race is the session verdict (nil when the run was clean);
// the run error is non-nil exactly when a rank unwound abnormally for
// a reason other than the detected race.
//
// SyncLock programs are executed as SyncLockAll (wrapping every op in
// its own live Lock/Unlock handshake is a different program than the
// rendered one); callers compare against the oracle of the converted
// program.
func RunLive(p Program, schedSeed int64, cfg rma.Config) (*detector.Race, error) {
	p = LiveVariant(p)
	seq := LiveSeq(p, schedSeed)
	world := mpi.NewWorld(p.Ranks)
	sb := mpi.NewStepBarrier(p.Ranks, seq, world.Aborted())
	s := rma.NewSession(world, cfg)
	spans := p.epochOps()
	err := world.Run(func(mp *mpi.Proc) error {
		pr := s.Proc(mp)
		rank := mp.Rank()
		defer sb.Leave(rank)
		w, err := pr.WinCreate("fuzzwin", WinSlots*Slot)
		if err != nil {
			return err
		}
		locals := pr.Alloc("locals", LocalSlots*Slot)
		others := make([]int, 0, p.Ranks-1)
		for r := 0; r < p.Ranks; r++ {
			if r != rank {
				others = append(others, r)
			}
		}
		openEpoch := func() error {
			switch p.Sync {
			case SyncLockAll:
				return w.LockAll()
			case SyncFence:
				return w.Fence()
			default: // SyncPSCW
				if err := w.Post(others...); err != nil {
					return err
				}
				return w.Start(others...)
			}
		}
		closeEpoch := func(last bool) error {
			switch p.Sync {
			case SyncLockAll:
				return w.UnlockAll()
			case SyncFence:
				if last {
					return w.FenceEnd()
				}
				return nil // the next phase's Fence closes and reopens
			default: // SyncPSCW
				if err := w.Complete(); err != nil {
					return err
				}
				return w.Wait()
			}
		}
		for e, span := range spans {
			sb.Pass(rank) // epoch-opening synchronisation is collective
			if p.Sync != SyncFence || e == 0 {
				if err := openEpoch(); err != nil {
					return err
				}
			}
			for i := span[0]; i < span[1]; i++ {
				op := p.Ops[i]
				if op.Origin != rank {
					continue
				}
				if !sb.Step(rank) {
					return mpi.ErrAborted
				}
				if err := execOp(w, locals, op); err != nil {
					return err
				}
			}
			sb.Pass(rank) // epoch-closing synchronisation is collective
			if p.Sync == SyncFence && e+1 < len(spans) {
				if err := w.Fence(); err != nil {
					return err
				}
				continue
			}
			if err := closeEpoch(e+1 == len(spans)); err != nil {
				return err
			}
		}
		return nil
	})
	s.Close()
	race := s.Race()
	if race != nil {
		err = nil // the abort is the verdict, not a failure
	}
	return race, err
}

// LiveVariant returns the program RunLive actually executes: SyncLock
// converted to SyncLockAll, trace-level-only constructs mapped back to
// the classic subset the live runtime implements (requests to their
// blocking forms, everything on window 0 and thread 0, strided ops
// contiguous), normalized. Oracle comparisons against a live run must
// use this variant's rendering.
func LiveVariant(p Program) Program {
	p = Normalize(p)
	if p.Sync == SyncLock {
		p.Sync = SyncLockAll
	}
	p.Windows = 1
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case OpRput:
			op.Kind = OpPut
		case OpRget:
			op.Kind = OpGet
		}
		op.Win, op.Thread = 0, 0
		op.Count, op.Stride = 1, 0
	}
	return Normalize(p)
}

// execOp performs one program operation on the live runtime.
func execOp(w *rma.Win, locals *rma.Buffer, op Op) error {
	dbg := access.Debug{File: FileName, Line: op.Line}
	switch op.Kind {
	case OpPut:
		return w.Put(op.Target, op.WOff*Slot, locals, op.LSlot*Slot, op.Len*Slot, dbg)
	case OpGet:
		return w.Get(locals, op.LSlot*Slot, op.Target, op.WOff*Slot, op.Len*Slot, dbg)
	case OpAccum:
		return w.Accumulate(op.Target, op.WOff*Slot, locals, op.LSlot*Slot, op.Len*Slot, op.AOp, dbg)
	case OpLoad, OpStore:
		buf, off := locals, op.LSlot*Slot
		if op.OnWin {
			buf, off = w.Buffer(), op.WOff*Slot
		}
		if op.Kind == OpLoad {
			_, err := buf.Load(off, op.Len*Slot, dbg)
			return err
		}
		return buf.Store(off, make([]byte, op.Len*Slot), dbg)
	case OpWaitAll, OpSignal, OpWaitSig:
		// Trace-level synchronisation markers: LiveVariant keeps them in
		// the listing (they consume a schedule step) but they touch no
		// memory and the live runtime has nothing to do for them.
		return nil
	}
	return fmt.Errorf("fuzz: unknown op kind %d", op.Kind)
}
