package access

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rmarace/internal/interval"
)

func randomAccess(r *rand.Rand) Access {
	lo := uint64(r.Intn(100))
	tp := Type(r.Intn(5))
	a := Access{
		Interval: interval.Span(lo, uint64(r.Intn(10)+1)),
		Type:     tp,
		Rank:     r.Intn(3),
		Epoch:    uint64(r.Intn(2)),
		Stack:    r.Intn(2) == 0,
		Debug:    Debug{File: "p.c", Line: r.Intn(4)},
	}
	if tp == RMAAccum {
		a.AccumOp = AccumOp(r.Intn(5) + 1)
	}
	return a
}

// TestQuickRacesRequiresConflict: every reported race must satisfy the
// §2.2 base condition (overlap, ≥1 RMA, ≥1 write, same epoch).
func TestQuickRacesRequiresConflict(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 5000; i++ {
		a, b := randomAccess(r), randomAccess(r)
		if !Races(a, b) {
			continue
		}
		if !a.Intersects(b.Interval) {
			t.Fatalf("race without overlap: %v vs %v", a, b)
		}
		if a.Epoch != b.Epoch {
			t.Fatalf("race across epochs: %v vs %v", a, b)
		}
		if !Conflicts(a.Type, b.Type) {
			t.Fatalf("race without conflict: %v vs %v", a, b)
		}
	}
}

// TestQuickRacesCrossRankSymmetric: between different ranks the
// predicate ignores observation order, except for accumulate pairs
// (handled identically in both directions).
func TestQuickRacesCrossRankSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 5000; i++ {
		a, b := randomAccess(r), randomAccess(r)
		if a.Rank == b.Rank {
			continue
		}
		// The §5.2 order exemption only applies within one rank, so for
		// cross-rank pairs with no local access the verdict must be
		// symmetric.
		if a.Type.IsRMA() && b.Type.IsRMA() {
			if Races(a, b) != Races(b, a) {
				t.Fatalf("cross-rank RMA verdict asymmetric: %v vs %v", a, b)
			}
		}
	}
}

// TestQuickCombineKeepsDominantType: the combined fragment's type never
// has lower priority than either input.
func TestQuickCombineKeepsDominantType(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 5000; i++ {
		a, b := randomAccess(r), randomAccess(r)
		got := Combine(a, b)
		if got.Type.priority() < a.Type.priority() || got.Type.priority() < b.Type.priority() {
			t.Fatalf("Combine(%v, %v) = %v lost dominance", a.Type, b.Type, got.Type)
		}
		if got.Type != a.Type && got.Type != b.Type {
			t.Fatalf("Combine invented type %v from %v, %v", got.Type, a.Type, b.Type)
		}
	}
}

// TestQuickMergeableSymmetric: adjacency and identity equality are both
// symmetric, so Mergeable must be too.
func TestQuickMergeableSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 5000; i++ {
		a, b := randomAccess(r), randomAccess(r)
		if Mergeable(a, b) != Mergeable(b, a) {
			t.Fatalf("Mergeable asymmetric for %v, %v", a, b)
		}
		if Mergeable(a, b) && a.Intersects(b.Interval) {
			t.Fatalf("mergeable accesses overlap: %v, %v", a, b)
		}
	}
}

// TestQuickConflictsMatrixClosed: Conflicts agrees with the IsRMA/IsWrite
// characterisation for every pair.
func TestQuickConflictsMatrixClosed(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := Type(x%5), Type(y%5)
		want := (a.IsRMA() || b.IsRMA()) && (a.IsWrite() || b.IsWrite())
		return Conflicts(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
