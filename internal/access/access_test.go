package access

import (
	"testing"
	"unsafe"

	"rmarace/internal/depot"
	"rmarace/internal/interval"
)

func mk(lo, hi uint64, t Type, rank int) Access {
	return Access{
		Interval: interval.New(lo, hi),
		Type:     t,
		Rank:     rank,
		Debug:    Debug{File: "test.c", Line: int(lo)},
	}
}

func TestTypePredicates(t *testing.T) {
	cases := []struct {
		t              Type
		isRMA, isWrite bool
		str            string
	}{
		{LocalRead, false, false, "Local_Read"},
		{LocalWrite, false, true, "Local_Write"},
		{RMARead, true, false, "RMA_Read"},
		{RMAWrite, true, true, "RMA_Write"},
	}
	for _, c := range cases {
		if c.t.IsRMA() != c.isRMA {
			t.Errorf("%v.IsRMA() = %v", c.t, c.t.IsRMA())
		}
		if c.t.IsWrite() != c.isWrite {
			t.Errorf("%v.IsWrite() = %v", c.t, c.t.IsWrite())
		}
		if c.t.String() != c.str {
			t.Errorf("%v.String() = %q, want %q", c.t, c.t.String(), c.str)
		}
		if !c.t.Valid() {
			t.Errorf("%v should be valid", c.t)
		}
	}
	if Type(99).Valid() {
		t.Error("Type(99) should be invalid")
	}
}

func TestDebugString(t *testing.T) {
	d := Debug{File: "./dspl.hpp", Line: 614}
	if got := d.String(); got != "./dspl.hpp:614" {
		t.Errorf("Debug.String() = %q", got)
	}
}

func TestAccessString(t *testing.T) {
	a := mk(2, 12, RMARead, 0)
	if got := a.String(); got != "([2...12], RMA_Read)" {
		t.Errorf("Access.String() = %q", got)
	}
}

func TestConflicts(t *testing.T) {
	// §2.2: at least one RMA and at least one write.
	racy := [][2]Type{
		{RMAWrite, RMAWrite}, {RMAWrite, RMARead}, {RMARead, RMAWrite},
		{RMAWrite, LocalRead}, {LocalRead, RMAWrite},
		{RMAWrite, LocalWrite}, {LocalWrite, RMAWrite},
		{RMARead, LocalWrite}, {LocalWrite, RMARead},
	}
	safe := [][2]Type{
		{RMARead, RMARead}, {RMARead, LocalRead}, {LocalRead, RMARead},
		{LocalRead, LocalRead}, {LocalRead, LocalWrite},
		{LocalWrite, LocalWrite}, {LocalWrite, LocalRead},
	}
	for _, p := range racy {
		if !Conflicts(p[0], p[1]) {
			t.Errorf("Conflicts(%v, %v) = false, want true", p[0], p[1])
		}
	}
	for _, p := range safe {
		if Conflicts(p[0], p[1]) {
			t.Errorf("Conflicts(%v, %v) = true, want false", p[0], p[1])
		}
	}
}

func TestRacesRequiresOverlap(t *testing.T) {
	a := mk(0, 3, RMAWrite, 0)
	b := mk(4, 8, RMAWrite, 1)
	if Races(a, b) {
		t.Error("disjoint accesses cannot race")
	}
}

func TestRacesRequiresSameEpoch(t *testing.T) {
	a := mk(0, 8, RMAWrite, 0)
	b := mk(4, 8, RMAWrite, 1)
	b.Epoch = 1
	if Races(a, b) {
		t.Error("accesses in different epochs cannot race")
	}
}

// TestRacesOrderSensitivity encodes the §5.2 fix validated by Table 2:
// Load;MPI_Get on the same buffer by one process is safe, MPI_Get;Load
// is a race.
func TestRacesOrderSensitivity(t *testing.T) {
	load := mk(0, 9, LocalRead, 0)
	getWrite := mk(0, 9, RMAWrite, 0) // origin side of MPI_Get

	if Races(load, getWrite) {
		t.Error("ll_load_get (local before RMA, same rank) must be safe")
	}
	if !Races(getWrite, load) {
		t.Error("ll_get_load (RMA before local, same rank) must race")
	}
}

func TestRacesCrossRankIgnoresOrder(t *testing.T) {
	// A local write by the target races with an incoming RMA write
	// regardless of which was observed first: there is no program order
	// between processes within an epoch.
	store := mk(0, 9, LocalWrite, 1)
	put := mk(0, 9, RMAWrite, 0)
	if !Races(store, put) || !Races(put, store) {
		t.Error("cross-rank conflicting accesses must race in both observation orders")
	}
}

func TestRacesSameRankRMAThenRMA(t *testing.T) {
	// Two one-sided operations of one origin writing the same buffer
	// race: completion order within an epoch is undefined (§2.1).
	g1 := mk(0, 9, RMAWrite, 0)
	g2 := mk(0, 9, RMAWrite, 0)
	if !Races(g1, g2) {
		t.Error("two RMA writes from the same origin must race")
	}
}

func TestRacesTwoReadsNever(t *testing.T) {
	// ll_get_get_inwindow_origin_safe: the shared location is read by
	// both operations.
	r1 := mk(0, 9, RMARead, 0)
	r2 := mk(0, 9, RMARead, 1)
	if Races(r1, r2) {
		t.Error("two reads never race")
	}
}

// TestCombineTable1 checks every cell of Table 1 that is not a race.
// Rows are the access already in the tree ("-1"), columns the new access
// ("-2"); the expected value says whose type and debug info the
// intersection fragment keeps.
func TestCombineTable1(t *testing.T) {
	old := func(tp Type) Access { return mk(0, 9, tp, 0) } // debug line 0
	neu := func(tp Type) Access {
		a := mk(0, 9, tp, 1)
		a.Debug.Line = 99
		return a
	}
	cases := []struct {
		stored, incoming Type
		wantType         Type
		wantNew          bool // true: keeps the new access's debug info
	}{
		{LocalRead, LocalRead, LocalRead, true},    // Local_R-2
		{LocalRead, LocalWrite, LocalWrite, true},  // Local_W-2
		{LocalRead, RMARead, RMARead, true},        // RMA_R-2
		{LocalRead, RMAWrite, RMAWrite, true},      // RMA_W-2
		{LocalWrite, LocalRead, LocalWrite, false}, // Local_W-1
		{LocalWrite, LocalWrite, LocalWrite, true}, // Local_W-2
		{LocalWrite, RMARead, RMARead, true},       // RMA_R-2
		{LocalWrite, RMAWrite, RMAWrite, true},     // RMA_W-2
		{RMARead, LocalRead, RMARead, false},       // RMA_R-1
		{RMARead, RMARead, RMARead, true},          // RMA_R-2
	}
	for _, c := range cases {
		got := Combine(old(c.stored), neu(c.incoming))
		if got.Type != c.wantType {
			t.Errorf("Combine(%v, %v).Type = %v, want %v", c.stored, c.incoming, got.Type, c.wantType)
		}
		wantLine := 0
		if c.wantNew {
			wantLine = 99
		}
		if got.Debug.Line != wantLine {
			t.Errorf("Combine(%v, %v) kept debug line %d, want %d", c.stored, c.incoming, got.Debug.Line, wantLine)
		}
	}
}

// TestCombineRaceCellsAreUnreachable documents that the x cells of
// Table 1 are races between processes: Algorithm 1 reports them before
// Combine ever runs. Same-rank instances of those cells that are NOT
// races (the §5.2 safe orders) must still combine sensibly.
func TestCombineRaceCellsSameRankSafeOrders(t *testing.T) {
	// Local_W then RMA_W by the same rank (Store; MPI_Get into the same
	// buffer) is safe and the fragment becomes the RMA write.
	got := Combine(mk(0, 9, LocalWrite, 0), mk(0, 9, RMAWrite, 0))
	if got.Type != RMAWrite {
		t.Errorf("Combine(Local_W, RMA_W same rank) = %v, want RMA_Write", got.Type)
	}
}

// The hot path copies Access through every stab and insert; the depot
// id keeps it at one cache line. A new field that grows the struct
// must earn its bytes consciously, not by accident.
func TestAccessStaysOneCacheLine(t *testing.T) {
	if sz := unsafe.Sizeof(Access{}); sz != 64 {
		t.Fatalf("Access is %d bytes, want 64 (one cache line)", sz)
	}
}

func TestFrameStringResolvesDepot(t *testing.T) {
	id := depot.Global.Insert([]uintptr{0xdead, 0xbeef}, func([]uintptr) string { return "f (a.c:1)" })
	a := Access{StackID: id}
	if got := a.FrameString(); got != "f (a.c:1)" {
		t.Errorf("FrameString = %q", got)
	}
	if (Access{}).FrameString() != "" {
		t.Error("zero StackID must resolve to the empty string")
	}
}
