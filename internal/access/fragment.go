package access

import "sort"

// Fragment implements the fragmentation algorithm of §4.1 (Figure 6),
// generalised from one stored access to the full set of stored accesses
// intersecting the new access, as used by Algorithm 1 (step 3).
//
// stored must be the accesses currently in the tree whose intervals
// intersect newAcc; they are required to be pairwise disjoint (which is
// exactly the invariant fragmentation maintains). The result is a set of
// pairwise disjoint fragments covering the union of all inputs:
//
//   - the parts of each stored access outside newAcc keep the stored
//     access's type and debug information (l_frag and r_frag),
//   - each intersection keeps the Table 1 combination
//     (intersection_frag),
//   - the parts of newAcc not covered by any stored access keep the new
//     access's type and debug information.
//
// Fragment never reports races; Algorithm 1 checks for those before
// fragmenting.
func Fragment(stored []Access, newAcc Access) []Access {
	return AppendFragments(nil, stored, newAcc)
}

// AppendFragments is Fragment appending into dst (which may have spare
// capacity from a previous insertion): the hot-path form used by
// Algorithm 1's reusable scratch buffers. When the stored accesses are
// already sorted by interval — as every tree backend's stab visit
// returns them — no copy and no sort happen; an unsorted input (the
// legacy-store ablation) falls back to sorting a copy. The appended
// fragments are in ascending interval order.
func AppendFragments(dst []Access, stored []Access, newAcc Access) []Access {
	if len(stored) == 0 {
		return append(dst, newAcc)
	}

	sorted := stored
	if !intervalsSorted(stored) {
		cp := make([]Access, len(stored))
		copy(cp, stored)
		sort.Slice(cp, func(i, j int) bool {
			return cp[i].Interval.Compare(cp[j].Interval) < 0
		})
		sorted = cp
	}

	frags := dst
	// cursor is the first address of newAcc not yet covered by an
	// emitted fragment.
	cursor := newAcc.Lo
	exhausted := false // newAcc fully covered up to its Hi

	for _, s := range sorted {
		inter, ok := s.Intersection(newAcc.Interval)
		if !ok {
			// Callers pass only intersecting accesses; a disjoint one
			// indicates a broken tree query, which we surface loudly.
			panic("access: Fragment called with non-intersecting stored access " + s.String())
		}

		left, hasLeft, right, hasRight := s.Subtract(newAcc.Interval)
		if hasLeft {
			frag := s
			frag.Interval = left
			frags = append(frags, frag)
		}

		// Gap of newAcc before this stored access.
		if inter.Lo > cursor {
			frag := newAcc
			frag.Interval.Lo = cursor
			frag.Interval.Hi = inter.Lo - 1
			frags = append(frags, frag)
		}

		// The intersection fragment, typed by Table 1.
		frag := Combine(s, newAcc)
		frag.Interval = inter
		frags = append(frags, frag)

		if hasRight {
			frag := s
			frag.Interval = right
			frags = append(frags, frag)
		}

		if inter.Hi == newAcc.Hi {
			exhausted = true
		} else {
			cursor = inter.Hi + 1
		}
	}

	// Trailing part of newAcc not covered by any stored access.
	if !exhausted && cursor <= newAcc.Hi {
		frag := newAcc
		frag.Interval.Lo = cursor
		frags = append(frags, frag)
	}

	// With sorted disjoint inputs the emission above is already in
	// ascending interval order: the single possible left fragment and
	// each gap end before their intersection, intersections follow the
	// stored order, and a right fragment or trailing piece can only
	// come from the last stored access.
	return frags
}

// intervalsSorted reports whether accs is in ascending interval order.
func intervalsSorted(accs []Access) bool {
	for i := 1; i < len(accs); i++ {
		if accs[i].Interval.Compare(accs[i-1].Interval) < 0 {
			return false
		}
	}
	return true
}

// Mergeable reports whether two accesses may be coalesced into one node:
// they must be adjacent in memory and carry the same access type and
// debug information (§4.2). Accesses with different debug information
// refer to different instructions and "will not be fixed in the same
// way", so they are kept apart even when otherwise identical. We
// additionally require the same issuing rank and stack flag so a merged
// node never blurs the §5.2 ordering decision or the MUST-RMA stack
// modelling.
func Mergeable(a, b Access) bool {
	return a.Adjacent(b.Interval) &&
		a.Type == b.Type &&
		a.Debug == b.Debug &&
		a.Rank == b.Rank &&
		a.Epoch == b.Epoch &&
		a.Stack == b.Stack &&
		a.AccumOp == b.AccumOp
}

// Merge implements the merging algorithm of §4.2 (Figure 7): it walks
// the fragments produced by Fragment and coalesces maximal runs of
// mergeable accesses into single nodes. frags must be sorted by
// interval (as Fragment returns them) and pairwise disjoint.
func Merge(frags []Access) []Access {
	if len(frags) <= 1 {
		return frags
	}
	out := make([]Access, 0, len(frags))
	cur := frags[0]
	for _, f := range frags[1:] {
		if Mergeable(cur, f) {
			cur.Interval = cur.Union(f.Interval)
			continue
		}
		out = append(out, cur)
		cur = f
	}
	return append(out, cur)
}

// MergeInPlace is Merge compacting into frags' own backing array — the
// hot-path form: merging only ever shrinks, so the write index never
// overtakes the read index and no allocation happens. The returned
// slice aliases frags.
func MergeInPlace(frags []Access) []Access {
	if len(frags) <= 1 {
		return frags
	}
	w := 0
	cur := frags[0]
	for _, f := range frags[1:] {
		if Mergeable(cur, f) {
			cur.Interval = cur.Union(f.Interval)
			continue
		}
		frags[w] = cur
		w++
		cur = f
	}
	frags[w] = cur
	return frags[:w+1]
}
