package access

import "sort"

// Fragment implements the fragmentation algorithm of §4.1 (Figure 6),
// generalised from one stored access to the full set of stored accesses
// intersecting the new access, as used by Algorithm 1 (step 3).
//
// stored must be the accesses currently in the tree whose intervals
// intersect newAcc; they are required to be pairwise disjoint (which is
// exactly the invariant fragmentation maintains). The result is a set of
// pairwise disjoint fragments covering the union of all inputs:
//
//   - the parts of each stored access outside newAcc keep the stored
//     access's type and debug information (l_frag and r_frag),
//   - each intersection keeps the Table 1 combination
//     (intersection_frag),
//   - the parts of newAcc not covered by any stored access keep the new
//     access's type and debug information.
//
// Fragment never reports races; Algorithm 1 checks for those before
// fragmenting.
func Fragment(stored []Access, newAcc Access) []Access {
	if len(stored) == 0 {
		return []Access{newAcc}
	}

	sorted := make([]Access, len(stored))
	copy(sorted, stored)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Interval.Compare(sorted[j].Interval) < 0
	})

	frags := make([]Access, 0, 2*len(sorted)+1)
	// cursor is the first address of newAcc not yet covered by an
	// emitted fragment.
	cursor := newAcc.Lo
	exhausted := false // newAcc fully covered up to its Hi

	for _, s := range sorted {
		inter, ok := s.Intersection(newAcc.Interval)
		if !ok {
			// Callers pass only intersecting accesses; a disjoint one
			// indicates a broken tree query, which we surface loudly.
			panic("access: Fragment called with non-intersecting stored access " + s.String())
		}

		left, hasLeft, right, hasRight := s.Subtract(newAcc.Interval)
		if hasLeft {
			frag := s
			frag.Interval = left
			frags = append(frags, frag)
		}

		// Gap of newAcc before this stored access.
		if inter.Lo > cursor {
			frag := newAcc
			frag.Interval.Lo = cursor
			frag.Interval.Hi = inter.Lo - 1
			frags = append(frags, frag)
		}

		// The intersection fragment, typed by Table 1.
		frag := Combine(s, newAcc)
		frag.Interval = inter
		frags = append(frags, frag)

		if hasRight {
			frag := s
			frag.Interval = right
			frags = append(frags, frag)
		}

		if inter.Hi == newAcc.Hi {
			exhausted = true
		} else {
			cursor = inter.Hi + 1
		}
	}

	// Trailing part of newAcc not covered by any stored access.
	if !exhausted && cursor <= newAcc.Hi {
		frag := newAcc
		frag.Interval.Lo = cursor
		frags = append(frags, frag)
	}

	sort.Slice(frags, func(i, j int) bool {
		return frags[i].Interval.Compare(frags[j].Interval) < 0
	})
	return frags
}

// Mergeable reports whether two accesses may be coalesced into one node:
// they must be adjacent in memory and carry the same access type and
// debug information (§4.2). Accesses with different debug information
// refer to different instructions and "will not be fixed in the same
// way", so they are kept apart even when otherwise identical. We
// additionally require the same issuing rank and stack flag so a merged
// node never blurs the §5.2 ordering decision or the MUST-RMA stack
// modelling.
func Mergeable(a, b Access) bool {
	return a.Adjacent(b.Interval) &&
		a.Type == b.Type &&
		a.Debug == b.Debug &&
		a.Rank == b.Rank &&
		a.Epoch == b.Epoch &&
		a.Stack == b.Stack &&
		a.AccumOp == b.AccumOp
}

// Merge implements the merging algorithm of §4.2 (Figure 7): it walks
// the fragments produced by Fragment and coalesces maximal runs of
// mergeable accesses into single nodes. frags must be sorted by
// interval (as Fragment returns them) and pairwise disjoint.
func Merge(frags []Access) []Access {
	if len(frags) <= 1 {
		return frags
	}
	out := make([]Access, 0, len(frags))
	cur := frags[0]
	for _, f := range frags[1:] {
		if Mergeable(cur, f) {
			cur.Interval = cur.Union(f.Interval)
			continue
		}
		out = append(out, cur)
		cur = f
	}
	return append(out, cur)
}
