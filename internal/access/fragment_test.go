package access

import (
	"math/rand"
	"sort"
	"testing"

	"rmarace/internal/interval"
)

func intervalsOf(as []Access) []interval.Interval {
	out := make([]interval.Interval, len(as))
	for i, a := range as {
		out[i] = a.Interval
	}
	return out
}

func disjointSorted(as []Access) bool {
	for i := 1; i < len(as); i++ {
		if as[i-1].Interval.Compare(as[i].Interval) > 0 {
			return false
		}
		if as[i-1].Intersects(as[i].Interval) {
			return false
		}
	}
	return true
}

// covered reports whether addr is covered by any access in as.
func covered(as []Access, addr uint64) bool {
	for _, a := range as {
		if a.Contains(addr) {
			return true
		}
	}
	return false
}

// TestFragmentPaperFigure5 reproduces the running example of §4.1:
// after Load(4) the tree holds ([4], Local_Read); inserting the origin
// side of MPI_Put(2,12) — an RMA_Read of [2...12] — must fragment into
// [2...3], [4], [5...12], with [4] upgraded to RMA_Read (Table 1).
func TestFragmentPaperFigure5(t *testing.T) {
	loadAt4 := Access{Interval: interval.At(4), Type: LocalRead, Rank: 0, Debug: Debug{"code1.c", 1}}
	put := Access{Interval: interval.New(2, 12), Type: RMARead, Rank: 0, Debug: Debug{"code1.c", 2}}

	frags := Fragment([]Access{loadAt4}, put)
	if len(frags) != 3 {
		t.Fatalf("got %d fragments %v, want 3", len(frags), frags)
	}
	want := []struct {
		iv interval.Interval
		tp Type
	}{
		{interval.New(2, 3), RMARead},
		{interval.At(4), RMARead}, // Local_Read upgraded by Table 1
		{interval.New(5, 12), RMARead},
	}
	for i, w := range want {
		if frags[i].Interval != w.iv || frags[i].Type != w.tp {
			t.Errorf("fragment %d = %v, want (%v, %v)", i, frags[i], w.iv, w.tp)
		}
	}

	// After merging, the three RMA_Read fragments have the same debug
	// info only where Table 1 kept the new access's identity; [2...3]
	// and [5...12] carry the Put's debug info, and so does [4], so all
	// three coalesce into ([2...12], RMA_Read).
	merged := Merge(frags)
	if len(merged) != 1 || merged[0].Interval != interval.New(2, 12) || merged[0].Type != RMARead {
		t.Fatalf("merged = %v, want single ([2...12], RMA_Read)", merged)
	}
}

// TestFragmentKeepsDistinctDebugApart mirrors Figure 6: a new access of
// a different type overlapping the middle of a stored one yields
// l_frag and r_frag with the old identity and an intersection fragment
// with the combined identity, and nothing merges.
func TestFragmentKeepsDistinctDebugApart(t *testing.T) {
	stored := Access{Interval: interval.New(0, 9), Type: LocalWrite, Rank: 0, Debug: Debug{"a.c", 1}}
	neu := Access{Interval: interval.New(4, 6), Type: LocalRead, Rank: 0, Debug: Debug{"a.c", 2}}

	frags := Fragment([]Access{stored}, neu)
	if len(frags) != 3 {
		t.Fatalf("got %v, want 3 fragments", frags)
	}
	if frags[0].Interval != interval.New(0, 3) || frags[0].Type != LocalWrite || frags[0].Debug.Line != 1 {
		t.Errorf("l_frag = %+v", frags[0])
	}
	// Table 1: Local_W-1 + Local_R-2 keeps Local_W-1.
	if frags[1].Interval != interval.New(4, 6) || frags[1].Type != LocalWrite || frags[1].Debug.Line != 1 {
		t.Errorf("intersection_frag = %+v", frags[1])
	}
	if frags[2].Interval != interval.New(7, 9) || frags[2].Type != LocalWrite || frags[2].Debug.Line != 1 {
		t.Errorf("r_frag = %+v", frags[2])
	}

	// All three fragments now share type and debug info, so the merge
	// pass collapses them back into one node — fragmentation plus
	// merging never bloats the tree when identities agree (§4.2).
	merged := Merge(frags)
	if len(merged) != 1 || merged[0].Interval != interval.New(0, 9) {
		t.Fatalf("merged = %v", merged)
	}
}

func TestFragmentGapsKeepNewIdentity(t *testing.T) {
	// Stored: [0..2] and [8..9]; new access [0..9]. The gap [3..7] must
	// carry the new access's identity.
	s1 := Access{Interval: interval.New(0, 2), Type: RMARead, Rank: 0, Debug: Debug{"a.c", 1}}
	s2 := Access{Interval: interval.New(8, 9), Type: RMARead, Rank: 0, Debug: Debug{"a.c", 1}}
	neu := Access{Interval: interval.New(0, 9), Type: RMARead, Rank: 0, Debug: Debug{"a.c", 5}}

	frags := Fragment([]Access{s2, s1}, neu) // deliberately unsorted input
	if !disjointSorted(frags) {
		t.Fatalf("fragments not disjoint/sorted: %v", frags)
	}
	for addr := uint64(0); addr <= 9; addr++ {
		if !covered(frags, addr) {
			t.Fatalf("address %d not covered by %v", addr, frags)
		}
	}
	var gap *Access
	for i := range frags {
		if frags[i].Interval == interval.New(3, 7) {
			gap = &frags[i]
		}
	}
	if gap == nil || gap.Debug.Line != 5 {
		t.Fatalf("gap fragment missing or wrong identity: %v", frags)
	}
}

func TestFragmentNoStored(t *testing.T) {
	neu := Access{Interval: interval.New(3, 5), Type: LocalWrite}
	frags := Fragment(nil, neu)
	if len(frags) != 1 || frags[0] != neu {
		t.Fatalf("Fragment(nil, a) = %v", frags)
	}
}

func TestFragmentPanicsOnDisjointStored(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fragment with a non-intersecting stored access must panic")
		}
	}()
	stored := Access{Interval: interval.New(100, 200), Type: LocalRead}
	neu := Access{Interval: interval.New(0, 9), Type: LocalRead}
	Fragment([]Access{stored}, neu)
}

// TestMergePaperFigure7 reproduces Figure 7: three adjacent Type B
// intervals merge into one while the Type A neighbour stays separate.
func TestMergePaperFigure7(t *testing.T) {
	typeA := Debug{"b.c", 1}
	typeB := Debug{"b.c", 2}
	frags := []Access{
		{Interval: interval.New(0, 2), Type: LocalRead, Debug: typeA},
		{Interval: interval.New(3, 4), Type: RMAWrite, Debug: typeB},
		{Interval: interval.New(5, 6), Type: RMAWrite, Debug: typeB},
		{Interval: interval.New(7, 9), Type: RMAWrite, Debug: typeB},
	}
	merged := Merge(frags)
	if len(merged) != 2 {
		t.Fatalf("merged = %v, want 2 nodes", merged)
	}
	if merged[0].Interval != interval.New(0, 2) || merged[1].Interval != interval.New(3, 9) {
		t.Fatalf("merged = %v", merged)
	}
}

func TestMergeRespectsDebugInfo(t *testing.T) {
	// Same type, adjacent, but different source lines: must NOT merge
	// ("they will not be fixed in the same way", §4.2).
	frags := []Access{
		{Interval: interval.New(0, 4), Type: RMAWrite, Debug: Debug{"b.c", 1}},
		{Interval: interval.New(5, 9), Type: RMAWrite, Debug: Debug{"b.c", 2}},
	}
	if merged := Merge(frags); len(merged) != 2 {
		t.Fatalf("accesses with different debug info merged: %v", merged)
	}
}

func TestMergeRespectsRank(t *testing.T) {
	frags := []Access{
		{Interval: interval.New(0, 4), Type: RMAWrite, Rank: 0, Debug: Debug{"b.c", 1}},
		{Interval: interval.New(5, 9), Type: RMAWrite, Rank: 1, Debug: Debug{"b.c", 1}},
	}
	if merged := Merge(frags); len(merged) != 2 {
		t.Fatalf("accesses of different ranks merged: %v", merged)
	}
}

func TestMergeDoesNotBridgeGaps(t *testing.T) {
	frags := []Access{
		{Interval: interval.New(0, 4), Type: RMAWrite, Debug: Debug{"b.c", 1}},
		{Interval: interval.New(6, 9), Type: RMAWrite, Debug: Debug{"b.c", 1}},
	}
	if merged := Merge(frags); len(merged) != 2 {
		t.Fatalf("non-adjacent accesses merged: %v", merged)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if got := Merge(nil); len(got) != 0 {
		t.Errorf("Merge(nil) = %v", got)
	}
	one := []Access{{Interval: interval.At(3), Type: LocalRead}}
	if got := Merge(one); len(got) != 1 || got[0] != one[0] {
		t.Errorf("Merge(single) = %v", got)
	}
}

// TestCode2LoopMerging reproduces Code 2 (Fig. 8b) at the fragment
// level: 1,000 adjacent one-byte RMA writes from the same Get call site
// collapse into a single node.
func TestCode2LoopMerging(t *testing.T) {
	var state []Access
	dbg := Debug{"code2.c", 3}
	for i := 0; i < 1000; i++ {
		neu := Access{Interval: interval.At(uint64(i)), Type: RMAWrite, Rank: 0, Debug: dbg}
		var inter []Access
		var rest []Access
		for _, s := range state {
			if s.Intersects(neu.Interval) {
				inter = append(inter, s)
			} else {
				rest = append(rest, s)
			}
		}
		state = append(rest, Merge(Fragment(inter, neu))...)
		sort.Slice(state, func(a, b int) bool { return state[a].Interval.Compare(state[b].Interval) < 0 })
		// Re-merge across the boundary with the previous node, as the
		// tree-level insertion does by querying an enlarged interval.
		state = Merge(state)
	}
	if len(state) != 1 {
		t.Fatalf("after 1000 adjacent writes state has %d nodes, want 1", len(state))
	}
	if state[0].Interval != interval.New(0, 999) {
		t.Fatalf("merged interval = %v", state[0].Interval)
	}
}

type fragInput struct {
	stored []Access
	neu    Access
}

// genFragInput builds a random valid Fragment input: a set of disjoint
// stored accesses all intersecting a random new access.
func genFragInput(r *rand.Rand) fragInput {
	neuLo := uint64(r.Intn(50))
	neuLen := uint64(r.Intn(40) + 1)
	neu := Access{
		Interval: interval.Span(neuLo, neuLen),
		Type:     Type(r.Intn(4)),
		Rank:     r.Intn(3),
		Debug:    Debug{"q.c", r.Intn(4)},
	}
	var stored []Access
	cursor := uint64(0)
	for cursor < neuLo+neuLen+10 {
		gap := uint64(r.Intn(3))
		length := uint64(r.Intn(6) + 1)
		iv := interval.Span(cursor+gap, length)
		cursor = iv.Hi + 1
		if !iv.Intersects(neu.Interval) {
			continue
		}
		stored = append(stored, Access{
			Interval: iv,
			Type:     Type(r.Intn(4)),
			Rank:     r.Intn(3),
			Debug:    Debug{"q.c", r.Intn(4)},
		})
	}
	return fragInput{stored: stored, neu: neu}
}

func TestQuickFragmentDisjointAndCovering(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := genFragInput(r)
		frags := Fragment(in.stored, in.neu)
		if !disjointSorted(frags) {
			return false
		}
		// Every address of every input is covered by exactly one
		// fragment, and no fragment covers an address outside the
		// inputs.
		inputs := append(append([]Access{}, in.stored...), in.neu)
		lo, hi := in.neu.Lo, in.neu.Hi
		for _, s := range in.stored {
			if s.Lo < lo {
				lo = s.Lo
			}
			if s.Hi > hi {
				hi = s.Hi
			}
		}
		for addr := lo; addr <= hi; addr++ {
			if covered(inputs, addr) != covered(frags, addr) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatalf("fragment property violated at iteration %d", i)
		}
	}
}

func TestQuickMergePreservesCoverageAndTypes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		in := genFragInput(r)
		frags := Fragment(in.stored, in.neu)
		merged := Merge(frags)
		if !disjointSorted(merged) {
			t.Fatalf("merge broke disjointness: %v", merged)
		}
		// Merging must not change which addresses are covered or the
		// type observed at any address.
		typeAt := func(as []Access, addr uint64) (Type, bool) {
			for _, a := range as {
				if a.Contains(addr) {
					return a.Type, true
				}
			}
			return 0, false
		}
		lo, hi := in.neu.Lo, in.neu.Hi+5
		for addr := lo; addr <= hi; addr++ {
			t1, ok1 := typeAt(frags, addr)
			t2, ok2 := typeAt(merged, addr)
			if ok1 != ok2 || (ok1 && t1 != t2) {
				t.Fatalf("merge changed coverage/type at %d (iteration %d)", addr, i)
			}
		}
		// Merge is idempotent.
		again := Merge(merged)
		if len(again) != len(merged) {
			t.Fatalf("merge not idempotent: %d -> %d nodes", len(merged), len(again))
		}
		// No two neighbours of the result are mergeable.
		for j := 1; j < len(merged); j++ {
			if Mergeable(merged[j-1], merged[j]) {
				t.Fatalf("result still contains mergeable neighbours: %v", merged)
			}
		}
	}
}
