// Package access models instrumented memory accesses of an MPI-RMA
// program and the error-detection semantics of the paper: the data-race
// predicate of §2.2 with the order-sensitivity fix of §5.2, and the
// access-combination matrix of Table 1 used by the fragmentation
// algorithm.
//
// An access records the exact inclusive interval of addresses touched
// (all addresses within the interval are accessed), the kind of access,
// the rank that issued it, the epoch it belongs to, and debug
// information locating the access in "source" (file:line), exactly as
// RMA-Analyzer stores them.
package access

import (
	"fmt"

	"rmarace/internal/depot"
	"rmarace/internal/interval"
)

// Type classifies a memory access along the two axes of the paper:
// local to the process vs. remote (RMA), and read vs. write.
//
// An MPI_Put is an RMARead of the origin's buffer and an RMAWrite of the
// target's window region; an MPI_Get is the reverse. A plain load is a
// LocalRead and a store a LocalWrite.
type Type uint8

const (
	LocalRead Type = iota
	LocalWrite
	RMARead
	RMAWrite
	// RMAAccum is the target side of an MPI_Accumulate-family
	// operation: an atomic element-wise read-modify-write. Atomicity is
	// guaranteed at the MPI_Datatype level (§2.1 property 3), so two
	// accumulates using the same reduction operation never race with
	// each other, while an accumulate still races with any overlapping
	// put, get or local access. This is an extension beyond the paper,
	// which evaluates MPI_Put and MPI_Get only.
	RMAAccum
	numTypes
)

// IsRMA reports whether the access is part of a one-sided communication.
func (t Type) IsRMA() bool { return t == RMARead || t == RMAWrite || t == RMAAccum }

// IsWrite reports whether the access modifies memory.
func (t Type) IsWrite() bool { return t == LocalWrite || t == RMAWrite || t == RMAAccum }

// Valid reports whether t is one of the defined access types.
func (t Type) Valid() bool { return t < numTypes }

// String renders the type in the paper's notation (e.g. "RMA_Read").
func (t Type) String() string {
	switch t {
	case LocalRead:
		return "Local_Read"
	case LocalWrite:
		return "Local_Write"
	case RMARead:
		return "RMA_Read"
	case RMAWrite:
		return "RMA_Write"
	case RMAAccum:
		return "RMA_Accum"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// priority orders access types for Table 1: RMA accesses prevail over
// local accesses and WRITE accesses prevail over READ accesses.
func (t Type) priority() int {
	switch t {
	case LocalRead:
		return 0
	case LocalWrite:
		return 1
	case RMARead:
		return 2
	case RMAWrite:
		return 3
	case RMAAccum:
		// Accumulates dominate everything: the fragment must remember
		// the atomic write so later conflicting accesses are caught.
		return 4
	}
	return -1
}

// AccumOp is the reduction operation of an accumulate access. Two
// concurrent accumulates race unless they use the same operation (the
// MPI standard leaves mixed-operation outcomes undefined).
type AccumOp uint8

// Accumulate reduction operations (a subset of the MPI predefined ops).
const (
	AccumNone    AccumOp = iota // not an accumulate access
	AccumSum                    // MPI_SUM
	AccumReplace                // MPI_REPLACE
	AccumMax                    // MPI_MAX
	AccumMin                    // MPI_MIN
	AccumBand                   // MPI_BAND
)

// String returns the MPI name of the operation.
func (o AccumOp) String() string {
	switch o {
	case AccumNone:
		return "MPI_NO_OP"
	case AccumSum:
		return "MPI_SUM"
	case AccumReplace:
		return "MPI_REPLACE"
	case AccumMax:
		return "MPI_MAX"
	case AccumMin:
		return "MPI_MIN"
	case AccumBand:
		return "MPI_BAND"
	}
	return fmt.Sprintf("AccumOp(%d)", uint8(o))
}

// Debug locates an access in the instrumented program, mirroring the
// debug information RMA-Analyzer embeds in its error reports.
type Debug struct {
	File string
	Line int
}

// String renders the location as "file:line".
func (d Debug) String() string { return fmt.Sprintf("%s:%d", d.File, d.Line) }

// Access is one instrumented memory access. Field order is layout-
// conscious: the struct is copied through every stab and insert of the
// hot path, so StackID and the three byte-wide fields share one word
// and the whole struct is 64 bytes — one cache line, down from the 72
// the pre-depot rendered-stack pointer cost.
type Access struct {
	interval.Interval

	// Rank is the MPI rank that issued the operation this access
	// belongs to. For the target side of a Put/Get this is still the
	// origin rank: the target process did not issue any instruction.
	Rank int
	// Epoch numbers the passive-target epoch (LockAll..UnlockAll) the
	// access was observed in. Accesses of different epochs never race.
	Epoch uint64
	// StackID identifies the call stack of the instruction that issued
	// the access in the process-wide stack depot (package depot),
	// captured only when the session runs with stack capture enabled
	// (rma.Config.CaptureStacks); zero otherwise. It rides along into
	// race reports so both sides of a verdict carry their origin, at 4
	// bytes per access instead of a pointer to a per-access rendered
	// string. StackID is deliberately excluded from Mergeable:
	// coalesced accesses keep the surviving node's stack.
	StackID depot.ID
	Type    Type
	// Stack marks accesses to stack-allocated buffers. The contribution
	// and the legacy analyzer treat them like any other access; the
	// MUST-RMA simulator ignores local accesses to stack buffers
	// because ThreadSanitizer does not instrument stack arrays (§5.2).
	Stack bool
	// AccumOp is the reduction operation when Type is RMAAccum,
	// AccumNone otherwise.
	AccumOp AccumOp
	Debug   Debug
}

// FrameString resolves the captured call stack against the process-wide
// depot, or "" when none was captured.
func (a Access) FrameString() string {
	return depot.Resolve(a.StackID)
}

// String renders the access in the paper's node notation, e.g.
// "([2...12], RMA_Read)".
func (a Access) String() string {
	return fmt.Sprintf("(%s, %s)", a.Interval, a.Type)
}

// Conflicts reports whether two overlapping accesses form a data race
// pattern regardless of ordering: at least one is an RMA access and at
// least one is a write (§2.2). It does not check interval overlap.
func Conflicts(a, b Type) bool {
	return (a.IsRMA() || b.IsRMA()) && (a.IsWrite() || b.IsWrite())
}

// Races decides whether a stored access and a newly observed access of
// the same window and epoch constitute a data race.
//
// The predicate is the paper's §2.2 condition — the intervals intersect,
// at least one access is RMA, at least one is a write — restricted by
// the §5.2 fix: when both accesses were issued by the same process and
// the *earlier* one is local while the later one is RMA, program order
// guarantees the local access completed before the one-sided operation
// was initiated, so no race is possible (Load;MPI_Get is safe whereas
// MPI_Get;Load is not).
func Races(stored, incoming Access) bool {
	if !stored.Intersects(incoming.Interval) {
		return false
	}
	if stored.Epoch != incoming.Epoch {
		return false
	}
	if !Conflicts(stored.Type, incoming.Type) {
		return false
	}
	if stored.Rank == incoming.Rank && !stored.Type.IsRMA() && incoming.Type.IsRMA() {
		return false // §5.2: local access ordered before the RMA call
	}
	if stored.Type == RMAAccum && incoming.Type == RMAAccum &&
		stored.AccumOp == incoming.AccumOp {
		// Element-wise atomicity: same-operation accumulates commute
		// and never race, from any origins (§2.1 property 3).
		return false
	}
	return true
}

// Combine implements Table 1 of the paper: given an access already in
// the tree and a new access overlapping it (and already known not to
// race), it yields the access type and identity the intersection
// fragment keeps. RMA prevails over local, write over read; on equal
// types the debug information of the most recent access is kept.
func Combine(stored, incoming Access) Access {
	out := incoming // the new access wins ties (most recent debug info)
	if stored.Type.priority() > incoming.Type.priority() {
		out = stored
	}
	return out
}
