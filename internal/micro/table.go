package micro

import (
	"fmt"
	"io"
	"sort"

	"rmarace/internal/detector"
)

// Confusion is a Table 3 row: the detection quality of one method over
// the suite.
type Confusion struct {
	FP, FN, TP, TN int
}

// Total returns the number of evaluated cases.
func (c Confusion) Total() int { return c.FP + c.FN + c.TP + c.TN }

// Precision returns TP/(TP+FP). With no positive verdicts at all the
// ratio is undefined; it reports 1.0 then (no reported race was wrong),
// so an all-safe category scores perfectly instead of poisoning an F1
// aggregate with NaN.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 1.0 when the ground truth has no racy
// cases (nothing to miss).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, 0 when both are
// 0 (every verdict wrong in both directions).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Result records one case's outcome under one method.
type Result struct {
	Name     string
	Racy     bool
	Detected bool
}

// Evaluate runs every case under the method and accumulates the
// confusion matrix.
func Evaluate(method detector.Method, cases []Case) (Confusion, []Result, error) {
	var conf Confusion
	results := make([]Result, 0, len(cases))
	for i := range cases {
		c := &cases[i]
		detected, err := c.Run(method)
		if err != nil {
			return conf, results, fmt.Errorf("case %s under %v: %w", c.Name, method, err)
		}
		switch {
		case c.Racy && detected:
			conf.TP++
		case c.Racy && !detected:
			conf.FN++
		case !c.Racy && detected:
			conf.FP++
		default:
			conf.TN++
		}
		results = append(results, Result{Name: c.Name, Racy: c.Racy, Detected: detected})
	}
	return conf, results, nil
}

// Table2Cases are the four programs compared tool-by-tool in Table 2,
// under their exact paper names.
var Table2Cases = []string{
	"ll_get_load_outwindow_origin_race",
	"ll_get_get_inwindow_origin_safe",
	"ll_get_load_inwindow_origin_race",
	"ll_load_get_inwindow_origin_safe",
}

// Table2Methods are the tools compared in Table 2, in column order.
var Table2Methods = []detector.Method{
	detector.RMAAnalyzer, detector.MustRMAMethod, detector.OurContribution,
}

// WriteTable2 runs the four Table 2 programs under the three tools and
// prints the paper's comparison (✓: error detected, x: no error found).
func WriteTable2(w io.Writer) error {
	cases := Suite()
	fmt.Fprintf(w, "%-42s %-14s %-10s %s\n", "", "RMA-Analyzer", "MUST-RMA", "Our Contribution")
	for _, name := range Table2Cases {
		c := Find(cases, name)
		if c == nil {
			return fmt.Errorf("micro: Table 2 case %s missing from suite", name)
		}
		marks := make([]string, len(Table2Methods))
		for i, m := range Table2Methods {
			detected, err := c.Run(m)
			if err != nil {
				return err
			}
			if detected {
				marks[i] = "yes"
			} else {
				marks[i] = "x"
			}
		}
		fmt.Fprintf(w, "%-42s %-14s %-10s %s\n", name, marks[0], marks[1], marks[2])
	}
	return nil
}

// WriteTable3 evaluates the whole suite under the three tools and
// prints the FP/FN/TP/TN table.
func WriteTable3(w io.Writer) error {
	cases := Suite()
	fmt.Fprintf(w, "suite: %d codes (%d racy, %d safe)\n", len(cases), countRacy(cases), len(cases)-countRacy(cases))
	fmt.Fprintf(w, "%-4s %-14s %-10s %s\n", "", "RMA-Analyzer", "MUST-RMA", "Our Contribution")
	rows := [4]string{"FP", "FN", "TP", "TN"}
	var confs []Confusion
	for _, m := range Table2Methods {
		conf, _, err := Evaluate(m, cases)
		if err != nil {
			return err
		}
		confs = append(confs, conf)
	}
	values := func(c Confusion) [4]int { return [4]int{c.FP, c.FN, c.TP, c.TN} }
	for i, label := range rows {
		fmt.Fprintf(w, "%-4s %-14d %-10d %d\n", label,
			values(confs[0])[i], values(confs[1])[i], values(confs[2])[i])
	}
	return nil
}

// WriteMismatches lists, for debugging and EXPERIMENTS.md, every case a
// method got wrong.
func WriteMismatches(w io.Writer, method detector.Method) error {
	conf, results, err := Evaluate(method, Suite())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%v: FP=%d FN=%d TP=%d TN=%d\n", method, conf.FP, conf.FN, conf.TP, conf.TN)
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	for _, r := range results {
		if r.Racy != r.Detected {
			kind := "FN"
			if r.Detected {
				kind = "FP"
			}
			fmt.Fprintf(w, "  %s %s\n", kind, r.Name)
		}
	}
	return nil
}

func countRacy(cases []Case) int {
	n := 0
	for i := range cases {
		if cases[i].Racy {
			n++
		}
	}
	return n
}
