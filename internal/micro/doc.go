package micro

import (
	"fmt"
	"io"
)

// describe renders a one-line program sketch of the case.
func (c *Case) describe() string {
	switch c.Self {
	case selfGetGet:
		return "the owner self-gets the same window location twice (both reads)"
	case selfPutPut:
		return "the owner self-puts from one window location to two disjoint ones"
	case selfGetPutDisjoint:
		return "a self-get and a self-put on disjoint locations (control)"
	}
	if c.PureLocal {
		return fmt.Sprintf("local %s then local %s by the owner (no one-sided operation)", c.D1.opName(), c.D2.opName())
	}
	issuer := func(d Descriptor, second bool) string {
		switch c.issuer(d, second) {
		case 0:
			return "the owner"
		case 1:
			return "origin 1"
		default:
			return "origin 2"
		}
	}
	role := func(d Descriptor) string {
		switch d {
		case dLoad:
			return "loads it"
		case dStore:
			return "stores to it"
		case dGetL:
			return "gets into it"
		case dPutL:
			return "puts from it"
		case dGetR:
			return "gets it remotely"
		case dPutR:
			return "puts to it remotely"
		}
		return "?"
	}
	where := "outside the owner's window"
	if c.InWindow {
		where = "in the owner's window"
	}
	overlap := ""
	if !c.Overlap {
		overlap = "; the second operation uses a disjoint location (control)"
	}
	return fmt.Sprintf("location %s: %s %s, then %s %s%s",
		where, issuer(c.D1, false), role(c.D1), issuer(c.D2, true), role(c.D2), overlap)
}

// WriteSuiteDoc emits a markdown catalogue of the full suite — the
// documentation the unpublished original lacks.
func WriteSuiteDoc(w io.Writer) {
	cases := Suite()
	racy := countRacy(cases)
	fmt.Fprintf(w, "# Microbenchmark suite catalogue\n\n")
	fmt.Fprintf(w, "%d codes: %d containing a data race, %d safe. ", len(cases), racy, len(cases)-racy)
	fmt.Fprintf(w, "Reconstruction of the paper's §5.2 validation suite; ")
	fmt.Fprintf(w, "ground truth is derived analytically from the race predicate (§2.2 + §5.2).\n\n")
	fmt.Fprintf(w, "Window memory is a stack array (MPI_Win_create over a local buffer); ")
	fmt.Fprintf(w, "out-of-window buffers are heap allocations — the placement that yields ")
	fmt.Fprintf(w, "MUST-RMA's published 15 false negatives.\n\n")
	fmt.Fprintf(w, "| # | code | verdict | program |\n|---|---|---|---|\n")
	for i := range cases {
		c := &cases[i]
		verdict := "safe"
		if c.Racy {
			verdict = "**race**"
		}
		fmt.Fprintf(w, "| %d | `%s` | %s | %s |\n", i+1, c.Name, verdict, c.describe())
	}
}
