package micro

import (
	"bytes"
	"strings"
	"testing"

	"rmarace/internal/detector"
)

func TestSuiteComposition(t *testing.T) {
	cases := Suite()
	if len(cases) != 154 {
		t.Fatalf("suite has %d codes, want 154", len(cases))
	}
	racyN := countRacy(cases)
	if racyN != 47 {
		t.Fatalf("suite has %d racy codes, want 47", racyN)
	}
	if safe := len(cases) - racyN; safe != 107 {
		t.Fatalf("suite has %d safe codes, want 107", safe)
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Suite() {
		if seen[c.Name] {
			t.Fatalf("duplicate case name %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestTable2CasesPresentWithExpectedTruth(t *testing.T) {
	cases := Suite()
	wantRacy := map[string]bool{
		"ll_get_load_outwindow_origin_race": true,
		"ll_get_get_inwindow_origin_safe":   false,
		"ll_get_load_inwindow_origin_race":  true,
		"ll_load_get_inwindow_origin_safe":  false,
	}
	for name, racy := range wantRacy {
		c := Find(cases, name)
		if c == nil {
			t.Fatalf("case %s missing", name)
		}
		if c.Racy != racy {
			t.Fatalf("case %s ground truth = %v, want %v", name, c.Racy, racy)
		}
	}
}

// TestTable2Verdicts reproduces Table 2 exactly.
func TestTable2Verdicts(t *testing.T) {
	cases := Suite()
	want := map[string][3]bool{ // legacy, must, ours
		"ll_get_load_outwindow_origin_race": {true, true, true},
		"ll_get_get_inwindow_origin_safe":   {false, false, false},
		"ll_get_load_inwindow_origin_race":  {true, false, true},
		"ll_load_get_inwindow_origin_safe":  {true, false, false},
	}
	for name, verdicts := range want {
		c := Find(cases, name)
		if c == nil {
			t.Fatalf("case %s missing", name)
		}
		for i, m := range Table2Methods {
			detected, err := c.Run(m)
			if err != nil {
				t.Fatalf("%s under %v: %v", name, m, err)
			}
			if detected != verdicts[i] {
				t.Errorf("%s under %v: detected=%v, want %v", name, m, detected, verdicts[i])
			}
		}
	}
}

// TestTable3OurContribution: 0 FP, 0 FN, 47 TP, 107 TN.
func TestTable3OurContribution(t *testing.T) {
	conf, results, err := Evaluate(detector.OurContribution, Suite())
	if err != nil {
		t.Fatal(err)
	}
	if conf != (Confusion{FP: 0, FN: 0, TP: 47, TN: 107}) {
		for _, r := range results {
			if r.Racy != r.Detected {
				t.Logf("mismatch: %s racy=%v detected=%v", r.Name, r.Racy, r.Detected)
			}
		}
		t.Fatalf("our contribution: %+v, want {0 0 47 107}", conf)
	}
}

// TestTable3MustRMA: 0 FP, 15 FN (stack-array blindness), 32 TP, 107 TN.
func TestTable3MustRMA(t *testing.T) {
	conf, results, err := Evaluate(detector.MustRMAMethod, Suite())
	if err != nil {
		t.Fatal(err)
	}
	if conf != (Confusion{FP: 0, FN: 15, TP: 32, TN: 107}) {
		for _, r := range results {
			if r.Racy != r.Detected {
				t.Logf("mismatch: %s racy=%v detected=%v", r.Name, r.Racy, r.Detected)
			}
		}
		t.Fatalf("MUST-RMA: %+v, want {0 15 32 107}", conf)
	}
}

// TestTable3Legacy: 6 FP (order insensitivity). The paper's published
// row (FP 6, FN 0, TP 41, TN 107) does not sum to 47 racy codes; our
// measured row keeps the 6 FP and 0 FN and therefore reads TP 47,
// TN 101 — see EXPERIMENTS.md.
func TestTable3Legacy(t *testing.T) {
	conf, results, err := Evaluate(detector.RMAAnalyzer, Suite())
	if err != nil {
		t.Fatal(err)
	}
	if conf != (Confusion{FP: 6, FN: 0, TP: 47, TN: 101}) {
		for _, r := range results {
			if r.Racy != r.Detected {
				t.Logf("mismatch: %s racy=%v detected=%v", r.Name, r.Racy, r.Detected)
			}
		}
		t.Fatalf("legacy: %+v, want {6 0 47 101}", conf)
	}
}

func TestLegacyFalsePositivesAreTheLoadRMAOrders(t *testing.T) {
	_, results, err := Evaluate(detector.RMAAnalyzer, Suite())
	if err != nil {
		t.Fatal(err)
	}
	var fps []string
	for _, r := range results {
		if !r.Racy && r.Detected {
			fps = append(fps, r.Name)
		}
	}
	if len(fps) != 6 {
		t.Fatalf("legacy FPs = %v", fps)
	}
	for _, name := range fps {
		if !strings.HasPrefix(name, "ll_load_") && !strings.HasPrefix(name, "ll_store_") {
			t.Errorf("unexpected legacy FP %s (expected local-before-RMA orders)", name)
		}
	}
}

func TestMustFalseNegativesAllTouchWindowLocally(t *testing.T) {
	cases := Suite()
	_, results, err := Evaluate(detector.MustRMAMethod, cases)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Racy && !r.Detected {
			c := Find(cases, r.Name)
			hasLocal := c.D1.local() || c.D2.local()
			if !hasLocal || !c.InWindow {
				t.Errorf("MUST FN %s does not match the stack-array explanation", r.Name)
			}
		}
	}
}

func TestBaselineDetectsNothing(t *testing.T) {
	conf, _, err := Evaluate(detector.Baseline, Suite())
	if err != nil {
		t.Fatal(err)
	}
	if conf.TP != 0 || conf.FP != 0 {
		t.Fatalf("baseline detected something: %+v", conf)
	}
}

func TestWriteTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Table2Cases {
		if !strings.Contains(out, name) {
			t.Errorf("Table 2 output missing %s:\n%s", name, out)
		}
	}
}

func TestWriteMismatches(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMismatches(&buf, detector.MustRMAMethod); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FN") {
		t.Errorf("expected FN lines in %q", buf.String())
	}
}
