package micro

import (
	"bytes"
	"strings"
	"testing"

	"rmarace/internal/detector"
)

func TestConfusionTotal(t *testing.T) {
	c := Confusion{FP: 1, FN: 2, TP: 3, TN: 4}
	if c.Total() != 10 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestFindMissing(t *testing.T) {
	if Find(Suite(), "no_such_case") != nil {
		t.Fatal("Find invented a case")
	}
}

func TestWriteTable3Format(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"154 codes", "47 racy", "107 safe", "FP", "FN", "TP", "TN"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q:\n%s", want, out)
		}
	}
}

// TestEveryRacyCaseNamesARace / safe cases end in _safe: the naming
// convention encodes the ground truth, like the paper's suite.
func TestNamingEncodesGroundTruth(t *testing.T) {
	for _, c := range Suite() {
		if c.Racy && !strings.HasSuffix(c.Name, "_race") {
			t.Errorf("racy case %s not suffixed _race", c.Name)
		}
		if !c.Racy && !strings.HasSuffix(c.Name, "_safe") {
			t.Errorf("safe case %s not suffixed _safe", c.Name)
		}
	}
}

// TestDisjointControlsAreSafe: every _disjoint case is a safe control.
func TestDisjointControlsAreSafe(t *testing.T) {
	n := 0
	for _, c := range Suite() {
		if strings.Contains(c.Name, "_disjoint") {
			n++
			if c.Racy {
				t.Errorf("disjoint control %s marked racy", c.Name)
			}
		}
	}
	if n == 0 {
		t.Fatal("no disjoint controls found")
	}
}

// TestSuiteDeterministic: two generations agree exactly.
func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	if len(a) != len(b) {
		t.Fatal("suite size varies")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Racy != b[i].Racy {
			t.Fatalf("case %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestOurContributionOnEveryCaseMatchesGroundTruth is the exhaustive
// soundness+completeness check at program level (subsumes Table 3 for
// the contribution but localises failures to a case name).
func TestOurContributionOnEveryCaseMatchesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	for _, c := range Suite() {
		c := c
		detected, err := c.Run(detector.OurContribution)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if detected != c.Racy {
			t.Errorf("%s: detected=%v, ground truth %v", c.Name, detected, c.Racy)
		}
	}
}

func TestWriteSuiteDoc(t *testing.T) {
	var buf bytes.Buffer
	WriteSuiteDoc(&buf)
	out := buf.String()
	for _, want := range []string{
		"154 codes", "47 containing a data race",
		"ll_get_load_outwindow_origin_race", "**race**",
		"ll_get_get_inwindow_origin_safe",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("suite doc missing %q", want)
		}
	}
	// 154 case rows plus the header row.
	if n := strings.Count(out, "\n| "); n != 155 {
		t.Errorf("catalogue has %d table rows, want 155", n)
	}
}
