package micro

import (
	"strings"
	"testing"

	"rmarace/internal/detector"
)

// TestEvaluateEmptySuite: no cases, no counts, no error — the
// degenerate input every aggregation bug loves.
func TestEvaluateEmptySuite(t *testing.T) {
	conf, results, err := Evaluate(detector.OurContribution, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Total() != 0 {
		t.Errorf("empty suite scored %+v", conf)
	}
	if len(results) != 0 {
		t.Errorf("empty suite produced %d results", len(results))
	}
	if conf.Precision() != 1 || conf.Recall() != 1 || conf.F1() != 1 {
		t.Errorf("empty suite ratios P=%v R=%v F1=%v, want all 1",
			conf.Precision(), conf.Recall(), conf.F1())
	}
}

// TestEvaluateErrorPropagation: a case whose program cannot be built
// must abort the evaluation with the case's name and method in the
// error, and must not be silently scored.
func TestEvaluateErrorPropagation(t *testing.T) {
	cases := []Case{
		{Name: "ok_control", D1: dLoad, D2: dStore, Overlap: true, PureLocal: true},
		{Name: "bogus_descriptor", D1: Descriptor(99), D2: dLoad, Overlap: true},
	}
	conf, results, err := Evaluate(detector.OurContribution, cases)
	if err == nil {
		t.Fatal("want an error for descriptor 99")
	}
	if !strings.Contains(err.Error(), "unknown descriptor") ||
		!strings.Contains(err.Error(), "bogus_descriptor") {
		t.Errorf("error %q does not name the failure and case", err)
	}
	// The control case before the failure was evaluated; the bad one
	// contributed nothing.
	if got := conf.Total(); got != 1 {
		t.Errorf("confusion total %d after early abort, want 1", got)
	}
	if len(results) != 1 || results[0].Name != "ok_control" {
		t.Errorf("partial results %+v, want just ok_control", results)
	}
}

// TestConfusionRatios pins precision/recall/F1 across the
// zero-denominator corners.
func TestConfusionRatios(t *testing.T) {
	for _, tc := range []struct {
		name    string
		c       Confusion
		p, r, f float64
	}{
		{"zero matrix", Confusion{}, 1, 1, 1},
		{"all TP", Confusion{TP: 5}, 1, 1, 1},
		{"all TN", Confusion{TN: 7}, 1, 1, 1},
		{"FP only", Confusion{FP: 3}, 0, 1, 0},
		{"FN only", Confusion{FN: 2}, 1, 0, 0},
		{"both wrong", Confusion{FP: 1, FN: 1}, 0, 0, 0},
		{"mixed", Confusion{TP: 3, FP: 1, FN: 1, TN: 5}, 0.75, 0.75, 0.75},
	} {
		if got := tc.c.Precision(); got != tc.p {
			t.Errorf("%s: precision %v, want %v", tc.name, got, tc.p)
		}
		if got := tc.c.Recall(); got != tc.r {
			t.Errorf("%s: recall %v, want %v", tc.name, got, tc.r)
		}
		if got := tc.c.F1(); got != tc.f {
			t.Errorf("%s: F1 %v, want %v", tc.name, got, tc.f)
		}
	}
}
