package micro

import (
	"fmt"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/rma"
)

// Ranks is the world size every microbenchmark runs with: the owner of
// the doubly-accessed location (rank 0), the first origin (rank 1) and
// ORIGIN 2 (rank 2).
const Ranks = 3

const (
	locOff      = 0  // the doubly-accessed location in the owner's window/buffer
	locOffAlt   = 64 // the second location of disjoint controls
	remoteOff1  = 32 // scratch window region at rank 1 targeted by owner ops
	remoteOff2  = 40
	obWinOff1   = 128 // origin-side buffers placed inside the issuer's window
	obWinOff2   = 160
	selfDstOff1 = 128 // self-communication target regions
	selfDstOff2 = 160
	accBytes    = 8
	winSize     = 256
)

// issuer returns the rank executing the descriptor.
func (c *Case) issuer(d Descriptor, second bool) int {
	if !d.remote() {
		return 0
	}
	if second && c.SecondOrigin {
		return 2
	}
	return 1
}

func (c *Case) dbg(line int) access.Debug {
	return access.Debug{File: "micro/" + c.Name + ".c", Line: line}
}

// body returns the SPMD program of the case.
func (c *Case) body() func(p *rma.Proc) error {
	return func(p *rma.Proc) error {
		// The suite's windows are created over stack arrays
		// (MPI_Win_create on a local buffer); see the package comment.
		w, err := p.WinCreate("X", winSize, rma.OnStack())
		if err != nil {
			return err
		}
		// Heap buffers: the out-of-window location and per-operation
		// origin/destination scratch.
		locHeap := p.Alloc("loc", 128)
		ob1 := p.Alloc("ob1", 64)
		ob2 := p.Alloc("ob2", 64)

		if err := w.LockAll(); err != nil {
			return err
		}

		step := func(second bool) error {
			if p.Rank() != 0 {
				return nil
			}
			line := 10
			off := selfDstOff1
			ob := ob1
			if second {
				line, off, ob = 20, selfDstOff2, ob2
			}
			switch c.Self {
			case selfGetGet:
				return w.Get(ob, 0, 0, locOff, accBytes, c.dbg(line))
			case selfPutPut:
				return w.Put(0, off, w.Buffer(), locOff, accBytes, c.dbg(line))
			case selfGetPutDisjoint:
				if !second {
					return w.Get(ob1, 0, 0, locOff, accBytes, c.dbg(line))
				}
				return w.Put(0, locOffAlt, ob2, 0, accBytes, c.dbg(line))
			}
			return nil
		}

		exec := func(d Descriptor, second bool) error {
			if c.Self != selfNone {
				return step(second)
			}
			if p.Rank() != c.issuer(d, second) {
				return nil
			}
			line := 10
			if second {
				line = 20
			}
			loc := locHeap
			if c.InWindow {
				loc = w.Buffer()
			}
			off := locOff
			if second && !c.Overlap {
				off = locOffAlt
			}
			rOff, obOff := remoteOff1, obWinOff1
			ob := ob1
			if second {
				rOff, obOff, ob = remoteOff2, obWinOff2, ob2
			}
			switch d {
			case dLoad:
				_, err := loc.Load(off, accBytes, c.dbg(line))
				return err
			case dStore:
				return loc.Store(off, make([]byte, accBytes), c.dbg(line))
			case dGetL:
				return w.Get(loc, off, 1, rOff, accBytes, c.dbg(line))
			case dPutL:
				return w.Put(1, rOff, loc, off, accBytes, c.dbg(line))
			case dGetR:
				if c.OriginBufIn {
					return w.Get(w.Buffer(), obOff, 0, off, accBytes, c.dbg(line))
				}
				return w.Get(ob, 0, 0, off, accBytes, c.dbg(line))
			case dPutR:
				if c.OriginBufIn {
					return w.Put(0, off, w.Buffer(), obOff, accBytes, c.dbg(line))
				}
				return w.Put(0, off, ob, 0, accBytes, c.dbg(line))
			}
			return fmt.Errorf("micro: unknown descriptor %d", d)
		}

		if err := exec(c.D1, false); err != nil {
			return err
		}
		// The barrier orders the two operations' *issuing* across ranks
		// so every run observes the suite's program order. Per the MPI
		// standard (§6(1) of the paper) it does NOT complete one-sided
		// communications, and none of the analyzers treats it as a
		// synchronisation point.
		if err := p.Barrier(); err != nil {
			return err
		}
		if err := exec(c.D2, true); err != nil {
			return err
		}
		return w.UnlockAll()
	}
}

// Run executes the case under the given analysis method and reports
// whether a race was detected. A race abort is a successful detection,
// not an error.
func (c *Case) Run(method detector.Method) (detected bool, err error) {
	world := mpi.NewWorld(Ranks)
	s := rma.NewSession(world, rma.Config{Method: method})
	runErr := world.Run(func(mp *mpi.Proc) error { return c.body()(s.Proc(mp)) })
	s.Close()
	if r := s.Race(); r != nil {
		return true, nil
	}
	return false, runErr
}
