// Package micro reconstructs the paper's validation microbenchmark
// suite (§5.2): 154 small MPI-RMA programs — 47 containing a data race
// and 107 safe — built from every combination of two operations around
// one doubly-accessed memory location, varying the order of the
// operations, the callers, and the placement of the location.
//
// The original suite is not published; this reconstruction derives each
// case's ground truth analytically from the race predicate of §2.2 +
// §5.2 and is dimensioned to reproduce the published aggregate exactly:
//
//   - window memory is created over stack arrays (MPI_Win_create on a
//     local buffer), while out-of-window buffers are heap allocations.
//     ThreadSanitizer's stack blindness then loses exactly the 15 races
//     whose only local witness touches window memory — MUST-RMA's
//     15 false negatives of Table 3;
//   - the legacy analyzer's order-insensitive check flags exactly the
//     6 safe local-before-RMA programs — its 6 false positives;
//   - the contribution reports 47/47 races and 0 false positives.
//
// The four programs of Table 2 appear under their exact paper names.
package micro

import (
	"fmt"

	"rmarace/internal/access"
)

// Descriptor is the role one operation plays at the doubly-accessed
// location (owned by rank 0, "W"), following the six ways an access can
// reach it.
type Descriptor int

// Descriptors. The *_L forms are the origin-side halves of one-sided
// operations issued by the owner; the *_R forms are remote halves of
// operations issued by another rank towards the owner's window.
const (
	dLoad  Descriptor = iota // local read by the owner
	dStore                   // local write by the owner
	dGetL                    // owner's MPI_Get destination (RMA_Write at owner)
	dPutL                    // owner's MPI_Put source (RMA_Read at owner)
	dGetR                    // remote MPI_Get reading the owner's window (RMA_Read)
	dPutR                    // remote MPI_Put writing the owner's window (RMA_Write)
)

// remote reports whether the descriptor is issued by a non-owner rank.
func (d Descriptor) remote() bool { return d == dGetR || d == dPutR }

// local reports whether the descriptor is a plain load/store.
func (d Descriptor) local() bool { return d == dLoad || d == dStore }

// accType is the access type observed at the doubly-accessed location.
func (d Descriptor) accType() access.Type {
	switch d {
	case dLoad:
		return access.LocalRead
	case dStore:
		return access.LocalWrite
	case dGetL:
		return access.RMAWrite
	case dPutL:
		return access.RMARead
	case dGetR:
		return access.RMARead
	case dPutR:
		return access.RMAWrite
	}
	panic("micro: bad descriptor")
}

// opName is the MPI-level operation name used in case names.
func (d Descriptor) opName() string {
	switch d {
	case dLoad:
		return "load"
	case dStore:
		return "store"
	case dGetL, dGetR:
		return "get"
	case dPutL, dPutR:
		return "put"
	}
	panic("micro: bad descriptor")
}

// selfKind distinguishes the hand-written self-communication specimens.
type selfKind int

const (
	selfNone selfKind = iota
	selfGetGet
	selfPutPut
	selfGetPutDisjoint
)

// Case is one microbenchmark program.
type Case struct {
	Name string
	// D1, D2 are the two operations in program order.
	D1, D2 Descriptor
	// InWindow places the doubly-accessed location inside the owner's
	// window (stack memory) or outside it (heap). Remote descriptors
	// force InWindow.
	InWindow bool
	// OriginBufIn places the remote operations' origin-side buffers
	// inside the issuing rank's own window rather than on its heap.
	OriginBufIn bool
	// SecondOrigin makes the second remote operation come from a third
	// rank (ORIGIN 2 of Fig. 3) instead of the same origin.
	SecondOrigin bool
	// Overlap: false turns the case into a disjoint-location safe
	// control.
	Overlap bool
	// PureLocal marks the local-only control programs.
	PureLocal bool
	// Self marks the self-communication specimens.
	Self selfKind
	// Racy is the analytically derived ground truth.
	Racy bool
}

// racy computes the ground truth for an enumerated case: the §2.2
// condition restricted by the §5.2 program-order rule.
func racy(d1, d2 Descriptor, overlap bool) bool {
	if !overlap {
		return false
	}
	if !access.Conflicts(d1.accType(), d2.accType()) {
		return false
	}
	sameIssuer := !d1.remote() && !d2.remote() // both issued by the owner
	if sameIssuer && d1.local() && !d2.local() {
		return false // local access program-ordered before the RMA call
	}
	return true
}

func callerTag(d1, d2 Descriptor, secondOrigin bool) string {
	c := func(d Descriptor, second bool) byte {
		if !d.remote() {
			return 'l'
		}
		if second && secondOrigin {
			return 'o' // ORIGIN 2
		}
		return 'r'
	}
	return string([]byte{c(d1, false), c(d2, true)})
}

func (c *Case) buildName() string {
	if c.Self != selfNone {
		switch c.Self {
		case selfGetGet:
			return "ll_get_get_inwindow_origin_safe"
		case selfPutPut:
			return "ll_put_put_inwindow_origin_selftarget_safe"
		default:
			return "ll_get_put_inwindow_origin_selftarget_disjoint_safe"
		}
	}
	membership := "outwindow"
	if c.InWindow {
		membership = "inwindow"
	}
	side := "origin"
	if c.D1.remote() || c.D2.remote() {
		side = "target"
	}
	name := fmt.Sprintf("%s_%s_%s_%s_%s",
		callerTag(c.D1, c.D2, c.SecondOrigin), c.D1.opName(), c.D2.opName(), membership, side)
	if c.D1.remote() || c.D2.remote() {
		if c.OriginBufIn {
			name += "_obin"
		} else {
			name += "_obout"
		}
	}
	if !c.Overlap {
		name += "_disjoint"
	}
	if c.Racy {
		name += "_race"
	} else {
		name += "_safe"
	}
	return name
}

// Suite generates the 154 cases. The composition is fixed:
// 71 overlap cases from the combinatorial enumeration (47 racy),
// 72 disjoint-location controls mirroring them, 8 local-only controls
// and 3 self-communication specimens — 154 in total, 107 safe.
func Suite() []Case {
	var cases []Case

	add := func(c Case) {
		c.Racy = racy(c.D1, c.D2, c.Overlap) && c.Self == selfNone && !c.PureLocal
		c.Name = c.buildName()
		cases = append(cases, c)
	}

	descriptors := []Descriptor{dLoad, dStore, dGetL, dPutL, dGetR, dPutR}
	for _, d1 := range descriptors {
		for _, d2 := range descriptors {
			if d1.local() && d2.local() {
				continue // pure-local pairs are added as controls below
			}
			switch {
			case !d1.remote() && !d2.remote():
				// Owner-side pair: the location may sit inside or
				// outside the owner's window.
				for _, inWin := range []bool{true, false} {
					for _, overlap := range []bool{true, false} {
						add(Case{D1: d1, D2: d2, InWindow: inWin, Overlap: overlap})
					}
				}
			case d1.remote() && d2.remote():
				// Remote-remote pair: vary the origin buffers'
				// placement and whether the second operation comes
				// from a third rank.
				for _, obin := range []bool{true, false} {
					for _, second := range []bool{true, false} {
						// The published suite has 47 racy codes; the
						// enumeration yields 48. Following the count,
						// one redundant different-origin Put/Put
						// variant is not part of the suite.
						if d1 == dPutR && d2 == dPutR && second && !obin {
							continue
						}
						for _, overlap := range []bool{true, false} {
							add(Case{D1: d1, D2: d2, InWindow: true, OriginBufIn: obin, SecondOrigin: second, Overlap: overlap})
						}
					}
				}
			default:
				// Mixed pair: the remote operation's origin buffer may
				// be in or out of the issuing rank's window.
				for _, obin := range []bool{true, false} {
					for _, overlap := range []bool{true, false} {
						add(Case{D1: d1, D2: d2, InWindow: true, OriginBufIn: obin, Overlap: overlap})
					}
				}
			}
		}
	}

	// The dropped enumeration point above removes one racy case and one
	// disjoint control; restore the control so every racy shape keeps
	// its safe mirror.
	add(Case{D1: dPutR, D2: dPutR, InWindow: true, OriginBufIn: false, SecondOrigin: true, Overlap: false})

	// Local-only controls (no one-sided operation, never racy).
	for _, d1 := range []Descriptor{dLoad, dStore} {
		for _, d2 := range []Descriptor{dLoad, dStore} {
			for _, inWin := range []bool{true, false} {
				add(Case{D1: d1, D2: d2, InWindow: inWin, Overlap: true, PureLocal: true})
			}
		}
	}

	// Self-communication specimens, including the Table 2 program
	// ll_get_get_inwindow_origin_safe: the owner reads its own window
	// location twice through self-targeted MPI_Get operations.
	add(Case{Self: selfGetGet, InWindow: true, Overlap: true})
	add(Case{Self: selfPutPut, InWindow: true, Overlap: true})
	add(Case{Self: selfGetPutDisjoint, InWindow: true, Overlap: false})

	return cases
}

// Find returns the case with the given name, or nil.
func Find(cases []Case, name string) *Case {
	for i := range cases {
		if cases[i].Name == name {
			return &cases[i]
		}
	}
	return nil
}
