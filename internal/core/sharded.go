package core

import (
	"fmt"
	"sort"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/shard"
)

// Sharded partitions one (process, window) analysis across K
// independent Analyzers, each owning the accesses of a contiguous set
// of address-space granules (package shard). An access spanning a shard
// boundary is split at the boundary; since Algorithm 1 keeps stored
// intervals pairwise disjoint and the race predicate is per-overlap,
// every overlap lies wholly inside one granule and is seen by exactly
// one shard, in arrival order — verdicts are identical at every shard
// count. What does change is the stored-interval set at the boundaries
// themselves: a merged run crossing a granule boundary is held as one
// piece per granule, so shard node counts sum to slightly more than the
// unsharded count (never less; the equivalence tests coalesce at the
// boundaries before comparing).
//
// Sharded itself processes serially (Access/AccessBatch route pieces to
// the owning sub-analyzer in order); the parallel win comes from the
// engine's per-shard worker pool, which drives the sub-analyzers
// concurrently through the Sharder capability.
type Sharded struct {
	m    shard.Map
	subs []*Analyzer
	// route is the reusable per-shard partition buffer of AccessBatch.
	route [][]detector.Event
}

// NewSharded returns a sharded analyzer of shards independent
// sub-analyzers, each built with opts. shards must be a power of two;
// shard options inside opts (WithShards, WithShardGranule) configure
// the map. A shared-store option (WithStore) is rejected: each shard
// must own an independent store — use WithStoreFactory.
func NewSharded(shards int, opts ...Option) *Sharded {
	probe := &Analyzer{}
	for _, o := range opts {
		o(probe)
	}
	if probe.st != nil {
		panic("core: NewSharded with a shared WithStore backend; use WithStoreFactory so each shard owns its store")
	}
	m, err := shard.New(shards, probe.shardGranule)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	s := &Sharded{
		m:     m,
		subs:  make([]*Analyzer, shards),
		route: make([][]detector.Event, shards),
	}
	for i := range s.subs {
		s.subs[i] = New(opts...)
	}
	return s
}

// Build returns the analyzer selected by opts: a *Sharded when
// WithShards(k > 1) is among them, a plain *Analyzer otherwise. It is
// the constructor configuration surfaces (rma.Config.Shards, the
// replay CLI) go through.
func Build(opts ...Option) detector.Analyzer {
	probe := &Analyzer{}
	for _, o := range opts {
		o(probe)
	}
	if probe.shardCount > 1 {
		return NewSharded(probe.shardCount, opts...)
	}
	return New(opts...)
}

// Map returns the shard map (for tests and the engine's routing).
func (s *Sharded) Map() shard.Map { return s.m }

// Name implements detector.Analyzer.
func (*Sharded) Name() string { return "our-contribution" }

// NumShards implements detector.Sharder.
func (s *Sharded) NumShards() int { return len(s.subs) }

// ShardAnalyzer implements detector.Sharder.
func (s *Sharded) ShardAnalyzer(i int) detector.Analyzer { return s.subs[i] }

// RouteEach implements detector.Sharder: ev is split at granule
// boundaries and emitted piece by piece in ascending address order.
func (s *Sharded) RouteEach(ev detector.Event, emit func(int, detector.Event)) {
	s.m.Split(ev.Acc.Lo, ev.Acc.Hi, func(sh int, lo, hi uint64) {
		piece := ev
		piece.Acc.Lo, piece.Acc.Hi = lo, hi
		emit(sh, piece)
	})
}

// Access implements detector.Analyzer: the event's pieces are analysed
// by their owning shards in ascending address order; the first race
// wins.
func (s *Sharded) Access(ev detector.Event) *detector.Race {
	var race *detector.Race
	s.m.Split(ev.Acc.Lo, ev.Acc.Hi, func(sh int, lo, hi uint64) {
		if race != nil {
			return
		}
		piece := ev
		piece.Acc.Lo, piece.Acc.Hi = lo, hi
		race = s.subs[sh].Access(piece)
		if race != nil {
			race.EnsureProv().Shard = sh
		}
	})
	return race
}

// AccessBatch implements detector.BatchAnalyzer: the batch is
// partitioned by shard (preserving per-shard order) and each shard
// processes its sub-batch through the sub-analyzer's own batch fast
// path. Serial; the engine parallelises the same partition across its
// worker pool.
func (s *Sharded) AccessBatch(evs []detector.Event) *detector.Race {
	for i := range s.route {
		s.route[i] = s.route[i][:0]
	}
	for i := range evs {
		s.RouteEach(evs[i], func(sh int, piece detector.Event) {
			s.route[sh] = append(s.route[sh], piece)
		})
	}
	for sh, sub := range s.subs {
		if len(s.route[sh]) == 0 {
			continue
		}
		if race := sub.AccessBatch(s.route[sh]); race != nil {
			race.EnsureProv().Shard = sh
			return race
		}
	}
	return nil
}

// EpochEnd implements detector.Analyzer.
func (s *Sharded) EpochEnd() {
	for _, sub := range s.subs {
		sub.EpochEnd()
	}
}

// Flush implements detector.Analyzer.
func (s *Sharded) Flush(rank int) {
	for _, sub := range s.subs {
		sub.Flush(rank)
	}
}

// Release implements detector.Analyzer.
func (s *Sharded) Release(rank int) {
	for _, sub := range s.subs {
		sub.Release(rank)
	}
}

// CompleteRequest implements detector.RequestCompleter: the completed
// origin-buffer span is split at granule boundaries and each shard
// trims its own piece, exactly like access routing.
func (s *Sharded) CompleteRequest(rank int, iv interval.Interval) {
	s.m.Split(iv.Lo, iv.Hi, func(sh int, lo, hi uint64) {
		s.subs[sh].CompleteRequest(rank, interval.New(lo, hi))
	})
}

// Nodes implements detector.Analyzer: the current stored-entry count
// summed over shards.
func (s *Sharded) Nodes() int {
	n := 0
	for _, sub := range s.subs {
		n += sub.Nodes()
	}
	return n
}

// MaxNodes implements detector.Analyzer as the sum of the per-shard
// high-water marks (the Table 4 aggregate, shard-aware). The per-shard
// peaks need not be simultaneous, so the sum is an upper bound on the
// instantaneous total; at shard count 1 it is exact, keeping
// paper-validation numbers comparable.
func (s *Sharded) MaxNodes() int {
	n := 0
	for _, sub := range s.subs {
		n += sub.MaxNodes()
	}
	return n
}

// ShardMaxNodes returns each shard's node high-water mark.
func (s *Sharded) ShardMaxNodes() []int {
	out := make([]int, len(s.subs))
	for i, sub := range s.subs {
		out[i] = sub.MaxNodes()
	}
	return out
}

// MaxShardNodes returns the largest single-shard high-water mark — the
// hottest shard's footprint.
func (s *Sharded) MaxShardNodes() int {
	m := 0
	for _, sub := range s.subs {
		if n := sub.MaxNodes(); n > m {
			m = n
		}
	}
	return m
}

// Compact implements detector.Compacter: every shard compacts, and the
// routing partition buffers are released too.
func (s *Sharded) Compact() {
	for _, sub := range s.subs {
		sub.Compact()
	}
	for i := range s.route {
		s.route[i] = nil
	}
}

// Accesses implements detector.Analyzer. Pieces count individually, so
// an access straddling a shard boundary counts once per piece.
func (s *Sharded) Accesses() uint64 {
	var n uint64
	for _, sub := range s.subs {
		n += sub.Accesses()
	}
	return n
}

// Items returns every shard's stored accesses, sorted by interval, for
// inspection and the equivalence tests.
func (s *Sharded) Items() []access.Access {
	var out []access.Access
	for _, sub := range s.subs {
		out = append(out, sub.Items()...)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Interval.Compare(out[j].Interval) < 0
	})
	return out
}

var (
	_ detector.Analyzer         = (*Sharded)(nil)
	_ detector.BatchAnalyzer    = (*Sharded)(nil)
	_ detector.Sharder          = (*Sharded)(nil)
	_ detector.Compacter        = (*Sharded)(nil)
	_ detector.RequestCompleter = (*Sharded)(nil)
)
