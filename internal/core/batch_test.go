package core

import (
	"math/rand"
	"reflect"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// randomReadStream builds a race-free stream (reads never conflict)
// that still exercises every insertion path: adjacent runs that merge,
// overlapping accesses that fragment, and debug variation that blocks
// merging.
func randomReadStream(rng *rand.Rand, n int) []detector.Event {
	out := make([]detector.Event, n)
	cursor := uint64(1 << 16)
	for i := range out {
		var iv interval.Interval
		switch rng.Intn(4) {
		case 0: // adjacent continuation (the frontier fast path)
			iv = interval.Span(cursor, 8)
			cursor += 8
		case 1: // overlap something recent (fragmentation)
			back := uint64(rng.Intn(64) * 4)
			iv = interval.Span(cursor-back-4, uint64(8+rng.Intn(16)))
		default: // fresh location
			cursor += uint64(64 + rng.Intn(128))
			iv = interval.Span(cursor, uint64(4+rng.Intn(12)))
			cursor += iv.Len()
		}
		out[i] = detector.Event{
			Acc: access.Access{
				Interval: iv,
				Type:     access.RMARead,
				Rank:     rng.Intn(3),
				Debug:    access.Debug{File: "batch.c", Line: 1 + rng.Intn(2)},
			},
			Time: uint64(i + 1), CallTime: uint64(i + 1),
		}
	}
	return out
}

// TestAccessBatchMatchesScalar pins the batched entry point to the
// scalar one: for any chunking of the same stream, AccessBatch must
// leave the store in the same state Access does.
func TestAccessBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := randomReadStream(rng, 4000)

	scalar := New()
	for _, ev := range stream {
		if r := scalar.Access(ev); r != nil {
			t.Fatalf("scalar reported a race on a read-only stream: %v", r)
		}
	}

	for _, chunk := range []int{1, 3, 64, 1000} {
		batched := New()
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			evs := make([]detector.Event, end-off)
			copy(evs, stream[off:end])
			if r := batched.AccessBatch(evs); r != nil {
				t.Fatalf("chunk %d reported a race on a read-only stream: %v", chunk, r)
			}
		}
		if got, want := batched.Items(), scalar.Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: store diverged from scalar\n got %d items\nwant %d items", chunk, len(got), len(want))
		}
		if got, want := batched.Accesses(), scalar.Accesses(); got != want {
			t.Fatalf("chunk %d: accesses %d, want %d", chunk, got, want)
		}
	}
}

// TestAccessBatchReportsSameRace plants a conflicting write behind an
// adjacent run and checks the batched path reports the identical race
// the scalar path does.
func TestAccessBatchReportsSameRace(t *testing.T) {
	var stream []detector.Event
	for i := 0; i < 100; i++ {
		stream = append(stream, detector.Event{
			Acc: access.Access{
				Interval: interval.Span(uint64(4096+i*8), 8),
				Type:     access.RMAWrite,
				Rank:     0,
				Debug:    access.Debug{File: "run.c", Line: 5},
			},
			Time: uint64(i + 1), CallTime: uint64(i + 1),
		})
	}
	stream = append(stream, detector.Event{
		Acc: access.Access{
			Interval: interval.Span(4096+400, 8), // inside the merged run
			Type:     access.RMAWrite,
			Rank:     1,
			Debug:    access.Debug{File: "other.c", Line: 9},
		},
		Time: 101, CallTime: 101,
	})

	scalar := New()
	var scalarRace *detector.Race
	for _, ev := range stream {
		if scalarRace = scalar.Access(ev); scalarRace != nil {
			break
		}
	}
	if scalarRace == nil {
		t.Fatal("scalar missed the planted race")
	}

	batched := New()
	evs := make([]detector.Event, len(stream))
	copy(evs, stream)
	batchRace := batched.AccessBatch(evs)
	if batchRace == nil {
		t.Fatal("batched missed the planted race")
	}
	if !reflect.DeepEqual(*scalarRace, *batchRace) {
		t.Fatalf("race reports diverged:\nscalar %+v\nbatch  %+v", *scalarRace, *batchRace)
	}
}
