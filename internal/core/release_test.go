package core

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// TestReleaseRetiresConflatedRemoteFragments pins the fuzzer-found
// defect of per-rank release. Two remote ranks issue overlapping
// same-operation accumulates (race-exempt); Table 1 combination types
// their intersection fragment with a single identity — the incoming
// access's rank — so a per-rank retirement keyed on that label either
// deletes coverage belonging to a still-live rank (a false negative
// the differential fuzzer minimised to a 10-op reproducer) or leaves a
// retired rank's label live (a false positive). Retiring by remoteness
// is exact: remote accesses only ever share a combined fragment with
// other remote accesses, and the exclusive unlock's FIFO lock ordering
// retires all of them together, so the verdict always matches the
// naive per-access oracle.
func TestReleaseRetiresConflatedRemoteFragments(t *testing.T) {
	ev := func(tp access.Type, rank int, lo, n uint64, op access.AccumOp, line int, tm uint64) detector.Event {
		return detector.Event{
			Acc: access.Access{
				Interval: interval.Span(lo, n),
				Type:     tp,
				Rank:     rank,
				AccumOp:  op,
				Debug:    access.Debug{File: "f.c", Line: line},
			},
			Time: tm, CallTime: tm,
		}
	}
	z := New(WithOwner(1))
	// Remote rank 0 accumulates over [100,107]; remote rank 3 over the
	// overlapping [104,111] with the same reduction operation — exempt
	// from racing, and the [104,107] fragment is combined under a
	// single (here rank 3's) identity.
	if r := z.Access(ev(access.RMAAccum, 0, 100, 8, access.AccumBand, 1, 1)); r != nil {
		t.Fatal(r)
	}
	if r := z.Access(ev(access.RMAAccum, 3, 104, 8, access.AccumBand, 2, 2)); r != nil {
		t.Fatal(r)
	}
	// The owner's own one-sided access (origin-side buffer) elsewhere.
	if r := z.Access(ev(access.RMAWrite, 1, 200, 8, access.AccumNone, 3, 3)); r != nil {
		t.Fatal(r)
	}

	z.Release(3) // rank 3's exclusive unlock

	// Every remote access retired — including rank 0's, whose session
	// also completed before the unlock in the lock's FIFO grant order.
	// A conflicting write over the whole accumulated range is clean,
	// exactly as the naive oracle rules.
	if r := z.Access(ev(access.RMAWrite, 2, 100, 12, access.AccumNone, 4, 4)); r != nil {
		t.Fatalf("retired remote coverage still conflicts: %v", r)
	}
	// The owner's access is never lock-ordered and still races.
	if r := z.Access(ev(access.RMAWrite, 2, 200, 8, access.AccumNone, 5, 5)); r == nil {
		t.Fatal("owner's access vanished on release")
	}
}

// TestReleaseUnknownOwnerRetiresAllRMA: without WithOwner the analyzer
// cannot tell the owner's accesses apart and conservatively retires
// every one-sided access on Release (and a zero-value Analyzer behaves
// the same).
func TestReleaseUnknownOwnerRetiresAllRMA(t *testing.T) {
	var z Analyzer
	a := detector.Event{
		Acc: access.Access{
			Interval: interval.Span(0, 8),
			Type:     access.RMAWrite,
			Rank:     0,
			Debug:    access.Debug{File: "f.c", Line: 1},
		},
		Time: 1, CallTime: 1,
	}
	if r := z.Access(a); r != nil {
		t.Fatal(r)
	}
	z.Release(2)
	if n := z.Nodes(); n != 0 {
		t.Fatalf("unknown-owner release kept %d nodes", n)
	}
}
