package core

import (
	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/strided"
)

// minSectionRun is the run length below which a broken strided run is
// re-materialised into the tree instead of being kept as a section:
// short runs compress nothing and would bloat the section scan.
const minSectionRun = 4

// runKey identifies a strided access stream: everything an element of a
// regular section must share except its address.
type runKey struct {
	tp    access.Type
	rank  int
	stack bool
	op    access.AccumOp
	debug access.Debug
	width uint64
}

func keyOf(a access.Access) runKey {
	return runKey{tp: a.Type, rank: a.Rank, stack: a.Stack, op: a.AccumOp, debug: a.Debug, width: a.Interval.Len()}
}

// runState tracks one stream's pending compression.
type runState struct {
	sec     *strided.Section
	last    access.Access
	hasLast bool
}

// WithStridedMerging enables the §6(3) extension the paper leaves as
// future work: compressing constant-stride access sequences — such as
// MiniVite's attribute accesses on 24-byte-strided records — into
// regular sections (one-dimensional polyhedra, after Ketterlin &
// Clauss), which merging cannot coalesce because the accesses are not
// adjacent. Race checks consult the sections exactly like tree nodes;
// Table 1 type combination is not applied across a section (both
// representations are kept, so detection remains complete).
func WithStridedMerging() Option {
	return func(a *Analyzer) {
		a.stridedOn = true
		a.open = make(map[runKey]*runState)
	}
}

// sectionRace checks a against every compressed access, including the
// still-open runs.
func (z *Analyzer) sectionRace(a access.Access) *detector.Race {
	check := func(s *strided.Section) *detector.Race {
		from, to := s.Overlap(a.Interval)
		for k := from; k < to; k++ {
			rep := s.Representative(k)
			if access.Races(rep, a) {
				return &detector.Race{Prev: rep, Cur: a}
			}
		}
		return nil
	}
	for i := range z.sections {
		if race := check(&z.sections[i]); race != nil {
			return race
		}
	}
	for _, rs := range z.open {
		if rs.sec != nil {
			if race := check(rs.sec); race != nil {
				return race
			}
		}
	}
	return nil
}

// treeRace runs only step (1) of Algorithm 1 against the store.
func (z *Analyzer) treeRace(a access.Access) *detector.Race {
	var race *detector.Race
	z.lazyStore().Stab(a.Interval, func(s access.Access) bool {
		if access.Races(s, a) {
			race = &detector.Race{Prev: s, Cur: a}
			return false
		}
		return true
	})
	return race
}

// tryStride absorbs a into its stream's section when it continues the
// stream's constant stride, and reports whether a was consumed. When a
// breaks an open run, the run is finalised first (kept as a section if
// long enough, re-materialised otherwise).
func (z *Analyzer) tryStride(a access.Access) bool {
	key := keyOf(a)
	rs := z.open[key]
	if rs == nil {
		rs = &runState{}
		z.open[key] = rs
	}
	if rs.sec != nil {
		if rs.sec.CanAppend(a) {
			rs.sec.Append()
			return true
		}
		z.closeRun(rs)
	}
	if rs.hasLast {
		if sec, err := strided.New(rs.last, a); err == nil {
			// Reclaim the run's first element from the store; if it was
			// meanwhile merged or fragmented away, fall back to plain
			// storage.
			if z.lazyStore().Delete(rs.last.Interval) {
				rs.sec = &sec
				rs.hasLast = false
				return true
			}
		}
	}
	rs.last = a
	rs.hasLast = true
	return false
}

// closeRun finalises a pending section.
func (z *Analyzer) closeRun(rs *runState) {
	sec := rs.sec
	rs.sec = nil
	if sec == nil {
		return
	}
	if sec.Elements() >= minSectionRun {
		z.sections = append(z.sections, *sec)
		return
	}
	// Too short to be worth a section: put the elements back into the
	// tree through the normal insertion path (they were already
	// race-checked on arrival).
	for k := uint64(0); k < sec.Elements(); k++ {
		z.insert(sec.Representative(k), false)
	}
}

func (z *Analyzer) sectionCount() int {
	if !z.stridedOn {
		return 0
	}
	n := len(z.sections)
	for _, rs := range z.open {
		if rs.sec != nil {
			n++
		}
	}
	return n
}

// Sections returns the finalised regular sections, for inspection and
// testing.
func (z *Analyzer) Sections() []strided.Section {
	out := make([]strided.Section, len(z.sections))
	copy(out, z.sections)
	for _, rs := range z.open {
		if rs.sec != nil {
			out = append(out, *rs.sec)
		}
	}
	return out
}
