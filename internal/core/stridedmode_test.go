package core

import (
	"math/rand"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// stridedEv emits the MiniVite pattern: 8-byte accesses at 24-byte
// stride, one source line.
func stridedEv(i int, tp access.Type, line int, time *uint64) detector.Event {
	*time++
	return detector.Event{
		Acc: access.Access{
			Interval: interval.Span(uint64(i)*24, 8),
			Type:     tp,
			Rank:     0,
			Debug:    access.Debug{File: "dspl.hpp", Line: line},
		},
		Time: *time, CallTime: *time,
	}
}

// TestStridedCompressionMiniVitePattern validates the §6(3) hypothesis:
// the strided mode compresses the non-adjacent attribute accesses that
// plain merging cannot touch.
func TestStridedCompressionMiniVitePattern(t *testing.T) {
	plain := New()
	strided := New(WithStridedMerging())
	var t1, t2 uint64
	const n = 2000
	for i := 0; i < n; i++ {
		if r := plain.Access(stridedEv(i, access.LocalRead, 601, &t1)); r != nil {
			t.Fatal(r)
		}
		if r := strided.Access(stridedEv(i, access.LocalRead, 601, &t2)); r != nil {
			t.Fatal(r)
		}
	}
	if plain.Nodes() != n {
		t.Fatalf("plain analyzer has %d nodes, want %d (strided accesses do not merge)", plain.Nodes(), n)
	}
	if strided.Nodes() != 1 {
		t.Fatalf("strided analyzer has %d nodes, want 1 section", strided.Nodes())
	}
	secs := strided.Sections()
	if len(secs) != 1 || secs[0].Elements() != n || secs[0].Stride != 24 {
		t.Fatalf("sections = %v", secs)
	}
}

// TestStridedDetectionStillComplete: a conflicting access overlapping a
// compressed element is still reported, with the section element as the
// stored side.
func TestStridedDetectionStillComplete(t *testing.T) {
	z := New(WithStridedMerging())
	var tm uint64
	for i := 0; i < 100; i++ {
		if r := z.Access(stridedEv(i, access.RMAWrite, 612, &tm)); r != nil {
			t.Fatal(r)
		}
	}
	// A local read by another... by the same rank after the RMA writes:
	// RMA-then-local races.
	tm++
	race := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(50*24, 8),
			Type:     access.LocalRead,
			Rank:     0,
			Debug:    access.Debug{File: "dspl.hpp", Line: 700},
		},
		Time: tm,
	})
	if race == nil {
		t.Fatal("race against a compressed element missed")
	}
	if race.Prev.Interval != interval.Span(50*24, 8) || race.Prev.Type != access.RMAWrite {
		t.Fatalf("race stored side = %+v", race.Prev)
	}
}

// TestStridedGapsDoNotFalsePositive: the bytes between elements are not
// covered by the section.
func TestStridedGapsDoNotFalsePositive(t *testing.T) {
	z := New(WithStridedMerging())
	var tm uint64
	for i := 0; i < 100; i++ {
		if r := z.Access(stridedEv(i, access.RMAWrite, 612, &tm)); r != nil {
			t.Fatal(r)
		}
	}
	// Offset 8..15 of each 24-byte record is untouched by the section.
	tm++
	race := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(50*24+8, 8),
			Type:     access.LocalWrite,
			Rank:     0,
			Debug:    access.Debug{File: "dspl.hpp", Line: 701},
		},
		Time: tm,
	})
	if race != nil {
		t.Fatalf("gap access flagged: %v", race)
	}
}

// TestStridedShortRunsMaterialise: runs below the threshold go back to
// the tree and behave normally (merging applies if adjacent).
func TestStridedShortRunsMaterialise(t *testing.T) {
	z := New(WithStridedMerging())
	var tm uint64
	// Two elements at stride 24, then a stream break (different stride).
	z.Access(stridedEv(0, access.LocalRead, 601, &tm))
	z.Access(stridedEv(1, access.LocalRead, 601, &tm))
	tm++
	z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(1000, 8),
			Type:     access.LocalRead,
			Rank:     0,
			Debug:    access.Debug{File: "dspl.hpp", Line: 601},
		},
		Time: tm,
	})
	// Breaking the run twice (the 1000 access starts a new candidate)
	// eventually materialises the 2-element run.
	z.EpochEnd()
	if z.Nodes() != 0 {
		t.Fatalf("EpochEnd left %d nodes", z.Nodes())
	}
}

// TestStridedSameSlotNoRaceForReads: repeated reads of one slot do not
// form a section (stride 0 is rejected) but also never race.
func TestStridedSameSlotReads(t *testing.T) {
	z := New(WithStridedMerging())
	var tm uint64
	for i := 0; i < 10; i++ {
		tm++
		r := z.Access(detector.Event{
			Acc: access.Access{
				Interval: interval.Span(64, 8),
				Type:     access.LocalRead,
				Rank:     0,
				Debug:    access.Debug{File: "dspl.hpp", Line: 601},
			},
			Time: tm,
		})
		if r != nil {
			t.Fatal(r)
		}
	}
	if z.Nodes() != 1 {
		t.Fatalf("repeated same-slot reads left %d nodes", z.Nodes())
	}
}

// TestStridedEquivalentDetection compares strided and plain analyzers
// on random workloads: identical race verdicts at first divergence
// point.
func TestStridedEquivalentDetection(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		plain := New()
		str := New(WithStridedMerging())
		var tm uint64
		for step := 0; step < 120; step++ {
			tm++
			tp := access.Type(r.Intn(4))
			rank := 0
			if tp.IsRMA() {
				rank = r.Intn(3)
			}
			var iv interval.Interval
			if r.Intn(2) == 0 {
				iv = interval.Span(uint64(r.Intn(30))*24, 8) // strided slots
			} else {
				lo := uint64(r.Intn(600))
				iv = interval.Span(lo, uint64(r.Intn(10)+1)) // arbitrary
			}
			ev := detector.Event{
				Acc: access.Access{
					Interval: iv, Type: tp, Rank: rank,
					Debug: access.Debug{File: "q.c", Line: r.Intn(3)},
				},
				Time: tm, CallTime: tm,
			}
			r1 := plain.Access(ev)
			r2 := str.Access(ev)
			if (r1 == nil) != (r2 == nil) {
				t.Fatalf("trial %d step %d: plain race=%v strided race=%v (ev %+v)",
					trial, step, r1, r2, ev.Acc)
			}
			if r1 != nil {
				break
			}
		}
	}
}

// TestStridedCompressionOnSweeps: on forward sweeps (each slot visited
// once, MiniVite-like) the strided store is dramatically smaller; on
// revisiting workloads sections may double-cover addresses also present
// in the tree, but the store stays within a small factor of the plain
// one.
func TestStridedCompressionOnSweeps(t *testing.T) {
	mk := func(step int, jitter uint64) detector.Event {
		return detector.Event{
			Acc: access.Access{
				Interval: interval.Span(uint64(step)*24+jitter*8, 8),
				Type:     access.LocalRead,
				Rank:     0,
				Debug:    access.Debug{File: "q.c", Line: 601},
			},
			Time: uint64(step + 1),
		}
	}

	// Forward sweep: one long section.
	plain, str := New(), New(WithStridedMerging())
	for step := 0; step < 3000; step++ {
		ev := mk(step, 0)
		if plain.Access(ev) != nil || str.Access(ev) != nil {
			t.Fatal("read-only workload raced")
		}
	}
	if str.Nodes()*5 > plain.Nodes() {
		t.Fatalf("sweep compression too weak: strided %d vs plain %d", str.Nodes(), plain.Nodes())
	}

	// Revisiting workload: duplicate coverage is allowed but bounded.
	r := rand.New(rand.NewSource(29))
	plain2, str2 := New(), New(WithStridedMerging())
	var tm uint64
	for step := 0; step < 3000; step++ {
		tm++
		ev := mk(step%500, uint64(r.Intn(2)))
		ev.Time = tm
		if plain2.Access(ev) != nil || str2.Access(ev) != nil {
			t.Fatal("read-only workload raced")
		}
	}
	if str2.Nodes() > 2*plain2.Nodes() {
		t.Fatalf("strided store blew up on revisits: %d vs %d", str2.Nodes(), plain2.Nodes())
	}
}

// TestStridedReleaseRetiresRemote: an exclusive-unlock release drops
// every remote one-sided entry — compressed sections and tree nodes
// alike, whichever rank issued them (the lock's FIFO grant order puts
// all completed sessions before later holders) — while the window
// owner's own accesses survive. Retiring by remoteness rather than by
// releasing rank is what keeps Release exact after Table 1 fragment
// combination; the differential fuzzer found the per-rank variant's
// false negative.
func TestStridedReleaseRetiresRemote(t *testing.T) {
	z := New(WithStridedMerging(), WithOwner(0))
	var tm uint64
	// Rank 1 writes a long strided run (compressed), rank 2 a single
	// slot (tree node), and the owner a slot of its own.
	for i := 0; i < 50; i++ {
		tm++
		ev := detector.Event{
			Acc: access.Access{
				Interval: interval.Span(uint64(i)*24, 8),
				Type:     access.RMAWrite,
				Rank:     1,
				Debug:    access.Debug{File: "r.c", Line: 1},
			},
			Time: tm, CallTime: tm,
		}
		if r := z.Access(ev); r != nil {
			t.Fatal(r)
		}
	}
	tm++
	if r := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(10000, 8),
			Type:     access.RMAWrite,
			Rank:     2,
			Debug:    access.Debug{File: "r.c", Line: 2},
		},
		Time: tm, CallTime: tm,
	}); r != nil {
		t.Fatal(r)
	}
	tm++
	if r := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(20000, 8),
			Type:     access.RMAWrite,
			Rank:     0,
			Debug:    access.Debug{File: "r.c", Line: 3},
		},
		Time: tm, CallTime: tm,
	}); r != nil {
		t.Fatal(r)
	}

	z.Release(1)
	// Rank 1's compressed accesses are gone: a conflicting write to
	// their range is now clean...
	tm++
	if r := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(24, 8),
			Type:     access.RMAWrite,
			Rank:     3,
			Debug:    access.Debug{File: "r.c", Line: 4},
		},
		Time: tm, CallTime: tm,
	}); r != nil {
		t.Fatalf("released section still conflicts: %v", r)
	}
	// ...and so is rank 2's tree node: its session also completed
	// before the unlock in the lock's grant order.
	tm++
	if r := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(10000, 8),
			Type:     access.RMAWrite,
			Rank:     3,
			Debug:    access.Debug{File: "r.c", Line: 5},
		},
		Time: tm, CallTime: tm,
	}); r != nil {
		t.Fatalf("remote node survived release: %v", r)
	}
	// The owner's own access is never lock-ordered and still races.
	tm++
	if r := z.Access(detector.Event{
		Acc: access.Access{
			Interval: interval.Span(20000, 8),
			Type:     access.RMAWrite,
			Rank:     3,
			Debug:    access.Debug{File: "r.c", Line: 6},
		},
		Time: tm, CallTime: tm,
	}); r == nil {
		t.Fatal("owner's access vanished on release")
	}
}
