// Package core implements the paper's contribution: the new insertion
// algorithm for RMA-Analyzer's memory-access BST (Algorithm 1), built
// from the fragmentation algorithm of §4.1 and the merging algorithm of
// §4.2 over a pluggable access store (package store; the balanced AVL
// interval tree of package itree by default).
//
// Given a new access, the analyzer
//
//  1. checks it against every stored intersecting access with the
//     order-sensitive race predicate (data_race_detection),
//  2. retrieves the intersecting accesses (get_intersecting_accesses),
//  3. fragments them into disjoint pieces typed by Table 1
//     (fragment_accesses),
//  4. merges adjacent pieces with equal type and debug information
//     (merge_accesses), and
//  5. replaces the old accesses by the merged ones (finish_insertion).
//
// Because the stored intervals are kept pairwise disjoint, the stabbing
// query finds every intersection — eliminating the legacy false
// negatives — and merging keeps the tree small — eliminating the legacy
// node blow-up. All operations are logarithmic in the tree size on the
// default backend; WithStore swaps the backend (for the ablation runs)
// without touching the algorithm.
package core

import (
	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/obs"
	"rmarace/internal/store"
	"rmarace/internal/strided"
)

// Analyzer is the contribution's per-(process, window) analysis state.
// It implements detector.Analyzer (and detector.BatchAnalyzer, for the
// batched notification pipeline). The zero value is ready to use with
// the default AVL store.
type Analyzer struct {
	st          store.AccessStore
	accesses    uint64
	maxNodes    int
	flushClears bool
	noMerge     bool
	// owner is the analyzer's owning rank plus one, so the zero value
	// means "unknown" (WithOwner unset) and zero-value Analyzers stay
	// usable. Release reads it through ownerRank: with an unknown owner
	// every rank counts as remote and Release conservatively retires
	// every one-sided access.
	owner int
	// frontier is the stored access the last insertion ended in, when
	// that insertion took the no-overlap fast path: AccessBatch uses it
	// to skip the left-neighbour lookup for adjacent batch runs (the
	// CFD-Proxy merge fast path). Invalidated by anything that can move
	// or remove it.
	frontier   access.Access
	frontierOK bool
	// Strided-merging extension state (WithStridedMerging): finalised
	// regular sections plus the per-stream open runs.
	stridedOn bool
	sections  []strided.Section
	open      map[runKey]*runState
	// scratch, fragScratch and delScratch are the reusable buffers of
	// the insertion hot path (intersections, fragments, deletions); the
	// analyzer is single-owner so reuse is safe and the steady state
	// allocates nothing.
	scratch     []access.Access
	fragScratch []access.Access
	delScratch  []access.Access
	// stFactory builds the store when set (WithStoreFactory); required
	// instead of WithStore under sharding so each shard owns its own.
	stFactory func() store.AccessStore
	// shardCount/shardGranule configure the sharded wrapper; consumed
	// by Build and NewSharded, ignored by a plain Analyzer.
	shardCount   int
	shardGranule int
	// rec is the metrics sink (WithRecorder); recOn caches Enabled() so
	// a disabled recorder costs one branch per site, and recLabel is the
	// owning rank the analyzer's metrics are labelled with.
	rec      obs.Recorder
	recOn    bool
	recLabel int
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithUnsafeFlushClear makes MPI_Win_flush drop the calling rank's
// stored accesses. The paper shows this is unsound (§6(2)): the target
// cannot know in which order remote accesses from other processes
// complete, so clearing on flush hides races. It exists as an ablation.
func WithUnsafeFlushClear() Option {
	return func(a *Analyzer) { a.flushClears = true }
}

// WithoutMerging disables the §4.2 merging pass, leaving fragmentation
// only. This is the ablation of the paper's node-explosion warning:
// "each new access possibly increases the nodes in the BST by two",
// so the tree grows instead of shrinking.
func WithoutMerging() Option {
	return func(a *Analyzer) { a.noMerge = true }
}

// WithOwner declares the analyzer's owning rank — the rank whose
// window (and local address space) the analyzer guards. Release uses
// it to tell the owner's accesses (origin-side buffers and
// unsynchronised local loads/stores, which no unlock orders) apart
// from remote one-sided accesses, which an exclusive unlock retires.
// Without the option Release conservatively treats every rank as
// remote and retires all one-sided accesses.
func WithOwner(rank int) Option {
	return func(a *Analyzer) { a.owner = rank + 1 }
}

// WithStore runs Algorithm 1 over the given storage backend instead of
// the default AVL interval tree. Backends without the complete-stab
// guarantee (the legacy lower-bound BST) reintroduce the corresponding
// published defects; that is the point of the ablation.
func WithStore(s store.AccessStore) Option {
	return func(a *Analyzer) { a.st = s }
}

// WithStoreFactory makes the analyzer build its backend with fn
// instead of the default AVL tree. Unlike WithStore it hands every
// analyzer (and, under sharding, every shard) its own instance, which
// is what the single-owner serialisation discipline requires.
func WithStoreFactory(fn func() store.AccessStore) Option {
	return func(a *Analyzer) { a.stFactory = fn }
}

// WithShards partitions the address space into k contiguous interval
// shards (power of two; ≤ 1 disables sharding), each an independent
// analyzer + store. Honoured by Build and NewSharded; a plain New
// ignores it.
func WithShards(k int) Option {
	return func(a *Analyzer) { a.shardCount = k }
}

// WithShardGranule sets the shard granule in bytes (power of two;
// 0 selects shard.DefaultGranule). Only meaningful with WithShards.
func WithShardGranule(bytes int) Option {
	return func(a *Analyzer) { a.shardGranule = bytes }
}

// WithRecorder makes the analyzer record its metrics — node high-water
// marks, fragment/merge counts, store traffic and stab-query depths —
// against rec, labelled with the owning rank. The store backend is
// wrapped with store.Instrument; a nil or disabled recorder leaves the
// analyzer (and its hot path) exactly as without the option.
func WithRecorder(rec obs.Recorder, rank int) Option {
	return func(a *Analyzer) {
		a.rec = obs.OrDisabled(rec)
		a.recOn = a.rec.Enabled()
		a.recLabel = rank
	}
}

// New returns a fresh analyzer for one window.
func New(opts ...Option) *Analyzer {
	a := &Analyzer{}
	for _, o := range opts {
		o(a)
	}
	if a.st == nil && a.stFactory != nil {
		a.st = a.stFactory()
	}
	if a.st == nil {
		a.st = store.NewAVL()
	}
	if a.recOn {
		a.st = store.Instrument(a.st, a.rec, a.recLabel)
	}
	return a
}

// lazyStore returns the backend, initialising the default for zero-value
// Analyzers.
func (z *Analyzer) lazyStore() store.AccessStore {
	if z.st == nil {
		if z.stFactory != nil {
			z.st = z.stFactory()
		} else {
			z.st = store.NewAVL()
		}
		if z.recOn {
			z.st = store.Instrument(z.st, z.rec, z.recLabel)
		}
	}
	return z.st
}

// Name implements detector.Analyzer.
func (*Analyzer) Name() string { return "our-contribution" }

// Store returns the analyzer's storage backend.
func (z *Analyzer) Store() store.AccessStore { return z.lazyStore() }

// Access implements detector.Analyzer with Algorithm 1. In strided
// mode (WithStridedMerging) the access is first checked against the
// compressed regular sections and, when it continues a strided run,
// absorbed into one instead of the store.
func (z *Analyzer) Access(ev detector.Event) *detector.Race {
	if ev.Filtered {
		return nil // removed by the compile-time alias analysis
	}
	z.accesses++
	if !z.stridedOn {
		return z.insert(ev.Acc, true)
	}
	a := ev.Acc
	if race := z.sectionRace(a); race != nil {
		return race
	}
	if race := z.treeRace(a); race != nil {
		return race
	}
	if z.tryStride(a) {
		z.frontierOK = false
		z.bumpMaxNodes()
		return nil
	}
	race := z.insert(a, false) // already race-checked above
	z.bumpMaxNodes()
	return race
}

// AccessBatch implements detector.BatchAnalyzer for the batched
// notification pipeline. Semantics are identical to calling Access per
// event; the win is the frontier fast path: when an event extends the
// access the previous one merged into (the adjacent Put/Get runs of
// CFD-Proxy and Code 2), the left-neighbour lookup and race scan reduce
// to one narrow emptiness probe right of the frontier.
func (z *Analyzer) AccessBatch(evs []detector.Event) *detector.Race {
	if z.stridedOn {
		// The strided paths keep their own run state; batch events feed
		// through the scalar path unchanged.
		for i := range evs {
			if race := z.Access(evs[i]); race != nil {
				return race
			}
		}
		return nil
	}
	st := z.lazyStore()
	for i := range evs {
		ev := evs[i]
		if ev.Filtered {
			continue // does not touch the store; the frontier stays valid
		}
		a := ev.Acc
		if z.frontierOK && !z.noMerge && z.frontier.Hi+1 == a.Lo && access.Mergeable(z.frontier, a) {
			// The store is disjoint, so the only access that can touch
			// a.Lo-1 is the frontier itself: the left neighbour is known
			// without a search. One emptiness probe over [a.Lo, a.Hi+1]
			// establishes that nothing intersects a and no right
			// neighbour exists, which is exactly the Access fast path's
			// mergeL case.
			probe := a.Interval
			if probe.Hi+1 != 0 {
				probe.Hi++
			}
			empty := st.Stab(probe, func(access.Access) bool { return false })
			if empty {
				z.accesses++
				store.ExtendHi(st, z.frontier, a.Hi)
				z.frontier.Hi = a.Hi
				if z.recOn {
					z.rec.Add(obs.Merges, z.recLabel, 1)
				}
				z.bumpMaxNodes()
				continue
			}
		}
		if race := z.Access(ev); race != nil {
			return race
		}
	}
	return nil
}

// insert runs steps (1)-(5) of Algorithm 1 for one access. raceCheck
// false skips step (1) for accesses that were already validated (the
// strided path and re-materialised section elements).
func (z *Analyzer) insert(a access.Access, raceCheck bool) *detector.Race {
	st := z.lazyStore()
	// One stabbing query, widened by one address on each side, yields
	// both the intersecting accesses (for the race check and
	// fragmentation) and the at most two boundary neighbours merging
	// may coalesce with (e.g. the adjacent one-byte Gets of Code 2).
	// Disjointness guarantees a neighbour touching a.Lo-1 ends exactly
	// there.
	z.scratch = z.scratch[:0]
	left, right, hasLeft, hasRight := store.StabNeighbors(st, a.Interval, &z.scratch)
	inter := z.scratch
	var leftNb, rightNb *access.Access
	if hasLeft {
		leftNb = &left
	}
	if hasRight {
		rightNb = &right
	}

	// (1) data_race_detection: the disjointness invariant guarantees
	// every stored access overlapping a was visited.
	if raceCheck {
		for _, s := range inter {
			if access.Races(s, a) {
				return &detector.Race{Prev: s, Cur: a}
			}
		}
	}

	// Fast path: nothing overlaps — insert the access, extending it in
	// place over boundary neighbours it merges with. This is the hot
	// loop of adjacent exchanges (CFD-Proxy, Code 2) and allocates
	// nothing beyond the tree node.
	if len(inter) == 0 {
		mergeL := !z.noMerge && leftNb != nil && access.Mergeable(*leftNb, a)
		mergeR := !z.noMerge && rightNb != nil && access.Mergeable(a, *rightNb)
		switch {
		case mergeL && mergeR:
			st.Delete(rightNb.Interval)
			store.ExtendHi(st, *leftNb, rightNb.Hi)
			z.frontier = *leftNb
			z.frontier.Hi = rightNb.Hi
		case mergeL:
			store.ExtendHi(st, *leftNb, a.Hi)
			z.frontier = *leftNb
			z.frontier.Hi = a.Hi
		case mergeR:
			store.ExtendLo(st, *rightNb, a.Lo)
			z.frontier = *rightNb
			z.frontier.Lo = a.Lo
		default:
			st.Insert(a)
			z.frontier = a
		}
		if z.recOn && (mergeL || mergeR) {
			merges := int64(1)
			if mergeL && mergeR {
				merges = 2
			}
			z.rec.Add(obs.Merges, z.recLabel, merges)
		}
		z.frontierOK = true
		z.bumpMaxNodes()
		return nil
	}

	// (2)-(4) fragment and merge, pulling in the boundary neighbours
	// only when they can actually coalesce with the edge fragments. All
	// buffers are analyzer-owned scratch: slot 0 of the fragment buffer
	// is reserved so a left neighbour can be prepended without shifting.
	z.frontierOK = false
	frags := append(z.fragScratch[:0], access.Access{})
	frags = access.AppendFragments(frags, inter, a)
	deletions := append(z.delScratch[:0], inter...)
	body := frags[1:]
	if z.recOn {
		z.rec.Add(obs.Fragments, z.recLabel, int64(len(body)))
	}
	merged := body
	if !z.noMerge {
		start := 1
		if leftNb != nil && access.Mergeable(*leftNb, body[0]) {
			frags[0] = *leftNb
			deletions = append(deletions, *leftNb)
			start = 0
		}
		if rightNb != nil && access.Mergeable(body[len(body)-1], *rightNb) {
			frags = append(frags, *rightNb)
			deletions = append(deletions, *rightNb)
		}
		before := len(frags) - start
		merged = access.MergeInPlace(frags[start:])
		if z.recOn {
			z.rec.Add(obs.Merges, z.recLabel, int64(before-len(merged)))
		}
	}
	z.fragScratch = frags[:0]
	z.delScratch = deletions[:0]

	// (5) finish_insertion: replace the old accesses by the new ones.
	for _, d := range deletions {
		st.Delete(d.Interval)
	}
	for _, m := range merged {
		st.Insert(m)
	}
	z.bumpMaxNodes()
	return nil
}

// EpochEnd implements detector.Analyzer: accesses of a completed epoch
// cannot race with later ones, so the store (and, in strided mode, the
// sections) are emptied.
func (z *Analyzer) EpochEnd() {
	z.lazyStore().Clear()
	z.frontierOK = false
	if z.stridedOn {
		z.sections = z.sections[:0]
		z.open = make(map[runKey]*runState)
	}
}

// Flush implements detector.Analyzer. By default it is a no-op,
// following §6(2); with WithUnsafeFlushClear it drops the calling
// rank's accesses, reproducing the false-negative hazard. The
// ablation deliberately keeps the defect's per-rank semantics (an
// MPI_Win_flush names only the calling origin) rather than routing
// through Release.
func (z *Analyzer) Flush(rank int) {
	if !z.flushClears {
		return
	}
	store.RemoveRank(z.lazyStore(), rank)
	z.frontierOK = false
	if z.stridedOn {
		kept := z.sections[:0]
		for _, s := range z.sections {
			if s.Acc.Rank != rank {
				kept = append(kept, s)
			}
		}
		z.sections = kept
		for k := range z.open {
			if k.rank == rank {
				delete(z.open, k)
			}
		}
	}
}

// ownerRank returns the analyzer's owning rank, or -1 when unknown.
func (z *Analyzer) ownerRank() int { return z.owner - 1 }

// Release implements detector.Analyzer: an exclusive unlock of the
// owner's window retires every remote one-sided access. The per-target
// lock grants in FIFO order, so every lock session that completed
// before the unlock — the releasing origin's own and every earlier
// holder's, shared included — is ordered before every later holder's
// session. Only the owner's accesses (its origin-side buffers and
// unsynchronised local loads/stores) are never lock-ordered and
// survive; which rank performed the unlock is irrelevant to what
// retires, so the argument is unused beyond the interface. Retiring
// by remoteness instead of by releasing rank is what keeps Release
// exact after Table 1 fragment combination: remote accesses only ever
// share a combined fragment with other remote accesses, and those
// retire together (a per-rank retirement could delete a fragment
// whose combined label hides a still-live rank's coverage — a false
// negative the differential fuzzer found).
func (z *Analyzer) Release(int) {
	owner := z.ownerRank()
	store.RemoveRemote(z.lazyStore(), owner)
	z.frontierOK = false
	if z.stridedOn {
		kept := z.sections[:0]
		for _, s := range z.sections {
			if s.Acc.Rank == owner || !s.Acc.Type.IsRMA() {
				kept = append(kept, s)
			}
		}
		z.sections = kept
		for k := range z.open {
			if k.rank != owner && k.tp.IsRMA() {
				delete(z.open, k)
			}
		}
	}
}

// CompleteRequest implements detector.RequestCompleter: the local
// completion (MPI_Wait/MPI_Waitall) of a request-based one-sided
// operation issued by rank with origin buffer iv. Completion orders
// the request's origin-side accesses before everything after the wait
// on the issuing rank, so rank's stored one-sided fragments are
// trimmed to the part outside iv (store.RemoveRankSpan). Exactness
// after Table 1 combination holds for the same reason Release is
// exact, specialised to the origin-buffer region: the only accesses a
// completed origin fragment can have combined with are the issuing
// rank's own (origin buffers are private memory), and a same-rank
// local witness absorbed under an RMA fragment can never race with a
// later same-rank access anyway (local-before-RMA is exempt by §5.2
// and local-local pairs never race). In strided mode, affected
// compressed sections are re-materialised into the store first so the
// span trim sees every element.
func (z *Analyzer) CompleteRequest(rank int, iv interval.Interval) {
	if z.stridedOn {
		kept := z.sections[:0]
		for i := range z.sections {
			sec := z.sections[i]
			from, to := sec.Overlap(iv)
			if to <= from || sec.Acc.Rank != rank || !sec.Acc.Type.IsRMA() {
				kept = append(kept, sec)
				continue
			}
			for k := uint64(0); k < sec.Elements(); k++ {
				z.insert(sec.Representative(k), false)
			}
		}
		z.sections = kept
		for key, rs := range z.open {
			if rs.sec == nil || key.rank != rank || !key.tp.IsRMA() {
				continue
			}
			if from, to := rs.sec.Overlap(iv); to > from {
				for k := uint64(0); k < rs.sec.Elements(); k++ {
					z.insert(rs.sec.Representative(k), false)
				}
				rs.sec = nil
			}
		}
	}
	store.RemoveRankSpan(z.lazyStore(), rank, iv)
	z.frontierOK = false
}

// Nodes implements detector.Analyzer (the Table 4 metric). In strided
// mode each regular section counts as one node.
func (z *Analyzer) Nodes() int { return z.lazyStore().Len() + z.sectionCount() }

func (z *Analyzer) bumpMaxNodes() {
	n := z.Nodes()
	if n > z.maxNodes {
		z.maxNodes = n
	}
	if z.recOn {
		z.rec.SetMax(obs.StoreNodes, z.recLabel, int64(n))
	}
}

// MaxNodes implements detector.Analyzer.
func (z *Analyzer) MaxNodes() int { return z.maxNodes }

// Compact implements detector.Compacter: it releases the analyzer's
// retained capacity — the insertion hot path's scratch buffers, the
// strided section buffer, and the store's own retained capacity
// (store.Compact; the AVL free list) — without touching live analysis
// state, so verdicts are unaffected. The bounded-memory trace replay
// calls it at epoch boundaries; the next epoch re-grows the buffers on
// demand.
func (z *Analyzer) Compact() {
	z.scratch = nil
	z.fragScratch = nil
	z.delScratch = nil
	if z.stridedOn && cap(z.sections) > 0 && len(z.sections) == 0 {
		z.sections = nil
	}
	store.Compact(z.lazyStore())
}

// Accesses implements detector.Analyzer.
func (z *Analyzer) Accesses() uint64 { return z.accesses }

// Items returns the stored accesses in ascending interval order (on the
// default backend), for inspection and testing (the BSTs drawn in
// Fig. 5).
func (z *Analyzer) Items() []access.Access { return store.Items(z.lazyStore()) }

var (
	_ detector.Analyzer         = (*Analyzer)(nil)
	_ detector.BatchAnalyzer    = (*Analyzer)(nil)
	_ detector.Compacter        = (*Analyzer)(nil)
	_ detector.RequestCompleter = (*Analyzer)(nil)
)
