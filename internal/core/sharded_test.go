package core

import (
	"math/rand"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/store"
)

// equivGranule is deliberately tiny so random intervals straddle shard
// boundaries constantly, exercising the split path hard.
const equivGranule = 64

// genEquivEvents produces a reproducible random access stream over a
// 64-granule address range with lengths up to three granules (so pieces
// span up to four shards). Safe streams are reads only; racy streams
// mix writes from two ranks and will eventually collide.
func genEquivEvents(rng *rand.Rand, n int, racy bool) []detector.Event {
	types := []access.Type{access.RMARead, access.LocalRead}
	if racy {
		types = []access.Type{access.RMARead, access.RMAWrite, access.LocalRead, access.LocalWrite}
	}
	evs := make([]detector.Event, n)
	for i := range evs {
		lo := uint64(rng.Intn(64 * equivGranule))
		ln := uint64(1 + rng.Intn(3*equivGranule))
		evs[i] = detector.Event{
			Acc: access.Access{
				Interval: interval.Interval{Lo: lo, Hi: lo + ln - 1},
				Type:     types[rng.Intn(len(types))],
				Rank:     rng.Intn(2),
				Debug:    access.Debug{File: "equiv.c", Line: 1 + rng.Intn(4)},
			},
			Time:     uint64(i + 1),
			CallTime: uint64(i + 1),
		}
	}
	return evs
}

// sameRaceIdentity compares two verdicts by the fields sharding
// preserves: the racing instruction pair (debug, type, rank), not the
// reported intervals — a boundary-split piece legitimately reports a
// sub-interval of the serial analyzer's overlap.
func sameRaceIdentity(a, b *detector.Race) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Cur.Debug == b.Cur.Debug && a.Cur.Type == b.Cur.Type && a.Cur.Rank == b.Cur.Rank &&
		a.Prev.Debug == b.Prev.Debug && a.Prev.Type == b.Prev.Type && a.Prev.Rank == b.Prev.Rank
}

// canonicalItems coalesces adjacent mergeable intervals, re-joining the
// pieces sharding holds separately at granule boundaries. Both
// analyzers' stored sets must be identical after canonicalisation.
func canonicalItems(items []access.Access) []access.Access {
	return access.Merge(items)
}

func sameItems(a, b []access.Access) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardEquivalenceRandom drives identical random streams through a
// serial analyzer and K-shard analyzers (K = 2, 4, 8): race verdicts
// must be identical event by event (including the racing pair's
// identity), and the stored-interval sets must canonicalise to the same
// set at every checkpoint. Epoch ends and rank releases are
// interleaved to cover the full lifecycle.
func TestShardEquivalenceRandom(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for trial := 0; trial < 12; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*shards + trial)))
			racy := trial%3 == 0
			evs := genEquivEvents(rng, 500, racy)
			serial := New()
			sharded := NewSharded(shards, WithShardGranule(equivGranule))

			raced := false
			for i, ev := range evs {
				r1 := serial.Access(ev)
				r2 := sharded.Access(ev)
				if !sameRaceIdentity(r1, r2) {
					t.Fatalf("shards=%d trial=%d event %d: serial race %v, sharded race %v",
						shards, trial, i, r1, r2)
				}
				if r1 != nil {
					// Verdicts agreed on the first race; after a race the
					// sharded Access short-circuits its remaining pieces,
					// so states may legitimately diverge. Stop here.
					raced = true
					break
				}
				switch {
				case i%157 == 156:
					if a, b := canonicalItems(serial.Items()), canonicalItems(sharded.Items()); !sameItems(a, b) {
						t.Fatalf("shards=%d trial=%d event %d: stored sets diverge\nserial:  %v\nsharded: %v",
							shards, trial, i, a, b)
					}
				case i%211 == 210:
					serial.EpochEnd()
					sharded.EpochEnd()
				case i%97 == 96:
					serial.Release(ev.Acc.Rank)
					sharded.Release(ev.Acc.Rank)
				}
			}
			if racy && !raced {
				t.Logf("shards=%d trial=%d: racy stream finished without a race (ok, but surprising)", shards, trial)
			}
			if !raced {
				if a, b := canonicalItems(serial.Items()), canonicalItems(sharded.Items()); !sameItems(a, b) {
					t.Fatalf("shards=%d trial=%d: final stored sets diverge\nserial:  %v\nsharded: %v",
						shards, trial, a, b)
				}
				if serial.Nodes() > sharded.Nodes() {
					t.Fatalf("shards=%d trial=%d: sharded holds fewer nodes (%d) than serial (%d)",
						shards, trial, sharded.Nodes(), serial.Nodes())
				}
			}
		}
	}
}

// TestShardEquivalenceBatch drives safe random streams through the
// AccessBatch fast path of both analyzers (the engine's pipeline shape)
// and compares the canonical stored sets.
func TestShardEquivalenceBatch(t *testing.T) {
	for _, shards := range []int{2, 8} {
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(7000*shards + trial)))
			evs := genEquivEvents(rng, 512, false)
			serial := New()
			sharded := NewSharded(shards, WithShardGranule(equivGranule))
			for off := 0; off < len(evs); off += 64 {
				end := off + 64
				if r := detector.AccessBatch(serial, evs[off:end]); r != nil {
					t.Fatalf("safe stream raced (serial): %v", r)
				}
				if r := detector.AccessBatch(sharded, evs[off:end]); r != nil {
					t.Fatalf("safe stream raced (sharded): %v", r)
				}
			}
			if a, b := canonicalItems(serial.Items()), canonicalItems(sharded.Items()); !sameItems(a, b) {
				t.Fatalf("shards=%d trial=%d: batch stored sets diverge", shards, trial)
			}
		}
	}
}

// TestShardEquivalenceStrided runs the §6(3) regular-section extension
// under sharding: verdicts (including the racing pair) must match the
// serial strided analyzer event by event. Stored representations are
// not compared — a regular section spanning a granule boundary is
// legitimately held as per-shard sections.
func TestShardEquivalenceStrided(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(300*shards + trial)))
			evs := genEquivEvents(rng, 400, trial%2 == 0)
			serial := New(WithStridedMerging())
			sharded := NewSharded(shards, WithShardGranule(equivGranule), WithStridedMerging())
			for i, ev := range evs {
				r1 := serial.Access(ev)
				r2 := sharded.Access(ev)
				if !sameRaceIdentity(r1, r2) {
					t.Fatalf("strided shards=%d trial=%d event %d: serial race %v, sharded race %v",
						shards, trial, i, r1, r2)
				}
				if r1 != nil {
					break
				}
			}
		}
	}
}

// TestBuildSelectsSharded pins Build's selection rule and the
// shared-store guard.
func TestBuildSelectsSharded(t *testing.T) {
	if _, ok := Build().(*Analyzer); !ok {
		t.Fatal("Build() is not a serial *Analyzer")
	}
	if _, ok := Build(WithShards(1)).(*Analyzer); !ok {
		t.Fatal("Build(WithShards(1)) is not a serial *Analyzer")
	}
	s, ok := Build(WithShards(4)).(*Sharded)
	if !ok {
		t.Fatal("Build(WithShards(4)) is not a *Sharded")
	}
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded with shared WithStore did not panic")
		}
	}()
	NewSharded(2, WithStore(store.NewAVL()))
}

// TestShardedNodeAccounting pins the Table 4 aggregation: MaxNodes sums
// the per-shard high-water marks and MaxShardNodes is their maximum.
func TestShardedNodeAccounting(t *testing.T) {
	s := NewSharded(4, WithShardGranule(equivGranule))
	rng := rand.New(rand.NewSource(42))
	for _, ev := range genEquivEvents(rng, 300, false) {
		if r := s.Access(ev); r != nil {
			t.Fatal(r)
		}
	}
	per := s.ShardMaxNodes()
	if len(per) != 4 {
		t.Fatalf("ShardMaxNodes has %d entries", len(per))
	}
	sum, max := 0, 0
	for _, n := range per {
		sum += n
		if n > max {
			max = n
		}
	}
	if s.MaxNodes() != sum {
		t.Fatalf("MaxNodes = %d, want per-shard sum %d", s.MaxNodes(), sum)
	}
	if s.MaxShardNodes() != max {
		t.Fatalf("MaxShardNodes = %d, want %d", s.MaxShardNodes(), max)
	}
	if max == 0 {
		t.Fatal("no shard stored anything; the stream did not exercise sharding")
	}
}
