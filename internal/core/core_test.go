package core

import (
	"math/rand"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

func ev(lo, hi uint64, t access.Type, rank int, time uint64) detector.Event {
	return detector.Event{
		Acc: access.Access{
			Interval: interval.New(lo, hi),
			Type:     t,
			Rank:     rank,
			Debug:    access.Debug{File: "test.c", Line: int(time)},
		},
		Time:     time,
		CallTime: time,
	}
}

// TestCode1RaceDetected is the headline accuracy fix (Fig. 5b): the
// contribution catches the Code 1 race the legacy tool misses.
func TestCode1RaceDetected(t *testing.T) {
	z := New()
	if r := z.Access(ev(4, 4, access.LocalRead, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := z.Access(ev(2, 12, access.RMARead, 0, 2)); r != nil {
		t.Fatal(r)
	}
	r := z.Access(ev(7, 7, access.LocalWrite, 0, 3))
	if r == nil {
		t.Fatal("Code 1 race missed")
	}
	if r.Prev.Type != access.RMARead || r.Cur.Type != access.LocalWrite {
		t.Fatalf("race endpoints wrong: %v", r)
	}
}

// TestCode1TreeShape checks the BST of Fig. 5b after the first two
// instructions: [2...3], [4], [5...12], all RMA_Read. Because all three
// fragments carry the Put's debug info they merge back to one node —
// the tree-level effect of fragmentation plus merging.
func TestCode1TreeShape(t *testing.T) {
	z := New()
	z.Access(ev(4, 4, access.LocalRead, 0, 1))
	z.Access(ev(2, 12, access.RMARead, 0, 2))
	items := z.Items()
	if len(items) != 1 || items[0].Interval != interval.New(2, 12) || items[0].Type != access.RMARead {
		t.Fatalf("tree after Put = %v, want single ([2...12], RMA_Read)", items)
	}
}

// TestFragmentsStayApartWithDistinctDebug mirrors Fig. 5b exactly when
// the overlapped fragment keeps a *different* identity: a Local_Write
// stored under an RMA_Read window would stay split. Here we overlap a
// Local_Read with a Local_Write to avoid a race and check the split.
func TestFragmentsStayApartWithDistinctDebug(t *testing.T) {
	z := New()
	z.Access(ev(0, 9, access.LocalWrite, 0, 1))
	z.Access(ev(4, 6, access.LocalRead, 0, 2)) // safe: no RMA involved
	items := z.Items()
	// Table 1 keeps Local_W-1 for the intersection, so everything
	// re-merges into the original write.
	if len(items) != 1 || items[0].Interval != interval.New(0, 9) || items[0].Type != access.LocalWrite {
		t.Fatalf("items = %v", items)
	}
}

func TestOrderSensitivity(t *testing.T) {
	// ll_load_get_inwindow_origin_safe: no false positive.
	z := New()
	if r := z.Access(ev(0, 9, access.LocalRead, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := z.Access(ev(0, 9, access.RMAWrite, 0, 2)); r != nil {
		t.Fatalf("safe Load;MPI_Get flagged: %v", r)
	}
	// ll_get_load_inwindow_origin_race: detected.
	z2 := New()
	z2.Access(ev(0, 9, access.RMAWrite, 0, 1))
	if r := z2.Access(ev(0, 9, access.LocalRead, 0, 2)); r == nil {
		t.Fatal("MPI_Get;Load race missed")
	}
}

// TestCode2NodeCounts reproduces Fig. 8b at the analyzer level: the
// 1,000-iteration Get loop ends with a two-node tree (one for the loop
// variable, one for all merged Gets) versus ≈5,002 for legacy.
func TestCode2NodeCounts(t *testing.T) {
	z := New()
	iAddr := uint64(100000)
	time := uint64(0)
	tick := func() uint64 { time++; return time }
	for i := 0; i < 1000; i++ {
		// Loop variable i: read or written 4 times per iteration, same
		// source lines each iteration.
		for k := 0; k < 4; k++ {
			tp := access.LocalRead
			if k == 3 {
				tp = access.LocalWrite
			}
			e := ev(iAddr, iAddr+7, tp, 0, tick())
			e.Acc.Debug = access.Debug{File: "code2.c", Line: 2 + k} // fixed lines
			if r := z.Access(e); r != nil {
				t.Fatal(r)
			}
		}
		// Get(buf[i], 1, X): origin-side RMA_Write of one byte, always
		// from source line 3.
		e := ev(uint64(i), uint64(i), access.RMAWrite, 0, tick())
		e.Acc.Debug = access.Debug{File: "code2.c", Line: 3}
		if r := z.Access(e); r != nil {
			t.Fatal(r)
		}
	}
	if n := z.Nodes(); n != 2 {
		t.Fatalf("tree has %d nodes after Code 2, want 2 (Fig. 8b)", n)
	}
}

func TestCrossBoundaryMergeRightToLeft(t *testing.T) {
	// Adjacent accesses arriving in descending address order must also
	// merge (the right-neighbour pull).
	z := New()
	for i := 9; i >= 0; i-- {
		e := ev(uint64(i), uint64(i), access.RMAWrite, 0, uint64(10-i))
		e.Acc.Debug = access.Debug{File: "m.c", Line: 1}
		if r := z.Access(e); r != nil {
			t.Fatal(r)
		}
	}
	if z.Nodes() != 1 {
		t.Fatalf("descending adjacent writes left %d nodes: %v", z.Nodes(), z.Items())
	}
}

func TestEpochEndClears(t *testing.T) {
	z := New()
	z.Access(ev(0, 9, access.RMAWrite, 0, 1))
	z.EpochEnd()
	if z.Nodes() != 0 {
		t.Fatal("EpochEnd did not clear the tree")
	}
	if r := z.Access(ev(0, 9, access.LocalWrite, 1, 2)); r != nil {
		t.Fatalf("stale cross-epoch race: %v", r)
	}
}

func TestFlushDefaultNoop(t *testing.T) {
	z := New()
	z.Access(ev(0, 9, access.RMAWrite, 0, 1))
	z.Flush(0)
	if z.Nodes() != 1 {
		t.Fatal("default Flush must not clear accesses (§6)")
	}
	// The race after the flush is still caught.
	if r := z.Access(ev(0, 9, access.LocalWrite, 0, 2)); r == nil {
		t.Fatal("race after flush missed")
	}
}

func TestUnsafeFlushClearAblation(t *testing.T) {
	z := New(WithUnsafeFlushClear())
	z.Access(ev(0, 9, access.RMAWrite, 0, 1))
	z.Flush(0)
	if z.Nodes() != 0 {
		t.Fatal("unsafe flush mode should drop the caller's accesses")
	}
	// ... and now the race is hidden: the false negative of §6(2).
	if r := z.Access(ev(0, 9, access.LocalWrite, 0, 2)); r != nil {
		t.Fatalf("unsafe flush mode unexpectedly still caught the race: %v", r)
	}
}

func TestFilteredEventsSkipped(t *testing.T) {
	z := New()
	e := ev(0, 9, access.LocalWrite, 0, 1)
	e.Filtered = true
	z.Access(e)
	if z.Nodes() != 0 || z.Accesses() != 0 {
		t.Fatal("filtered event processed")
	}
}

func TestMaxNodesHighWater(t *testing.T) {
	z := New()
	// Two distant accesses, then an epoch end.
	z.Access(ev(0, 0, access.LocalRead, 0, 1))
	z.Access(ev(100, 100, access.LocalRead, 0, 2))
	z.EpochEnd()
	if z.MaxNodes() != 2 {
		t.Fatalf("MaxNodes = %d, want 2", z.MaxNodes())
	}
}

// TestWithoutMergingNodeExplosion is the §4.1 warning reproduced: with
// fragmentation alone, Code 2's adjacent Gets keep one node each.
func TestWithoutMergingNodeExplosion(t *testing.T) {
	z := New(WithoutMerging())
	for i := 0; i < 1000; i++ {
		e := ev(uint64(i), uint64(i), access.RMAWrite, 0, uint64(i+1))
		e.Acc.Debug = access.Debug{File: "code2.c", Line: 3}
		if r := z.Access(e); r != nil {
			t.Fatal(r)
		}
	}
	if z.Nodes() != 1000 {
		t.Fatalf("fragmentation-only tree has %d nodes, want 1000", z.Nodes())
	}
	// Accuracy is unaffected: the Code 1 race is still found.
	z2 := New(WithoutMerging())
	z2.Access(ev(4, 4, access.LocalRead, 0, 1))
	z2.Access(ev(2, 12, access.RMARead, 0, 2))
	if r := z2.Access(ev(7, 7, access.LocalWrite, 0, 3)); r == nil {
		t.Fatal("fragmentation-only analyzer missed the Code 1 race")
	}
}

// TestInvariantDisjointUnmergeable drives the analyzer with random safe
// workloads and checks the two structural invariants the paper's
// algorithm maintains: stored intervals are pairwise disjoint, and no
// two adjacent stored accesses are mergeable.
func TestInvariantDisjointUnmergeable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		z := New()
		time := uint64(0)
		for step := 0; step < 200; step++ {
			time++
			lo := uint64(r.Intn(200))
			length := uint64(r.Intn(12) + 1)
			// Only reads: reads never race, so insertion always
			// proceeds to fragmentation and merging.
			tp := access.LocalRead
			if r.Intn(2) == 0 {
				tp = access.RMARead
			}
			e := detector.Event{
				Acc: access.Access{
					Interval: interval.Span(lo, length),
					Type:     tp,
					Rank:     r.Intn(3),
					Debug:    access.Debug{File: "inv.c", Line: r.Intn(5)},
				},
				Time: time,
			}
			if race := z.Access(e); race != nil {
				t.Fatalf("read-only workload raced: %v", race)
			}
			items := z.Items()
			for i := 1; i < len(items); i++ {
				if items[i-1].Intersects(items[i].Interval) {
					t.Fatalf("trial %d step %d: overlapping nodes %v and %v",
						trial, step, items[i-1], items[i])
				}
				if access.Mergeable(items[i-1], items[i]) {
					t.Fatalf("trial %d step %d: mergeable neighbours %v and %v",
						trial, step, items[i-1], items[i])
				}
			}
		}
	}
}

// TestDetectionSupersetOfLegacyTruth: on random workloads, every true
// race (by the ground-truth predicate) hit by the contribution is
// reported at first occurrence; conversely a read-only stream never
// reports.
func TestCoverageAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		z := New()
		var seen []access.Access
		var time uint64
		for step := 0; step < 60; step++ {
			time++
			lo := uint64(r.Intn(60))
			length := uint64(r.Intn(8) + 1)
			// Realistic ownership: the analysed memory belongs to rank
			// 0, so local accesses come only from rank 0 while RMA
			// accesses may come from any rank — in a real program the
			// address spaces of different processes never alias.
			tp := access.Type(r.Intn(4))
			rank := 0
			if tp.IsRMA() {
				rank = r.Intn(3)
			}
			a := access.Access{
				Interval: interval.Span(lo, length),
				Type:     tp,
				Rank:     rank,
				Debug:    access.Debug{File: "bf.c", Line: step},
			}
			want := false
			for _, s := range seen {
				if access.Races(s, a) {
					want = true
					break
				}
			}
			got := z.Access(detector.Event{Acc: a, Time: time, CallTime: time}) != nil
			if got != want {
				t.Fatalf("trial %d step %d: access %v: detector=%v truth=%v (seen=%d)",
					trial, step, a, got, want, len(seen))
			}
			if want {
				break // program aborts at first race, like MPI_Abort
			}
			seen = append(seen, a)
		}
	}
}
