package detector

import (
	"math/rand"
	"sync"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/vc"
)

func TestMustSharedSnapshotIsolated(t *testing.T) {
	for _, s := range []*MustShared{NewMustShared(3), NewMustSharedVector(3)} {
		s.advance(1, 7)
		snap := s.Snapshot(1, 9)
		if snap.At(1) != 9 {
			t.Fatalf("snapshot own component = %d, want the call time 9", snap.At(1))
		}
		// Snapshots are immutable views: materialising and mutating one
		// must not touch shared state.
		c := snap.Clock(3)
		c[0] = 99
		snap2 := s.Snapshot(1, 10)
		if snap2.At(0) != 0 {
			t.Fatalf("snapshot aliased shared clocks: %v", snap2)
		}
	}
}

// The adaptive representation must serve verdict-identical snapshots to
// the always-vector baseline under arbitrary advance/snapshot/join
// interleavings, promoting exactly when histories cross ranks.
func TestMustSharedAdaptiveMatchesVector(t *testing.T) {
	const n, trials, steps = 5, 200, 60
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < trials; trial++ {
		ad, vec := NewMustShared(n), NewMustSharedVector(n)
		type pair struct{ a, v vc.HB }
		var snaps []pair
		for step := 0; step < steps; step++ {
			switch rng.Intn(5) {
			case 0:
				ad.joinAll()
				vec.joinAll()
			case 1:
				r, t0 := rng.Intn(n), uint64(rng.Intn(8))
				ad.advance(r, t0)
				vec.advance(r, t0)
			default:
				r, ct := rng.Intn(n), uint64(1+rng.Intn(8))
				snaps = append(snaps, pair{ad.Snapshot(r, ct), vec.Snapshot(r, ct)})
			}
		}
		for i, p := range snaps {
			for r := 0; r < n; r++ {
				if p.a.At(r) != p.v.At(r) {
					t.Fatalf("trial %d snap %d: adaptive %v disagrees with vector %v at rank %d", trial, i, p.a, p.v, r)
				}
			}
			for j, q := range snaps {
				if got, want := vc.HappensBefore(p.a, q.a), vc.HappensBefore(p.v, q.v); got != want {
					t.Fatalf("trial %d: order snaps[%d]<snaps[%d] adaptive=%v vector=%v", trial, i, j, got, want)
				}
			}
		}
		st := ad.ClockStats()
		if st.Demotions != 0 {
			t.Fatalf("demotions = %d; clock components never decrease", st.Demotions)
		}
	}
}

// Before any cross-rank join a snapshot must be a scalar epoch; after
// it, a base-sharing clock — and the promotion must be counted.
func TestMustSharedPromotion(t *testing.T) {
	s := NewMustShared(4)
	s.advance(1, 3)
	if snap := s.Snapshot(1, 4); snap.Rep() != vc.RepEpoch {
		t.Fatalf("pre-join snapshot rep = %v, want epoch", snap.Rep())
	}
	s.advance(2, 5)
	s.joinAll()
	if snap := s.Snapshot(1, 9); snap.Rep() != vc.RepShared {
		t.Fatalf("post-join snapshot rep = %v, want shared", snap.Rep())
	}
	st := s.ClockStats()
	if st.Promotions == 0 {
		t.Fatal("cross-rank join did not count a promotion")
	}
	if st.EpochSnaps != 1 || st.SharedSnaps != 1 {
		t.Fatalf("snapshot rep counts = %d epoch / %d shared, want 1/1", st.EpochSnaps, st.SharedSnaps)
	}
}

func TestMustSharedJoinAll(t *testing.T) {
	s := NewMustShared(3)
	s.advance(0, 5)
	s.advance(2, 9)
	s.joinAll()
	// After the epoch join every rank has observed every component.
	for r := 0; r < 3; r++ {
		snap := s.Snapshot(r, 100)
		if snap.At(0) < 5 || snap.At(2) < 9 {
			t.Fatalf("rank %d clock %v did not absorb the join", r, snap)
		}
	}
}

func TestMustSharedConcurrentUse(t *testing.T) {
	s := NewMustShared(8)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.advance(rank, uint64(i))
				_ = s.Snapshot(rank, uint64(i))
				if i%50 == 0 {
					s.joinAll()
				}
			}
		}(r)
	}
	wg.Wait() // the race detector (go test -race) guards this path
}

func TestMustAnalyzerAccumulateAtomicity(t *testing.T) {
	s := NewMustShared(3)
	m := NewMustRMA(s, 0)
	mk := func(rank int, op access.AccumOp, time uint64) Event {
		return Event{
			Acc: access.Access{
				Interval: interval.New(0, 7),
				Type:     access.RMAAccum,
				Rank:     rank,
				AccumOp:  op,
				Debug:    access.Debug{File: "acc.c", Line: int(time)},
			},
			Time: time, CallTime: time,
		}
	}
	if r := m.Access(mk(1, access.AccumSum, 1)); r != nil {
		t.Fatal(r)
	}
	if r := m.Access(mk(2, access.AccumSum, 1)); r != nil {
		t.Fatalf("same-op accumulates flagged by MUST: %v", r)
	}
	if r := m.Access(mk(1, access.AccumMax, 2)); r == nil {
		t.Fatal("mixed-op accumulate overlap missed by MUST")
	}
}

func TestMustAnalyzerReleaseRetiresRank(t *testing.T) {
	s := NewMustShared(3)
	m := NewMustRMA(s, 0)
	put := Event{
		Acc: access.Access{
			Interval: interval.New(0, 7), Type: access.RMAWrite, Rank: 1,
			Debug: access.Debug{File: "l.c", Line: 1},
		},
		Time: 1, CallTime: 1,
	}
	if r := m.Access(put); r != nil {
		t.Fatal(r)
	}
	m.Release(1)
	// A second writer no longer conflicts with the retired session.
	put2 := put
	put2.Acc.Rank = 2
	if r := m.Access(put2); r != nil {
		t.Fatalf("retired session still conflicts: %v", r)
	}
}
