package detector

import (
	"sync"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func TestMustSharedSnapshotIsolated(t *testing.T) {
	s := NewMustShared(3)
	s.advance(1, 7)
	snap := s.Snapshot(1, 9)
	if snap.At(1) != 9 {
		t.Fatalf("snapshot own component = %d, want the call time 9", snap.At(1))
	}
	// The snapshot is a copy: mutating it must not touch shared state.
	snap[0] = 99
	snap2 := s.Snapshot(1, 10)
	if snap2.At(0) != 0 {
		t.Fatalf("snapshot aliased shared clocks: %v", snap2)
	}
}

func TestMustSharedJoinAll(t *testing.T) {
	s := NewMustShared(3)
	s.advance(0, 5)
	s.advance(2, 9)
	s.joinAll()
	// After the epoch join every rank has observed every component.
	for r := 0; r < 3; r++ {
		snap := s.Snapshot(r, 100)
		if snap.At(0) < 5 || snap.At(2) < 9 {
			t.Fatalf("rank %d clock %v did not absorb the join", r, snap)
		}
	}
}

func TestMustSharedConcurrentUse(t *testing.T) {
	s := NewMustShared(8)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.advance(rank, uint64(i))
				_ = s.Snapshot(rank, uint64(i))
				if i%50 == 0 {
					s.joinAll()
				}
			}
		}(r)
	}
	wg.Wait() // the race detector (go test -race) guards this path
}

func TestMustAnalyzerAccumulateAtomicity(t *testing.T) {
	s := NewMustShared(3)
	m := NewMustRMA(s, 0)
	mk := func(rank int, op access.AccumOp, time uint64) Event {
		return Event{
			Acc: access.Access{
				Interval: interval.New(0, 7),
				Type:     access.RMAAccum,
				Rank:     rank,
				AccumOp:  op,
				Debug:    access.Debug{File: "acc.c", Line: int(time)},
			},
			Time: time, CallTime: time,
		}
	}
	if r := m.Access(mk(1, access.AccumSum, 1)); r != nil {
		t.Fatal(r)
	}
	if r := m.Access(mk(2, access.AccumSum, 1)); r != nil {
		t.Fatalf("same-op accumulates flagged by MUST: %v", r)
	}
	if r := m.Access(mk(1, access.AccumMax, 2)); r == nil {
		t.Fatal("mixed-op accumulate overlap missed by MUST")
	}
}

func TestMustAnalyzerReleaseRetiresRank(t *testing.T) {
	s := NewMustShared(3)
	m := NewMustRMA(s, 0)
	put := Event{
		Acc: access.Access{
			Interval: interval.New(0, 7), Type: access.RMAWrite, Rank: 1,
			Debug: access.Debug{File: "l.c", Line: 1},
		},
		Time: 1, CallTime: 1,
	}
	if r := m.Access(put); r != nil {
		t.Fatal(r)
	}
	m.Release(1)
	// A second writer no longer conflicts with the retired session.
	put2 := put
	put2.Acc.Rank = 2
	if r := m.Access(put2); r != nil {
		t.Fatalf("retired session still conflicts: %v", r)
	}
}
