// Package detector defines the on-the-fly data-race analyzers compared
// in the paper and the event stream they consume.
//
// Four analyzers implement the Analyzer interface:
//
//   - core.Analyzer (package internal/core) — the paper's contribution:
//     the interval BST with the fragmentation/merging insertion
//     algorithm (Algorithm 1).
//   - Legacy — RMA-Analyzer as published at EuroMPI'21, with its
//     lower-bound search, one-node-per-access storage and
//     order-insensitive race check.
//   - MustRMA — a MUST-RMA simulator: vector-clock happens-before plus
//     ThreadSanitizer-style shadow memory, instrumenting every access
//     (no alias filtering) but blind to stack arrays.
//   - Baseline — no analysis; measures the uninstrumented run.
//
// Analyzers are created per (process, window) by the instrumentation
// layer (package internal/rma); they are not safe for concurrent use and
// are serialised by their owner.
package detector

import (
	"fmt"
	"strings"

	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/vc"
)

// Event is one instrumented access as observed by the PMPI layer.
type Event struct {
	Acc access.Access
	// Time is the issuing rank's program-order counter at the access.
	Time uint64
	// CallTime is, for the two halves of a one-sided operation, the
	// issuing rank's counter at the MPI call site. Zero for local
	// accesses.
	CallTime uint64
	// Clock is the issuing rank's happens-before clock captured at the
	// MPI call site, piggybacked on the event the way real MUST-RMA
	// attaches clocks to messages (§5.3). The representation is adaptive
	// (vc.Epoch before the first cross-rank join, a base-sharing clock
	// after — see vc.HB); only the MUST-RMA analyzer reads it. Without
	// it the analyzer falls back to snapshotting at
	// notification-processing time, whose result depends on how far the
	// target's receiver has drained — i.e. on scheduling.
	Clock vc.HB
	// Filtered marks accesses the compile-time alias analysis proved
	// irrelevant to any RMA region. RMA-Analyzer and the contribution
	// skip them; MUST-RMA's ThreadSanitizer instruments them anyway
	// (§5.3), which is part of its overhead.
	Filtered bool
}

// Race is a detected data race. It reproduces the report of Fig. 9:
// the access being inserted, the conflicting stored access, and their
// debug information — plus, beyond the paper, structured provenance
// (Prov) identifying where in the pipeline the conflict surfaced.
type Race struct {
	Prev, Cur access.Access
	// Prov carries the race's provenance. It is filled in by the layers
	// that know each fact — the sharded analyzer stamps the shard, the
	// engine the owning rank and window — and may be nil for races
	// produced by a bare analyzer outside any pipeline.
	Prov *Provenance
	// FlightLog is the owning analyzer's flight-recorder snapshot at the
	// moment of detection — the last N accesses and synchronisations
	// that led up to the verdict, oldest first. Nil unless the run
	// enabled the flight recorder.
	FlightLog []FlightEntry
}

// Provenance locates a race within the analysis pipeline: which
// window's analyzer held the conflicting access, which rank owns that
// analyzer, and which address-space shard the overlap fell in.
type Provenance struct {
	// Window is the window name, when known.
	Window string
	// Owner is the rank whose per-window analyzer detected the race
	// (the exposed region's owner, not necessarily either issuer).
	Owner int
	// Shard is the address-space shard holding the conflict, or -1 for
	// an unsharded analyzer.
	Shard int
}

// EnsureProv returns the race's provenance, attaching a fresh one
// (Shard -1) first when none is set. Callers fill in only the fields
// they know; already-set values are preserved across layers.
func (r *Race) EnsureProv() *Provenance {
	if r.Prov == nil {
		r.Prov = &Provenance{Shard: -1}
	}
	return r.Prov
}

// Message formats the race exactly like the paper's Fig. 9 output.
// Provenance never appears here: the line stays byte-identical to the
// original tool's report.
func (r *Race) Message() string {
	return fmt.Sprintf(
		"Error when inserting memory access of type %s from file %s with already inserted interval of type %s from file %s. The program will be exiting now with MPI_Abort.",
		strings.ToUpper(r.Cur.Type.String()), r.Cur.Debug,
		strings.ToUpper(r.Prev.Type.String()), r.Prev.Debug)
}

// Detail renders the extended report: the Fig. 9 line first, then the
// structured provenance of both accesses (ranks, epochs, intervals,
// window, shard, captured stacks).
func (r *Race) Detail() string {
	var b strings.Builder
	b.WriteString(r.Message())
	if p := r.Prov; p != nil {
		fmt.Fprintf(&b, "\n  window=%s owner=%d shard=%d", p.Window, p.Owner, p.Shard)
	}
	writeSide := func(side string, a access.Access) {
		fmt.Fprintf(&b, "\n  %s: %s [%d..%d] rank=%d epoch=%d at %s", side, a.Type, a.Lo, a.Hi, a.Rank, a.Epoch, a.Debug)
		if st := a.FrameString(); st != "" {
			fmt.Fprintf(&b, "\n    stack: %s", st)
		}
	}
	writeSide("stored", r.Prev)
	writeSide("inserted", r.Cur)
	return b.String()
}

// Error implements the error interface so a Race can abort a simulated
// program the way MPI_Abort does.
func (r *Race) Error() string { return r.Message() }

// Analyzer is the per-(process, window) analysis state of one method.
type Analyzer interface {
	// Name identifies the method ("our-contribution", "rma-analyzer",
	// "must-rma", "baseline").
	Name() string
	// Access processes one instrumented access and returns a race if
	// the access conflicts with a stored one. After a non-nil return
	// the analyzer state is unspecified; the program is aborted.
	Access(ev Event) *Race
	// EpochEnd completes the window's passive-target epoch
	// (MPI_Win_unlock_all): all accesses of the epoch become ordered
	// with the future and the store is reset.
	EpochEnd()
	// Flush observes an MPI_Win_flush by the given rank. Following §6
	// of the paper every analyzer treats it as a no-op by default
	// (clearing on flush causes false negatives); the contribution
	// exposes an opt-in unsafe mode as an ablation.
	Flush(rank int)
	// Release observes an exclusive MPI_Win_unlock by rank at this
	// window. The per-target lock grants in FIFO order, so every lock
	// session that completed before the unlock — the releasing rank's
	// own and every earlier holder's, shared included — is ordered
	// before every later holder's session: the stored remote one-sided
	// accesses are retired. The window owner's own accesses (origin
	// buffers, unsynchronised local loads/stores) are never
	// lock-ordered and stay live. Sound when every remote access to
	// the window happens under the window lock discipline.
	Release(rank int)
	// Nodes reports the current number of stored entries — BST nodes
	// for the tree-based analyzers (Table 4), shadow cells for
	// MUST-RMA, zero for the baseline.
	Nodes() int
	// MaxNodes reports the high-water mark of Nodes over the run.
	MaxNodes() int
	// Accesses reports how many (unfiltered, for tree analyzers)
	// accesses were processed.
	Accesses() uint64
}

// BatchAnalyzer is the optional batch-processing capability of the
// notification pipeline: AccessBatch must be equivalent to calling
// Access on each event in order, returning the first race. Analyzers
// implement it to amortise per-event work across a batch (the
// contribution's adjacent-merge fast path).
type BatchAnalyzer interface {
	AccessBatch(evs []Event) *Race
}

// AccessBatch feeds a batch of events to a through its BatchAnalyzer
// capability when present, falling back to one Access call per event.
// It returns the first detected race, or nil.
func AccessBatch(a Analyzer, evs []Event) *Race {
	if b, ok := a.(BatchAnalyzer); ok {
		return b.AccessBatch(evs)
	}
	for i := range evs {
		if r := a.Access(evs[i]); r != nil {
			return r
		}
	}
	return nil
}

// Compacter is the optional memory-compaction capability of an
// analyzer: Compact releases retained capacity that exists only to
// amortise allocation — store node free lists, scratch buffers — without
// touching live analysis state, so it is always verdict-preserving. The
// bounded-memory trace replay calls it at epoch boundaries to keep peak
// RSS flat across many-owner streams.
type Compacter interface {
	Compact()
}

// Compact invokes a's Compacter capability when present; analyzers
// without one retain their capacity (a no-op, like AccessBatch's
// fallback is the scalar path).
func Compact(a Analyzer) {
	if c, ok := a.(Compacter); ok {
		c.Compact()
	}
}

// RequestCompleter is the optional request-completion capability of an
// analyzer: CompleteRequest observes the local completion (MPI_Wait /
// MPI_Waitall) of a request-based one-sided operation issued by rank
// whose origin buffer is iv. Completion orders the request's
// origin-side accesses before everything after the wait on the issuing
// rank, so their stored one-sided fragments inside iv are retired at
// this analyzer. Local completion says nothing about the target side:
// target-window accesses stay live until the epoch's closing
// synchronisation, which is why a completed Rput still races with a
// concurrent access at the target. Analyzers without the capability
// keep the accesses stored — sound (extra pairs are at worst false
// positives on buffer reuse), just less precise.
type RequestCompleter interface {
	CompleteRequest(rank int, iv interval.Interval)
}

// CompleteRequest invokes a's RequestCompleter capability when
// present; analyzers without one keep the request's accesses stored (a
// no-op, like AccessBatch's fallback is the scalar path).
func CompleteRequest(a Analyzer, rank int, iv interval.Interval) {
	if c, ok := a.(RequestCompleter); ok {
		c.CompleteRequest(rank, iv)
	}
}

// Sharder is the optional sharding capability of an analyzer: the
// address space is partitioned into NumShards contiguous interval
// shards, each an independent Analyzer, and RouteEach splits an event
// at shard boundaries. The analysis engine uses it to process one
// window's notifications on a per-shard worker pool; splitting is
// verdict-preserving because the race predicate is evaluated per
// overlap and every overlap lies wholly inside one shard (see package
// internal/shard).
type Sharder interface {
	Analyzer
	// NumShards returns the shard count (≥ 1).
	NumShards() int
	// ShardAnalyzer returns shard i's independent analyzer. Callers are
	// responsible for serialising access to it.
	ShardAnalyzer(i int) Analyzer
	// RouteEach splits ev at shard boundaries and calls emit once per
	// piece, in ascending address order, with the owning shard.
	RouteEach(ev Event, emit func(shard int, piece Event))
}

// Method enumerates the four compared approaches, in the order the
// paper's figures present them.
type Method int

const (
	Baseline Method = iota
	RMAAnalyzer
	MustRMAMethod
	OurContribution
)

// String returns the method label used in the paper's figures.
func (m Method) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case RMAAnalyzer:
		return "RMA-Analyzer"
	case MustRMAMethod:
		return "MUST-RMA"
	case OurContribution:
		return "Our Contribution"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all four methods in presentation order.
func Methods() []Method {
	return []Method{Baseline, RMAAnalyzer, MustRMAMethod, OurContribution}
}

// MethodByName resolves the CLI/API spelling of a method ("baseline",
// "rma-analyzer", "must-rma", "our-contribution").
func MethodByName(name string) (Method, error) {
	switch name {
	case "baseline":
		return Baseline, nil
	case "rma-analyzer":
		return RMAAnalyzer, nil
	case "must-rma":
		return MustRMAMethod, nil
	case "our-contribution":
		return OurContribution, nil
	}
	return 0, fmt.Errorf("unknown method %q", name)
}
