package detector

import (
	"strings"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func flightAcc(lo uint64, rank int, line int) access.Access {
	return access.Access{
		Interval: interval.Span(lo, 8),
		Type:     access.RMAWrite,
		Rank:     rank,
		Epoch:    1,
		Debug:    access.Debug{File: "f.c", Line: line},
	}
}

// TestFlightLogWraps: the ring keeps exactly the last N events and
// Snapshot returns them oldest first with monotonic sequence numbers.
func TestFlightLogWraps(t *testing.T) {
	f := NewFlightLog(4)
	for i := 0; i < 6; i++ {
		f.Access(flightAcc(uint64(i)*16, 0, 100+i))
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d entries, want 4", len(snap))
	}
	for i, e := range snap {
		if want := uint64(2 + i); e.Seq != want {
			t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, want)
		}
		if e.Kind != FlightAccess || e.Acc.Debug.Line != 102+i {
			t.Fatalf("entry %d = %+v, wrong order", i, e)
		}
	}
}

// TestFlightLogMixedKinds: sync markers interleave with accesses and
// keep their origin.
func TestFlightLogMixedKinds(t *testing.T) {
	f := NewFlightLog(8)
	f.Access(flightAcc(0, 1, 100))
	f.Mark(FlightEpochEnd, 3)
	f.Mark(FlightFlush, 2)
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d entries", len(snap))
	}
	if snap[1].Kind != FlightEpochEnd || snap[1].Origin != 3 {
		t.Fatalf("epoch entry = %+v", snap[1])
	}
	if snap[2].Kind != FlightFlush || snap[2].Origin != 2 {
		t.Fatalf("flush entry = %+v", snap[2])
	}
}

// TestNilFlightLogInert: the disabled recorder accepts every call and
// snapshots to nil.
func TestNilFlightLogInert(t *testing.T) {
	var f *FlightLog
	f.Access(flightAcc(0, 0, 1))
	f.Mark(FlightSync, 0)
	if snap := f.Snapshot(); snap != nil {
		t.Fatalf("nil log snapshotted %v", snap)
	}
}

// TestWriteFlightMarksConflict: the postmortem dump marks exactly the
// two accesses matching the race verdict.
func TestWriteFlightMarksConflict(t *testing.T) {
	prev := flightAcc(64, 0, 666)
	cur := flightAcc(64, 1, 667)
	entries := []FlightEntry{
		{Seq: 0, Kind: FlightAccess, Acc: flightAcc(0, 0, 100)},
		{Seq: 1, Kind: FlightAccess, Acc: prev},
		{Seq: 2, Kind: FlightEpochEnd, Origin: 0},
		{Seq: 3, Kind: FlightAccess, Acc: cur},
	}
	race := &Race{Prev: prev, Cur: cur}
	var sb strings.Builder
	WriteFlight(&sb, entries, race)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines:\n%s", len(lines), sb.String())
	}
	marked := 0
	for i, ln := range lines {
		if strings.HasPrefix(ln, ">>") {
			marked++
			if i != 1 && i != 3 {
				t.Fatalf("line %d wrongly marked: %s", i, ln)
			}
		}
	}
	if marked != 2 {
		t.Fatalf("%d marked lines, want 2:\n%s", marked, sb.String())
	}
	if !strings.Contains(sb.String(), "epoch_end") {
		t.Fatalf("sync marker missing from dump:\n%s", sb.String())
	}
}
