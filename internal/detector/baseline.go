package detector

// BaselineAnalyzer performs no analysis. It is the "Baseline" series of
// Figures 10-12: the cost of running the workload with instrumentation
// compiled out.
type BaselineAnalyzer struct{}

// NewBaseline returns a no-op analyzer.
func NewBaseline() *BaselineAnalyzer { return &BaselineAnalyzer{} }

// Name implements Analyzer.
func (*BaselineAnalyzer) Name() string { return "baseline" }

// Access implements Analyzer as a no-op.
func (*BaselineAnalyzer) Access(Event) *Race { return nil }

// EpochEnd implements Analyzer as a no-op.
func (*BaselineAnalyzer) EpochEnd() {}

// Flush implements Analyzer as a no-op.
func (*BaselineAnalyzer) Flush(int) {}

// Release implements Analyzer as a no-op.
func (*BaselineAnalyzer) Release(int) {}

// Nodes implements Analyzer; the baseline stores nothing.
func (*BaselineAnalyzer) Nodes() int { return 0 }

// MaxNodes implements Analyzer.
func (*BaselineAnalyzer) MaxNodes() int { return 0 }

// Accesses implements Analyzer.
func (*BaselineAnalyzer) Accesses() uint64 { return 0 }
