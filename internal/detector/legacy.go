package detector

import (
	"rmarace/internal/access"
	"rmarace/internal/store"
)

// LegacyAnalyzer reproduces the original RMA-Analyzer (Aitkaci et al.,
// EuroMPI'21) as characterised in §3-§5 of the paper:
//
//   - every access becomes one BST node; nothing is fragmented or
//     merged, so the tree is as large as the number of accesses;
//   - the race check walks only the lower-bound descent path, missing
//     intersections stored off-path (the Code 1 false negative);
//   - the race predicate ignores program order within a process, so
//     Load;MPI_Get is flagged like MPI_Get;Load (the published false
//     positives, e.g. ll_load_get_inwindow_origin_safe).
//
// The first two defects live in the storage backend (the legacy
// lower-bound BST adapter of package store); the third in the
// order-insensitive predicate below. Swapping the backend
// (NewLegacyWithStore) isolates the predicate defect from the storage
// defects.
type LegacyAnalyzer struct {
	st       store.AccessStore
	accesses uint64
	maxNodes int
}

// NewLegacy returns a fresh legacy RMA-Analyzer state for one window,
// over the legacy lower-bound BST.
func NewLegacy() *LegacyAnalyzer { return NewLegacyWithStore(store.NewLegacyBST()) }

// NewLegacyWithStore returns the legacy analysis algorithm over the
// given storage backend.
func NewLegacyWithStore(s store.AccessStore) *LegacyAnalyzer { return &LegacyAnalyzer{st: s} }

// Name implements Analyzer.
func (*LegacyAnalyzer) Name() string { return "rma-analyzer" }

// Store returns the analyzer's storage backend.
func (l *LegacyAnalyzer) Store() store.AccessStore { return l.st }

// Access implements Analyzer with the legacy two-traversal scheme: one
// descent to check for races, one descent to insert.
func (l *LegacyAnalyzer) Access(ev Event) *Race {
	if ev.Filtered {
		return nil // alias analysis removed this access at compile time
	}
	l.accesses++
	a := ev.Acc
	var race *Race
	l.st.Stab(a.Interval, func(s access.Access) bool {
		// Order-insensitive check: any overlapping pair with at least
		// one RMA access and one write is reported, even the safe
		// local-before-RMA program orders fixed in §5.2.
		if access.Conflicts(s.Type, a.Type) {
			race = &Race{Prev: s, Cur: a}
			return false
		}
		return true
	})
	if race != nil {
		return race
	}
	l.st.Insert(a)
	if n := l.st.Len(); n > l.maxNodes {
		l.maxNodes = n
	}
	return nil
}

// EpochEnd implements Analyzer.
func (l *LegacyAnalyzer) EpochEnd() { l.st.Clear() }

// Flush implements Analyzer as a no-op: the paper reports that
// instrumenting MPI_Win_flush in RMA-Analyzer is unsound (§6) and the
// tool does not support it.
func (l *LegacyAnalyzer) Flush(int) {}

// Release implements Analyzer as a no-op: the original RMA-Analyzer
// instruments only the MPI_Win_lock_all/MPI_Win_unlock_all epoch
// functions (§5.1), so per-target unlock ordering is invisible to it —
// lock-serialised programs can produce legacy false positives.
func (l *LegacyAnalyzer) Release(int) {}

// Nodes implements Analyzer.
func (l *LegacyAnalyzer) Nodes() int { return l.st.Len() }

// MaxNodes implements Analyzer.
func (l *LegacyAnalyzer) MaxNodes() int { return l.maxNodes }

// Accesses implements Analyzer.
func (l *LegacyAnalyzer) Accesses() uint64 { return l.accesses }
