package detector

import (
	"sync"

	"rmarace/internal/shadow"
	"rmarace/internal/store"
	"rmarace/internal/vc"
)

// MustShared is the process-group-wide state of the MUST-RMA simulator:
// one vector clock per rank, joined at every epoch boundary. The O(P)
// snapshots taken at each one-sided call and the O(P²) join at epoch end
// model the clock piggybacking the paper identifies as MUST-RMA's
// scaling cost (§5.3).
type MustShared struct {
	mu     sync.Mutex
	clocks []vc.Clock
}

// NewMustShared returns shared MUST-RMA state for n ranks.
func NewMustShared(n int) *MustShared {
	s := &MustShared{clocks: make([]vc.Clock, n)}
	for i := range s.clocks {
		s.clocks[i] = vc.New(n)
	}
	return s
}

// Snapshot copies rank's clock with its own component forced to
// callTime, the logical time of the MPI call site. The instrumentation
// layer calls it at the call site and piggybacks the result on the
// event (Event.Clock), so the happens-before verdict is fixed when the
// operation is issued — not when the target's receiver happens to
// process the notification.
func (s *MustShared) Snapshot(rank int, callTime uint64) vc.Clock {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.clocks[rank].Copy()
	c[rank] = callTime
	return c
}

// joinAll merges every rank's clock into every other, the effect of the
// collective synchronisation completing a passive-target epoch.
func (s *MustShared) joinAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := vc.New(len(s.clocks))
	for _, c := range s.clocks {
		all.Join(c)
	}
	for i := range s.clocks {
		copy(s.clocks[i], all)
		s.clocks[i].Tick(i)
	}
}

// advance moves rank's own component to at least t.
func (s *MustShared) advance(rank int, t uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clocks[rank][rank] < t {
		s.clocks[rank][rank] = t
	}
}

// MustAnalyzer is the per-(process, window) view of the MUST-RMA
// simulator: a ThreadSanitizer-style shadow memory (held as the
// shadow-backed AccessStore of package store) checked against the
// shared happens-before clocks.
type MustAnalyzer struct {
	shared   *MustShared
	rank     int
	mem      *store.Shadow
	accesses uint64
	maxCells int
}

// NewMustRMA returns a MUST-RMA analyzer for one window of one rank,
// backed by the given shared clock state.
func NewMustRMA(shared *MustShared, rank int) *MustAnalyzer {
	return &MustAnalyzer{shared: shared, rank: rank, mem: store.NewShadowOwner(rank)}
}

// Name implements Analyzer.
func (*MustAnalyzer) Name() string { return "must-rma" }

// Store returns the analyzer's storage backend.
func (m *MustAnalyzer) Store() store.AccessStore { return m.mem }

// Access implements Analyzer. Unlike the tree-based analyzers it also
// processes alias-filtered accesses (ThreadSanitizer instruments the
// whole program), but it skips local accesses to stack arrays, which
// ThreadSanitizer does not instrument — the source of MUST-RMA's false
// negatives in Table 3.
func (m *MustAnalyzer) Access(ev Event) *Race {
	a := ev.Acc
	if a.Stack && !a.Type.IsRMA() {
		return nil // TSan blind spot: stack arrays
	}
	m.accesses++

	entry := shadow.Entry{Rank: a.Rank, Time: ev.Time}
	if a.Type.IsRMA() {
		entry.IsRMA = true
		if ev.Clock != nil {
			entry.Snapshot = ev.Clock
		} else {
			entry.Snapshot = m.shared.Snapshot(a.Rank, ev.CallTime)
		}
	} else {
		m.shared.advance(a.Rank, ev.Time)
	}

	conflict := m.mem.Record(a, entry)
	if n := m.mem.Len(); n > m.maxCells {
		m.maxCells = n
	}
	if conflict == nil {
		return nil
	}
	prev := a // reconstruct the stored access for the report
	prev.Type = conflict.Prev.Type
	prev.Debug = conflict.Prev.Debug
	prev.Rank = conflict.Prev.Rank
	return &Race{Prev: prev, Cur: a}
}

// EpochEnd implements Analyzer: the epoch's collective completion joins
// all clocks and retires the epoch's shadow state.
func (m *MustAnalyzer) EpochEnd() {
	m.shared.joinAll()
	m.mem.Clear()
}

// Flush implements Analyzer as a no-op; like the other tools, MUST-RMA
// does not instrument MPI_Win_flush soundly (§6).
func (m *MustAnalyzer) Flush(int) {}

// Release implements Analyzer: the unlocking rank's shadow entries are
// retired, modelling the happens-before edge an exclusive unlock
// creates towards subsequent lock holders.
func (m *MustAnalyzer) Release(rank int) { m.mem.RemoveRank(rank) }

// Nodes implements Analyzer: the number of live shadow cells.
func (m *MustAnalyzer) Nodes() int { return m.mem.Len() }

// MaxNodes implements Analyzer.
func (m *MustAnalyzer) MaxNodes() int { return m.maxCells }

// Accesses implements Analyzer.
func (m *MustAnalyzer) Accesses() uint64 { return m.accesses }
