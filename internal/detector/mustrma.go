package detector

import (
	"sync"

	"rmarace/internal/shadow"
	"rmarace/internal/store"
	"rmarace/internal/vc"
)

// ClockStats instruments the happens-before representation: how many
// snapshots each representation served, when promotion happened, and
// the bytes the adaptive scheme allocated versus what an always-vector
// run would have — the §5.3 scaling cost made measurable.
type ClockStats struct {
	// Snapshots counts Snapshot calls (one per one-sided operation
	// side under MUST-RMA).
	Snapshots uint64
	// EpochSnaps counts snapshots served as packed scalar epochs.
	EpochSnaps uint64
	// SharedSnaps counts snapshots served as base-sharing promoted
	// clocks (one O(P) base per join generation, O(1) per snapshot).
	SharedSnaps uint64
	// VectorSnaps counts full-vector snapshots (always-vector mode).
	VectorSnaps uint64
	// Promotions counts rank states that left the scalar epoch
	// representation at a collective join.
	Promotions uint64
	// Demotions counts rank states that returned to the scalar
	// representation. Clock components never decrease, so this stays 0
	// under the current synchronisation surface; the counter exists so
	// a future reset-style operation cannot demote silently.
	Demotions uint64
	// Joins counts collective joins (epoch completions).
	Joins uint64
	// FullClocksLive is the number of full O(P) vectors currently held
	// by the shared state: base generations in adaptive mode (at most
	// one), one clock per rank in always-vector mode.
	FullClocksLive int
	// EpochsHeld is the number of rank states currently in the scalar
	// epoch representation.
	EpochsHeld int
	// BytesAdaptive is the clock payload actually allocated: snapshot
	// values plus shared base generations.
	BytesAdaptive uint64
	// BytesVector is the clock payload an always-vector run would have
	// allocated for the same call sequence (8·P per snapshot).
	BytesVector uint64
}

// MustShared is the process-group-wide state of the MUST-RMA simulator:
// one happens-before clock per rank, joined at every epoch boundary.
// The O(P) snapshots taken at each one-sided call and the O(P²) join at
// epoch end model the clock piggybacking the paper identifies as
// MUST-RMA's scaling cost (§5.3).
//
// The representation is adaptive (FastTrack-style): between collective
// joins, rank r's clock differs from the immutable joined base only in
// its own component, so its state is a scalar vc.Epoch before the
// first cross-rank join and a base-sharing vc.Shared afterwards. A
// snapshot therefore costs O(1) instead of O(P); only the one shared
// base per join generation is a full vector. NewMustSharedVector
// builds the pre-adaptive always-vector state, kept as the
// differential-fuzzing baseline the adaptive verdicts are proven
// bit-identical against.
type MustShared struct {
	mu sync.Mutex
	n  int

	// Adaptive state: base is the immutable join of the last collective
	// (nil until the first non-trivial join), own[r] rank r's own
	// component, and cross[r] whether base carries a non-zero component
	// other than r's (i.e. whether r's state still fits an Epoch).
	base  vc.Clock
	own   []vc.Epoch
	cross []bool

	// Always-vector state (vectorOnly mode).
	vectorOnly bool
	clocks     []vc.Clock

	stats ClockStats
}

// NewMustShared returns shared MUST-RMA state for n ranks using the
// adaptive epoch⇄vector representation.
func NewMustShared(n int) *MustShared {
	s := &MustShared{n: n, own: make([]vc.Epoch, n), cross: make([]bool, n)}
	for r := range s.own {
		s.own[r] = vc.E(r, 0)
	}
	return s
}

// NewMustSharedVector returns shared MUST-RMA state that always
// snapshots full O(P) vector clocks — the representation the paper
// charges MUST-RMA's scaling overhead to, retained as the baseline the
// adaptive representation is differentially verified against.
func NewMustSharedVector(n int) *MustShared {
	s := &MustShared{n: n, vectorOnly: true, clocks: make([]vc.Clock, n)}
	for i := range s.clocks {
		s.clocks[i] = vc.New(n)
	}
	return s
}

// VectorOnly reports whether the state forces full-vector snapshots.
func (s *MustShared) VectorOnly() bool { return s.vectorOnly }

// Ranks returns the world size the state was built for.
func (s *MustShared) Ranks() int { return s.n }

// Snapshot captures rank's clock with its own component forced to
// callTime, the logical time of the MPI call site. The instrumentation
// layer calls it at the call site and piggybacks the result on the
// event (Event.Clock), so the happens-before verdict is fixed when the
// operation is issued — not when the target's receiver happens to
// process the notification.
//
// The returned value is immutable by contract: an Epoch when rank's
// history is still totally ordered, a base-sharing Shared clock after
// promotion, and a fresh full vector in always-vector mode.
func (s *MustShared) Snapshot(rank int, callTime uint64) vc.HB {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Snapshots++
	s.stats.BytesVector += uint64(8 * s.n)
	if s.vectorOnly {
		c := s.clocks[rank].Copy()
		c[rank] = callTime
		s.stats.VectorSnaps++
		s.stats.BytesAdaptive += uint64(c.Bytes())
		return c
	}
	own := vc.E(rank, callTime)
	if !s.cross[rank] {
		s.stats.EpochSnaps++
		s.stats.BytesAdaptive += uint64(own.Bytes())
		return own
	}
	snap := vc.Shared{Base: s.base, Own: own}
	s.stats.SharedSnaps++
	s.stats.BytesAdaptive += uint64(snap.Bytes())
	return snap
}

// joinAll merges every rank's clock into every other, the effect of the
// collective synchronisation completing a passive-target epoch. In the
// adaptive representation this materialises at most one new shared
// base vector; each rank's state stays the pair (base, own epoch).
func (s *MustShared) joinAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Joins++
	if s.vectorOnly {
		all := vc.New(s.n)
		for _, c := range s.clocks {
			all = all.Join(c)
		}
		for i := range s.clocks {
			copy(s.clocks[i], all)
			s.clocks[i].Tick(i)
		}
		return
	}
	// The join of all states: rank j's own component dominates base[j]
	// by construction, so the joined vector is just the own times.
	newBase := vc.New(s.n)
	nonzero := 0
	for j := range s.own {
		t := s.own[j].Time()
		if s.base != nil && s.base.At(j) > t {
			t = s.base.At(j)
		}
		newBase[j] = t
		if t != 0 {
			nonzero++
		}
	}
	for r := range s.own {
		nowCross := nonzero > 1 || (nonzero == 1 && newBase[r] == 0)
		switch {
		case nowCross && !s.cross[r]:
			s.stats.Promotions++
		case !nowCross && s.cross[r]:
			s.stats.Demotions++
		}
		s.cross[r] = nowCross
		s.own[r] = vc.E(r, newBase[r]+1)
	}
	if nonzero > 0 {
		s.base = newBase
		s.stats.BytesAdaptive += uint64(newBase.Bytes())
	}
}

// advance moves rank's own component to at least t.
func (s *MustShared) advance(rank int, t uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vectorOnly {
		if s.clocks[rank][rank] < t {
			s.clocks[rank][rank] = t
		}
		return
	}
	if s.own[rank].Time() < t {
		s.own[rank] = vc.E(rank, t)
	}
}

// Advance moves rank's own component to at least t — the program-order
// clock advancing on a local access. Exported for the benchmark and
// differential drivers; the analyzer path uses it via Access.
func (s *MustShared) Advance(rank int, t uint64) { s.advance(rank, t) }

// JoinAll performs the collective epoch-completing join. Exported for
// the benchmark and differential drivers; the analyzer path uses it
// via EpochEnd.
func (s *MustShared) JoinAll() { s.joinAll() }

// ClockStats snapshots the representation counters.
func (s *MustShared) ClockStats() ClockStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if s.vectorOnly {
		st.FullClocksLive = len(s.clocks)
	} else {
		if s.base != nil {
			st.FullClocksLive = 1
		}
		for _, c := range s.cross {
			if !c {
				st.EpochsHeld++
			}
		}
	}
	return st
}

// MustAnalyzer is the per-(process, window) view of the MUST-RMA
// simulator: a ThreadSanitizer-style shadow memory (held as the
// shadow-backed AccessStore of package store) checked against the
// shared happens-before clocks.
type MustAnalyzer struct {
	shared   *MustShared
	rank     int
	mem      *store.Shadow
	accesses uint64
	maxCells int
}

// NewMustRMA returns a MUST-RMA analyzer for one window of one rank,
// backed by the given shared clock state.
func NewMustRMA(shared *MustShared, rank int) *MustAnalyzer {
	return &MustAnalyzer{shared: shared, rank: rank, mem: store.NewShadowOwner(rank)}
}

// Name implements Analyzer.
func (*MustAnalyzer) Name() string { return "must-rma" }

// Store returns the analyzer's storage backend.
func (m *MustAnalyzer) Store() store.AccessStore { return m.mem }

// Access implements Analyzer. Unlike the tree-based analyzers it also
// processes alias-filtered accesses (ThreadSanitizer instruments the
// whole program), but it skips local accesses to stack arrays, which
// ThreadSanitizer does not instrument — the source of MUST-RMA's false
// negatives in Table 3.
func (m *MustAnalyzer) Access(ev Event) *Race {
	a := ev.Acc
	if a.Stack && !a.Type.IsRMA() {
		return nil // TSan blind spot: stack arrays
	}
	m.accesses++

	entry := shadow.Entry{Rank: a.Rank, Time: ev.Time}
	if a.Type.IsRMA() {
		entry.IsRMA = true
		if ev.Clock != nil {
			entry.Snapshot = ev.Clock
		} else {
			entry.Snapshot = m.shared.Snapshot(a.Rank, ev.CallTime)
		}
	} else {
		m.shared.advance(a.Rank, ev.Time)
	}

	conflict := m.mem.Record(a, entry)
	if n := m.mem.Len(); n > m.maxCells {
		m.maxCells = n
	}
	if conflict == nil {
		return nil
	}
	prev := a // reconstruct the stored access for the report
	prev.Type = conflict.Prev.Type
	prev.Debug = conflict.Prev.Debug
	prev.Rank = conflict.Prev.Rank
	return &Race{Prev: prev, Cur: a}
}

// EpochEnd implements Analyzer: the epoch's collective completion joins
// all clocks and retires the epoch's shadow state.
func (m *MustAnalyzer) EpochEnd() {
	m.shared.joinAll()
	m.mem.Clear()
}

// Flush implements Analyzer as a no-op; like the other tools, MUST-RMA
// does not instrument MPI_Win_flush soundly (§6).
func (m *MustAnalyzer) Flush(int) {}

// Release implements Analyzer: the unlocking rank's shadow entries are
// retired, modelling the happens-before edge an exclusive unlock
// creates towards subsequent lock holders.
func (m *MustAnalyzer) Release(rank int) { m.mem.RemoveRank(rank) }

// Nodes implements Analyzer: the number of live shadow cells.
func (m *MustAnalyzer) Nodes() int { return m.mem.Len() }

// MaxNodes implements Analyzer.
func (m *MustAnalyzer) MaxNodes() int { return m.maxCells }

// Accesses implements Analyzer.
func (m *MustAnalyzer) Accesses() uint64 { return m.accesses }
