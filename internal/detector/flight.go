package detector

import (
	"fmt"
	"io"
	"sync"

	"rmarace/internal/access"
)

// FlightKind classifies one flight-recorder entry: an analysed access
// or a synchronisation event that changed the analyzer's state.
type FlightKind uint8

const (
	// FlightAccess is one analysed memory access.
	FlightAccess FlightKind = iota
	// FlightEpochEnd marks the window's epoch completing (the store is
	// reset; accesses across the boundary no longer race).
	FlightEpochEnd
	// FlightFlush marks an observed MPI_Win_flush (a no-op for
	// detection, recorded because users reason about it).
	FlightFlush
	// FlightRelease marks an exclusive unlock retiring Origin's stored
	// accesses.
	FlightRelease
	// FlightSync marks a non-release synchronisation marker draining the
	// notification channel.
	FlightSync
	// FlightComplete marks a request's local completion (MPI_Wait /
	// MPI_Waitall) retiring Origin's completed origin-buffer accesses.
	FlightComplete
)

// String returns the entry kind's wire name.
func (k FlightKind) String() string {
	switch k {
	case FlightAccess:
		return "access"
	case FlightEpochEnd:
		return "epoch_end"
	case FlightFlush:
		return "flush"
	case FlightRelease:
		return "release"
	case FlightSync:
		return "sync"
	case FlightComplete:
		return "complete"
	}
	return "unknown"
}

// FlightEntry is one event in the flight log: the Seq-th thing the
// owning analyzer saw. Acc is meaningful for FlightAccess; Origin for
// FlightFlush/FlightRelease/FlightSync.
type FlightEntry struct {
	Seq    uint64
	Kind   FlightKind
	Acc    access.Access
	Origin int
}

// FlightLog is a bounded ring of the last N accesses and
// synchronisations one (rank, window) analyzer processed — the flight
// recorder snapshotted into a race verdict so "race detected" comes
// with the events that led up to it. A nil *FlightLog is the disabled
// recorder: every method is a no-op, so the default path costs one
// branch per site. The log is guarded by its own mutex because the
// engine records from the receiver, the shard router and the rank's
// own goroutine; it is never on the allocation-free hot path unless
// explicitly enabled.
type FlightLog struct {
	mu  sync.Mutex
	seq uint64
	buf []FlightEntry
}

// NewFlightLog returns a flight log keeping the most recent n events
// (a default of 64 when n <= 0).
func NewFlightLog(n int) *FlightLog {
	if n <= 0 {
		n = 64
	}
	return &FlightLog{buf: make([]FlightEntry, 0, n)}
}

func (f *FlightLog) push(e FlightEntry) {
	f.mu.Lock()
	e.Seq = f.seq
	f.seq++
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[int(e.Seq)%cap(f.buf)] = e
	}
	f.mu.Unlock()
}

// Access records one analysed access.
func (f *FlightLog) Access(a access.Access) {
	if f == nil {
		return
	}
	f.push(FlightEntry{Kind: FlightAccess, Acc: a})
}

// Mark records a synchronisation event issued by origin.
func (f *FlightLog) Mark(kind FlightKind, origin int) {
	if f == nil {
		return
	}
	f.push(FlightEntry{Kind: kind, Origin: origin})
}

// Snapshot returns the retained events oldest-first. It is safe to call
// while the log is still being written (the race path does exactly
// that).
func (f *FlightLog) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		copy(out, f.buf)
		return out
	}
	// The ring has wrapped: entries are stored at Seq % cap, so the
	// oldest retained entry sits right after the newest.
	start := int(f.seq) % cap(f.buf)
	n := copy(out, f.buf[start:])
	copy(out[n:], f.buf[:start])
	return out
}

// WriteFlight renders entries as the human postmortem dump, marking the
// two conflicting accesses of race when they appear.
func WriteFlight(w io.Writer, entries []FlightEntry, race *Race) {
	for _, e := range entries {
		marker := "  "
		if race != nil && e.Kind == FlightAccess && race.Involves(e.Acc) {
			marker = ">>"
		}
		switch e.Kind {
		case FlightAccess:
			a := e.Acc
			fmt.Fprintf(w, "%s %6d  %-11s %-11s [%d..%d] rank=%d epoch=%d at %s\n",
				marker, e.Seq, e.Kind, a.Type, a.Lo, a.Hi, a.Rank, a.Epoch, a.Debug)
			if st := a.FrameString(); st != "" {
				fmt.Fprintf(w, "%s         stack: %s\n", marker, st)
			}
		default:
			fmt.Fprintf(w, "%s %6d  %-11s origin=%d\n", marker, e.Seq, e.Kind, e.Origin)
		}
	}
}
