package detector

import "rmarace/internal/access"

// AccessKey identifies one side of a race verdict independent of
// interval geometry. Identity must be interval-free because the
// pipeline rewrites addresses without changing what raced:
//
//   - fragmentation narrows a stored access's interval to the disjoint
//     pieces of Algorithm 1, keeping its rank/epoch/type/debug (Combine
//     hands the fragment the surviving access's identity whole);
//   - merging widens a node over adjacent accesses, which Mergeable
//     only permits when every identity field is equal;
//   - sharding splits the incoming access at shard boundaries, so the
//     reported Cur may be any piece of the instrumented interval;
//   - the shadow backend conflates addresses to 8-byte granules.
//
// Two verdicts about the same pair of program accesses therefore agree
// on their AccessKeys even when they disagree on the exact bytes, which
// is what lets the differential oracle compare verdict sets across
// every store, shard and batch configuration.
type AccessKey struct {
	Rank    int
	Epoch   uint64
	Type    access.Type
	AccumOp access.AccumOp
	Stack   bool
	File    string
	Line    int
}

// KeyOf extracts an access's identity key.
func KeyOf(a access.Access) AccessKey {
	return AccessKey{
		Rank:    a.Rank,
		Epoch:   a.Epoch,
		Type:    a.Type,
		AccumOp: a.AccumOp,
		Stack:   a.Stack,
		File:    a.Debug.File,
		Line:    a.Debug.Line,
	}
}

// less orders keys canonically so an unordered pair has one
// representation.
func (k AccessKey) less(o AccessKey) bool {
	switch {
	case k.Rank != o.Rank:
		return k.Rank < o.Rank
	case k.Epoch != o.Epoch:
		return k.Epoch < o.Epoch
	case k.Type != o.Type:
		return k.Type < o.Type
	case k.AccumOp != o.AccumOp:
		return k.AccumOp < o.AccumOp
	case k.Stack != o.Stack:
		return !k.Stack
	case k.File != o.File:
		return k.File < o.File
	}
	return k.Line < o.Line
}

// RaceKey identifies a race verdict as an unordered pair of access
// identities: which side was stored first depends on notification
// scheduling, so deduplication must not.
type RaceKey struct {
	A, B AccessKey // canonically ordered: !B.less(A)
}

// PairKey builds the canonical key of an unordered access pair.
func PairKey(x, y access.Access) RaceKey {
	a, b := KeyOf(x), KeyOf(y)
	if b.less(a) {
		a, b = b, a
	}
	return RaceKey{A: a, B: b}
}

// DedupKey is the canonical deduplication key of a race verdict. Every
// consumer that suppresses duplicate reports — the flight recorder's
// conflict markers, the differential oracle, the fuzz driver — must use
// this one definition so "the same race" means the same thing
// everywhere.
func DedupKey(r *Race) RaceKey { return PairKey(r.Prev, r.Cur) }

// Involves reports whether a could be one side of the race verdict r:
// its identity matches a side and it overlaps that side's interval.
// This is the flight recorder's marker predicate: a recorded access is
// implicated even when the verdict carries only a fragment (narrowed)
// or merged (widened) view of it.
func (r *Race) Involves(a access.Access) bool {
	if KeyOf(a) == KeyOf(r.Prev) && a.Intersects(r.Prev.Interval) {
		return true
	}
	return KeyOf(a) == KeyOf(r.Cur) && a.Intersects(r.Cur.Interval)
}
