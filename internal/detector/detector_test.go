package detector

import (
	"strings"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func ev(lo, hi uint64, t access.Type, rank int, time uint64) Event {
	return Event{
		Acc: access.Access{
			Interval: interval.New(lo, hi),
			Type:     t,
			Rank:     rank,
			Debug:    access.Debug{File: "./dspl.hpp", Line: int(time)},
		},
		Time:     time,
		CallTime: time,
	}
}

func TestRaceMessageMatchesFigure9(t *testing.T) {
	r := &Race{
		Prev: access.Access{Type: access.RMAWrite, Debug: access.Debug{File: "./dspl.hpp", Line: 612}},
		Cur:  access.Access{Type: access.RMAWrite, Debug: access.Debug{File: "./dspl.hpp", Line: 614}},
	}
	want := "Error when inserting memory access of type RMA_WRITE from file ./dspl.hpp:614 " +
		"with already inserted interval of type RMA_WRITE from file ./dspl.hpp:612. " +
		"The program will be exiting now with MPI_Abort."
	if got := r.Message(); got != want {
		t.Errorf("Message() =\n%q\nwant\n%q", got, want)
	}
	if r.Error() != r.Message() {
		t.Error("Error() must equal Message()")
	}
}

func TestMethodStrings(t *testing.T) {
	want := []string{"Baseline", "RMA-Analyzer", "MUST-RMA", "Our Contribution"}
	for i, m := range Methods() {
		if m.String() != want[i] {
			t.Errorf("method %d = %q, want %q", i, m.String(), want[i])
		}
	}
}

func TestBaselineDoesNothing(t *testing.T) {
	b := NewBaseline()
	if r := b.Access(ev(0, 9, access.RMAWrite, 0, 1)); r != nil {
		t.Fatal("baseline reported a race")
	}
	if r := b.Access(ev(0, 9, access.RMAWrite, 1, 2)); r != nil {
		t.Fatal("baseline reported a race")
	}
	b.EpochEnd()
	b.Flush(0)
	if b.Nodes() != 0 || b.MaxNodes() != 0 || b.Accesses() != 0 {
		t.Fatal("baseline kept state")
	}
}

func TestLegacyDetectsSimpleRace(t *testing.T) {
	l := NewLegacy()
	if r := l.Access(ev(2, 12, access.RMAWrite, 0, 1)); r != nil {
		t.Fatalf("first access raced: %v", r)
	}
	r := l.Access(ev(7, 7, access.LocalWrite, 1, 1))
	if r == nil {
		t.Fatal("legacy must catch an on-path overlap")
	}
	if !strings.Contains(r.Message(), "LOCAL_WRITE") {
		t.Errorf("message = %q", r.Message())
	}
}

// TestLegacyCode1FalseNegative reproduces Fig. 5a end to end: Load(4);
// MPI_Put(buf[2],10); Store(7) — the race between the Put's origin-side
// read and the Store is missed.
func TestLegacyCode1FalseNegative(t *testing.T) {
	l := NewLegacy()
	if r := l.Access(ev(4, 4, access.LocalRead, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := l.Access(ev(2, 12, access.RMARead, 0, 2)); r != nil {
		t.Fatal(r)
	}
	if r := l.Access(ev(7, 7, access.LocalWrite, 0, 3)); r != nil {
		t.Fatalf("legacy found the Code 1 race; its published false negative must be reproduced: %v", r)
	}
	if l.Nodes() != 3 {
		t.Fatalf("legacy tree has %d nodes, want 3 (Fig. 5a)", l.Nodes())
	}
}

// TestLegacyOrderInsensitiveFalsePositive reproduces the Table 2 row
// ll_load_get_inwindow_origin_safe: legacy flags the safe Load;MPI_Get
// order.
func TestLegacyOrderInsensitiveFalsePositive(t *testing.T) {
	l := NewLegacy()
	if r := l.Access(ev(0, 9, access.LocalRead, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := l.Access(ev(0, 9, access.RMAWrite, 0, 2)); r == nil {
		t.Fatal("legacy must flag Load;MPI_Get (its published false positive)")
	}
}

func TestLegacyNodeGrowthCode2(t *testing.T) {
	// Code 2: 1,000 adjacent Gets plus the loop-variable accesses give a
	// tree linear in the iteration count.
	l := NewLegacy()
	iAddr := uint64(100000)
	for i := 0; i < 1000; i++ {
		for k := 0; k < 4; k++ { // i is read or written 4 times per iteration
			tp := access.LocalRead
			if k == 3 {
				tp = access.LocalWrite
			}
			if r := l.Access(ev(iAddr, iAddr+7, tp, 0, uint64(i*10+k))); r != nil {
				t.Fatal(r)
			}
		}
		if r := l.Access(ev(uint64(i), uint64(i), access.RMAWrite, 0, uint64(i*10+5))); r != nil {
			t.Fatal(r)
		}
	}
	if l.Nodes() < 5000 {
		t.Fatalf("legacy tree has %d nodes; Code 2 requires linear growth (≈5002)", l.Nodes())
	}
}

func TestLegacySkipsFilteredAccesses(t *testing.T) {
	l := NewLegacy()
	e := ev(0, 9, access.LocalWrite, 0, 1)
	e.Filtered = true
	if r := l.Access(e); r != nil {
		t.Fatal(r)
	}
	if l.Nodes() != 0 || l.Accesses() != 0 {
		t.Fatal("filtered access was processed")
	}
}

func TestLegacyEpochEndClears(t *testing.T) {
	l := NewLegacy()
	l.Access(ev(0, 9, access.RMAWrite, 0, 1))
	l.EpochEnd()
	if l.Nodes() != 0 {
		t.Fatal("EpochEnd did not clear")
	}
	// The same location is free in the next epoch.
	if r := l.Access(ev(0, 9, access.LocalWrite, 1, 2)); r != nil {
		t.Fatal("stale cross-epoch race")
	}
}

func mustPair(t *testing.T) (*MustShared, *MustAnalyzer) {
	t.Helper()
	s := NewMustShared(2)
	return s, NewMustRMA(s, 0)
}

func TestMustDetectsGetThenLoad(t *testing.T) {
	_, m := mustPair(t)
	if r := m.Access(ev(0, 7, access.RMAWrite, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := m.Access(ev(0, 7, access.LocalRead, 0, 2)); r == nil {
		t.Fatal("MUST must detect MPI_Get;Load")
	}
}

func TestMustAcceptsLoadThenGet(t *testing.T) {
	// No false positive on the safe order — Table 2 row 4.
	_, m := mustPair(t)
	if r := m.Access(ev(0, 7, access.LocalRead, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := m.Access(ev(0, 7, access.RMAWrite, 0, 2)); r != nil {
		t.Fatalf("MUST flagged the safe Load;MPI_Get: %v", r)
	}
}

// TestMustStackBlindSpot reproduces the Table 2 row
// ll_get_load_inwindow_origin_race with a stack array: ThreadSanitizer
// does not instrument the Load, so the race is missed.
func TestMustStackBlindSpot(t *testing.T) {
	_, m := mustPair(t)
	e1 := ev(0, 7, access.RMAWrite, 0, 1)
	e1.Acc.Stack = true
	if r := m.Access(e1); r != nil {
		t.Fatal(r)
	}
	e2 := ev(0, 7, access.LocalRead, 0, 2)
	e2.Acc.Stack = true
	if r := m.Access(e2); r != nil {
		t.Fatalf("stack-array load was instrumented: %v", r)
	}
	// With heap arrays the same pattern is caught (the paper: "When
	// using heap arrays, the error is detected by MUST-RMA").
	_, m2 := mustPair(t)
	m2.Access(ev(0, 7, access.RMAWrite, 0, 1))
	if r := m2.Access(ev(0, 7, access.LocalRead, 0, 2)); r == nil {
		t.Fatal("heap variant must be detected")
	}
}

func TestMustProcessesFilteredAccesses(t *testing.T) {
	// ThreadSanitizer has no alias filter: Filtered events still cost
	// analysis work.
	_, m := mustPair(t)
	e := ev(0, 7, access.LocalWrite, 0, 1)
	e.Filtered = true
	m.Access(e)
	if m.Accesses() != 1 {
		t.Fatal("filtered access was skipped by MUST")
	}
}

func TestMustEpochEndSynchronises(t *testing.T) {
	s := NewMustShared(2)
	m := NewMustRMA(s, 0)
	m.Access(ev(0, 7, access.RMAWrite, 0, 1))
	m.EpochEnd()
	// After the epoch boundary the same location is free.
	if r := m.Access(ev(0, 7, access.LocalWrite, 1, 1)); r != nil {
		t.Fatalf("cross-epoch race reported: %v", r)
	}
}

func TestMustCrossOriginPuts(t *testing.T) {
	s := NewMustShared(3)
	m := NewMustRMA(s, 2) // target's window shadow
	if r := m.Access(ev(0, 7, access.RMAWrite, 0, 1)); r != nil {
		t.Fatal(r)
	}
	if r := m.Access(ev(0, 7, access.RMAWrite, 1, 1)); r == nil {
		t.Fatal("two Puts from different origins must race")
	}
}

func TestMustNodesReportsShadowCells(t *testing.T) {
	_, m := mustPair(t)
	m.Access(ev(0, 63, access.RMAWrite, 0, 1))
	if m.Nodes() != 8 || m.MaxNodes() != 8 {
		t.Fatalf("Nodes=%d MaxNodes=%d, want 8", m.Nodes(), m.MaxNodes())
	}
}
