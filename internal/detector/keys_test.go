package detector

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func keyAcc(lo, n uint64, tp access.Type, rank int, epoch uint64, line int) access.Access {
	return access.Access{
		Interval: interval.Span(lo, n),
		Type:     tp,
		Rank:     rank,
		Epoch:    epoch,
		Debug:    access.Debug{File: "k.c", Line: line},
	}
}

func TestKeyOfIgnoresInterval(t *testing.T) {
	a := keyAcc(0, 8, access.RMAWrite, 1, 2, 10)
	b := a
	b.Interval = interval.Span(1000, 3) // fragment/merge/shard rewrite
	if KeyOf(a) != KeyOf(b) {
		t.Fatalf("keys differ across interval rewrite: %+v vs %+v", KeyOf(a), KeyOf(b))
	}
}

func TestKeyOfDistinguishesIdentity(t *testing.T) {
	base := keyAcc(0, 8, access.RMAWrite, 1, 2, 10)
	for name, mut := range map[string]func(*access.Access){
		"rank":  func(a *access.Access) { a.Rank = 3 },
		"epoch": func(a *access.Access) { a.Epoch = 7 },
		"type":  func(a *access.Access) { a.Type = access.RMARead },
		"op":    func(a *access.Access) { a.AccumOp = access.AccumSum },
		"stack": func(a *access.Access) { a.Stack = true },
		"file":  func(a *access.Access) { a.Debug.File = "other.c" },
		"line":  func(a *access.Access) { a.Debug.Line = 11 },
	} {
		other := base
		mut(&other)
		if KeyOf(base) == KeyOf(other) {
			t.Errorf("%s change not reflected in key", name)
		}
	}
}

func TestDedupKeyOrderInsensitive(t *testing.T) {
	a := keyAcc(0, 8, access.RMAWrite, 1, 0, 10)
	b := keyAcc(4, 8, access.RMARead, 2, 0, 20)
	k1 := DedupKey(&Race{Prev: a, Cur: b})
	k2 := DedupKey(&Race{Prev: b, Cur: a})
	if k1 != k2 {
		t.Fatalf("dedup key depends on verdict side order: %+v vs %+v", k1, k2)
	}
	if k1.B.less(k1.A) {
		t.Fatalf("key pair not canonically ordered: %+v", k1)
	}
}

func TestDedupKeySurvivesFragmentNarrowing(t *testing.T) {
	// The stored side of a verdict may be a fragment of the original
	// access: Combine keeps the identity, only the interval narrows.
	stored := keyAcc(0, 16, access.RMAWrite, 1, 0, 10)
	frag := stored
	frag.Interval = interval.Span(8, 8)
	incoming := keyAcc(8, 8, access.RMAWrite, 2, 0, 20)
	want := DedupKey(&Race{Prev: stored, Cur: incoming})
	got := DedupKey(&Race{Prev: frag, Cur: incoming})
	if want != got {
		t.Fatalf("fragmented verdict keys differently: %+v vs %+v", got, want)
	}
}

func TestInvolvesMatchesFragmentedVerdict(t *testing.T) {
	orig := keyAcc(0, 16, access.RMAWrite, 1, 0, 10)
	frag := orig
	frag.Interval = interval.Span(8, 8)
	cur := keyAcc(8, 8, access.RMAWrite, 2, 0, 20)
	r := &Race{Prev: frag, Cur: cur}
	if !r.Involves(orig) {
		t.Error("original access not matched against its fragment's verdict")
	}
	if !r.Involves(cur) {
		t.Error("inserted access not matched")
	}
	// Same identity elsewhere in memory must not be implicated.
	far := orig
	far.Interval = interval.Span(1000, 8)
	if r.Involves(far) {
		t.Error("non-overlapping access with equal identity wrongly implicated")
	}
	other := keyAcc(8, 8, access.RMAWrite, 3, 0, 30)
	if r.Involves(other) {
		t.Error("unrelated rank implicated")
	}
}
