// Package shadow implements a ThreadSanitizer-style shadow memory for
// the MUST-RMA simulator (§3, §5): every instrumented access is recorded
// per memory granule together with enough clock information to decide
// whether two accesses are concurrent, and conflicting concurrent
// accesses are reported as races.
//
// The happens-before model matches how MUST-RMA treats passive-target
// epochs:
//
//   - accesses local to a process are ordered by program order (a scalar
//     per-rank time suffices, because distinct processes never share
//     native memory);
//
//   - a one-sided operation behaves like an asynchronous task carrying a
//     snapshot of the origin's vector clock taken at the call. Local
//     accesses that precede the call happen before the task; everything
//     else in the epoch — later local accesses, and any other RMA task —
//     is concurrent with it until the epoch completes.
//
// Carrying an O(P) clock snapshot per one-sided operation is exactly the
// cost the paper blames for MUST-RMA's growing overhead at scale (§5.3).
package shadow

import (
	"rmarace/internal/access"
	"rmarace/internal/vc"
)

// Granule is the default shadow-cell width in bytes, matching TSan's
// 8-byte shadow words. Accesses to distinct addresses within one granule
// may be conflated, as in the real tool.
const Granule = 8

// Entry describes one recorded access.
type Entry struct {
	// IsRMA marks accesses performed by a one-sided operation; they are
	// concurrent with every other access of the epoch except local
	// accesses that precede the call.
	IsRMA bool
	// Rank is the issuing rank; Time its scalar program-order clock at
	// the access (meaningful for local accesses).
	Rank int
	Time uint64
	// Snapshot is the origin's happens-before clock at the MPI call
	// site (a compact vc.Epoch, a base-sharing vc.Shared, or a full
	// vector — see vc.HB); nil for local accesses. To keep shadow memory
	// O(1) per cell, stored entries drop the clock and retain only the
	// component the memory's owner needs (snapAtOwner): within one
	// process's shadow, local accesses only ever come from the owner, so
	// comparisons only read that component.
	Snapshot vc.HB
	Type     access.Type
	AccumOp  access.AccumOp
	Debug    access.Debug
	// Epoch is the analysis epoch the access was observed in, carried
	// so the AccessStore adapter can reconstruct stored accesses that
	// satisfy the epoch-equality clause of access.Races. The
	// happens-before model above never reads it (MUST-RMA orders by
	// clocks, not epochs), but without it the -store=shadow ablation
	// reported every stored access as epoch 0 and silently stopped
	// detecting races from the second epoch on.
	Epoch uint64

	snapAtOwner uint64
}

// snapAt returns the snapshot component for rank, falling back to the
// retained owner component for compacted (stored) entries.
func (e Entry) snapAt(rank int) uint64 {
	if e.Snapshot != nil {
		return e.Snapshot.At(rank)
	}
	return e.snapAtOwner
}

// Conflict reports two concurrent conflicting accesses to one granule.
type Conflict struct {
	Addr      uint64 // granule base address
	Prev, Cur Entry
}

type cell struct {
	lastWrite *Entry
	reads     []Entry
}

// Memory is a shadow memory for one process's address space. The zero
// value is not usable; call NewMemory. Memory is not safe for
// concurrent use.
type Memory struct {
	granule uint64
	owner   int
	cells   map[uint64]*cell
	// Recorded counts every granule update, the unit of MUST-RMA
	// analysis work.
	Recorded uint64
}

// NewMemory returns an empty shadow memory with the default granule,
// owned by rank 0.
func NewMemory() *Memory { return NewMemoryGranule(Granule) }

// NewMemoryOwner returns an empty shadow memory for the given owning
// rank — the only rank whose local accesses can appear in it.
func NewMemoryOwner(owner int) *Memory {
	m := NewMemoryGranule(Granule)
	m.owner = owner
	return m
}

// NewMemoryGranule returns an empty shadow memory with the given
// granule width in bytes (must be a power of two).
func NewMemoryGranule(granule uint64) *Memory {
	if granule == 0 || granule&(granule-1) != 0 {
		panic("shadow: granule must be a power of two")
	}
	return &Memory{granule: granule, cells: make(map[uint64]*cell)}
}

// orderedBefore reports whether a happens before b.
func orderedBefore(a, b Entry) bool {
	switch {
	case !a.IsRMA && !b.IsRMA:
		// Local accesses are ordered only within one process.
		return a.Rank == b.Rank && a.Time < b.Time
	case !a.IsRMA && b.IsRMA:
		// Local before an RMA task iff the task's snapshot observed it.
		return a.Time <= b.snapAt(a.Rank)
	case a.IsRMA && !b.IsRMA:
		// An RMA task completes only at the end of the epoch; within
		// the epoch nothing local can be after it. (A local access
		// whose own snapshot view would place it first is covered by
		// the symmetric call.)
		return false
	default:
		// Two one-sided operations within one epoch are unordered, even
		// from the same origin (§2.1 Ordering).
		return false
	}
}

func concurrent(a, b Entry) bool {
	return !orderedBefore(a, b) && !orderedBefore(b, a)
}

func conflicting(a, b Entry) bool {
	if a.Type == access.RMAAccum && b.Type == access.RMAAccum && a.AccumOp == b.AccumOp {
		return false // element-wise atomic, same-operation accumulates
	}
	return a.Type.IsWrite() || b.Type.IsWrite()
}

// Record registers an access covering iv and returns the first conflict
// found, or nil. The caller is responsible for skipping accesses the
// tool would not instrument (stack arrays).
func (m *Memory) Record(a access.Access, e Entry) *Conflict {
	e.Type = a.Type
	e.AccumOp = a.AccumOp
	e.Debug = a.Debug
	e.Epoch = a.Epoch
	if e.IsRMA && e.Snapshot != nil {
		e.snapAtOwner = e.Snapshot.At(m.owner)
	}
	var conflict *Conflict
	for base := a.Lo &^ (m.granule - 1); base <= a.Hi; base += m.granule {
		m.Recorded++
		c := m.cells[base]
		if c == nil {
			c = &cell{}
			m.cells[base] = c
		}
		if conflict == nil {
			conflict = c.check(base, e)
		}
		c.update(e, m)
		if base > base+m.granule {
			break // address-space wrap guard
		}
	}
	return conflict
}

func (c *cell) check(base uint64, e Entry) *Conflict {
	if w := c.lastWrite; w != nil && concurrent(*w, e) && conflicting(*w, e) {
		return &Conflict{Addr: base, Prev: *w, Cur: e}
	}
	if e.Type.IsWrite() {
		for i := range c.reads {
			if concurrent(c.reads[i], e) {
				return &Conflict{Addr: base, Prev: c.reads[i], Cur: e}
			}
		}
	}
	return nil
}

func (c *cell) update(e Entry, m *Memory) {
	// Compact before retention: the O(P) snapshot is dropped, keeping
	// only the owner component (see Entry).
	e.Snapshot = nil
	if e.Type.IsWrite() {
		ew := e
		c.lastWrite = &ew
		c.reads = c.reads[:0]
		return
	}
	// Reads: keep at most one entry per (rank, IsRMA) class. Within one
	// epoch all RMA reads of a rank are mutually concurrent and a later
	// local read of a rank supersedes an earlier one for conflict
	// detection, so the classes are lossless here and bound the cell to
	// O(P) entries, like TSan's bounded shadow words.
	for i := range c.reads {
		if c.reads[i].Rank == e.Rank && c.reads[i].IsRMA == e.IsRMA {
			if !e.IsRMA || c.reads[i].Time <= e.Time {
				c.reads[i] = e
			}
			return
		}
	}
	c.reads = append(c.reads, e)
}

// Cells returns the number of shadow cells currently allocated.
func (m *Memory) Cells() int { return len(m.cells) }

// GranuleSize returns the cell width in bytes.
func (m *Memory) GranuleSize() uint64 { return m.granule }

// visitCell feeds every entry of one cell to fn.
func (c *cell) visit(base uint64, fn func(base uint64, e Entry) bool) bool {
	if w := c.lastWrite; w != nil && !fn(base, *w) {
		return false
	}
	for i := range c.reads {
		if !fn(base, c.reads[i]) {
			return false
		}
	}
	return true
}

// VisitRange calls fn for every stored entry whose granule intersects
// [lo, hi], with the granule base address, stopping early if fn returns
// false. It reports whether the visit ran to completion. Entries within
// one granule are conflated to the granule interval, as in the tool.
func (m *Memory) VisitRange(lo, hi uint64, fn func(base uint64, e Entry) bool) bool {
	for base := lo &^ (m.granule - 1); base <= hi; base += m.granule {
		if c := m.cells[base]; c != nil {
			if !c.visit(base, fn) {
				return false
			}
		}
		if base > base+m.granule {
			break // address-space wrap guard
		}
	}
	return true
}

// VisitAll calls fn for every stored entry in arbitrary cell order,
// stopping early if fn returns false.
func (m *Memory) VisitAll(fn func(base uint64, e Entry) bool) bool {
	for base, c := range m.cells {
		if !c.visit(base, fn) {
			return false
		}
	}
	return true
}

// Clear empties the shadow memory, as happens when an epoch completes
// and all its accesses become ordered with the future.
func (m *Memory) Clear() {
	m.cells = make(map[uint64]*cell)
}

// RemoveRank retires every stored entry issued by rank (the
// unsafe-flush ablation's per-rank clearing). Empty cells are
// reclaimed.
func (m *Memory) RemoveRank(rank int) {
	m.removeIf(func(e *Entry) bool { return e.Rank == rank })
}

// RemoveRemote retires every stored one-sided entry issued by a rank
// other than owner, the effect of an exclusive MPI_Win_unlock: the
// lock's FIFO grant order places every completed lock session — shared
// included — before every later holder's. The owner's own entries
// (origin-side buffers, unsynchronised local accesses) survive.
func (m *Memory) RemoveRemote(owner int) {
	m.removeIf(func(e *Entry) bool { return e.Rank != owner && e.IsRMA })
}

// RemoveRankRange retires every stored one-sided entry issued by rank
// whose granule intersects [lo, hi] — the effect of a request's local
// completion (MPI_Wait over an Rput/Rget whose origin buffer is the
// range). Granule resolution matches the rest of the shadow model:
// entries are conflated per granule, so a partially-covered granule
// retires whole, exactly as the tool's shadow words would.
func (m *Memory) RemoveRankRange(rank int, lo, hi uint64) {
	doomed := func(e *Entry) bool { return e.Rank == rank && e.IsRMA }
	for base := lo &^ (m.granule - 1); base <= hi; base += m.granule {
		if c := m.cells[base]; c != nil {
			if c.lastWrite != nil && doomed(c.lastWrite) {
				c.lastWrite = nil
			}
			kept := c.reads[:0]
			for i := range c.reads {
				if !doomed(&c.reads[i]) {
					kept = append(kept, c.reads[i])
				}
			}
			c.reads = kept
			if c.lastWrite == nil && len(c.reads) == 0 {
				delete(m.cells, base)
			}
		}
		if base > base+m.granule {
			break // address-space wrap guard
		}
	}
}

func (m *Memory) removeIf(doomed func(*Entry) bool) {
	for base, c := range m.cells {
		if c.lastWrite != nil && doomed(c.lastWrite) {
			c.lastWrite = nil
		}
		kept := c.reads[:0]
		for i := range c.reads {
			if !doomed(&c.reads[i]) {
				kept = append(kept, c.reads[i])
			}
		}
		c.reads = kept
		if c.lastWrite == nil && len(c.reads) == 0 {
			delete(m.cells, base)
		}
	}
}
