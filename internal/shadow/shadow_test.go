package shadow

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/vc"
)

func acc(lo, hi uint64, t access.Type) access.Access {
	return access.Access{Interval: interval.New(lo, hi), Type: t, Debug: access.Debug{File: "s.c", Line: 1}}
}

func local(rank int, time uint64) Entry {
	return Entry{Rank: rank, Time: time}
}

func rma(rank int, snap vc.Clock) Entry {
	return Entry{IsRMA: true, Rank: rank, Snapshot: snap}
}

func TestNewMemoryGranuleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two granule must panic")
		}
	}()
	NewMemoryGranule(3)
}

func TestLocalProgramOrderIsSafe(t *testing.T) {
	m := NewMemory()
	if c := m.Record(acc(0, 7, access.LocalWrite), local(0, 1)); c != nil {
		t.Fatalf("first access conflicted: %+v", c)
	}
	if c := m.Record(acc(0, 7, access.LocalWrite), local(0, 2)); c != nil {
		t.Fatalf("program-ordered writes conflicted: %+v", c)
	}
}

// TestGetThenLoadRaces reproduces ll_get_load (Table 2 row 1): the Get's
// origin-side write task is concurrent with the later Load.
func TestGetThenLoadRaces(t *testing.T) {
	m := NewMemory()
	clk := vc.Clock{5} // origin clock at the MPI_Get call
	if c := m.Record(acc(0, 7, access.RMAWrite), rma(0, clk)); c != nil {
		t.Fatalf("unexpected conflict: %+v", c)
	}
	// The Load happens at local time 6 > snapshot[0] = 5: concurrent.
	c := m.Record(acc(0, 7, access.LocalRead), local(0, 6))
	if c == nil {
		t.Fatal("MPI_Get;Load must race")
	}
	if !c.Prev.IsRMA || c.Cur.IsRMA {
		t.Fatalf("conflict endpoints wrong: %+v", c)
	}
}

// TestLoadThenGetIsSafe reproduces ll_load_get (Table 2 row 4): a local
// access the RMA call's snapshot has observed happens before the task.
func TestLoadThenGetIsSafe(t *testing.T) {
	m := NewMemory()
	if c := m.Record(acc(0, 7, access.LocalRead), local(0, 3)); c != nil {
		t.Fatalf("unexpected conflict: %+v", c)
	}
	clk := vc.Clock{4} // call site after the load
	if c := m.Record(acc(0, 7, access.RMAWrite), rma(0, clk)); c != nil {
		t.Fatalf("Load;MPI_Get flagged: %+v", c)
	}
}

func TestTwoRMAWritesRace(t *testing.T) {
	// Even from the same origin: ordering within an epoch is undefined.
	m := NewMemory()
	m.Record(acc(0, 7, access.RMAWrite), rma(0, vc.Clock{1}))
	if c := m.Record(acc(0, 7, access.RMAWrite), rma(0, vc.Clock{2})); c == nil {
		t.Fatal("two RMA writes from one origin must race")
	}
}

func TestCrossRankLocalVsRMA(t *testing.T) {
	// Target's own store vs an incoming Put whose snapshot has not
	// observed the target: race.
	m := NewMemory()
	m.Record(acc(0, 7, access.LocalWrite), local(1, 9))
	snap := vc.New(2) // origin 0 knows nothing of rank 1
	if c := m.Record(acc(0, 7, access.RMAWrite), rma(0, snap)); c == nil {
		t.Fatal("store vs incoming Put must race")
	}
}

func TestReadReadNeverConflicts(t *testing.T) {
	m := NewMemory()
	m.Record(acc(0, 7, access.RMARead), rma(0, vc.Clock{1, 0}))
	if c := m.Record(acc(0, 7, access.RMARead), rma(1, vc.Clock{0, 1})); c != nil {
		t.Fatalf("read-read flagged: %+v", c)
	}
}

func TestWriteAfterConcurrentReadsCaught(t *testing.T) {
	// The local write comes from rank 1, so the memory is rank 1's
	// (stored entries retain only the owner's snapshot component).
	m := NewMemoryOwner(1)
	m.Record(acc(0, 7, access.RMARead), rma(0, vc.Clock{1, 0}))
	if c := m.Record(acc(0, 7, access.LocalWrite), local(1, 1)); c == nil {
		t.Fatal("write over a concurrent RMA read must race")
	}
}

func TestCompactionRetainsOwnerComponent(t *testing.T) {
	// A stored RMA entry keeps exactly the owner's snapshot component:
	// a later local access by the owner that the snapshot had observed
	// is still ordered before the task.
	m := NewMemoryOwner(1)
	m.Record(acc(0, 7, access.RMAWrite), rma(0, vc.Clock{3, 9}))
	// Owner's local read at time 9 was observed by the snapshot (9<=9):
	// ordered, no race despite the RMA write.
	if c := m.Record(acc(0, 7, access.LocalRead), local(1, 9)); c != nil {
		t.Fatalf("observed local access flagged: %+v", c)
	}
	// At time 10 it is concurrent: race.
	if c := m.Record(acc(0, 7, access.LocalRead), local(1, 10)); c == nil {
		t.Fatal("unobserved local access missed")
	}
}

func TestGranuleConflation(t *testing.T) {
	// Two distinct addresses within one 8-byte granule are conflated —
	// documented TSan-style imprecision.
	m := NewMemory()
	m.Record(acc(0, 0, access.RMAWrite), rma(0, vc.Clock{1}))
	if c := m.Record(acc(7, 7, access.RMAWrite), rma(0, vc.Clock{2})); c == nil {
		t.Fatal("same-granule accesses should be conflated")
	}
	// Distinct granules are independent.
	m2 := NewMemory()
	m2.Record(acc(0, 0, access.RMAWrite), rma(0, vc.Clock{1}))
	if c := m2.Record(acc(8, 8, access.RMAWrite), rma(0, vc.Clock{2})); c != nil {
		t.Fatalf("different granules conflated: %+v", c)
	}
}

func TestMultiGranuleSpan(t *testing.T) {
	m := NewMemory()
	m.Record(acc(0, 63, access.RMAWrite), rma(0, vc.Clock{1}))
	if m.Cells() != 8 {
		t.Fatalf("64-byte access should populate 8 cells, got %d", m.Cells())
	}
	// A conflicting access anywhere in the span is caught.
	if c := m.Record(acc(40, 41, access.LocalRead), local(0, 99)); c == nil {
		t.Fatal("overlap in the middle of a span missed")
	}
}

func TestClear(t *testing.T) {
	m := NewMemory()
	m.Record(acc(0, 7, access.RMAWrite), rma(0, vc.Clock{1}))
	m.Clear()
	if m.Cells() != 0 {
		t.Fatal("Clear left cells behind")
	}
	// After an epoch boundary the same locations are free to reuse.
	if c := m.Record(acc(0, 7, access.LocalWrite), local(0, 2)); c != nil {
		t.Fatalf("post-clear access conflicted: %+v", c)
	}
}

func TestRecordedCountsGranules(t *testing.T) {
	m := NewMemory()
	m.Record(acc(0, 31, access.LocalRead), local(0, 1)) // 4 granules
	m.Record(acc(0, 7, access.LocalRead), local(0, 2))  // 1 granule
	if m.Recorded != 5 {
		t.Fatalf("Recorded = %d, want 5", m.Recorded)
	}
}

func TestReadsBoundedPerRankClass(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 100; i++ {
		m.Record(acc(0, 0, access.RMARead), rma(0, vc.Clock{uint64(i)}))
		m.Record(acc(0, 0, access.LocalRead), local(0, uint64(i)))
	}
	c := m.cells[0]
	if len(c.reads) > 2 {
		t.Fatalf("reads list grew to %d entries; expected at most one per (rank, class)", len(c.reads))
	}
}

func TestWriteSupersedesReads(t *testing.T) {
	m := NewMemory()
	m.Record(acc(0, 0, access.LocalRead), local(0, 1))
	m.Record(acc(0, 0, access.LocalWrite), local(0, 2))
	c := m.cells[0]
	if len(c.reads) != 0 || c.lastWrite == nil {
		t.Fatal("write did not supersede read set")
	}
}
