package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

// genTrace renders one synthetic trace in the requested wire format.
func genTrace(t testing.TB, cfg trace.GenConfig, format string) []byte {
	t.Helper()
	var buf bytes.Buffer
	var sink trace.Sink
	var err error
	h := trace.Header{Ranks: cfg.Ranks, Window: "synthetic"}
	switch format {
	case "json":
		sink, err = trace.NewWriter(&buf, h)
	case "bin":
		sink, err = tracebin.NewWriter(&buf, h)
	default:
		t.Fatalf("unknown format %q", format)
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.GenerateTo(sink, cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func safeCfg(seed int64) trace.GenConfig {
	return trace.GenConfig{Ranks: 4, Events: 120, Epochs: 2, Owners: 4,
		Adjacency: 0.5, SafeOnly: true, Seed: seed}
}

func racyCfg(seed int64) trace.GenConfig {
	c := safeCfg(seed)
	c.PlantRace = true
	return c
}

// offline replays a trace exactly like `rmarace replay` would, with
// the default (contribution) analyzer — the ground truth every served
// verdict must match.
func offline(t testing.TB, data []byte) trace.ReplayResult {
	t.Helper()
	src, _, err := tracebin.Open(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	factory, _, err := NewAnalyzerFactory(detector.OurContribution, src.Head().Ranks, "", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.ReplayStream(src, factory, trace.ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// submit posts one trace body and decodes the verdict.
func submit(t testing.TB, client *http.Client, url, tenant string, body io.Reader, query string) (int, *Verdict) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/analyze"+query, body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	if err := json.Unmarshal(raw, &v); err != nil {
		// Error documents are {"error": ...}; return the status either way.
		return resp.StatusCode, nil
	}
	return resp.StatusCode, &v
}

func newTestDaemon(t testing.TB, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	d := NewDaemon(cfg)
	srv := httptest.NewServer(d)
	t.Cleanup(srv.Close)
	return d, srv
}

// TestVerdictsMatchOffline: one safe and one racy trace, both formats,
// served verdicts must agree with offline replay — same race message
// (byte-identical Fig. 9 line), same event/epoch/node counts.
func TestVerdictsMatchOffline(t *testing.T) {
	_, srv := newTestDaemon(t, Config{})
	for _, tc := range []struct {
		name string
		cfg  trace.GenConfig
	}{
		{"safe", safeCfg(3)},
		{"racy", racyCfg(4)},
	} {
		for _, format := range []string{"json", "bin"} {
			data := genTrace(t, tc.cfg, format)
			want := offline(t, data)
			code, v := submit(t, srv.Client(), srv.URL, "t0", bytes.NewReader(data), "")
			if code != http.StatusOK || v == nil {
				t.Fatalf("%s/%s: status %d", tc.name, format, code)
			}
			if v.Format != format {
				t.Errorf("%s/%s: sniffed format %q", tc.name, format, v.Format)
			}
			if v.Events != want.Events || v.Epochs != want.Epochs || v.MaxNodes != want.MaxNodes {
				t.Errorf("%s/%s: served %d ev / %d ep / %d nodes, offline %d / %d / %d",
					tc.name, format, v.Events, v.Epochs, v.MaxNodes, want.Events, want.Epochs, want.MaxNodes)
			}
			switch {
			case want.Race == nil && v.Race != nil:
				t.Errorf("%s/%s: served race %q, offline clean", tc.name, format, v.Race.Message)
			case want.Race != nil && v.Race == nil:
				t.Errorf("%s/%s: served clean, offline raced %q", tc.name, format, want.Race.Message())
			case want.Race != nil && v.Race.Message != want.Race.Message():
				t.Errorf("%s/%s: race message diverged:\n served  %s\n offline %s",
					tc.name, format, v.Race.Message, want.Race.Message())
			}
		}
	}
}

// TestConcurrentSessionsMatchOffline is the scale stress: >= 100
// concurrent sessions, mixed JSON/binary and mixed memory policies,
// every verdict identical to offline replay, under -race.
func TestConcurrentSessionsMatchOffline(t *testing.T) {
	const sessions = 104
	d, srv := newTestDaemon(t, Config{Workers: 8, MaxSessions: sessions, TenantSessions: sessions})

	// Four base traces (safe/racy × two seeds), each in both formats,
	// with offline ground truth computed once.
	type base struct {
		data []byte
		want trace.ReplayResult
	}
	var bases []base
	for seed := int64(0); seed < 2; seed++ {
		for _, cfg := range []trace.GenConfig{safeCfg(10 + seed), racyCfg(20 + seed)} {
			for _, format := range []string{"json", "bin"} {
				data := genTrace(t, cfg, format)
				bases = append(bases, base{data, offline(t, data)})
			}
		}
	}

	queries := []string{"", "?batch=64&evict=2&compact=true", "?evict=1", "?batch=16"}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		b := bases[i%len(bases)]
		q := queries[i%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", i%7)
			code, v := submit(t, srv.Client(), srv.URL, tenant, bytes.NewReader(b.data), q)
			if code != http.StatusOK || v == nil {
				errs <- fmt.Errorf("session %d: status %d", i, code)
				return
			}
			if (b.want.Race == nil) != (v.Race == nil) {
				errs <- fmt.Errorf("session %d (%s): verdict diverged from offline (offline race: %v, served race: %v)",
					i, q, b.want.Race != nil, v.Race != nil)
				return
			}
			if b.want.Race != nil && v.Race.Message != b.want.Race.Message() {
				errs <- fmt.Errorf("session %d (%s): race message diverged:\n served  %s\n offline %s",
					i, q, v.Race.Message, b.want.Race.Message())
				return
			}
			// The unbatched, no-eviction sessions must also reproduce the
			// counts exactly (batched racy replays may stop later).
			if q == "" && (v.Events != b.want.Events || v.Epochs != b.want.Epochs || v.MaxNodes != b.want.MaxNodes) {
				errs <- fmt.Errorf("session %d: counts diverged: served %d/%d/%d, offline %d/%d/%d",
					i, v.Events, v.Epochs, v.MaxNodes, b.want.Events, b.want.Epochs, b.want.MaxNodes)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := d.Registry().Total(obs.ServeSessions); got != sessions {
		t.Errorf("serve_sessions_total = %d, want %d", got, sessions)
	}
	if got := d.Registry().Total(obs.ServeActiveSessions); got != 0 {
		t.Errorf("serve_active_sessions = %d after drain, want 0", got)
	}
	if got := d.Registry().Total(obs.TraceIngestRecords); got <= 0 {
		t.Errorf("daemon registry saw no aggregate ingest records")
	}
}

// TestTenantQuotaRejects: a tenant at its concurrency quota gets 429
// before any body is read, the rejection is counted per tenant, and an
// unrelated tenant is unaffected.
func TestTenantQuotaRejects(t *testing.T) {
	d, srv := newTestDaemon(t, Config{Workers: 4, MaxSessions: 8, TenantSessions: 1})

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, _ := submit(t, srv.Client(), srv.URL, "hog", pr, "")
		if code != http.StatusOK {
			t.Errorf("held-open session finished with %d", code)
		}
	}()
	// Wait until the hog's session is admitted (active gauge moves).
	deadline := time.Now().Add(5 * time.Second)
	for d.Registry().Total(obs.ServeActiveSessions) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("held-open session never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, _ := submit(t, srv.Client(), srv.URL, "hog", bytes.NewReader(genTrace(t, safeCfg(1), "bin")), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant got %d, want 429", code)
	}
	if got := d.Registry().Total(obs.ServeQuotaRejects); got != 1 {
		t.Errorf("serve_quota_rejects = %d, want 1", got)
	}
	// A different tenant still gets in.
	code, v := submit(t, srv.Client(), srv.URL, "polite", bytes.NewReader(genTrace(t, safeCfg(1), "json")), "")
	if code != http.StatusOK || v == nil || v.Race != nil {
		t.Fatalf("unrelated tenant rejected: %d", code)
	}

	// Release the hog: stream it a real trace so it completes cleanly.
	if _, err := pw.Write(genTrace(t, safeCfg(2), "json")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	<-done

	// The rejection is scrapeable, labelled with the hog's tenant name
	// (the daemon's snapshot resolves interned ids to names).
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), `rmarace_serve_quota_rejects{tenant="hog"} 1`) {
		t.Errorf("/metrics missing quota rejection:\n%s", prom)
	}
	// And /v1/tenants resolves the label back to the name.
	resp, err = srv.Client().Get(srv.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var tenants map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&tenants); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id, ok := tenants["hog"]; !ok || id != 0 {
		t.Errorf("tenant mapping %v, want hog=0", tenants)
	}
}

// TestDaemonCapacityRejects: the daemon-wide cap rejects even a fresh
// tenant.
func TestDaemonCapacityRejects(t *testing.T) {
	d, srv := newTestDaemon(t, Config{Workers: 2, MaxSessions: 1, TenantSessions: 1})
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		submit(t, srv.Client(), srv.URL, "a", pr, "")
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.Registry().Total(obs.ServeActiveSessions) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, _ := submit(t, srv.Client(), srv.URL, "b", bytes.NewReader(genTrace(t, safeCfg(1), "bin")), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity session got %d, want 429", code)
	}
	if _, err := pw.Write(genTrace(t, safeCfg(2), "json")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	<-done
}

// TestSessionQuotas: per-session byte and record limits abort the
// stream with 413 and count serve_limit_aborts.
func TestSessionQuotas(t *testing.T) {
	big := genTrace(t, trace.GenConfig{Ranks: 4, Events: 2000, Epochs: 2, Adjacency: 0.5, SafeOnly: true, Seed: 9}, "bin")

	d, srv := newTestDaemon(t, Config{MaxSessionRecords: 100})
	code, _ := submit(t, srv.Client(), srv.URL, "t", bytes.NewReader(big), "")
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("record-quota session got %d, want 413", code)
	}
	if got := d.Registry().Total(obs.ServeLimitAborts); got != 1 {
		t.Errorf("serve_limit_aborts = %d, want 1", got)
	}

	d2, srv2 := newTestDaemon(t, Config{MaxSessionBytes: 512})
	code, _ = submit(t, srv2.Client(), srv2.URL, "t", bytes.NewReader(big), "")
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("byte-quota session got %d, want 413", code)
	}
	if got := d2.Registry().Total(obs.ServeLimitAborts); got != 1 {
		t.Errorf("serve_limit_aborts = %d, want 1", got)
	}
}

// TestSessionAPI: verdict, report, postmortem and listing endpoints
// over a racy flight-recorded session and a failed one.
func TestSessionAPI(t *testing.T) {
	_, srv := newTestDaemon(t, Config{})
	client := srv.Client()

	racy := genTrace(t, racyCfg(5), "bin")
	code, v := submit(t, client, srv.URL, "api", bytes.NewReader(racy), "?flight=16")
	if code != http.StatusOK || v == nil || v.Race == nil {
		t.Fatalf("racy session: %d %+v", code, v)
	}

	get := func(path string) (int, string) {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Verdict by id.
	code, body := get("/v1/sessions/" + v.Session)
	if code != http.StatusOK || !strings.Contains(body, v.Race.Message) {
		t.Fatalf("session verdict endpoint: %d %s", code, body)
	}
	// Structured report parses under the strict reader.
	code, body = get("/v1/sessions/" + v.Session + "/report")
	if code != http.StatusOK {
		t.Fatalf("report endpoint: %d", code)
	}
	rep, err := obs.ReadReport(strings.NewReader(body))
	if err != nil {
		t.Fatalf("session report invalid: %v", err)
	}
	if rep.Source != "serve" || len(rep.Races) != 1 {
		t.Fatalf("report source %q, %d races", rep.Source, len(rep.Races))
	}
	// Postmortem renders the flight recording with conflict markers.
	code, body = get("/v1/sessions/" + v.Session + "/postmortem")
	if code != http.StatusOK || !strings.Contains(body, "RACE:") || !strings.Contains(body, ">>") {
		t.Fatalf("postmortem endpoint: %d\n%s", code, body)
	}

	// A failed session keeps its error and serves 503 for the report.
	code, fv := submit(t, client, srv.URL, "api", strings.NewReader("not a trace\n"), "")
	if code != http.StatusBadRequest {
		t.Fatalf("garbage body got %d, want 400", code)
	}
	_ = fv
	code, body = get("/v1/sessions")
	if code != http.StatusOK || !strings.Contains(body, `"failed"`) || !strings.Contains(body, v.Session) {
		t.Fatalf("session listing: %d\n%s", code, body)
	}
	var list []*Verdict
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	var failedID string
	for _, s := range list {
		if s.State == "failed" {
			failedID = s.Session
		}
	}
	if failedID == "" {
		t.Fatal("failed session missing from listing")
	}
	code, _ = get("/v1/sessions/" + failedID + "/report")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failed session report: %d, want 503", code)
	}
	code, _ = get("/v1/sessions/" + failedID + "/postmortem")
	if code != http.StatusNotFound {
		t.Fatalf("failed session postmortem: %d, want 404", code)
	}

	// Bad parameters are 400s before admission.
	if code, _ := submit(t, client, srv.URL, "api", bytes.NewReader(racy), "?method=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad method param: %d, want 400", code)
	}
	if code, _ := submit(t, client, srv.URL, "api", bytes.NewReader(racy), "?shards=0"); code != http.StatusBadRequest {
		t.Fatalf("bad shards param: %d, want 400", code)
	}
	if code, _ := submit(t, client, srv.URL, "api", bytes.NewReader(racy), "?store=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad store param: %d, want 400", code)
	}
}

// TestRetention: completed sessions beyond Retain are evicted oldest
// first.
func TestRetention(t *testing.T) {
	_, srv := newTestDaemon(t, Config{Retain: 2})
	data := genTrace(t, safeCfg(6), "json")
	var ids []string
	for i := 0; i < 3; i++ {
		code, v := submit(t, srv.Client(), srv.URL, "r", bytes.NewReader(data), "")
		if code != http.StatusOK {
			t.Fatal(code)
		}
		ids = append(ids, v.Session)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/sessions/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still served: %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		resp, err := srv.Client().Get(srv.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retained session %s: %d", id, resp.StatusCode)
		}
	}
}

// TestMethodAndShardParams: sessions can pick the analysis method and
// shard count per request; a sharded contribution session still agrees
// with the unsharded offline verdict.
func TestMethodAndShardParams(t *testing.T) {
	_, srv := newTestDaemon(t, Config{})
	racy := genTrace(t, racyCfg(7), "bin")
	want := offline(t, racy)
	if want.Race == nil {
		t.Fatal("planted race not detected offline")
	}
	code, v := submit(t, srv.Client(), srv.URL, "m", bytes.NewReader(racy), "?shards=4")
	if code != http.StatusOK || v.Race == nil {
		t.Fatalf("sharded session: %d, race %v", code, v.Race)
	}
	code, v = submit(t, srv.Client(), srv.URL, "m", bytes.NewReader(racy), "?method=must-rma")
	if code != http.StatusOK || v == nil {
		t.Fatalf("must-rma session: %d", code)
	}
	if v.Method != detector.MustRMAMethod.String() {
		t.Fatalf("method %q", v.Method)
	}
}
