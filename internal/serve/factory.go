package serve

import (
	"fmt"

	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/rma"
	"rmarace/internal/store"
	"rmarace/internal/trace"
)

// NewAnalyzerFactory builds the per-owner analyzer constructor every
// replay surface shares — `rmarace replay`, `rmarace postmortem` and
// the daemon's sessions all analyse through it, so a served verdict is
// produced by exactly the code path an offline replay uses. It returns
// the MUST-RMA shared clock state (nil for the other methods) so
// callers can publish its representation stats after the run.
func NewAnalyzerFactory(method detector.Method, ranks int, storeName string, shards int, rec obs.Recorder) (func(int) detector.Analyzer, *detector.MustShared, error) {
	// Validate the backend name once, up front: the per-owner
	// constructor below runs deep inside a replay loop where an
	// "unknown store" error has nowhere civilised to go.
	if _, err := store.New(storeName); err != nil {
		return nil, nil, err
	}
	if shards < 1 {
		return nil, nil, fmt.Errorf("serve: shard count %d out of range", shards)
	}
	var shared *detector.MustShared
	if method == detector.MustRMAMethod {
		shared = detector.NewMustShared(ranks)
	}
	recording := rec != nil && rec.Enabled()
	// Each analyzer owns its backend, so one is built per owner. The
	// name was validated above, so the rebuild cannot fail.
	newStore := func(owner int) store.AccessStore {
		st, _ := store.New(storeName)
		if recording {
			st = store.Instrument(st, rec, owner)
		}
		return st
	}
	factory := func(owner int) detector.Analyzer {
		switch method {
		case detector.Baseline:
			return detector.NewBaseline()
		case detector.RMAAnalyzer:
			if storeName != "" {
				return detector.NewLegacyWithStore(newStore(owner))
			}
			return detector.NewLegacy()
		case detector.MustRMAMethod:
			return detector.NewMustRMA(shared, owner)
		default:
			opts := []core.Option{core.WithOwner(owner)}
			if storeName != "" {
				opts = append(opts, core.WithStoreFactory(func() store.AccessStore { return newStore(owner) }))
			}
			if shards > 1 {
				opts = append(opts, core.WithShards(shards))
			}
			if recording {
				opts = append(opts, core.WithRecorder(rec, owner))
			}
			return core.Build(opts...)
		}
	}
	return factory, shared, nil
}

// RecordClockStats publishes the MUST-RMA clock-representation
// counters as registry gauges so replay reports, session reports and
// `rmarace stats` expose them. A nil registry or shared state is a
// no-op.
func RecordClockStats(reg *obs.Registry, shared *detector.MustShared) {
	if reg == nil || shared == nil {
		return
	}
	cs := shared.ClockStats()
	reg.Set(obs.ClockPromotions, 0, int64(cs.Promotions))
	reg.Set(obs.ClockDemotions, 0, int64(cs.Demotions))
	reg.Set(obs.ClockEpochSnapshots, 0, int64(cs.EpochSnaps))
	reg.Set(obs.ClockSharedSnapshots, 0, int64(cs.SharedSnaps))
	reg.Set(obs.ClockVectorSnapshots, 0, int64(cs.VectorSnaps))
	reg.Set(obs.ClockBytes, 0, int64(cs.BytesAdaptive))
	reg.Set(obs.ClockBytesVector, 0, int64(cs.BytesVector))
	reg.Set(obs.ClockEpochsHeld, 0, int64(cs.EpochsHeld))
	reg.Set(obs.ClockFullLive, 0, int64(cs.FullClocksLive))
}

// ReplayReport converts a replay result plus the metrics registry into
// the structured rmarace/run-report/v1 document — the shared builder
// behind `rmarace replay -report`, the telemetry /report callback and
// the daemon's per-session reports. source says what produced it
// ("replay", "serve").
func ReplayReport(source string, h trace.Header, method detector.Method, res trace.ReplayResult, reg *obs.Registry) *obs.RunReport {
	rep := &obs.RunReport{
		Schema:   obs.ReportSchema,
		Source:   source,
		Method:   method.String(),
		Ranks:    h.Ranks,
		Events:   int64(res.Events),
		Epochs:   int64(res.Epochs),
		MaxNodes: int64(res.MaxNodes),
	}
	// Older traces may omit the window name; the schema rejects
	// anonymous windows, so only emit the section when named.
	if h.Window != "" {
		rep.Windows = []obs.WindowReport{{
			Name:          h.Window,
			TotalMaxNodes: res.MaxNodes,
			Accesses:      uint64(res.Events),
		}}
	}
	if reg != nil {
		rep.EpochLatency = obs.EpochLatencyFromRegistry(reg)
		rep.Metrics = reg.Snapshot()
	}
	if res.Race != nil {
		rep.Races = append(rep.Races, rma.RaceReport(res.Race))
	}
	return rep
}
