package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"rmarace/internal/obs"
)

// SubmitOpts parameterises one client submission to a daemon.
type SubmitOpts struct {
	// Tenant is sent as the X-Tenant header ("" stays anonymous).
	Tenant string
	// Query carries the analysis parameters (?method=, ?spans=1, ...).
	Query url.Values
	// Retries is how many extra attempts a 429 admission reject earns,
	// each delayed by the response's Retry-After hint. 0 fails fast.
	Retries int
	// Client overrides http.DefaultClient.
	Client *http.Client
}

// Submit streams one trace body to a daemon's analyze endpoint and
// decodes the response. open re-opens the body per attempt — a retried
// upload must restart from byte zero, so the caller supplies the
// rewind. Returns the final HTTP status and the decoded document
// (error responses decode too: their message lands in Verdict.Error);
// the error return covers transport and decoding failures only.
func Submit(ctx context.Context, baseURL string, open func() (io.ReadCloser, error), o SubmitOpts) (int, *Verdict, error) {
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	target := strings.TrimSuffix(baseURL, "/") + "/v1/analyze"
	if len(o.Query) > 0 {
		target += "?" + o.Query.Encode()
	}
	for attempt := 0; ; attempt++ {
		body, err := open()
		if err != nil {
			return 0, nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, body)
		if err != nil {
			body.Close()
			return 0, nil, err
		}
		if o.Tenant != "" {
			req.Header.Set("X-Tenant", o.Tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < o.Retries {
			select {
			case <-time.After(retryAfterHint(resp.Header.Get("Retry-After"))):
				continue
			case <-ctx.Done():
				return resp.StatusCode, nil, ctx.Err()
			}
		}
		var v Verdict
		if err := json.Unmarshal(raw, &v); err != nil {
			return resp.StatusCode, nil, fmt.Errorf("serve: unparseable daemon response (%s): %w", resp.Status, err)
		}
		return resp.StatusCode, &v, nil
	}
}

// retryAfterHint parses a Retry-After header's delay-seconds form,
// falling back to one second (the spec's HTTP-date form isn't worth
// parsing for a backoff hint).
func retryAfterHint(h string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// Watch subscribes to a session's live event stream and blocks until
// its terminal verdict arrives (replayed immediately for a session
// that already finished). onProgress, when non-nil, is invoked for
// every progress event on the stream.
func Watch(ctx context.Context, baseURL, session string, client *http.Client, onProgress func(obs.ProgressSnapshot)) (*Verdict, error) {
	if client == nil {
		client = http.DefaultClient
	}
	u := strings.TrimSuffix(baseURL, "/") + "/v1/sessions/" + url.PathEscape(session) + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("serve: watch %s: %s", session, e.Error)
		}
		return nil, fmt.Errorf("serve: watch %s: daemon answered %s", session, resp.Status)
	}

	// Minimal SSE consumer: `event:` names the type, `data:` lines
	// accumulate the payload, a blank line dispatches.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	event := ""
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):])...)
		case line == "":
			switch event {
			case "progress":
				if onProgress != nil {
					var snap obs.ProgressSnapshot
					if json.Unmarshal(data, &snap) == nil {
						onProgress(snap)
					}
				}
			case "verdict":
				var v Verdict
				if err := json.Unmarshal(data, &v); err != nil {
					return nil, fmt.Errorf("serve: unparseable verdict event: %w", err)
				}
				return &v, nil
			}
			event, data = "", nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("serve: event stream of session %s ended without a verdict", session)
}
