package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rmarace/internal/obs"
)

// waitSessions polls the session list until n sessions exist, returning
// them newest first.
func waitSessions(t testing.TB, client *http.Client, base string, n int) []*Verdict {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		var list []*Verdict
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list) >= n {
			return list
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d sessions (have %d)", n, len(list))
		}
		time.Sleep(time.Millisecond)
	}
}

// postAsync streams body to the analyze endpoint in the background and
// delivers the decoded response document.
func postAsync(client *http.Client, base, tenant string, body io.Reader) chan *Verdict {
	ch := make(chan *Verdict, 1)
	go func() {
		req, err := http.NewRequest("POST", base+"/v1/analyze", body)
		if err != nil {
			ch <- nil
			return
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			ch <- nil
			return
		}
		var v Verdict
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			ch <- nil
			return
		}
		ch <- &v
	}()
	return ch
}

type watchResult struct {
	v     *Verdict
	snaps []obs.ProgressSnapshot
	err   error
}

// watchAsync subscribes to a session's event stream in the background,
// collecting every progress snapshot until the terminal verdict.
func watchAsync(client *http.Client, base, session string) chan watchResult {
	ch := make(chan watchResult, 1)
	go func() {
		var snaps []obs.ProgressSnapshot
		v, err := Watch(context.Background(), base, session, client, func(s obs.ProgressSnapshot) {
			snaps = append(snaps, s)
		})
		ch <- watchResult{v: v, snaps: snaps, err: err}
	}()
	return ch
}

// checkTerminal asserts the invariants every finished watch shares: at
// least one progress event, monotone counters, a terminal last
// snapshot, and a done verdict for the expected session.
func checkTerminal(t *testing.T, res watchResult, session string) {
	t.Helper()
	if res.err != nil {
		t.Fatalf("watch: %v", res.err)
	}
	if res.v == nil || res.v.Session != session || res.v.State != "done" {
		t.Fatalf("terminal verdict = %+v, want done session %s", res.v, session)
	}
	if len(res.snaps) == 0 {
		t.Fatal("no progress events before the verdict")
	}
	for i := 1; i < len(res.snaps); i++ {
		if res.snaps[i].Records < res.snaps[i-1].Records || res.snaps[i].Events < res.snaps[i-1].Events {
			t.Fatalf("counters went backwards: %+v -> %+v", res.snaps[i-1], res.snaps[i])
		}
	}
	if last := res.snaps[len(res.snaps)-1]; last.Stage != "done" {
		t.Fatalf("last progress stage = %q, want done", last.Stage)
	}
}

// TestEventsMidStream: subscribe while a chunked upload is in flight;
// the stream must carry multiple progress events with moving counters
// and finish with the verdict.
func TestEventsMidStream(t *testing.T) {
	_, srv := newTestDaemon(t, Config{EventPoll: 2 * time.Millisecond})
	cfg := safeCfg(11)
	cfg.Events = 4000
	data := genTrace(t, cfg, "json")

	pr, pw := io.Pipe()
	done := postAsync(srv.Client(), srv.URL, "streamer", pr)
	if _, err := pw.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	id := waitSessions(t, srv.Client(), srv.URL, 1)[0].Session
	watch := watchAsync(srv.Client(), srv.URL, id)
	// Let the watcher see the half-fed state before the rest arrives.
	time.Sleep(10 * time.Millisecond)
	if _, err := pw.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-watch
	checkTerminal(t, res, id)
	if len(res.snaps) < 2 {
		t.Fatalf("want >=2 progress events mid-stream, got %d", len(res.snaps))
	}
	v := <-done
	if v == nil || v.Session != id || v.State != "done" {
		t.Fatalf("submit verdict = %+v", v)
	}
	if last := res.snaps[len(res.snaps)-1]; last.Records == 0 || last.Events != int64(v.Events) {
		t.Fatalf("final progress %+v disagrees with verdict events %d", last, v.Events)
	}
}

// TestEventsQueuedSession: a watcher who subscribes before the session
// gets a worker slot sees stage "queued" first, then the session's
// whole lifecycle through to the verdict.
func TestEventsQueuedSession(t *testing.T) {
	_, srv := newTestDaemon(t, Config{Workers: 2, MaxSessions: 8, EventPoll: 2 * time.Millisecond})

	// Occupy both worker slots with stalled uploads.
	var hogWriters []*io.PipeWriter
	var hogDone []chan *Verdict
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		hogWriters = append(hogWriters, pw)
		hogDone = append(hogDone, postAsync(srv.Client(), srv.URL, fmt.Sprintf("hog%d", i), pr))
		waitSessions(t, srv.Client(), srv.URL, i+1)
	}

	// The third session queues on the pool semaphore.
	pr, pw := io.Pipe()
	done := postAsync(srv.Client(), srv.URL, "queued", pr)
	id := waitSessions(t, srv.Client(), srv.URL, 3)[0].Session
	watch := watchAsync(srv.Client(), srv.URL, id)

	// Release the hogs, then feed the queued session.
	for _, w := range hogWriters {
		if _, err := w.Write(genTrace(t, safeCfg(1), "json")); err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	if _, err := pw.Write(genTrace(t, safeCfg(2), "json")); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-watch
	checkTerminal(t, res, id)
	if first := res.snaps[0]; first.Stage != "queued" {
		t.Fatalf("first progress stage = %q, want queued (subscribed before start)", first.Stage)
	}
	if v := <-done; v == nil || v.State != "done" {
		t.Fatalf("queued session verdict = %+v", v)
	}
	for _, ch := range hogDone {
		if v := <-ch; v == nil || v.State != "done" {
			t.Fatalf("hog verdict = %+v", v)
		}
	}
}

// TestEventsConcurrentSubscribers: many watchers on one live session
// (and more after it completes) all see the same terminal verdict.
// Run under -race, this exercises the probe's lock-free read side.
func TestEventsConcurrentSubscribers(t *testing.T) {
	_, srv := newTestDaemon(t, Config{EventPoll: 2 * time.Millisecond})
	cfg := safeCfg(13)
	cfg.Events = 4000
	data := genTrace(t, cfg, "json")

	pr, pw := io.Pipe()
	done := postAsync(srv.Client(), srv.URL, "crowd", pr)
	if _, err := pw.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	id := waitSessions(t, srv.Client(), srv.URL, 1)[0].Session

	const watchers = 6
	var chans [watchers]chan watchResult
	for i := range chans {
		chans[i] = watchAsync(srv.Client(), srv.URL, id)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := pw.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	for _, ch := range chans {
		checkTerminal(t, <-ch, id)
	}
	if v := <-done; v == nil || v.State != "done" {
		t.Fatalf("session verdict = %+v", v)
	}

	// Late subscribers get the terminal state replayed.
	var late sync.WaitGroup
	for i := 0; i < 3; i++ {
		late.Add(1)
		go func() {
			defer late.Done()
			res := <-watchAsync(srv.Client(), srv.URL, id)
			if res.err != nil || res.v == nil || res.v.State != "done" {
				t.Errorf("late watcher: %+v err=%v", res.v, res.err)
			}
			if len(res.snaps) == 0 || res.snaps[0].Stage != "done" {
				t.Errorf("late watcher progress = %+v, want replayed done stage", res.snaps)
			}
		}()
	}
	late.Wait()
}

// TestSpansEndpoint: a ?spans=1 session serves a loadable Chrome-trace
// JSON timeline; sessions without capture answer 404.
func TestSpansEndpoint(t *testing.T) {
	_, srv := newTestDaemon(t, Config{})
	code, v := submit(t, srv.Client(), srv.URL, "spanner",
		bytes.NewReader(genTrace(t, safeCfg(5), "json")), "?spans=1&spandepth=256")
	if code != http.StatusOK || v == nil {
		t.Fatalf("submit = %d %+v", code, v)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/sessions/" + v.Session + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/spans content-type %q", ct)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("span timeline is not a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("span timeline is empty")
	}
	for _, ev := range events[:min(len(events), 16)] {
		if _, ok := ev["ph"].(string); !ok {
			t.Fatalf("event without a phase: %v", ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event without a name: %v", ev)
		}
	}

	// No capture requested -> 404 with the hint.
	code2, v2 := submit(t, srv.Client(), srv.URL, "spanner",
		bytes.NewReader(genTrace(t, safeCfg(6), "json")), "")
	if code2 != http.StatusOK || v2 == nil {
		t.Fatalf("second submit = %d", code2)
	}
	resp2, err := srv.Client().Get(srv.URL + "/v1/sessions/" + v2.Session + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("spanless session /spans status = %d, want 404", resp2.StatusCode)
	}
}

// TestStageLatencyHistograms: one served session leaves its per-stage
// wall time in the daemon's /metrics and in the session's own report.
func TestStageLatencyHistograms(t *testing.T) {
	_, srv := newTestDaemon(t, Config{})
	code, v := submit(t, srv.Client(), srv.URL, "stages",
		bytes.NewReader(genTrace(t, safeCfg(9), "json")), "")
	if code != http.StatusOK || v == nil {
		t.Fatalf("submit = %d", code)
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, m := range []string{
		`rmarace_serve_stage_ingest_nanos_count{tenant="stages"} 1`,
		`rmarace_serve_stage_drain_nanos_count{tenant="stages"} 1`,
		`rmarace_serve_stage_report_nanos_count{tenant="stages"} 1`,
	} {
		if !strings.Contains(string(prom), m) {
			t.Errorf("/metrics missing %q", m)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/sessions/" + v.Session + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(rep), `"serve_stage_ingest_nanos"`) ||
		!strings.Contains(string(rep), `"serve_stage_drain_nanos"`) {
		t.Error("session report missing stage-latency histograms")
	}
}

// TestHostileTenantNameEscaped: a tenant name carrying quote,
// backslash and newline (reachable via the tenant query parameter)
// must not corrupt the Prometheus exposition.
func TestHostileTenantNameEscaped(t *testing.T) {
	_, srv := newTestDaemon(t, Config{})
	name := "evil\"x\\y\nz"
	code, v := submit(t, srv.Client(), srv.URL, "",
		bytes.NewReader(genTrace(t, safeCfg(4), "json")), "?tenant="+url.QueryEscape(name))
	if code != http.StatusOK || v == nil || v.Tenant != name {
		t.Fatalf("submit = %d %+v", code, v)
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `rmarace_serve_sessions_total{tenant="evil\"x\\y\nz"} 1`
	if !strings.Contains(string(prom), want) {
		t.Errorf("/metrics missing escaped tenant label %q", want)
	}
	if strings.Contains(string(prom), "evil\"x") {
		t.Error("/metrics leaked an unescaped tenant name")
	}
}

// TestAdmissionRejectRetryAfter: a 429 carries the configured
// Retry-After hint and a JSON error body.
func TestAdmissionRejectRetryAfter(t *testing.T) {
	_, srv := newTestDaemon(t, Config{MaxSessions: 1, RetryAfter: 3 * time.Second})
	pr, pw := io.Pipe()
	done := postAsync(srv.Client(), srv.URL, "hog", pr)
	waitSessions(t, srv.Client(), srv.URL, 1)

	req, err := http.NewRequest("POST", srv.URL+"/v1/analyze", bytes.NewReader(genTrace(t, safeCfg(1), "json")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "turned-away")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("429 content-type = %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("429 body is not a JSON error document: %q", body)
	}

	if _, err := pw.Write(genTrace(t, safeCfg(2), "json")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	<-done
}

// TestSubmitRetriesOn429: the client retries a 429 per its Retry-After
// hint, re-opening the body each attempt, and gives up when out of
// retries.
func TestSubmitRetriesOn429(t *testing.T) {
	data := []byte("trace body")
	var mu sync.Mutex
	attempts := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ := io.ReadAll(r.Body)
		if !bytes.Equal(got, data) {
			t.Errorf("attempt body = %q, want full re-sent body", got)
		}
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"daemon at capacity"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"session":"s-000001","state":"done","method":"our-contribution"}`)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	opens := 0
	open := func() (io.ReadCloser, error) {
		opens++
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	status, v, err := Submit(context.Background(), srv.URL, open, SubmitOpts{Tenant: "t", Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || v == nil || v.Session != "s-000001" {
		t.Fatalf("Submit = %d %+v", status, v)
	}
	if attempts != 2 || opens != 2 {
		t.Fatalf("attempts=%d opens=%d, want 2/2", attempts, opens)
	}

	// No retries: the 429 surfaces with its decoded error.
	attempts = 0
	status, v, err = Submit(context.Background(), srv.URL, open, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests || v == nil || v.Error != "daemon at capacity" {
		t.Fatalf("no-retry Submit = %d %+v", status, v)
	}
}
