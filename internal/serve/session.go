package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/obs/span"
	"rmarace/internal/rma"
	"rmarace/internal/trace"
)

// Session is one tenant's analysis of one trace stream. The ingest
// handler mutates it while streaming; the session API reads it, so
// every cross-field access goes through the mutex.
type Session struct {
	ID      string
	Tenant  string
	Opts    SessionOpts
	Started time.Time

	// prog is the session's live-progress probe: the replay loop
	// publishes through it, the SSE event stream reads it. Always
	// present — the probe is a few atomics, not worth an opt-in.
	prog *obs.Progress
	// done closes when the session reaches a terminal state, waking
	// event-stream watchers without polling to the end.
	done chan struct{}

	mu      sync.Mutex
	state   string // "running", "done", "failed"
	format  string // "json" or "bin", once sniffed
	errMsg  string
	elapsed time.Duration
	head    trace.Header
	res     trace.ReplayResult
	report  *obs.RunReport
	spans   *span.Tracer // per-session span capture (?spans=1), else nil
}

// newSession builds a running session with a live progress probe.
func newSession(tenant string, opts SessionOpts) *Session {
	return &Session{
		Tenant:  tenant,
		Opts:    opts,
		Started: time.Now(),
		prog:    obs.NewProgress(),
		done:    make(chan struct{}),
	}
}

// Verdict is the session summary the API serves: the analysis outcome
// in one JSON document. Race, when set, is the same report section
// `rmarace replay -report` writes (its Message is the paper-exact
// Fig. 9 line), so a served verdict is directly comparable to an
// offline replay of the same trace.
type Verdict struct {
	Session   string          `json:"session"`
	Tenant    string          `json:"tenant"`
	State     string          `json:"state"`
	Format    string          `json:"format,omitempty"`
	Method    string          `json:"method"`
	Ranks     int             `json:"ranks,omitempty"`
	Events    int             `json:"events"`
	Epochs    int             `json:"epochs"`
	MaxNodes  int             `json:"max_nodes"`
	Evictions int64           `json:"evictions,omitempty"`
	ElapsedNs int64           `json:"elapsed_ns,omitempty"`
	Race      *obs.RaceReport `json:"race,omitempty"`
	Error     string          `json:"error,omitempty"`
}

func (s *Session) setFormat(format string) {
	s.mu.Lock()
	s.format = format
	s.mu.Unlock()
}

// finish records a completed replay and wakes event-stream watchers.
func (s *Session) finish(head trace.Header, res trace.ReplayResult, rep *obs.RunReport) {
	s.mu.Lock()
	s.state = "done"
	s.head = head
	s.res = res
	s.report = rep
	s.elapsed = time.Since(s.Started)
	s.mu.Unlock()
	// The replay already published the final counters at EOF; only the
	// terminal stage transition is the session's to make.
	s.prog.SetStage(obs.StageDone)
	s.closeDone()
}

// fail records an aborted session and wakes event-stream watchers.
func (s *Session) fail(err error) {
	s.mu.Lock()
	s.state = "failed"
	s.errMsg = err.Error()
	s.elapsed = time.Since(s.Started)
	s.mu.Unlock()
	s.prog.SetStage(obs.StageFailed)
	s.closeDone()
}

func (s *Session) closeDone() {
	if s.done == nil {
		return
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// setSpans attaches the session's span tracer (span capture opted in).
func (s *Session) setSpans(tr *span.Tracer) {
	s.mu.Lock()
	s.spans = tr
	s.mu.Unlock()
}

// Spans returns the session's span tracer, nil unless captured.
func (s *Session) Spans() *span.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spans
}

// Progress returns the session's live-progress probe.
func (s *Session) Progress() *obs.Progress { return s.prog }

// Verdict snapshots the session as its API document.
func (s *Session) Verdict() *Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &Verdict{
		Session:   s.ID,
		Tenant:    s.Tenant,
		State:     s.state,
		Format:    s.format,
		Method:    s.Opts.Method.String(),
		Ranks:     s.head.Ranks,
		Events:    s.res.Events,
		Epochs:    s.res.Epochs,
		MaxNodes:  s.res.MaxNodes,
		Evictions: s.res.Evictions,
		ElapsedNs: s.elapsed.Nanoseconds(),
		Error:     s.errMsg,
	}
	if s.state == "" {
		v.State = "running"
	}
	if s.res.Race != nil {
		rr := rma.RaceReport(s.res.Race)
		// The verdict is a summary; the flight recording stays on the
		// postmortem endpoint.
		rr.Flight = nil
		v.Race = &rr
	}
	return v
}

// Report returns the session's rmarace/run-report/v1 document, nil
// while streaming or after a failure.
func (s *Session) Report() *obs.RunReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Race returns the detected race, nil if the session was clean.
func (s *Session) Race() *detector.Race {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res.Race
}

// sortVerdicts orders a session listing newest first (ids are
// monotonic, so reverse-lexicographic over the fixed-width id works).
func sortVerdicts(list []*Verdict) {
	sort.Slice(list, func(i, j int) bool { return list[i].Session > list[j].Session })
}

// Quota sentinels: mapped to 413 by the ingest handler and counted in
// serve_limit_aborts.
var (
	errByteQuota   = errors.New("session byte quota exceeded")
	errRecordQuota = errors.New("session record quota exceeded")
)

// limitedBody enforces the per-session ingest byte quota on the raw
// request body, underneath the format sniffer, so both codecs are
// covered by one meter.
type limitedBody struct {
	r         io.Reader
	remaining int64
	unlimited bool
}

func (l *limitedBody) Read(p []byte) (int, error) {
	if l.unlimited {
		return l.r.Read(p)
	}
	if l.remaining <= 0 {
		return 0, errByteQuota
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

// limitSource enforces the per-session record quota on any trace
// source.
type limitSource struct {
	trace.Source
	max int64
	n   int64
}

func (s *limitSource) Read(rec *trace.Record) error {
	if s.max > 0 && s.n >= s.max {
		return fmt.Errorf("serve: %w (limit %d)", errRecordQuota, s.max)
	}
	err := s.Source.Read(rec)
	if err == nil {
		s.n++
	}
	return err
}
