package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleEvents is the live progress stream: one Server-Sent Events
// response per watcher, fed by polling the session's lock-free progress
// probe (no hub, no per-watcher state in the session). The protocol is
// two event types:
//
//	event: progress   data: obs.ProgressSnapshot JSON — emitted on
//	                  subscribe and whenever the probe publishes
//	                  (stage transitions always publish, so every
//	                  stream sees queued/ingesting/draining go by)
//	event: verdict    data: the session Verdict JSON — terminal; the
//	                  stream ends after it. A watcher subscribing to
//	                  an already-finished session gets its terminal
//	                  progress and verdict replayed immediately.
//
// Any number of watchers can stream one session concurrently: each
// polls the probe independently and the probe is write-once-read-many
// atomics.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	s := d.session(w, r)
	if s == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "event stream requires a flushing response writer")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	snap := s.prog.Snapshot()
	if !emit("progress", snap) {
		return
	}
	last := snap.Seq

	t := time.NewTicker(d.cfg.EventPoll)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Terminal: the final counters and stage (if not already
			// streamed), then the verdict.
			if snap := s.prog.Snapshot(); snap.Seq != last {
				if !emit("progress", snap) {
					return
				}
			}
			emit("verdict", s.Verdict())
			return
		case <-t.C:
			if snap := s.prog.Snapshot(); snap.Seq != last {
				last = snap.Seq
				if !emit("progress", snap) {
					return
				}
			}
		}
	}
}

// handleSpans serves a span-capturing session's timeline as Chrome
// trace-event JSON (chrome://tracing, Perfetto). 404 unless the session
// was submitted with ?spans=1.
func (d *Daemon) handleSpans(w http.ResponseWriter, r *http.Request) {
	s := d.session(w, r)
	if s == nil {
		return
	}
	tr := s.Spans()
	if tr == nil {
		httpError(w, http.StatusNotFound, "session captured no spans (submit with ?spans=1)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteChromeTrace(w)
}
