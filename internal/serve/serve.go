// Package serve is the detection-as-a-service layer: a long-lived HTTP
// daemon that multiplexes many concurrent trace-analysis sessions over
// one resident detector. Where `rmarace replay` analyses one trace per
// process, the daemon accepts trace uploads and chunked/streamed trace
// records over HTTP — JSON Lines or the RMTB binary format, sniffed
// from the leading bytes — and runs each session through the
// bounded-memory streaming replay (trace.ReplayStream) with the PR 7
// memory policies, so N jobs × M ranks funnel into one process whose
// resident state tracks the hot sessions, not the total traffic.
//
// Concurrency is bounded twice. Admission control caps the in-flight
// session count daemon-wide and per tenant (the `X-Tenant` request
// header names the tenant); a session over either cap is turned away
// with 429 before its body is read, and the rejection is visible in
// the serve_quota_rejects Prometheus counter. Admitted sessions then
// share a bounded worker pool: at most Workers replays run at once,
// the rest queue on the pool semaphore (serve_queue_wait_nanos is the
// backpressure signal). Per-session ingest quotas — max bytes, max
// records — abort an over-limit stream with 413 mid-flight.
//
// Endpoints:
//
//	POST /v1/analyze                 stream a trace body, get a verdict
//	GET  /v1/sessions                list retained sessions
//	GET  /v1/sessions/{id}           one session's verdict
//	GET  /v1/sessions/{id}/report    rmarace/run-report/v1 session report
//	GET  /v1/sessions/{id}/postmortem  flight-recorder race rendering
//	GET  /v1/sessions/{id}/events    live progress stream (SSE)
//	GET  /v1/sessions/{id}/spans     Chrome-trace span timeline (?spans=1)
//	GET  /v1/tenants                 tenant name -> metric label ids
//	/metrics /healthz /report /v1/version /debug/pprof  (package telemetry)
//
// Observability is session-scoped throughout: Config.Logger receives
// one JSON log line per lifecycle event (admission reject, queue wait,
// session start, quota abort, verdict), every line stamped with the
// tenant and session id via package olog; the events endpoint streams
// the same session's live progress; the serve_stage_*_nanos histograms
// cut the same wall time by pipeline stage. One session id correlates
// all of them.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/obs/olog"
	"rmarace/internal/obs/span"
	"rmarace/internal/obs/telemetry"
	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

// SessionOpts is one session's analysis configuration: the daemon's
// defaults, overridable per request through query parameters (method,
// store, shards, batch, evict, compact, flight).
type SessionOpts struct {
	Method  detector.Method
	Store   string
	Shards  int
	Batch   int
	Evict   int
	Compact bool
	Flight  int
	// Spans opts the session into per-rank span capture (?spans=1);
	// the timeline is served as Chrome-trace JSON on the session's
	// /spans endpoint. SpanDepth bounds each rank's span ring
	// (?spandepth=N, default 4096).
	Spans     bool
	SpanDepth int
}

// Config parameterises the daemon.
type Config struct {
	// Workers bounds concurrently running replays (the worker pool).
	// Defaults to GOMAXPROCS, floored at 2 so a queued session can
	// always overlap a running one.
	Workers int
	// MaxSessions is the daemon-wide admission cap on in-flight
	// sessions (running + queued). Defaults to 8× Workers.
	MaxSessions int
	// TenantSessions caps one tenant's in-flight sessions. Defaults to
	// MaxSessions (i.e. no per-tenant carve-out).
	TenantSessions int
	// MaxSessionBytes aborts a session whose ingest exceeds this many
	// body bytes (413). 0 means unlimited.
	MaxSessionBytes int64
	// MaxSessionRecords aborts a session streaming more than this many
	// trace records (413). 0 means unlimited.
	MaxSessionRecords int64
	// Retain is how many completed sessions keep their verdict, report
	// and flight log available over the session API. Default 256.
	Retain int
	// Defaults is the analysis configuration of a session that sets no
	// query parameters. A zero Method is the contribution detector.
	Defaults SessionOpts
	// Registry is the daemon-wide metrics registry behind /metrics;
	// created when nil.
	Registry *obs.Registry
	// Logger receives the daemon's structured log events (JSON lines;
	// build with olog.New). Nil discards everything — the default, so
	// an unconfigured daemon pays one branch per would-be line.
	Logger *slog.Logger
	// RetryAfter is the backoff hint a 429 admission reject carries in
	// its Retry-After header (rounded up to whole seconds). Default 1s.
	RetryAfter time.Duration
	// EventPoll is the progress-probe polling cadence of the SSE event
	// stream. Default 100ms; tests lower it.
	EventPoll time.Duration
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 2 {
		c.Workers = 2
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8 * c.Workers
	}
	if c.TenantSessions <= 0 {
		c.TenantSessions = c.MaxSessions
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	if c.Defaults.Method == 0 {
		c.Defaults.Method = detector.OurContribution
	}
	if c.Defaults.Shards < 1 {
		c.Defaults.Shards = 1
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.EventPoll <= 0 {
		c.EventPoll = 100 * time.Millisecond
	}
	return c
}

// Daemon is the resident multi-tenant analysis service. It implements
// http.Handler; Start binds it to a listener with the telemetry
// package's server lifecycle.
type Daemon struct {
	cfg   Config
	reg   *obs.Registry
	log   *slog.Logger
	slots chan struct{} // worker-pool semaphore
	mux   *http.ServeMux

	mu       sync.Mutex
	inflight int
	tenants  map[string]*tenantState
	names    []string // tenant names by interned id
	sessions map[string]*Session
	done     []string // completed session ids, oldest first (retention)
	seq      uint64
}

// tenantState is one tenant's interned metric label and admission
// bookkeeping.
type tenantState struct {
	id       int
	inflight int
}

// NewDaemon builds a daemon ready to serve.
func NewDaemon(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:      cfg,
		reg:      cfg.Registry,
		log:      olog.Or(cfg.Logger),
		slots:    make(chan struct{}, cfg.Workers),
		tenants:  make(map[string]*tenantState),
		sessions: make(map[string]*Session),
	}
	d.mux = http.NewServeMux()
	d.mux.HandleFunc("POST /v1/analyze", d.handleAnalyze)
	d.mux.HandleFunc("GET /v1/sessions", d.handleSessions)
	d.mux.HandleFunc("GET /v1/sessions/{id}", d.handleSession)
	d.mux.HandleFunc("GET /v1/sessions/{id}/report", d.handleReport)
	d.mux.HandleFunc("GET /v1/sessions/{id}/postmortem", d.handlePostmortem)
	d.mux.HandleFunc("GET /v1/sessions/{id}/events", d.handleEvents)
	d.mux.HandleFunc("GET /v1/sessions/{id}/spans", d.handleSpans)
	d.mux.HandleFunc("GET /v1/tenants", d.handleTenants)
	telemetry.Register(d.mux, telemetry.Sources{
		Registry: d.reg,
		Snapshot: d.metricsSnapshot,
		Report: func() *obs.RunReport {
			return &obs.RunReport{Schema: obs.ReportSchema, Source: "serve", Metrics: d.metricsSnapshot()}
		},
	})
	return d
}

// metricsSnapshot is the daemon's /metrics (and /report) source: the
// registry snapshot with every tenant-dimension series annotated with
// the tenant's name, so the exposition reads tenant="acme" rather than
// an interned id. Names are request-supplied (X-Tenant), so the
// Prometheus renderer escapes them.
func (d *Daemon) metricsSnapshot() []obs.MetricSnapshot {
	snaps := d.reg.Snapshot()
	d.mu.Lock()
	names := append([]string(nil), d.names...)
	d.mu.Unlock()
	for i := range snaps {
		if snaps[i].LabelDim != "tenant" {
			continue
		}
		for j := range snaps[i].Series {
			if id := snaps[i].Series[j].Label; id >= 0 && id < len(names) {
				snaps[i].Series[j].LabelName = names[id]
			}
		}
	}
	return snaps
}

// Registry returns the daemon-wide metrics registry (the /metrics
// source), so embedding callers can read the serve_* counters.
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// ServeHTTP implements http.Handler.
func (d *Daemon) ServeHTTP(w http.ResponseWriter, r *http.Request) { d.mux.ServeHTTP(w, r) }

// Start binds the daemon to addr and serves until the returned
// server's Close. It reuses the telemetry server lifecycle, so a
// background accept failure surfaces from Close rather than killing
// the daemon's caller.
func Start(addr string, cfg Config) (*Daemon, *telemetry.Server, error) {
	d := NewDaemon(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	return d, telemetry.NewServer(ln, d), nil
}

// tenantOf extracts the request's tenant: the X-Tenant header, the
// tenant query parameter, or "anonymous".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// tenantLocked interns a tenant name, assigning metric label ids in
// arrival order. Caller holds d.mu.
func (d *Daemon) tenantLocked(name string) *tenantState {
	ts, ok := d.tenants[name]
	if !ok {
		ts = &tenantState{id: len(d.names)}
		d.tenants[name] = ts
		d.names = append(d.names, name)
	}
	return ts
}

// parseOpts applies a request's query parameters over the daemon's
// session defaults.
func (d *Daemon) parseOpts(r *http.Request) (SessionOpts, error) {
	o := d.cfg.Defaults
	q := r.URL.Query()
	if v := q.Get("method"); v != "" {
		m, err := detector.MethodByName(v)
		if err != nil {
			return o, err
		}
		o.Method = m
	}
	if v := q.Get("store"); v != "" {
		o.Store = v
	}
	for _, p := range []struct {
		key string
		dst *int
		min int
	}{
		{"shards", &o.Shards, 1},
		{"batch", &o.Batch, 0},
		{"evict", &o.Evict, 0},
		{"flight", &o.Flight, 0},
		{"spandepth", &o.SpanDepth, 1},
	} {
		v := q.Get(p.key)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < p.min {
			return o, fmt.Errorf("serve: bad %s parameter %q", p.key, v)
		}
		*p.dst = n
	}
	for _, p := range []struct {
		key string
		dst *bool
	}{
		{"compact", &o.Compact},
		{"spans", &o.Spans},
	} {
		v := q.Get(p.key)
		if v == "" {
			continue
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return o, fmt.Errorf("serve: bad %s parameter %q", p.key, v)
		}
		*p.dst = b
	}
	return o, nil
}

// admit reserves an in-flight slot for tenant, or reports which quota
// refused it. It runs before a single body byte is read.
func (d *Daemon) admit(tenant string) (*tenantState, string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ts := d.tenantLocked(tenant)
	if d.inflight >= d.cfg.MaxSessions {
		d.reg.Add(obs.ServeQuotaRejects, ts.id, 1)
		return ts, fmt.Sprintf("daemon at capacity (%d in-flight sessions)", d.inflight), false
	}
	if ts.inflight >= d.cfg.TenantSessions {
		d.reg.Add(obs.ServeQuotaRejects, ts.id, 1)
		return ts, fmt.Sprintf("tenant %q at quota (%d in-flight sessions)", tenant, ts.inflight), false
	}
	d.inflight++
	ts.inflight++
	d.reg.Add(obs.ServeSessions, ts.id, 1)
	d.reg.Add(obs.ServeActiveSessions, ts.id, 1)
	return ts, "", true
}

// release returns an admitted session's slot.
func (d *Daemon) release(ts *tenantState) {
	d.mu.Lock()
	d.inflight--
	ts.inflight--
	d.mu.Unlock()
	d.reg.Add(obs.ServeActiveSessions, ts.id, -1)
}

// register files a new session under the next id.
func (d *Daemon) register(s *Session) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	s.ID = fmt.Sprintf("s-%06d", d.seq)
	d.sessions[s.ID] = s
}

// retire moves a finished session into the bounded retention window,
// evicting the oldest completed session beyond Retain.
func (d *Daemon) retire(s *Session) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.done = append(d.done, s.ID)
	for len(d.done) > d.cfg.Retain {
		delete(d.sessions, d.done[0])
		d.done = d.done[1:]
	}
}

// retryAfterSeconds renders the 429 backoff hint: whole seconds,
// rounded up, floored at 1 (Retry-After's grammar has no fractions).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleAnalyze is the ingest path: admission, worker-pool slot, then
// one streaming replay over the request body.
func (d *Daemon) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	ctx := olog.WithSession(r.Context(), tenant, "")
	opts, err := d.parseOpts(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ts, reason, ok := d.admit(tenant)
	if !ok {
		d.log.WarnContext(ctx, "admission rejected", "status", http.StatusTooManyRequests, "reason", reason)
		w.Header().Set("Retry-After", retryAfterSeconds(d.cfg.RetryAfter))
		httpError(w, http.StatusTooManyRequests, reason)
		return
	}
	defer d.release(ts)

	// Register before queueing for a worker slot, so a queued session
	// is already discoverable (GET /v1/sessions) and watchable (its
	// events stream shows stage "queued" while it waits).
	s := newSession(tenant, opts)
	d.register(s)
	ctx = olog.WithSession(ctx, "", s.ID)
	d.log.InfoContext(ctx, "session admitted", "method", opts.Method.String())

	// The pool semaphore is the backpressure stage: admitted sessions
	// queue here while Workers replays are already running.
	waitStart := time.Now()
	d.slots <- struct{}{}
	defer func() { <-d.slots }()
	wait := time.Since(waitStart)
	if wait > 0 {
		d.reg.Add(obs.ServeQueueWaitNanos, ts.id, wait.Nanoseconds())
	}

	status, verdict := d.runSession(ctx, s, ts, r.Body, wait)
	d.retire(s)
	d.log.InfoContext(ctx, "session finished",
		"state", verdict.State, "status", status, "events", verdict.Events,
		"epochs", verdict.Epochs, "race", verdict.Race != nil,
		"elapsed_ns", verdict.ElapsedNs)
	w.Header().Set("X-Session", s.ID)
	writeJSON(w, status, verdict)
}

// runSession streams one trace body through the shared replay loop and
// returns the HTTP status plus the verdict document. The session is
// updated in place. queueWait is how long the session sat on the
// worker-pool semaphore (the queue stage of the latency accounting).
func (d *Daemon) runSession(ctx context.Context, s *Session, ts *tenantState, body io.Reader, queueWait time.Duration) (int, *Verdict) {
	fail := func(status int, err error) (int, *Verdict) {
		s.fail(err)
		d.log.WarnContext(ctx, "session failed", "status", status, "error", err.Error())
		return status, s.Verdict()
	}
	lim := &limitedBody{r: body, remaining: d.cfg.MaxSessionBytes, unlimited: d.cfg.MaxSessionBytes <= 0}
	src, format, err := tracebin.Open(lim)
	if err != nil {
		if errors.Is(err, errByteQuota) {
			d.reg.Add(obs.ServeLimitAborts, ts.id, 1)
			return fail(http.StatusRequestEntityTooLarge, err)
		}
		return fail(http.StatusBadRequest, fmt.Errorf("opening trace stream: %w", err))
	}
	s.setFormat(format)
	head := src.Head()

	sreg := obs.NewRegistry()
	// Stage accounting: the queue stage is measured by the handler; the
	// ingest and drain stages come from the progress probe's stage-entry
	// timestamps after the replay; report build is timed below. Session
	// registry and daemon registry both see the histograms, so they show
	// up in the per-session report and aggregate on /metrics.
	stage := func(m obs.Metric, ns int64) {
		if ns <= 0 {
			return
		}
		sreg.Observe(m, ts.id, ns)
		d.reg.Observe(m, ts.id, ns)
	}
	stage(obs.ServeStageQueueNanos, queueWait.Nanoseconds())

	var spans *span.Tracer
	if s.Opts.Spans {
		depth := s.Opts.SpanDepth
		if depth <= 0 {
			depth = 4096
		}
		spans = span.NewLogicalTracer(head.Ranks, depth)
		s.setSpans(spans)
	}

	factory, shared, err := NewAnalyzerFactory(s.Opts.Method, head.Ranks, s.Opts.Store, s.Opts.Shards, sreg)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	res, err := trace.ReplayStream(
		&limitSource{Source: src, max: d.cfg.MaxSessionRecords},
		factory,
		trace.ReplayOpts{
			Batch: s.Opts.Batch, EvictCold: s.Opts.Evict, Compact: s.Opts.Compact,
			FlightN: s.Opts.Flight,
			Spans:   spans,
			// Ingest metrics tee into the session's registry (the /report
			// source) and the daemon-wide registry (the /metrics source),
			// so a scrape sees aggregate traffic live.
			Recorder: teeRecorder{sreg, d.reg},
			Progress: s.prog,
			// The replay loop logs without a context; bind the session's
			// correlation attributes onto the logger itself.
			Log: olog.Bind(ctx, d.log),
		})
	drainedAt := time.Now()
	if ingest := s.prog.StageEntryNanos(obs.StageDraining) - s.prog.StageEntryNanos(obs.StageIngesting); ingest > 0 {
		stage(obs.ServeStageIngestNanos, ingest)
	}
	if enter := s.prog.StageEntryNanos(obs.StageDraining); enter > 0 {
		stage(obs.ServeStageDrainNanos, drainedAt.Sub(s.Started).Nanoseconds()-enter)
	}
	if err != nil {
		if errors.Is(err, errByteQuota) || errors.Is(err, errRecordQuota) {
			d.reg.Add(obs.ServeLimitAborts, ts.id, 1)
			return fail(http.StatusRequestEntityTooLarge, err)
		}
		return fail(http.StatusBadRequest, err)
	}
	RecordClockStats(sreg, shared)
	if res.Race != nil {
		d.reg.Add(obs.ServeRaces, ts.id, 1)
	}
	rep := ReplayReport("serve", head, s.Opts.Method, res, sreg)
	// The report can't time its own construction, so the report stage
	// lands in the daemon registry only.
	d.reg.Observe(obs.ServeStageReportNanos, ts.id, int64(time.Since(drainedAt)))
	s.finish(head, res, rep)
	return http.StatusOK, s.Verdict()
}

// handleSessions lists retained sessions, newest first.
func (d *Daemon) handleSessions(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	list := make([]*Verdict, 0, len(d.sessions))
	for _, s := range d.sessions {
		list = append(list, s.Verdict())
	}
	d.mu.Unlock()
	sortVerdicts(list)
	writeJSON(w, http.StatusOK, list)
}

// session resolves the {id} path value.
func (d *Daemon) session(w http.ResponseWriter, r *http.Request) *Session {
	d.mu.Lock()
	s := d.sessions[r.PathValue("id")]
	d.mu.Unlock()
	if s == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q (retention keeps the last %d)", r.PathValue("id"), d.cfg.Retain))
	}
	return s
}

func (d *Daemon) handleSession(w http.ResponseWriter, r *http.Request) {
	if s := d.session(w, r); s != nil {
		writeJSON(w, http.StatusOK, s.Verdict())
	}
}

func (d *Daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	s := d.session(w, r)
	if s == nil {
		return
	}
	rep := s.Report()
	if rep == nil {
		// Same contract as the telemetry /report handler: no snapshot
		// available (still streaming, or the session failed) is 503.
		httpError(w, http.StatusServiceUnavailable, "session report unavailable")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = rep.WriteJSON(w)
}

func (d *Daemon) handlePostmortem(w http.ResponseWriter, r *http.Request) {
	s := d.session(w, r)
	if s == nil {
		return
	}
	race := s.Race()
	if race == nil {
		httpError(w, http.StatusNotFound, "session detected no race")
		return
	}
	if len(race.FlightLog) == 0 {
		httpError(w, http.StatusNotFound, "race carries no flight recording (submit with ?flight=N)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "RACE: %s\n", race.Message())
	if p := race.Prov; p != nil {
		fmt.Fprintf(w, "  window=%s owner=%d shard=%d\n", p.Window, p.Owner, p.Shard)
	}
	detector.WriteFlight(w, race.FlightLog, race)
}

// handleTenants reports the tenant-name -> metric-label mapping, so a
// Prometheus consumer can resolve the serve_* series' tenant ids.
func (d *Daemon) handleTenants(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	m := make(map[string]int, len(d.tenants))
	for name, ts := range d.tenants {
		m[name] = ts.id
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, m)
}

// writeJSON writes one JSON document with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError answers a JSON error document (the API is JSON throughout,
// error paths included).
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// teeRecorder fans one recording stream into two registries: the
// session's (per-session report) and the daemon's (aggregate
// /metrics). Both ends are live, so a mid-session scrape of either
// sees traffic so far.
type teeRecorder struct {
	a, b obs.Recorder
}

func (t teeRecorder) Add(m obs.Metric, label int, delta int64) {
	t.a.Add(m, label, delta)
	t.b.Add(m, label, delta)
}
func (t teeRecorder) Set(m obs.Metric, label int, v int64) {
	t.a.Set(m, label, v)
	t.b.Set(m, label, v)
}
func (t teeRecorder) SetMax(m obs.Metric, label int, v int64) {
	t.a.SetMax(m, label, v)
	t.b.SetMax(m, label, v)
}
func (t teeRecorder) Observe(m obs.Metric, label int, v int64) {
	t.a.Observe(m, label, v)
	t.b.Observe(m, label, v)
}
func (t teeRecorder) Enabled() bool { return t.a.Enabled() || t.b.Enabled() }
