package store

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/itree"
)

// AVL adapts the balanced AVL interval tree of package itree — the
// contribution's storage — to the AccessStore interface. It implements
// every optional capability: the single-traversal StabNeighbors and the
// in-place ExtendHi/ExtendLo carry the merge fast path of Algorithm 1.
type AVL struct {
	tree itree.Tree
}

// NewAVL returns an empty AVL-backed store.
func NewAVL() *AVL { return &AVL{} }

// Name implements AccessStore.
func (*AVL) Name() string { return "avl" }

// Insert implements AccessStore.
func (s *AVL) Insert(a access.Access) { s.tree.Insert(a) }

// InsertBatch implements BatchInserter.
func (s *AVL) InsertBatch(batch []access.Access) {
	for _, a := range batch {
		s.tree.Insert(a)
	}
}

// Delete implements AccessStore.
func (s *AVL) Delete(iv interval.Interval) bool { return s.tree.Delete(iv) }

// Stab implements AccessStore with the complete O(log n + k) stabbing
// query of the augmented tree.
func (s *AVL) Stab(iv interval.Interval, fn func(access.Access) bool) bool {
	return s.tree.VisitStab(iv, fn)
}

// StabNeighbors implements NeighborStabber.
func (s *AVL) StabNeighbors(iv interval.Interval, dst *[]access.Access) (left, right access.Access, hasLeft, hasRight bool) {
	return s.tree.StabNeighbors(iv, dst)
}

// ExtendHi implements Extender.
func (s *AVL) ExtendHi(iv interval.Interval, newHi uint64) bool { return s.tree.ExtendHi(iv, newHi) }

// ExtendLo implements Extender.
func (s *AVL) ExtendLo(iv interval.Interval, newLo uint64) bool { return s.tree.ExtendLo(iv, newLo) }

// Walk implements AccessStore in ascending interval order.
func (s *AVL) Walk(fn func(access.Access) bool) { s.tree.InOrder(fn) }

// Clear implements AccessStore.
func (s *AVL) Clear() { s.tree.Clear() }

// Len implements AccessStore.
func (s *AVL) Len() int { return s.tree.Len() }

// Compact implements Compacter: it drops the tree's recycled-node free
// list (the retained capacity that dominates a post-epoch tree's
// footprint), trading the next epoch's allocation-free refill for a
// flat memory profile.
func (s *AVL) Compact() { s.tree.ReleaseFree() }

var (
	_ AccessStore     = (*AVL)(nil)
	_ BatchInserter   = (*AVL)(nil)
	_ NeighborStabber = (*AVL)(nil)
	_ Extender        = (*AVL)(nil)
	_ Compacter       = (*AVL)(nil)
)
