package store

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/legacybst"
)

// LegacyBST adapts the lower-bound BST of the original RMA-Analyzer to
// the AccessStore interface, preserving its two published storage
// defects: one node per access (no deletion, no coalescing) and a stab
// that inspects only the lower-bound descent path, missing
// intersections stored off-path (the Code 1 false negative).
type LegacyBST struct {
	tree legacybst.Tree
}

// NewLegacyBST returns an empty legacy-BST-backed store.
func NewLegacyBST() *LegacyBST { return &LegacyBST{} }

// Name implements AccessStore.
func (*LegacyBST) Name() string { return "legacy" }

// Insert implements AccessStore.
func (s *LegacyBST) Insert(a access.Access) { s.tree.Insert(a) }

// Delete implements AccessStore. The legacy multiset never removes
// nodes; Delete reports false so callers fall back to plain insertion.
func (s *LegacyBST) Delete(interval.Interval) bool { return false }

// Stab implements AccessStore with the legacy path-limited search: only
// the accesses the lower-bound descent of iv.Lo passes are visited.
func (s *LegacyBST) Stab(iv interval.Interval, fn func(access.Access) bool) bool {
	for _, a := range s.tree.SearchIntersecting(iv) {
		if !fn(a) {
			return false
		}
	}
	return true
}

// Walk implements AccessStore in key (lower-bound) order.
func (s *LegacyBST) Walk(fn func(access.Access) bool) { s.tree.InOrder(fn) }

// Clear implements AccessStore.
func (s *LegacyBST) Clear() { s.tree.Clear() }

// Len implements AccessStore.
func (s *LegacyBST) Len() int { return s.tree.Len() }

var _ AccessStore = (*LegacyBST)(nil)
