package store

import (
	"math/rand"
	"sort"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func acc(lo, hi uint64, tp access.Type, rank int, line int) access.Access {
	return access.Access{
		Interval: interval.New(lo, hi),
		Type:     tp,
		Rank:     rank,
		Debug:    access.Debug{File: "store.c", Line: line},
	}
}

func TestFactory(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if s, err := New(""); err != nil || s.Name() != "avl" {
		t.Errorf("default store = %v, %v; want avl", s, err)
	}
	if _, err := New("btree"); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestBasicContract exercises insert/stab/walk/clear/len on every
// backend with disjoint accesses (the regime all backends store
// losslessly, granule alignment aside).
func TestBasicContract(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			// 8-byte-aligned, 8-byte-wide accesses: exact even at shadow
			// granule resolution.
			for i := 0; i < 16; i++ {
				s.Insert(acc(uint64(i)*32, uint64(i)*32+7, access.RMAWrite, 1, i))
			}
			if s.Len() == 0 {
				t.Fatal("Len() = 0 after 16 inserts")
			}
			var hits []access.Access
			s.Stab(interval.New(64, 71), func(a access.Access) bool {
				hits = append(hits, a)
				return true
			})
			if len(hits) != 1 || hits[0].Lo != 64 {
				t.Fatalf("stab [64,71] = %v, want the single covering access", hits)
			}
			count := 0
			s.Walk(func(access.Access) bool { count++; return true })
			if count != 16 {
				t.Fatalf("walk visited %d accesses, want 16", count)
			}
			s.Clear()
			if s.Len() != 0 {
				t.Fatalf("Len() = %d after Clear", s.Len())
			}
		})
	}
}

// TestStabNeighborsFallbackMatchesAVL checks the generic widened-stab
// fallback against the AVL tree's native single-traversal capability on
// random disjoint layouts.
func TestStabNeighborsFallbackMatchesAVL(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		native := NewAVL()
		// hide the capability to force the fallback on the same data
		type plain struct{ AccessStore }
		generic := plain{NewAVL()}
		var lo uint64
		for i := 0; i < 30; i++ {
			lo += uint64(r.Intn(5)) // gaps of 0..4 between accesses
			length := uint64(r.Intn(6) + 1)
			a := acc(lo, lo+length-1, access.RMARead, 0, i)
			native.Insert(a)
			generic.Insert(a)
			lo += length
		}
		for q := 0; q < 20; q++ {
			qlo := uint64(r.Intn(int(lo) + 4))
			iv := interval.Span(qlo, uint64(r.Intn(7)+1))
			var di, df []access.Access
			l1, r1, hl1, hr1 := StabNeighbors(native, iv, &di)
			l2, r2, hl2, hr2 := StabNeighbors(generic, iv, &df)
			if hl1 != hl2 || hr1 != hr2 || (hl1 && l1 != l2) || (hr1 && r1 != r2) {
				t.Fatalf("trial %d query %v: neighbours differ: (%v,%v,%v,%v) vs (%v,%v,%v,%v)",
					trial, iv, l1, r1, hl1, hr1, l2, r2, hl2, hr2)
			}
			if len(di) != len(df) {
				t.Fatalf("trial %d query %v: intersections differ: %v vs %v", trial, iv, di, df)
			}
			for i := range di {
				if di[i] != df[i] {
					t.Fatalf("trial %d query %v: intersections differ at %d", trial, iv, i)
				}
			}
		}
	}
}

// TestExtendFallback checks delete+reinsert extension against the AVL
// in-place capability.
func TestExtendFallback(t *testing.T) {
	type plain struct{ AccessStore }
	for _, s := range []AccessStore{NewAVL(), plain{NewAVL()}} {
		a := acc(10, 19, access.RMAWrite, 0, 1)
		s.Insert(a)
		if !ExtendHi(s, a, 29) {
			t.Fatal("ExtendHi missed the stored access")
		}
		got := Items(s)
		if len(got) != 1 || got[0].Interval != interval.New(10, 29) {
			t.Fatalf("after ExtendHi: %v", got)
		}
		if !ExtendLo(s, got[0], 5) {
			t.Fatal("ExtendLo missed the stored access")
		}
		got = Items(s)
		if len(got) != 1 || got[0].Interval != interval.New(5, 29) {
			t.Fatalf("after ExtendLo: %v", got)
		}
	}
}

func TestRemoveRank(t *testing.T) {
	for _, name := range []string{"avl", "shadow", "strided"} {
		t.Run(name, func(t *testing.T) {
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				s.Insert(acc(uint64(i)*64, uint64(i)*64+7, access.RMAWrite, i%2, i))
			}
			RemoveRank(s, 0)
			s.Walk(func(a access.Access) bool {
				if a.Rank == 0 {
					t.Fatalf("rank-0 access survived RemoveRank: %v", a)
				}
				return true
			})
		})
	}
}

// TestStridedCompression: a constant-stride run collapses to one
// section while Stab still reports every element.
func TestStridedCompression(t *testing.T) {
	s := NewStrided()
	for i := 0; i < 100; i++ {
		s.Insert(acc(uint64(i)*24, uint64(i)*24+7, access.RMARead, 2, 9))
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d after 100-element run, want 1 section", s.Len())
	}
	count := 0
	s.Stab(interval.New(0, 100*24), func(a access.Access) bool { count++; return true })
	if count != 100 {
		t.Fatalf("stab reported %d elements, want 100", count)
	}
}

// TestStridedDeleteSplits: deleting one element of a section keeps the
// remaining 99 visible (split into a section and re-materialised nodes).
func TestStridedDeleteSplits(t *testing.T) {
	s := NewStrided()
	for i := 0; i < 100; i++ {
		s.Insert(acc(uint64(i)*24, uint64(i)*24+7, access.RMARead, 2, 9))
	}
	victim := interval.New(50*24, 50*24+7)
	if !s.Delete(victim) {
		t.Fatal("Delete missed a section element")
	}
	var got []uint64
	s.Walk(func(a access.Access) bool { got = append(got, a.Lo); return true })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 99 {
		t.Fatalf("%d elements after delete, want 99", len(got))
	}
	for _, lo := range got {
		if lo == victim.Lo {
			t.Fatal("deleted element still visible")
		}
	}
}

// TestShadowGranularity: the shadow backend conflates to its granule,
// the documented resolution loss of the real tool.
func TestShadowGranularity(t *testing.T) {
	s := NewShadow()
	s.Insert(acc(3, 3, access.RMAWrite, 1, 1))
	hit := false
	s.Stab(interval.New(5, 5), func(a access.Access) bool { hit = true; return true })
	if !hit {
		t.Fatal("same-granule access not conflated")
	}
	hit = false
	s.Stab(interval.New(8, 8), func(a access.Access) bool { hit = true; return true })
	if hit {
		t.Fatal("neighbouring granule reported")
	}
}

// TestInsertBatchEquivalence: bulk insertion equals sequential
// insertion on every backend.
func TestInsertBatchEquivalence(t *testing.T) {
	batch := make([]access.Access, 20)
	for i := range batch {
		batch[i] = acc(uint64(i)*16, uint64(i)*16+7, access.RMARead, 0, i)
	}
	for _, name := range Names() {
		one, _ := New(name)
		blk, _ := New(name)
		for _, a := range batch {
			one.Insert(a)
		}
		InsertBatch(blk, batch)
		if one.Len() != blk.Len() {
			t.Errorf("%s: Len %d (sequential) vs %d (batch)", name, one.Len(), blk.Len())
		}
	}
}
