package store

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/itree"
	"rmarace/internal/strided"
)

// minRun is the run length below which a broken strided run is
// re-materialised into the tree instead of being kept as a section:
// short runs compress nothing and would bloat the section scan.
const minRun = 4

// identKey identifies a strided access stream: everything an element of
// a regular section must share except its address. Epoch is part of the
// identity so a section never absorbs accesses from different epochs —
// its representatives would otherwise report the section head's epoch
// and corrupt the epoch-equality clause of the race predicate when a
// trace interleaves epochs without an intervening Clear.
type identKey struct {
	tp    access.Type
	rank  int
	epoch uint64
	stack bool
	op    access.AccumOp
	debug access.Debug
	width uint64
}

func identOf(a access.Access) identKey {
	return identKey{tp: a.Type, rank: a.Rank, epoch: a.Epoch, stack: a.Stack, op: a.AccumOp, debug: a.Debug, width: a.Interval.Len()}
}

// run tracks one stream's pending compression.
type run struct {
	sec     *strided.Section
	last    access.Access
	hasLast bool
}

// Strided is a compressing store: constant-stride access runs — such as
// MiniVite's attribute accesses on 24-byte-strided records, which plain
// merging cannot coalesce because they are not adjacent — collapse into
// regular sections (§6(3), after Ketterlin & Clauss), while everything
// else lives in an AVL interval tree. Stab reports section elements as
// individual representative accesses, so detection logic on top sees
// the same multiset a plain tree would hold.
type Strided struct {
	tree     itree.Tree
	sections []strided.Section
	open     map[identKey]*run
}

// NewStrided returns an empty compressing store.
func NewStrided() *Strided {
	return &Strided{open: make(map[identKey]*run)}
}

// Name implements AccessStore.
func (*Strided) Name() string { return "strided" }

// Insert implements AccessStore, absorbing a into its stream's section
// when it continues the stream's constant stride.
func (s *Strided) Insert(a access.Access) {
	key := identOf(a)
	rs := s.open[key]
	if rs == nil {
		rs = &run{}
		s.open[key] = rs
	}
	if rs.sec != nil {
		if rs.sec.CanAppend(a) {
			rs.sec.Append()
			return
		}
		s.closeRun(rs)
	}
	if rs.hasLast {
		if sec, err := strided.New(rs.last, a); err == nil {
			// Reclaim the run's first element from the tree; if it was
			// meanwhile deleted, fall back to plain storage.
			if s.tree.Delete(rs.last.Interval) {
				rs.sec = &sec
				rs.hasLast = false
				return
			}
		}
	}
	rs.last = a
	rs.hasLast = true
	s.tree.Insert(a)
}

// closeRun finalises a pending section, keeping it when long enough and
// re-materialising its elements into the tree otherwise.
func (s *Strided) closeRun(rs *run) {
	sec := rs.sec
	rs.sec = nil
	if sec == nil {
		return
	}
	if sec.Elements() >= minRun {
		s.sections = append(s.sections, *sec)
		return
	}
	for k := uint64(0); k < sec.Elements(); k++ {
		s.tree.Insert(sec.Representative(k))
	}
}

// Delete implements AccessStore. An access absorbed into a section is
// deleted by splitting the section around its element; the shorter
// remnants re-materialise into the tree.
func (s *Strided) Delete(iv interval.Interval) bool {
	if s.tree.Delete(iv) {
		return true
	}
	for i := range s.sections {
		if s.deleteFromSection(&s.sections[i], iv) {
			if s.sections[i].Count == 0 {
				s.sections = append(s.sections[:i], s.sections[i+1:]...)
			}
			return true
		}
	}
	for _, rs := range s.open {
		if rs.sec != nil && s.deleteFromSection(rs.sec, iv) {
			if rs.sec.Count == 0 {
				rs.sec = nil
			}
			return true
		}
	}
	return false
}

// deleteFromSection removes the element of sec covering exactly iv,
// splitting the section: the prefix stays (or re-materialises when too
// short), the suffix always re-materialises into the tree. It reports
// whether an element matched.
func (s *Strided) deleteFromSection(sec *strided.Section, iv interval.Interval) bool {
	from, to := sec.Overlap(iv)
	for k := from; k < to; k++ {
		if sec.Element(k) != iv {
			continue
		}
		for j := k + 1; j < sec.Count; j++ {
			s.tree.Insert(sec.Representative(j))
		}
		sec.Count = k
		if sec.Count < minRun {
			for j := uint64(0); j < sec.Count; j++ {
				s.tree.Insert(sec.Representative(j))
			}
			sec.Count = 0
		}
		return true
	}
	return false
}

// eachSection visits every finalised and open section.
func (s *Strided) eachSection(fn func(sec *strided.Section) bool) bool {
	for i := range s.sections {
		if !fn(&s.sections[i]) {
			return false
		}
	}
	for _, rs := range s.open {
		if rs.sec != nil {
			if !fn(rs.sec) {
				return false
			}
		}
	}
	return true
}

// Stab implements AccessStore: tree hits in ascending order, then the
// intersecting elements of each section as representatives.
func (s *Strided) Stab(iv interval.Interval, fn func(access.Access) bool) bool {
	if !s.tree.VisitStab(iv, fn) {
		return false
	}
	return s.eachSection(func(sec *strided.Section) bool {
		from, to := sec.Overlap(iv)
		for k := from; k < to; k++ {
			if !fn(sec.Representative(k)) {
				return false
			}
		}
		return true
	})
}

// Walk implements AccessStore: the tree in order, then every section
// element.
func (s *Strided) Walk(fn func(access.Access) bool) {
	done := true
	s.tree.InOrder(func(a access.Access) bool {
		done = fn(a)
		return done
	})
	if !done {
		return
	}
	s.eachSection(func(sec *strided.Section) bool {
		for k := uint64(0); k < sec.Count; k++ {
			if !fn(sec.Representative(k)) {
				return false
			}
		}
		return true
	})
}

// RemoveRank implements RankRemover: the rank's tree nodes and sections
// are retired.
func (s *Strided) RemoveRank(rank int) {
	s.removeIf(func(a access.Access) bool { return a.Rank == rank })
}

// RemoveRemote implements RemoteRemover: every remote one-sided tree
// node and section retires (the exclusive-unlock ordering).
func (s *Strided) RemoveRemote(owner int) {
	s.removeIf(func(a access.Access) bool { return a.Rank != owner && a.Type.IsRMA() })
}

func (s *Strided) removeIf(doomed func(access.Access) bool) {
	var dead []access.Access
	s.tree.InOrder(func(a access.Access) bool {
		if doomed(a) {
			dead = append(dead, a)
		}
		return true
	})
	for _, d := range dead {
		s.tree.Delete(d.Interval)
	}
	kept := s.sections[:0]
	for _, sec := range s.sections {
		if !doomed(sec.Acc) {
			kept = append(kept, sec)
		}
	}
	s.sections = kept
	for k := range s.open {
		if doomed(access.Access{Type: k.tp, Rank: k.rank, AccumOp: k.op}) {
			delete(s.open, k)
		}
	}
}

// Clear implements AccessStore.
func (s *Strided) Clear() {
	s.tree.Clear()
	s.sections = s.sections[:0]
	s.open = make(map[identKey]*run)
}

// Len implements AccessStore: tree nodes plus one per section (the
// compression metric).
func (s *Strided) Len() int {
	n := s.tree.Len() + len(s.sections)
	for _, rs := range s.open {
		if rs.sec != nil {
			n++
		}
	}
	return n
}

// Sections returns the live sections, for inspection and testing.
func (s *Strided) Sections() []strided.Section {
	out := make([]strided.Section, len(s.sections))
	copy(out, s.sections)
	for _, rs := range s.open {
		if rs.sec != nil {
			out = append(out, *rs.sec)
		}
	}
	return out
}

var (
	_ AccessStore   = (*Strided)(nil)
	_ RankRemover   = (*Strided)(nil)
	_ RemoteRemover = (*Strided)(nil)
)
