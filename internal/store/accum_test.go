package store

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

// accumAcc builds an 8-byte-aligned access (exact even at shadow
// granule resolution) with the given type and reduction op.
func accumAcc(lo, n uint64, tp access.Type, op access.AccumOp, rank int, line int) access.Access {
	return access.Access{
		Interval: interval.Span(lo, n),
		Type:     tp,
		AccumOp:  op,
		Rank:     rank,
		Debug:    access.Debug{File: "accum.c", Line: line},
	}
}

// TestAccumulateSemanticsAcrossStores drives the paper's §2.1
// accumulate atomicity rules through every storage backend, not just
// the contribution's interval tree: same-operation concurrent
// accumulates commute element-wise and are race-free, while mixed-op
// accumulates and accumulate-vs-Put / accumulate-vs-Get overlaps
// conflict. The predicate is evaluated on the access the *store* hands
// back, so a backend that drops or corrupts the AccumOp (or Type) on
// reconstruction fails here even though the raw predicate is correct.
func TestAccumulateSemanticsAcrossStores(t *testing.T) {
	const (
		sum = access.AccumSum
		max = access.AccumMax
		acc = access.RMAAccum
		put = access.RMAWrite // the target side of an MPI_Put
		get = access.RMARead  // the target side of an MPI_Get
	)
	none := access.AccumNone
	cases := []struct {
		name           string
		storedT, inT   access.Type
		storedOp, inOp access.AccumOp
		race           bool
	}{
		{"same-op sum/sum", acc, acc, sum, sum, false},
		{"same-op max/max", acc, acc, max, max, false},
		{"mixed-op sum/max", acc, acc, sum, max, true},
		{"mixed-op max/sum", acc, acc, max, sum, true},
		{"accum vs put", acc, put, sum, none, true},
		{"put vs accum", put, acc, none, sum, true},
		{"accum vs get", acc, get, sum, none, true},
		{"get vs accum", get, acc, none, sum, true},
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			for _, tc := range cases {
				s, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				stored := accumAcc(0, 16, tc.storedT, tc.storedOp, 1, 10)
				in := accumAcc(8, 16, tc.inT, tc.inOp, 2, 20)
				s.Insert(stored)
				raced := false
				s.Stab(in.Interval, func(got access.Access) bool {
					if access.Races(got, in) {
						raced = true
						return false
					}
					return true
				})
				if raced != tc.race {
					t.Errorf("%s: raced=%v, want %v", tc.name, raced, tc.race)
				}
			}
		})
	}
}

// TestAccumulateDisjointAcrossStores: accumulates that do not overlap
// never conflict whatever the ops, on every backend. (Granule-aligned
// so the shadow backend's conflation cannot blur the gap.)
func TestAccumulateDisjointAcrossStores(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		s.Insert(accumAcc(0, 8, access.RMAAccum, access.AccumSum, 1, 10))
		in := accumAcc(8, 8, access.RMAAccum, access.AccumMax, 2, 20)
		s.Stab(in.Interval, func(got access.Access) bool {
			if access.Races(got, in) {
				t.Errorf("%s: disjoint accumulates reported racing (%v vs %v)", name, got, in)
			}
			return true
		})
	}
}
