package store

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func epochAcc(lo, n uint64, tp access.Type, rank int, epoch uint64, line int) access.Access {
	return access.Access{
		Interval: interval.Span(lo, n),
		Type:     tp,
		Rank:     rank,
		Epoch:    epoch,
		Debug:    access.Debug{File: "epoch.c", Line: line},
	}
}

// TestShadowPreservesEpoch is the regression test for the shadow
// adapter dropping Epoch on reconstruction: every stored access came
// back as epoch 0, so under Algorithm 1 with -store=shadow the race
// predicate's epoch-equality clause failed for any access of epoch ≥ 1
// and races went undetected from the second epoch on.
func TestShadowPreservesEpoch(t *testing.T) {
	s := NewShadow()
	in := epochAcc(0, 8, access.RMAWrite, 1, 3, 10)
	s.Insert(in)
	seen := 0
	s.Stab(in.Interval, func(got access.Access) bool {
		seen++
		if got.Epoch != in.Epoch {
			t.Errorf("stab returned epoch %d, want %d", got.Epoch, in.Epoch)
		}
		return true
	})
	if seen == 0 {
		t.Fatal("stored access not found by stab")
	}
	s.Walk(func(got access.Access) bool {
		if got.Epoch != in.Epoch {
			t.Errorf("walk returned epoch %d, want %d", got.Epoch, in.Epoch)
		}
		return true
	})
}

// TestShadowEpochRace drives the full predicate: a stored epoch-2 write
// must race with an overlapping epoch-2 write from another rank when
// read back through the store.
func TestShadowEpochRace(t *testing.T) {
	s := NewShadow()
	stored := epochAcc(0, 8, access.RMAWrite, 1, 2, 10)
	s.Insert(stored)
	incoming := epochAcc(0, 8, access.RMAWrite, 2, 2, 20)
	raced := false
	s.Stab(incoming.Interval, func(got access.Access) bool {
		if access.Races(got, incoming) {
			raced = true
			return false
		}
		return true
	})
	if !raced {
		t.Fatal("epoch-2 write pair not detected as racing through the shadow store")
	}
}

// TestStridedSectionsSegregateEpochs: a constant-stride run whose
// elements span an epoch boundary must not collapse into one section,
// or its representatives would all report the head element's epoch.
func TestStridedSectionsSegregateEpochs(t *testing.T) {
	s := NewStrided()
	// Same stream identity except for the epoch switch at element 3.
	for i := uint64(0); i < 6; i++ {
		epoch := uint64(0)
		if i >= 3 {
			epoch = 1
		}
		s.Insert(epochAcc(i*24, 8, access.RMAWrite, 1, epoch, 10))
	}
	seenEpochs := map[uint64]int{}
	s.Walk(func(a access.Access) bool {
		seenEpochs[a.Epoch]++
		return true
	})
	if seenEpochs[0] != 3 || seenEpochs[1] != 3 {
		t.Fatalf("representatives lost their epochs: %v (want 3 of epoch 0 and 3 of epoch 1)", seenEpochs)
	}
}
