package store

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/shadow"
)

// Shadow adapts the TSan-style shadow memory of package shadow to the
// AccessStore interface. Accesses are recorded per granule, so stored
// entries are conflated to granule-wide intervals (as in the real tool)
// and Stab reports at granule resolution. The MUST-RMA analyzer holds
// this store and reaches the clock-carrying Record path through the
// Recorder capability; as a plain AccessStore (the -store=shadow
// ablation) entries carry no happens-before information and every
// stored access is treated as live until Clear.
type Shadow struct {
	mem *shadow.Memory
}

// NewShadow returns a shadow-memory store owned by rank 0.
func NewShadow() *Shadow { return NewShadowOwner(0) }

// NewShadowOwner returns a shadow-memory store for the given owning
// rank (the only rank whose local accesses can appear in it).
func NewShadowOwner(owner int) *Shadow {
	return &Shadow{mem: shadow.NewMemoryOwner(owner)}
}

// Name implements AccessStore.
func (*Shadow) Name() string { return "shadow" }

// Mem exposes the underlying shadow memory for clock-carrying analysis.
func (s *Shadow) Mem() *shadow.Memory { return s.mem }

// Record registers an access with full clock information and returns
// the first conflict, the MUST-RMA analysis path.
func (s *Shadow) Record(a access.Access, e shadow.Entry) *shadow.Conflict {
	return s.mem.Record(a, e)
}

// Insert implements AccessStore by recording the access without clock
// information (a plain entry stamped with the access's rank).
func (s *Shadow) Insert(a access.Access) {
	s.mem.Record(a, shadow.Entry{Rank: a.Rank, IsRMA: a.Type.IsRMA()})
}

// Delete implements AccessStore. Shadow cells retire by epoch (Clear),
// by rank (RemoveRank) or by remoteness (RemoveRemote), never by
// interval; Delete reports false.
func (s *Shadow) Delete(interval.Interval) bool { return false }

// entryAccess reconstructs the stored-access view of one shadow entry.
func (s *Shadow) entryAccess(base uint64, e shadow.Entry) access.Access {
	return access.Access{
		Interval: interval.Span(base, s.mem.GranuleSize()),
		Type:     e.Type,
		Rank:     e.Rank,
		Epoch:    e.Epoch,
		Debug:    e.Debug,
		AccumOp:  e.AccumOp,
	}
}

// Stab implements AccessStore at granule resolution: every entry whose
// granule intersects iv is reported with its granule interval.
func (s *Shadow) Stab(iv interval.Interval, fn func(access.Access) bool) bool {
	return s.mem.VisitRange(iv.Lo, iv.Hi, func(base uint64, e shadow.Entry) bool {
		return fn(s.entryAccess(base, e))
	})
}

// Walk implements AccessStore in arbitrary cell order.
func (s *Shadow) Walk(fn func(access.Access) bool) {
	s.mem.VisitAll(func(base uint64, e shadow.Entry) bool {
		return fn(s.entryAccess(base, e))
	})
}

// RemoveRank implements RankRemover via the shadow memory's per-rank
// retirement (the unsafe-flush ablation).
func (s *Shadow) RemoveRank(rank int) { s.mem.RemoveRank(rank) }

// RemoveRemote implements RemoteRemover via the shadow memory (the
// exclusive-unlock ordering: every remote one-sided entry retires).
func (s *Shadow) RemoveRemote(owner int) { s.mem.RemoveRemote(owner) }

// RemoveRankSpan implements SpanRemover via the shadow memory's
// granule-resolution range retirement (request-based local completion).
// Delete reports false here, so without this capability the generic
// trim would keep completed entries alive.
func (s *Shadow) RemoveRankSpan(rank int, iv interval.Interval) {
	s.mem.RemoveRankRange(rank, iv.Lo, iv.Hi)
}

// Clear implements AccessStore.
func (s *Shadow) Clear() { s.mem.Clear() }

// Len implements AccessStore: the number of live shadow cells.
func (s *Shadow) Len() int { return s.mem.Cells() }

var (
	_ AccessStore   = (*Shadow)(nil)
	_ RankRemover   = (*Shadow)(nil)
	_ RemoteRemover = (*Shadow)(nil)
	_ SpanRemover   = (*Shadow)(nil)
)
