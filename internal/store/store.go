// Package store defines the storage layer of the detector stack: the
// AccessStore interface every analyzer holds its per-(process, window)
// memory accesses in, together with adapters for the four concrete
// structures the reproduction compares — the balanced AVL interval tree
// of package itree (the contribution's store), the legacy lower-bound
// BST of package legacybst, the TSan-style shadow memory of package
// shadow, and the regular-section compression of package strided.
//
// The split makes backends swappable underneath a fixed detection
// algorithm (cmd/rmarace replay -store=..., BenchmarkAblationUnbalanced)
// instead of only whole analyzers: the ablation question "balanced vs.
// unbalanced search at equal algorithm" becomes a store selection.
//
// Detection logic (race predicates, fragmentation, merging, clocks)
// stays in the analyzers; a store only holds accesses and answers
// interval queries. Capabilities beyond the core interface — bulk
// insertion, neighbour-returning stabs, in-place extension, per-rank
// retirement — are optional interfaces with generic fallbacks, so the
// contribution's hot path keeps its allocation-free single traversal on
// the AVL backend while still running, more slowly, on any other.
package store

import (
	"fmt"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

// AccessStore is the minimal storage contract of an analyzer: a multiset
// of memory accesses queryable by interval intersection. Stores are not
// safe for concurrent use; like the analyzers that own them they are
// serialised by the per-(rank, window) engine lock.
type AccessStore interface {
	// Name identifies the backend ("avl", "legacy", "shadow", "strided").
	Name() string
	// Insert adds one access.
	Insert(a access.Access)
	// Delete removes a stored access whose interval equals iv and
	// reports whether one existed. Backends that cannot delete (the
	// legacy BST never removes nodes) report false.
	Delete(iv interval.Interval) bool
	// Stab calls fn for stored accesses intersecting iv, stopping early
	// if fn returns false, and reports whether the visit ran to
	// completion. Backends define their own completeness: the AVL tree
	// visits every intersection, the legacy BST only those on its
	// lower-bound descent path (the published false-negative defect).
	Stab(iv interval.Interval, fn func(access.Access) bool) bool
	// Walk calls fn for every stored access, stopping early if fn
	// returns false. Tree backends walk in ascending interval order.
	Walk(fn func(access.Access) bool)
	// Clear empties the store (end of an epoch).
	Clear()
	// Len returns the number of stored entries — BST nodes for the tree
	// backends (the Table 4 metric), shadow cells for the shadow
	// backend, tree nodes plus sections for the strided backend.
	Len() int
}

// BatchInserter is the optional bulk-insertion capability. InsertBatch
// must be equivalent to inserting the accesses in order; backends
// implement it when amortising per-call overhead is worthwhile.
type BatchInserter interface {
	InsertBatch(batch []access.Access)
}

// InsertBatch bulk-inserts through the capability when present, falling
// back to one Insert per access.
func InsertBatch(s AccessStore, batch []access.Access) {
	if b, ok := s.(BatchInserter); ok {
		b.InsertBatch(batch)
		return
	}
	for _, a := range batch {
		s.Insert(a)
	}
}

// NeighborStabber is the optional single-traversal stab of the
// contribution's hot path: one descent yields the intersecting accesses
// and the two boundary neighbours merging may coalesce with.
type NeighborStabber interface {
	StabNeighbors(iv interval.Interval, dst *[]access.Access) (left, right access.Access, hasLeft, hasRight bool)
}

// StabNeighbors performs the neighbour-returning stab through the
// capability when present. The fallback widens iv by one address on each
// side, stabs, and classifies the results by position; it is only
// meaningful under the disjointness invariant the contribution
// maintains (a neighbour touching iv.Lo-1 ends exactly there).
func StabNeighbors(s AccessStore, iv interval.Interval, dst *[]access.Access) (left, right access.Access, hasLeft, hasRight bool) {
	if ns, ok := s.(NeighborStabber); ok {
		return ns.StabNeighbors(iv, dst)
	}
	// The closure-based fallback lives in its own function so its
	// captures do not force this hot function's results onto the heap.
	return stabNeighborsGeneric(s, iv, dst)
}

func stabNeighborsGeneric(s AccessStore, iv interval.Interval, dst *[]access.Access) (left, right access.Access, hasLeft, hasRight bool) {
	wide := iv
	if wide.Lo > 0 {
		wide.Lo--
	}
	if wide.Hi+1 != 0 {
		wide.Hi++
	}
	s.Stab(wide, func(a access.Access) bool {
		switch {
		case a.Hi < iv.Lo:
			left, hasLeft = a, true
		case a.Lo > iv.Hi:
			right, hasRight = a, true
		default:
			*dst = append(*dst, a)
		}
		return true
	})
	return left, right, hasLeft, hasRight
}

// Extender is the optional in-place boundary-extension capability used
// by the merge fast path: growing a stored access over an adjacent new
// one without a delete+insert pair.
type Extender interface {
	ExtendHi(iv interval.Interval, newHi uint64) bool
	ExtendLo(iv interval.Interval, newLo uint64) bool
}

// ExtendHi grows stored access a (identified by its current interval) up
// to newHi, in place when the backend supports it, by delete+reinsert
// otherwise. It reports whether the access was found.
func ExtendHi(s AccessStore, a access.Access, newHi uint64) bool {
	if e, ok := s.(Extender); ok {
		return e.ExtendHi(a.Interval, newHi)
	}
	if !s.Delete(a.Interval) {
		return false
	}
	a.Hi = newHi
	s.Insert(a)
	return true
}

// ExtendLo lowers stored access a's lower bound to newLo; see ExtendHi.
func ExtendLo(s AccessStore, a access.Access, newLo uint64) bool {
	if e, ok := s.(Extender); ok {
		return e.ExtendLo(a.Interval, newLo)
	}
	if !s.Delete(a.Interval) {
		return false
	}
	a.Lo = newLo
	s.Insert(a)
	return true
}

// RankRemover is the optional per-rank retirement capability backing
// the unsafe-flush ablation (the published fig. 5 defect retires the
// calling rank's accesses). The fallback walks and deletes.
type RankRemover interface {
	RemoveRank(rank int)
}

// RemoveRank retires every stored access issued by rank.
func RemoveRank(s AccessStore, rank int) {
	if rr, ok := s.(RankRemover); ok {
		rr.RemoveRank(rank)
		return
	}
	var doomed []access.Access
	s.Walk(func(a access.Access) bool {
		if a.Rank == rank {
			doomed = append(doomed, a)
		}
		return true
	})
	for _, d := range doomed {
		s.Delete(d.Interval)
	}
}

// RemoteRemover is the optional retirement capability backing
// Analyzer.Release (exclusive-unlock ordering): retire every stored
// one-sided access issued by a rank other than the store's owner. The
// fallback walks and deletes.
type RemoteRemover interface {
	RemoveRemote(owner int)
}

// RemoveRemote retires every stored RMA access whose issuing rank is
// not owner. This is the storage effect of an exclusive MPI_Win_unlock:
// the per-target lock grants in FIFO order, so every lock session that
// completed before the unlock — the releasing origin's own and every
// earlier holder's, shared included — is ordered before every later
// holder's session. The owner's accesses (its origin-side buffers and
// unsynchronised local loads/stores) are never lock-ordered and
// survive. Unlike a per-rank retirement this is exact even after
// Table 1 fragment combination: remote accesses only ever share a
// fragment with other remote accesses, and those retire together.
func RemoveRemote(s AccessStore, owner int) {
	if rr, ok := s.(RemoteRemover); ok {
		rr.RemoveRemote(owner)
		return
	}
	var doomed []access.Access
	s.Walk(func(a access.Access) bool {
		if a.Rank != owner && a.Type.IsRMA() {
			doomed = append(doomed, a)
		}
		return true
	})
	for _, d := range doomed {
		s.Delete(d.Interval)
	}
}

// SpanRemover is the optional retirement capability backing
// Analyzer.CompleteRequest (request-based local completion): trim
// rank's stored one-sided accesses to the part outside iv. The
// fallback stabs and delete/reinserts.
type SpanRemover interface {
	RemoveRankSpan(rank int, iv interval.Interval)
}

// RemoveRankSpan retires the parts of rank's stored one-sided accesses
// that lie inside iv — the storage effect of a request's local
// completion (MPI_Wait/MPI_Waitall over an Rput/Rget whose origin
// buffer is iv): the completed buffer's accesses become ordered before
// everything after the wait on the issuing rank. A fragment extending
// past iv keeps its uncompleted remainder, so the retirement matches
// the reference semantics exactly on every backend with exact Delete;
// the legacy BST (Delete always false) keeps its accesses, which is
// sound — at worst extra pairs on buffer reuse. Local accesses and
// other ranks' accesses never retire here, and the request's
// target-side accesses live at a different analyzer entirely.
func RemoveRankSpan(s AccessStore, rank int, iv interval.Interval) {
	if sr, ok := s.(SpanRemover); ok {
		sr.RemoveRankSpan(rank, iv)
		return
	}
	var doomed []access.Access
	s.Stab(iv, func(a access.Access) bool {
		if a.Rank == rank && a.Type.IsRMA() {
			doomed = append(doomed, a)
		}
		return true
	})
	for _, d := range doomed {
		if !s.Delete(d.Interval) {
			continue
		}
		left, okL, right, okR := d.Interval.Subtract(iv)
		if okL {
			ls := d
			ls.Interval = left
			s.Insert(ls)
		}
		if okR {
			rs := d
			rs.Interval = right
			s.Insert(rs)
		}
	}
}

// Compacter is the optional memory-compaction capability: Compact
// releases capacity retained purely to amortise allocation (node free
// lists, spare buffers) without touching stored accesses, so it is
// always verdict-preserving. Backends without retained capacity simply
// don't implement it.
type Compacter interface {
	Compact()
}

// Compact releases a store's retained capacity through the capability
// when present; otherwise it is a no-op.
func Compact(s AccessStore) {
	if c, ok := s.(Compacter); ok {
		c.Compact()
	}
}

// Items returns the stored accesses in Walk order, for inspection and
// testing.
func Items(s AccessStore) []access.Access {
	out := make([]access.Access, 0, s.Len())
	s.Walk(func(a access.Access) bool {
		out = append(out, a)
		return true
	})
	return out
}

// Names lists the selectable backends in presentation order.
func Names() []string { return []string{"avl", "legacy", "shadow", "strided"} }

// New builds a backend by name. The AVL interval tree is the default
// store of the contribution; the others exist for ablation and
// comparison runs.
func New(name string) (AccessStore, error) {
	switch name {
	case "avl", "":
		return NewAVL(), nil
	case "legacy":
		return NewLegacyBST(), nil
	case "shadow":
		return NewShadow(), nil
	case "strided":
		return NewStrided(), nil
	}
	return nil, fmt.Errorf("store: unknown backend %q (have %v)", name, Names())
}
