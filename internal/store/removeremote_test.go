package store

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

// TestRemoveRemote checks the exclusive-unlock retirement across every
// backend that can delete: remote one-sided accesses go, the owner's
// one-sided and local accesses stay. The shadow backend reports at
// granule resolution, so the assertions only look at rank and type.
func TestRemoveRemote(t *testing.T) {
	const owner = 0
	mk := func(tp access.Type, rank int, lo uint64) access.Access {
		return access.Access{
			Interval: interval.Span(lo, 8),
			Type:     tp,
			Rank:     rank,
			Debug:    access.Debug{File: "f.c", Line: int(lo)},
		}
	}
	seed := []access.Access{
		mk(access.RMAWrite, 2, 0),       // remote RMA: retired
		mk(access.RMARead, 3, 16),       // remote RMA: retired
		mk(access.RMAWrite, owner, 32),  // owner's origin-side RMA: kept
		mk(access.LocalRead, owner, 48), // owner's local: kept
	}
	for _, name := range []string{"avl", "shadow", "strided"} {
		t.Run(name, func(t *testing.T) {
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range seed {
				s.Insert(a)
			}
			RemoveRemote(s, owner)
			for _, a := range Items(s) {
				if a.Rank != owner && a.Type.IsRMA() {
					t.Errorf("remote access survived: %+v", a)
				}
			}
			kept := map[access.Type]bool{}
			for _, a := range Items(s) {
				if a.Rank == owner {
					kept[a.Type] = true
				}
			}
			if !kept[access.RMAWrite] || !kept[access.LocalRead] {
				t.Errorf("owner's accesses retired: have %v", Items(s))
			}
		})
	}

	// The legacy BST cannot delete (Delete reports false), so the
	// generic fallback leaves it untouched — consistent with the
	// legacy tool ignoring unlock ordering.
	t.Run("legacy", func(t *testing.T) {
		s, err := New("legacy")
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range seed {
			s.Insert(a)
		}
		before := s.Len()
		RemoveRemote(s, owner)
		if s.Len() != before {
			t.Fatalf("legacy store changed: %d -> %d", before, s.Len())
		}
	})
}
