package store

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
	"rmarace/internal/obs"
)

// Instrumented decorates an AccessStore with observability: every
// insert, delete and stabbing query is recorded against an
// obs.Recorder under the owner's label (its rank). Stab queries
// additionally record how many stored entries the query visited — the
// measured "stab-query depth" of Algorithm 1's single traversal.
//
// The decorator forwards the optional capabilities through the
// package-level helpers, so a wrapped AVL backend keeps its
// single-traversal hot path and a wrapped legacy backend keeps its
// published defects. Extender is special: its signature carries only
// the interval, so the decorator claims it only when the backend
// really implements it (see Instrument) — otherwise the package
// fallback's delete+reinsert runs against the decorator with the full
// access and stays correct (and counted). The analyzers only wrap
// their store when recording is enabled; the disabled path never sees
// this type.
type Instrumented struct {
	inner AccessStore
	rec   obs.Recorder
	label int
}

// instrumentedExtender adds the in-place extension capability for
// backends that have it themselves.
type instrumentedExtender struct {
	*Instrumented
	ext Extender
}

// Instrument wraps s so its traffic is recorded against rec under
// label. A nil or disabled recorder returns s unchanged.
func Instrument(s AccessStore, rec obs.Recorder, label int) AccessStore {
	rec = obs.OrDisabled(rec)
	if !rec.Enabled() {
		return s
	}
	w := &Instrumented{inner: s, rec: rec, label: label}
	if ext, ok := s.(Extender); ok {
		return &instrumentedExtender{Instrumented: w, ext: ext}
	}
	return w
}

// Unwrap returns the decorated backend.
func (s *Instrumented) Unwrap() AccessStore { return s.inner }

// Name implements AccessStore, forwarding the backend's name.
func (s *Instrumented) Name() string { return s.inner.Name() }

// Insert implements AccessStore.
func (s *Instrumented) Insert(a access.Access) {
	s.rec.Add(obs.StoreInserts, s.label, 1)
	s.inner.Insert(a)
}

// InsertBatch implements BatchInserter through the generic helper.
func (s *Instrumented) InsertBatch(batch []access.Access) {
	s.rec.Add(obs.StoreInserts, s.label, int64(len(batch)))
	InsertBatch(s.inner, batch)
}

// Delete implements AccessStore.
func (s *Instrumented) Delete(iv interval.Interval) bool {
	ok := s.inner.Delete(iv)
	if ok {
		s.rec.Add(obs.StoreDeletes, s.label, 1)
	}
	return ok
}

// Stab implements AccessStore, recording the number of entries the
// query visited.
func (s *Instrumented) Stab(iv interval.Interval, fn func(access.Access) bool) bool {
	visited := int64(0)
	complete := s.inner.Stab(iv, func(a access.Access) bool {
		visited++
		return fn(a)
	})
	s.rec.Observe(obs.StabVisited, s.label, visited)
	return complete
}

// StabNeighbors implements NeighborStabber through the package helper
// (which uses the backend's own capability when present), recording
// intersections plus boundary neighbours as the visit count.
func (s *Instrumented) StabNeighbors(iv interval.Interval, dst *[]access.Access) (left, right access.Access, hasLeft, hasRight bool) {
	before := len(*dst)
	left, right, hasLeft, hasRight = StabNeighbors(s.inner, iv, dst)
	visited := int64(len(*dst) - before)
	if hasLeft {
		visited++
	}
	if hasRight {
		visited++
	}
	s.rec.Observe(obs.StabVisited, s.label, visited)
	return left, right, hasLeft, hasRight
}

// RemoveRank implements RankRemover through the package helper.
func (s *Instrumented) RemoveRank(rank int) {
	before := s.inner.Len()
	RemoveRank(s.inner, rank)
	if removed := before - s.inner.Len(); removed > 0 {
		s.rec.Add(obs.StoreDeletes, s.label, int64(removed))
	}
}

// RemoveRemote implements RemoteRemover through the package helper.
func (s *Instrumented) RemoveRemote(owner int) {
	before := s.inner.Len()
	RemoveRemote(s.inner, owner)
	if removed := before - s.inner.Len(); removed > 0 {
		s.rec.Add(obs.StoreDeletes, s.label, int64(removed))
	}
}

// Walk implements AccessStore.
func (s *Instrumented) Walk(fn func(access.Access) bool) { s.inner.Walk(fn) }

// Clear implements AccessStore.
func (s *Instrumented) Clear() { s.inner.Clear() }

// Len implements AccessStore.
func (s *Instrumented) Len() int { return s.inner.Len() }

// Compact implements Compacter through the package helper (a no-op when
// the backend has no retained capacity).
func (s *Instrumented) Compact() { Compact(s.inner) }

// ExtendHi implements Extender. The in-place extension counts as one
// insert (the merge fast path's node-growth write).
func (s *instrumentedExtender) ExtendHi(iv interval.Interval, newHi uint64) bool {
	s.rec.Add(obs.StoreInserts, s.label, 1)
	return s.ext.ExtendHi(iv, newHi)
}

// ExtendLo implements Extender; see ExtendHi.
func (s *instrumentedExtender) ExtendLo(iv interval.Interval, newLo uint64) bool {
	s.rec.Add(obs.StoreInserts, s.label, 1)
	return s.ext.ExtendLo(iv, newLo)
}

var (
	_ AccessStore     = (*Instrumented)(nil)
	_ NeighborStabber = (*Instrumented)(nil)
	_ BatchInserter   = (*Instrumented)(nil)
	_ RankRemover     = (*Instrumented)(nil)
	_ Extender        = (*instrumentedExtender)(nil)
)
