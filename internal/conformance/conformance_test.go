package conformance

import (
	"bytes"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"rmarace/internal/detector"
	"rmarace/internal/fuzz"
	"rmarace/internal/oracle"
)

// TestCorpusShape pins the corpus invariants the issue asks for: at
// least 60 cases over at least 6 categories, every category holding
// both safe and racy variants, unique names, and labels that are
// internally consistent (racy iff pairs are labeled, pairs canonical).
func TestCorpusShape(t *testing.T) {
	cases := Corpus()
	if len(cases) < 60 {
		t.Fatalf("corpus has %d cases, want >= 60", len(cases))
	}
	names := map[string]bool{}
	type catStat struct{ racy, safe int }
	cats := map[string]*catStat{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		names[c.Name] = true
		if !strings.HasPrefix(c.Name, c.Category[:4]) && !strings.HasPrefix(c.Name, c.Category) {
			// Names are prefixed by their category for greppability; the
			// lockchain/atomicmix categories abbreviate.
			switch c.Category {
			case CatLock, CatAtomic:
			default:
				t.Errorf("%s: name does not announce category %s", c.Name, c.Category)
			}
		}
		st := cats[c.Category]
		if st == nil {
			st = &catStat{}
			cats[c.Category] = st
		}
		if c.Racy {
			st.racy++
		} else {
			st.safe++
		}
		if c.Racy != (len(c.Pairs) > 0) {
			t.Errorf("%s: racy=%v but %d labeled pairs", c.Name, c.Racy, len(c.Pairs))
		}
		for _, p := range c.Pairs {
			if p[0] >= p[1] {
				t.Errorf("%s: pair %v not in canonical order", c.Name, p)
			}
		}
		switch c.Kind {
		case KindRemote, KindLocal, KindAtomic:
		default:
			t.Errorf("%s: unknown kind %q", c.Name, c.Kind)
		}
		if len(c.AccessSet()) == 0 {
			t.Errorf("%s: empty access set", c.Name)
		}
	}
	if len(cats) < 6 {
		t.Fatalf("corpus has %d categories, want >= 6 (%v)", len(cats), cats)
	}
	for cat, st := range cats {
		if st.racy == 0 || st.safe == 0 {
			t.Errorf("category %s lacks a variant: %d racy, %d safe", cat, st.racy, st.safe)
		}
	}
	for _, cat := range Categories() {
		if cats[cat] == nil {
			t.Errorf("declared category %s has no cases", cat)
		}
	}
}

// oraclePairs extracts the oracle's verdict set as sorted line pairs.
func oraclePairs(o *oracle.Oracle) [][2]int {
	var out [][2]int
	for _, k := range o.Keys() {
		a, b := k.A.Line, k.B.Line
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]int{a, b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TestOracleAgreesWithLabels is the label cross-check: for every case,
// under several schedules, the reference oracle's verdict must match
// the label and its verdict set must be exactly the labeled pairs —
// no more, no fewer. A corpus case whose label drifts from the model
// fails here before it can poison the scored baseline.
func TestOracleAgreesWithLabels(t *testing.T) {
	scheds := []int64{0, 7, 13}
	for _, c := range Corpus() {
		var first *oracle.Oracle
		for _, seed := range scheds {
			o, err := oracle.FromRecords(fuzz.Render(c.Program, seed))
			if err != nil {
				t.Fatalf("%s sched %d: %v", c.Name, seed, err)
			}
			if o.Raced() != c.Racy {
				t.Errorf("%s sched %d: oracle raced=%v, label says %v\n%s",
					c.Name, seed, o.Raced(), c.Racy, c.Program)
				continue
			}
			gotPairs := oraclePairs(o)
			wantPairs := append([][2]int(nil), c.Pairs...)
			sort.Slice(wantPairs, func(i, j int) bool {
				if wantPairs[i][0] != wantPairs[j][0] {
					return wantPairs[i][0] < wantPairs[j][0]
				}
				return wantPairs[i][1] < wantPairs[j][1]
			})
			if len(gotPairs) != len(wantPairs) {
				t.Errorf("%s sched %d: oracle found pairs %v, labeled %v\n%s",
					c.Name, seed, gotPairs, wantPairs, c.Program)
				continue
			}
			for i := range gotPairs {
				if gotPairs[i] != wantPairs[i] {
					t.Errorf("%s sched %d: oracle pair %v, labeled %v", c.Name, seed, gotPairs[i], wantPairs[i])
				}
			}
			if first == nil {
				first = o
			} else if !first.SameVerdicts(o) {
				t.Errorf("%s: verdict set differs between schedules", c.Name)
			}
		}
	}
}

// TestGatedConfigsPerfect is the headline acceptance gate: every
// gated configuration — the contribution across all store backends,
// shard counts and batch sizes — must score precision = recall = 1.0
// on every category, and every racy verdict must name the labeled
// call-site pair.
func TestGatedConfigsPerfect(t *testing.T) {
	cases := Corpus()
	var gated []Config
	for _, cfg := range Configs() {
		if cfg.Gated {
			gated = append(gated, cfg)
		}
	}
	if len(gated) < 12 {
		t.Fatalf("only %d gated configs, want >= 12", len(gated))
	}
	outs, err := Run(cases, gated)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outs {
		if out.Total.FP != 0 || out.Total.FN != 0 || out.Total.WrongPair != 0 {
			t.Errorf("%s: FP=%d FN=%d wrong-pair=%d; mismatches:\n  %s",
				out.Config.Name, out.Total.FP, out.Total.FN, out.Total.WrongPair,
				strings.Join(out.Mismatches, "\n  "))
		}
		for cat, sc := range out.ByCategory {
			if sc.Precision() != 1 || sc.Recall() != 1 {
				t.Errorf("%s %s: P=%.4f R=%.4f", out.Config.Name, cat, sc.Precision(), sc.Recall())
			}
		}
	}
}

// TestReferenceToolsImperfect proves the gate has teeth: the legacy
// published-tool configuration must still fail somewhere on this
// corpus (the Fig. 5 lower-bound canary at minimum, and the
// request-completion cases it has no notion of), so a change that
// accidentally routed the contribution through the legacy path would
// show up as a scored difference, not silence.
func TestReferenceToolsImperfect(t *testing.T) {
	cases := Corpus()
	outs, err := Run(cases, []Config{
		{Name: "rma-analyzer", Method: detector.RMAAnalyzer, Store: "legacy", Shards: 1, Batch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy := outs[0]
	if legacy.Total.FP == 0 && legacy.Total.FN == 0 {
		t.Fatalf("legacy canary scored perfectly; the corpus lost its discriminating cases")
	}
	// The Fig. 5 shape specifically must stay missed.
	canary := findCase(t, cases, "fence-lowerbound-miss-race")
	race, err := Replay(canary, legacy.Config)
	if err != nil {
		t.Fatal(err)
	}
	if race != nil {
		t.Errorf("legacy tool detected the lower-bound canary; it should miss it")
	}
}

func findCase(t *testing.T, cases []Case, name string) Case {
	t.Helper()
	for _, c := range cases {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("case %s missing", name)
	return Case{}
}

// TestReportRoundTrip: building, serialising and re-loading the
// baseline is lossless enough for the gate, and a run gates cleanly
// against its own report.
func TestReportRoundTrip(t *testing.T) {
	cases := Corpus()
	cfgs := []Config{
		{Name: "our/avl/s1/b1", Method: detector.OurContribution, Store: "avl", Shards: 1, Batch: 1, Gated: true},
		{Name: "rma-analyzer", Method: detector.RMAAnalyzer, Store: "legacy", Shards: 1, Batch: 1},
	}
	outs, err := Run(cases, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(cases, outs)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/CONFORMANCE.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Gate(loaded, rep); len(regs) != 0 {
		t.Errorf("self-gate regressions: %v", regs)
	}
	// Sanity: the table writer covers every config and category.
	var tbl bytes.Buffer
	WriteTable(&tbl, rep)
	for _, cfg := range cfgs {
		if !strings.Contains(tbl.String(), cfg.Name) {
			t.Errorf("table missing config %s", cfg.Name)
		}
	}
}

// TestGateDetectsRegression doctors a baseline to demand a better F1
// than the current run achieves and expects the gate to fire, plus
// the missing-config and missing-category failure modes.
func TestGateDetectsRegression(t *testing.T) {
	base := &Report{Schema: Schema, Categories: []string{CatFence}, Configs: []ConfigReport{{
		Name: "our/avl/s1/b1", Gated: true,
		Total:      Metrics{F1: 1},
		Categories: map[string]Metrics{CatFence: {F1: 1}, CatLock: {F1: 1}},
	}}}
	cur := &Report{Schema: Schema, Categories: []string{CatFence}, Configs: []ConfigReport{{
		Name: "our/avl/s1/b1", Gated: true,
		Total:      Metrics{F1: 0.9},
		Categories: map[string]Metrics{CatFence: {F1: 0.8}},
	}}}
	regs := Gate(base, cur)
	if len(regs) != 3 { // total drop, fence drop, lockchain missing
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
	if regs2 := Gate(base, &Report{Schema: Schema}); len(regs2) != 1 {
		t.Fatalf("missing config should be 1 regression, got %v", regs2)
	}
	// Improvement passes.
	better := &Report{Schema: Schema, Configs: []ConfigReport{{
		Name:       "our/avl/s1/b1",
		Total:      Metrics{F1: 1},
		Categories: map[string]Metrics{CatFence: {F1: 1}, CatLock: {F1: 1}},
	}}}
	if regs3 := Gate(base, better); len(regs3) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs3)
	}
}

// TestCorpusProgramsRoundTripCodec feeds every corpus program through
// the fuzz byte codec: a conformance case must be shareable as a seed
// (the differential fuzzer's native corpus format) without loss.
func TestCorpusProgramsRoundTripCodec(t *testing.T) {
	for _, c := range Corpus() {
		got := fuzz.Decode(fuzz.Encode(c.Program))
		if !reflect.DeepEqual(got, c.Program) {
			t.Errorf("%s: decode(encode) != program\n got %+v\nwant %+v", c.Name, got, c.Program)
		}
	}
}

// TestCommittedBaselineCurrent keeps CONFORMANCE.json honest: the
// committed baseline must gate cleanly against a fresh full run, and
// its headline facts (case count, schema) must match the corpus. A
// detector improvement that raises scores fails here until the
// baseline is regenerated (go run ./cmd/rmarace conformance -out
// CONFORMANCE.json), which is exactly the review moment the gate
// exists to force.
func TestCommittedBaselineCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus x config sweep")
	}
	baseline, err := LoadReport("../../CONFORMANCE.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	cases := Corpus()
	if baseline.Cases != len(cases) {
		t.Fatalf("baseline covers %d cases, corpus has %d: regenerate CONFORMANCE.json", baseline.Cases, len(cases))
	}
	outs, err := Run(cases, Configs())
	if err != nil {
		t.Fatal(err)
	}
	cur := BuildReport(cases, outs)
	if regs := Gate(baseline, cur); len(regs) != 0 {
		t.Errorf("current run regresses the committed baseline:\n  %s", strings.Join(regs, "\n  "))
	}
	// The reverse direction catches silent improvements (and any drift
	// in the committed numbers): gating the baseline against the fresh
	// run must be clean too, i.e. the file matches reality exactly.
	if regs := Gate(cur, baseline); len(regs) != 0 {
		t.Errorf("committed baseline is stale (scores improved): regenerate CONFORMANCE.json\n  %s",
			strings.Join(regs, "\n  "))
	}
}
