package conformance

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"rmarace/internal/fuzz"
	"rmarace/internal/serve"
	"rmarace/internal/trace"
)

// caseTrace serialises one corpus case as a JSON Lines trace body, the
// wire format a daemon client would upload.
func caseTrace(t *testing.T, c Case) []byte {
	t.Helper()
	var buf bytes.Buffer
	p := c.Program
	tw, err := trace.NewWriter(&buf, trace.Header{Ranks: p.Ranks * p.Windows, Window: "conformance"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range fuzz.Render(p, 0) {
		if err := tw.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// locationLine parses the line out of an AccessReport's "file:line".
func locationLine(t *testing.T, loc string) int {
	t.Helper()
	i := strings.LastIndexByte(loc, ':')
	if i < 0 {
		t.Fatalf("location %q has no line", loc)
	}
	n, err := strconv.Atoi(loc[i+1:])
	if err != nil {
		t.Fatalf("location %q: %v", loc, err)
	}
	return n
}

// TestServeConformanceSmoke pushes one racy and one safe corpus case
// through the analysis daemon end to end — HTTP upload, session,
// verdict document — and checks the served verdict matches the label
// and names the labeled call-site pair. This keeps the serve path on
// the same conformance footing as offline replay.
func TestServeConformanceSmoke(t *testing.T) {
	d := serve.NewDaemon(serve.Config{})
	srv := httptest.NewServer(d)
	defer srv.Close()

	cases := Corpus()
	for _, name := range []string{"request-wait-target-race", "request-wait-reuse-safe"} {
		c := findCase(t, cases, name)
		body := caseTrace(t, c)
		status, v, err := serve.Submit(context.Background(), srv.URL,
			func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil },
			serve.SubmitOpts{Query: url.Values{"method": {"our-contribution"}}})
		if err != nil {
			t.Fatalf("%s: submit: %v", name, err)
		}
		if status != 200 {
			t.Fatalf("%s: HTTP %d (%+v)", name, status, v)
		}
		if v.Error != "" {
			t.Fatalf("%s: served error: %s", name, v.Error)
		}
		if got := v.Race != nil; got != c.Racy {
			t.Errorf("%s: served race=%v, label says %v", name, got, c.Racy)
			continue
		}
		if c.Racy {
			a, b := locationLine(t, v.Race.Prev.Location), locationLine(t, v.Race.Cur.Location)
			if !c.HasPair(a, b) {
				t.Errorf("%s: served race blames lines %d/%d, labeled %v", name, a, b, c.Pairs)
			}
		}
	}
}
