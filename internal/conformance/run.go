package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"rmarace/internal/detector"
	"rmarace/internal/fuzz"
	"rmarace/internal/micro"
	"rmarace/internal/serve"
	"rmarace/internal/trace"
)

// Schema versions the CONFORMANCE.json document.
const Schema = "rmarace/conformance/v1"

// Config is one detector configuration under evaluation.
type Config struct {
	Name   string
	Method detector.Method
	Store  string
	Shards int
	Batch  int
	// Gated configurations are held to P = R = 1.0 with matching pairs
	// by the conformance test; ungated ones are comparison rows (the
	// published tool and MUST-RMA), pinned only against regression by
	// the CI diff gate.
	Gated bool
}

// Configs returns the evaluated configurations: the contribution
// across every store backend, sharded and unsharded, batched and
// per-event — all gated — plus the two reference tools.
func Configs() []Config {
	var out []Config
	for _, st := range []string{"avl", "strided", "shadow"} {
		for _, sh := range []int{1, 4} {
			for _, b := range []int{1, 64} {
				out = append(out, Config{
					Name:   fmt.Sprintf("our/%s/s%d/b%d", st, sh, b),
					Method: detector.OurContribution,
					Store:  st, Shards: sh, Batch: b, Gated: true,
				})
			}
		}
	}
	return append(out,
		Config{Name: "rma-analyzer", Method: detector.RMAAnalyzer, Store: "legacy", Shards: 1, Batch: 1},
		Config{Name: "must-rma", Method: detector.MustRMAMethod, Store: "", Shards: 1, Batch: 1},
	)
}

// recordsSource adapts an in-memory record slice to trace.Source, so a
// rendered case replays through exactly the streaming path a recorded
// trace file uses.
type recordsSource struct {
	hdr  trace.Header
	recs []trace.Record
	i    int
}

func (s *recordsSource) Head() trace.Header { return s.hdr }
func (s *recordsSource) Pos() string        { return fmt.Sprintf("record %d", s.i) }
func (s *recordsSource) BytesRead() int64   { return int64(s.i) }
func (s *recordsSource) Read(rec *trace.Record) error {
	if s.i >= len(s.recs) {
		return io.EOF
	}
	*rec = s.recs[s.i]
	s.i++
	return nil
}

// Replay runs one case under one configuration and returns the
// verdict. Schedule seed 0 (program order) keeps the evaluation
// deterministic; the oracle cross-check test covers other schedules.
func Replay(c Case, cfg Config) (*detector.Race, error) {
	p := c.Program
	streams := p.Ranks * p.Windows
	factory, _, err := serve.NewAnalyzerFactory(cfg.Method, streams, cfg.Store, cfg.Shards, nil)
	if err != nil {
		return nil, err
	}
	src := &recordsSource{
		hdr:  trace.Header{Kind: "header", Ranks: streams, Window: "conformance"},
		recs: fuzz.Render(p, 0),
	}
	res, err := trace.ReplayStream(src, factory, trace.ReplayOpts{Batch: cfg.Batch})
	if err != nil {
		return nil, err
	}
	return res.Race, nil
}

// PairOK reports whether a race verdict names one of the case's
// labeled call-site pairs.
func PairOK(c Case, r *detector.Race) bool {
	if r == nil {
		return false
	}
	k := detector.DedupKey(r)
	return c.HasPair(k.A.Line, k.B.Line)
}

// Score extends the confusion matrix with the pair-identity failure
// mode a plain detected/undetected split cannot see: a verdict that
// flags a racy case but blames the wrong call-site pair counts as a
// miss (FN) and increments WrongPair.
type Score struct {
	micro.Confusion
	WrongPair int
}

func (s *Score) observe(c Case, race *detector.Race) {
	detected := race != nil
	switch {
	case c.Racy && detected && PairOK(c, race):
		s.TP++
	case c.Racy && detected:
		s.FN++
		s.WrongPair++
	case c.Racy:
		s.FN++
	case detected:
		s.FP++
	default:
		s.TN++
	}
}

// Outcome is one configuration's evaluation over the corpus.
type Outcome struct {
	Config     Config
	Total      Score
	ByCategory map[string]*Score
	// Mismatches lists every case the configuration got wrong, with the
	// failure mode, for humans debugging a gate failure.
	Mismatches []string
}

// Run evaluates every configuration over the corpus.
func Run(cases []Case, cfgs []Config) ([]Outcome, error) {
	outs := make([]Outcome, 0, len(cfgs))
	for _, cfg := range cfgs {
		out := Outcome{Config: cfg, ByCategory: map[string]*Score{}}
		for _, c := range cases {
			race, err := Replay(c, cfg)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s under %s: %w", c.Name, cfg.Name, err)
			}
			cat := out.ByCategory[c.Category]
			if cat == nil {
				cat = &Score{}
				out.ByCategory[c.Category] = cat
			}
			out.Total.observe(c, race)
			cat.observe(c, race)
			switch {
			case c.Racy && race == nil:
				out.Mismatches = append(out.Mismatches, fmt.Sprintf("%s: FN (missed race)", c.Name))
			case c.Racy && !PairOK(c, race):
				k := detector.DedupKey(race)
				out.Mismatches = append(out.Mismatches,
					fmt.Sprintf("%s: wrong pair (reported lines %d/%d, labeled %v)", c.Name, k.A.Line, k.B.Line, c.Pairs))
			case !c.Racy && race != nil:
				out.Mismatches = append(out.Mismatches, fmt.Sprintf("%s: FP (%s)", c.Name, race.Message()))
			}
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// Metrics is the serialised form of a Score: counts plus derived
// ratios, rounded so the JSON diffs cleanly.
type Metrics struct {
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	TN        int     `json:"tn"`
	WrongPair int     `json:"wrong_pair,omitempty"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

func (s *Score) metrics() Metrics {
	return Metrics{
		TP: s.TP, FP: s.FP, FN: s.FN, TN: s.TN, WrongPair: s.WrongPair,
		Precision: round4(s.Precision()),
		Recall:    round4(s.Recall()),
		F1:        round4(s.F1()),
	}
}

// ConfigReport is one configuration's scores in the baseline document.
type ConfigReport struct {
	Name       string             `json:"name"`
	Gated      bool               `json:"gated"`
	Total      Metrics            `json:"total"`
	Categories map[string]Metrics `json:"categories"`
}

// Report is the committed CONFORMANCE.json document.
type Report struct {
	Schema     string         `json:"schema"`
	Cases      int            `json:"cases"`
	Racy       int            `json:"racy"`
	Categories []string       `json:"categories"`
	Configs    []ConfigReport `json:"configs"`
}

// BuildReport assembles the baseline document from a run.
func BuildReport(cases []Case, outs []Outcome) *Report {
	racy := 0
	for _, c := range cases {
		if c.Racy {
			racy++
		}
	}
	rep := &Report{Schema: Schema, Cases: len(cases), Racy: racy, Categories: Categories()}
	for _, out := range outs {
		cr := ConfigReport{
			Name: out.Config.Name, Gated: out.Config.Gated,
			Total:      out.Total.metrics(),
			Categories: map[string]Metrics{},
		}
		for cat, sc := range out.ByCategory {
			cr.Categories[cat] = sc.metrics()
		}
		rep.Configs = append(rep.Configs, cr)
	}
	return rep
}

// WriteJSON serialises the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport reads a committed baseline.
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("conformance: %s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// Gate compares a fresh run against the committed baseline and
// returns one message per regression: a configuration or category
// that disappeared, or any per-category (or total) F1 that dropped.
// Improvements pass; refresh the baseline to lock them in.
func Gate(baseline, current *Report) []string {
	var regressions []string
	byName := map[string]*ConfigReport{}
	for i := range current.Configs {
		byName[current.Configs[i].Name] = &current.Configs[i]
	}
	for _, base := range baseline.Configs {
		cur, ok := byName[base.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("config %s missing from current run", base.Name))
			continue
		}
		if cur.Total.F1 < base.Total.F1 {
			regressions = append(regressions,
				fmt.Sprintf("%s total: F1 %.4f -> %.4f", base.Name, base.Total.F1, cur.Total.F1))
		}
		cats := make([]string, 0, len(base.Categories))
		for cat := range base.Categories {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		for _, cat := range cats {
			bm := base.Categories[cat]
			cm, ok := cur.Categories[cat]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s %s: category missing from current run", base.Name, cat))
				continue
			}
			if cm.F1 < bm.F1 {
				regressions = append(regressions,
					fmt.Sprintf("%s %s: F1 %.4f -> %.4f", base.Name, cat, bm.F1, cm.F1))
			}
		}
	}
	return regressions
}

// WriteTable prints the per-configuration, per-category score table.
func WriteTable(w io.Writer, r *Report) {
	fmt.Fprintf(w, "conformance corpus: %d cases (%d racy, %d safe), %d categories\n",
		r.Cases, r.Racy, r.Cases-r.Racy, len(r.Categories))
	fmt.Fprintf(w, "%-22s %-11s %5s %3s %3s %3s %3s %6s %7s %7s %7s\n",
		"config", "category", "gated", "tp", "fp", "fn", "tn", "wrong", "prec", "recall", "f1")
	for _, cfg := range r.Configs {
		gated := "-"
		if cfg.Gated {
			gated = "yes"
		}
		row := func(cat string, m Metrics) {
			fmt.Fprintf(w, "%-22s %-11s %5s %3d %3d %3d %3d %6d %7.4f %7.4f %7.4f\n",
				cfg.Name, cat, gated, m.TP, m.FP, m.FN, m.TN, m.WrongPair, m.Precision, m.Recall, m.F1)
		}
		row("TOTAL", cfg.Total)
		for _, cat := range r.Categories {
			if m, ok := cfg.Categories[cat]; ok {
				row(cat, m)
			}
		}
	}
}
