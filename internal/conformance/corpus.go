// Package conformance holds a labeled MPI-RMA scenario corpus in the
// mold of RMARaceBench: small deterministic programs, each with a
// machine-readable ground-truth label (does it race, which call-site
// pair races, what kind of race it is), organised along the
// synchronisation axes the random fuzzer under-samples — fence-only
// codes, per-target lock chains over multiple windows, hybrid
// rank-internal threads, request-based Rput/Rget completion, derived
// (strided) datatypes, atomics-vs-put mixes and PSCW exposure epochs.
//
// The corpus reuses the fuzz grammar (internal/fuzz) as its program
// notation and fuzz.Render as its instrumentation model, so every case
// is replayable through any detector configuration exactly like a
// recorded trace. The runner (run.go) scores configurations with
// per-category precision/recall/F1 and verifies that racy verdicts
// name the labeled pair; CONFORMANCE.json at the repo root pins the
// scores and CI fails on any per-category F1 regression.
package conformance

import (
	"sort"

	"rmarace/internal/access"
	"rmarace/internal/fuzz"
)

// Race kinds, following RMARaceBench's taxonomy: a remote race is
// RMA-vs-RMA on target memory, a local race involves a CPU load/store
// or an origin-buffer access, an atomic race involves an accumulate.
const (
	KindRemote = "remote"
	KindLocal  = "local"
	KindAtomic = "atomic"
)

// Corpus categories: one per synchronisation/shape axis.
const (
	CatFence    = "fence"     // active-target fence epochs
	CatLock     = "lockchain" // per-target lock/unlock chains, multi-window
	CatHybrid   = "hybrid"    // rank-internal worker threads, signal/wait
	CatRequest  = "request"   // Rput/Rget with Waitall local completion
	CatDatatype = "datatype"  // derived (strided) datatypes
	CatAtomic   = "atomicmix" // accumulate vs accumulate/put/get/local
	CatPSCW     = "pscw"      // general active-target synchronisation
)

// Categories lists every corpus category in display order.
func Categories() []string {
	return []string{CatFence, CatLock, CatHybrid, CatRequest, CatDatatype, CatAtomic, CatPSCW}
}

// Case is one labeled conformance scenario.
type Case struct {
	Name     string
	Category string
	// Kind classifies the labeled race (KindRemote/KindLocal/KindAtomic);
	// for safe cases it names the kind of race the scenario narrowly
	// avoids, documenting what the safe variant is a control for.
	Kind string
	// Racy is the ground-truth verdict.
	Racy bool
	// Pairs enumerates every racing call-site pair as unordered synthetic
	// line pairs (fuzz.Normalize assigns line 100+i to op i). A sound
	// detector reporting this case racy must name one of these pairs;
	// the oracle must find exactly this set. Empty for safe cases.
	Pairs [][2]int
	// Program is the scenario, in the fuzz grammar (pre-Normalize).
	Program fuzz.Program
	// Notes says why the label holds, for humans reading mismatches.
	Notes string
}

// Sync names the case's synchronisation discipline.
func (c Case) Sync() string { return c.Program.Sync.String() }

// AccessSet lists the distinct operation kinds the case exercises,
// under their MPI names, sorted.
func (c Case) AccessSet() []string {
	seen := map[string]bool{}
	for _, op := range c.Program.Ops {
		seen[opName(op.Kind)] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func opName(k fuzz.OpKind) string {
	switch k {
	case fuzz.OpPut:
		return "MPI_Put"
	case fuzz.OpGet:
		return "MPI_Get"
	case fuzz.OpAccum:
		return "MPI_Accumulate"
	case fuzz.OpRput:
		return "MPI_Rput"
	case fuzz.OpRget:
		return "MPI_Rget"
	case fuzz.OpWaitAll:
		return "MPI_Waitall"
	case fuzz.OpSignal:
		return "thread_signal"
	case fuzz.OpWaitSig:
		return "thread_wait"
	case fuzz.OpLoad:
		return "load"
	default:
		return "store"
	}
}

// HasPair reports whether the unordered line pair {a, b} is one of the
// labeled racing pairs.
func (c Case) HasPair(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, p := range c.Pairs {
		if p[0] == a && p[1] == b {
			return true
		}
	}
	return false
}

// --- program notation helpers -----------------------------------------

func prog(ranks, epochs int, sync fuzz.SyncKind, windows int, ops ...fuzz.Op) fuzz.Program {
	return fuzz.Program{Ranks: ranks, Epochs: epochs, Sync: sync, Windows: windows, Ops: ops}
}

func rma(k fuzz.OpKind, origin, target, woff, lslot, n int) fuzz.Op {
	return fuzz.Op{Kind: k, Origin: origin, Target: target, WOff: woff, LSlot: lslot, Len: n}
}

func put(o, t, woff, lslot, n int) fuzz.Op  { return rma(fuzz.OpPut, o, t, woff, lslot, n) }
func get(o, t, woff, lslot, n int) fuzz.Op  { return rma(fuzz.OpGet, o, t, woff, lslot, n) }
func rput(o, t, woff, lslot, n int) fuzz.Op { return rma(fuzz.OpRput, o, t, woff, lslot, n) }
func rget(o, t, woff, lslot, n int) fuzz.Op { return rma(fuzz.OpRget, o, t, woff, lslot, n) }

func acc(o, t, woff, lslot, n int, aop access.AccumOp) fuzz.Op {
	op := rma(fuzz.OpAccum, o, t, woff, lslot, n)
	op.AOp = aop
	return op
}

// loadP/storeP access the rank's private buffer; loadW/storeW its own
// window memory.
func loadP(o, slot, n int) fuzz.Op  { return fuzz.Op{Kind: fuzz.OpLoad, Origin: o, LSlot: slot, Len: n} }
func storeP(o, slot, n int) fuzz.Op { return fuzz.Op{Kind: fuzz.OpStore, Origin: o, LSlot: slot, Len: n} }
func loadW(o, woff, n int) fuzz.Op {
	return fuzz.Op{Kind: fuzz.OpLoad, Origin: o, OnWin: true, WOff: woff, Len: n}
}
func storeW(o, woff, n int) fuzz.Op {
	return fuzz.Op{Kind: fuzz.OpStore, Origin: o, OnWin: true, WOff: woff, Len: n}
}

func waitall(o int) fuzz.Op { return fuzz.Op{Kind: fuzz.OpWaitAll, Origin: o} }
func signal(o int) fuzz.Op  { return fuzz.Op{Kind: fuzz.OpSignal, Origin: o} }
func waitsig(o int) fuzz.Op { return fuzz.Op{Kind: fuzz.OpWaitSig, Origin: o, Thread: 1} }

func onWin(op fuzz.Op, w int) fuzz.Op { op.Win = w; return op }
func th1(op fuzz.Op) fuzz.Op          { op.Thread = 1; return op }
func sh(op fuzz.Op) fuzz.Op           { op.Shared = true; return op }
func blocks(op fuzz.Op, count, stride int) fuzz.Op {
	op.Count, op.Stride = count, stride
	return op
}

func pair(a, b int) [][2]int { return [][2]int{{a, b}} }

// Corpus returns every labeled case, normalized. Labels are pinned by
// the oracle cross-check test (every case, several schedules) and by
// the sound-configuration gate (P = R = 1.0 with matching pairs).
func Corpus() []Case {
	cases := fenceCases()
	cases = append(cases, lockChainCases()...)
	cases = append(cases, hybridCases()...)
	cases = append(cases, requestCases()...)
	cases = append(cases, datatypeCases()...)
	cases = append(cases, atomicCases()...)
	cases = append(cases, pscwCases()...)
	for i := range cases {
		cases[i].Program = fuzz.Normalize(cases[i].Program)
	}
	return cases
}

func fenceCases() []Case {
	return []Case{
		{
			Name: "fence-concurrent-puts-race", Category: CatFence, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncFence, 1,
				put(0, 2, 0, 0, 2), put(1, 2, 1, 2, 2)),
			Notes: "two origins write overlapping target slots in one fence epoch",
		},
		{
			Name: "fence-epoch-separated-safe", Category: CatFence, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 2, fuzz.SyncFence, 1,
				put(0, 2, 0, 0, 2), put(1, 2, 1, 2, 2)),
			Notes: "the same conflicting writes, separated by a fence",
		},
		{
			Name: "fence-local-store-vs-put-race", Category: CatFence, Kind: KindLocal,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 1, fuzz.SyncFence, 1,
				storeW(1, 0, 2), put(0, 1, 1, 0, 2)),
			Notes: "target rank stores to its exposed window while a remote put lands",
		},
		{
			Name: "fence-local-store-epoch-safe", Category: CatFence, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 2, fuzz.SyncFence, 1,
				storeW(1, 0, 2), put(0, 1, 1, 0, 2)),
			Notes: "the local store and the put live in different fence epochs",
		},
		{
			Name: "fence-get-get-safe", Category: CatFence, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncFence, 1,
				get(0, 2, 0, 0, 2), get(1, 2, 0, 2, 2)),
			Notes: "concurrent overlapping reads never race",
		},
		{
			Name: "fence-get-vs-put-race", Category: CatFence, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncFence, 1,
				get(0, 2, 0, 0, 2), put(1, 2, 1, 0, 2)),
			Notes: "a remote read overlaps a concurrent remote write",
		},
		{
			Name: "fence-origin-reuse-race", Category: CatFence, Kind: KindLocal,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 1, fuzz.SyncFence, 1,
				put(0, 1, 0, 0, 2), storeP(0, 0, 2)),
			Notes: "the origin buffer of an uncompleted put is overwritten locally",
		},
		{
			Name: "fence-load-before-get-safe", Category: CatFence, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncFence, 1,
				loadP(0, 0, 1), get(0, 1, 0, 0, 1)),
			Notes: "§5.2: a local read ordered before the same rank's MPI_Get is exempt",
		},
		{
			Name: "fence-three-epochs-safe", Category: CatFence, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 3, fuzz.SyncFence, 1,
				put(0, 1, 0, 0, 2), put(0, 1, 0, 2, 2), storeW(1, 0, 2)),
			Notes: "three overlapping accesses to one region, one fence epoch each",
		},
		{
			Name: "fence-adjacent-puts-safe", Category: CatFence, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncFence, 1,
				put(0, 2, 0, 0, 2), put(0, 2, 2, 2, 2), put(1, 2, 4, 0, 2)),
			Notes: "boundary-adjacent writes must not blur into an overlap",
		},
		{
			// The published tool's lower-bound descent walks past the wide
			// stored read (Fig. 5); the legacy canary configuration must
			// keep failing this case so the gate can prove it still bites.
			Name: "fence-lowerbound-miss-race", Category: CatFence, Kind: KindRemote,
			Racy: true, Pairs: pair(101, 102),
			Program: prog(3, 1, fuzz.SyncFence, 1,
				get(1, 2, 2, 0, 1), get(0, 2, 1, 0, 3), put(1, 2, 3, 2, 1)),
			Notes: "racing interval off the BST lower-bound path (paper Fig. 5)",
		},
	}
}

func lockChainCases() []Case {
	return []Case{
		{
			Name: "lockchain-exclusive-serialised-safe", Category: CatLock, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLock, 1,
				put(0, 1, 0, 0, 2), put(2, 1, 1, 0, 2)),
			Notes: "exclusive unlocks retire each holder's accesses in turn",
		},
		{
			Name: "lockchain-shared-overlap-race", Category: CatLock, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLock, 1,
				sh(put(0, 1, 0, 0, 2)), sh(put(2, 1, 1, 0, 2))),
			Notes: "shared locks admit both holders concurrently",
		},
		{
			Name: "lockchain-shared-get-put-race", Category: CatLock, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLock, 1,
				sh(get(0, 1, 0, 0, 2)), sh(put(2, 1, 1, 0, 2))),
			Notes: "shared-lock read overlaps a shared-lock write",
		},
		{
			Name: "lockchain-windows-isolate-safe", Category: CatLock, Kind: KindRemote,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncLock, 2,
				onWin(sh(put(0, 1, 0, 0, 2)), 0), onWin(sh(put(0, 1, 0, 2, 2)), 1)),
			Notes: "same offsets, different windows: detector state is per-window",
		},
		{
			Name: "lockchain-exclusive-two-windows-safe", Category: CatLock, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLock, 2,
				onWin(put(0, 1, 0, 0, 2), 0), onWin(put(2, 1, 0, 0, 2), 1)),
			Notes: "exclusive chains on two windows never meet",
		},
		{
			Name: "lockchain-two-windows-one-racy", Category: CatLock, Kind: KindRemote,
			Racy: true, Pairs: pair(102, 103),
			Program: prog(3, 1, fuzz.SyncLock, 2,
				onWin(sh(put(0, 2, 0, 0, 2)), 0), onWin(sh(put(1, 2, 4, 0, 2)), 0),
				onWin(sh(get(0, 2, 0, 2, 2)), 1), onWin(sh(put(1, 2, 1, 2, 2)), 1)),
			Notes: "window 0 traffic is disjoint; the race is confined to window 1",
		},
		{
			Name: "lockchain-shared-read-read-safe", Category: CatLock, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLock, 2,
				onWin(sh(get(0, 1, 0, 0, 2)), 1), onWin(sh(get(2, 1, 1, 2, 2)), 1)),
			Notes: "overlapping shared-lock reads on the second window",
		},
		{
			Name: "lockchain-shared-accum-put-race", Category: CatLock, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLock, 2,
				onWin(sh(acc(0, 1, 0, 0, 2, access.AccumSum)), 1), onWin(sh(put(2, 1, 1, 2, 2)), 1)),
			Notes: "an accumulate is not atomic against a plain put",
		},
	}
}

func hybridCases() []Case {
	return []Case{
		{
			Name: "hybrid-stale-thread-local-race", Category: CatHybrid, Kind: KindLocal,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 2, fuzz.SyncFence, 1,
				storeW(1, 0, 2), th1(put(0, 1, 1, 0, 2))),
			Notes: "the worker thread was never resynchronised: its put still runs in epoch 0",
		},
		{
			Name: "hybrid-waitsig-resync-safe", Category: CatHybrid, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 2, fuzz.SyncFence, 1,
				storeW(1, 0, 2), waitsig(0), th1(put(0, 1, 1, 0, 2))),
			Notes: "the signal/wait handshake moves the worker's put into epoch 1",
		},
		{
			Name: "hybrid-threads-cross-rank-race", Category: CatHybrid, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				th1(put(0, 2, 0, 0, 2)), put(1, 2, 1, 0, 2)),
			Notes: "a worker-thread put conflicts with another rank's main-thread put",
		},
		{
			Name: "hybrid-threads-disjoint-safe", Category: CatHybrid, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				th1(put(0, 2, 0, 0, 2)), put(1, 2, 4, 0, 2)),
			Notes: "the same thread shape over disjoint target slots",
		},
		{
			Name: "hybrid-stale-thread-remote-race", Category: CatHybrid, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 2, fuzz.SyncFence, 1,
				put(0, 2, 0, 0, 2), th1(put(1, 2, 1, 0, 2))),
			Notes: "the second epoch's worker put is hoisted back into epoch 0",
		},
		{
			Name: "hybrid-resync-remote-safe", Category: CatHybrid, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 2, fuzz.SyncFence, 1,
				put(0, 2, 0, 0, 2), waitsig(1), th1(put(1, 2, 1, 0, 2))),
			Notes: "after the wait, the worker put really executes in epoch 1",
		},
		{
			Name: "hybrid-thread-get-get-safe", Category: CatHybrid, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				th1(get(0, 2, 0, 0, 2)), get(1, 2, 1, 2, 2)),
			Notes: "cross-thread overlapping reads",
		},
		{
			Name: "hybrid-thread-accum-mixed-race", Category: CatHybrid, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				th1(acc(0, 2, 0, 0, 2, access.AccumSum)), acc(1, 2, 1, 2, 2, access.AccumMax)),
			Notes: "mixed reduction operations are not atomic against each other",
		},
		{
			Name: "hybrid-signal-only-safe", Category: CatHybrid, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				signal(0), th1(put(0, 1, 0, 0, 2)), storeP(1, 0, 2)),
			Notes: "the worker put and the target's private store touch disjoint memory",
		},
	}
}

func requestCases() []Case {
	return []Case{
		{
			Name: "request-wait-reuse-safe", Category: CatRequest, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rput(0, 1, 0, 0, 2), waitall(0), storeP(0, 0, 2)),
			Notes: "MPI_Waitall locally completes the rput before the buffer is reused",
		},
		{
			Name: "request-nowait-reuse-race", Category: CatRequest, Kind: KindLocal,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rput(0, 1, 0, 0, 2), storeP(0, 0, 2)),
			Notes: "the rput is still outstanding when its origin buffer is overwritten",
		},
		{
			Name: "request-wait-target-race", Category: CatRequest, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 102),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				rput(0, 2, 0, 0, 2), waitall(0), put(1, 2, 1, 2, 2)),
			Notes: "MPI_Wait is local completion only: the target window stays unsynchronised",
		},
		{
			Name: "request-rget-wait-load-safe", Category: CatRequest, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rget(0, 1, 0, 0, 2), waitall(0), loadP(0, 0, 2)),
			Notes: "the completed rget's destination buffer is safe to read",
		},
		{
			Name: "request-rget-nowait-load-race", Category: CatRequest, Kind: KindLocal,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rget(0, 1, 0, 0, 2), loadP(0, 0, 2)),
			Notes: "reading an rget destination before its MPI_Wait",
		},
		{
			Name: "request-two-waits-reuse-safe", Category: CatRequest, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rput(0, 1, 0, 0, 2), rput(0, 1, 2, 2, 2), waitall(0), storeP(0, 1, 2)),
			Notes: "one waitall completes both outstanding requests",
		},
		{
			Name: "request-epoch-clears-safe", Category: CatRequest, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 2, fuzz.SyncLockAll, 1,
				rput(0, 1, 0, 0, 2), storeP(0, 0, 2)),
			Notes: "the unlock_all boundary completes the epoch's requests wholesale",
		},
		{
			Name: "request-second-flight-race", Category: CatRequest, Kind: KindLocal,
			Racy: true, Pairs: pair(102, 103),
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rput(0, 1, 0, 0, 2), waitall(0), rput(0, 1, 2, 0, 2), storeP(0, 0, 2)),
			Notes: "only the first flight was waited on; the second still owns the buffer",
		},
		{
			Name: "request-partial-trim-race", Category: CatRequest, Kind: KindLocal,
			Racy: true, Pairs: pair(101, 103),
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				rput(0, 1, 0, 0, 2), put(0, 1, 4, 1, 2), waitall(0), storeP(0, 2, 1)),
			Notes: "completion trims the span, leaving the blocking put's tail fragment live",
		},
		{
			Name: "request-waitall-empty-safe", Category: CatRequest, Kind: KindRemote,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				waitall(0), put(0, 1, 0, 0, 2)),
			Notes: "a waitall with nothing outstanding completes nothing",
		},
	}
}

func datatypeCases() []Case {
	return []Case{
		{
			Name: "datatype-block-collision-race", Category: CatDatatype, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 2, 0, 0, 1), 2, 3), put(1, 2, 3, 2, 1)),
			Notes: "the strided put's second block collides with a contiguous put",
		},
		{
			Name: "datatype-interleaved-safe", Category: CatDatatype, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 2, 0, 0, 1), 3, 2), blocks(put(1, 2, 1, 0, 1), 3, 2)),
			Notes: "two interleaved single-slot strides, fully disjoint",
		},
		{
			Name: "datatype-adjacent-blocks-safe", Category: CatDatatype, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 2, 0, 0, 2), 2, 2), put(1, 2, 4, 0, 2)),
			Notes: "stride == len: the blocks are contiguous and end exactly where the put begins",
		},
		{
			Name: "datatype-stride-vs-get-race", Category: CatDatatype, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 2, 0, 0, 1), 2, 3), get(1, 2, 3, 0, 1)),
			Notes: "a remote read lands on the second strided block",
		},
		{
			Name: "datatype-strides-share-block-race", Category: CatDatatype, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 2, 0, 0, 1), 2, 3), blocks(put(1, 2, 3, 0, 1), 2, 3)),
			Notes: "two strided writes share exactly one block",
		},
		{
			Name: "datatype-strides-disjoint-safe", Category: CatDatatype, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 2, 0, 0, 1), 2, 3), blocks(put(1, 2, 1, 0, 1), 2, 3)),
			Notes: "the same stride offset by one slot: no block meets another",
		},
		{
			Name: "datatype-origin-span-race", Category: CatDatatype, Kind: KindLocal,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				blocks(put(0, 1, 0, 0, 2), 2, 3), storeP(0, 2, 2)),
			Notes: "the origin buffer of a strided put is one contiguous len*count span",
		},
		{
			Name: "datatype-strided-get-get-safe", Category: CatDatatype, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(get(0, 2, 0, 0, 1), 2, 2), get(1, 2, 0, 2, 2)),
			Notes: "strided and contiguous reads overlap harmlessly",
		},
		{
			Name: "datatype-strided-accum-same-safe", Category: CatDatatype, Kind: KindAtomic,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				blocks(acc(0, 2, 0, 0, 1, access.AccumSum), 2, 2), blocks(acc(1, 2, 0, 2, 1, access.AccumSum), 2, 2)),
			Notes: "same-operation accumulates stay atomic block by block",
		},
	}
}

func atomicCases() []Case {
	return []Case{
		{
			Name: "atomic-same-op-safe", Category: CatAtomic, Kind: KindAtomic,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), acc(1, 2, 0, 2, 2, access.AccumSum)),
			Notes: "MPI_SUM against MPI_SUM is element-wise atomic",
		},
		{
			Name: "atomic-mixed-op-race", Category: CatAtomic, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), acc(1, 2, 1, 2, 2, access.AccumMax)),
			Notes: "MPI_SUM against MPI_MAX loses atomicity",
		},
		{
			Name: "atomic-vs-put-race", Category: CatAtomic, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), put(1, 2, 1, 2, 2)),
			Notes: "a plain put is never atomic against an accumulate",
		},
		{
			Name: "atomic-vs-get-race", Category: CatAtomic, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), get(1, 2, 1, 2, 2)),
			Notes: "a concurrent read can observe a half-applied accumulate",
		},
		{
			Name: "atomic-three-origins-safe", Category: CatAtomic, Kind: KindAtomic,
			Racy: false,
			Program: prog(4, 1, fuzz.SyncLockAll, 1,
				acc(0, 3, 0, 0, 2, access.AccumSum), acc(1, 3, 0, 2, 2, access.AccumSum),
				acc(2, 3, 1, 4, 2, access.AccumSum)),
			Notes: "three origins reduce into one region with one operation",
		},
		{
			Name: "atomic-disjoint-mixed-safe", Category: CatAtomic, Kind: KindAtomic,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), acc(1, 2, 2, 2, 2, access.AccumMax)),
			Notes: "mixed operations on disjoint slots",
		},
		{
			Name: "atomic-vs-local-load-race", Category: CatAtomic, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(2, 1, fuzz.SyncLockAll, 1,
				acc(0, 1, 0, 0, 2, access.AccumSum), loadW(1, 1, 2)),
			Notes: "the target's own CPU load overlaps an incoming accumulate",
		},
		{
			Name: "atomic-band-band-safe", Category: CatAtomic, Kind: KindAtomic,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumBand), acc(1, 2, 1, 2, 2, access.AccumBand)),
			Notes: "same-operation atomicity holds for MPI_BAND too",
		},
		{
			Name: "atomic-sum-min-race", Category: CatAtomic, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncLockAll, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), acc(1, 2, 1, 2, 2, access.AccumMin)),
			Notes: "MPI_SUM against MPI_MIN loses atomicity",
		},
	}
}

func pscwCases() []Case {
	return []Case{
		{
			Name: "pscw-two-origins-race", Category: CatPSCW, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncPSCW, 1,
				put(0, 2, 0, 0, 2), put(1, 2, 1, 2, 2)),
			Notes: "two origins write one exposure epoch's window",
		},
		{
			Name: "pscw-epoch-separated-safe", Category: CatPSCW, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 2, fuzz.SyncPSCW, 1,
				put(0, 2, 0, 0, 2), put(1, 2, 1, 2, 2)),
			Notes: "complete/wait between the exposure epochs orders the writes",
		},
		{
			Name: "pscw-disjoint-safe", Category: CatPSCW, Kind: KindRemote,
			Racy: false,
			Program: prog(3, 1, fuzz.SyncPSCW, 1,
				put(0, 2, 0, 0, 2), put(1, 2, 4, 2, 2)),
			Notes: "concurrent writes to disjoint slots",
		},
		{
			Name: "pscw-get-put-race", Category: CatPSCW, Kind: KindRemote,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncPSCW, 1,
				get(0, 2, 0, 0, 2), put(1, 2, 1, 2, 2)),
			Notes: "read and write from different origins overlap in one exposure",
		},
		{
			Name: "pscw-local-uninstrumented-safe", Category: CatPSCW, Kind: KindLocal,
			Racy: false,
			Program: prog(2, 1, fuzz.SyncPSCW, 1,
				put(0, 1, 0, 0, 2), storeW(1, 0, 2)),
			Notes: "local accesses outside passive/fence epochs are not instrumented; the model (and every tool under test) scores this safe by scope",
		},
		{
			Name: "pscw-accum-mixed-race", Category: CatPSCW, Kind: KindAtomic,
			Racy: true, Pairs: pair(100, 101),
			Program: prog(3, 1, fuzz.SyncPSCW, 1,
				acc(0, 2, 0, 0, 2, access.AccumSum), acc(1, 2, 1, 2, 2, access.AccumMax)),
			Notes: "mixed reductions race under active-target sync too",
		},
	}
}
