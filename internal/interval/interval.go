// Package interval provides closed byte-address intervals and the
// arithmetic the fragmentation and merging algorithms of the paper
// (§4.1, §4.2) are built on.
//
// An Interval is a non-empty, inclusive range [Lo, Hi] of byte
// addresses, mirroring the paper's notation ([2...12] covers the eleven
// addresses 2..12). The zero value is the single address 0.
package interval

import "fmt"

// Interval is an inclusive range of byte addresses [Lo, Hi].
// Lo must be <= Hi; constructors and helpers preserve this.
type Interval struct {
	Lo, Hi uint64
}

// New returns the interval [lo, hi]. It panics if hi < lo, which always
// indicates a programming error in the caller (an access of negative
// length cannot occur in an instrumented program).
func New(lo, hi uint64) Interval {
	if hi < lo {
		panic(fmt.Sprintf("interval: inverted bounds [%d, %d]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// At returns the single-address interval [addr, addr].
func At(addr uint64) Interval { return Interval{Lo: addr, Hi: addr} }

// Span returns the interval starting at lo covering n bytes, i.e.
// [lo, lo+n-1]. It panics if n == 0.
func Span(lo, n uint64) Interval {
	if n == 0 {
		panic("interval: zero-length span")
	}
	return Interval{Lo: lo, Hi: lo + n - 1}
}

// Len returns the number of addresses covered by i.
func (i Interval) Len() uint64 { return i.Hi - i.Lo + 1 }

// Contains reports whether addr lies within i.
func (i Interval) Contains(addr uint64) bool { return i.Lo <= addr && addr <= i.Hi }

// ContainsInterval reports whether o lies entirely within i.
func (i Interval) ContainsInterval(o Interval) bool { return i.Lo <= o.Lo && o.Hi <= i.Hi }

// Intersects reports whether i and o share at least one address.
func (i Interval) Intersects(o Interval) bool { return i.Lo <= o.Hi && o.Lo <= i.Hi }

// Intersection returns the common sub-interval of i and o. The boolean
// is false when the intervals are disjoint.
func (i Interval) Intersection(o Interval) (Interval, bool) {
	if !i.Intersects(o) {
		return Interval{}, false
	}
	return Interval{Lo: max64(i.Lo, o.Lo), Hi: min64(i.Hi, o.Hi)}, true
}

// Adjacent reports whether i and o touch without overlapping, i.e. one
// ends exactly where the other begins. Adjacent intervals are the
// candidates of the merging algorithm (§4.2: "the two accesses to be
// merged must be adjacent").
func (i Interval) Adjacent(o Interval) bool {
	if i.Hi != ^uint64(0) && i.Hi+1 == o.Lo {
		return true
	}
	if o.Hi != ^uint64(0) && o.Hi+1 == i.Lo {
		return true
	}
	return false
}

// Union returns the smallest interval covering both i and o. It is only
// meaningful when the intervals intersect or are adjacent; callers are
// expected to check that first.
func (i Interval) Union(o Interval) Interval {
	return Interval{Lo: min64(i.Lo, o.Lo), Hi: max64(i.Hi, o.Hi)}
}

// Subtract returns the (up to two) sub-intervals of i not covered by o:
// the part of i left of o and the part right of o. This is the
// geometric core of fragmentation (§4.1): the stored access is split
// into l_frag, intersection_frag and r_frag.
func (i Interval) Subtract(o Interval) (left Interval, hasLeft bool, right Interval, hasRight bool) {
	if !i.Intersects(o) {
		return i, true, Interval{}, false
	}
	if i.Lo < o.Lo {
		left, hasLeft = Interval{Lo: i.Lo, Hi: o.Lo - 1}, true
	}
	if i.Hi > o.Hi {
		right, hasRight = Interval{Lo: o.Hi + 1, Hi: i.Hi}, true
	}
	return left, hasLeft, right, hasRight
}

// Before reports whether i lies entirely left of o with no overlap.
func (i Interval) Before(o Interval) bool { return i.Hi < o.Lo }

// Compare orders intervals by lower bound, then upper bound. It returns
// -1, 0 or +1, suitable for sort and tree comparisons.
func (i Interval) Compare(o Interval) int {
	switch {
	case i.Lo < o.Lo:
		return -1
	case i.Lo > o.Lo:
		return 1
	case i.Hi < o.Hi:
		return -1
	case i.Hi > o.Hi:
		return 1
	}
	return 0
}

// String renders the interval in the paper's notation: "[4]" for a
// single address, "[2...12]" for a range.
func (i Interval) String() string {
	if i.Lo == i.Hi {
		return fmt.Sprintf("[%d]", i.Lo)
	}
	return fmt.Sprintf("[%d...%d]", i.Lo, i.Hi)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
