package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if got := New(2, 12); got.Lo != 2 || got.Hi != 12 {
		t.Fatalf("New(2,12) = %v", got)
	}
	if got := At(7); got.Lo != 7 || got.Hi != 7 {
		t.Fatalf("At(7) = %v", got)
	}
	if got := Span(10, 4); got.Lo != 10 || got.Hi != 13 {
		t.Fatalf("Span(10,4) = %v", got)
	}
}

func TestNewPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(5,4) did not panic")
		}
	}()
	New(5, 4)
}

func TestSpanPanicsOnZeroLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Span(0,0) did not panic")
		}
	}()
	Span(0, 0)
}

func TestLen(t *testing.T) {
	cases := []struct {
		in   Interval
		want uint64
	}{
		{At(4), 1},
		{New(2, 12), 11},
		{New(0, 0), 1},
	}
	for _, c := range cases {
		if got := c.in.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	i := New(2, 12)
	for _, addr := range []uint64{2, 7, 12} {
		if !i.Contains(addr) {
			t.Errorf("%v should contain %d", i, addr)
		}
	}
	for _, addr := range []uint64{0, 1, 13, 100} {
		if i.Contains(addr) {
			t.Errorf("%v should not contain %d", i, addr)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	i := New(2, 12)
	if !i.ContainsInterval(New(4, 8)) || !i.ContainsInterval(i) {
		t.Error("containment of inner/equal interval failed")
	}
	if i.ContainsInterval(New(1, 5)) || i.ContainsInterval(New(10, 13)) {
		t.Error("overlap wrongly reported as containment")
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{New(2, 12), At(7), true},
		{New(2, 12), At(4), true},
		{New(2, 12), At(12), true},  // inclusive upper bound
		{New(2, 12), At(13), false}, // adjacent is not intersecting
		{New(2, 12), New(12, 20), true},
		{New(0, 1), New(2, 3), false},
		{At(5), At(5), true},
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestIntersection(t *testing.T) {
	got, ok := New(2, 12).Intersection(New(7, 20))
	if !ok || got != New(7, 12) {
		t.Fatalf("Intersection = %v, %v", got, ok)
	}
	if _, ok := New(0, 1).Intersection(New(3, 4)); ok {
		t.Fatal("disjoint intervals reported an intersection")
	}
}

func TestAdjacent(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{New(2, 6), New(7, 9), true},
		{New(7, 9), New(2, 6), true},
		{New(2, 6), New(8, 9), false}, // gap of one
		{New(2, 6), New(6, 9), false}, // overlapping, not adjacent
		{At(0), At(1), true},
	}
	for _, c := range cases {
		if got := c.a.Adjacent(c.b); got != c.want {
			t.Errorf("%v.Adjacent(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAdjacentAtAddressSpaceEnd(t *testing.T) {
	top := ^uint64(0)
	a := New(top-1, top)
	b := New(0, 1)
	if a.Adjacent(b) || b.Adjacent(a) {
		t.Fatal("intervals at opposite ends of the address space reported adjacent (overflow)")
	}
}

func TestUnion(t *testing.T) {
	if got := New(2, 6).Union(New(5, 9)); got != New(2, 9) {
		t.Fatalf("Union = %v", got)
	}
}

func TestSubtract(t *testing.T) {
	// Paper Fig. 5b: [2...12] minus [4] leaves [2...3] and [5...12].
	left, hasL, right, hasR := New(2, 12).Subtract(At(4))
	if !hasL || left != New(2, 3) {
		t.Errorf("left = %v, %v", left, hasL)
	}
	if !hasR || right != New(5, 12) {
		t.Errorf("right = %v, %v", right, hasR)
	}

	// Subtracting a covering interval leaves nothing.
	_, hasL, _, hasR = At(4).Subtract(New(2, 12))
	if hasL || hasR {
		t.Error("covered interval should vanish")
	}

	// Disjoint subtraction returns the original as the left part.
	left, hasL, _, hasR = New(2, 4).Subtract(New(10, 12))
	if !hasL || left != New(2, 4) || hasR {
		t.Errorf("disjoint subtract = %v,%v hasR=%v", left, hasL, hasR)
	}

	// Left-aligned overlap only leaves a right part.
	left, hasL, right, hasR = New(2, 12).Subtract(New(2, 5))
	if hasL {
		t.Errorf("unexpected left part %v", left)
	}
	if !hasR || right != New(6, 12) {
		t.Errorf("right = %v, %v", right, hasR)
	}
}

func TestBefore(t *testing.T) {
	if !New(0, 3).Before(New(4, 8)) {
		t.Error("[0..3] should be before [4..8]")
	}
	if New(0, 4).Before(New(4, 8)) {
		t.Error("touching intervals are not before one another")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Interval
		want int
	}{
		{New(1, 5), New(2, 3), -1},
		{New(2, 3), New(1, 5), 1},
		{New(2, 3), New(2, 9), -1},
		{New(2, 9), New(2, 3), 1},
		{New(2, 3), New(2, 3), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := At(4).String(); got != "[4]" {
		t.Errorf("At(4).String() = %q", got)
	}
	if got := New(2, 12).String(); got != "[2...12]" {
		t.Errorf("New(2,12).String() = %q", got)
	}
}

// clamp builds a valid interval from two arbitrary uint64s, bounded away
// from the very top of the address space so property tests can use +1
// arithmetic safely.
func clamp(a, b uint64) Interval {
	const top = math.MaxUint64 - 2
	if a > top {
		a = top
	}
	if b > top {
		b = top
	}
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}

func TestQuickIntersectionSymmetricAndContained(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a, b := clamp(a1, a2), clamp(b1, b2)
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 || (ok1 && i1 != i2) {
			return false
		}
		if ok1 && (!a.ContainsInterval(i1) || !b.ContainsInterval(i1)) {
			return false
		}
		return ok1 == a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractPartition(t *testing.T) {
	// Subtract + Intersection partition the original interval: their
	// lengths sum to the original length and the parts are disjoint
	// from the subtrahend.
	f := func(a1, a2, b1, b2 uint64) bool {
		a, b := clamp(a1, a2), clamp(b1, b2)
		left, hasL, right, hasR := a.Subtract(b)
		var n uint64
		if hasL {
			if left.Intersects(b) {
				return false
			}
			n += left.Len()
		}
		if hasR {
			if right.Intersects(b) {
				return false
			}
			n += right.Len()
		}
		if inter, ok := a.Intersection(b); ok {
			n += inter.Len()
		}
		return n == a.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAdjacentNeverIntersects(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a, b := clamp(a1, a2), clamp(b1, b2)
		if a.Adjacent(b) {
			return !a.Intersects(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCovers(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a, b := clamp(a1, a2), clamp(b1, b2)
		u := a.Union(b)
		return u.ContainsInterval(a) && u.ContainsInterval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
