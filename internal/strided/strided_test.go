package strided

import (
	"math/rand"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func acc(lo, n uint64) access.Access {
	return access.Access{
		Interval: interval.Span(lo, n),
		Type:     access.LocalWrite,
		Rank:     1,
		Debug:    access.Debug{File: "s.c", Line: 3},
	}
}

func mustNew(t *testing.T, first, second access.Access) Section {
	t.Helper()
	s, err := New(first, second)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(acc(0, 8), acc(24, 16)); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := New(acc(24, 8), acc(0, 8)); err == nil {
		t.Error("decreasing bases accepted")
	}
	if _, err := New(acc(0, 8), acc(4, 8)); err == nil {
		t.Error("overlapping elements accepted")
	}
	s := mustNew(t, acc(0, 8), acc(24, 8))
	if s.Stride != 24 || s.Width != 8 || s.Count != 2 {
		t.Fatalf("section = %+v", s)
	}
}

func TestAppend(t *testing.T) {
	s := mustNew(t, acc(0, 8), acc(24, 8))
	next := acc(48, 8)
	if !s.CanAppend(next) {
		t.Fatal("CanAppend(48) = false")
	}
	s.Append()
	if s.Count != 3 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.CanAppend(acc(60, 8)) {
		t.Error("off-stride access appendable")
	}
	wrongID := acc(72, 8)
	wrongID.Debug.Line = 99
	if s.CanAppend(wrongID) {
		t.Error("different identity appendable")
	}
	wrongRank := acc(72, 8)
	wrongRank.Rank = 2
	if s.CanAppend(wrongRank) {
		t.Error("different rank appendable")
	}
}

func TestBounds(t *testing.T) {
	s := mustNew(t, acc(10, 8), acc(34, 8))
	s.Append() // elements at 10, 34, 58
	if got := s.Bounds(); got != interval.New(10, 65) {
		t.Fatalf("Bounds = %v", got)
	}
}

func TestOverlap(t *testing.T) {
	// Elements: [0..7], [24..31], [48..55].
	s := mustNew(t, acc(0, 8), acc(24, 8))
	s.Append()
	cases := []struct {
		iv       interval.Interval
		from, to uint64
	}{
		{interval.New(0, 7), 0, 1},
		{interval.New(7, 24), 0, 2},   // touches elements 0 and 1
		{interval.New(8, 23), 0, 0},   // the gap
		{interval.New(30, 50), 1, 3},  // elements 1 and 2
		{interval.New(56, 100), 0, 0}, // past the end
		{interval.New(0, 55), 0, 3},   // everything
		{interval.At(31), 1, 2},
	}
	for _, c := range cases {
		from, to := s.Overlap(c.iv)
		if from != c.from || to != c.to {
			t.Errorf("Overlap(%v) = [%d,%d), want [%d,%d)", c.iv, from, to, c.from, c.to)
		}
		if got := s.Intersects(c.iv); got != (c.from < c.to) {
			t.Errorf("Intersects(%v) = %v", c.iv, got)
		}
	}
}

func TestRepresentative(t *testing.T) {
	s := mustNew(t, acc(0, 8), acc(24, 8))
	r := s.Representative(1)
	if r.Interval != interval.New(24, 31) || r.Type != access.LocalWrite || r.Rank != 1 {
		t.Fatalf("Representative(1) = %+v", r)
	}
}

func TestString(t *testing.T) {
	s := mustNew(t, acc(0, 8), acc(24, 8))
	if got := s.String(); got != "[0:+24 x 2 (8 bytes), Local_Write]" {
		t.Errorf("String = %q", got)
	}
}

// TestQuickOverlapMatchesBruteForce compares the index arithmetic with
// an exhaustive element scan on random sections and queries.
func TestQuickOverlapMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		base := uint64(r.Intn(100))
		width := uint64(r.Intn(8) + 1)
		stride := width + uint64(r.Intn(20))
		count := uint64(r.Intn(10) + 2)
		s := Section{Base: base, Stride: stride, Width: width, Count: count, Acc: acc(base, width)}

		qlo := uint64(r.Intn(300))
		q := interval.Span(qlo, uint64(r.Intn(40)+1))

		var wantFrom, wantTo uint64
		found := false
		for k := uint64(0); k < count; k++ {
			if s.Element(k).Intersects(q) {
				if !found {
					wantFrom = k
					found = true
				}
				wantTo = k + 1
			}
		}
		gotFrom, gotTo := s.Overlap(q)
		if !found {
			if gotFrom != gotTo {
				t.Fatalf("trial %d: %v Overlap(%v) = [%d,%d), want empty", trial, s, q, gotFrom, gotTo)
			}
			continue
		}
		if gotFrom != wantFrom || gotTo != wantTo {
			t.Fatalf("trial %d: %v Overlap(%v) = [%d,%d), want [%d,%d)", trial, s, q, gotFrom, gotTo, wantFrom, wantTo)
		}
	}
}
