// Package strided implements regular sections: compressed
// representations of arithmetic access sequences (base + k·stride,
// k = 0..count-1, each of a fixed width). They realise the paper's
// §6(3) discussion — merging accesses that are not adjacent, as
// MiniVite's strided attribute accesses are, "by using polyhedra to
// abstract memory regions" (Ketterlin & Clauss). A regular section is
// the one-dimensional special case of such a polyhedron, sufficient for
// the strided single-field patterns the paper observed.
package strided

import (
	"fmt"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

// Section is a compressed run of accesses at Base, Base+Stride,
// Base+2·Stride, ..., each covering Width bytes, all sharing one access
// identity. Stride must be > Width-1... strictly: elements must not
// overlap each other, i.e. Stride >= Width; Count >= 1.
type Section struct {
	Base   uint64
	Stride uint64
	Width  uint64
	Count  uint64
	// Acc carries the shared identity (type, rank, epoch, debug,
	// accumulate op); its Interval field is ignored.
	Acc access.Access
}

// New starts a section from two accesses establishing the stride. Both
// must have equal width and identity; second.Lo must exceed first.Lo by
// at least the width (elements must not overlap).
func New(first, second access.Access) (Section, error) {
	w := first.Interval.Len()
	if second.Interval.Len() != w {
		return Section{}, fmt.Errorf("strided: widths differ: %v vs %v", first.Interval, second.Interval)
	}
	if second.Lo <= first.Lo {
		return Section{}, fmt.Errorf("strided: non-increasing bases %d, %d", first.Lo, second.Lo)
	}
	stride := second.Lo - first.Lo
	if stride < w {
		return Section{}, fmt.Errorf("strided: stride %d smaller than width %d", stride, w)
	}
	return Section{Base: first.Lo, Stride: stride, Width: w, Count: 2, Acc: first}, nil
}

// Next returns the interval the section's next element would cover.
func (s Section) Next() interval.Interval {
	return interval.Span(s.Base+s.Count*s.Stride, s.Width)
}

// CanAppend reports whether a is exactly the section's next element
// with the same identity.
func (s Section) CanAppend(a access.Access) bool {
	return a.Interval == s.Next() && sameIdentity(s.Acc, a)
}

// Append extends the section by one element; call only after CanAppend.
func (s *Section) Append() { s.Count++ }

// Bounds returns the smallest interval covering every element.
func (s Section) Bounds() interval.Interval {
	return interval.New(s.Base, s.Base+(s.Count-1)*s.Stride+s.Width-1)
}

// Elements returns the number of compressed accesses.
func (s Section) Elements() uint64 { return s.Count }

// Overlap returns the sub-range of elements whose bytes intersect iv,
// as the half-open element index range [from, to). An empty range means
// no element intersects iv.
func (s Section) Overlap(iv interval.Interval) (from, to uint64) {
	if !s.Bounds().Intersects(iv) {
		return 0, 0
	}
	// Element k covers [Base+k·Stride, Base+k·Stride+Width-1]. It
	// intersects iv iff Base+k·Stride <= iv.Hi and
	// Base+k·Stride+Width-1 >= iv.Lo.
	var lo uint64
	if iv.Lo > s.Base+s.Width-1 {
		// First k with Base+k·Stride+Width-1 >= iv.Lo.
		lo = (iv.Lo - s.Base - (s.Width - 1) + s.Stride - 1) / s.Stride
	}
	hi := (iv.Hi - s.Base) / s.Stride // last k with Base+k·Stride <= iv.Hi
	if hi >= s.Count {
		hi = s.Count - 1
	}
	if lo > hi {
		return 0, 0
	}
	// The indices bound candidates by alignment; verify the endpoints
	// actually intersect (they do by construction, but keep the
	// invariant explicit for the property tests).
	return lo, hi + 1
}

// Intersects reports whether any element's bytes intersect iv.
func (s Section) Intersects(iv interval.Interval) bool {
	from, to := s.Overlap(iv)
	return from < to
}

// Element returns the interval of element k.
func (s Section) Element(k uint64) interval.Interval {
	return interval.Span(s.Base+k*s.Stride, s.Width)
}

// Representative builds the stored-access view of element k, for race
// checks against a new access.
func (s Section) Representative(k uint64) access.Access {
	a := s.Acc
	a.Interval = s.Element(k)
	return a
}

// String renders the section like "[base:+stride x count (w bytes), TYPE]".
func (s Section) String() string {
	return fmt.Sprintf("[%d:+%d x %d (%d bytes), %s]", s.Base, s.Stride, s.Count, s.Width, s.Acc.Type)
}

func sameIdentity(a, b access.Access) bool {
	return a.Type == b.Type &&
		a.Debug == b.Debug &&
		a.Rank == b.Rank &&
		a.Epoch == b.Epoch &&
		a.Stack == b.Stack &&
		a.AccumOp == b.AccumOp
}

// SameIdentity reports whether two accesses share the identity a
// section requires (everything but the interval).
func SameIdentity(a, b access.Access) bool { return sameIdentity(a, b) }
