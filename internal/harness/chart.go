package harness

import (
	"fmt"
	"io"
	"strings"
)

// barWidth is the maximum bar length in characters.
const barWidth = 46

// BarRow is one labelled value of a bar chart.
type BarRow struct {
	Label string
	Value float64
}

// BarChart renders labelled horizontal bars, scaled to the largest
// value — the terminal rendition of the paper's bar figures.
type BarChart struct {
	Title string
	Unit  string
	Rows  []BarRow
}

// Write renders the chart.
func (c BarChart) Write(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	var max float64
	labelW := 0
	for _, r := range c.Rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, r := range c.Rows {
		n := int(r.Value / max * barWidth)
		if n < 1 && r.Value > 0 {
			n = 1
		}
		fmt.Fprintf(w, "  %-*s |%s %.3g %s\n", labelW, r.Label, strings.Repeat("#", n), r.Value, c.Unit)
	}
}

// GroupedBarChart renders one bar group per x value (e.g. rank count),
// the rendition of the paper's grouped scaling figures.
type GroupedBarChart struct {
	Title  string
	Unit   string
	Series []string
	// Groups maps a group label (e.g. "32 ranks") to one value per
	// series.
	Groups []BarGroup
}

// BarGroup is one x position of a grouped chart.
type BarGroup struct {
	Label  string
	Values []float64
}

// Write renders the chart.
func (c GroupedBarChart) Write(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	var max float64
	seriesW := 0
	for _, s := range c.Series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, g := range c.Groups {
		fmt.Fprintf(w, "  %s\n", g.Label)
		for i, v := range g.Values {
			if i >= len(c.Series) {
				break
			}
			n := int(v / max * barWidth)
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(w, "    %-*s |%s %.3g %s\n", seriesW, c.Series[i], strings.Repeat("#", n), v, c.Unit)
		}
	}
}
