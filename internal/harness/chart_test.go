package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChartScalesToWidest(t *testing.T) {
	var buf bytes.Buffer
	BarChart{
		Title: "demo",
		Unit:  "s",
		Rows: []BarRow{
			{Label: "a", Value: 1},
			{Label: "bb", Value: 2},
		},
	}.Write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("output = %q", out)
	}
	countHash := func(s string) int { return strings.Count(s, "#") }
	if countHash(lines[2]) != barWidth {
		t.Errorf("largest bar = %d chars, want %d", countHash(lines[2]), barWidth)
	}
	if countHash(lines[1]) != barWidth/2 {
		t.Errorf("half bar = %d chars, want %d", countHash(lines[1]), barWidth/2)
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	var buf bytes.Buffer
	BarChart{Rows: []BarRow{{Label: "x", Value: 0.0001}, {Label: "y", Value: 100}}}.Write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], "#") {
		t.Error("non-zero value rendered with no bar")
	}
}

func TestBarChartZeroSafe(t *testing.T) {
	var buf bytes.Buffer
	BarChart{Rows: []BarRow{{Label: "z", Value: 0}}}.Write(&buf)
	if !strings.Contains(buf.String(), "z") {
		t.Error("row missing")
	}
}

func TestGroupedBarChart(t *testing.T) {
	var buf bytes.Buffer
	GroupedBarChart{
		Title:  "scaling",
		Unit:   "ms",
		Series: []string{"Baseline", "MUST-RMA"},
		Groups: []BarGroup{
			{Label: "32 ranks", Values: []float64{10, 40}},
			{Label: "64 ranks", Values: []float64{5, 30}},
		},
	}.Write(&buf)
	out := buf.String()
	for _, want := range []string{"scaling", "32 ranks", "64 ranks", "Baseline", "MUST-RMA", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
