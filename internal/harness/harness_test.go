package harness

import (
	"bytes"
	"strings"
	"testing"

	"rmarace/internal/apps/cfdproxy"
	"rmarace/internal/detector"
)

func TestFigure10SmallShape(t *testing.T) {
	rows, err := Figure10(cfdproxy.Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMethod := map[detector.Method]Fig10Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	if byMethod[detector.RMAAnalyzer].NodesPerProcess <= byMethod[detector.OurContribution].NodesPerProcess {
		t.Errorf("merging did not shrink the tree: legacy %d vs ours %d",
			byMethod[detector.RMAAnalyzer].NodesPerProcess, byMethod[detector.OurContribution].NodesPerProcess)
	}
	var buf bytes.Buffer
	WriteFigure10(&buf, rows)
	if !strings.Contains(buf.String(), "node reduction") {
		t.Errorf("output missing reduction line:\n%s", buf.String())
	}
}

func TestMiniViteSweepSmall(t *testing.T) {
	points, err := MiniViteSweep(4000, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if pt.LegacyNodes <= 0 || pt.OurNodes <= 0 {
			t.Fatalf("missing node counts at %d ranks: %+v", pt.Ranks, pt)
		}
		if pt.OurNodes > pt.LegacyNodes {
			t.Fatalf("ours (%d) exceeds legacy (%d)", pt.OurNodes, pt.LegacyNodes)
		}
		for _, m := range detector.Methods() {
			if pt.PerProcessTime[m] <= 0 {
				t.Fatalf("no time for %v at %d ranks", m, pt.Ranks)
			}
		}
	}
	// Per-process trees shrink with more ranks (Table 4 trend).
	if points[1].LegacyNodes >= points[0].LegacyNodes {
		t.Errorf("legacy nodes did not shrink with ranks: %d -> %d", points[0].LegacyNodes, points[1].LegacyNodes)
	}

	var buf bytes.Buffer
	WriteFigure11(&buf, 4000, points)
	if !strings.Contains(buf.String(), "ranks") {
		t.Error("figure output malformed")
	}
	buf.Reset()
	WriteTable4(&buf, points, points)
	if !strings.Contains(buf.String(), "reduction") {
		t.Error("table 4 output malformed")
	}
}

func TestFigure9ReportShape(t *testing.T) {
	race, err := Figure9(2, 1000, detector.OurContribution)
	if err != nil {
		t.Fatal(err)
	}
	msg := race.Message()
	for _, want := range []string{"RMA_WRITE", "./dspl.hpp:614", "./dspl.hpp:612", "MPI_Abort"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Fig. 9 report missing %q: %s", want, msg)
		}
	}
}
