// Package harness drives the paper's experiments end to end and prints
// the same rows and series the paper reports: Fig. 10 (CFD-Proxy epoch
// time), Figs. 11/12 (MiniVite strong scaling), Table 4 (MiniVite BST
// node counts) and the §5.3 CFD-Proxy node-reduction claim. Tables 2
// and 3 live in package micro.
package harness

import (
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"rmarace/internal/apps/cfdproxy"
	"rmarace/internal/apps/minivite"
	"rmarace/internal/detector"
)

// Fig10Row is one bar of Figure 10.
type Fig10Row struct {
	Method detector.Method
	// EpochTime is the cumulative time spent in epochs over all ranks.
	EpochTime time.Duration
	// NodesPerProcess is the per-process BST high-water mark (the §5.3
	// claim: 90,004 legacy vs 54 merged).
	NodesPerProcess int
}

// Figure10 runs CFD-Proxy under all four methods.
func Figure10(cfg cfdproxy.Config) ([]Fig10Row, error) {
	rows := make([]Fig10Row, 0, 4)
	for _, m := range detector.Methods() {
		debug.FreeOSMemory()
		res, err := cfdproxy.Run(cfg, m)
		if err != nil {
			return nil, fmt.Errorf("cfdproxy under %v: %w", m, err)
		}
		if res.Race != nil {
			return nil, fmt.Errorf("cfdproxy under %v reported a race: %v", m, res.Race)
		}
		rows = append(rows, Fig10Row{Method: m, EpochTime: res.EpochTime, NodesPerProcess: res.MaxNodesPerProcess})
	}
	return rows, nil
}

// WriteFigure10 prints the Fig. 10 series plus the node-count claim.
func WriteFigure10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10: cumulative time spent in epochs, CFD-Proxy (per method)")
	var legacyNodes, oursNodes int
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %12.4fs   nodes/process %d\n", r.Method, r.EpochTime.Seconds(), r.NodesPerProcess)
		switch r.Method {
		case detector.RMAAnalyzer:
			legacyNodes = r.NodesPerProcess
		case detector.OurContribution:
			oursNodes = r.NodesPerProcess
		}
	}
	if legacyNodes > 0 {
		fmt.Fprintf(w, "  node reduction: %d -> %d (%.2f%%)\n",
			legacyNodes, oursNodes, 100*float64(legacyNodes-oursNodes)/float64(legacyNodes))
	}
	chart := BarChart{Unit: "s"}
	for _, r := range rows {
		chart.Rows = append(chart.Rows, BarRow{Label: r.Method.String(), Value: r.EpochTime.Seconds()})
	}
	chart.Write(w)
}

// SweepPoint is one rank count of a MiniVite strong-scaling sweep.
type SweepPoint struct {
	Ranks int
	// PerProcessTime is the Fig. 11/12 metric per method.
	PerProcessTime map[detector.Method]time.Duration
	// LegacyNodes and OurNodes are the Table 4 per-process node counts.
	LegacyNodes, OurNodes int
}

// MiniViteSweep runs MiniVite at every rank count under all four
// methods.
func MiniViteSweep(vertices int, ranks []int) ([]SweepPoint, error) {
	return miniViteSweep(vertices, ranks, detector.Methods())
}

// MiniViteNodesSweep runs only the two tree-based methods — all
// Table 4 needs — at half the cost of the full sweep.
func MiniViteNodesSweep(vertices int, ranks []int) ([]SweepPoint, error) {
	return miniViteSweep(vertices, ranks, []detector.Method{detector.RMAAnalyzer, detector.OurContribution})
}

func miniViteSweep(vertices int, ranks []int, methods []detector.Method) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(ranks))
	for _, p := range ranks {
		pt := SweepPoint{Ranks: p, PerProcessTime: make(map[detector.Method]time.Duration)}
		for _, m := range methods {
			// Large sweep points allocate heavily (one BST or shadow
			// memory per rank); reclaim between runs — and return the
			// pages to the OS — so one method's high-water mark does
			// not leave the next method running against the memory
			// limit.
			debug.FreeOSMemory()
			res, err := minivite.Run(minivite.Default(p, vertices), m)
			if err != nil {
				return nil, fmt.Errorf("minivite %d ranks under %v: %w", p, m, err)
			}
			if res.Race != nil {
				return nil, fmt.Errorf("minivite %d ranks under %v reported a race: %v", p, m, res.Race)
			}
			pt.PerProcessTime[m] = res.PerProcessTime
			switch m {
			case detector.RMAAnalyzer:
				pt.LegacyNodes = res.MaxNodesPerProcess
			case detector.OurContribution:
				pt.OurNodes = res.MaxNodesPerProcess
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// WriteFigure11 prints a MiniVite strong-scaling series (Fig. 11 for
// 640,000 vertices, Fig. 12 for 1,280,000).
func WriteFigure11(w io.Writer, vertices int, points []SweepPoint) {
	fmt.Fprintf(w, "MiniVite execution time (ms per process), %d vertices\n", vertices)
	fmt.Fprintf(w, "  %-8s", "ranks")
	for _, m := range detector.Methods() {
		fmt.Fprintf(w, " %16s", m)
	}
	fmt.Fprintln(w)
	for _, pt := range points {
		fmt.Fprintf(w, "  %-8d", pt.Ranks)
		for _, m := range detector.Methods() {
			fmt.Fprintf(w, " %16.1f", float64(pt.PerProcessTime[m].Microseconds())/1000.0)
		}
		fmt.Fprintln(w)
	}
	chart := GroupedBarChart{Unit: "ms"}
	for _, m := range detector.Methods() {
		chart.Series = append(chart.Series, m.String())
	}
	for _, pt := range points {
		g := BarGroup{Label: fmt.Sprintf("%d ranks", pt.Ranks)}
		for _, m := range detector.Methods() {
			g.Values = append(g.Values, float64(pt.PerProcessTime[m].Microseconds())/1000.0)
		}
		chart.Groups = append(chart.Groups, g)
	}
	chart.Write(w)
}

// WriteTable4 prints the Table 4 node counts for both input sizes.
func WriteTable4(w io.Writer, points640, points1280 []SweepPoint) {
	fmt.Fprintln(w, "Table 4: number of nodes in the BST per process, MiniVite")
	fmt.Fprintf(w, "  %-6s %-28s %-28s %s\n", "ranks", "RMA-Analyzer (640k/1,280k)", "Our Contribution (640k/1,280k)", "reduction")
	for i := range points640 {
		p6 := points640[i]
		var p12 SweepPoint
		if i < len(points1280) {
			p12 = points1280[i]
		}
		red6 := reduction(p6.LegacyNodes, p6.OurNodes)
		red12 := reduction(p12.LegacyNodes, p12.OurNodes)
		fmt.Fprintf(w, "  %-6d %-28s %-28s %.2f%%/%.2f%%\n", p6.Ranks,
			fmt.Sprintf("%d/%d", p6.LegacyNodes, p12.LegacyNodes),
			fmt.Sprintf("%d/%d", p6.OurNodes, p12.OurNodes),
			red6, red12)
	}
}

func reduction(legacy, ours int) float64 {
	if legacy == 0 {
		return 0
	}
	return 100 * float64(legacy-ours) / float64(legacy)
}

// Figure9 runs MiniVite with the injected duplicate Put and returns the
// race report (the Fig. 9 output).
func Figure9(ranks, vertices int, method detector.Method) (*detector.Race, error) {
	cfg := minivite.Default(ranks, vertices)
	cfg.InjectRace = true
	res, err := minivite.Run(cfg, method)
	if err != nil {
		return nil, err
	}
	if res.Race == nil {
		return nil, fmt.Errorf("harness: injected race not detected by %v", method)
	}
	return res.Race, nil
}
