// Package vc implements vector clocks (Lamport happens-before) for the
// MUST-RMA simulator. MUST-RMA constructs concurrent regions from
// MPI-RMA synchronisation using a clock-based happens-before relation
// and forwards them to a ThreadSanitizer-style checker (§3); the paper
// attributes part of its scaling overhead to the O(P) clocks piggybacked
// on messages when the process count grows (§5.3).
package vc

import (
	"fmt"
	"strings"
)

// Clock is a vector clock over a fixed number of ranks. Index r holds
// the number of logical steps of rank r observed so far.
type Clock []uint64

// New returns a zero clock for n ranks.
func New(n int) Clock { return make(Clock, n) }

// Copy returns an independent copy of c.
func (c Clock) Copy() Clock {
	out := make(Clock, len(c))
	copy(out, c)
	return out
}

// Tick advances rank's own component and returns c for chaining.
func (c Clock) Tick(rank int) Clock {
	c[rank]++
	return c
}

// Join folds other into c component-wise (the receive rule).
func (c Clock) Join(other Clock) Clock {
	for i, v := range other {
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

// HappensBefore reports whether c < other: every component of c is <=
// the corresponding component of other and at least one is strictly
// smaller.
func (c Clock) HappensBefore(other Clock) bool {
	strict := false
	for i, v := range c {
		if v > other[i] {
			return false
		}
		if v < other[i] {
			strict = true
		}
	}
	return strict
}

// Concurrent reports whether neither clock happens before the other and
// they are not equal.
func (c Clock) Concurrent(other Clock) bool {
	return !c.HappensBefore(other) && !other.HappensBefore(c) && !c.Equal(other)
}

// Equal reports component-wise equality.
func (c Clock) Equal(other Clock) bool {
	if len(c) != len(other) {
		return false
	}
	for i, v := range c {
		if v != other[i] {
			return false
		}
	}
	return true
}

// At returns component r, treating missing components as 0 so clocks of
// different widths compare sensibly in tests.
func (c Clock) At(r int) uint64 {
	if r < len(c) {
		return c[r]
	}
	return 0
}

// String renders the clock as "<v0,v1,...>".
func (c Clock) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Epoch is a scalar clock entry identifying one logical step of one
// rank: the pair TSan's shadow cells store instead of a full vector
// clock.
type Epoch struct {
	Rank int
	Time uint64
}

// ObservedBy reports whether the step (e.Rank, e.Time) happens before or
// at the state described by clock c — i.e. c has observed it.
func (e Epoch) ObservedBy(c Clock) bool { return e.Time <= c.At(e.Rank) }
