// Package vc implements the happens-before clocks of the MUST-RMA
// simulator. MUST-RMA constructs concurrent regions from MPI-RMA
// synchronisation using a clock-based happens-before relation and
// forwards them to a ThreadSanitizer-style checker (§3); the paper
// attributes part of its scaling overhead to the O(P) clocks
// piggybacked on messages when the process count grows (§5.3).
//
// Following FastTrack (Flanagan & Freund, PLDI'09) the representation
// is adaptive: most clock values a detector handles describe totally
// ordered histories and fit in a scalar Epoch (one rank@time pair,
// 8 bytes); only genuinely cross-rank states need a full vector. The
// HB interface abstracts over three representations:
//
//   - Epoch — a packed rank@time scalar: the value of a clock that is
//     zero everywhere except one rank's component.
//   - Shared — an immutable shared base vector overridden in exactly
//     one rank's component: the shape every per-rank clock has between
//     collective joins, so a snapshot costs O(1) instead of O(P).
//   - Clock — the full O(P) vector, the fallback for arbitrary states.
//
// Promotion is lazy: values start as Epochs and grow a vector only on
// the first cross-rank join (see detector.MustShared.ClockStats for
// the instrumented promotion counters).
package vc

import (
	"fmt"
	"strings"
)

// Rep identifies an HB value's concrete representation.
type Rep uint8

const (
	// RepEpoch is the packed scalar representation.
	RepEpoch Rep = iota
	// RepShared is the base-sharing promoted representation.
	RepShared
	// RepVector is the full vector representation.
	RepVector
)

// String returns the representation's wire name.
func (r Rep) String() string {
	switch r {
	case RepEpoch:
		return "epoch"
	case RepShared:
		return "shared"
	case RepVector:
		return "vector"
	}
	return fmt.Sprintf("Rep(%d)", uint8(r))
}

// HB is one happens-before clock value under any representation. All
// representations define the same abstract object — a map from rank to
// observed logical time, zero beyond Width() — so the package-level
// relations (Leq, HappensBefore, Concurrent, Equal) compare values of
// different representations and widths directly.
type HB interface {
	// At returns component r; components at or beyond Width read 0.
	At(r int) uint64
	// Width returns the number of leading components that may be
	// non-zero (the highest represented rank + 1).
	Width() int
	// Rep identifies the concrete representation.
	Rep() Rep
	// Bytes returns the unique payload bytes this value holds. A
	// Shared value does not count its base: the base is allocated once
	// per join generation and shared by every snapshot of it.
	Bytes() int
	// Clock materialises the value as a full width-n vector (the
	// promotion everything eventually supports).
	Clock(n int) Clock
	// String renders the value for reports.
	String() string
}

// Leq reports a ≤ b component-wise over the union of both widths.
func Leq(a, b HB) bool {
	n := a.Width()
	if w := b.Width(); w > n {
		n = w
	}
	for i := 0; i < n; i++ {
		if a.At(i) > b.At(i) {
			return false
		}
	}
	return true
}

// HappensBefore reports a < b: a ≤ b and a ≠ b. Values of different
// representations and widths compare by zero-extension.
func HappensBefore(a, b HB) bool { return Leq(a, b) && !Equal(a, b) }

// Concurrent reports that neither value happens before the other and
// they are not equal.
func Concurrent(a, b HB) bool {
	return !HappensBefore(a, b) && !HappensBefore(b, a) && !Equal(a, b)
}

// Equal reports component-wise equality under zero-extension.
func Equal(a, b HB) bool {
	n := a.Width()
	if w := b.Width(); w > n {
		n = w
	}
	for i := 0; i < n; i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// Clock is a vector clock over a fixed number of ranks. Index r holds
// the number of logical steps of rank r observed so far.
type Clock []uint64

// New returns a zero clock for n ranks.
func New(n int) Clock { return make(Clock, n) }

// Copy returns an independent copy of c.
func (c Clock) Copy() Clock {
	out := make(Clock, len(c))
	copy(out, c)
	return out
}

// Tick advances rank's own component and returns c for chaining.
func (c Clock) Tick(rank int) Clock {
	c[rank]++
	return c
}

// Join folds other into c component-wise (the receive rule) and
// returns the joined clock. When other is wider than c the result is
// grown, which reallocates: callers must use the returned clock, not
// assume in-place mutation.
func (c Clock) Join(other Clock) Clock {
	if len(other) > len(c) {
		grown := make(Clock, len(other))
		copy(grown, c)
		c = grown
	}
	for i, v := range other {
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

// HappensBefore reports whether c < other: every component of c is <=
// the corresponding component of other and at least one is strictly
// smaller. Clocks of different widths compare by zero-extension
// (missing components read 0), so no width ever indexes out of bounds.
func (c Clock) HappensBefore(other Clock) bool { return HappensBefore(c, other) }

// Concurrent reports whether neither clock happens before the other
// and they are not equal.
func (c Clock) Concurrent(other Clock) bool { return Concurrent(c, other) }

// Equal reports component-wise equality under zero-extension: a
// trailing run of zero components does not distinguish two clocks,
// because it does not change any happens-before verdict.
func (c Clock) Equal(other Clock) bool { return Equal(c, other) }

// At returns component r, treating missing components as 0 so clocks of
// different widths compare sensibly.
func (c Clock) At(r int) uint64 {
	if r >= 0 && r < len(c) {
		return c[r]
	}
	return 0
}

// Width implements HB.
func (c Clock) Width() int { return len(c) }

// Rep implements HB.
func (Clock) Rep() Rep { return RepVector }

// Bytes implements HB: 8 bytes per component.
func (c Clock) Bytes() int { return 8 * len(c) }

// Clock implements HB: the materialisation of a vector is a width-n
// copy of itself.
func (c Clock) Clock(n int) Clock {
	out := make(Clock, n)
	copy(out, c)
	return out
}

// String renders the clock as "<v0,v1,...>".
func (c Clock) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// epochTimeBits is the width of an Epoch's time field; the remaining
// high bits hold the rank. 48 bits of logical time and 64k ranks are
// both far beyond what a simulated run reaches.
const epochTimeBits = 48

// MaxEpochTime is the largest logical time an Epoch can carry.
const MaxEpochTime = uint64(1)<<epochTimeBits - 1

// MaxEpochRank is the largest rank an Epoch can carry.
const MaxEpochRank = int(1)<<(64-epochTimeBits) - 1

// Epoch is a scalar clock value packed into one word: rank@time, the
// pair TSan's shadow cells store instead of a full vector clock. As an
// HB value it denotes the clock that is zero everywhere except
// component Rank, which holds Time.
type Epoch uint64

// E packs rank and time into an Epoch. It panics when either exceeds
// the packed field width — a programming error, not a runtime state.
func E(rank int, time uint64) Epoch {
	if rank < 0 || rank > MaxEpochRank {
		panic(fmt.Sprintf("vc: epoch rank %d out of range", rank))
	}
	if time > MaxEpochTime {
		panic(fmt.Sprintf("vc: epoch time %d out of range", time))
	}
	return Epoch(uint64(rank)<<epochTimeBits | time)
}

// Rank returns the packed rank.
func (e Epoch) Rank() int { return int(uint64(e) >> epochTimeBits) }

// Time returns the packed logical time.
func (e Epoch) Time() uint64 { return uint64(e) & MaxEpochTime }

// At implements HB: component Rank holds Time, everything else is 0.
func (e Epoch) At(r int) uint64 {
	if r == e.Rank() {
		return e.Time()
	}
	return 0
}

// Width implements HB.
func (e Epoch) Width() int { return e.Rank() + 1 }

// Rep implements HB.
func (Epoch) Rep() Rep { return RepEpoch }

// Bytes implements HB: one packed word.
func (Epoch) Bytes() int { return 8 }

// Clock implements HB.
func (e Epoch) Clock(n int) Clock {
	out := make(Clock, n)
	if r := e.Rank(); r < n {
		out[r] = e.Time()
	}
	return out
}

// ObservedBy reports whether the step (Rank, Time) happens before or at
// the state described by h — i.e. h has observed it.
func (e Epoch) ObservedBy(h HB) bool { return e.Time() <= h.At(e.Rank()) }

// String renders the epoch as "r@t".
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.Rank(), e.Time()) }

// Shared is a promoted clock that differs from an immutable shared
// base vector in exactly one component: base joined with Own, with
// component Own.Rank read from Own alone (the snapshot's call time
// overrides the base, mirroring how MustShared.Snapshot forces the
// issuing rank's component). Between collective joins every per-rank
// clock of the MUST-RMA simulator has this shape, so one base
// allocation per join generation serves every snapshot taken until the
// next join — the O(P)→O(1) saving of the adaptive representation.
//
// Base must not be mutated after a Shared value references it.
type Shared struct {
	Base Clock
	Own  Epoch
}

// At implements HB.
func (s Shared) At(r int) uint64 {
	if r == s.Own.Rank() {
		return s.Own.Time()
	}
	return s.Base.At(r)
}

// Width implements HB.
func (s Shared) Width() int {
	w := len(s.Base)
	if r := s.Own.Rank() + 1; r > w {
		w = r
	}
	return w
}

// Rep implements HB.
func (Shared) Rep() Rep { return RepShared }

// Bytes implements HB: the slice header plus the packed epoch. The
// base vector is deliberately excluded — it is shared, and counted
// once by whoever allocated it.
func (Shared) Bytes() int { return 32 }

// Clock implements HB.
func (s Shared) Clock(n int) Clock {
	out := make(Clock, n)
	copy(out, s.Base)
	if r := s.Own.Rank(); r < n {
		out[r] = s.Own.Time()
	}
	return out
}

// String renders the value via its materialisation.
func (s Shared) String() string { return s.Clock(s.Width()).String() + "*" }
