package vc

import (
	"math/rand"
	"testing"
)

// randHB draws a random HB value in one of the three representations
// over n ranks, bounded small so collisions (equality, ordering) are
// actually exercised.
func randHB(rng *rand.Rand, n int) HB {
	switch rng.Intn(3) {
	case 0:
		return E(rng.Intn(n), uint64(rng.Intn(4)))
	case 1:
		base := New(n)
		for i := range base {
			base[i] = uint64(rng.Intn(4))
		}
		return Shared{Base: base, Own: E(rng.Intn(n), uint64(rng.Intn(4)))}
	default:
		// Random width in [0, n+1]: the relations must tolerate
		// mismatched vector widths.
		c := New(rng.Intn(n + 2))
		for i := range c {
			c[i] = uint64(rng.Intn(4))
		}
		return c
	}
}

// Happens-before must stay a strict partial order and Concurrent a
// symmetric relation across every representation pair.
func TestPropertyRelationsAcrossReps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 4
	for i := 0; i < 20000; i++ {
		a, b := randHB(rng, n), randHB(rng, n)
		if HappensBefore(a, a.Clock(n)) {
			t.Fatalf("irreflexivity: %v < its own materialisation", a)
		}
		if HappensBefore(a, b) && HappensBefore(b, a) {
			t.Fatalf("antisymmetry violated: %v and %v", a, b)
		}
		if Concurrent(a, b) != Concurrent(b, a) {
			t.Fatalf("Concurrent not symmetric: %v vs %v", a, b)
		}
		if Equal(a, b) != Equal(b, a) {
			t.Fatalf("Equal not symmetric: %v vs %v", a, b)
		}
		if Equal(a, b) && (HappensBefore(a, b) || Concurrent(a, b)) {
			t.Fatalf("equal values must be neither ordered nor concurrent: %v, %v", a, b)
		}
	}
}

// Every relation computed on compact representations must agree with
// the same relation on their full-vector materialisations: the
// epoch⇄vector round trip is semantics-preserving.
func TestPropertyRoundTripEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5
	for i := 0; i < 20000; i++ {
		a, b := randHB(rng, n), randHB(rng, n)
		av, bv := a.Clock(n+1), b.Clock(n+1)
		if got, want := HappensBefore(a, b), av.HappensBefore(bv); got != want {
			t.Fatalf("HappensBefore(%v, %v) = %v but vectors say %v", a, b, got, want)
		}
		if got, want := Concurrent(a, b), av.Concurrent(bv); got != want {
			t.Fatalf("Concurrent(%v, %v) = %v but vectors say %v", a, b, got, want)
		}
		if got, want := Equal(a, b), av.Equal(bv); got != want {
			t.Fatalf("Equal(%v, %v) = %v but vectors say %v", a, b, got, want)
		}
		for r := 0; r < n+1; r++ {
			if a.At(r) != av.At(r) {
				t.Fatalf("%v.At(%d) = %d but materialisation holds %d", a, r, a.At(r), av.At(r))
			}
		}
	}
}

// A pair of clocks evolved by random tick/join sequences must order
// exactly like the epoch/shared views taken of them along the way.
func TestPropertyJoinTickSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 4
	for trial := 0; trial < 300; trial++ {
		clocks := make([]Clock, n)
		for r := range clocks {
			clocks[r] = New(n)
		}
		type snap struct {
			hb  HB
			vec Clock
		}
		var snaps []snap
		for step := 0; step < 40; step++ {
			r := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				clocks[r].Tick(r)
			case 1:
				other := rng.Intn(n)
				clocks[r] = clocks[r].Join(clocks[other])
			default:
				// Snapshot rank r's state in the most compact
				// representation that is exact for it.
				var h HB
				if exactEpoch(clocks[r], r) {
					h = E(r, clocks[r].At(r))
				} else {
					h = Shared{Base: clocks[r].Copy(), Own: E(r, clocks[r].At(r))}
				}
				snaps = append(snaps, snap{hb: h, vec: clocks[r].Copy()})
			}
		}
		for i := range snaps {
			for j := range snaps {
				if got, want := HappensBefore(snaps[i].hb, snaps[j].hb), snaps[i].vec.HappensBefore(snaps[j].vec); got != want {
					t.Fatalf("trial %d: snapshot order %v<%v = %v, vectors say %v", trial, snaps[i].hb, snaps[j].hb, got, want)
				}
			}
		}
	}
}

// exactEpoch reports whether clock c of rank r is exactly representable
// as the scalar r@c[r].
func exactEpoch(c Clock, r int) bool {
	for i, v := range c {
		if i != r && v != 0 {
			return false
		}
	}
	return true
}
