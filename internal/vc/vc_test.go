package vc

import (
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	c := New(4)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("component %d = %d", i, v)
		}
	}
}

func TestTickAndAt(t *testing.T) {
	c := New(3)
	c.Tick(1).Tick(1).Tick(2)
	if c.At(0) != 0 || c.At(1) != 2 || c.At(2) != 1 {
		t.Fatalf("clock = %v", c)
	}
	if c.At(99) != 0 {
		t.Fatal("out-of-range component should read 0")
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := New(2)
	b := a.Copy()
	a.Tick(0)
	if b.At(0) != 0 {
		t.Fatal("copy aliases original")
	}
}

func TestJoin(t *testing.T) {
	a := Clock{3, 0, 5}
	b := Clock{1, 4, 5}
	a.Join(b)
	want := Clock{3, 4, 5}
	if !a.Equal(want) {
		t.Fatalf("join = %v, want %v", a, want)
	}
}

func TestHappensBefore(t *testing.T) {
	a := Clock{1, 2, 3}
	b := Clock{1, 3, 3}
	if !a.HappensBefore(b) {
		t.Error("a < b expected")
	}
	if b.HappensBefore(a) {
		t.Error("b < a unexpected")
	}
	if a.HappensBefore(a) {
		t.Error("a < a must be false (strictness)")
	}
}

func TestConcurrent(t *testing.T) {
	a := Clock{2, 0}
	b := Clock{0, 2}
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Error("incomparable clocks must be concurrent")
	}
	if a.Concurrent(a) {
		t.Error("a clock is not concurrent with itself")
	}
	c := Clock{3, 1}
	if b.HappensBefore(c) {
		t.Error("{0,2} must not happen before {3,1}")
	}
	if !b.Concurrent(c) {
		t.Error("{0,2} and {3,1} are concurrent")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	// Width compares by zero-extension: a trailing zero component does
	// not change any happens-before verdict, so it cannot distinguish
	// two clocks either.
	if !(Clock{1, 2}).Equal(Clock{1, 2, 0}) {
		t.Error("a trailing zero component must not break equality")
	}
	if (Clock{1, 2}).Equal(Clock{1, 2, 3}) {
		t.Error("a non-zero extra component distinguishes the clocks")
	}
}

// The pre-PR6 Join and HappensBefore indexed the receiver with the
// other clock's length and crashed on a longer argument; both now
// zero-extend. Regression for the mismatched-width fix.
func TestMismatchedWidths(t *testing.T) {
	short, long := Clock{1, 2}, Clock{1, 3, 7}
	if !short.HappensBefore(long) {
		t.Error("{1,2} < {1,3,7} is false only if width mismatches break comparison")
	}
	_ = long.HappensBefore(short) // must not panic
	j := short.Copy().Join(long)
	if want := (Clock{1, 3, 7}); !j.Equal(want) {
		t.Errorf("join across widths = %v, want %v", j, want)
	}
	// Joining a shorter clock into a longer one stays in place.
	j2 := long.Copy().Join(short)
	if want := (Clock{1, 3, 7}); !j2.Equal(want) {
		t.Errorf("join of narrower clock = %v, want %v", j2, want)
	}
}

func TestString(t *testing.T) {
	if got := (Clock{1, 0, 7}).String(); got != "<1,0,7>" {
		t.Errorf("String = %q", got)
	}
}

func TestEpochObservedBy(t *testing.T) {
	c := Clock{5, 2}
	if !E(0, 5).ObservedBy(c) {
		t.Error("step 0@5 is observed by <5,2>")
	}
	if E(1, 3).ObservedBy(c) {
		t.Error("step 1@3 is not observed by <5,2>")
	}
}

func TestEpochPacking(t *testing.T) {
	e := E(300, 123456789)
	if e.Rank() != 300 || e.Time() != 123456789 {
		t.Fatalf("round trip = %d@%d", e.Rank(), e.Time())
	}
	if e.At(300) != 123456789 || e.At(0) != 0 || e.At(301) != 0 {
		t.Fatal("epoch components")
	}
	if got := e.String(); got != "300@123456789" {
		t.Errorf("String = %q", got)
	}
}

// Happens-before must be a strict partial order: irreflexive,
// antisymmetric and transitive. Exercised over random small clocks.
func TestQuickStrictPartialOrder(t *testing.T) {
	mk := func(x, y, z uint8) Clock { return Clock{uint64(x % 4), uint64(y % 4), uint64(z % 4)} }
	irrefl := func(x, y, z uint8) bool {
		c := mk(x, y, z)
		return !c.HappensBefore(c)
	}
	if err := quick.Check(irrefl, nil); err != nil {
		t.Fatal(err)
	}
	antisym := func(a1, a2, a3, b1, b2, b3 uint8) bool {
		a, b := mk(a1, a2, a3), mk(b1, b2, b3)
		return !(a.HappensBefore(b) && b.HappensBefore(a))
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Fatal(err)
	}
	trans := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 uint8) bool {
		a, b, c := mk(a1, a2, a3), mk(b1, b2, b3), mk(c1, c2, c3)
		if a.HappensBefore(b) && b.HappensBefore(c) {
			return a.HappensBefore(c)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinIsLUB(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := Clock{uint64(a1), uint64(a2)}
		b := Clock{uint64(b1), uint64(b2)}
		j := a.Copy().Join(b)
		// j dominates both inputs.
		for i := range j {
			if j[i] < a[i] || j[i] < b[i] {
				return false
			}
		}
		// and is the least such clock.
		for i := range j {
			if j[i] != a[i] && j[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
