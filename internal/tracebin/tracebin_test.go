package tracebin

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"rmarace/internal/trace"
)

// sampleRecords is a representative record mix: every kind, every
// access type, interned files (repeated and fresh), flag combinations,
// stack ids and large field values.
func sampleRecords() []trace.Record {
	return []trace.Record{
		{Kind: "access", Owner: 0, Rank: 1, Lo: 100, Hi: 107, Type: "rma_write", Epoch: 1, Time: 5, CallTime: 3, File: "halo.c", Line: 42},
		{Kind: "access", Owner: 0, Rank: 2, Lo: 108, Hi: 108, Type: "rma_read", Epoch: 1, Time: 6, CallTime: 6, File: "halo.c", Line: 51, Stack: true, StackID: 7},
		{Kind: "access", Owner: 3, Rank: 3, Lo: 1 << 40, Hi: 1<<40 + 4095, Type: "local_write", Epoch: 2, Time: 9, File: "solver.c", Line: 9, Filtered: true},
		{Kind: "release", Owner: 0, Rank: 2},
		{Kind: "access", Owner: 1, Rank: 0, Lo: 0, Hi: ^uint64(0), Type: "rma_accum", Epoch: 3, Time: 11, CallTime: 10, AccumOp: 2},
		{Kind: "epoch_end", Owner: 0},
		{Kind: "access", Owner: 0, Rank: 1, Lo: 64, Hi: 71, Type: "local_read", Epoch: 4, Time: 12},
		{Kind: "epoch_end", Owner: 1},
	}
}

// encode writes header+records to a binary buffer.
func encode(t *testing.T, h trace.Header, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i, r := range recs {
		if err := w.Record(r); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// drain reads every record off a source.
func drain(t *testing.T, src trace.Source) []trace.Record {
	t.Helper()
	var out []trace.Record
	var rec trace.Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		out = append(out, rec)
	}
}

func TestRoundTrip(t *testing.T) {
	h := trace.Header{Ranks: 4, Window: "win-a"}
	recs := sampleRecords()
	raw := encode(t, h, recs)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got := r.Head(); got.Ranks != h.Ranks || got.Window != h.Window {
		t.Fatalf("header = %+v, want ranks=%d window=%q", got, h.Ranks, h.Window)
	}
	got := drain(t, r)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	if r.BytesRead() != int64(len(raw)) {
		t.Errorf("BytesRead = %d, want %d", r.BytesRead(), len(raw))
	}
}

func TestRoundTripThroughJSON(t *testing.T) {
	// JSON → binary → JSON must be lossless: the second JSON rendering is
	// byte-identical to the first because both come from the same encoder.
	h := trace.Header{Ranks: 4, Window: "w"}
	var json1 bytes.Buffer
	jw, err := trace.NewWriter(&json1, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := jw.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	jw.Flush()

	var bin bytes.Buffer
	jr, err := trace.NewReader(bytes.NewReader(json1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewWriter(&bin, jr.Head())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(bw, jr); err != nil {
		t.Fatalf("JSON→binary: %v", err)
	}
	if bin.Len() >= json1.Len() {
		t.Errorf("binary (%d bytes) not smaller than JSON (%d bytes)", bin.Len(), json1.Len())
	}

	var json2 bytes.Buffer
	br, err := NewReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	jw2, err := trace.NewWriter(&json2, br.Head())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(jw2, br); err != nil {
		t.Fatalf("binary→JSON: %v", err)
	}
	if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
		t.Error("JSON→binary→JSON round trip is not byte-identical")
	}
}

func TestOpenSniffsFormat(t *testing.T) {
	h := trace.Header{Ranks: 2, Window: "w"}
	recs := sampleRecords()

	bin := encode(t, h, recs)
	src, format, err := Open(bytes.NewReader(bin))
	if err != nil {
		t.Fatalf("Open(binary): %v", err)
	}
	if format != "bin" {
		t.Fatalf("Open(binary) format = %q, want bin", format)
	}
	if got := drain(t, src); len(got) != len(recs) {
		t.Fatalf("binary: decoded %d records, want %d", len(got), len(recs))
	}

	var jbuf bytes.Buffer
	jw, err := trace.NewWriter(&jbuf, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		jw.Record(r)
	}
	jw.Flush()
	src, format, err = Open(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("Open(json): %v", err)
	}
	if format != "json" {
		t.Fatalf("Open(json) format = %q, want json", format)
	}
	if got := drain(t, src); len(got) != len(recs) {
		t.Fatalf("json: decoded %d records, want %d", len(got), len(recs))
	}
}

// corrupt decodes raw and returns the first error (nil if the stream
// reads cleanly). Reaching EOF without an error is a test failure mode
// handled by the callers; a panic fails the test by itself.
func corrupt(t *testing.T, raw []byte) error {
	t.Helper()
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	var rec trace.Record
	for {
		err := r.Read(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestCorruptStreams(t *testing.T) {
	h := trace.Header{Ranks: 4, Window: "win"}
	good := encode(t, h, sampleRecords())

	// Locate the end of the header so record-level mutations are aimed
	// past it: magic(4) + version(1) + ranks varint + window len varint +
	// window bytes.
	hdrLen := 4 + 1 + 1 + 1 + len(h.Window)

	tests := []struct {
		name string
		raw  func() []byte
		want string // substring of the error
	}{
		{"empty", func() []byte { return nil }, "magic"},
		{"short magic", func() []byte { return good[:2] }, "magic"},
		{"bad magic", func() []byte {
			b := append([]byte(nil), good...)
			b[0] = 'X'
			return b
		}, "bad magic"},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}, "unsupported version"},
		{"header cut mid-window", func() []byte { return good[: hdrLen-1 : hdrLen-1] }, "header window"},
		{"EOF mid-record payload", func() []byte { return good[: len(good)-1 : len(good)-1] }, "unexpected EOF"},
		{"EOF mid-length varint", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			return append(b, 0x80) // continuation bit with no next byte
		}, "unexpected EOF"},
		{"length varint overflow", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			return append(b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f)
		}, "varint overflows"},
		{"record length over limit", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			return binary.AppendUvarint(b, maxPayload+1)
		}, "exceeds limit"},
		{"empty record", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			return append(b, 0x00)
		}, "empty record"},
		{"unknown record kind", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			return append(b, 0x01, 0xee)
		}, "unknown record kind"},
		{"field varint overflow", func() []byte {
			// An epoch_end whose owner varint overflows 64 bits.
			b := append([]byte(nil), good[:hdrLen]...)
			payload := []byte{kindEpochEnd, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
			b = binary.AppendUvarint(b, uint64(len(payload)))
			return append(b, payload...)
		}, "varint overflows"},
		{"truncated access body", func() []byte {
			// An access record cut after the flags byte.
			b := append([]byte(nil), good[:hdrLen]...)
			payload := []byte{kindAccess, 0x00}
			b = binary.AppendUvarint(b, uint64(len(payload)))
			return append(b, payload...)
		}, "truncated"},
		{"unknown access type code", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			payload := []byte{kindAccess, 0, 0, 0, 0, 0, 99, 0, 0, 0, 0, 0, 0, 0}
			b = binary.AppendUvarint(b, uint64(len(payload)))
			return append(b, payload...)
		}, "unknown access type"},
		{"undefined file id", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			payload := []byte{kindAccess, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 5, 0}
			b = binary.AppendUvarint(b, uint64(len(payload)))
			return append(b, payload...)
		}, "undefined file"},
		{"file id out of sequence", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			payload := []byte{kindFileDef, 7, 1, 'x'}
			b = binary.AppendUvarint(b, uint64(len(payload)))
			return append(b, payload...)
		}, "out of sequence"},
		{"trailing bytes in record", func() []byte {
			b := append([]byte(nil), good[:hdrLen]...)
			payload := []byte{kindEpochEnd, 0, 0xaa, 0xbb}
			b = binary.AppendUvarint(b, uint64(len(payload)))
			return append(b, payload...)
		}, "trailing bytes"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := corrupt(t, tc.raw())
			if err == nil {
				t.Fatal("corrupt stream decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	h := trace.Header{Ranks: 2, Window: "w"}
	good := encode(t, h, sampleRecords())
	raw := good[: len(good)-1 : len(good)-1] // truncate the final record
	err := corrupt(t, raw)
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if !strings.Contains(err.Error(), "record ") || !strings.Contains(err.Error(), "offset ") {
		t.Fatalf("error %q does not carry record/offset position", err)
	}
}

func TestReaderSteadyStateAllocs(t *testing.T) {
	h := trace.Header{Ranks: 8, Window: "w"}
	recs := make([]trace.Record, 0, 512)
	for i := 0; i < 256; i++ {
		recs = append(recs, trace.Record{
			Kind: "access", Owner: i % 4, Rank: i % 8,
			Lo: uint64(i * 8), Hi: uint64(i*8 + 7),
			Type: "rma_write", Epoch: 1, Time: uint64(i + 1), File: "a.c", Line: i,
		})
		if i%64 == 63 {
			recs = append(recs, trace.Record{Kind: "epoch_end", Owner: i % 4})
		}
	}
	raw := encode(t, h, recs)
	br := bytes.NewReader(raw)
	r, err := NewReader(br)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Record
	// Warm up: first reads size the payload buffer and intern "a.c".
	for i := 0; i < 16; i++ {
		if err := r.Read(&rec); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := r.Read(&rec); err != nil {
			t.Fatalf("Read: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Read allocates %.1f objects/op, want 0", avg)
	}
}
