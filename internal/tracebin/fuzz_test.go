package tracebin

import (
	"bytes"
	"io"
	"testing"

	"rmarace/internal/trace"
)

// FuzzReader feeds arbitrary bytes to the binary decoder: whatever the
// input, the reader must return a descriptive error or a clean EOF —
// never panic, never loop, never allocate past the payload cap. Valid
// prefixes decode; the corpus seeds a well-formed stream so mutations
// explore the record space, not just the header.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, trace.Header{Ranks: 4, Window: "w"})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range sampleRecordsF() {
		if err := w.Record(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("RMTB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var rec trace.Record
		for i := 0; i < 1<<16; i++ {
			err := r.Read(&rec)
			if err == io.EOF {
				// A cleanly decoded stream must re-encode losslessly.
				return
			}
			if err != nil {
				if err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}

// FuzzRoundTrip mutates record fields and asserts binary encode→decode
// is the identity on every encodable record.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), 3, 1, uint64(100), uint64(7), uint64(2), uint64(9), uint64(8), true, false, uint32(5), "a.c", 12, uint8(1))
	f.Fuzz(func(t *testing.T, kindSel uint8, owner, rank int, lo, span, epoch, tm, callTm uint64, stack, filtered bool, stackID uint32, file string, line int, accumOp uint8) {
		var rec trace.Record
		switch kindSel % 3 {
		case 0:
			if owner < 0 || rank < 0 || line < 0 || lo+span < lo {
				return // not encodable; negative ints have no uvarint form
			}
			rec = trace.Record{
				Kind: "access", Owner: owner, Rank: rank,
				Lo: lo, Hi: lo + span, Type: accessTypeNames[1+int(accumOp)%5],
				Epoch: epoch, Time: tm, CallTime: callTm,
				Stack: stack, Filtered: filtered, StackID: stackID,
				File: file, Line: line, AccumOp: accumOp,
			}
		case 1:
			if owner < 0 {
				return
			}
			rec = trace.Record{Kind: "epoch_end", Owner: owner}
		default:
			if owner < 0 || rank < 0 {
				return
			}
			rec = trace.Record{Kind: "release", Owner: owner, Rank: rank}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, trace.Header{Ranks: 4, Window: "w"})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Record(rec); err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		w.Flush()
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got trace.Record
		if err := r.Read(&got); err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	})
}

// sampleRecordsF mirrors sampleRecords for the fuzz seed (fuzz targets
// cannot call testing.T helpers at seed time).
func sampleRecordsF() []trace.Record {
	return []trace.Record{
		{Kind: "access", Owner: 0, Rank: 1, Lo: 100, Hi: 107, Type: "rma_write", Epoch: 1, Time: 5, CallTime: 3, File: "halo.c", Line: 42},
		{Kind: "release", Owner: 0, Rank: 2},
		{Kind: "epoch_end", Owner: 0},
	}
}
