// Package tracebin is the binary wire format of package trace: a
// length-prefixed, varint-encoded, append-only record stream built for
// multi-million-event traces where the JSON Lines format's parse cost
// and size dominate ingest.
//
// Layout:
//
//	header   := magic "RMTB" | version u8 | ranks uvarint
//	            | len(window) uvarint | window bytes
//	stream   := header record*
//	record   := len(payload) uvarint | payload
//	payload  := kind u8 | body
//
//	access   := flags u8 | owner uvarint | rank uvarint
//	            | lo uvarint | hi-lo uvarint | type u8
//	            | epoch uvarint | time uvarint | call_time uvarint
//	            | accum_op u8 | stack_id uvarint
//	            | file_id uvarint | line uvarint
//	epochEnd := owner uvarint
//	release  := owner uvarint | rank uvarint
//	fileDef  := id uvarint | len(name) uvarint | name bytes
//	complete := owner uvarint | rank uvarint
//	            | lo uvarint | hi-lo uvarint
//
// File names are interned in a string table: the first access citing a
// file is preceded by a fileDef record assigning it the next id (ids
// start at 1; 0 means "no file"), and every later access cites the id.
// The access flags byte packs the two booleans (bit 0 Stack, bit 1
// Filtered). All uvarints are unsigned LEB128 (encoding/binary); the
// interval's upper bound is delta-encoded against the lower, so the
// short per-element accesses that dominate real traces stay one byte.
//
// The Reader is a zero-allocation streaming decoder over a bufio.Reader:
// one reusable payload buffer, the interned file-name table, and
// constant strings for kinds and access types — steady-state Read calls
// allocate nothing. Both Reader and Writer implement the trace.Source /
// trace.Sink interfaces, so replay, generation and conversion code is
// format-agnostic; Open sniffs the magic and returns the right Source
// for either format.
package tracebin

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"rmarace/internal/detector"
	"rmarace/internal/trace"
)

// Magic opens every binary trace stream.
var Magic = [4]byte{'R', 'M', 'T', 'B'}

// Version is the current wire version byte.
const Version = 1

// Record kind bytes.
const (
	kindAccess   = 0
	kindEpochEnd = 1
	kindRelease  = 2
	kindFileDef  = 3
	kindComplete = 4
)

// maxPayload caps one record's payload so a corrupt length prefix
// cannot force a huge allocation; real records are tens of bytes, and
// the largest legitimate payload is a fileDef carrying a path.
const maxPayload = 1 << 20

// accessTypeCodes maps the JSON wire names to their one-byte codes and
// back. Code 0 is reserved (no type) so a zeroed payload never decodes
// to a valid access.
var accessTypeNames = [...]string{
	1: "local_read",
	2: "local_write",
	3: "rma_read",
	4: "rma_write",
	5: "rma_accum",
}

func accessTypeCode(name string) (byte, bool) {
	for c := 1; c < len(accessTypeNames); c++ {
		if accessTypeNames[c] == name {
			return byte(c), true
		}
	}
	return 0, false
}

// Access flag bits.
const (
	flagStack    = 1 << 0
	flagFiltered = 1 << 1
)

// Writer serialises records to the binary stream. It implements
// trace.Sink.
type Writer struct {
	w       *bufio.Writer
	files   map[string]uint64
	scratch []byte // payload assembly buffer, reused across records
	lenBuf  [binary.MaxVarintLen64]byte
}

// NewWriter writes a binary trace with the given header to w.
func NewWriter(w io.Writer, h trace.Header) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	t := &Writer{w: bw, files: make(map[string]uint64)}
	t.scratch = binary.AppendUvarint(t.scratch[:0], uint64(h.Ranks))
	t.scratch = binary.AppendUvarint(t.scratch, uint64(len(h.Window)))
	t.scratch = append(t.scratch, h.Window...)
	if _, err := bw.Write(t.scratch); err != nil {
		return nil, err
	}
	return t, nil
}

// writeRecord emits one length-prefixed payload.
func (t *Writer) writeRecord(payload []byte) error {
	n := binary.PutUvarint(t.lenBuf[:], uint64(len(payload)))
	if _, err := t.w.Write(t.lenBuf[:n]); err != nil {
		return err
	}
	_, err := t.w.Write(payload)
	return err
}

// fileID interns a file name, emitting its fileDef record on first use.
// Id 0 means "no file".
func (t *Writer) fileID(name string) (uint64, error) {
	if name == "" {
		return 0, nil
	}
	if id, ok := t.files[name]; ok {
		return id, nil
	}
	id := uint64(len(t.files) + 1)
	t.files[name] = id
	p := append(t.scratch[:0], kindFileDef)
	p = binary.AppendUvarint(p, id)
	p = binary.AppendUvarint(p, uint64(len(name)))
	p = append(p, name...)
	t.scratch = p[:0]
	return id, t.writeRecord(p)
}

// Record implements trace.Sink: it appends a pre-built record.
func (t *Writer) Record(rec trace.Record) error {
	switch rec.Kind {
	case "access":
		code, ok := accessTypeCode(rec.Type)
		if !ok {
			return fmt.Errorf("tracebin: unknown access type %q", rec.Type)
		}
		if rec.Hi < rec.Lo {
			return fmt.Errorf("tracebin: inverted interval [%d, %d]", rec.Lo, rec.Hi)
		}
		fid, err := t.fileID(rec.File)
		if err != nil {
			return err
		}
		var flags byte
		if rec.Stack {
			flags |= flagStack
		}
		if rec.Filtered {
			flags |= flagFiltered
		}
		p := append(t.scratch[:0], kindAccess, flags)
		p = binary.AppendUvarint(p, uint64(rec.Owner))
		p = binary.AppendUvarint(p, uint64(rec.Rank))
		p = binary.AppendUvarint(p, rec.Lo)
		p = binary.AppendUvarint(p, rec.Hi-rec.Lo)
		p = append(p, code)
		p = binary.AppendUvarint(p, rec.Epoch)
		p = binary.AppendUvarint(p, rec.Time)
		p = binary.AppendUvarint(p, rec.CallTime)
		p = append(p, rec.AccumOp)
		p = binary.AppendUvarint(p, uint64(rec.StackID))
		p = binary.AppendUvarint(p, fid)
		p = binary.AppendUvarint(p, uint64(rec.Line))
		t.scratch = p[:0]
		return t.writeRecord(p)
	case "epoch_end":
		p := append(t.scratch[:0], kindEpochEnd)
		p = binary.AppendUvarint(p, uint64(rec.Owner))
		t.scratch = p[:0]
		return t.writeRecord(p)
	case "release":
		p := append(t.scratch[:0], kindRelease)
		p = binary.AppendUvarint(p, uint64(rec.Owner))
		p = binary.AppendUvarint(p, uint64(rec.Rank))
		t.scratch = p[:0]
		return t.writeRecord(p)
	case "complete":
		if rec.Hi < rec.Lo {
			return fmt.Errorf("tracebin: inverted interval [%d, %d]", rec.Lo, rec.Hi)
		}
		p := append(t.scratch[:0], kindComplete)
		p = binary.AppendUvarint(p, uint64(rec.Owner))
		p = binary.AppendUvarint(p, uint64(rec.Rank))
		p = binary.AppendUvarint(p, rec.Lo)
		p = binary.AppendUvarint(p, rec.Hi-rec.Lo)
		t.scratch = p[:0]
		return t.writeRecord(p)
	}
	return fmt.Errorf("tracebin: unknown record kind %q", rec.Kind)
}

// Access implements trace.Sink.
func (t *Writer) Access(owner int, ev detector.Event) error {
	return t.Record(trace.AccessRecord(owner, ev))
}

// EpochEnd implements trace.Sink.
func (t *Writer) EpochEnd(owner int) error {
	return t.Record(trace.Record{Kind: "epoch_end", Owner: owner})
}

// Release implements trace.Sink.
func (t *Writer) Release(owner, rank int) error {
	return t.Record(trace.Record{Kind: "release", Owner: owner, Rank: rank})
}

// Flush implements trace.Sink.
func (t *Writer) Flush() error { return t.w.Flush() }

var _ trace.Sink = (*Writer)(nil)

// Reader is the zero-allocation streaming decoder. It implements
// trace.Source.
type Reader struct {
	r     *bufio.Reader
	hdr   trace.Header
	files []string // id-1 indexed intern table
	buf   []byte   // reusable payload buffer
	recN  int      // 1-based index of the last record returned
	off   int64    // byte offset where the last record started
	read  int64    // total bytes consumed
}

// NewReader opens a binary trace stream and decodes its header.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	t := &Reader{r: br}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tracebin: reading magic: %w", eofIsUnexpected(err))
	}
	t.read += 4
	if magic != Magic {
		return nil, fmt.Errorf("tracebin: bad magic %q (want %q)", magic[:], Magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("tracebin: reading version: %w", eofIsUnexpected(err))
	}
	t.read++
	if ver != Version {
		return nil, fmt.Errorf("tracebin: unsupported version %d (have %d)", ver, Version)
	}
	ranks, err := t.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("tracebin: reading header ranks: %w", err)
	}
	wlen, err := t.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("tracebin: reading header window: %w", err)
	}
	if wlen > maxPayload {
		return nil, fmt.Errorf("tracebin: header window length %d exceeds limit %d", wlen, maxPayload)
	}
	win := make([]byte, wlen)
	if _, err := io.ReadFull(br, win); err != nil {
		return nil, fmt.Errorf("tracebin: reading header window: %w", eofIsUnexpected(err))
	}
	t.read += int64(wlen)
	t.hdr = trace.Header{Kind: "header", Ranks: int(ranks), Window: string(win)}
	return t, nil
}

// eofIsUnexpected maps a bare io.EOF to io.ErrUnexpectedEOF: the callers
// are mid-structure, where a clean EOF is still a truncation.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readUvarint reads one LEB128 varint off the stream, tracking consumed
// bytes and rejecting encodings longer than 64 bits.
func (t *Reader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := t.r.ReadByte()
		if err != nil {
			return 0, eofIsUnexpected(err)
		}
		t.read++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("varint overflows 64 bits")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("varint overflows 64 bits")
}

// Head implements trace.Source.
func (t *Reader) Head() trace.Header { return t.hdr }

// Pos implements trace.Source.
func (t *Reader) Pos() string { return fmt.Sprintf("record %d (offset %d)", t.recN, t.off) }

// BytesRead implements trace.Source.
func (t *Reader) BytesRead() int64 { return t.read }

// errAt wraps a decode error with the current record's position.
func (t *Reader) errAt(err error) error {
	return fmt.Errorf("tracebin: %s: %w", t.Pos(), err)
}

// Read implements trace.Source: it decodes the next record into rec, or
// returns io.EOF at a clean record boundary. fileDef records are
// interned transparently; decode errors carry the record index and byte
// offset and a truncated stream reports io.ErrUnexpectedEOF, never a
// bare EOF.
func (t *Reader) Read(rec *trace.Record) error {
	for {
		t.off = t.read
		t.recN++
		// A clean EOF is only legal before the length prefix's first byte.
		if _, err := t.r.Peek(1); err != nil {
			if err == io.EOF {
				t.recN--
				return io.EOF
			}
			return t.errAt(err)
		}
		plen, err := t.readUvarint()
		if err != nil {
			return t.errAt(fmt.Errorf("record length: %w", err))
		}
		if plen > maxPayload {
			return t.errAt(fmt.Errorf("record length %d exceeds limit %d", plen, maxPayload))
		}
		if plen == 0 {
			return t.errAt(fmt.Errorf("empty record"))
		}
		if uint64(cap(t.buf)) < plen {
			t.buf = make([]byte, plen)
		}
		p := t.buf[:plen]
		if _, err := io.ReadFull(t.r, p); err != nil {
			return t.errAt(fmt.Errorf("record payload: %w", eofIsUnexpected(err)))
		}
		t.read += int64(plen)
		kind := p[0]
		if kind == kindFileDef {
			if err := t.internFile(p[1:]); err != nil {
				return t.errAt(err)
			}
			continue
		}
		if err := t.decode(kind, p[1:], rec); err != nil {
			return t.errAt(err)
		}
		return nil
	}
}

// internFile decodes a fileDef payload into the string table.
func (t *Reader) internFile(p []byte) error {
	d := payload(p)
	id, err := d.uvarint("file id")
	if err != nil {
		return err
	}
	if id != uint64(len(t.files)+1) {
		return fmt.Errorf("file id %d out of sequence (want %d)", id, len(t.files)+1)
	}
	nlen, err := d.uvarint("file name length")
	if err != nil {
		return err
	}
	if uint64(len(d)) != nlen {
		return fmt.Errorf("file name length %d does not match payload (%d bytes left)", nlen, len(d))
	}
	t.files = append(t.files, string(d))
	return nil
}

// decode fills rec from one record payload body.
func (t *Reader) decode(kind byte, p []byte, rec *trace.Record) error {
	*rec = trace.Record{}
	d := payload(p)
	switch kind {
	case kindAccess:
		if len(d) < 1 {
			return fmt.Errorf("access record truncated before flags")
		}
		flags := d[0]
		d = d[1:]
		rec.Kind = "access"
		rec.Stack = flags&flagStack != 0
		rec.Filtered = flags&flagFiltered != 0
		owner, err := d.uvarint("owner")
		if err != nil {
			return err
		}
		rank, err := d.uvarint("rank")
		if err != nil {
			return err
		}
		rec.Owner, rec.Rank = int(owner), int(rank)
		if rec.Lo, err = d.uvarint("lo"); err != nil {
			return err
		}
		span, err := d.uvarint("interval span")
		if err != nil {
			return err
		}
		rec.Hi = rec.Lo + span
		if rec.Hi < rec.Lo {
			return fmt.Errorf("interval span %d overflows from lo %d", span, rec.Lo)
		}
		if len(d) < 1 {
			return fmt.Errorf("access record truncated before type")
		}
		code := d[0]
		d = d[1:]
		if int(code) >= len(accessTypeNames) || code == 0 {
			return fmt.Errorf("unknown access type code %d", code)
		}
		rec.Type = accessTypeNames[code]
		if rec.Epoch, err = d.uvarint("epoch"); err != nil {
			return err
		}
		if rec.Time, err = d.uvarint("time"); err != nil {
			return err
		}
		if rec.CallTime, err = d.uvarint("call time"); err != nil {
			return err
		}
		if len(d) < 1 {
			return fmt.Errorf("access record truncated before accum op")
		}
		rec.AccumOp = d[0]
		d = d[1:]
		sid, err := d.uvarint("stack id")
		if err != nil {
			return err
		}
		rec.StackID = uint32(sid)
		fid, err := d.uvarint("file id")
		if err != nil {
			return err
		}
		if fid > uint64(len(t.files)) {
			return fmt.Errorf("file id %d cites an undefined file (table has %d)", fid, len(t.files))
		}
		if fid > 0 {
			rec.File = t.files[fid-1]
		}
		line, err := d.uvarint("line")
		if err != nil {
			return err
		}
		rec.Line = int(line)
	case kindEpochEnd:
		rec.Kind = "epoch_end"
		owner, err := d.uvarint("owner")
		if err != nil {
			return err
		}
		rec.Owner = int(owner)
	case kindRelease:
		rec.Kind = "release"
		owner, err := d.uvarint("owner")
		if err != nil {
			return err
		}
		rank, err := d.uvarint("rank")
		if err != nil {
			return err
		}
		rec.Owner, rec.Rank = int(owner), int(rank)
	case kindComplete:
		rec.Kind = "complete"
		owner, err := d.uvarint("owner")
		if err != nil {
			return err
		}
		rank, err := d.uvarint("rank")
		if err != nil {
			return err
		}
		rec.Owner, rec.Rank = int(owner), int(rank)
		if rec.Lo, err = d.uvarint("lo"); err != nil {
			return err
		}
		span, err := d.uvarint("interval span")
		if err != nil {
			return err
		}
		rec.Hi = rec.Lo + span
		if rec.Hi < rec.Lo {
			return fmt.Errorf("interval span %d overflows from lo %d", span, rec.Lo)
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	if len(d) > 0 {
		return fmt.Errorf("%d trailing bytes after record body", len(d))
	}
	return nil
}

// payload is a cursor over one record's body; its uvarint method
// consumes from the front with field-named errors.
type payload []byte

func (d *payload) uvarint(field string) (uint64, error) {
	x, n := binary.Uvarint(*d)
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("%s: record truncated mid-varint", field)
		}
		return 0, fmt.Errorf("%s: varint overflows 64 bits", field)
	}
	*d = (*d)[n:]
	return x, nil
}

var _ trace.Source = (*Reader)(nil)

// Open sniffs r's leading bytes and returns the matching trace source:
// a binary Reader when the stream opens with the RMTB magic, the JSON
// Lines reader otherwise. format reports which was chosen ("bin" or
// "json").
func Open(r io.Reader) (src trace.Source, format string, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(Magic))
	if err != nil && err != io.EOF {
		return nil, "", fmt.Errorf("tracebin: sniffing format: %w", err)
	}
	if bytes.Equal(head, Magic[:]) {
		tr, err := NewReader(br)
		return tr, "bin", err
	}
	tr, err := trace.NewReader(br)
	return tr, "json", err
}

// Convert streams every record of src into dst and flushes, returning
// the number of records copied. Both formats implement the interfaces,
// so the same call converts JSON→binary, binary→JSON, or either to
// itself (a canonicalising copy). Conversion is lossless: every field
// of every record round-trips bit-identically.
func Convert(dst trace.Sink, src trace.Source) (int64, error) {
	var n int64
	var rec trace.Record
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := dst.Record(rec); err != nil {
			return n, err
		}
		n++
	}
	return n, dst.Flush()
}
