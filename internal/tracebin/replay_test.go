package tracebin

import (
	"bytes"
	"testing"

	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/trace"
)

// convertToBin converts a buffered JSON trace to binary.
func convertToBin(t *testing.T, jsonRaw []byte) []byte {
	t.Helper()
	jr, err := trace.NewReader(bytes.NewReader(jsonRaw))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw, err := NewWriter(&bin, jr.Head())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(bw, jr); err != nil {
		t.Fatalf("convert: %v", err)
	}
	return bin.Bytes()
}

// TestBinaryReplayMatchesJSON proves the acceptance property on
// generated traces: the streaming binary replay and the JSON replay
// produce identical event/epoch counts and identical verdicts, across
// the memory-policy option matrix.
func TestBinaryReplayMatchesJSON(t *testing.T) {
	newA := func(int) detector.Analyzer { return core.New() }
	cfgs := []trace.GenConfig{
		{Ranks: 8, Events: 400, Epochs: 3, Owners: 4, Adjacency: 0.5, SafeOnly: true, Seed: 1},
		{Ranks: 16, Events: 300, Epochs: 4, Owners: 8, OwnerSkew: 0.9, Adjacency: 0.2, SafeOnly: true, Seed: 2, PlantRace: true},
		{Ranks: 4, Events: 500, Epochs: 2, Adjacency: 0.8, WriteFraction: 0.9, Seed: 3},
	}
	optsMatrix := []trace.ReplayOpts{
		{},
		{Batch: 64},
		{EvictCold: 1, Compact: true},
	}
	for i, cfg := range cfgs {
		var jbuf bytes.Buffer
		if _, err := trace.Generate(&jbuf, cfg); err != nil {
			t.Fatal(err)
		}
		bin := convertToBin(t, jbuf.Bytes())
		for j, opts := range optsMatrix {
			jr, err := trace.NewReader(bytes.NewReader(jbuf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			jres, err := trace.ReplayWith(jr, newA, opts)
			if err != nil {
				t.Fatalf("cfg %d opts %d: JSON replay: %v", i, j, err)
			}
			br, err := NewReader(bytes.NewReader(bin))
			if err != nil {
				t.Fatal(err)
			}
			bres, err := trace.ReplayStream(br, newA, opts)
			if err != nil {
				t.Fatalf("cfg %d opts %d: binary replay: %v", i, j, err)
			}
			if jres.Events != bres.Events || jres.Epochs != bres.Epochs {
				t.Errorf("cfg %d opts %d: counts diverge: json %d/%d, bin %d/%d",
					i, j, jres.Events, jres.Epochs, bres.Events, bres.Epochs)
			}
			switch {
			case (jres.Race == nil) != (bres.Race == nil):
				t.Errorf("cfg %d opts %d: verdicts diverge: json %v, bin %v", i, j, jres.Race, bres.Race)
			case jres.Race != nil:
				if detector.DedupKey(jres.Race) != detector.DedupKey(bres.Race) {
					t.Errorf("cfg %d opts %d: race identity diverges:\n json %+v\n bin  %+v",
						i, j, jres.Race, bres.Race)
				}
			}
		}
	}
}

// TestGenerateToBinary exercises direct binary generation (no JSON
// intermediary): the stream must replay identically to a JSON
// generation with the same config.
func TestGenerateToBinary(t *testing.T) {
	cfg := trace.GenConfig{Ranks: 8, Events: 300, Epochs: 3, Owners: 4, OwnerSkew: 0.5, Adjacency: 0.4, SafeOnly: true, Seed: 9}
	var jbuf bytes.Buffer
	jn, err := trace.Generate(&jbuf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bbuf bytes.Buffer
	bw, err := NewWriter(&bbuf, trace.Header{Ranks: cfg.Ranks, Window: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	bn, err := trace.GenerateTo(bw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jn != bn {
		t.Fatalf("JSON generation wrote %d events, binary %d", jn, bn)
	}
	if bbuf.Len() >= jbuf.Len() {
		t.Errorf("binary trace (%d bytes) not smaller than JSON (%d bytes)", bbuf.Len(), jbuf.Len())
	}

	newA := func(int) detector.Analyzer { return core.New() }
	jr, err := trace.NewReader(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	jres, err := trace.Replay(jr, newA)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewReader(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := trace.ReplayStream(br, newA, trace.ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if jres.Events != bres.Events || jres.Epochs != bres.Epochs || (jres.Race == nil) != (bres.Race == nil) {
		t.Fatalf("direct binary generation replays differently: %+v vs %+v", bres, jres)
	}
}
