package rma

import (
	"math/rand"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
)

// fuzzProgram builds a random SPMD program that is race-free by
// construction: every rank owns a disjoint slot range in every window
// segment, operations target only the issuing rank's slots, and local
// accesses stay within the rank's private buffers. With inject set, one
// deliberate overlap between two ranks' RMA writes is added.
type fuzzProgram struct {
	ranks    int
	ops      int
	seed     int64
	inject   bool
	slotsPer int
}

func (f fuzzProgram) body() func(p *Proc) error {
	const slotBytes = 16
	return func(p *Proc) error {
		rng := rand.New(rand.NewSource(f.seed + int64(p.Rank())*104729))
		segBytes := f.slotsPer * slotBytes
		// One put/get segment per origin plus a shared accumulator
		// segment at the end.
		w, err := p.WinCreate("fuzz", (f.ranks+1)*segBytes)
		if err != nil {
			return err
		}
		locals := p.Alloc("locals", f.slotsPer*slotBytes)
		gdst := p.Alloc("getdst", f.ranks*f.slotsPer*slotBytes)
		scratch := p.Alloc("scratch", 4096, Untracked())

		if err := w.LockAll(); err != nil {
			return err
		}
		// Each (origin, slot) pair is used at most once per epoch for a
		// remote write; reads may repeat.
		usedPut := make(map[int]bool)   // slot index within my segment, across all targets
		usedLocal := make(map[int]bool) // locally stored slots
		didAccum := false

		for op := 0; op < f.ops; op++ {
			slot := rng.Intn(f.slotsPer)
			target := rng.Intn(f.ranks)
			myOff := p.Rank()*segBytes + slot*slotBytes
			dbgLine := access.Debug{File: "fuzz.c", Line: 100 + op%7}
			switch rng.Intn(6) {
			case 0: // put into my dedicated slot at the target
				key := target*f.slotsPer + slot
				if usedPut[key] {
					continue
				}
				usedPut[key] = true
				if err := w.Put(target, myOff, locals, slot*slotBytes, 8, dbgLine); err != nil {
					return err
				}
			case 1: // get from my dedicated slot at the target
				// A put (RMA_Write) plus a get (RMA_Read) of the same
				// slot would race within the epoch, so each slot is
				// used by exactly one one-sided operation. The
				// destination is a dedicated per-key slot of a tracked
				// buffer (never touched locally).
				key := target*f.slotsPer + slot
				if usedPut[key] {
					continue
				}
				usedPut[key] = true
				if err := w.Get(gdst, key*slotBytes, target, myOff, 8, dbgLine); err != nil {
					return err
				}
			case 2: // local store to a private slot (at most once)
				if usedLocal[slot] {
					continue
				}
				usedLocal[slot] = true
				if err := locals.Store(slot*slotBytes+8, make([]byte, 8), dbgLine); err != nil {
					return err
				}
			case 3: // local load of a private slot (idempotent, safe)
				if _, err := locals.Load(slot*slotBytes+8, 8, dbgLine); err != nil {
					return err
				}
			case 4: // filtered interior work
				if _, err := scratch.Load((slot%250)*16, 8, dbgLine); err != nil {
					return err
				}
			case 5: // one accumulate into this origin's accumulator slot.
				// A single per-origin accumulate keeps the program
				// silent even under the legacy analyzer, which
				// conservatively flags any overlapping accumulates;
				// the same-operation atomicity semantics are exercised
				// by the dedicated accumulate tests.
				if didAccum {
					continue
				}
				didAccum = true
				if err := w.Accumulate(target, f.ranks*segBytes+p.Rank()*slotBytes, locals, slot*slotBytes, 8, access.AccumSum, dbgLine); err != nil {
					return err
				}
			}
		}

		if f.inject && p.Rank() < 2 {
			// Two ranks write the same byte of rank 0's window: a
			// guaranteed cross-origin RMA_Write overlap.
			if err := w.Put(0, segBytes-8, locals, 0, 8, access.Debug{File: "fuzz.c", Line: 999}); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
}

// TestFuzzSafeProgramsStaySilent drives randomized race-free programs
// through every method: no false positives, no deadlocks, no aborts.
func TestFuzzSafeProgramsStaySilent(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		f := fuzzProgram{ranks: 5, ops: 300, seed: seed, slotsPer: 64}
		for _, m := range detector.Methods() {
			err, s := run(t, f.ranks, m, Config{}, f.body())
			if err != nil {
				t.Fatalf("seed %d under %v: %v", seed, m, err)
			}
			if s.Race() != nil {
				t.Fatalf("seed %d under %v: false positive %v", seed, m, s.Race())
			}
		}
		// The strided extension must agree.
		err, s := run(t, f.ranks, detector.OurContribution, Config{StridedMerging: true}, f.body())
		if err != nil || s.Race() != nil {
			t.Fatalf("seed %d strided: err=%v race=%v", seed, err, s.Race())
		}
	}
}

// TestFuzzInjectedOverlapAlwaysCaught: with the seeded cross-origin
// write overlap, the sound detectors must always report.
func TestFuzzInjectedOverlapAlwaysCaught(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		f := fuzzProgram{ranks: 5, ops: 200, seed: seed, slotsPer: 64, inject: true}
		for _, m := range []detector.Method{detector.OurContribution, detector.MustRMAMethod, detector.RMAAnalyzer} {
			_, s := run(t, f.ranks, m, Config{}, f.body())
			if s.Race() == nil {
				t.Fatalf("seed %d under %v: injected overlap missed", seed, m)
			}
		}
	}
}

// TestFuzzAccessCountsAgree: the two tree-based analyzers must observe
// exactly the same access stream.
func TestFuzzAccessCountsAgree(t *testing.T) {
	f := fuzzProgram{ranks: 4, ops: 400, seed: 11, slotsPer: 64}
	totals := make(map[detector.Method]uint64)
	for _, m := range []detector.Method{detector.RMAAnalyzer, detector.OurContribution} {
		err, s := run(t, f.ranks, m, Config{}, f.body())
		if err != nil {
			t.Fatal(err)
		}
		for _, ws := range s.Stats() {
			totals[m] += ws.Accesses
		}
	}
	if totals[detector.RMAAnalyzer] != totals[detector.OurContribution] {
		t.Fatalf("access streams diverge: %v", totals)
	}
	if totals[detector.OurContribution] == 0 {
		t.Fatal("no accesses observed")
	}
}
