package rma

import (
	"encoding/binary"
	"fmt"
	"time"
)

// General Active Target Synchronisation (PSCW): MPI_Win_post /
// MPI_Win_start / MPI_Win_complete / MPI_Win_wait. A target exposes its
// window to a group of origins with Post and retires the exposure with
// Wait; an origin opens an access epoch towards a group of targets with
// Start and closes it with Complete. Wait returns only after every
// posted origin has completed, so the exposure forms one analysis epoch
// at the target: its analyzer's EpochEnd runs inside Wait.
//
// The handshakes ride the simulated MPI point-to-point layer with
// window-scoped tags, exactly how a PMPI-based tool would observe them.

// pscw message tags; each window gets its own tag space via its id.
const (
	tagPost = 1 << 20
	tagDone = 1 << 21
)

// Start opens an access epoch towards the given targets
// (MPI_Win_start). It blocks until every target has posted its
// exposure.
func (w *Win) Start(targets ...int) error {
	if w.freed {
		return ErrFreed
	}
	if len(targets) == 0 {
		return fmt.Errorf("rma: Start with an empty target group")
	}
	if w.pscwTargets != nil {
		return fmt.Errorf("rma: Start while a PSCW access epoch is open")
	}
	for _, t := range targets {
		if t < 0 || t >= w.p.Size() {
			return fmt.Errorf("rma: Start with invalid rank %d", t)
		}
	}
	for _, t := range targets {
		if _, err := w.p.Recv(t, tagPost+w.g.id); err != nil {
			return err
		}
	}
	w.pscwTargets = make(map[int]bool, len(targets))
	for _, t := range targets {
		w.pscwTargets[t] = true
	}
	w.pscwSent = make(map[int]int64, len(targets))
	w.pscwStart = time.Now()
	return nil
}

// Complete closes the access epoch (MPI_Win_complete): every target of
// the Start group gets its pending notification batch flushed and then
// receives the number of accesses sent to it so its Wait can drain
// them.
func (w *Win) Complete() error {
	if w.pscwTargets == nil {
		return fmt.Errorf("rma: Complete without a matching Start")
	}
	for t := range w.pscwTargets {
		if err := w.flushNotifs(t); err != nil {
			return err
		}
	}
	for t := range w.pscwTargets {
		var count [8]byte
		binary.LittleEndian.PutUint64(count[:], uint64(w.pscwSent[t]))
		if err := w.p.Send(t, tagDone+w.g.id, count[:]); err != nil {
			return err
		}
	}
	w.pscwTargets = nil
	w.pscwSent = nil
	// The access epoch Start opened ends here: it contributes to the
	// per-rank epoch-time accounting exactly like a LockAll..UnlockAll
	// epoch (previously only passive-target epochs were counted).
	w.p.s.recordEpoch(w.p.Rank(), time.Since(w.pscwStart))
	return nil
}

// Post exposes this process's window to the given origins
// (MPI_Win_post).
func (w *Win) Post(origins ...int) error {
	if w.freed {
		return ErrFreed
	}
	if len(origins) == 0 {
		return fmt.Errorf("rma: Post with an empty origin group")
	}
	if w.pscwPosted != nil {
		return fmt.Errorf("rma: Post while an exposure epoch is open")
	}
	for _, o := range origins {
		if o < 0 || o >= w.p.Size() {
			return fmt.Errorf("rma: Post with invalid rank %d", o)
		}
	}
	for _, o := range origins {
		if err := w.p.Send(o, tagPost+w.g.id, nil); err != nil {
			return err
		}
	}
	w.pscwPosted = origins
	w.postStart = time.Now()
	return nil
}

// Wait retires the exposure epoch (MPI_Win_wait): it blocks until every
// posted origin has called Complete and all their accesses have been
// analysed, then completes the analysis epoch.
func (w *Win) Wait() error {
	if w.pscwPosted == nil {
		return fmt.Errorf("rma: Wait without a matching Post")
	}
	rank := w.p.Rank()
	var incoming int64
	for _, o := range w.pscwPosted {
		m, err := w.p.Recv(o, tagDone+w.g.id)
		if err != nil {
			return err
		}
		incoming += int64(binary.LittleEndian.Uint64(m.Data))
	}
	w.expected += incoming

	if err := w.g.eng.WaitReceived(rank, w.expected); err != nil {
		return err
	}
	w.g.eng.EpochEnd(rank)

	w.pscwPosted = nil
	// The exposure epoch is an epoch too: Post..Wait brackets the
	// target-side analysis the same way LockAll..UnlockAll does.
	w.p.s.recordEpoch(rank, time.Since(w.postStart))
	return nil
}
