package rma

import (
	"fmt"
	"time"

	"rmarace/internal/mpi"
	"rmarace/internal/obs"
)

// Lock modes of MPI_Win_lock.
const (
	lockNone = iota
	// LockExclusive is MPI_LOCK_EXCLUSIVE: sole access to the target's
	// window; the matching Unlock orders every lock session completed
	// so far — shared included, by the server's FIFO grant order —
	// before every later lock holder's session.
	LockExclusive
	// LockShared is MPI_LOCK_SHARED: concurrent holders allowed;
	// conflicting accesses of concurrent holders still race.
	LockShared
)

// lockReq is a message to the window's lock server.
type lockReq struct {
	target int
	mode   int // LockExclusive or LockShared; lockNone for unlock
	reply  chan struct{}
}

// lockState is the server-side state of one rank's window lock.
type lockState struct {
	mode    int
	holders int
	queue   []lockReq
}

// lockServer serialises MPI_Win_lock/MPI_Win_unlock requests for one
// window, granting in FIFO order with shared-batch semantics.
func (g *winGlobal) lockServer(world *mpi.World) {
	states := make([]lockState, g.ranks)
	grantQueued := func(st *lockState) {
		for len(st.queue) > 0 {
			head := st.queue[0]
			switch {
			case st.holders == 0:
				st.mode = head.mode
				st.holders = 1
				st.queue = st.queue[1:]
				head.reply <- struct{}{}
			case st.mode == LockShared && head.mode == LockShared:
				st.holders++
				st.queue = st.queue[1:]
				head.reply <- struct{}{}
			default:
				return
			}
		}
	}
	for {
		select {
		case req, ok := <-g.lockCh:
			if !ok {
				return
			}
			st := &states[req.target]
			if req.mode == lockNone { // unlock
				st.holders--
				if st.holders < 0 {
					world.Abort(fmt.Errorf("rma: unlock of window %q rank %d without a lock", g.name, req.target))
					st.holders = 0
				}
				if st.holders == 0 {
					st.mode = lockNone
				}
				req.reply <- struct{}{}
				grantQueued(st)
				continue
			}
			st.queue = append(st.queue, req)
			grantQueued(st)
		case <-world.Aborted():
			// Fail everything still queued so blocked Lock calls
			// return.
			for i := range states {
				for _, q := range states[i].queue {
					close(q.reply)
				}
				states[i].queue = nil
			}
			return
		}
	}
}

// Lock acquires a passive-target lock on target's window
// (MPI_Win_lock). mode is LockExclusive or LockShared. One-sided
// operations towards target are permitted between Lock and Unlock, in
// addition to any LockAll epoch. Locking two targets in opposite orders
// from two ranks deadlocks, as in MPI.
func (w *Win) Lock(mode, target int) error {
	if w.freed {
		return ErrFreed
	}
	if mode != LockExclusive && mode != LockShared {
		return fmt.Errorf("rma: invalid lock mode %d", mode)
	}
	if target < 0 || target >= w.p.Size() {
		return fmt.Errorf("rma: lock of invalid rank %d", target)
	}
	if w.lockMode[target] != lockNone {
		return fmt.Errorf("rma: window %q rank %d already locked by this process", w.g.name, target)
	}
	s := w.p.s
	var start time.Time
	if s.recOn {
		start = time.Now()
	}
	reply := make(chan struct{}, 1)
	select {
	case w.g.lockCh <- lockReq{target: target, mode: mode, reply: reply}:
	case <-w.p.World().Aborted():
		return w.p.World().AbortErr()
	}
	select {
	case _, ok := <-reply:
		if !ok {
			return w.p.World().AbortErr()
		}
	case <-w.p.World().Aborted():
		return w.p.World().AbortErr()
	}
	if s.recOn {
		s.rec.Observe(obs.LockWaitNanos, target, int64(time.Since(start)))
	}
	w.lockMode[target] = mode
	return nil
}

// Unlock releases the passive-target lock on target's window
// (MPI_Win_unlock), completing this process's operations towards it.
// After an exclusive unlock, every lock session completed so far —
// shared included, by the lock server's FIFO grant order — is ordered
// before any later lock holder's, which the analysis models by
// retiring the remote one-sided accesses at the target
// (Analyzer.Release); the target's own accesses stay live.
// Origin-side completion is not modelled: a local store to a source
// buffer after Unlock may still be flagged — the same conservatism
// class as §6(2).
func (w *Win) Unlock(target int) error {
	if target < 0 || target >= w.p.Size() {
		return fmt.Errorf("rma: unlock of invalid rank %d", target)
	}
	mode := w.lockMode[target]
	if mode == lockNone {
		return fmt.Errorf("rma: window %q rank %d is not locked by this process", w.g.name, target)
	}

	// MPI_Win_unlock completes the session's operations at the target:
	// the pending notification batch is flushed, then a synchronisation
	// marker travels behind the session's accesses on the notification
	// channel and is acknowledged once they are all analysed. An
	// exclusive unlock additionally retires (releases) the remote
	// accesses stored at the target, because the lock's FIFO grant
	// order places every completed session before every later holder's.
	if err := w.flushNotifs(target); err != nil {
		return err
	}
	ack := make(chan struct{})
	if err := w.g.eng.SendSync(target, w.p.Rank(), mode == LockExclusive, ack); err != nil {
		return err
	}
	w.sent[target]++
	select {
	case <-ack:
	case <-w.p.World().Aborted():
		return w.p.World().AbortErr()
	}

	reply := make(chan struct{}, 1)
	select {
	case w.g.lockCh <- lockReq{target: target, mode: lockNone, reply: reply}:
	case <-w.p.World().Aborted():
		return w.p.World().AbortErr()
	}
	select {
	case <-reply:
	case <-w.p.World().Aborted():
		return w.p.World().AbortErr()
	}
	w.lockMode[target] = lockNone
	return nil
}

// locked reports whether this process may access target's window
// through a per-target lock.
func (w *Win) lockedFor(target int) bool {
	return w.lockMode[target] != lockNone
}
