package rma

import (
	"encoding/binary"
	"fmt"

	"rmarace/internal/access"
	"rmarace/internal/obs/span"
)

// Accumulate performs an MPI_Accumulate: it combines n bytes of src at
// srcOff into target's window at targetOff with the reduction op,
// element-wise over 8-byte little-endian words (n must be a multiple of
// 8). The target side is an atomic read-modify-write: overlapping
// accumulates that use the same operation never race (§2.1 property 3),
// while any overlapping put, get or local access still does. This
// operation extends the paper's evaluation, which covers MPI_Put and
// MPI_Get only; the legacy analyzer conservatively flags concurrent
// accumulates, one of its documented limitations.
func (w *Win) Accumulate(target, targetOff int, src *Buffer, srcOff, n int, op access.AccumOp, dbg access.Debug) error {
	if target < 0 || target >= w.p.Size() {
		return fmt.Errorf("rma: accumulate to invalid rank %d", target)
	}
	if !w.epochOpen && !w.lockedFor(target) && !w.pscwTargets[target] {
		return ErrNoEpoch
	}
	if op == access.AccumNone {
		return fmt.Errorf("rma: accumulate requires a reduction operation")
	}
	if n%8 != 0 {
		return fmt.Errorf("rma: accumulate length %d is not a multiple of the 8-byte datatype", n)
	}
	g := w.g
	tgtMem := g.mems[target]
	callTime := w.p.tick()
	origin := w.p.Rank()
	clk := w.callClock(origin, callTime)
	var spanT0 int64
	if w.spOn {
		spanT0 = w.sp.Now()
	}

	// Origin side: the source buffer is read, exactly like a Put.
	originEpoch := g.eng.Epoch(origin)
	evO := rmaEvent(src, srcOff, n, access.RMARead, origin, originEpoch, callTime, dbg)
	evO.Clock = clk
	if err := w.analyse(origin, evO); err != nil {
		return err
	}

	// Element-wise atomic combine into the target memory.
	g.copyMu.Lock()
	for i := 0; i < n; i += 8 {
		dst := tgtMem.data[targetOff+i : targetOff+i+8]
		cur := binary.LittleEndian.Uint64(dst)
		val := binary.LittleEndian.Uint64(src.data[srcOff+i : srcOff+i+8])
		binary.LittleEndian.PutUint64(dst, applyAccum(op, cur, val))
	}
	g.copyMu.Unlock()

	// Target side: an RMA_Accum access carrying the operation.
	ev := rmaEvent(tgtMem, targetOff, n, access.RMAAccum, origin, 0, callTime, dbg)
	ev.Acc.AccumOp = op
	ev.Clock = clk
	err := w.notify(target, ev)
	if w.spOn {
		w.sp.Record(origin, span.Record{
			Kind:  span.KindAccum,
			Start: spanT0, Dur: w.sp.Now() - spanT0,
			A: int64(target), B: int64(n),
		})
	}
	return err
}

// FetchAndOp performs an MPI_Fetch_and_op on one 8-byte element: it
// atomically combines value into target's window at targetOff and
// returns the previous content. Like Accumulate, same-operation
// FetchAndOps never race with each other.
func (w *Win) FetchAndOp(target, targetOff int, value uint64, op access.AccumOp, dbg access.Debug) (uint64, error) {
	if target < 0 || target >= w.p.Size() {
		return 0, fmt.Errorf("rma: fetch-and-op to invalid rank %d", target)
	}
	if !w.epochOpen && !w.lockedFor(target) && !w.pscwTargets[target] {
		return 0, ErrNoEpoch
	}
	if op == access.AccumNone {
		return 0, fmt.Errorf("rma: fetch-and-op requires a reduction operation")
	}
	g := w.g
	tgtMem := g.mems[target]
	callTime := w.p.tick()
	origin := w.p.Rank()
	clk := w.callClock(origin, callTime)
	var spanT0 int64
	if w.spOn {
		spanT0 = w.sp.Now()
	}

	g.copyMu.Lock()
	dst := tgtMem.data[targetOff : targetOff+8]
	old := binary.LittleEndian.Uint64(dst)
	binary.LittleEndian.PutUint64(dst, applyAccum(op, old, value))
	g.copyMu.Unlock()

	ev := rmaEvent(tgtMem, targetOff, 8, access.RMAAccum, origin, 0, callTime, dbg)
	ev.Acc.AccumOp = op
	ev.Clock = clk
	err := w.notify(target, ev)
	if w.spOn {
		w.sp.Record(origin, span.Record{
			Kind:  span.KindAccum,
			Start: spanT0, Dur: w.sp.Now() - spanT0,
			A: int64(target), B: 8,
		})
	}
	if err != nil {
		return 0, err
	}
	return old, nil
}

func applyAccum(op access.AccumOp, cur, val uint64) uint64 {
	switch op {
	case access.AccumSum:
		return cur + val
	case access.AccumReplace:
		return val
	case access.AccumMax:
		if val > cur {
			return val
		}
		return cur
	case access.AccumMin:
		if val < cur {
			return val
		}
		return cur
	case access.AccumBand:
		return cur & val
	}
	return cur
}

// Fence completes an active-target synchronisation phase
// (MPI_Win_fence): it is collective, completes every outstanding
// one-sided operation on the window and separates access epochs. A
// window alternating Fence calls runs each phase as one analysis epoch.
func (w *Win) Fence() error {
	if w.epochOpen {
		if err := w.UnlockAll(); err != nil {
			return err
		}
	}
	return w.LockAll()
}

// FenceEnd closes the final fence phase without opening a new epoch.
func (w *Win) FenceEnd() error {
	if !w.epochOpen {
		return ErrNoEpoch
	}
	return w.UnlockAll()
}
