package rma

import (
	"sort"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
)

// Report assembles the structured run report of the session: the
// per-window analysis footprint, the full metrics snapshot when the
// session recorded into a *obs.Registry, and every detected race with
// its provenance. source labels what produced the report ("run",
// "replay", "bench"). Call it after the world has finished; it only
// reads analyzer state, so before or after Close both work.
func (s *Session) Report(source string) *obs.RunReport {
	rep := &obs.RunReport{
		Schema: obs.ReportSchema,
		Source: source,
		Method: s.cfg.Method.String(),
		Ranks:  s.world.Size(),
	}
	for _, ws := range s.Stats() {
		rep.Events += int64(ws.Accesses)
		rep.MaxNodes += int64(ws.TotalMaxNodes)
		rep.Windows = append(rep.Windows, obs.WindowReport{
			Name:                 ws.Name,
			PerRankMaxNodes:      ws.PerRankMaxNodes,
			TotalMaxNodes:        ws.TotalMaxNodes,
			Accesses:             ws.Accesses,
			PerRankReceived:      ws.PerRankReceived,
			PerRankOverflows:     ws.PerRankOverflows,
			PerRankShardMaxNodes: ws.PerRankShardMaxNodes,
			MaxShardNodes:        ws.MaxShardNodes,
		})
	}
	// Stats iterates the window map; fix the order for stable output.
	sort.Slice(rep.Windows, func(i, j int) bool { return rep.Windows[i].Name < rep.Windows[j].Name })

	s.mu.Lock()
	for _, g := range s.wins {
		for r := 0; r < g.ranks; r++ {
			rep.Epochs += int64(g.eng.Epoch(r))
		}
	}
	s.mu.Unlock()

	if reg, ok := s.rec.(*obs.Registry); ok {
		rep.EpochLatency = obs.EpochLatencyFromRegistry(reg)
		rep.Metrics = reg.Snapshot()
	}
	if r := s.Race(); r != nil {
		rep.Races = append(rep.Races, RaceReport(r))
	}
	return rep
}

// RaceReport converts a detected race into its report form: the
// paper-exact Fig. 9 message plus the structured provenance.
func RaceReport(r *detector.Race) obs.RaceReport {
	rr := obs.RaceReport{
		Message: r.Message(),
		Shard:   -1,
		Prev:    accessReport(r.Prev),
		Cur:     accessReport(r.Cur),
	}
	if p := r.Prov; p != nil {
		rr.Window, rr.Owner, rr.Shard = p.Window, p.Owner, p.Shard
	}
	rr.Flight = FlightReport(r.FlightLog)
	return rr
}

// FlightReport converts a flight-recorder snapshot to its report form.
func FlightReport(entries []detector.FlightEntry) []obs.FlightEntryReport {
	if len(entries) == 0 {
		return nil
	}
	out := make([]obs.FlightEntryReport, len(entries))
	for i, e := range entries {
		fe := obs.FlightEntryReport{Seq: e.Seq, Kind: e.Kind.String()}
		if e.Kind == detector.FlightAccess {
			acc := accessReport(e.Acc)
			fe.Acc = &acc
		} else {
			fe.Origin = e.Origin
		}
		out[i] = fe
	}
	return out
}

func accessReport(a access.Access) obs.AccessReport {
	return obs.AccessReport{
		Rank:     a.Rank,
		Epoch:    a.Epoch,
		Type:     a.Type.String(),
		Lo:       a.Lo,
		Hi:       a.Hi,
		Location: a.Debug.String(),
		Stack:    a.FrameString(),
	}
}
