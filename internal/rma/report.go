package rma

import (
	"runtime"
	"sort"

	"rmarace/internal/access"
	"rmarace/internal/depot"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
)

// Report assembles the structured run report of the session: the
// per-window analysis footprint, the full metrics snapshot when the
// session recorded into a *obs.Registry, and every detected race with
// its provenance. source labels what produced the report ("run",
// "replay", "bench"). Call it after the world has finished; it only
// reads analyzer state, so before or after Close both work.
func (s *Session) Report(source string) *obs.RunReport {
	rep := &obs.RunReport{
		Schema: obs.ReportSchema,
		Source: source,
		Method: s.cfg.Method.String(),
		Ranks:  s.world.Size(),
	}
	for _, ws := range s.Stats() {
		rep.Events += int64(ws.Accesses)
		rep.MaxNodes += int64(ws.TotalMaxNodes)
		rep.Windows = append(rep.Windows, obs.WindowReport{
			Name:                 ws.Name,
			PerRankMaxNodes:      ws.PerRankMaxNodes,
			TotalMaxNodes:        ws.TotalMaxNodes,
			Accesses:             ws.Accesses,
			PerRankReceived:      ws.PerRankReceived,
			PerRankOverflows:     ws.PerRankOverflows,
			PerRankShardMaxNodes: ws.PerRankShardMaxNodes,
			MaxShardNodes:        ws.MaxShardNodes,
		})
	}
	// Stats iterates the window map; fix the order for stable output.
	sort.Slice(rep.Windows, func(i, j int) bool { return rep.Windows[i].Name < rep.Windows[j].Name })

	s.mu.Lock()
	for _, g := range s.wins {
		for r := 0; r < g.ranks; r++ {
			rep.Epochs += int64(g.eng.Epoch(r))
		}
	}
	s.mu.Unlock()

	if reg, ok := s.rec.(*obs.Registry); ok {
		s.recordAdaptiveStats(reg)
		rep.EpochLatency = obs.EpochLatencyFromRegistry(reg)
		rep.Metrics = reg.Snapshot()
	}
	if r := s.Race(); r != nil {
		rep.Races = append(rep.Races, RaceReport(r))
	}
	return rep
}

// ClockStats returns the MUST-RMA happens-before representation
// counters for the session (promotions, per-representation snapshot
// counts, adaptive vs always-vector clock bytes). Zero for the other
// methods, which carry no clocks.
func (s *Session) ClockStats() detector.ClockStats {
	if s.must == nil {
		return detector.ClockStats{}
	}
	return s.must.ClockStats()
}

// recordAdaptiveStats publishes the clock-representation counters and
// the process-wide stack depot occupancy as gauges, so report
// snapshots and the telemetry endpoint expose them. Gauges are set
// idempotently: calling Report twice does not double-count.
func (s *Session) recordAdaptiveStats(rec obs.Recorder) {
	if s.must != nil {
		cs := s.must.ClockStats()
		rec.Set(obs.ClockPromotions, 0, int64(cs.Promotions))
		rec.Set(obs.ClockDemotions, 0, int64(cs.Demotions))
		rec.Set(obs.ClockEpochSnapshots, 0, int64(cs.EpochSnaps))
		rec.Set(obs.ClockSharedSnapshots, 0, int64(cs.SharedSnaps))
		rec.Set(obs.ClockVectorSnapshots, 0, int64(cs.VectorSnaps))
		rec.Set(obs.ClockBytes, 0, int64(cs.BytesAdaptive))
		rec.Set(obs.ClockBytesVector, 0, int64(cs.BytesVector))
		rec.Set(obs.ClockEpochsHeld, 0, int64(cs.EpochsHeld))
		rec.Set(obs.ClockFullLive, 0, int64(cs.FullClocksLive))
	}
	if s.cfg.CaptureStacks {
		ds := depot.GlobalStats()
		rec.Set(obs.DepotEntries, 0, int64(ds.Entries))
		rec.Set(obs.DepotBytes, 0, ds.Bytes)
		rec.Set(obs.DepotHits, 0, int64(ds.Hits))
		rec.Set(obs.DepotMisses, 0, int64(ds.Misses))
	}
	// Live-heap high-water sample, the same peak_rss_bytes proxy the
	// streaming replay records; SetMax keeps repeated Report calls
	// monotone.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec.SetMax(obs.PeakRSS, 0, int64(ms.HeapAlloc))
}

// RaceReport converts a detected race into its report form: the
// paper-exact Fig. 9 message plus the structured provenance.
func RaceReport(r *detector.Race) obs.RaceReport {
	rr := obs.RaceReport{
		Message: r.Message(),
		Shard:   -1,
		Prev:    accessReport(r.Prev),
		Cur:     accessReport(r.Cur),
	}
	if p := r.Prov; p != nil {
		rr.Window, rr.Owner, rr.Shard = p.Window, p.Owner, p.Shard
	}
	rr.Flight = FlightReport(r.FlightLog)
	return rr
}

// FlightReport converts a flight-recorder snapshot to its report form.
func FlightReport(entries []detector.FlightEntry) []obs.FlightEntryReport {
	if len(entries) == 0 {
		return nil
	}
	out := make([]obs.FlightEntryReport, len(entries))
	for i, e := range entries {
		fe := obs.FlightEntryReport{Seq: e.Seq, Kind: e.Kind.String()}
		if e.Kind == detector.FlightAccess {
			acc := accessReport(e.Acc)
			fe.Acc = &acc
		} else {
			fe.Origin = e.Origin
		}
		out[i] = fe
	}
	return out
}

func accessReport(a access.Access) obs.AccessReport {
	return obs.AccessReport{
		Rank:     a.Rank,
		Epoch:    a.Epoch,
		Type:     a.Type.String(),
		Lo:       a.Lo,
		Hi:       a.Hi,
		Location: a.Debug.String(),
		Stack:    a.FrameString(),
	}
}
