package rma

import (
	"rmarace/internal/access"
	"testing"

	"rmarace/internal/detector"
)

// TestPSCWCleanExchange: a classic post/start/complete/wait halo step
// moves data and stays race-free under every method.
func TestPSCWCleanExchange(t *testing.T) {
	for _, m := range detector.Methods() {
		err, s := run(t, 3, m, Config{}, func(p *Proc) error {
			w, err := p.WinCreate("w", 64)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				// Target: expose to both origins, wait for completion.
				if err := w.Post(1, 2); err != nil {
					return err
				}
				if err := w.Wait(); err != nil {
					return err
				}
				raw := w.Buffer().Raw()
				if raw[0] != 1 || raw[8] != 2 {
					t.Errorf("window after exchange: %v", raw[:16])
				}
				return nil
			}
			// Origins: each writes its dedicated slot.
			src := p.Alloc("src", 8)
			src.Raw()[0] = byte(p.Rank())
			if err := w.Start(0); err != nil {
				return err
			}
			if err := w.Put(0, 8*(p.Rank()-1), src, 0, 8, dbg(p.Rank())); err != nil {
				return err
			}
			return w.Complete()
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if s.Race() != nil {
			t.Fatalf("%v: clean PSCW exchange raced: %v", m, s.Race())
		}
	}
}

// TestPSCWConflictDetected: two origins writing the same slot in one
// exposure race.
func TestPSCWConflictDetected(t *testing.T) {
	_, s := run(t, 3, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Post(1, 2); err != nil {
				return err
			}
			return w.Wait()
		}
		src := p.Alloc("src", 8)
		if err := w.Start(0); err != nil {
			return err
		}
		if err := w.Put(0, 0, src, 0, 8, dbg(p.Rank())); err != nil {
			return err
		}
		return w.Complete()
	})
	if s.Race() == nil {
		t.Fatal("overlapping PSCW puts missed")
	}
}

// TestPSCWEpochSeparation: consecutive exposures are separate analysis
// epochs — the same slot written in each exposure does not race.
func TestPSCWEpochSeparation(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		for round := 0; round < 3; round++ {
			if p.Rank() == 0 {
				if err := w.Post(1); err != nil {
					return err
				}
				if err := w.Wait(); err != nil {
					return err
				}
			} else {
				src := p.Alloc("src", 8)
				if err := w.Start(0); err != nil {
					return err
				}
				if err := w.Put(0, 0, src, 0, 8, dbg(40+round)); err != nil {
					return err
				}
				if err := w.Complete(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("cross-exposure accesses raced: %v", s.Race())
	}
}

// TestPSCWOrderingErrors: protocol misuse is rejected.
func TestPSCWOrderingErrors(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.Complete(); err == nil {
			t.Error("Complete without Start accepted")
		}
		if err := w.Wait(); err == nil {
			t.Error("Wait without Post accepted")
		}
		if err := w.Start(); err == nil {
			t.Error("empty Start group accepted")
		}
		if err := w.Post(); err == nil {
			t.Error("empty Post group accepted")
		}
		if err := w.Start(9); err == nil {
			t.Error("invalid Start rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPSCWAccessOutsideEpochRejected: a put to a rank not in the Start
// group (and with no other epoch) fails.
func TestPSCWAccessOutsideEpochRejected(t *testing.T) {
	err, _ := run(t, 3, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		switch p.Rank() {
		case 0:
			if err := w.Post(1); err != nil {
				return err
			}
			if err := w.Wait(); err != nil {
				return err
			}
		case 1:
			src := p.Alloc("src", 8)
			if err := w.Start(0); err != nil {
				return err
			}
			// Rank 2 is not in the access group.
			if err := w.Put(2, 0, src, 0, 8, dbg(1)); err == nil {
				t.Error("put outside the PSCW group accepted")
			}
			if err := w.Put(0, 0, src, 0, 8, dbg(2)); err != nil {
				return err
			}
			if err := w.Complete(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPSCWWithVectorAndAccumulate: the extended operations work inside
// a PSCW epoch and are drained by Wait.
func TestPSCWWithVectorAndAccumulate(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 256)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Post(1); err != nil {
				return err
			}
			if err := w.Wait(); err != nil {
				return err
			}
			if w.Buffer().Raw()[128] == 0 {
				t.Error("vector block missing")
			}
			return nil
		}
		src := p.Alloc("src", 256)
		for i := range src.Raw() {
			src.Raw()[i] = 7
		}
		if err := w.Start(0); err != nil {
			return err
		}
		if err := w.PutVector(0, 128, src, 0, Vector{BlockLen: 8, Stride: 32, Count: 2}, dbg(3)); err != nil {
			return err
		}
		if _, err := w.FetchAndOp(0, 64, 1, access.AccumSum, dbg(4)); err != nil {
			return err
		}
		return w.Complete()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
}
