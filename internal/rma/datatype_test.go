package rma

import (
	"bytes"
	"testing"

	"rmarace/internal/detector"
)

func TestPutVectorMovesBlocks(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 256)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("src", 256)
			for i := range src.Raw() {
				src.Raw()[i] = byte(i)
			}
			// 3 blocks of 8 bytes, stride 32.
			if err := w.PutVector(1, 0, src, 0, Vector{BlockLen: 8, Stride: 32, Count: 3}, dbg(1)); err != nil {
				return err
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			raw := w.Buffer().Raw()
			for k := 0; k < 3; k++ {
				want := make([]byte, 8)
				for i := range want {
					want[i] = byte(k*32 + i)
				}
				if !bytes.Equal(raw[k*32:k*32+8], want) {
					t.Errorf("block %d = %v, want %v", k, raw[k*32:k*32+8], want)
				}
				// The gaps stay zero.
				for _, b := range raw[k*32+8 : min(k*32+32, 256)] {
					if b != 0 {
						t.Errorf("gap after block %d written", k)
						break
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
}

// TestVectorGapsInvisible: a local store into a gap between two blocks
// of a remote put must NOT race — the vector's blocks are disjoint
// accesses, not one covering interval (the paper's model only covers
// consecutive accesses; this extension keeps per-block precision).
func TestVectorGapsInvisible(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 256)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("src", 256)
			if err := w.PutVector(1, 0, src, 0, Vector{BlockLen: 8, Stride: 32, Count: 3}, dbg(2)); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			// Offset 16 lies in the gap between blocks 0 and 1.
			if err := w.Buffer().Store(16, make([]byte, 8), dbg(3)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("gap store raced: %v", s.Race())
	}
}

// TestVectorBlockConflictCaught: a store overlapping any block races.
func TestVectorBlockConflictCaught(t *testing.T) {
	_, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 256)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("src", 256)
			if err := w.PutVector(1, 0, src, 0, Vector{BlockLen: 8, Stride: 32, Count: 3}, dbg(4)); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			if err := w.Buffer().Store(64, make([]byte, 4), dbg(5)); err != nil { // block 2
				return err
			}
		}
		return w.UnlockAll()
	})
	if s.Race() == nil {
		t.Fatal("block overlap missed")
	}
}

func TestGetVector(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 128)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			for i := range w.Buffer().Raw() {
				w.Buffer().Raw()[i] = byte(i)
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			dst := p.Alloc("dst", 128)
			if err := w.GetVector(dst, 0, 1, 0, Vector{BlockLen: 4, Stride: 16, Count: 2}, dbg(6)); err != nil {
				return err
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
			if dst.Raw()[0] != 0 || dst.Raw()[16] != 16 {
				t.Errorf("vector get content: %v, %v", dst.Raw()[0:4], dst.Raw()[16:20])
			}
			return nil
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
}

func TestVectorValidation(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 64)
		if p.Rank() == 0 {
			if err := w.PutVector(1, 0, src, 0, Vector{BlockLen: 0, Stride: 8, Count: 1}, dbg(7)); err == nil {
				t.Error("zero block length accepted")
			}
			if err := w.PutVector(1, 0, src, 0, Vector{BlockLen: 16, Stride: 8, Count: 2}, dbg(8)); err == nil {
				t.Error("overlapping stride accepted")
			}
			if err := w.PutVector(1, 0, src, 0, Vector{BlockLen: 8, Stride: 32, Count: 4}, dbg(9)); err == nil {
				t.Error("out-of-bounds extent accepted")
			}
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}
