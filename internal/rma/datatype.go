package rma

import (
	"fmt"

	"rmarace/internal/access"
)

// Vector describes an MPI vector datatype: Count blocks of BlockLen
// bytes separated by Stride bytes (start to start). It extends the
// paper's model, which "only consider[s] consecutive accesses": a
// one-sided operation with a vector type touches Count disjoint
// intervals, each analysed separately — the natural companion of the
// strided-merging extension, whose regular sections re-compress exactly
// these access patterns.
type Vector struct {
	BlockLen int
	Stride   int
	Count    int
}

// validate checks the type against a buffer region starting at off.
func (v Vector) validate() error {
	if v.BlockLen <= 0 || v.Count <= 0 {
		return fmt.Errorf("rma: vector datatype with block %d, count %d", v.BlockLen, v.Count)
	}
	if v.Stride < v.BlockLen {
		return fmt.Errorf("rma: vector stride %d smaller than block length %d", v.Stride, v.BlockLen)
	}
	return nil
}

// extent returns the bytes spanned from the first block's start to the
// last block's end.
func (v Vector) extent() int { return (v.Count-1)*v.Stride + v.BlockLen }

// PutVector performs an MPI_Put with a vector datatype on both sides:
// block k of src (at srcOff + k·Stride) is written to target's window
// at targetOff + k·Stride. Each block is one origin-side read and one
// target-side write access.
func (w *Win) PutVector(target, targetOff int, src *Buffer, srcOff int, v Vector, dbg access.Debug) error {
	return w.vectorOp(target, targetOff, src, srcOff, v, dbg, true)
}

// GetVector performs an MPI_Get with a vector datatype on both sides.
func (w *Win) GetVector(dst *Buffer, dstOff, target, targetOff int, v Vector, dbg access.Debug) error {
	return w.vectorOp(target, targetOff, dst, dstOff, v, dbg, false)
}

func (w *Win) vectorOp(target, targetOff int, local *Buffer, localOff int, v Vector, dbg access.Debug, isPut bool) error {
	if err := v.validate(); err != nil {
		return err
	}
	if target < 0 || target >= w.p.Size() {
		return fmt.Errorf("rma: vector operation to invalid rank %d", target)
	}
	if w.freed {
		return ErrFreed
	}
	if !w.epochOpen && !w.lockedFor(target) && !w.pscwTargets[target] {
		return ErrNoEpoch
	}
	// Bounds are checked up front so a partially-issued operation never
	// panics halfway through.
	if localOff < 0 || localOff+v.extent() > local.Size() {
		return fmt.Errorf("rma: vector [%d,%d) out of bounds of %q", localOff, localOff+v.extent(), local.Name())
	}
	tgtMem := w.g.mems[target]
	if targetOff < 0 || targetOff+v.extent() > tgtMem.Size() {
		return fmt.Errorf("rma: vector [%d,%d) out of bounds of target window", targetOff, targetOff+v.extent())
	}
	for k := 0; k < v.Count; k++ {
		if err := w.onesided(target, targetOff+k*v.Stride, local, localOff+k*v.Stride, v.BlockLen, dbg, isPut); err != nil {
			return err
		}
	}
	return nil
}
