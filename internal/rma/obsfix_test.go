package rma

// Regression tests for the synchronisation-surface fixes that shipped
// with the observability layer (Flush under per-target locks and PSCW,
// Flush target validation, Win_free epoch checks, PSCW epoch-time
// accounting) plus the observability surface itself (recorder on/off
// verdict equivalence, race provenance, stack capture, session
// reports).

import (
	"bytes"
	"strings"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
)

// racyBody is the Code 1 shape: an MPI_Put overlapping a local store
// in the same epoch on rank 0.
func racyBody(p *Proc) error {
	w, err := p.WinCreate("w", 64)
	if err != nil {
		return err
	}
	if err := w.LockAll(); err != nil {
		return err
	}
	if p.Rank() == 0 {
		buf := p.Alloc("buf", 32)
		if err := w.Put(1, 0, buf, 2, 10, dbg(5)); err != nil {
			return err
		}
		if err := buf.Store(7, []byte{0x12}, dbg(6)); err != nil {
			return err
		}
	}
	return w.UnlockAll()
}

// TestFlushUnderTargetLock: MPI_Win_flush is legal inside a per-target
// passive epoch (MPI_Win_lock), not only under lock_all. The original
// code returned ErrNoEpoch here.
func TestFlushUnderTargetLock(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Lock(LockExclusive, 1); err != nil {
				return err
			}
			src := p.Alloc("src", 8)
			if err := w.Put(1, 0, src, 0, 8, dbg(1)); err != nil {
				return err
			}
			if err := w.Flush(1); err != nil {
				t.Errorf("Flush under Lock(target): %v", err)
			}
			// FlushAll must equally see the per-target epoch.
			if err := w.FlushAll(); err != nil {
				t.Errorf("FlushAll under Lock(target): %v", err)
			}
			if err := w.Unlock(1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
}

// TestFlushDuringPSCWAccessEpoch: MPI_Win_flush towards a PSCW target
// inside start/complete is accepted, like the one-sided operations
// themselves.
func TestFlushDuringPSCWAccessEpoch(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Post(1); err != nil {
				return err
			}
			return w.Wait()
		}
		if err := w.Start(0); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := w.Put(0, 0, src, 0, 8, dbg(2)); err != nil {
			return err
		}
		if err := w.Flush(0); err != nil {
			t.Errorf("Flush during PSCW access epoch: %v", err)
		}
		return w.Complete()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
}

// TestFlushInvalidRank: a flush towards a rank outside the communicator
// must fail with a descriptive error, not an index-out-of-range panic.
func TestFlushInvalidRank(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		err = w.Flush(5)
		if err == nil {
			t.Error("Flush(5) in a 2-rank world accepted")
		} else if !strings.Contains(err.Error(), "invalid rank") {
			t.Errorf("Flush(5) error = %v, want a descriptive invalid-rank error", err)
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWinFreeWithOpenPSCWEpochRejected: Win_free must be refused while
// a PSCW access epoch (missing complete) or exposure epoch (missing
// wait) is open, matching the existing LockAll and per-target-lock
// checks.
func TestWinFreeWithOpenPSCWEpochRejected(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Post(1); err != nil {
				return err
			}
			if err := w.Free(); err == nil {
				t.Error("Free with an open PSCW exposure epoch accepted")
			}
			if err := w.Wait(); err != nil {
				return err
			}
		} else {
			if err := w.Start(0); err != nil {
				return err
			}
			if err := w.Free(); err == nil {
				t.Error("Free with an open PSCW access epoch accepted")
			}
			if err := w.Complete(); err != nil {
				return err
			}
		}
		return w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPSCWEpochTimeAccumulates: the Fig. 10 epoch-time metric must
// include PSCW epochs — Complete on the access side and Wait on the
// exposure side — not only LockAll/UnlockAll.
func TestPSCWEpochTimeAccumulates(t *testing.T) {
	err, s := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Post(1); err != nil {
				return err
			}
			return w.Wait()
		}
		if err := w.Start(0); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := w.Put(0, 0, src, 0, 8, dbg(3)); err != nil {
			return err
		}
		return w.Complete()
	})
	if err != nil {
		t.Fatal(err)
	}
	total, perRank := s.EpochTime()
	if total <= 0 {
		t.Fatalf("EpochTime total = %v after a PSCW exchange", total)
	}
	for r, d := range perRank {
		if d <= 0 {
			t.Errorf("rank %d epoch time = %v, want > 0 (PSCW epoch not accounted)", r, d)
		}
	}
}

// TestRecorderVerdictEquivalence: attaching a metrics registry must
// not change any analysis verdict — same race (same Fig. 9 message) on
// the racy program, still silent on the clean one.
func TestRecorderVerdictEquivalence(t *testing.T) {
	for _, m := range []detector.Method{detector.RMAAnalyzer, detector.OurContribution} {
		_, plain := run(t, 2, m, Config{}, racyBody)
		_, recorded := run(t, 2, m, Config{Recorder: obs.NewRegistry()}, racyBody)
		pr, rr := plain.Race(), recorded.Race()
		if pr == nil || rr == nil {
			t.Fatalf("%v: race lost (plain=%v recorded=%v)", m, pr, rr)
		}
		if pr.Message() != rr.Message() {
			t.Errorf("%v: verdict diverged with recorder:\n plain:    %s\n recorded: %s", m, pr.Message(), rr.Message())
		}

		clean := func(p *Proc) error {
			w, err := p.WinCreate("w", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			src := p.Alloc("src", 8)
			if err := w.Put(1-p.Rank(), 16*p.Rank(), src, 0, 8, dbg(9)); err != nil {
				return err
			}
			return w.UnlockAll()
		}
		if err, s := run(t, 2, m, Config{Recorder: obs.NewRegistry()}, clean); err != nil || s.Race() != nil {
			t.Errorf("%v: clean run with recorder: err=%v race=%v", m, err, s.Race())
		}
	}
}

// TestRaceProvenance: a detected race carries the window name, the
// owning rank and (for unsharded analyzers) shard -1, and the Fig. 9
// message is unchanged by the provenance extension.
func TestRaceProvenance(t *testing.T) {
	_, s := run(t, 2, detector.OurContribution, Config{}, racyBody)
	race := s.Race()
	if race == nil {
		t.Fatal("no race detected")
	}
	if race.Prov == nil {
		t.Fatal("race without provenance")
	}
	if race.Prov.Window != "w" {
		t.Errorf("provenance window = %q, want \"w\"", race.Prov.Window)
	}
	if race.Prov.Owner != 0 {
		t.Errorf("provenance owner = %d, want 0 (origin-buffer conflict)", race.Prov.Owner)
	}
	if race.Prov.Shard != -1 {
		t.Errorf("provenance shard = %d, want -1 (serial analyzer)", race.Prov.Shard)
	}
	if !strings.Contains(race.Message(), "Error when inserting memory access") {
		t.Errorf("Fig. 9 message changed: %q", race.Message())
	}
	if !strings.Contains(race.Detail(), "window=w") {
		t.Errorf("Detail() missing provenance: %q", race.Detail())
	}
}

// TestCaptureStacks: with Config.CaptureStacks the racing accesses
// carry call stacks, surfaced through the race report.
func TestCaptureStacks(t *testing.T) {
	_, s := run(t, 2, detector.OurContribution, Config{CaptureStacks: true}, racyBody)
	race := s.Race()
	if race == nil {
		t.Fatal("no race detected")
	}
	if race.Prev.FrameString() == "" && race.Cur.FrameString() == "" {
		t.Fatal("CaptureStacks set but neither access carries frames")
	}
	rr := RaceReport(race)
	if rr.Prev.Stack == "" && rr.Cur.Stack == "" {
		t.Error("race report dropped the captured stacks")
	}
	for _, stack := range []string{race.Prev.FrameString(), race.Cur.FrameString()} {
		if stack != "" && !strings.Contains(stack, ".go:") {
			t.Errorf("frames without file:line: %q", stack)
		}
	}

	// Stacks are off by default: the hot path must not pay for them.
	_, s = run(t, 2, detector.OurContribution, Config{}, racyBody)
	if race := s.Race(); race == nil || race.Prev.StackID != 0 || race.Cur.StackID != 0 {
		t.Errorf("frames captured without CaptureStacks: %+v", race)
	}
}

// TestSessionReport: an instrumented session produces a valid
// run report that round-trips through the JSON schema and carries the
// per-rank pipeline counters.
func TestSessionReport(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{Recorder: obs.NewRegistry()}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := w.Put(1-p.Rank(), 16*p.Rank(), src, 0, 8, dbg(4)); err != nil {
			return err
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Report("run")
	if err := rep.Validate(); err != nil {
		t.Fatalf("session report invalid: %v", err)
	}
	if rep.Ranks != 2 || rep.Events == 0 || rep.Epochs == 0 || rep.MaxNodes == 0 {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Windows) != 1 || rep.Windows[0].Name != "w" {
		t.Fatalf("windows = %+v", rep.Windows)
	}
	var received int64
	for _, n := range rep.Windows[0].PerRankReceived {
		received += n
	}
	if received == 0 {
		t.Error("no per-rank received counts in report")
	}
	wantMetrics := map[string]bool{"engine_received": false, "store_nodes": false, "store_inserts": false, "epoch_nanos": false}
	for _, m := range rep.Metrics {
		if _, ok := wantMetrics[m.Name]; ok {
			wantMetrics[m.Name] = true
		}
	}
	for name, seen := range wantMetrics {
		if !seen {
			t.Errorf("metric %s missing from report", name)
		}
	}
	if len(rep.EpochLatency) == 0 {
		t.Error("no epoch-latency summary in report")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadReport(&buf)
	if err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Events != rep.Events || back.MaxNodes != rep.MaxNodes || len(back.Metrics) != len(rep.Metrics) {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestSessionReportCarriesRace: a racy instrumented run embeds the
// race with full provenance in the report.
func TestSessionReportCarriesRace(t *testing.T) {
	_, s := run(t, 2, detector.OurContribution, Config{Recorder: obs.NewRegistry(), CaptureStacks: true}, racyBody)
	if s.Race() == nil {
		t.Fatal("no race detected")
	}
	rep := s.Report("run")
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if len(rep.Races) != 1 {
		t.Fatalf("races in report = %d, want 1", len(rep.Races))
	}
	rr := rep.Races[0]
	if rr.Window != "w" || rr.Owner != 0 {
		t.Errorf("race provenance = window %q owner %d, want w/0", rr.Window, rr.Owner)
	}
	if !strings.Contains(rr.Message, "Error when inserting memory access") {
		t.Errorf("race message = %q", rr.Message)
	}
	if rr.Prev.Stack == "" && rr.Cur.Stack == "" {
		t.Error("report race without stacks despite CaptureStacks")
	}
	if rr.Prev.Rank != 0 || rr.Cur.Rank != 0 {
		t.Errorf("racing ranks = %d/%d, want 0/0 (both accesses from rank 0)", rr.Prev.Rank, rr.Cur.Rank)
	}
}

// TestCaptureStacksSharded: stack capture must survive the sharded
// analysis path — races surfacing from different address-space shards
// all carry depot-resolved frames, in the verdict and in the flight
// log. Each iteration races two Puts one shard granule (4 KiB) apart,
// so the conflicts land in different shards across iterations.
func TestCaptureStacksSharded(t *testing.T) {
	const granule = 4096
	shardsSeen := make(map[int]bool)
	for q := 0; q < 4; q++ {
		off := q * granule
		_, s := run(t, 3, detector.OurContribution,
			Config{Shards: 4, CaptureStacks: true, FlightLog: 32},
			func(p *Proc) error {
				w, err := p.WinCreate("w", 4*granule)
				if err != nil {
					return err
				}
				if err := w.LockAll(); err != nil {
					return err
				}
				if p.Rank() < 2 {
					src := p.Alloc("src", 8)
					if err := w.Put(2, off, src, 0, 8, dbg(10+p.Rank())); err != nil {
						return err
					}
				}
				return w.UnlockAll()
			})
		race := s.Race()
		if race == nil {
			t.Fatalf("offset %d: overlapping Puts produced no race", off)
		}
		if race.Prov == nil || race.Prov.Shard < 0 {
			t.Fatalf("offset %d: race carries no shard provenance: %+v", off, race.Prov)
		}
		shardsSeen[race.Prov.Shard] = true
		for side, a := range map[string]access.Access{"stored": race.Prev, "inserted": race.Cur} {
			if a.StackID == 0 {
				t.Errorf("offset %d: %s access has no stack id", off, side)
			} else if st := a.FrameString(); !strings.Contains(st, ".go:") {
				t.Errorf("offset %d: %s stack %q does not resolve to frames", off, side, st)
			}
		}
		var logged int
		for _, e := range race.FlightLog {
			if e.Kind == detector.FlightAccess {
				if e.Acc.StackID == 0 || e.Acc.FrameString() == "" {
					t.Errorf("offset %d: flight access without resolvable stack: %+v", off, e.Acc)
				}
				logged++
			}
		}
		if logged == 0 {
			t.Errorf("offset %d: flight log recorded no accesses", off)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("races all surfaced from the same shard %v; sharded stack capture not exercised", shardsSeen)
	}
}
