package rma

import (
	"bytes"
	"sync/atomic"
	"testing"

	"rmarace/internal/detector"
)

// TestExclusiveLockSerialisesWriters: two origins put to the same
// target location, each under an exclusive lock. The unlock orders the
// sessions, so no race is reported and the final window content is one
// of the two values.
func TestExclusiveLockSerialisesWriters(t *testing.T) {
	for _, m := range []detector.Method{detector.OurContribution, detector.MustRMAMethod} {
		err, s := run(t, 3, m, Config{}, func(p *Proc) error {
			w, err := p.WinCreate("w", 64)
			if err != nil {
				return err
			}
			if p.Rank() != 0 {
				src := p.Alloc("src", 8)
				src.Raw()[0] = byte(p.Rank())
				if err := w.Lock(LockExclusive, 0); err != nil {
					return err
				}
				if err := w.Put(0, 0, src, 0, 8, dbg(p.Rank())); err != nil {
					return err
				}
				if err := w.Unlock(0); err != nil {
					return err
				}
			}
			return p.Barrier()
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if s.Race() != nil {
			t.Fatalf("%v flagged lock-serialised puts: %v", m, s.Race())
		}
	}
}

// TestLegacyFlagsLockSerialisedWriters: the original RMA-Analyzer does
// not instrument per-target unlocks, so the same program is one of its
// false positives.
func TestLegacyFlagsLockSerialisedWriters(t *testing.T) {
	_, s := run(t, 3, detector.RMAAnalyzer, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() != 0 {
			src := p.Alloc("src", 8)
			if err := w.Lock(LockExclusive, 0); err != nil {
				return err
			}
			if err := w.Put(0, 0, src, 0, 8, dbg(p.Rank())); err != nil {
				return err
			}
			if err := w.Unlock(0); err != nil {
				return err
			}
		}
		return p.Barrier()
	})
	if s.Race() == nil {
		t.Fatal("legacy unexpectedly understood per-target unlocks")
	}
}

// TestSharedLockConcurrentWritersRace: shared locks allow concurrency,
// so conflicting puts remain races.
func TestSharedLockConcurrentWritersRace(t *testing.T) {
	_, s := run(t, 3, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		// Both origins hold shared locks before either puts, so the
		// sessions demonstrably overlap.
		if p.Rank() != 0 {
			if err := w.Lock(LockShared, 0); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() != 0 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(p.Rank())); err != nil {
				return err
			}
			if err := w.Unlock(0); err != nil {
				return err
			}
		}
		return nil
	})
	if s.Race() == nil {
		t.Fatal("conflicting shared-lock puts must race")
	}
}

// TestExclusiveLockMutualExclusion: the lock really excludes — a
// critical counter incremented under the lock never shows interleaving.
func TestExclusiveLockMutualExclusion(t *testing.T) {
	var inside, collisions int64
	err, _ := run(t, 6, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			if err := w.Lock(LockExclusive, 0); err != nil {
				return err
			}
			if atomic.AddInt64(&inside, 1) != 1 {
				atomic.AddInt64(&collisions, 1)
			}
			atomic.AddInt64(&inside, -1)
			if err := w.Unlock(0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if collisions != 0 {
		t.Fatalf("%d critical-section collisions under exclusive lock", collisions)
	}
}

// TestSharedLocksCoexist: multiple shared holders enter together.
func TestSharedLocksCoexist(t *testing.T) {
	err, _ := run(t, 4, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.Lock(LockShared, 0); err != nil {
			return err
		}
		// All four ranks hold the shared lock across this barrier; an
		// exclusive grant to anyone would deadlock here.
		if err := p.Barrier(); err != nil {
			return err
		}
		return w.Unlock(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockValidation(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.Lock(99, 1); err == nil {
			t.Error("invalid mode accepted")
		}
		if err := w.Lock(LockExclusive, 7); err == nil {
			t.Error("invalid rank accepted")
		}
		if err := w.Unlock(1); err == nil {
			t.Error("unlock without lock accepted")
		}
		if p.Rank() == 0 {
			if err := w.Lock(LockExclusive, 1); err != nil {
				return err
			}
			if err := w.Lock(LockShared, 1); err == nil {
				t.Error("double lock of one target accepted")
			}
			if err := w.Unlock(1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLockSessionAllowsRMAWithoutEpoch: operations under a per-target
// lock do not require a LockAll epoch.
func TestLockSessionAllowsRMAWithoutEpoch(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("src", 8)
			copy(src.Raw(), "payload!")
			if err := w.Lock(LockExclusive, 1); err != nil {
				return err
			}
			if err := w.Put(1, 8, src, 0, 8, dbg(1)); err != nil {
				return err
			}
			if err := w.Unlock(1); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 1 && !bytes.Equal(w.Buffer().Raw()[8:16], []byte("payload!")) {
			t.Error("put under lock did not move data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
}

// TestRaceAcrossLockAndLocalAccess: the target's own local store still
// races with a locked origin's put when they are not ordered — the
// release only orders lock holders.
func TestRaceAcrossLockAndLocalAccess(t *testing.T) {
	_, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			src := p.Alloc("src", 8)
			if err := w.Lock(LockExclusive, 0); err != nil {
				return err
			}
			if err := w.Put(0, 0, src, 0, 8, dbg(5)); err != nil {
				return err
			}
			// Hold the lock while the target stores: the put's
			// notification precedes the release in channel order, so
			// the conflict is observed deterministically.
			if err := p.Barrier(); err != nil { // A: put issued
				return err
			}
			if err := p.Barrier(); err != nil { // B: store done
				return err
			}
			if err := w.Unlock(0); err != nil {
				return err
			}
		} else {
			if err := p.Barrier(); err != nil { // A
				return err
			}
			if err := w.Buffer().Store(0, make([]byte, 8), dbg(6)); err != nil {
				return err
			}
			if err := p.Barrier(); err != nil { // B
				return err
			}
		}
		return w.UnlockAll()
	})
	if s.Race() == nil {
		t.Fatal("store racing with an in-flight locked put missed")
	}
}
