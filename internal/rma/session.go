// Package rma is the instrumentation layer of the reproduction: the
// analogue of RMA-Analyzer's PMPI interposition plus LLVM pass (§5.1).
// It wraps the simulated MPI runtime with instrumented windows, buffers
// and one-sided operations, and feeds every observed memory access to
// the analyzer selected for the run:
//
//   - every Put/Get produces an origin-side access analysed locally and
//     a target-side access sent to the target as a notification message,
//     processed by a per-window receiver goroutine (the paper's "for
//     each window, a thread is created to receive all the MPI_Send");
//   - local loads and stores on instrumented buffers are analysed
//     against every window with an open epoch on the issuing rank;
//   - at MPI_Win_unlock_all all ranks reduce their per-target remote
//     access counts, wait for the pending notifications, and complete
//     the epoch.
//
// A static alias filter models the LLVM alias analysis: buffers
// allocated Untracked produce Filtered events that the tree-based
// analyzers skip and the MUST-RMA simulator (ThreadSanitizer) still
// pays for.
//
// Beyond the paper's passive-target lock_all/unlock_all epochs, the
// layer implements the full MPI-RMA synchronisation surface: fence
// phases, per-target exclusive/shared locks with unlock-release
// ordering, general active target synchronisation (PSCW), accumulate
// operations with datatype-level atomicity, vector datatypes and
// window destruction. Each is documented at its definition and marked
// as an extension.
package rma

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"io"

	"rmarace/internal/core"
	"rmarace/internal/depot"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/obs"
	"rmarace/internal/obs/span"
	"rmarace/internal/obs/telemetry"
	"rmarace/internal/store"
)

// Config selects the analysis method and its variations for a session.
type Config struct {
	Method detector.Method
	// UnsafeFlushClear turns MPI_Win_flush into a BST clear for the
	// calling rank (the §6(2) ablation). Only meaningful for
	// OurContribution.
	UnsafeFlushClear bool
	// DisableAliasFilter feeds Filtered accesses to the tree-based
	// analyzers too, modelling a build without the LLVM alias analysis.
	DisableAliasFilter bool
	// StridedMerging enables the §6(3) regular-section extension of the
	// contribution analyzer (compressing constant-stride accesses that
	// plain merging cannot coalesce). Only meaningful for
	// OurContribution.
	StridedMerging bool
	// Store selects the storage backend the contribution analyzer runs
	// Algorithm 1 over ("avl", "legacy", "shadow", "strided"; package
	// internal/store). Empty means the default AVL interval tree. Only
	// meaningful for OurContribution.
	Store string
	// Shards splits each (rank, window) analyzer into this many
	// granule-striped shards (power of two), each driven by its own
	// engine worker goroutine; see internal/shard. Zero or one keeps the
	// serial analyzer. Verdicts are shard-count-independent (the
	// internal/core equivalence tests). Only meaningful for
	// OurContribution.
	Shards int
	// NotifBatch bounds how many consecutive target-side notifications
	// to the same target coalesce into one channel message
	// (DefaultNotifBatch when zero; 1 disables batching). Batches are
	// always flushed before any synchronisation that publishes or
	// drains the access counts, so detection semantics do not depend on
	// the setting.
	NotifBatch int
	// Recorder receives the session's metrics (package internal/obs):
	// per-rank received/overflow counts, queue depths, epoch and lock
	// latencies, store traffic. Nil disables recording; every
	// instrumented hot path then costs one cached-bool branch and zero
	// allocations, so verdicts and performance match an un-instrumented
	// run.
	Recorder obs.Recorder
	// CaptureStacks makes every instrumented access carry its call
	// stack into race reports (Access.StackID, resolved against the
	// process-wide stack depot — each unique call site is rendered and
	// stored once). Off by default: the capture still walks the stack
	// per access, so it is reserved for diagnosis runs.
	CaptureStacks bool
	// TelemetryAddr, when non-empty, starts an HTTP telemetry server on
	// the address (package internal/obs/telemetry): Prometheus /metrics
	// from the session's registry, a live /report snapshot, /healthz
	// and pprof. A Registry is attached automatically when Recorder is
	// unset. Use ":0" to let the OS pick a port (Session.Telemetry).
	TelemetryAddr string
	// Spans enables causal span tracing (package internal/obs/span):
	// epochs, one-sided operations, flushes, notification batches and
	// shard drains are recorded into per-rank ring buffers and exported
	// as Chrome trace-event JSON by Session.WriteSpans. Off by default;
	// the disabled path costs one cached-bool branch per site.
	Spans bool
	// SpanDepth overrides the per-rank span ring depth
	// (span.DefaultDepth when zero). Only meaningful with Spans.
	SpanDepth int
	// FlightLog, when positive, keeps a flight recorder of the last
	// FlightLog accesses and synchronisations per (rank, window); a
	// detected race then carries the owner's snapshot
	// (detector.Race.FlightLog, rendered by `rmarace postmortem`).
	FlightLog int
}

// Session owns the analysis state of one simulated job: one analyzer
// per (rank, window), the notification plumbing, timing and statistics.
type Session struct {
	cfg   Config
	world *mpi.World
	must  *detector.MustShared

	mu     sync.Mutex
	wins   map[string]*winGlobal
	closed chan struct{}

	epochNanos []int64 // per-rank cumulative time inside epochs (atomic)

	// rec is the metrics sink (never nil: obs.Disabled when the config
	// leaves it unset); recOn caches rec.Enabled().
	rec   obs.Recorder
	recOn bool
	// spans is the causal span tracer (nil when Config.Spans is off;
	// the nil tracer is inert).
	spans *span.Tracer
	// tel is the telemetry server when Config.TelemetryAddr is set;
	// telErr holds the listen error when starting it failed.
	tel    *telemetry.Server
	telErr error

	race atomic.Pointer[detector.Race]
}

// NewSession creates the analysis session for world under cfg.
func NewSession(world *mpi.World, cfg Config) *Session {
	s := &Session{
		cfg:        cfg,
		world:      world,
		wins:       make(map[string]*winGlobal),
		closed:     make(chan struct{}),
		epochNanos: make([]int64, world.Size()),
		rec:        obs.OrDisabled(cfg.Recorder),
	}
	s.recOn = s.rec.Enabled()
	if cfg.Method == detector.MustRMAMethod {
		s.must = detector.NewMustShared(world.Size())
	}
	if cfg.Spans {
		s.spans = span.NewTracer(world.Size(), cfg.SpanDepth)
	}
	if cfg.TelemetryAddr != "" {
		// A telemetry server without a registry would scrape empty, so
		// attach one when the config left the recorder unset.
		reg, ok := s.rec.(*obs.Registry)
		if !ok {
			reg = obs.NewRegistry()
			s.rec = reg
			s.recOn = true
		}
		s.tel, s.telErr = telemetry.Serve(cfg.TelemetryAddr, telemetry.Sources{
			Registry: reg,
			Report:   func() *obs.RunReport { return s.Report("run") },
		})
	}
	return s
}

// Telemetry returns the session's running telemetry server (nil when
// Config.TelemetryAddr was empty) and the error starting it, if any.
func (s *Session) Telemetry() (*telemetry.Server, error) { return s.tel, s.telErr }

// Spans returns the session's causal span tracer; nil (the inert
// tracer) unless Config.Spans enabled tracing.
func (s *Session) Spans() *span.Tracer { return s.spans }

// WriteSpans exports the session's recorded spans as Chrome
// trace-event JSON, loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing. It errors when the session ran without Spans.
func (s *Session) WriteSpans(w io.Writer) error {
	if s.spans == nil {
		return fmt.Errorf("rma: session ran without span tracing (Config.Spans)")
	}
	return s.spans.WriteChromeTrace(w)
}

// Recorder returns the session's metrics sink (obs.Disabled when the
// config left it unset).
func (s *Session) Recorder() obs.Recorder { return s.rec }

// Method returns the session's analysis method.
func (s *Session) Method() detector.Method { return s.cfg.Method }

// newAnalyzer builds the per-(rank, window) analyzer for the configured
// method.
func (s *Session) newAnalyzer(rank int) detector.Analyzer {
	switch s.cfg.Method {
	case detector.Baseline:
		return detector.NewBaseline()
	case detector.RMAAnalyzer:
		return detector.NewLegacy()
	case detector.MustRMAMethod:
		return detector.NewMustRMA(s.must, rank)
	case detector.OurContribution:
		opts := []core.Option{core.WithOwner(rank)}
		if s.cfg.UnsafeFlushClear {
			opts = append(opts, core.WithUnsafeFlushClear())
		}
		if s.cfg.StridedMerging {
			opts = append(opts, core.WithStridedMerging())
		}
		if s.cfg.Store != "" {
			// Validate the name once, then install a factory: with
			// sharding every shard must own an independent store instance.
			name := s.cfg.Store
			if _, err := store.New(name); err != nil {
				panic(fmt.Sprintf("rma: %v", err))
			}
			opts = append(opts, core.WithStoreFactory(func() store.AccessStore {
				st, err := store.New(name)
				if err != nil {
					panic(fmt.Sprintf("rma: %v", err))
				}
				return st
			}))
		}
		if s.cfg.Shards > 1 {
			opts = append(opts, core.WithShards(s.cfg.Shards))
		}
		if s.recOn {
			opts = append(opts, core.WithRecorder(s.rec, rank))
		}
		return core.Build(opts...)
	}
	panic(fmt.Sprintf("rma: unknown method %v", s.cfg.Method))
}

// abort records the first race and aborts the world, like the
// MPI_Abort call in the paper's error path.
func (s *Session) abort(r *detector.Race) {
	if s.race.CompareAndSwap(nil, r) {
		s.world.Abort(r)
	}
}

// Race returns the first detected race, or nil.
func (s *Session) Race() *detector.Race { return s.race.Load() }

// recordEpoch credits one completed epoch's duration to rank: the
// cumulative Fig. 10 counter always, the EpochNanos latency histogram
// when recording. Every epoch-closing synchronisation goes through it —
// UnlockAll, PSCW Complete (access side) and Wait (exposure side) — so
// the accounting no longer undercounts active-target epochs.
func (s *Session) recordEpoch(rank int, d time.Duration) {
	atomic.AddInt64(&s.epochNanos[rank], int64(d))
	if s.recOn {
		s.rec.Observe(obs.EpochNanos, rank, int64(d))
	}
}

// stackID captures the call stack of an instrumented access when the
// session captures stacks (Config.CaptureStacks), zero otherwise. The
// pcs are interned in the process-wide stack depot, so each unique call
// site is rendered exactly once and the access carries a 4-byte id.
// The skip count drops runtime.Callers and stackID itself; the
// instrumentation wrappers above remain visible, which is what a
// PMPI-based tool's backtraces look like too.
func (s *Session) stackID() depot.ID {
	if !s.cfg.CaptureStacks {
		return 0
	}
	var pcs [depot.MaxDepth]uintptr
	n := runtime.Callers(2, pcs[:])
	return depot.Capture(pcs[:n])
}

// EpochTime returns the cumulative wall-clock time all ranks spent
// inside epochs (the metric of Fig. 10) and the per-rank breakdown.
func (s *Session) EpochTime() (total time.Duration, perRank []time.Duration) {
	perRank = make([]time.Duration, len(s.epochNanos))
	for i := range s.epochNanos {
		d := time.Duration(atomic.LoadInt64(&s.epochNanos[i]))
		perRank[i] = d
		total += d
	}
	return total, perRank
}

// WindowStats describes one window's analysis footprint.
type WindowStats struct {
	Name string
	// PerRankMaxNodes is each rank's high-water BST node count (shadow
	// cells for MUST-RMA).
	PerRankMaxNodes []int
	// TotalMaxNodes sums PerRankMaxNodes — the "number of nodes in the
	// BST" aggregate of §5.3 and Table 4.
	TotalMaxNodes int
	// Accesses sums processed accesses over ranks.
	Accesses uint64
	// PerRankShardMaxNodes is, for sharded runs, each rank's per-shard
	// node high-water marks (nil when the analyzer is unsharded).
	// TotalMaxNodes stays the sum over ranks of the per-rank aggregates,
	// keeping the Table 4 number comparable at any shard count.
	PerRankShardMaxNodes [][]int
	// MaxShardNodes is the largest single-shard high-water mark across
	// the window — the hottest shard's footprint.
	MaxShardNodes int
	// Overflows counts notification sends that found a rank's channel
	// full and had to block (engine backpressure; nothing is dropped).
	Overflows int64
	// PerRankReceived is each rank's processed-notification count (the
	// engine's quiescence counter, cumulative over the window's life).
	PerRankReceived []int64
	// PerRankOverflows is the per-rank breakdown of Overflows.
	PerRankOverflows []int64
}

// Stats snapshots all windows' analysis statistics.
func (s *Session) Stats() []WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WindowStats, 0, len(s.wins))
	for _, g := range s.wins {
		ws := WindowStats{
			Name:             g.name,
			PerRankMaxNodes:  make([]int, g.ranks),
			PerRankReceived:  make([]int64, g.ranks),
			PerRankOverflows: make([]int64, g.ranks),
		}
		for r := 0; r < g.ranks; r++ {
			ws.PerRankReceived[r] = g.eng.Received(r)
			ws.PerRankOverflows[r] = g.eng.Overflows(r)
			g.eng.WithAnalyzer(r, func(a detector.Analyzer) {
				ws.PerRankMaxNodes[r] = a.MaxNodes()
				ws.Accesses += a.Accesses()
				if sm, ok := a.(interface{ ShardMaxNodes() []int }); ok {
					if ws.PerRankShardMaxNodes == nil {
						ws.PerRankShardMaxNodes = make([][]int, g.ranks)
					}
					ws.PerRankShardMaxNodes[r] = sm.ShardMaxNodes()
					for _, n := range ws.PerRankShardMaxNodes[r] {
						if n > ws.MaxShardNodes {
							ws.MaxShardNodes = n
						}
					}
				}
			})
			ws.TotalMaxNodes += ws.PerRankMaxNodes[r]
		}
		ws.Overflows = g.eng.TotalOverflows()
		out = append(out, ws)
	}
	return out
}

// TotalMaxNodes sums the node high-water marks over every window and
// rank of the session.
func (s *Session) TotalMaxNodes() int {
	total := 0
	for _, ws := range s.Stats() {
		total += ws.TotalMaxNodes
	}
	return total
}
