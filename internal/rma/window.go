package rma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
)

// ErrNoEpoch is returned when a one-sided operation is issued outside a
// passive-target epoch.
var ErrNoEpoch = errors.New("rma: one-sided operation outside an epoch (missing MPI_Win_lock_all)")

// ErrEpochOpen is returned when LockAll is called twice without an
// intervening UnlockAll.
var ErrEpochOpen = errors.New("rma: epoch already open")

// ErrFreed is returned by operations on a window after MPI_Win_free.
var ErrFreed = errors.New("rma: window has been freed (MPI_Win_free)")

// notifMsg travels on a window's per-rank notification channel: a
// remote access to analyse, or an unlock synchronisation marker (with
// release set for exclusive unlocks, which additionally retire the
// origin's session).
type notifMsg struct {
	ev      detector.Event
	sync    bool
	release bool
	origin  int
	ack     chan struct{}
}

// winGlobal is the collective state of one window across all ranks.
type winGlobal struct {
	name string
	size int
	id   int // window index within the session, scoping PSCW tags
	s    *Session

	analyzers []detector.Analyzer
	anMu      []sync.Mutex

	mems []*Buffer
	// copyMu serialises every byte of data movement touching this
	// window's memory — remote copies and the owner's instrumented
	// local accesses. The simulator really performs the programs'
	// (possibly racing) accesses; without this serialisation Go's own
	// race detector would flag the deliberately racy example programs.
	// The detectors' analysis is unaffected: they see the access
	// events, not the bytes.
	copyMu sync.Mutex

	lockCh  chan lockReq
	notifCh []chan notifMsg
	// received counts processed notifications per rank, guarded by
	// recvMu; recvCond broadcasts on every update and on abort.
	recvMu   []sync.Mutex
	received []int64
	recvCond []*sync.Cond

	// epochs counts each rank's *completed* analysis epochs for this
	// window (atomic). Every access — local, origin-side or notified —
	// is stamped with the owner's count, so all accesses analysed
	// between two EpochEnd calls share an epoch number even when they
	// arrive before the owner's own (non-collective) LockAll.
	epochs []uint64

	watcherOnce sync.Once
}

// Win is one rank's handle on a window: the analogue of an MPI_Win.
type Win struct {
	p   *Proc
	g   *winGlobal
	buf *Buffer

	epoch      uint64
	epochOpen  bool
	epochStart time.Time
	sent       []int64
	expected   int64
	freed      bool
	// lockMode tracks this process's per-target MPI_Win_lock state.
	lockMode []int
	// PSCW state: open access-epoch targets and per-target access
	// counts (origin side), and the posted origin group (target side).
	pscwTargets map[int]bool
	pscwSent    map[int]int64
	pscwPosted  []int
}

// WinCreate collectively creates (or joins) the window named name with
// size bytes of exposed memory per rank, starts the per-rank receiver
// goroutine, and synchronises all ranks before returning. Buffer
// options apply to the exposed memory: pass OnStack to model an
// MPI_Win_create over a stack array (as the paper's microbenchmark
// suite does), or none for MPI_Win_allocate-style heap memory.
func (p *Proc) WinCreate(name string, size int, opts ...BufOpt) (*Win, error) {
	s := p.s
	n := p.Size()

	s.mu.Lock()
	g, ok := s.wins[name]
	if !ok {
		g = &winGlobal{
			name:      name,
			size:      size,
			id:        len(s.wins),
			s:         s,
			analyzers: make([]detector.Analyzer, n),
			anMu:      make([]sync.Mutex, n),
			mems:      make([]*Buffer, n),
			lockCh:    make(chan lockReq, n),
			notifCh:   make([]chan notifMsg, n),
			recvMu:    make([]sync.Mutex, n),
			received:  make([]int64, n),
			recvCond:  make([]*sync.Cond, n),
			epochs:    make([]uint64, n),
		}
		for r := 0; r < n; r++ {
			g.analyzers[r] = s.newAnalyzer(r)
			g.notifCh[r] = make(chan notifMsg, 1024)
			g.recvCond[r] = sync.NewCond(&g.recvMu[r])
		}
		s.wins[name] = g
	} else if g.size != size {
		s.mu.Unlock()
		return nil, fmt.Errorf("rma: window %q recreated with size %d != %d", name, size, g.size)
	}
	s.mu.Unlock()

	g.watcherOnce.Do(func() {
		// Wake every count-waiter when the world aborts; exit when the
		// session closes so finished runs can be collected.
		go func() {
			select {
			case <-p.World().Aborted():
			case <-s.closed:
				return
			}
			for r := range g.recvCond {
				g.recvMu[r].Lock()
				g.recvCond[r].Broadcast()
				g.recvMu[r].Unlock()
			}
		}()
		// Serve MPI_Win_lock/MPI_Win_unlock requests.
		go g.lockServer(p.World())
	})

	rank := p.Rank()
	buf := p.Alloc(name+".win", size, opts...)
	buf.winG = g
	g.mems[rank] = buf
	go g.receiver(rank, p.World())

	if err := p.Barrier(); err != nil {
		return nil, err
	}
	return &Win{p: p, g: g, buf: buf, sent: make([]int64, n), lockMode: make([]int, n)}, nil
}

// receiver is the paper's per-window analysis thread: it drains the
// rank's notification channel, feeding each remote access to the
// rank's analyzer and retiring sessions on exclusive-unlock releases.
func (g *winGlobal) receiver(rank int, world *mpi.World) {
	for {
		select {
		case m, ok := <-g.notifCh[rank]:
			if !ok {
				return
			}
			if m.sync {
				if m.release {
					g.anMu[rank].Lock()
					g.analyzers[rank].Release(m.origin)
					g.anMu[rank].Unlock()
				}
				if m.ack != nil {
					close(m.ack)
				}
			} else {
				m.ev.Acc.Epoch = atomic.LoadUint64(&g.epochs[rank])
				g.analyse(rank, m.ev)
			}
			g.recvMu[rank].Lock()
			g.received[rank]++
			g.recvCond[rank].Broadcast()
			g.recvMu[rank].Unlock()
		case <-world.Aborted():
			return
		}
	}
}

// analyse runs one event through rank's analyzer, aborting the world on
// a detected race. It returns the race as an error, or nil.
func (g *winGlobal) analyse(rank int, ev detector.Event) error {
	g.anMu[rank].Lock()
	race := g.analyzers[rank].Access(ev)
	g.anMu[rank].Unlock()
	if race != nil {
		g.s.abort(race)
		return race
	}
	return nil
}

// Buffer returns the rank's exposed window memory; local accesses on it
// are "in window" accesses.
func (w *Win) Buffer() *Buffer { return w.buf }

// Name returns the window name.
func (w *Win) Name() string { return w.g.name }

// analyse routes a local access of this window's owner.
func (w *Win) analyse(rank int, ev detector.Event) error {
	return w.g.analyse(rank, ev)
}

// Free destroys this process's handle on the window (MPI_Win_free). It
// is collective; every epoch must be closed and every per-target lock
// released first. Further operations on the handle fail with ErrFreed.
func (w *Win) Free() error {
	if w.freed {
		return ErrFreed
	}
	if w.epochOpen {
		return errors.New("rma: MPI_Win_free with an open access epoch")
	}
	for target, mode := range w.lockMode {
		if mode != lockNone {
			return fmt.Errorf("rma: MPI_Win_free while rank %d is still locked", target)
		}
	}
	if err := w.p.Barrier(); err != nil {
		return err
	}
	w.freed = true
	return nil
}

// LockAll opens a passive-target access epoch (MPI_Win_lock_all).
func (w *Win) LockAll() error {
	if w.freed {
		return ErrFreed
	}
	if w.epochOpen {
		return ErrEpochOpen
	}
	w.epoch++
	w.epochOpen = true
	w.epochStart = time.Now()
	w.p.open = append(w.p.open, w)
	return nil
}

// UnlockAll closes the epoch (MPI_Win_unlock_all): all ranks reduce the
// number of remote accesses issued towards each window, wait for their
// pending notifications, complete the epoch analysis and synchronise.
func (w *Win) UnlockAll() error {
	if !w.epochOpen {
		return ErrNoEpoch
	}
	rank := w.p.Rank()

	counts, err := w.p.Allreduce(w.sent, mpi.OpSum)
	if err != nil {
		return err
	}
	w.expected += counts[rank]

	g := w.g
	world := w.p.World()
	g.recvMu[rank].Lock()
	for g.received[rank] < w.expected && world.AbortErr() == nil {
		g.recvCond[rank].Wait()
	}
	g.recvMu[rank].Unlock()
	if err := world.AbortErr(); err != nil {
		return err
	}

	g.anMu[rank].Lock()
	g.analyzers[rank].EpochEnd()
	atomic.AddUint64(&g.epochs[rank], 1)
	g.anMu[rank].Unlock()

	if err := w.p.Barrier(); err != nil {
		return err
	}

	for i := range w.sent {
		w.sent[i] = 0
	}
	w.epochOpen = false
	atomic.AddInt64(&w.p.s.epochNanos[rank], int64(time.Since(w.epochStart)))
	for i, o := range w.p.open {
		if o == w {
			w.p.open = append(w.p.open[:i], w.p.open[i+1:]...)
			break
		}
	}
	return nil
}

// rmaEvent builds the event for one side of a one-sided operation. RMA
// accesses are never alias-filtered: the MPI call itself is always
// intercepted.
func rmaEvent(b *Buffer, off, n int, tp access.Type, origin int, epoch, callTime uint64, dbg access.Debug) detector.Event {
	return detector.Event{
		Acc: access.Access{
			Interval: b.span(off, n),
			Type:     tp,
			Rank:     origin,
			Epoch:    epoch,
			Stack:    b.stack,
			Debug:    dbg,
		},
		Time:     callTime,
		CallTime: callTime,
	}
}

// Put writes n bytes of src at srcOff into target's window at targetOff
// (MPI_Put): an RMA_Read of the origin buffer and an RMA_Write of the
// target window region.
func (w *Win) Put(target, targetOff int, src *Buffer, srcOff, n int, dbg access.Debug) error {
	return w.onesided(target, targetOff, src, srcOff, n, dbg, true)
}

// Get reads n bytes from target's window at targetOff into dst at
// dstOff (MPI_Get): an RMA_Write of the origin buffer and an RMA_Read
// of the target window region.
func (w *Win) Get(dst *Buffer, dstOff, target, targetOff, n int, dbg access.Debug) error {
	return w.onesided(target, targetOff, dst, dstOff, n, dbg, false)
}

func (w *Win) onesided(target, targetOff int, local *Buffer, localOff, n int, dbg access.Debug, isPut bool) error {
	if target < 0 || target >= w.p.Size() {
		return fmt.Errorf("rma: one-sided operation to invalid rank %d", target)
	}
	if w.freed {
		return ErrFreed
	}
	if !w.epochOpen && !w.lockedFor(target) && !w.pscwTargets[target] {
		return ErrNoEpoch
	}
	g := w.g
	tgtMem := g.mems[target]
	callTime := w.p.tick()
	origin := w.p.Rank()

	localType, remoteType := access.RMAWrite, access.RMARead // Get
	if isPut {
		localType, remoteType = access.RMARead, access.RMAWrite
	}

	// Origin-side access, analysed locally.
	originEpoch := atomic.LoadUint64(&g.epochs[origin])
	if err := w.analyse(origin, rmaEvent(local, localOff, n, localType, origin, originEpoch, callTime, dbg)); err != nil {
		return err
	}

	// Data movement (the window memory itself).
	g.copyMu.Lock()
	if isPut {
		copy(tgtMem.data[targetOff:targetOff+n], local.data[localOff:localOff+n])
	} else {
		copy(local.data[localOff:localOff+n], tgtMem.data[targetOff:targetOff+n])
	}
	g.copyMu.Unlock()

	// Target-side access, notified to the target's receiver (the
	// paper's MPI_Send on the hidden communicator). The receiver stamps
	// the target's epoch.
	ev := rmaEvent(tgtMem, targetOff, n, remoteType, origin, 0, callTime, dbg)
	select {
	case g.notifCh[target] <- notifMsg{ev: ev}:
	case <-w.p.World().Aborted():
		return w.p.World().AbortErr()
	}
	w.countSent(target)
	return nil
}

// countSent attributes an issued notification to the synchronisation
// mechanism that will drain it: the PSCW access epoch when one is open
// towards the target, otherwise the window's lock_all/lock accounting.
func (w *Win) countSent(target int) {
	if w.pscwTargets[target] {
		w.pscwSent[target]++
		return
	}
	w.sent[target]++
}

// Flush completes this rank's outstanding operations towards target
// (MPI_Win_flush). Following §6(2) it does not clear any analysis state
// unless the session runs the unsafe ablation.
func (w *Win) Flush(target int) error {
	if !w.epochOpen {
		return ErrNoEpoch
	}
	_ = target // data movement is synchronous in the simulator
	rank := w.p.Rank()
	w.g.anMu[rank].Lock()
	w.g.analyzers[rank].Flush(rank)
	w.g.anMu[rank].Unlock()
	return nil
}

// FlushAll completes this rank's outstanding operations towards every
// target (MPI_Win_flush_all).
func (w *Win) FlushAll() error { return w.Flush(-1) }

// Close releases the session's receiver goroutines. Call it after the
// world has finished; it is not collective.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() {
		defer func() { recover() }() // tolerate double close
		close(s.closed)              // stops the abort watchers
	}()
	for _, g := range s.wins {
		for r := range g.notifCh {
			func() {
				defer func() { recover() }() // tolerate double close
				close(g.notifCh[r])
			}()
		}
		func() {
			defer func() { recover() }()
			close(g.lockCh) // stops the lock server
		}()
	}
}
