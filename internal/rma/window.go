package rma

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/engine"
	"rmarace/internal/mpi"
	"rmarace/internal/obs/span"
	"rmarace/internal/vc"
)

// ErrNoEpoch is returned when a one-sided operation is issued outside a
// passive-target epoch.
var ErrNoEpoch = errors.New("rma: one-sided operation outside an epoch (missing MPI_Win_lock_all)")

// ErrEpochOpen is returned when LockAll is called twice without an
// intervening UnlockAll.
var ErrEpochOpen = errors.New("rma: epoch already open")

// ErrFreed is returned by operations on a window after MPI_Win_free.
var ErrFreed = errors.New("rma: window has been freed (MPI_Win_free)")

// DefaultNotifBatch is the notification batch size when Config leaves
// NotifBatch zero: up to this many consecutive target-side accesses to
// the same target coalesce into one channel message. 1 disables
// batching.
const DefaultNotifBatch = 64

// winGlobal is the collective state of one window across all ranks:
// the shared memory and locking plumbing, plus the analysis engine
// (package internal/engine) owning the analyzers, receiver goroutines
// and the count-and-drain quiescence protocol.
type winGlobal struct {
	name  string
	size  int
	id    int // window index within the session, scoping PSCW tags
	ranks int
	s     *Session

	eng *engine.Engine

	mems []*Buffer
	// copyMu serialises every byte of data movement touching this
	// window's memory — remote copies and the owner's instrumented
	// local accesses. The simulator really performs the programs'
	// (possibly racing) accesses; without this serialisation Go's own
	// race detector would flag the deliberately racy example programs.
	// The detectors' analysis is unaffected: they see the access
	// events, not the bytes.
	copyMu sync.Mutex

	lockCh     chan lockReq
	serverOnce sync.Once
}

// Win is one rank's handle on a window: the analogue of an MPI_Win.
type Win struct {
	p   *Proc
	g   *winGlobal
	buf *Buffer

	epoch      uint64
	epochOpen  bool
	epochStart time.Time
	sent       []int64
	expected   int64
	freed      bool
	// pending coalesces consecutive target-side notifications per
	// target into batches of at most batchCap events; every
	// synchronisation that publishes or drains the sent counts flushes
	// first, so the quiescence protocol is unchanged.
	pending  [][]detector.Event
	batchCap int
	// sp/spOn cache the session's span tracer so every instrumentation
	// site pays one branch when tracing is off; epochT0 is the open
	// epoch's start on the tracer clock.
	sp      *span.Tracer
	spOn    bool
	epochT0 int64
	// lockMode tracks this process's per-target MPI_Win_lock state.
	lockMode []int
	// PSCW state: open access-epoch targets and per-target access
	// counts (origin side), and the posted origin group (target side).
	pscwTargets map[int]bool
	pscwSent    map[int]int64
	pscwPosted  []int
	// pscwStart/postStart time the open PSCW access and exposure epochs
	// so Complete and Wait contribute to the Fig. 10 epoch accounting
	// like UnlockAll does.
	pscwStart time.Time
	postStart time.Time
}

// WinCreate collectively creates (or joins) the window named name with
// size bytes of exposed memory per rank, starts the per-rank receiver
// goroutine, and synchronises all ranks before returning. Buffer
// options apply to the exposed memory: pass OnStack to model an
// MPI_Win_create over a stack array (as the paper's microbenchmark
// suite does), or none for MPI_Win_allocate-style heap memory.
func (p *Proc) WinCreate(name string, size int, opts ...BufOpt) (*Win, error) {
	s := p.s
	n := p.Size()

	s.mu.Lock()
	g, ok := s.wins[name]
	if !ok {
		g = &winGlobal{
			name:   name,
			size:   size,
			id:     len(s.wins),
			ranks:  n,
			s:      s,
			mems:   make([]*Buffer, n),
			lockCh: make(chan lockReq, n),
		}
		g.eng = engine.New(engine.Config{
			Ranks:       n,
			NewAnalyzer: s.newAnalyzer,
			OnRace:      s.abort,
			Stop:        p.World().Aborted(),
			StopErr:     p.World().AbortErr,
			Recorder:    s.rec,
			Window:      name,
			Spans:       s.spans,
			FlightN:     s.cfg.FlightLog,
		})
		s.wins[name] = g
	} else if g.size != size {
		s.mu.Unlock()
		return nil, fmt.Errorf("rma: window %q recreated with size %d != %d", name, size, g.size)
	}
	s.mu.Unlock()

	// Serve MPI_Win_lock/MPI_Win_unlock requests.
	g.serverOnce.Do(func() { go g.lockServer(p.World()) })

	rank := p.Rank()
	buf := p.Alloc(name+".win", size, opts...)
	buf.winG = g
	g.mems[rank] = buf
	// Idempotent: re-joining the window name (MPI_Win_free followed by
	// a fresh create) must not stack a second receiver per rank.
	g.eng.StartReceiver(rank)

	// The engine's drained-notification counter is cumulative over the
	// window name's whole lifetime, surviving MPI_Win_free and
	// re-creation, so this generation's quiescence targets must start
	// from the count already drained — otherwise a re-created window's
	// first epoch would be satisfied by the previous generation's
	// notifications and EpochEnd could clear the store before this
	// epoch's events arrive. Read it BEFORE the creation barrier: every
	// earlier generation was fully drained before its Free barrier and
	// no rank can issue new accesses until the barrier below releases
	// it, so the counter is stable here and only here.
	expectedBase := g.eng.Received(rank)

	if err := p.Barrier(); err != nil {
		return nil, err
	}
	batch := s.cfg.NotifBatch
	if batch <= 0 {
		batch = DefaultNotifBatch
	}
	return &Win{
		p:        p,
		g:        g,
		buf:      buf,
		sent:     make([]int64, n),
		pending:  make([][]detector.Event, n),
		batchCap: batch,
		sp:       s.spans,
		spOn:     s.spans.Enabled(),
		lockMode: make([]int, n),
		expected: expectedBase,
	}, nil
}

// analyse runs one event through rank's analyzer, aborting the world on
// a detected race. It returns the race as an error, or nil.
func (g *winGlobal) analyse(rank int, ev detector.Event) error {
	if race := g.eng.Analyse(rank, ev); race != nil {
		return race
	}
	return nil
}

// Buffer returns the rank's exposed window memory; local accesses on it
// are "in window" accesses.
func (w *Win) Buffer() *Buffer { return w.buf }

// Name returns the window name.
func (w *Win) Name() string { return w.g.name }

// analyse routes a local access of this window's owner.
func (w *Win) analyse(rank int, ev detector.Event) error {
	return w.g.analyse(rank, ev)
}

// notify queues one target-side access for target's receiver,
// coalescing it into the pending batch. The batch is sent when it
// reaches batchCap; synchronisation calls flush the remainder.
func (w *Win) notify(target int, ev detector.Event) error {
	if w.pending[target] == nil {
		// Batch slices come from the engine's pool and are recycled by
		// the receiver after analysis, so the steady-state notification
		// pipeline allocates nothing.
		w.pending[target] = w.g.eng.GetEventBuf()
	}
	w.pending[target] = append(w.pending[target], ev)
	w.countSent(target)
	if len(w.pending[target]) >= w.batchCap {
		return w.flushNotifs(target)
	}
	return nil
}

// flushNotifs hands target's pending notification batch to the engine.
// With tracing on it opens the batch's causal flow: a notif-send span
// here, closed by the engine's notif-batch span on the target, renders
// the cross-rank edge in the exported timeline.
func (w *Win) flushNotifs(target int) error {
	batch := w.pending[target]
	if len(batch) == 0 {
		return nil
	}
	w.pending[target] = nil // next notify takes a fresh pooled slice
	if !w.spOn {
		return w.g.eng.Notify(target, batch)
	}
	flow := w.sp.NextFlow()
	t0 := w.sp.Now()
	err := w.g.eng.NotifyFlow(target, batch, flow)
	w.sp.Record(w.p.Rank(), span.Record{
		Kind:  span.KindNotifSend,
		Start: t0, Dur: w.sp.Now() - t0,
		A: int64(target), B: int64(len(batch)),
		Flow: flow, Phase: span.FlowStart,
	})
	return err
}

// flushAllNotifs flushes every target's pending batch; every
// synchronisation that publishes the sent counts calls it first.
func (w *Win) flushAllNotifs() error {
	for t := range w.pending {
		if err := w.flushNotifs(t); err != nil {
			return err
		}
	}
	return nil
}

// Free destroys this process's handle on the window (MPI_Win_free). It
// is collective; every epoch must be closed and every per-target lock
// released first. Further operations on the handle fail with ErrFreed.
func (w *Win) Free() error {
	if w.freed {
		return ErrFreed
	}
	if w.epochOpen {
		return errors.New("rma: MPI_Win_free with an open access epoch")
	}
	if w.pscwTargets != nil {
		return errors.New("rma: MPI_Win_free with an open PSCW access epoch (missing MPI_Win_complete)")
	}
	if w.pscwPosted != nil {
		return errors.New("rma: MPI_Win_free with an open PSCW exposure epoch (missing MPI_Win_wait)")
	}
	for target, mode := range w.lockMode {
		if mode != lockNone {
			return fmt.Errorf("rma: MPI_Win_free while rank %d is still locked", target)
		}
	}
	if err := w.flushAllNotifs(); err != nil {
		return err
	}
	if err := w.p.Barrier(); err != nil {
		return err
	}
	w.freed = true
	return nil
}

// LockAll opens a passive-target access epoch (MPI_Win_lock_all).
func (w *Win) LockAll() error {
	if w.freed {
		return ErrFreed
	}
	if w.epochOpen {
		return ErrEpochOpen
	}
	w.epoch++
	w.epochOpen = true
	w.epochStart = time.Now()
	if w.spOn {
		w.epochT0 = w.sp.Now()
	}
	w.p.open = append(w.p.open, w)
	return nil
}

// UnlockAll closes the epoch (MPI_Win_unlock_all): all ranks flush
// their pending notification batches, reduce the number of remote
// accesses issued towards each window, wait for their pending
// notifications, complete the epoch analysis and synchronise.
func (w *Win) UnlockAll() error {
	if !w.epochOpen {
		return ErrNoEpoch
	}
	rank := w.p.Rank()

	if err := w.flushAllNotifs(); err != nil {
		return err
	}
	counts, err := w.p.Allreduce(w.sent, mpi.OpSum)
	if err != nil {
		return err
	}
	w.expected += counts[rank]

	g := w.g
	if err := g.eng.WaitReceived(rank, w.expected); err != nil {
		return err
	}
	g.eng.EpochEnd(rank)

	if err := w.p.Barrier(); err != nil {
		return err
	}

	for i := range w.sent {
		w.sent[i] = 0
	}
	w.epochOpen = false
	w.p.s.recordEpoch(rank, time.Since(w.epochStart))
	if w.spOn {
		w.sp.Record(rank, span.Record{
			Kind:  span.KindEpoch,
			Start: w.epochT0, Dur: w.sp.Now() - w.epochT0,
			A: int64(w.epoch), B: int64(w.g.ranks),
		})
	}
	for i, o := range w.p.open {
		if o == w {
			w.p.open = append(w.p.open[:i], w.p.open[i+1:]...)
			break
		}
	}
	return nil
}

// rmaEvent builds the event for one side of a one-sided operation. RMA
// accesses are never alias-filtered: the MPI call itself is always
// intercepted.
func rmaEvent(b *Buffer, off, n int, tp access.Type, origin int, epoch, callTime uint64, dbg access.Debug) detector.Event {
	return detector.Event{
		Acc: access.Access{
			Interval: b.span(off, n),
			Type:     tp,
			Rank:     origin,
			Epoch:    epoch,
			Stack:    b.stack,
			Debug:    dbg,
			StackID:  b.p.s.stackID(),
		},
		Time:     callTime,
		CallTime: callTime,
	}
}

// Put writes n bytes of src at srcOff into target's window at targetOff
// (MPI_Put): an RMA_Read of the origin buffer and an RMA_Write of the
// target window region.
func (w *Win) Put(target, targetOff int, src *Buffer, srcOff, n int, dbg access.Debug) error {
	return w.onesided(target, targetOff, src, srcOff, n, dbg, true)
}

// Get reads n bytes from target's window at targetOff into dst at
// dstOff (MPI_Get): an RMA_Write of the origin buffer and an RMA_Read
// of the target window region.
func (w *Win) Get(dst *Buffer, dstOff, target, targetOff, n int, dbg access.Debug) error {
	return w.onesided(target, targetOff, dst, dstOff, n, dbg, false)
}

func (w *Win) onesided(target, targetOff int, local *Buffer, localOff, n int, dbg access.Debug, isPut bool) error {
	if target < 0 || target >= w.p.Size() {
		return fmt.Errorf("rma: one-sided operation to invalid rank %d", target)
	}
	if w.freed {
		return ErrFreed
	}
	if !w.epochOpen && !w.lockedFor(target) && !w.pscwTargets[target] {
		return ErrNoEpoch
	}
	g := w.g
	tgtMem := g.mems[target]
	callTime := w.p.tick()
	origin := w.p.Rank()
	clk := w.callClock(origin, callTime)
	var spanT0 int64
	if w.spOn {
		spanT0 = w.sp.Now()
	}

	localType, remoteType := access.RMAWrite, access.RMARead // Get
	if isPut {
		localType, remoteType = access.RMARead, access.RMAWrite
	}

	// Origin-side access, analysed locally.
	originEpoch := g.eng.Epoch(origin)
	evO := rmaEvent(local, localOff, n, localType, origin, originEpoch, callTime, dbg)
	evO.Clock = clk
	if err := w.analyse(origin, evO); err != nil {
		return err
	}

	// Data movement (the window memory itself).
	g.copyMu.Lock()
	if isPut {
		copy(tgtMem.data[targetOff:targetOff+n], local.data[localOff:localOff+n])
	} else {
		copy(local.data[localOff:localOff+n], tgtMem.data[targetOff:targetOff+n])
	}
	g.copyMu.Unlock()

	// Target-side access, notified to the target's receiver (the
	// paper's MPI_Send on the hidden communicator). The receiver stamps
	// the target's epoch.
	ev := rmaEvent(tgtMem, targetOff, n, remoteType, origin, 0, callTime, dbg)
	ev.Clock = clk
	err := w.notify(target, ev)
	if w.spOn {
		kind := span.KindGet
		if isPut {
			kind = span.KindPut
		}
		w.sp.Record(origin, span.Record{
			Kind:  kind,
			Start: spanT0, Dur: w.sp.Now() - spanT0,
			A: int64(target), B: int64(n),
		})
	}
	return err
}

// callClock captures the origin's MUST-RMA happens-before clock at the
// MPI call site, piggybacked on both halves of the one-sided operation
// (Event.Clock). Real MUST-RMA attaches the clock to the message —
// the O(P) cost §5.3 charges it with — and the simulation must do the
// same: snapshotting when the target's receiver processes the
// notification instead would make the happens-before verdict depend on
// how far concurrent epoch-closing joins had progressed, i.e. on
// scheduling. Under the adaptive representation the snapshot is a
// scalar vc.Epoch until the origin's history crosses ranks. Nil for
// the other methods.
func (w *Win) callClock(origin int, callTime uint64) vc.HB {
	if s := w.p.s; s.must != nil {
		return s.must.Snapshot(origin, callTime)
	}
	return nil
}

// countSent attributes an issued notification to the synchronisation
// mechanism that will drain it: the PSCW access epoch when one is open
// towards the target, otherwise the window's lock_all/lock accounting.
func (w *Win) countSent(target int) {
	if w.pscwTargets[target] {
		w.pscwSent[target]++
		return
	}
	w.sent[target]++
}

// Flush completes this rank's outstanding operations towards target
// (MPI_Win_flush): the pending notification batch is pushed out.
// Following §6(2) it does not clear any analysis state unless the
// session runs the unsafe ablation.
//
// MPI_Win_flush is legal within any passive-target epoch, so the call
// is accepted under a LockAll epoch, a per-target Lock(target), or an
// open PSCW access epoch towards target — the same set of states that
// permits a one-sided operation. A negative target flushes every
// pending batch (FlushAll); a target at or beyond the communicator
// size is a descriptive error instead of an index panic.
func (w *Win) Flush(target int) error {
	if w.freed {
		return ErrFreed
	}
	if target >= w.p.Size() {
		return fmt.Errorf("rma: flush of invalid rank %d (communicator size %d)", target, w.p.Size())
	}
	if target < 0 {
		if !w.epochOpen && !w.anyTargetEpoch() {
			return ErrNoEpoch
		}
		if err := w.flushAllNotifs(); err != nil {
			return err
		}
	} else {
		if !w.epochOpen && !w.lockedFor(target) && !w.pscwTargets[target] {
			return ErrNoEpoch
		}
		if err := w.flushNotifs(target); err != nil {
			return err
		}
	}
	rank := w.p.Rank()
	var spanT0 int64
	if w.spOn {
		spanT0 = w.sp.Now()
	}
	w.g.eng.Flush(rank)
	if w.spOn {
		w.sp.Record(rank, span.Record{
			Kind:  span.KindFlush,
			Start: spanT0, Dur: w.sp.Now() - spanT0,
			A: int64(target),
		})
	}
	return nil
}

// anyTargetEpoch reports whether any per-target synchronisation that
// permits one-sided operations is open: a held Lock or a PSCW access
// epoch towards at least one target.
func (w *Win) anyTargetEpoch() bool {
	for _, mode := range w.lockMode {
		if mode != lockNone {
			return true
		}
	}
	return len(w.pscwTargets) > 0
}

// FlushAll completes this rank's outstanding operations towards every
// target (MPI_Win_flush_all).
func (w *Win) FlushAll() error { return w.Flush(-1) }

// Close releases the session's receiver goroutines. Call it after the
// world has finished; it is not collective and safe to call more than
// once, even while notifications are still in flight.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() {
		defer func() { recover() }() // tolerate double close
		close(s.closed)
	}()
	for _, g := range s.wins {
		g.eng.Close()
		func() {
			defer func() { recover() }()
			close(g.lockCh) // stops the lock server
		}()
	}
	s.tel.Close() // nil-safe; stops the telemetry server with the run
}
