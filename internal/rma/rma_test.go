package rma

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/mpi"
)

func dbg(line int) access.Debug { return access.Debug{File: "prog.c", Line: line} }

// run executes body as an SPMD program of n ranks under the given
// method and returns the run error and the session.
func run(t *testing.T, n int, method detector.Method, cfg Config, body func(p *Proc) error) (error, *Session) {
	t.Helper()
	cfg.Method = method
	world := mpi.NewWorld(n)
	s := NewSession(world, cfg)
	err := world.Run(func(mp *mpi.Proc) error { return body(s.Proc(mp)) })
	s.Close()
	return err, s
}

func TestPutMovesData(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("src", 8)
			copy(src.Raw(), "ABCDEFGH")
			if err := w.Put(1, 16, src, 0, 8, dbg(1)); err != nil {
				return err
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			if got := w.Buffer().Raw()[16:24]; !bytes.Equal(got, []byte("ABCDEFGH")) {
				t.Errorf("window content = %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetMovesData(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			copy(w.Buffer().Raw()[8:], "xyz") // pre-epoch initialisation
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			dst := p.Alloc("dst", 16)
			if err := w.Get(dst, 4, 1, 8, 3, dbg(2)); err != nil {
				return err
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
			if got := dst.Raw()[4:7]; !bytes.Equal(got, []byte("xyz")) {
				t.Errorf("got %q", got)
			}
			return nil
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutOutsideEpochFails(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("src", 8)
			if err := w.Put(1, 0, src, 0, 8, dbg(1)); !errors.Is(err, ErrNoEpoch) {
				t.Errorf("Put outside epoch: err = %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleLockAllFails(t *testing.T) {
	err, _ := run(t, 1, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := w.LockAll(); !errors.Is(err, ErrEpochOpen) {
			t.Errorf("double LockAll: err = %v", err)
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// code1 is the paper's Code 1 (Fig. 8a): P0 loads buf[4], Puts
// buf[2..11] to P1's window, stores buf[7].
func code1(p *Proc) error {
	w, err := p.WinCreate("X", 64)
	if err != nil {
		return err
	}
	if err := w.LockAll(); err != nil {
		return err
	}
	if p.Rank() == 0 {
		buf := p.Alloc("buf", 32)
		if _, err := buf.Load(4, 1, dbg(10)); err != nil {
			return err
		}
		if err := w.Put(1, 0, buf, 2, 10, dbg(11)); err != nil {
			return err
		}
		if err := buf.Store(7, []byte{0x12}, dbg(12)); err != nil {
			return err
		}
	}
	return w.UnlockAll()
}

func TestCode1EndToEnd(t *testing.T) {
	// The contribution aborts with a race whose report names the Put
	// and the Store lines.
	err, s := run(t, 2, detector.OurContribution, Config{}, code1)
	if err == nil || s.Race() == nil {
		t.Fatal("contribution must detect the Code 1 race")
	}
	msg := s.Race().Message()
	if !strings.Contains(msg, "prog.c:12") || !strings.Contains(msg, "prog.c:11") {
		t.Errorf("race message lacks debug info: %s", msg)
	}

	// Legacy RMA-Analyzer misses it (Fig. 5a).
	err, s = run(t, 2, detector.RMAAnalyzer, Config{}, code1)
	if err != nil || s.Race() != nil {
		t.Fatalf("legacy must miss Code 1 (err=%v race=%v)", err, s.Race())
	}
}

// loadThenGet is ll_load_get_inwindow_origin_safe: safe program order.
func loadThenGet(p *Proc) error {
	w, err := p.WinCreate("X", 64)
	if err != nil {
		return err
	}
	if err := w.LockAll(); err != nil {
		return err
	}
	if p.Rank() == 0 {
		// The origin's own window region is both loaded and then used
		// as the Get destination.
		if _, err := w.Buffer().Load(0, 8, dbg(20)); err != nil {
			return err
		}
		if err := w.Get(w.Buffer(), 0, 1, 0, 8, dbg(21)); err != nil {
			return err
		}
	}
	return w.UnlockAll()
}

func TestOrderSensitivityEndToEnd(t *testing.T) {
	if err, s := run(t, 2, detector.OurContribution, Config{}, loadThenGet); err != nil || s.Race() != nil {
		t.Fatalf("contribution flagged the safe Load;Get: %v", s.Race())
	}
	// Legacy raises its published false positive here.
	if _, s := run(t, 2, detector.RMAAnalyzer, Config{}, loadThenGet); s.Race() == nil {
		t.Fatal("legacy should flag Load;Get (published false positive)")
	}
}

func TestCrossOriginPutPutRace(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 || p.Rank() == 2 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(30+p.Rank())); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	for _, m := range []detector.Method{detector.OurContribution, detector.RMAAnalyzer, detector.MustRMAMethod} {
		if _, s := run(t, 3, m, Config{}, body); s.Race() == nil {
			t.Errorf("%v missed the two-origin Put/Put race", m)
		}
	}
}

func TestEpochSeparation(t *testing.T) {
	// Conflicting accesses in different epochs never race.
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		for epoch := 0; epoch < 2; epoch++ {
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 1 {
				src := p.Alloc("src", 8)
				if err := w.Put(0, 0, src, 0, 8, dbg(40+epoch)); err != nil {
					return err
				}
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, m := range []detector.Method{detector.OurContribution, detector.RMAAnalyzer, detector.MustRMAMethod} {
		if err, s := run(t, 2, m, Config{}, body); err != nil || s.Race() != nil {
			t.Errorf("%v: cross-epoch accesses raced: err=%v race=%v", m, err, s.Race())
		}
	}
}

func TestManyPutsNoDeadlockAndCounts(t *testing.T) {
	const n = 8
	err, s := run(t, n, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("X", 64*n)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 64)
		// Every rank puts 50 adjacent single bytes into its dedicated
		// segment of every target; duplicate writes to one location
		// would themselves be races (Fig. 9).
		for target := 0; target < n; target++ {
			for k := 0; k < 50; k++ {
				if err := w.Put(target, 64*p.Rank()+k, src, k, 1, dbg(50)); err != nil {
					return err
				}
			}
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("unexpected race: %v", s.Race())
	}
	stats := s.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Per-rank accesses: each rank issues n*50 origin-side accesses and
	// receives n*50 target-side ones.
	if stats[0].Accesses != uint64(2*n*n*50) {
		t.Fatalf("accesses = %d, want %d", stats[0].Accesses, 2*n*n*50)
	}
	// Merging collapses each rank's tree to at most a handful of nodes:
	// one per origin segment plus the origin-side buffer.
	for r, nn := range stats[0].PerRankMaxNodes {
		if nn > n+2 {
			t.Errorf("rank %d max nodes = %d, want <= %d", r, nn, n+2)
		}
	}
}

func TestUntrackedBufferFilteredForTreesNotMust(t *testing.T) {
	// A racy pattern on an untracked buffer: the alias filter hides the
	// local access from the tree analyzers, but MUST still sees it.
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("scratch", 16, Untracked())
			if err := w.Get(buf, 0, 1, 0, 8, dbg(60)); err != nil {
				return err
			}
			if _, err := buf.Load(0, 8, dbg(61)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	// In a real toolchain the alias analysis would never mark a buffer
	// that is passed to MPI_Get as filtered; Untracked here simulates
	// an (unsound) over-aggressive filter to show who depends on it.
	if _, s := run(t, 2, detector.OurContribution, Config{}, body); s.Race() != nil {
		t.Fatal("tree analyzer saw a filtered access")
	}
	if _, s := run(t, 2, detector.MustRMAMethod, Config{}, body); s.Race() == nil {
		t.Fatal("MUST must see through the alias filter")
	}
}

func TestDisableAliasFilterAblation(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("scratch", 16, Untracked())
			if err := w.Get(buf, 0, 1, 0, 8, dbg(60)); err != nil {
				return err
			}
			if _, err := buf.Load(0, 8, dbg(61)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	if _, s := run(t, 2, detector.OurContribution, Config{DisableAliasFilter: true}, body); s.Race() == nil {
		t.Fatal("with the alias filter disabled the race must be visible")
	}
}

func TestStackArrayMustFalseNegative(t *testing.T) {
	// ll_get_load_inwindow_origin_race with a stack array (Table 2).
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("stackbuf", 16, OnStack())
			if err := w.Get(buf, 0, 1, 0, 8, dbg(70)); err != nil {
				return err
			}
			if _, err := buf.Load(0, 8, dbg(71)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	if _, s := run(t, 2, detector.MustRMAMethod, Config{}, body); s.Race() != nil {
		t.Fatal("MUST instrumented a stack array (should be its published false negative)")
	}
	if _, s := run(t, 2, detector.OurContribution, Config{}, body); s.Race() == nil {
		t.Fatal("the contribution must catch the stack-array race")
	}
}

func TestUnsafeFlushClearHidesRace(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := p.Alloc("buf", 16)
			if err := w.Get(buf, 0, 1, 0, 8, dbg(80)); err != nil {
				return err
			}
			if err := w.FlushAll(); err != nil {
				return err
			}
			if _, err := buf.Load(0, 8, dbg(81)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	// Default (sound) flush handling: the Get;Load race survives the
	// flush because flush does not synchronise other processes (§6).
	if _, s := run(t, 2, detector.OurContribution, Config{}, body); s.Race() == nil {
		t.Fatal("race across a flush must still be reported by default")
	}
	// Unsafe ablation: clearing on flush hides it.
	if _, s := run(t, 2, detector.OurContribution, Config{UnsafeFlushClear: true}, body); s.Race() != nil {
		t.Fatal("unsafe flush-clear mode should produce the false negative")
	}
}

func TestEpochTimeAccumulates(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := w.LockAll(); err != nil {
				return err
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total, perRank := s.EpochTime()
	if total <= 0 || len(perRank) != 2 {
		t.Fatalf("EpochTime = %v, %v", total, perRank)
	}
}

func TestWinCreateSizeMismatch(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		size := 64
		if p.Rank() == 1 {
			size = 128
		}
		_, err := p.WinCreate("X", size)
		if p.Rank() == 1 && err == nil {
			// Rank 1 may have arrived first and created the window; in
			// that case rank 0 gets the error instead. Either way one
			// rank errors, which aborts via body return below.
			return nil
		}
		return err
	})
	// One of the two ranks must have failed (or, if creation raced the
	// other way, the world aborted); accept any non-nil or nil outcome
	// but require no hang. The strict contract is exercised in
	// TestWinRecreateMismatchDirect.
	_ = err
}

func TestWinRecreateMismatchDirect(t *testing.T) {
	world := mpi.NewWorld(1)
	s := NewSession(world, Config{Method: detector.Baseline})
	err := world.Run(func(mp *mpi.Proc) error {
		p := s.Proc(mp)
		if _, err := p.WinCreate("X", 64); err != nil {
			return err
		}
		if _, err := p.WinCreate("X", 128); err == nil {
			t.Error("size mismatch accepted")
		}
		return nil
	})
	s.Close()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfPut(t *testing.T) {
	err, s := run(t, 1, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		copy(src.Raw(), "12345678")
		if err := w.Put(0, 0, src, 0, 8, dbg(90)); err != nil {
			return err
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if !bytes.Equal(w.Buffer().Raw()[:8], []byte("12345678")) {
			t.Error("self-put did not move data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("self-put raced: %v", s.Race())
	}
}

func TestBufferBoundsPanic(t *testing.T) {
	err, _ := run(t, 1, detector.Baseline, Config{}, func(p *Proc) error {
		b := p.Alloc("b", 8)
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds access did not panic")
			}
		}()
		_, _ = b.Load(4, 10, dbg(1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinFreeLifecycle(t *testing.T) {
	err, _ := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if err := w.Free(); err == nil {
			t.Error("Free with an open epoch accepted")
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if err := w.Free(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := w.Put((p.Rank()+1)%2, 0, src, 0, 8, dbg(1)); !errors.Is(err, ErrFreed) {
			t.Errorf("Put after Free: %v", err)
		}
		if err := w.LockAll(); !errors.Is(err, ErrFreed) {
			t.Errorf("LockAll after Free: %v", err)
		}
		if err := w.Lock(LockExclusive, 0); !errors.Is(err, ErrFreed) {
			t.Errorf("Lock after Free: %v", err)
		}
		if err := w.Free(); !errors.Is(err, ErrFreed) {
			t.Errorf("double Free: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinFreeWithHeldLockRejected(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Lock(LockExclusive, 1); err != nil {
				return err
			}
			if err := w.Free(); err == nil {
				t.Error("Free with a held lock accepted")
			}
			if err := w.Unlock(1); err != nil {
				return err
			}
		}
		return w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBarrierDoesNotSynchroniseEpoch encodes §6(1): per the MPI
// standard an MPI_Barrier does not terminate one-sided communications,
// and the analyzers deliberately do not treat it as a synchronisation
// point — a conflicting access after the barrier still races.
func TestBarrierDoesNotSynchroniseEpoch(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(70)); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Buffer().Store(0, make([]byte, 8), dbg(71)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	for _, m := range []detector.Method{detector.OurContribution, detector.MustRMAMethod} {
		if _, s := run(t, 2, m, Config{}, body); s.Race() == nil {
			t.Errorf("%v treated MPI_Barrier as a synchronisation point", m)
		}
	}
}

// TestFlushAllThenBarrierStillConservative: §6(1) recommends
// MPI_Win_flush_all followed by MPI_Barrier to synchronise within an
// epoch, but notes the tools cannot instrument flush soundly — so the
// analyzers conservatively keep reporting, trading this false positive
// for the false negatives unsound flush-clearing would cause (§6(2)).
func TestFlushAllThenBarrierStillConservative(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(72)); err != nil {
				return err
			}
		}
		if err := w.FlushAll(); err != nil {
			return err
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Buffer().Store(0, make([]byte, 8), dbg(73)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	if _, s := run(t, 2, detector.OurContribution, Config{}, body); s.Race() == nil {
		t.Error("flush_all+barrier was treated as sound synchronisation (unsupported, §6(2))")
	}
}
