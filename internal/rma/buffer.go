package rma

import (
	"encoding/binary"
	"fmt"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/mpi"
)

// Proc is one rank's instrumented handle: it wraps the mpi.Proc with
// buffer allocation, instrumented local accesses and window creation.
type Proc struct {
	*mpi.Proc
	s *Session
	// time is the rank's program-order counter; only this rank's
	// goroutine advances it.
	time uint64
	// open lists this rank's windows with an open passive-target epoch;
	// instrumented local accesses are analysed against each of them.
	open []*Win
}

// Proc attaches a rank to the session.
func (s *Session) Proc(p *mpi.Proc) *Proc {
	return &Proc{Proc: p, s: s}
}

// tick advances and returns the rank's program-order counter.
func (p *Proc) tick() uint64 {
	p.time++
	return p.time
}

// Buffer is an instrumented region of one rank's simulated address
// space. Loads and stores through it are observed by the analyzers;
// Raw gives uninstrumented access for verification code.
type Buffer struct {
	p       *Proc
	name    string
	base    uint64
	data    []byte
	stack   bool
	tracked bool
	// winG is set when the buffer is a window's exposed memory: its
	// bytes may be touched by remote copies, so the owner's local
	// accesses serialise on the window's copy mutex.
	winG *winGlobal
}

// BufOpt configures Alloc.
type BufOpt func(*Buffer)

// OnStack marks the buffer as stack-allocated. ThreadSanitizer (and so
// the MUST-RMA simulator) does not instrument local accesses to stack
// arrays (§5.2).
func OnStack() BufOpt { return func(b *Buffer) { b.stack = true } }

// Untracked marks the buffer as proven by the compile-time alias
// analysis to never alias an RMA region: its local accesses are
// Filtered events, skipped by the tree-based analyzers but still
// instrumented by ThreadSanitizer.
func Untracked() BufOpt { return func(b *Buffer) { b.tracked = false } }

// Alloc reserves an instrumented buffer of size bytes in this rank's
// address space.
func (p *Proc) Alloc(name string, size int, opts ...BufOpt) *Buffer {
	if size <= 0 {
		panic(fmt.Sprintf("rma: Alloc(%q) with size %d", name, size))
	}
	b := &Buffer{
		p:       p,
		name:    name,
		base:    p.AllocAddr(uint64(size)),
		data:    make([]byte, size),
		tracked: true,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name returns the buffer's debug name.
func (b *Buffer) Name() string { return b.name }

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int { return len(b.data) }

// Base returns the buffer's simulated virtual base address.
func (b *Buffer) Base() uint64 { return b.base }

// Raw returns the underlying bytes without instrumentation, for test
// and verification code only. For window memory it must only be used
// while no remote operation can be in flight (before the first epoch or
// after the last synchronisation).
func (b *Buffer) Raw() []byte { return b.data }

func (b *Buffer) span(off, n int) interval.Interval {
	if off < 0 || n <= 0 || off+n > len(b.data) {
		panic(fmt.Sprintf("rma: access [%d,%d) out of bounds of %q (size %d)", off, off+n, b.name, len(b.data)))
	}
	return interval.Span(b.base+uint64(off), uint64(n))
}

// event builds the instrumented-access event for a local load or store.
func (b *Buffer) event(off, n int, tp access.Type, dbg access.Debug) detector.Event {
	return detector.Event{
		Acc: access.Access{
			Interval: b.span(off, n),
			Type:     tp,
			Rank:     b.p.Rank(),
			Stack:    b.stack,
			Debug:    dbg,
			StackID:  b.p.s.stackID(),
		},
		Time:     b.p.tick(),
		Filtered: !b.tracked && !b.p.s.cfg.DisableAliasFilter,
	}
}

// localAccess routes a local access to every window of this rank with
// an open epoch. Outside any epoch the access is not collected,
// matching the paper's "memory accesses that are contained within each
// epoch".
func (p *Proc) localAccess(ev detector.Event) error {
	for _, w := range p.open {
		ev.Acc.Epoch = w.g.eng.Epoch(p.Rank())
		if err := w.analyse(p.Rank(), ev); err != nil {
			return err
		}
	}
	return nil
}

// Load performs an instrumented read of n bytes at off and returns
// them. dbg locates the load in the instrumented program.
func (b *Buffer) Load(off, n int, dbg access.Debug) ([]byte, error) {
	if err := b.p.localAccess(b.event(off, n, access.LocalRead, dbg)); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if g := b.winG; g != nil {
		g.copyMu.Lock()
		copy(out, b.data[off:off+n])
		g.copyMu.Unlock()
	} else {
		copy(out, b.data[off:off+n])
	}
	return out, nil
}

// Store performs an instrumented write of val at off.
func (b *Buffer) Store(off int, val []byte, dbg access.Debug) error {
	if err := b.p.localAccess(b.event(off, len(val), access.LocalWrite, dbg)); err != nil {
		return err
	}
	if g := b.winG; g != nil {
		g.copyMu.Lock()
		copy(b.data[off:], val)
		g.copyMu.Unlock()
	} else {
		copy(b.data[off:], val)
	}
	return nil
}

// LoadU64 reads an 8-byte little-endian word at off.
func (b *Buffer) LoadU64(off int, dbg access.Debug) (uint64, error) {
	raw, err := b.Load(off, 8, dbg)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(raw), nil
}

// StoreU64 writes an 8-byte little-endian word at off.
func (b *Buffer) StoreU64(off int, v uint64, dbg access.Debug) error {
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], v)
	return b.Store(off, raw[:], dbg)
}
