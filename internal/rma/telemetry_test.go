package rma

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"rmarace/internal/detector"
	"rmarace/internal/mpi"
	"rmarace/internal/obs"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestSessionTelemetryLiveScrape: a session with TelemetryAddr serves
// live endpoints while the program runs — a mid-run /metrics scrape
// sees counters the run has already produced, a mid-run /report is a
// valid run-report document, and the final scrape renders exactly the
// metrics section of the final Session.Report.
func TestSessionTelemetryLiveScrape(t *testing.T) {
	world := mpi.NewWorld(2)
	s := NewSession(world, Config{Method: detector.OurContribution, TelemetryAddr: "127.0.0.1:0"})
	srv, telErr := s.Telemetry()
	if telErr != nil {
		t.Fatal(telErr)
	}
	if srv == nil {
		t.Fatal("TelemetryAddr set but no server started")
	}

	var midMetrics, midReport string
	err := world.Run(func(mp *mpi.Proc) error {
		p := s.Proc(mp)
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := w.Put(1-p.Rank(), 8*p.Rank(), src, 0, 8, dbg(400+p.Rank())); err != nil {
			return err
		}
		if p.Rank() == 0 {
			// Mid-run: the epoch is still open on every rank.
			code, body := scrape(t, srv.URL()+"/metrics")
			if code != http.StatusOK {
				t.Errorf("/metrics status %d", code)
			}
			midMetrics = body
			_, midReport = scrape(t, srv.URL()+"/report")
			if code, body := scrape(t, srv.URL()+"/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok ") {
				t.Errorf("/healthz = %d %q", code, body)
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}

	// The origin-side Put analysis ran before the scrape, so the
	// mid-run exposition already carries store traffic.
	if !strings.Contains(midMetrics, "rmarace_store_inserts") {
		t.Fatalf("mid-run scrape has no store counters:\n%s", midMetrics)
	}
	rep, err := obs.ReadReport(strings.NewReader(midReport))
	if err != nil {
		t.Fatalf("mid-run /report invalid: %v\n%s", err, midReport)
	}
	if rep.Ranks != 2 {
		t.Fatalf("mid-run report ranks = %d", rep.Ranks)
	}

	// Quiescent now: the final scrape must equal the final report's
	// metrics rendered through the same exposition writer. peak_rss_bytes
	// is excluded: Report samples the live heap at call time, so it
	// appears (and moves) between renders by design.
	_, final := scrape(t, srv.URL()+"/metrics")
	var want bytes.Buffer
	if err := obs.WriteProm(&want, s.Report("run").Metrics); err != nil {
		t.Fatal(err)
	}
	stripPeak := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.Contains(line, "peak_rss_bytes") {
				out = append(out, line)
			}
		}
		return strings.Join(out, "\n")
	}
	if stripPeak(final) != stripPeak(want.String()) {
		t.Fatalf("final scrape diverged from final report:\n--- scrape ---\n%s--- report ---\n%s", final, want.String())
	}

	url := srv.URL()
	s.Close()
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("telemetry server survived Session.Close")
	}
}

// TestSessionFlightLogOnRace: with Config.FlightLog the detected
// race carries the owner's flight snapshot, including both conflicting
// accesses.
func TestSessionFlightLogOnRace(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 || p.Rank() == 2 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(500+p.Rank())); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	_, s := run(t, 3, detector.OurContribution, Config{FlightLog: 32}, body)
	race := s.Race()
	if race == nil {
		t.Fatal("two-origin Put/Put race not detected")
	}
	if len(race.FlightLog) == 0 {
		t.Fatal("race carries no flight log despite Config.FlightLog")
	}
	both := 0
	for _, e := range race.FlightLog {
		if e.Kind != detector.FlightAccess {
			continue
		}
		if a := e.Acc; a.Interval == race.Prev.Interval && (a.Debug == race.Prev.Debug || a.Debug == race.Cur.Debug) {
			both++
		}
	}
	if both < 2 {
		t.Fatalf("flight log holds %d of the 2 conflicting accesses:\n%+v", both, race.FlightLog)
	}
}

// TestSessionSpansExport: a spans-enabled run exports Chrome
// trace-event JSON carrying epoch, put and notification spans plus at
// least one complete causal flow ("s" matched by "f").
func TestSessionSpansExport(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("X", 128)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 32)
		for i := 0; i < 4; i++ {
			if err := w.Put(1-p.Rank(), 32*p.Rank()+8*i, src, 8*i, 8, dbg(600)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	_, s := run(t, 2, detector.OurContribution, Config{Spans: true}, body)
	if s.Race() != nil {
		t.Fatalf("disjoint puts raced: %v", s.Race())
	}
	var buf bytes.Buffer
	if err := s.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		ID   uint64 `json:"id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("span export is not valid JSON: %v", err)
	}
	seen := map[string]int{}
	starts := map[uint64]bool{}
	finishes := map[uint64]bool{}
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			seen[ev.Name]++
		case "s":
			starts[ev.ID] = true
		case "f":
			finishes[ev.ID] = true
		}
	}
	flows := 0
	for id := range starts {
		if finishes[id] {
			flows++
		}
	}
	for _, name := range []string{"epoch", "put", "notif-send", "notif-batch"} {
		if seen[name] == 0 {
			t.Errorf("no %q span exported; spans seen: %v", name, seen)
		}
	}
	if flows == 0 {
		t.Error("no complete causal flow (s/f pair) exported")
	}

	// A session without Config.Spans refuses to export.
	_, plain := run(t, 2, detector.OurContribution, Config{}, body)
	if err := plain.WriteSpans(io.Discard); err == nil {
		t.Error("WriteSpans succeeded without span tracing enabled")
	}
}
