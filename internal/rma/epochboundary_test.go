package rma

import (
	"fmt"
	"testing"

	"rmarace/internal/detector"
)

// notifBatches are the two notification delivery paths every epoch
// boundary must behave identically under: scalar (each access analysed
// as it arrives) and batched (accesses buffered 64 deep and flushed by
// the synchronisation call itself).
var notifBatches = []int{1, 64}

// TestFenceResetsConflictState: an access before a fence and an
// identical conflicting access after it must never pair — the fence
// completes the epoch and the analyzer's conflict state with it. The
// regression matters for the batched path especially: the fence must
// flush the pending batch *into the closing epoch* before advancing,
// or the pre-fence put would be analysed with the post-fence epoch
// stamp and race.
func TestFenceResetsConflictState(t *testing.T) {
	for _, batch := range notifBatches {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			err, s := run(t, 3, detector.OurContribution, Config{NotifBatch: batch}, func(p *Proc) error {
				w, err := p.WinCreate("w", 64)
				if err != nil {
					return err
				}
				if err := w.Fence(); err != nil {
					return err
				}
				src := p.Alloc("src", 8)
				if p.Rank() == 0 {
					if err := w.Put(2, 0, src, 0, 8, dbg(100)); err != nil {
						return err
					}
				}
				if err := w.Fence(); err != nil {
					return err
				}
				// The identical access (same target, offset, length,
				// source line) from another rank, one epoch later.
				if p.Rank() == 1 {
					if err := w.Put(2, 0, src, 0, 8, dbg(100)); err != nil {
						return err
					}
				}
				return w.FenceEnd()
			})
			if err != nil {
				t.Fatal(err)
			}
			if s.Race() != nil {
				t.Fatalf("fence-separated identical puts paired across the epoch boundary: %v", s.Race())
			}
		})
	}
}

// TestFenceConflictControl is the positive control for the test above:
// the same two puts inside one fence epoch must race on both
// notification paths, proving the no-race verdict comes from the epoch
// reset and not from the accesses being invisible.
func TestFenceConflictControl(t *testing.T) {
	for _, batch := range notifBatches {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			_, s := run(t, 3, detector.OurContribution, Config{NotifBatch: batch}, func(p *Proc) error {
				w, err := p.WinCreate("w", 64)
				if err != nil {
					return err
				}
				if err := w.Fence(); err != nil {
					return err
				}
				src := p.Alloc("src", 8)
				if p.Rank() != 2 {
					if err := w.Put(2, 0, src, 0, 8, dbg(100+p.Rank())); err != nil {
						return err
					}
				}
				return w.FenceEnd()
			})
			if s.Race() == nil {
				t.Fatal("conflicting same-epoch puts not detected (control)")
			}
		})
	}
}

// TestPSCWResetsConflictState: Complete/Wait close a PSCW epoch pair,
// so an access in the first exposure and an identical access in the
// second must never pair. The handshake itself sequences the two
// origins: rank 1's Start blocks until the target's second Post.
func TestPSCWResetsConflictState(t *testing.T) {
	for _, batch := range notifBatches {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			err, s := run(t, 3, detector.OurContribution, Config{NotifBatch: batch}, func(p *Proc) error {
				w, err := p.WinCreate("w", 64)
				if err != nil {
					return err
				}
				if p.Rank() == 2 {
					// Two back-to-back exposure epochs, one origin each.
					for _, origin := range []int{0, 1} {
						if err := w.Post(origin); err != nil {
							return err
						}
						if err := w.Wait(); err != nil {
							return err
						}
					}
					return nil
				}
				src := p.Alloc("src", 8)
				if err := w.Start(2); err != nil {
					return err
				}
				if err := w.Put(2, 0, src, 0, 8, dbg(100)); err != nil {
					return err
				}
				return w.Complete()
			})
			if err != nil {
				t.Fatal(err)
			}
			if s.Race() != nil {
				t.Fatalf("Wait-separated identical puts paired across PSCW exposures: %v", s.Race())
			}
		})
	}
}

// TestPSCWConflictControl: the same two origin puts inside a single
// shared exposure epoch race on both notification paths.
func TestPSCWConflictControl(t *testing.T) {
	for _, batch := range notifBatches {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			_, s := run(t, 3, detector.OurContribution, Config{NotifBatch: batch}, func(p *Proc) error {
				w, err := p.WinCreate("w", 64)
				if err != nil {
					return err
				}
				if p.Rank() == 2 {
					if err := w.Post(0, 1); err != nil {
						return err
					}
					return w.Wait()
				}
				src := p.Alloc("src", 8)
				if err := w.Start(2); err != nil {
					return err
				}
				if err := w.Put(2, 0, src, 0, 8, dbg(100+p.Rank())); err != nil {
					return err
				}
				return w.Complete()
			})
			if s.Race() == nil {
				t.Fatal("conflicting single-exposure puts not detected (control)")
			}
		})
	}
}
