package rma

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/mpi"
)

// TestCloseRacesInflightNotifications closes the session while every
// rank is still pumping Put notifications. Nothing may panic (the
// engine never closes a channel a sender could still be on) and the
// world must wind down: senders observe the close as an error instead
// of blocking forever.
func TestCloseRacesInflightNotifications(t *testing.T) {
	world := mpi.NewWorld(4)
	// NotifBatch 1 keeps a constant stream of channel sends in flight.
	s := NewSession(world, Config{Method: detector.Baseline, NotifBatch: 1})

	done := make(chan error, 1)
	go func() {
		done <- world.Run(func(mp *mpi.Proc) error {
			p := s.Proc(mp)
			w, err := p.WinCreate("w", 4*8192)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			src := p.Alloc("src", 1)
			target := (p.Rank() + 1) % p.Size()
			for i := 0; i < 8192; i++ {
				// Disjoint per-origin byte streams: no races, just load.
				off := p.Rank()*8192 + i
				if err := w.Put(target, off, src, 0, 1, dbg(i)); err != nil {
					return nil // the close arrived mid-stream: wind down
				}
			}
			return nil
		})
	}()

	time.Sleep(2 * time.Millisecond) // let the streams start flowing
	s.Close()
	s.Close() // double close must stay harmless

	select {
	case err := <-done:
		// Ranks either finished their streams or observed the close;
		// both are fine — only hangs and panics are failures.
		_ = err
	case <-time.After(10 * time.Second):
		t.Fatal("world did not wind down after Session.Close")
	}
}

// TestCloseRacesInflightShardedNotifications is the sharded variant of
// the close-under-fire test: every rank's analyzer runs an 8-shard
// worker pool, so Session.Close must also wind down the per-shard
// workers and the flush barriers without leaking goroutines,
// double-closing channels or hanging a blocked router.
func TestCloseRacesInflightShardedNotifications(t *testing.T) {
	before := runtime.NumGoroutine()
	world := mpi.NewWorld(4)
	s := NewSession(world, Config{Method: detector.OurContribution, Shards: 8, NotifBatch: 1})

	done := make(chan error, 1)
	go func() {
		done <- world.Run(func(mp *mpi.Proc) error {
			p := s.Proc(mp)
			w, err := p.WinCreate("w", 4*8192)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			src := p.Alloc("src", 1)
			target := (p.Rank() + 1) % p.Size()
			for i := 0; i < 8192; i++ {
				off := p.Rank()*8192 + i
				if err := w.Put(target, off, src, 0, 1, dbg(i)); err != nil {
					return nil // the close arrived mid-stream: wind down
				}
			}
			return nil
		})
	}()

	time.Sleep(2 * time.Millisecond) // let the streams start flowing
	s.Close()
	s.Close() // double close must stay harmless

	select {
	case err := <-done:
		_ = err
	case <-time.After(10 * time.Second):
		t.Fatal("world did not wind down after Session.Close (sharded)")
	}
	// The receiver, the stop-watcher and all 4×8 shard workers must
	// exit; poll because the workers observe the close asynchronously.
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > before {
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked after sharded close: %d before, %d after",
				before, runtime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestShardedSessionEndToEnd runs a full epoch lifecycle (LockAll, Puts
// from every rank, UnlockAll, Free) under a sharded session, checks the
// planted race is caught, and checks the shard-aware stats surface.
func TestShardedSessionEndToEnd(t *testing.T) {
	// Safe run first: disjoint per-origin streams across 3 epochs.
	err, s := run(t, 4, detector.OurContribution, Config{Shards: 4}, func(p *Proc) error {
		w, err := p.WinCreate("w", 4*4096)
		if err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		for epoch := 0; epoch < 3; epoch++ {
			if err := w.LockAll(); err != nil {
				return err
			}
			target := (p.Rank() + 1) % p.Size()
			for i := 0; i < 128; i++ {
				off := p.Rank()*4096 + i*8
				if err := w.Put(target, off, src, 0, 8, dbg(i)); err != nil {
					return err
				}
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		return w.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Race(); r != nil {
		t.Fatalf("safe sharded run reported a race: %v", r)
	}
	stats := s.Stats()
	if len(stats) != 1 {
		t.Fatalf("Stats returned %d windows", len(stats))
	}
	ws := stats[0]
	if ws.PerRankShardMaxNodes == nil {
		t.Fatal("sharded run did not surface PerRankShardMaxNodes")
	}
	for r, per := range ws.PerRankShardMaxNodes {
		if len(per) != 4 {
			t.Fatalf("rank %d has %d shard entries, want 4", r, len(per))
		}
		sum := 0
		for _, n := range per {
			sum += n
		}
		if sum != ws.PerRankMaxNodes[r] {
			t.Fatalf("rank %d shard marks sum %d != PerRankMaxNodes %d", r, sum, ws.PerRankMaxNodes[r])
		}
	}
	if ws.MaxShardNodes == 0 || ws.TotalMaxNodes == 0 {
		t.Fatalf("empty node stats: %+v", ws)
	}

	// Racy run: rank 0's Put against rank 1's local store.
	_, s2 := run(t, 2, detector.OurContribution, Config{Shards: 4}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("racy-src", 8)
			if err := w.Put(1, 0, src, 0, 8, dbg(100)); err != nil {
				return err
			}
		} else {
			if err := w.Buffer().Store(0, []byte{1}, dbg(101)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	})
	if s2.Race() == nil {
		t.Fatal("planted race not detected under sharding")
	}
}

// TestWinFreeInflightSharded frees a window (collective barrier +
// notification flush) while the shard workers are mid-drain, then
// re-creates and reuses it — the Free/recreate path must keep the
// credit accounting consistent across the pool.
func TestWinFreeInflightSharded(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{Shards: 8, NotifBatch: 4}, func(p *Proc) error {
		for round := 0; round < 3; round++ {
			w, err := p.WinCreate("reused", 2*4096)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			src := p.Alloc(fmt.Sprintf("src%d", round), 8)
			for i := 0; i < 64; i++ {
				off := p.Rank()*4096 + i*8
				if err := w.Put((p.Rank()+1)%2, off, src, 0, 8, dbg(round*100+i)); err != nil {
					return err
				}
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
			if err := w.Free(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Race(); r != nil {
		t.Fatalf("safe free/recreate run reported a race: %v", r)
	}
}

// TestWinFreeNameReuse frees a window and re-creates one under the same
// name, twice, then proves the analysis pipeline is still live on the
// reused window by detecting a planted race. A stacked duplicate
// receiver or a dead one would hang the quiescence protocol or miss
// the race.
func TestWinFreeNameReuse(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		for round := 0; round < 2; round++ {
			w, err := p.WinCreate("reused", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				src := p.Alloc(fmt.Sprintf("src%d", round), 8)
				if err := w.Put(1, 0, src, 0, 8, dbg(round)); err != nil {
					return err
				}
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
			if err := w.Free(); err != nil {
				return err
			}
			if err := w.LockAll(); !errors.Is(err, ErrFreed) {
				return fmt.Errorf("LockAll after Free = %v, want ErrFreed", err)
			}
		}

		// Planted race on the re-created window: rank 0's Put against
		// rank 1's local store of the same window bytes.
		w, err := p.WinCreate("reused", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("racy-src", 8)
			if err := w.Put(1, 0, src, 0, 8, dbg(100)); err != nil {
				return err
			}
		} else {
			if err := w.Buffer().Store(0, []byte{1}, dbg(101)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	})
	if s.Race() == nil {
		t.Fatalf("planted race on reused window not detected (err=%v)", err)
	}
}
