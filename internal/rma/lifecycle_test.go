package rma

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/mpi"
)

// TestCloseRacesInflightNotifications closes the session while every
// rank is still pumping Put notifications. Nothing may panic (the
// engine never closes a channel a sender could still be on) and the
// world must wind down: senders observe the close as an error instead
// of blocking forever.
func TestCloseRacesInflightNotifications(t *testing.T) {
	world := mpi.NewWorld(4)
	// NotifBatch 1 keeps a constant stream of channel sends in flight.
	s := NewSession(world, Config{Method: detector.Baseline, NotifBatch: 1})

	done := make(chan error, 1)
	go func() {
		done <- world.Run(func(mp *mpi.Proc) error {
			p := s.Proc(mp)
			w, err := p.WinCreate("w", 4*8192)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			src := p.Alloc("src", 1)
			target := (p.Rank() + 1) % p.Size()
			for i := 0; i < 8192; i++ {
				// Disjoint per-origin byte streams: no races, just load.
				off := p.Rank()*8192 + i
				if err := w.Put(target, off, src, 0, 1, dbg(i)); err != nil {
					return nil // the close arrived mid-stream: wind down
				}
			}
			return nil
		})
	}()

	time.Sleep(2 * time.Millisecond) // let the streams start flowing
	s.Close()
	s.Close() // double close must stay harmless

	select {
	case err := <-done:
		// Ranks either finished their streams or observed the close;
		// both are fine — only hangs and panics are failures.
		_ = err
	case <-time.After(10 * time.Second):
		t.Fatal("world did not wind down after Session.Close")
	}
}

// TestWinFreeNameReuse frees a window and re-creates one under the same
// name, twice, then proves the analysis pipeline is still live on the
// reused window by detecting a planted race. A stacked duplicate
// receiver or a dead one would hang the quiescence protocol or miss
// the race.
func TestWinFreeNameReuse(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		for round := 0; round < 2; round++ {
			w, err := p.WinCreate("reused", 64)
			if err != nil {
				return err
			}
			if err := w.LockAll(); err != nil {
				return err
			}
			if p.Rank() == 0 {
				src := p.Alloc(fmt.Sprintf("src%d", round), 8)
				if err := w.Put(1, 0, src, 0, 8, dbg(round)); err != nil {
					return err
				}
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
			if err := w.Free(); err != nil {
				return err
			}
			if err := w.LockAll(); !errors.Is(err, ErrFreed) {
				return fmt.Errorf("LockAll after Free = %v, want ErrFreed", err)
			}
		}

		// Planted race on the re-created window: rank 0's Put against
		// rank 1's local store of the same window bytes.
		w, err := p.WinCreate("reused", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Alloc("racy-src", 8)
			if err := w.Put(1, 0, src, 0, 8, dbg(100)); err != nil {
				return err
			}
		} else {
			if err := w.Buffer().Store(0, []byte{1}, dbg(101)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	})
	if s.Race() == nil {
		t.Fatalf("planted race on reused window not detected (err=%v)", err)
	}
}
