package rma

import (
	"encoding/binary"
	"errors"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
)

func TestAccumulateSumMovesData(t *testing.T) {
	err, s := run(t, 3, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() != 0 {
			src := p.Alloc("src", 8)
			binary.LittleEndian.PutUint64(src.Raw(), uint64(p.Rank()*10))
			if err := w.Accumulate(0, 0, src, 0, 8, access.AccumSum, dbg(1)); err != nil {
				return err
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if got := binary.LittleEndian.Uint64(w.Buffer().Raw()); got != 30 {
				t.Errorf("sum = %d, want 30", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("same-op accumulates raced: %v", s.Race())
	}
}

// TestConcurrentSameOpAccumulatesSafe is the §2.1 atomicity property:
// overlapping MPI_SUM accumulates from several origins are not a race
// for the contribution or the MUST simulator.
func TestConcurrentSameOpAccumulatesSafe(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		if err := w.Accumulate(0, 0, src, 0, 8, access.AccumSum, dbg(p.Rank())); err != nil {
			return err
		}
		return w.UnlockAll()
	}
	for _, m := range []detector.Method{detector.OurContribution, detector.MustRMAMethod} {
		if err, s := run(t, 3, m, Config{}, body); err != nil || s.Race() != nil {
			t.Errorf("%v flagged same-op accumulates: err=%v race=%v", m, err, s.Race())
		}
	}
	// The legacy analyzer conservatively flags them — a documented
	// limitation of the pre-MPI-3 tooling it models.
	if _, s := run(t, 3, detector.RMAAnalyzer, Config{}, body); s.Race() == nil {
		t.Error("legacy unexpectedly accepted concurrent accumulates")
	}
}

func TestMixedOpAccumulatesRace(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() > 0 {
			src := p.Alloc("src", 8)
			op := access.AccumSum
			if p.Rank() == 2 {
				op = access.AccumMax
			}
			if err := w.Accumulate(0, 0, src, 0, 8, op, dbg(p.Rank())); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	for _, m := range []detector.Method{detector.OurContribution, detector.MustRMAMethod} {
		if _, s := run(t, 3, m, Config{}, body); s.Race() == nil {
			t.Errorf("%v missed the mixed-operation accumulate race", m)
		}
	}
}

func TestAccumulateVsPutRaces(t *testing.T) {
	body := func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		src := p.Alloc("src", 8)
		switch p.Rank() {
		case 1:
			if err := w.Accumulate(0, 0, src, 0, 8, access.AccumSum, dbg(1)); err != nil {
				return err
			}
		case 2:
			if err := w.Put(0, 0, src, 0, 8, dbg(2)); err != nil {
				return err
			}
		}
		return w.UnlockAll()
	}
	if _, s := run(t, 3, detector.OurContribution, Config{}, body); s.Race() == nil {
		t.Fatal("accumulate vs put race missed")
	}
}

func TestAccumulateValidation(t *testing.T) {
	err, _ := run(t, 2, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		src := p.Alloc("src", 16)
		if err := w.Accumulate(1, 0, src, 0, 8, access.AccumSum, dbg(1)); !errors.Is(err, ErrNoEpoch) {
			t.Errorf("accumulate outside epoch: %v", err)
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Accumulate(1, 0, src, 0, 12, access.AccumSum, dbg(1)); err == nil {
				t.Error("non-multiple-of-8 length accepted")
			}
			if err := w.Accumulate(1, 0, src, 0, 8, access.AccumNone, dbg(1)); err == nil {
				t.Error("MPI_NO_OP accepted")
			}
			if err := w.Accumulate(9, 0, src, 0, 8, access.AccumSum, dbg(1)); err == nil {
				t.Error("invalid rank accepted")
			}
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchAndOpReturnsOldValue(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			binary.LittleEndian.PutUint64(w.Buffer().Raw(), 7)
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			old, err := w.FetchAndOp(1, 0, 5, access.AccumSum, dbg(1))
			if err != nil {
				return err
			}
			if old != 7 {
				t.Errorf("old = %d, want 7", old)
			}
		}
		if err := w.UnlockAll(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			if got := binary.LittleEndian.Uint64(w.Buffer().Raw()); got != 12 {
				t.Errorf("value = %d, want 12", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Race() != nil {
		t.Fatalf("fetch-and-op raced: %v", s.Race())
	}
}

func TestApplyAccumOps(t *testing.T) {
	cases := []struct {
		op       access.AccumOp
		cur, val uint64
		want     uint64
	}{
		{access.AccumSum, 3, 4, 7},
		{access.AccumReplace, 3, 4, 4},
		{access.AccumMax, 3, 4, 4},
		{access.AccumMax, 9, 4, 9},
		{access.AccumMin, 3, 4, 3},
		{access.AccumMin, 9, 4, 4},
		{access.AccumBand, 0b1100, 0b1010, 0b1000},
		{access.AccumNone, 3, 4, 3}, // no-op fallback
	}
	for _, c := range cases {
		if got := applyAccum(c.op, c.cur, c.val); got != c.want {
			t.Errorf("applyAccum(%v, %d, %d) = %d, want %d", c.op, c.cur, c.val, got, c.want)
		}
	}
}

func TestFenceSeparatesEpochs(t *testing.T) {
	// Active-target phases: a put in phase 1 and a conflicting local
	// store in phase 2 do not race across the fence.
	body := func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.Fence(); err != nil { // open phase 1
			return err
		}
		if p.Rank() == 1 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(1)); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil { // phase 1 -> phase 2
			return err
		}
		if p.Rank() == 0 {
			if err := w.Buffer().Store(0, make([]byte, 8), dbg(2)); err != nil {
				return err
			}
		}
		return w.FenceEnd()
	}
	for _, m := range []detector.Method{detector.OurContribution, detector.MustRMAMethod, detector.RMAAnalyzer} {
		if err, s := run(t, 2, m, Config{}, body); err != nil || s.Race() != nil {
			t.Errorf("%v: fence-separated accesses raced: err=%v race=%v", m, err, s.Race())
		}
	}
}

func TestFenceWithoutSeparationStillRaces(t *testing.T) {
	// Within one fence phase the same pattern is a race.
	body := func(p *Proc) error {
		w, err := p.WinCreate("w", 64)
		if err != nil {
			return err
		}
		if err := w.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			src := p.Alloc("src", 8)
			if err := w.Put(0, 0, src, 0, 8, dbg(1)); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := w.Buffer().Store(0, make([]byte, 8), dbg(2)); err != nil {
				return err
			}
		}
		return w.FenceEnd()
	}
	if _, s := run(t, 2, detector.OurContribution, Config{}, body); s.Race() == nil {
		t.Fatal("intra-phase race missed")
	}
}

func TestFenceEndWithoutOpenEpoch(t *testing.T) {
	err, _ := run(t, 1, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 8)
		if err != nil {
			return err
		}
		if err := w.FenceEnd(); !errors.Is(err, ErrNoEpoch) {
			t.Errorf("FenceEnd without epoch: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
