package rma

import (
	"testing"

	"rmarace/internal/detector"
)

func TestSessionMethodAccessor(t *testing.T) {
	for _, m := range detector.Methods() {
		err, s := run(t, 2, m, Config{}, func(p *Proc) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if s.Method() != m {
			t.Errorf("Method() = %v, want %v", s.Method(), m)
		}
	}
}

func TestStatsAndTotalMaxNodes(t *testing.T) {
	err, s := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w1, err := p.WinCreate("a", 64)
		if err != nil {
			return err
		}
		w2, err := p.WinCreate("b", 64)
		if err != nil {
			return err
		}
		for _, w := range []*Win{w1, w2} {
			if err := w.LockAll(); err != nil {
				return err
			}
			src := p.Alloc("src", 8)
			// Distinct per-rank offsets: no overlap.
			if err := w.Put(1-p.Rank(), 16*p.Rank(), src, 0, 8, dbg(1)); err != nil {
				return err
			}
			if err := w.UnlockAll(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d windows, want 2", len(stats))
	}
	total := 0
	for _, ws := range stats {
		if ws.Name != "a" && ws.Name != "b" {
			t.Errorf("unexpected window name %q", ws.Name)
		}
		if len(ws.PerRankMaxNodes) != 2 {
			t.Errorf("per-rank stats = %v", ws.PerRankMaxNodes)
		}
		if ws.Accesses == 0 {
			t.Errorf("window %s recorded no accesses", ws.Name)
		}
		total += ws.TotalMaxNodes
	}
	if got := s.TotalMaxNodes(); got != total {
		t.Errorf("TotalMaxNodes = %d, want %d", got, total)
	}
	if total == 0 {
		t.Error("no nodes recorded at all")
	}
}

func TestEpochTimePerRankBreakdown(t *testing.T) {
	err, s := run(t, 3, detector.Baseline, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 8)
		if err != nil {
			return err
		}
		if err := w.LockAll(); err != nil {
			return err
		}
		return w.UnlockAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	total, perRank := s.EpochTime()
	if len(perRank) != 3 {
		t.Fatalf("perRank = %v", perRank)
	}
	var sum int64
	for _, d := range perRank {
		if d <= 0 {
			t.Errorf("rank with zero epoch time: %v", perRank)
		}
		sum += int64(d)
	}
	if int64(total) != sum {
		t.Errorf("total %v != sum %v", total, sum)
	}
}

func TestFlushRequiresEpoch(t *testing.T) {
	err, _ := run(t, 2, detector.OurContribution, Config{}, func(p *Proc) error {
		w, err := p.WinCreate("w", 8)
		if err != nil {
			return err
		}
		if err := w.Flush(1); err == nil {
			t.Error("Flush outside an epoch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
