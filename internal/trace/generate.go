package trace

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// GenConfig parameterises synthetic trace generation.
type GenConfig struct {
	Ranks int
	// Events is the number of access events per epoch.
	Events int
	// Epochs is the number of passive-target epochs.
	Epochs int
	// Owners is the number of distinct window owners the accesses are
	// distributed over — each (owner, window) gets its own analyzer on
	// replay, so this is the resident-state axis of the scale sweep.
	// 0 or 1 keeps the single-owner traces earlier PRs generated; it
	// must not exceed Ranks (an owner is a rank).
	Owners int
	// OwnerSkew in [0,1) concentrates accesses on low-numbered owners:
	// 0 spreads them uniformly, values near 1 send nearly everything to
	// owner 0 and leave the tail of owners cold for epochs at a time —
	// the workload shape the replay's cold-owner eviction policy is for.
	OwnerSkew float64
	// Adjacency in [0,1] is the fraction of accesses placed directly
	// after the rank's previous access (mergeable pattern, CFD-style);
	// the rest are strided (MiniVite-style).
	Adjacency float64
	// WriteFraction in [0,1] is the fraction of RMA accesses that are
	// writes. Overlapping writes may produce genuine races on replay;
	// generation does not prevent them unless SafeOnly is set.
	WriteFraction float64
	// SafeOnly partitions the address space per rank so the trace
	// replays race-free under a sound detector.
	SafeOnly bool
	// PlantRace appends, in the last epoch, one deterministic pair of
	// overlapping RMA writes from two ranks — a guaranteed race for any
	// sound detector, placed at a fixed address no generated access can
	// touch. Used to seed postmortem / flight-recorder demonstrations.
	PlantRace bool
	Seed      int64
}

// uniqBase is the SafeOnly strided region's base. It must clear every
// adjacent-cursor region (rank << 30), so generation caps Ranks at
// 1<<15: rank 32768's cursor would start exactly here.
const uniqBase = uint64(1) << 45

// plantedLo is the planted race's interval base: far above both the
// adjacent-cursor regions (rank << 30) and the SafeOnly unique region
// (uniqBase).
const plantedLo = uint64(1) << 50

// Generate writes a synthetic JSON trace. It returns the number of
// access events written.
func Generate(w io.Writer, cfg GenConfig) (int, error) {
	tw, err := NewWriter(w, Header{Ranks: cfg.Ranks, Window: "synthetic"})
	if err != nil {
		return 0, err
	}
	return GenerateTo(tw, cfg)
}

// GenerateTo writes a synthetic trace to any sink — the JSON Writer or
// the binary tracebin.Writer — whose header the caller has already
// written with Ranks: cfg.Ranks, Window: "synthetic". It returns the
// number of access events written.
//
// Addresses are partitioned per issuing rank (adjacent runs grow a
// cursor in a low per-rank region; SafeOnly strided accesses draw
// strictly increasing unique addresses from a high region), so
// distributing the accesses over multiple owners never manufactures or
// hides a race: any overlapping pair would involve the same issuing
// rank's addresses and land at the same owner either way.
func GenerateTo(tw Sink, cfg GenConfig) (int, error) {
	if cfg.Ranks <= 0 || cfg.Events <= 0 || cfg.Epochs <= 0 {
		return 0, fmt.Errorf("trace: invalid generation config %+v", cfg)
	}
	if cfg.Ranks > 1<<15 {
		return 0, fmt.Errorf("trace: %d ranks exceed the %d the address partitioning supports", cfg.Ranks, 1<<15)
	}
	owners := cfg.Owners
	if owners <= 0 {
		owners = 1
	}
	if owners > cfg.Ranks {
		return 0, fmt.Errorf("trace: %d owners exceed %d ranks", owners, cfg.Ranks)
	}
	if cfg.OwnerSkew < 0 || cfg.OwnerSkew >= 1 {
		return 0, fmt.Errorf("trace: owner skew %v outside [0,1)", cfg.OwnerSkew)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	written := 0
	const span = 1 << 20
	cursor := make([]uint64, cfg.Ranks)
	uniq := make([]uint64, cfg.Ranks)
	times := make([]uint64, cfg.Ranks)
	for r := range cursor {
		cursor[r] = uint64(r) << 30
	}
	// pickOwner skews toward owner 0 by raising a uniform draw to a
	// power: exponent 1 at skew 0 (uniform), growing without bound as
	// skew approaches 1 (everything lands on owner 0).
	pickOwner := func() int {
		if owners == 1 {
			return 0
		}
		u := rng.Float64()
		if cfg.OwnerSkew > 0 {
			u = math.Pow(u, 1/(1-cfg.OwnerSkew))
		}
		o := int(u * float64(owners))
		if o >= owners {
			o = owners - 1
		}
		return o
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := 0; i < cfg.Events; i++ {
			rank := rng.Intn(cfg.Ranks)
			times[rank]++
			var lo uint64
			adjacent := rng.Float64() < cfg.Adjacency
			switch {
			case adjacent:
				lo = cursor[rank]
			case cfg.SafeOnly:
				lo = uniqBase + (uniq[rank]*uint64(cfg.Ranks)+uint64(rank))*16
				uniq[rank]++
			default:
				lo = uint64(rng.Intn(span)) * 16
			}
			n := uint64(8)
			if adjacent {
				cursor[rank] = lo + n
			}

			tp := access.RMARead
			if rng.Float64() < cfg.WriteFraction {
				tp = access.RMAWrite
			}
			if adjacent {
				// One source line per adjacent run keeps it mergeable;
				// writes stay safe because the cursor never revisits an
				// address.
				tp = access.RMAWrite
			}
			line := 100
			if !adjacent {
				line = 200 + rng.Intn(4)
			}
			ev := detector.Event{
				Acc: access.Access{
					Interval: interval.Span(lo, n),
					Type:     tp,
					Rank:     rank,
					Epoch:    uint64(epoch),
					Debug:    access.Debug{File: "synthetic.c", Line: line},
				},
				Time:     times[rank],
				CallTime: times[rank],
			}
			if err := tw.Access(pickOwner(), ev); err != nil {
				return written, err
			}
			written++
		}
		if cfg.PlantRace && epoch == cfg.Epochs-1 {
			other := 0
			if cfg.Ranks > 1 {
				other = 1
			}
			for i, rank := range []int{0, other} {
				times[rank]++
				ev := detector.Event{
					Acc: access.Access{
						Interval: interval.Span(plantedLo, 8),
						Type:     access.RMAWrite,
						Rank:     rank,
						Epoch:    uint64(epoch),
						Debug:    access.Debug{File: "planted.c", Line: 666 + i},
					},
					Time:     times[rank],
					CallTime: times[rank],
				}
				// Both planted writes go to owner 0 so they meet at one
				// analyzer regardless of the owner distribution.
				if err := tw.Access(0, ev); err != nil {
					return written, err
				}
				written++
			}
		}
		// Every owner gets its epoch boundary, accessless owners
		// included: boundaries are what lets a replay's eviction policy
		// observe that an owner has gone cold.
		for o := 0; o < owners; o++ {
			if err := tw.EpochEnd(o); err != nil {
				return written, err
			}
		}
	}
	return written, tw.Flush()
}
