package trace

import (
	"fmt"
	"io"
	"math/rand"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// GenConfig parameterises synthetic trace generation.
type GenConfig struct {
	Ranks int
	// Events is the number of access events per epoch.
	Events int
	// Epochs is the number of passive-target epochs.
	Epochs int
	// Adjacency in [0,1] is the fraction of accesses placed directly
	// after the rank's previous access (mergeable pattern, CFD-style);
	// the rest are strided (MiniVite-style).
	Adjacency float64
	// WriteFraction in [0,1] is the fraction of RMA accesses that are
	// writes. Overlapping writes may produce genuine races on replay;
	// generation does not prevent them unless SafeOnly is set.
	WriteFraction float64
	// SafeOnly partitions the address space per rank so the trace
	// replays race-free under a sound detector.
	SafeOnly bool
	// PlantRace appends, in the last epoch, one deterministic pair of
	// overlapping RMA writes from two ranks — a guaranteed race for any
	// sound detector, placed at a fixed address no generated access can
	// touch. Used to seed postmortem / flight-recorder demonstrations.
	PlantRace bool
	Seed      int64
}

// plantedLo is the planted race's interval base: far above both the
// adjacent-cursor regions (rank << 30) and the SafeOnly unique region
// (1 << 40).
const plantedLo = uint64(1) << 50

// Generate writes a synthetic trace. It returns the number of access
// events written.
func Generate(w io.Writer, cfg GenConfig) (int, error) {
	if cfg.Ranks <= 0 || cfg.Events <= 0 || cfg.Epochs <= 0 {
		return 0, fmt.Errorf("trace: invalid generation config %+v", cfg)
	}
	tw, err := NewWriter(w, Header{Ranks: cfg.Ranks, Window: "synthetic"})
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	written := 0
	const span = 1 << 20
	// Per-rank regions: adjacent runs grow a cursor in a low region;
	// with SafeOnly, strided accesses draw strictly increasing unique
	// addresses from a high region, so nothing ever overlaps.
	cursor := make([]uint64, cfg.Ranks)
	uniq := make([]uint64, cfg.Ranks)
	times := make([]uint64, cfg.Ranks)
	for r := range cursor {
		cursor[r] = uint64(r) << 30
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := 0; i < cfg.Events; i++ {
			rank := rng.Intn(cfg.Ranks)
			times[rank]++
			var lo uint64
			adjacent := rng.Float64() < cfg.Adjacency
			switch {
			case adjacent:
				lo = cursor[rank]
			case cfg.SafeOnly:
				lo = (1 << 40) + (uniq[rank]*uint64(cfg.Ranks)+uint64(rank))*16
				uniq[rank]++
			default:
				lo = uint64(rng.Intn(span)) * 16
			}
			n := uint64(8)
			if adjacent {
				cursor[rank] = lo + n
			}

			tp := access.RMARead
			if rng.Float64() < cfg.WriteFraction {
				tp = access.RMAWrite
			}
			if adjacent {
				// One source line per adjacent run keeps it mergeable;
				// writes stay safe because the cursor never revisits an
				// address.
				tp = access.RMAWrite
			}
			line := 100
			if !adjacent {
				line = 200 + rng.Intn(4)
			}
			ev := detector.Event{
				Acc: access.Access{
					Interval: interval.Span(lo, n),
					Type:     tp,
					Rank:     rank,
					Epoch:    uint64(epoch),
					Debug:    access.Debug{File: "synthetic.c", Line: line},
				},
				Time:     times[rank],
				CallTime: times[rank],
			}
			if err := tw.Access(0, ev); err != nil {
				return written, err
			}
			written++
		}
		if cfg.PlantRace && epoch == cfg.Epochs-1 {
			other := 0
			if cfg.Ranks > 1 {
				other = 1
			}
			for i, rank := range []int{0, other} {
				times[rank]++
				ev := detector.Event{
					Acc: access.Access{
						Interval: interval.Span(plantedLo, 8),
						Type:     access.RMAWrite,
						Rank:     rank,
						Epoch:    uint64(epoch),
						Debug:    access.Debug{File: "planted.c", Line: 666 + i},
					},
					Time:     times[rank],
					CallTime: times[rank],
				}
				if err := tw.Access(0, ev); err != nil {
					return written, err
				}
				written++
			}
		}
		if err := tw.EpochEnd(0); err != nil {
			return written, err
		}
	}
	return written, tw.Flush()
}
