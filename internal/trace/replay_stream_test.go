package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
)

// genBuf generates a trace into a buffer.
func genBuf(t *testing.T, cfg GenConfig) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Generate(&buf, cfg); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return &buf
}

func newCore(int) detector.Analyzer { return core.New() }

// replayBuf replays a buffered JSON trace with the given options.
func replayBuf(t *testing.T, raw []byte, opts ReplayOpts) ReplayResult {
	t.Helper()
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	res, err := ReplayWith(r, newCore, opts)
	if err != nil {
		t.Fatalf("ReplayWith: %v", err)
	}
	return res
}

func TestDecodeErrorCarriesPosition(t *testing.T) {
	// A malformed record mid-trace must report its line and byte offset.
	buf := genBuf(t, GenConfig{Ranks: 2, Events: 5, Epochs: 1, SafeOnly: true, Seed: 1})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	lines[3] = `{"kind":"access","lo":`
	raw := strings.Join(lines, "\n")

	r, err := NewReader(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	_, err = Replay(r, newCore)
	if err == nil {
		t.Fatal("malformed record replayed without error")
	}
	if !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %q does not carry line/offset position", err)
	}
}

func TestUnknownKindErrorCarriesPosition(t *testing.T) {
	raw := `{"kind":"header","ranks":2,"window":"w"}
{"kind":"access","owner":0,"rank":0,"lo":0,"hi":7,"type":"rma_write","epoch":0,"time":1}
{"kind":"frobnicate","owner":0}`
	r, err := NewReader(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Replay(r, newCore)
	if err == nil || !strings.Contains(err.Error(), "frobnicate") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not name the unknown kind and its line", err)
	}
}

func TestMultiOwnerGeneration(t *testing.T) {
	buf := genBuf(t, GenConfig{Ranks: 16, Events: 200, Epochs: 3, Owners: 8, OwnerSkew: 0.5, Adjacency: 0.5, SafeOnly: true, Seed: 7})
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	epochEnds := map[int]int{}
	var rec Record
	for {
		err := r.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch rec.Kind {
		case "access":
			seen[rec.Owner] = true
		case "epoch_end":
			epochEnds[rec.Owner]++
		}
	}
	if len(seen) < 2 {
		t.Fatalf("only %d owners saw accesses, want several", len(seen))
	}
	for o := 0; o < 8; o++ {
		if epochEnds[o] != 3 {
			t.Fatalf("owner %d got %d epoch boundaries, want 3", o, epochEnds[o])
		}
	}
	// Skew concentrates on owner 0.
	res := replayBuf(t, buf.Bytes(), ReplayOpts{})
	if res.Race != nil {
		t.Fatalf("safe multi-owner trace replayed a race: %v", res.Race)
	}
}

func TestEvictionPreservesVerdictsAndCounts(t *testing.T) {
	// High skew leaves tail owners cold for whole epochs; eviction must
	// fire and every summary stat must match the unevicted replay.
	cfg := GenConfig{Ranks: 32, Events: 200, Epochs: 6, Owners: 16, OwnerSkew: 0.95, Adjacency: 0.3, SafeOnly: true, Seed: 3}
	buf := genBuf(t, cfg)

	plain := replayBuf(t, buf.Bytes(), ReplayOpts{})
	evict := replayBuf(t, buf.Bytes(), ReplayOpts{EvictCold: 2})
	if evict.Evictions == 0 {
		t.Fatal("eviction policy never fired on a skewed trace")
	}
	if plain.Events != evict.Events || plain.Epochs != evict.Epochs {
		t.Fatalf("evicted replay counts (%d ev, %d ep) differ from plain (%d ev, %d ep)",
			evict.Events, evict.Epochs, plain.Events, plain.Epochs)
	}
	if (plain.Race == nil) != (evict.Race == nil) {
		t.Fatalf("eviction changed the verdict: plain=%v evict=%v", plain.Race, evict.Race)
	}

	// A planted race must survive every memory policy.
	rcfg := cfg
	rcfg.PlantRace = true
	rbuf := genBuf(t, rcfg)
	for _, opts := range []ReplayOpts{{}, {EvictCold: 1}, {EvictCold: 1, Compact: true}, {Batch: 64, EvictCold: 2}} {
		res := replayBuf(t, rbuf.Bytes(), opts)
		if res.Race == nil {
			t.Fatalf("planted race missed under opts %+v", opts)
		}
		if res.Race.Cur.Lo != plantedLo {
			t.Fatalf("wrong race under opts %+v: %+v", opts, res.Race)
		}
	}
}

func TestCompactPreservesVerdicts(t *testing.T) {
	cfg := GenConfig{Ranks: 8, Events: 300, Epochs: 4, Owners: 4, Adjacency: 0.6, SafeOnly: true, Seed: 11}
	buf := genBuf(t, cfg)
	plain := replayBuf(t, buf.Bytes(), ReplayOpts{})
	compact := replayBuf(t, buf.Bytes(), ReplayOpts{Compact: true})
	if plain.Events != compact.Events || plain.Epochs != compact.Epochs || (plain.Race == nil) != (compact.Race == nil) {
		t.Fatalf("compacting replay diverged: %+v vs %+v", compact, plain)
	}
}

func TestReplayRecordsIngestMetrics(t *testing.T) {
	cfg := GenConfig{Ranks: 8, Events: 500, Epochs: 3, Owners: 4, OwnerSkew: 0.8, SafeOnly: true, Seed: 5}
	buf := genBuf(t, cfg)
	size := int64(buf.Len())

	reg := obs.NewRegistry()
	res := replayBuf(t, buf.Bytes(), ReplayOpts{Recorder: reg, EvictCold: 1})

	if got := reg.Total(obs.TraceIngestBytes); got != size {
		t.Errorf("trace_ingest_bytes = %d, want %d", got, size)
	}
	// Records: events + per-owner epoch boundaries.
	want := int64(res.Events + 4*cfg.Epochs)
	if got := reg.Total(obs.TraceIngestRecords); got != want {
		t.Errorf("trace_ingest_records = %d, want %d", got, want)
	}
	if got := reg.Total(obs.AnalyzerEvictions); got != res.Evictions {
		t.Errorf("analyzer_evictions = %d, want %d", got, res.Evictions)
	}
	if got := reg.Total(obs.PeakRSS); got <= 0 {
		t.Errorf("peak_rss_bytes = %d, want > 0", got)
	}
}
