package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/obs/span"
)

// captureAnalyzer records the events it is fed; races never fire.
type captureAnalyzer struct {
	detector.Analyzer
	evs []detector.Event
}

func newCapture() *captureAnalyzer {
	return &captureAnalyzer{Analyzer: detector.NewBaseline()}
}

func (c *captureAnalyzer) Access(ev detector.Event) *detector.Race {
	c.evs = append(c.evs, ev)
	return nil
}

// TestReplayNormalisesTimestamps: records written with zero (or
// non-advancing) Time/CallTime replay with strictly monotonic per-rank
// timestamps, and CallTime is never zero or ahead of Time.
func TestReplayNormalisesTimestamps(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Ranks: 2, Window: "W"})
	if err != nil {
		t.Fatal(err)
	}
	// All four records carry Time 0 — the degenerate trace a hand-written
	// or external generator produces.
	for i := 0; i < 4; i++ {
		ev := detector.Event{Acc: access.Access{
			Interval: interval.Span(uint64(i)*64, 8),
			Type:     access.RMAWrite,
			Rank:     i % 2,
		}}
		if err := w.Access(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := newCapture()
	res, err := ReplayWith(r, func(int) detector.Analyzer { return cap0 }, ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 4 {
		t.Fatalf("replayed %d events, want 4", res.Events)
	}
	last := map[int]uint64{}
	for i, ev := range cap0.evs {
		if ev.Time <= last[ev.Acc.Rank] {
			t.Fatalf("event %d: rank %d time %d did not advance past %d", i, ev.Acc.Rank, ev.Time, last[ev.Acc.Rank])
		}
		if ev.CallTime == 0 || ev.CallTime > ev.Time {
			t.Fatalf("event %d: call time %d vs time %d", i, ev.CallTime, ev.Time)
		}
		last[ev.Acc.Rank] = ev.Time
	}
}

// TestRoundTripMonotonic: a generated trace keeps strictly increasing
// per-rank timestamps through write + replay.
func TestRoundTripMonotonic(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Generate(&buf, GenConfig{Ranks: 4, Events: 200, Epochs: 3, Adjacency: 0.5, SafeOnly: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	capd := newCapture()
	if _, err := ReplayWith(r, func(int) detector.Analyzer { return capd }, ReplayOpts{}); err != nil {
		t.Fatal(err)
	}
	last := map[int]uint64{}
	for i, ev := range capd.evs {
		if ev.Time <= last[ev.Acc.Rank] {
			t.Fatalf("event %d: rank %d timestamp %d not monotonic (last %d)", i, ev.Acc.Rank, ev.Time, last[ev.Acc.Rank])
		}
		last[ev.Acc.Rank] = ev.Time
	}
}

// TestPlantedRaceCarriesFlightLog: replaying a racy generated trace
// with the flight recorder on yields a race whose flight log contains
// both conflicting accesses.
func TestPlantedRaceCarriesFlightLog(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Generate(&buf, GenConfig{Ranks: 2, Events: 50, Epochs: 2, Adjacency: 0.5, SafeOnly: true, PlantRace: true, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayWith(r, func(int) detector.Analyzer { return core.New() }, ReplayOpts{FlightN: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Race == nil {
		t.Fatal("planted race was not detected")
	}
	if len(res.Race.FlightLog) == 0 {
		t.Fatal("race carries no flight log")
	}
	found := 0
	for _, e := range res.Race.FlightLog {
		if e.Kind == detector.FlightAccess && e.Acc.Lo == plantedLo {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("flight log holds %d planted accesses, want both", found)
	}
}

// TestReplaySpansExport: a replay with a logical tracer exports valid
// Chrome trace-event JSON containing access and epoch spans.
func TestReplaySpansExport(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Generate(&buf, GenConfig{Ranks: 2, Events: 20, Epochs: 2, Adjacency: 0.5, SafeOnly: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := span.NewLogicalTracer(r.Header.Ranks, 1<<10)
	if _, err := ReplayWith(r, func(int) detector.Analyzer { return core.New() }, ReplayOpts{Spans: tr}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Fatalf("span export is not a JSON event array: %v", err)
	}
	var accessSpans, epochSpans int
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "epoch":
			epochSpans++
		default:
			accessSpans++
		}
	}
	if accessSpans == 0 || epochSpans != 2 {
		t.Fatalf("got %d access spans and %d epoch spans, want >0 and 2", accessSpans, epochSpans)
	}
}
