package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

func sampleEvent(lo, hi uint64, tp access.Type, rank int) detector.Event {
	return detector.Event{
		Acc: access.Access{
			Interval: interval.New(lo, hi),
			Type:     tp,
			Rank:     rank,
			Epoch:    3,
			Stack:    true,
			Debug:    access.Debug{File: "x.c", Line: 42},
		},
		Time:     7,
		CallTime: 7,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Ranks: 4, Window: "X"})
	if err != nil {
		t.Fatal(err)
	}
	ev := sampleEvent(2, 12, access.RMARead, 1)
	if err := w.Access(2, ev); err != nil {
		t.Fatal(err)
	}
	if err := w.EpochEnd(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.Ranks != 4 || r.Header.Window != "X" {
		t.Fatalf("header = %+v", r.Header)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.Event()
	if err != nil {
		t.Fatal(err)
	}
	// Event now carries an (uncomparable) vector-clock slice; traces
	// never serialise it, so compare with it stripped.
	if got.Clock != nil {
		t.Fatalf("replayed event carries a clock: %+v", got)
	}
	ev.Clock = nil
	if got.Acc != ev.Acc || got.Time != ev.Time || got.CallTime != ev.CallTime || got.Filtered != ev.Filtered {
		t.Fatalf("round trip: got %+v, want %+v", got, ev)
	}
	rec, err = r.Next()
	if err != nil || rec.Kind != "epoch_end" || rec.Owner != 1 {
		t.Fatalf("epoch record = %+v, err %v", rec, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsMissingHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader(`{"kind":"access"}`)); err == nil {
		t.Fatal("missing header accepted")
	}
}

func TestEventValidation(t *testing.T) {
	if _, err := (Record{Kind: "epoch_end"}).Event(); err == nil {
		t.Fatal("non-access record converted")
	}
	if _, err := (Record{Kind: "access", Type: "bogus", Hi: 1}).Event(); err == nil {
		t.Fatal("bogus type accepted")
	}
	if _, err := (Record{Kind: "access", Type: "rma_read", Lo: 5, Hi: 2}).Event(); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestGenerateSafeReplaysClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := Generate(&buf, GenConfig{
		Ranks: 4, Events: 2000, Epochs: 3,
		Adjacency: 0.5, WriteFraction: 0.5, SafeOnly: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6000 {
		t.Fatalf("generated %d events", n)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(r, func(int) detector.Analyzer { return core.New() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Race != nil {
		t.Fatalf("safe trace raced: %v", res.Race)
	}
	if res.Events != 6000 || res.Epochs != 3 {
		t.Fatalf("replay stats %+v", res)
	}
	if res.MaxNodes <= 0 {
		t.Fatal("no nodes recorded")
	}
}

func TestGenerateAdjacencyAffectsMerging(t *testing.T) {
	replayNodes := func(adjacency float64) int {
		var buf bytes.Buffer
		if _, err := Generate(&buf, GenConfig{
			Ranks: 2, Events: 4000, Epochs: 1,
			Adjacency: adjacency, WriteFraction: 0.3, SafeOnly: true, Seed: 5,
		}); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(r, func(int) detector.Analyzer { return core.New() })
		if err != nil {
			t.Fatal(err)
		}
		if res.Race != nil {
			t.Fatalf("race in safe trace: %v", res.Race)
		}
		return res.MaxNodes
	}
	high := replayNodes(0.95)
	low := replayNodes(0.05)
	if high >= low {
		t.Fatalf("adjacency should shrink the tree: adjacency .95 -> %d nodes, .05 -> %d", high, low)
	}
}

func TestReplayStopsAtRace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Ranks: 2, Window: "X"})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Access(0, sampleEvent(0, 7, access.RMAWrite, 0))
	_ = w.Access(0, sampleEvent(0, 7, access.RMAWrite, 1))
	_ = w.Access(0, sampleEvent(100, 107, access.RMAWrite, 0)) // never reached
	_ = w.Flush()

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(r, func(int) detector.Analyzer { return core.New() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Race == nil {
		t.Fatal("race not detected")
	}
	if res.Events != 2 {
		t.Fatalf("replay did not stop at the race: %d events", res.Events)
	}
}

func TestReplayPerRankAnalyzers(t *testing.T) {
	// Owner-private analyzers: records with different owners go to
	// different trees, so equal-address accesses of two owners do not
	// interact.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Ranks: 2, Window: "X"})
	_ = w.Access(0, sampleEvent(0, 7, access.LocalWrite, 0))
	_ = w.Access(1, sampleEvent(0, 7, access.LocalWrite, 1))
	_ = w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	res, err := Replay(r, func(int) detector.Analyzer { count++; return core.New() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Race != nil {
		t.Fatalf("per-rank replay raced: %v", res.Race)
	}
	if count != 2 {
		t.Fatalf("expected 2 analyzers, got %d", count)
	}
}
