// Package trace records and replays streams of instrumented memory
// accesses. Traces decouple workload generation from analysis: the
// rmarace CLI can capture a simulated application's accesses once and
// replay them under every detector, which is also how the deterministic
// detector benchmarks are fed.
//
// The format is JSON Lines: one Event per line, self-describing and
// diff-friendly. A Header line (kind "header") opens the stream.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/obs/span"
)

// Header opens a trace stream.
type Header struct {
	Kind string `json:"kind"` // always "header"
	// Ranks is the world size of the traced run.
	Ranks int `json:"ranks"`
	// Window names the traced window.
	Window string `json:"window"`
}

// Record is one traced event: an access, an epoch boundary, or a
// release (an exclusive MPI_Win_unlock retiring Rank's accesses at
// Owner's analyzer).
type Record struct {
	Kind string `json:"kind"` // "access", "epoch_end" or "release"
	// Owner is the rank whose per-window analyzer processes the record
	// (the window owner); Rank is the rank that issued the access (for
	// kind "release", the rank whose accesses are retired).
	Owner int `json:"owner"`
	Rank  int `json:"rank"`
	// Access fields (kind "access").
	Lo       uint64 `json:"lo,omitempty"`
	Hi       uint64 `json:"hi,omitempty"`
	Type     string `json:"type,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Stack    bool   `json:"stack,omitempty"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Time     uint64 `json:"time,omitempty"`
	CallTime uint64 `json:"call_time,omitempty"`
	Filtered bool   `json:"filtered,omitempty"`
	AccumOp  uint8  `json:"accum_op,omitempty"`
}

// typeNames maps access types to their wire names.
var typeNames = map[access.Type]string{
	access.LocalRead:  "local_read",
	access.LocalWrite: "local_write",
	access.RMARead:    "rma_read",
	access.RMAWrite:   "rma_write",
	access.RMAAccum:   "rma_accum",
}

func typeFromName(s string) (access.Type, error) {
	for t, n := range typeNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown access type %q", s)
}

// Writer serialises events to a stream.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter writes a trace with the given header to w.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h.Kind = "header"
	if err := enc.Encode(h); err != nil {
		return nil, err
	}
	return &Writer{w: bw, enc: enc}, nil
}

// AccessRecord builds the in-memory access record for one event,
// exactly as Access would serialise it. The differential fuzzer's
// renderer uses it to produce record streams without an encode/decode
// round trip.
func AccessRecord(owner int, ev detector.Event) Record {
	return Record{
		Kind:     "access",
		Owner:    owner,
		Rank:     ev.Acc.Rank,
		Lo:       ev.Acc.Lo,
		Hi:       ev.Acc.Hi,
		Type:     typeNames[ev.Acc.Type],
		Epoch:    ev.Acc.Epoch,
		Stack:    ev.Acc.Stack,
		File:     ev.Acc.Debug.File,
		Line:     ev.Acc.Debug.Line,
		Time:     ev.Time,
		CallTime: ev.CallTime,
		Filtered: ev.Filtered,
		AccumOp:  uint8(ev.Acc.AccumOp),
	}
}

// Access appends one access event analysed by owner's tree.
func (t *Writer) Access(owner int, ev detector.Event) error {
	return t.enc.Encode(AccessRecord(owner, ev))
}

// Record appends a pre-built record verbatim (the fuzzer's reproducer
// writer streams rendered records through this).
func (t *Writer) Record(rec Record) error { return t.enc.Encode(rec) }

// EpochEnd appends an epoch boundary for the given owner.
func (t *Writer) EpochEnd(owner int) error {
	return t.enc.Encode(Record{Kind: "epoch_end", Owner: owner})
}

// Release appends a release marker: an exclusive unlock by rank
// retiring its accesses at owner's analyzer.
func (t *Writer) Release(owner, rank int) error {
	return t.enc.Encode(Record{Kind: "release", Owner: owner, Rank: rank})
}

// Flush flushes buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader deserialises a trace stream.
type Reader struct {
	dec    *json.Decoder
	Header Header
}

// NewReader opens a trace stream and reads its header.
func NewReader(r io.Reader) (*Reader, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if h.Kind != "header" {
		return nil, fmt.Errorf("trace: first record is %q, not a header", h.Kind)
	}
	return &Reader{dec: dec, Header: h}, nil
}

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (Record, error) {
	var rec Record
	if err := r.dec.Decode(&rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// Event converts an access record back to a detector event.
func (rec Record) Event() (detector.Event, error) {
	if rec.Kind != "access" {
		return detector.Event{}, fmt.Errorf("trace: record kind %q is not an access", rec.Kind)
	}
	t, err := typeFromName(rec.Type)
	if err != nil {
		return detector.Event{}, err
	}
	if rec.Hi < rec.Lo {
		return detector.Event{}, fmt.Errorf("trace: inverted interval [%d, %d]", rec.Lo, rec.Hi)
	}
	return detector.Event{
		Acc: access.Access{
			Interval: interval.New(rec.Lo, rec.Hi),
			Type:     t,
			Rank:     rec.Rank,
			Epoch:    rec.Epoch,
			Stack:    rec.Stack,
			AccumOp:  access.AccumOp(rec.AccumOp),
			Debug:    access.Debug{File: rec.File, Line: rec.Line},
		},
		Time:     rec.Time,
		CallTime: rec.CallTime,
		Filtered: rec.Filtered,
	}, nil
}

// ReplayResult summarises a replay.
type ReplayResult struct {
	Events   int
	Epochs   int
	MaxNodes int
	Race     *detector.Race
}

// ReplayOpts selects the optional observability of a replay.
type ReplayOpts struct {
	// Spans, when non-nil, receives one logical-time span per replayed
	// record — a timeline of the trace for Perfetto. Build it with
	// span.NewLogicalTracer(header.Ranks, depth).
	Spans *span.Tracer
	// FlightN, when positive, keeps per-owner flight recorders of the
	// last FlightN replayed events; a detected race carries the owner's
	// snapshot like the live engine's does.
	FlightN int
}

// Replay feeds a trace through per-owner analyzers built by
// newAnalyzer and stops at the first race, like the on-the-fly tools.
func Replay(r *Reader, newAnalyzer func(owner int) detector.Analyzer) (ReplayResult, error) {
	return ReplayWith(r, newAnalyzer, ReplayOpts{})
}

// replayTick is the exported logical-time width of one replayed record
// in nanoseconds: records render 1µs apart so Perfetto shows a readable
// timeline regardless of the trace's own counters.
const replayTick = 1000

// ReplayWith is Replay with observability options.
//
// Replayed records get their timestamps normalised per issuing rank:
// traces written without Time/CallTime (or with stale counters) would
// otherwise give every access the same program-order time, collapsing
// the happens-before information span export and the MUST-RMA replay
// rely on. A record whose Time does not advance its rank's last seen
// value is bumped to lastTime+1, and a zero CallTime inherits Time, so
// per-rank timestamps are always strictly monotonic after replay.
func ReplayWith(r *Reader, newAnalyzer func(owner int) detector.Analyzer, opts ReplayOpts) (ReplayResult, error) {
	analyzers := make(map[int]detector.Analyzer)
	flight := make(map[int]*detector.FlightLog)
	get := func(owner int) detector.Analyzer {
		a, ok := analyzers[owner]
		if !ok {
			a = newAnalyzer(owner)
			analyzers[owner] = a
			if opts.FlightN > 0 {
				flight[owner] = detector.NewFlightLog(opts.FlightN)
			}
		}
		return a
	}
	lastTime := make(map[int]uint64) // per issuing rank
	epochT0 := make(map[int]int64)   // per owner, logical span start
	epochN := make(map[int]int64)    // per owner, completed epochs
	var res ReplayResult
	var step int64 // logical clock: one tick per replayed record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		step++
		switch rec.Kind {
		case "access":
			ev, err := rec.Event()
			if err != nil {
				return res, err
			}
			if ev.Time <= lastTime[rec.Rank] {
				ev.Time = lastTime[rec.Rank] + 1
			}
			lastTime[rec.Rank] = ev.Time
			if ev.CallTime == 0 || ev.CallTime > ev.Time {
				ev.CallTime = ev.Time
			}
			res.Events++
			if opts.Spans.Enabled() {
				if _, ok := epochT0[rec.Owner]; !ok {
					epochT0[rec.Owner] = step * replayTick
				}
				opts.Spans.Record(rec.Rank, span.Record{
					Kind:  replaySpanKind(ev.Acc.Type),
					Start: step * replayTick, Dur: replayTick * 4 / 5,
					A: int64(ev.Acc.Lo), B: int64(ev.Acc.Hi - ev.Acc.Lo + 1),
				})
			}
			a := get(rec.Owner) // ensures the owner's flight log exists
			flight[rec.Owner].Access(ev.Acc)
			if race := a.Access(ev); race != nil {
				// The replay loop is the layer that knows which owner's
				// analyzer held the conflict and which window was traced;
				// stamp them like the live engine does (a sharded analyzer
				// has already stamped its shard).
				p := race.EnsureProv()
				p.Owner = rec.Owner
				if p.Window == "" {
					p.Window = r.Header.Window
				}
				if race.FlightLog == nil {
					race.FlightLog = flight[rec.Owner].Snapshot()
				}
				res.Race = race
				return res, nil
			}
		case "release":
			a := get(rec.Owner)
			flight[rec.Owner].Mark(detector.FlightRelease, rec.Rank)
			a.Release(rec.Rank)
		case "epoch_end":
			res.Epochs++
			a := get(rec.Owner)
			flight[rec.Owner].Mark(detector.FlightEpochEnd, rec.Owner)
			a.EpochEnd()
			if opts.Spans.Enabled() {
				t0, ok := epochT0[rec.Owner]
				if !ok {
					t0 = (step - 1) * replayTick
				}
				epochN[rec.Owner]++
				opts.Spans.Record(rec.Owner, span.Record{
					Kind:  span.KindEpoch,
					Start: t0, Dur: step*replayTick - t0,
					A: epochN[rec.Owner], B: int64(r.Header.Ranks),
				})
				delete(epochT0, rec.Owner)
			}
		default:
			return res, fmt.Errorf("trace: unknown record kind %q", rec.Kind)
		}
	}
	for _, a := range analyzers {
		if n := a.MaxNodes(); n > res.MaxNodes {
			res.MaxNodes = n
		}
	}
	return res, nil
}

// replaySpanKind maps a replayed access type to its span kind.
func replaySpanKind(t access.Type) span.Kind {
	switch t {
	case access.RMAWrite:
		return span.KindPut
	case access.RMARead:
		return span.KindGet
	case access.RMAAccum:
		return span.KindAccum
	}
	return span.KindLocal
}
