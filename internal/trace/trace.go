// Package trace records and replays streams of instrumented memory
// accesses. Traces decouple workload generation from analysis: the
// rmarace CLI can capture a simulated application's accesses once and
// replay them under every detector, which is also how the deterministic
// detector benchmarks are fed.
//
// Two wire formats carry the same records. The original format is JSON
// Lines: one Event per line, self-describing and diff-friendly, with a
// Header line (kind "header") opening the stream. Package
// internal/tracebin adds a length-prefixed varint binary format for
// multi-million-event traces; both implement the Source interface, and
// Replay consumes either as a bounded-memory stream.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"rmarace/internal/access"
	"rmarace/internal/depot"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/obs/span"
)

// Header opens a trace stream.
type Header struct {
	Kind string `json:"kind"` // always "header"
	// Ranks is the world size of the traced run.
	Ranks int `json:"ranks"`
	// Window names the traced window.
	Window string `json:"window"`
}

// Record is one traced event: an access, an epoch boundary, or a
// release (an exclusive MPI_Win_unlock retiring Rank's accesses at
// Owner's analyzer).
type Record struct {
	Kind string `json:"kind"` // "access", "epoch_end" or "release"
	// Owner is the rank whose per-window analyzer processes the record
	// (the window owner); Rank is the rank that issued the access (for
	// kind "release", the rank whose accesses are retired).
	Owner int `json:"owner"`
	Rank  int `json:"rank"`
	// Access fields (kind "access").
	Lo       uint64 `json:"lo,omitempty"`
	Hi       uint64 `json:"hi,omitempty"`
	Type     string `json:"type,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Stack    bool   `json:"stack,omitempty"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Time     uint64 `json:"time,omitempty"`
	CallTime uint64 `json:"call_time,omitempty"`
	Filtered bool   `json:"filtered,omitempty"`
	AccumOp  uint8  `json:"accum_op,omitempty"`
	// StackID is the access's interned call-stack id in the process-wide
	// stack depot (package depot), when the traced run captured stacks.
	// Depot ids are process-local: a replay resolves them only against
	// the depot of the capturing process, so cross-process replays treat
	// the id as an opaque site label.
	StackID uint32 `json:"stack_id,omitempty"`
}

// typeNames maps access types to their wire names.
var typeNames = map[access.Type]string{
	access.LocalRead:  "local_read",
	access.LocalWrite: "local_write",
	access.RMARead:    "rma_read",
	access.RMAWrite:   "rma_write",
	access.RMAAccum:   "rma_accum",
}

func typeFromName(s string) (access.Type, error) {
	for t, n := range typeNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown access type %q", s)
}

// TypeName returns the wire name of an access type ("rma_write", ...),
// or "" for an undefined type. The binary codec (internal/tracebin)
// maps between the JSON names and its one-byte type field through this
// pair so both formats stay mutually lossless.
func TypeName(t access.Type) string { return typeNames[t] }

// TypeFromName resolves a wire name back to its access type.
func TypeFromName(s string) (access.Type, error) { return typeFromName(s) }

// Sink is the record-writing side shared by both wire formats: the JSON
// Writer here and the binary tracebin.Writer. Generators (Generate, the
// fuzzer's reproducer writer, rmarace convert) target the interface so
// they can emit either format.
type Sink interface {
	// Access appends one access event analysed by owner's tree.
	Access(owner int, ev detector.Event) error
	// EpochEnd appends an epoch boundary for the given owner.
	EpochEnd(owner int) error
	// Release appends a release marker: an exclusive unlock by rank
	// retiring its accesses at owner's analyzer.
	Release(owner, rank int) error
	// Record appends a pre-built record verbatim.
	Record(rec Record) error
	// Flush flushes buffered output.
	Flush() error
}

// Writer serialises events to a JSON Lines stream.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter writes a trace with the given header to w.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h.Kind = "header"
	if err := enc.Encode(h); err != nil {
		return nil, err
	}
	return &Writer{w: bw, enc: enc}, nil
}

// AccessRecord builds the in-memory access record for one event,
// exactly as Access would serialise it. The differential fuzzer's
// renderer uses it to produce record streams without an encode/decode
// round trip.
func AccessRecord(owner int, ev detector.Event) Record {
	return Record{
		Kind:     "access",
		Owner:    owner,
		Rank:     ev.Acc.Rank,
		Lo:       ev.Acc.Lo,
		Hi:       ev.Acc.Hi,
		Type:     typeNames[ev.Acc.Type],
		Epoch:    ev.Acc.Epoch,
		Stack:    ev.Acc.Stack,
		File:     ev.Acc.Debug.File,
		Line:     ev.Acc.Debug.Line,
		Time:     ev.Time,
		CallTime: ev.CallTime,
		Filtered: ev.Filtered,
		AccumOp:  uint8(ev.Acc.AccumOp),
		StackID:  uint32(ev.Acc.StackID),
	}
}

// Access appends one access event analysed by owner's tree.
func (t *Writer) Access(owner int, ev detector.Event) error {
	return t.enc.Encode(AccessRecord(owner, ev))
}

// Record appends a pre-built record verbatim (the fuzzer's reproducer
// writer streams rendered records through this).
func (t *Writer) Record(rec Record) error { return t.enc.Encode(rec) }

// EpochEnd appends an epoch boundary for the given owner.
func (t *Writer) EpochEnd(owner int) error {
	return t.enc.Encode(Record{Kind: "epoch_end", Owner: owner})
}

// Release appends a release marker: an exclusive unlock by rank
// retiring its accesses at owner's analyzer.
func (t *Writer) Release(owner, rank int) error {
	return t.enc.Encode(Record{Kind: "release", Owner: owner, Rank: rank})
}

// Flush flushes buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

var _ Sink = (*Writer)(nil)

// Source is the streaming side shared by both wire formats: a trace
// header plus a cursor over its records. Read fills the caller's record
// in place so a replay loop runs on one reusable buffer; Pos locates
// the last-read record for error reports, and BytesRead feeds the
// ingest throughput metrics.
type Source interface {
	// Head returns the stream's header.
	Head() Header
	// Read decodes the next record into rec, returning io.EOF at the
	// end of the stream. Decode errors carry the record's position
	// (line or byte offset) in their message.
	Read(rec *Record) error
	// Pos describes the position of the record Read returned last
	// ("line 42", "record 17 (offset 1289)"), for error context.
	Pos() string
	// BytesRead returns how many input bytes have been consumed.
	BytesRead() int64
}

// Reader deserialises a JSON Lines trace stream. It reads line by line,
// so decode errors report the 1-based line (the header is line 1) and
// byte offset of the malformed record.
type Reader struct {
	r      *bufio.Reader
	Header Header
	line   int   // line number of the last record returned
	off    int64 // byte offset where the last record started
	read   int64 // total bytes consumed
}

// NewReader opens a JSON trace stream and reads its header.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	raw, err := tr.nextLine()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: reading header: unexpected EOF")
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if err := json.Unmarshal(raw, &tr.Header); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if tr.Header.Kind != "header" {
		return nil, fmt.Errorf("trace: first record is %q, not a header", tr.Header.Kind)
	}
	return tr, nil
}

// nextLine returns the next non-empty line, tracking position.
func (r *Reader) nextLine() ([]byte, error) {
	for {
		r.off = r.read
		r.line++
		raw, err := r.r.ReadBytes('\n')
		r.read += int64(len(raw))
		raw = bytes.TrimSpace(raw)
		if len(raw) > 0 {
			// A final line without a newline still decodes; a read error
			// after a partial line surfaces on the next call.
			return raw, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Head implements Source.
func (r *Reader) Head() Header { return r.Header }

// Read implements Source: it decodes the next record into rec, or
// returns io.EOF.
func (r *Reader) Read(rec *Record) error {
	raw, err := r.nextLine()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: line %d (offset %d): %w", r.line, r.off, err)
	}
	*rec = Record{}
	if err := json.Unmarshal(raw, rec); err != nil {
		return fmt.Errorf("trace: line %d (offset %d): %w", r.line, r.off, err)
	}
	return nil
}

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (Record, error) {
	var rec Record
	err := r.Read(&rec)
	return rec, err
}

// Pos implements Source.
func (r *Reader) Pos() string { return fmt.Sprintf("line %d (offset %d)", r.line, r.off) }

// BytesRead implements Source.
func (r *Reader) BytesRead() int64 { return r.read }

var _ Source = (*Reader)(nil)

// Event converts an access record back to a detector event.
func (rec Record) Event() (detector.Event, error) {
	if rec.Kind != "access" {
		return detector.Event{}, fmt.Errorf("trace: record kind %q is not an access", rec.Kind)
	}
	t, err := typeFromName(rec.Type)
	if err != nil {
		return detector.Event{}, err
	}
	if rec.Hi < rec.Lo {
		return detector.Event{}, fmt.Errorf("trace: inverted interval [%d, %d]", rec.Lo, rec.Hi)
	}
	return detector.Event{
		Acc: access.Access{
			Interval: interval.New(rec.Lo, rec.Hi),
			Type:     t,
			Rank:     rec.Rank,
			Epoch:    rec.Epoch,
			Stack:    rec.Stack,
			StackID:  depot.ID(rec.StackID),
			AccumOp:  access.AccumOp(rec.AccumOp),
			Debug:    access.Debug{File: rec.File, Line: rec.Line},
		},
		Time:     rec.Time,
		CallTime: rec.CallTime,
		Filtered: rec.Filtered,
	}, nil
}

// replaySpanKind maps a replayed access type to its span kind.
func replaySpanKind(t access.Type) span.Kind {
	switch t {
	case access.RMAWrite:
		return span.KindPut
	case access.RMARead:
		return span.KindGet
	case access.RMAAccum:
		return span.KindAccum
	}
	return span.KindLocal
}
