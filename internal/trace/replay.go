package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"

	"rmarace/internal/detector"
	"rmarace/internal/engine"
	"rmarace/internal/interval"
	"rmarace/internal/obs"
	"rmarace/internal/obs/olog"
	"rmarace/internal/obs/span"
)

// ReplayResult summarises a replay.
type ReplayResult struct {
	Events   int
	Epochs   int
	MaxNodes int
	Race     *detector.Race
	// Evictions counts cold (owner, window) analyzers the bounded-memory
	// policy retired mid-stream (ReplayOpts.EvictCold).
	Evictions int64
}

// ReplayOpts selects the optional observability and the memory policy
// of a replay.
type ReplayOpts struct {
	// Spans, when non-nil, receives one logical-time span per replayed
	// record — a timeline of the trace for Perfetto. Build it with
	// span.NewLogicalTracer(header.Ranks, depth).
	Spans *span.Tracer
	// FlightN, when positive, keeps per-owner flight recorders of the
	// last FlightN replayed events; a detected race carries the owner's
	// snapshot like the live engine's does.
	FlightN int
	// Batch coalesces up to Batch consecutive access events per owner
	// into one pooled event buffer fed through detector.AccessBatch —
	// the engine's notification-batch shape, which unlocks the
	// contribution's adjacent-merge fast path on replays too. Values
	// below 2 keep the per-event path. Batches are flushed before any
	// synchronisation record of their owner, so verdicts are identical
	// to unbatched replay. Span tracing and the flight recorder are
	// per-event observers, so either forces the per-event path.
	Batch int
	// EvictCold, when positive, retires the analyzer state of a cold
	// (owner, window): an owner whose analyzer went EvictCold
	// consecutive epochs without seeing a single access — and whose
	// store is empty, which an epoch boundary guarantees for the
	// tree-based analyzers — is dropped and lazily rebuilt on its next
	// record. Eviction is verdict-preserving exactly because only empty
	// post-epoch state is dropped; it bounds the resident analyzer set
	// to the stream's hot owners on many-rank traces.
	EvictCold int
	// Compact, when set, releases retained analyzer capacity (store
	// node free lists, scratch buffers) at every epoch boundary through
	// the detector.Compacter capability. Steady-state replays trade the
	// free lists' zero-allocation refill for a flat memory profile —
	// the bounded-RSS mode of the 10k-rank sweep.
	Compact bool
	// Recorder receives the replay's ingest metrics: trace_ingest_bytes
	// and trace_ingest_records counters, the analyzer_evictions counter
	// and the peak_rss_bytes high-water mark (sampled live heap). Nil
	// disables recording.
	Recorder obs.Recorder
	// Progress, when non-nil, is the lock-free probe the replay
	// publishes live progress through: bytes/records consumed, events
	// analysed, epochs completed, races and evictions so far, plus the
	// Ingesting -> Draining stage transition at source EOF (or an early
	// race stop). The daemon's SSE event stream reads it; sampling is
	// a handful of atomic stores every progressEvery records, so an
	// unwatched replay pays one nil check per record.
	Progress *obs.Progress
	// Log, when non-nil, receives the replay's structured log events:
	// eviction and compaction at Debug, the stage transition and final
	// summary at Debug. Callers wanting session correlation bind their
	// context attributes first (olog.Bind); nil discards.
	Log *slog.Logger
}

// Replay feeds a trace through per-owner analyzers built by
// newAnalyzer and stops at the first race, like the on-the-fly tools.
func Replay(r *Reader, newAnalyzer func(owner int) detector.Analyzer) (ReplayResult, error) {
	return ReplayStream(r, newAnalyzer, ReplayOpts{})
}

// ReplayWith is Replay with observability options.
func ReplayWith(r *Reader, newAnalyzer func(owner int) detector.Analyzer, opts ReplayOpts) (ReplayResult, error) {
	return ReplayStream(r, newAnalyzer, opts)
}

// replayTick is the exported logical-time width of one replayed record
// in nanoseconds: records render 1µs apart so Perfetto shows a readable
// timeline regardless of the trace's own counters.
const replayTick = 1000

// ingestFlushEvery is how many records the replay loop batches between
// recorder updates, and peakSampleEvery how many between live-heap
// samples (runtime.ReadMemStats briefly stops the world, so it runs at
// a coarser cadence).
const (
	ingestFlushEvery = 4096
	peakSampleEvery  = 1 << 16
)

// progressEvery is how many records the replay loop lets pass between
// progress-probe publications. Finer than the recorder cadence so a
// watcher of a slow chunked upload sees the counters move, still
// coarse enough that the publication (a few atomic stores) vanishes in
// the decode cost.
const progressEvery = 256

// ownerState is one owner's resident replay state: its analyzer, the
// optional flight recorder, the pending pooled event batch, and the
// cold-epoch counter of the eviction policy.
type ownerState struct {
	a       detector.Analyzer
	flight  *detector.FlightLog
	pending []detector.Event
	// sawAccess records whether the owner saw any access since its last
	// epoch boundary; coldEpochs counts consecutive accessless epochs.
	sawAccess  bool
	coldEpochs int
}

// ReplayStream feeds a record stream — JSON or binary, anything
// implementing Source — through per-owner analyzers built by
// newAnalyzer, stopping at the first race like the on-the-fly tools.
// The stream is consumed with bounded memory: one reusable record
// buffer, pooled event batches (ReplayOpts.Batch), and optionally the
// cold-owner eviction and epoch-boundary compaction policies.
//
// Replayed records get their timestamps normalised per issuing rank:
// traces written without Time/CallTime (or with stale counters) would
// otherwise give every access the same program-order time, collapsing
// the happens-before information span export and the MUST-RMA replay
// rely on. A record whose Time does not advance its rank's last seen
// value is bumped to lastTime+1, and a zero CallTime inherits Time, so
// per-rank timestamps are always strictly monotonic after replay.
func ReplayStream(src Source, newAnalyzer func(owner int) detector.Analyzer, opts ReplayOpts) (ReplayResult, error) {
	batch := opts.Batch
	if batch < 1 || opts.FlightN > 0 || opts.Spans.Enabled() {
		// Spans and the flight recorder observe record order; batching
		// would reorder analysis relative to them.
		batch = 1
	}
	rec := obs.OrDisabled(opts.Recorder)
	recOn := rec.Enabled()
	prog := opts.Progress
	log := olog.Or(opts.Log)
	// The debug-enabled check is hoisted: the loop below must pay one
	// cached bool per rare event, not a handler call per record.
	logOn := log.Enabled(context.Background(), slog.LevelDebug)
	prog.SetStage(obs.StageIngesting)
	owners := make(map[int]*ownerState)
	get := func(owner int) *ownerState {
		st, ok := owners[owner]
		if !ok {
			st = &ownerState{a: newAnalyzer(owner)}
			if batch > 1 {
				st.pending = engine.GetEventBuf()
			}
			if opts.FlightN > 0 {
				st.flight = detector.NewFlightLog(opts.FlightN)
			}
			owners[owner] = st
		}
		return st
	}
	var res ReplayResult
	flush := func(st *ownerState) *detector.Race {
		if len(st.pending) == 0 {
			return nil
		}
		race := detector.AccessBatch(st.a, st.pending)
		st.pending = st.pending[:0]
		return race
	}
	// finish folds one owner's high-water mark into the result and
	// returns its event buffer to the pool.
	finish := func(st *ownerState) {
		if n := st.a.MaxNodes(); n > res.MaxNodes {
			res.MaxNodes = n
		}
		if st.pending != nil {
			engine.PutEventBuf(st.pending)
			st.pending = nil
		}
	}
	recordPeak := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rec.SetMax(obs.PeakRSS, 0, int64(ms.HeapAlloc))
	}

	lastTime := make(map[int]uint64) // per issuing rank
	epochT0 := make(map[int]int64)   // per owner, logical span start
	epochN := make(map[int]int64)    // per owner, completed epochs
	var step int64         // logical clock: one tick per replayed record
	var flushedBytes int64 // ingest bytes already credited to the recorder
	// finishIngest credits the counters' unflushed remainder and takes a
	// final live-heap sample; it runs at EOF and on an early race stop.
	finishIngest := func() {
		if prog != nil {
			prog.Update(src.BytesRead(), step, int64(res.Events), int64(res.Epochs))
			prog.SetStage(obs.StageDraining)
		}
		if !recOn {
			return
		}
		rec.Add(obs.TraceIngestRecords, 0, step%ingestFlushEvery)
		rec.Add(obs.TraceIngestBytes, 0, src.BytesRead()-flushedBytes)
		flushedBytes = src.BytesRead()
		recordPeak()
	}
	stamp := func(owner int, st *ownerState, race *detector.Race) ReplayResult {
		prog.AddRace()
		if logOn {
			log.Debug("race detected", "owner", owner, "records", step, "events", res.Events)
		}
		// The replay loop is the layer that knows which owner's analyzer
		// held the conflict and which window was traced; stamp them like
		// the live engine does (a sharded analyzer has already stamped
		// its shard).
		p := race.EnsureProv()
		p.Owner = owner
		if p.Window == "" {
			p.Window = src.Head().Window
		}
		if race.FlightLog == nil && st.flight != nil {
			race.FlightLog = st.flight.Snapshot()
		}
		res.Race = race
		finishIngest()
		return res
	}
	var r Record
	for {
		err := src.Read(&r)
		if err == io.EOF {
			// The source is exhausted: everything from here on is the
			// analysis drain (pending batches, final flushes). Mark the
			// stage transition now so stage accounting attributes the
			// flush time to draining, not ingest.
			if prog != nil {
				prog.Update(src.BytesRead(), step, int64(res.Events), int64(res.Epochs))
				prog.SetStage(obs.StageDraining)
			}
			break
		}
		if err != nil {
			return res, err
		}
		step++
		if prog != nil && step%progressEvery == 0 {
			prog.Update(src.BytesRead(), step, int64(res.Events), int64(res.Epochs))
		}
		if recOn {
			if step%ingestFlushEvery == 0 {
				rec.Add(obs.TraceIngestRecords, 0, ingestFlushEvery)
				b := src.BytesRead()
				rec.Add(obs.TraceIngestBytes, 0, b-flushedBytes)
				flushedBytes = b
			}
			if step%peakSampleEvery == 0 {
				recordPeak()
			}
		}
		switch r.Kind {
		case "access":
			ev, err := r.Event()
			if err != nil {
				return res, fmt.Errorf("trace: %s: %w", src.Pos(), err)
			}
			if ev.Time <= lastTime[r.Rank] {
				ev.Time = lastTime[r.Rank] + 1
			}
			lastTime[r.Rank] = ev.Time
			if ev.CallTime == 0 || ev.CallTime > ev.Time {
				ev.CallTime = ev.Time
			}
			res.Events++
			if opts.Spans.Enabled() {
				if _, ok := epochT0[r.Owner]; !ok {
					epochT0[r.Owner] = step * replayTick
				}
				opts.Spans.Record(r.Rank, span.Record{
					Kind:  replaySpanKind(ev.Acc.Type),
					Start: step * replayTick, Dur: replayTick * 4 / 5,
					A: int64(ev.Acc.Lo), B: int64(ev.Acc.Hi - ev.Acc.Lo + 1),
				})
			}
			st := get(r.Owner)
			st.sawAccess = true
			if st.flight != nil {
				st.flight.Access(ev.Acc)
			}
			if batch > 1 {
				st.pending = append(st.pending, ev)
				if len(st.pending) >= batch {
					if race := flush(st); race != nil {
						return stamp(r.Owner, st, race), nil
					}
				}
				continue
			}
			if race := st.a.Access(ev); race != nil {
				return stamp(r.Owner, st, race), nil
			}
		case "release":
			st := get(r.Owner)
			if race := flush(st); race != nil {
				return stamp(r.Owner, st, race), nil
			}
			if st.flight != nil {
				st.flight.Mark(detector.FlightRelease, r.Rank)
			}
			st.a.Release(r.Rank)
		case "complete":
			st := get(r.Owner)
			if race := flush(st); race != nil {
				return stamp(r.Owner, st, race), nil
			}
			if st.flight != nil {
				st.flight.Mark(detector.FlightComplete, r.Rank)
			}
			detector.CompleteRequest(st.a, r.Rank, interval.New(r.Lo, r.Hi))
		case "epoch_end":
			res.Epochs++
			st := get(r.Owner)
			if race := flush(st); race != nil {
				return stamp(r.Owner, st, race), nil
			}
			if st.flight != nil {
				st.flight.Mark(detector.FlightEpochEnd, r.Owner)
			}
			st.a.EpochEnd()
			if opts.Spans.Enabled() {
				t0, ok := epochT0[r.Owner]
				if !ok {
					t0 = (step - 1) * replayTick
				}
				epochN[r.Owner]++
				opts.Spans.Record(r.Owner, span.Record{
					Kind:  span.KindEpoch,
					Start: t0, Dur: step*replayTick - t0,
					A: epochN[r.Owner], B: int64(src.Head().Ranks),
				})
				delete(epochT0, r.Owner)
			}
			if opts.Compact {
				detector.Compact(st.a)
				if logOn {
					log.Debug("analyzer compacted", "owner", r.Owner, "epoch", res.Epochs)
				}
			}
			if opts.EvictCold > 0 {
				if st.sawAccess {
					st.coldEpochs = 0
				} else {
					st.coldEpochs++
				}
				st.sawAccess = false
				// Only empty post-epoch state may go: EpochEnd cleared the
				// tree-based stores, but an analyzer retaining entries
				// across epochs (shadow cells, clock state) stays resident.
				if st.coldEpochs >= opts.EvictCold && st.a.Nodes() == 0 {
					finish(st)
					delete(owners, r.Owner)
					res.Evictions++
					prog.AddEviction()
					if recOn {
						rec.Add(obs.AnalyzerEvictions, 0, 1)
					}
					if logOn {
						log.Debug("analyzer evicted", "owner", r.Owner, "cold_epochs", st.coldEpochs, "evictions", res.Evictions)
					}
				}
			}
		default:
			return res, fmt.Errorf("trace: %s: unknown record kind %q", src.Pos(), r.Kind)
		}
	}
	// Final flush in deterministic owner order, then fold the survivors.
	ids := make([]int, 0, len(owners))
	for o := range owners {
		ids = append(ids, o)
	}
	sort.Ints(ids)
	for _, o := range ids {
		st := owners[o]
		if race := flush(st); race != nil {
			return stamp(o, st, race), nil
		}
	}
	for _, o := range ids {
		finish(owners[o])
	}
	finishIngest()
	if logOn {
		log.Debug("replay drained", "records", step, "events", res.Events, "epochs", res.Epochs, "evictions", res.Evictions)
	}
	return res, nil
}
