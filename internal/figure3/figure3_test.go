package figure3

import (
	"bytes"
	"strings"
	"testing"
)

func cell(t *testing.T, first Op, issuer Issuer, second Op) Cell {
	t.Helper()
	return Compute(first, Column{Issuer: issuer, Op: second})
}

// TestPaperNamedCells checks the cells the paper describes explicitly.
func TestPaperNamedCells(t *testing.T) {
	// "The example Figure 2a is represented by the cell (O1-GET,
	// ORIGIN1-LOAD). '01' means that an error can occur only at origin
	// side."
	c := cell(t, Get, Origin1, Load)
	if got := c.String(); got != "01 01" {
		t.Errorf("(O1-GET, ORIGIN1-LOAD) = %q, want \"01 01\"", got)
	}

	// "Figure 2b is represented by the cell (O1-GET, TARGET-GET).
	// Depending on if the value is read and written in or out of the
	// window, an error can or cannot occur."
	c = cell(t, Get, Target, Get)
	if got := c.String(); got != "11 00" {
		t.Errorf("(O1-GET, TARGET-GET) = %q, want \"11 00\"", got)
	}
}

func TestDerivedCells(t *testing.T) {
	cases := []struct {
		first  Op
		issuer Issuer
		second Op
		want   string
	}{
		// Put reads b1; a later load of b1 is read-read: no error.
		{Put, Origin1, Load, "00 00"},
		// Put then store of the source buffer races at origin.
		{Put, Origin1, Store, "01 01"},
		// Get writes b1; a second get into b1 races at origin.
		{Get, Origin1, Get, "01 01"},
		// Target stores into the region a put writes: target-side error.
		{Put, Target, Store, "10 10"},
		// Target loads a region a get reads: no error anywhere.
		{Get, Target, Load, "00 00"},
		// Second origin putting into the same region as the first put:
		// target-side error always; origin side only reachable in
		// window.
		{Put, Origin2, Put, "11 10"},
		// Two gets of the same region from different origins: reads at
		// target; at origin, O2 can read b1 (written by the first get)
		// only when b1 is in the window.
		{Get, Origin2, Get, "01 00"},
	}
	for _, tc := range cases {
		got := cell(t, tc.first, tc.issuer, tc.second).String()
		if got != tc.want {
			t.Errorf("(O1-%v, %v-%v) = %q, want %q", tc.first, tc.issuer, tc.second, got, tc.want)
		}
	}
}

// TestReadOnlyColumnsNeverError: a pair of reads can never produce an
// error bit.
func TestReadOnlyColumnsNeverError(t *testing.T) {
	// First op GET reads X; TARGET-LOAD and ORIGIN2-GET read X too.
	for _, col := range []Column{{Target, Load}, {Origin2, Get}} {
		c := Compute(Get, col)
		if c.InTarget || c.OutTarget {
			t.Errorf("(O1-GET, %v-%v) target bit set for read-read", col.Issuer, col.Op)
		}
	}
}

// TestOutWindowNeverExceedsInWindow: leaving the window can only remove
// reachability, never add errors.
func TestOutWindowNeverExceedsInWindow(t *testing.T) {
	for _, first := range Rows() {
		for _, col := range Columns() {
			c := Compute(first, col)
			if c.OutTarget && !c.InTarget {
				t.Errorf("(O1-%v, %v-%v): out-window target error without in-window", first, col.Issuer, col.Op)
			}
			if c.OutOrigin && !c.InOrigin {
				t.Errorf("(O1-%v, %v-%v): out-window origin error without in-window", first, col.Issuer, col.Op)
			}
		}
	}
}

// TestPutRowDominatesGetRowAtTarget: the first operation PUT writes the
// target region, so every column that reaches the target region errs at
// least as often as under GET (which only reads it).
func TestPutRowDominatesGetRowAtTarget(t *testing.T) {
	for _, col := range Columns() {
		g := Compute(Get, col)
		p := Compute(Put, col)
		if g.InTarget && !p.InTarget {
			t.Errorf("column %v-%v: GET errs at target but PUT does not", col.Issuer, col.Op)
		}
	}
}

func TestTableShape(t *testing.T) {
	table := Table()
	if len(table) != 2 || len(table[0]) != 10 {
		t.Fatalf("table shape %dx%d, want 2x10", len(table), len(table[0]))
	}
}

func TestWrite(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf)
	out := buf.String()
	for _, want := range []string{"O1-GET", "O1-PUT", "ORIGIN 1", "TARGET", "ORIGIN 2", "11 00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
