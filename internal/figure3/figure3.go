// Package figure3 regenerates Figure 3 of the paper: the table of data
// race situations with three processes. The first operation is a
// one-sided communication issued by ORIGIN 1 towards TARGET; the second
// operation is issued by ORIGIN 1 itself, by TARGET, or by a third
// process ORIGIN 2. Each cell holds two bits — the left bit marks a
// possible consistency error at TARGET side, the right bit at ORIGIN 1
// side — evaluated for two placements ("In window": the operations'
// local buffers lie inside their process's window, so remote operations
// can reach them; "Out window": they lie outside).
//
// The derivation uses the same access model as the detectors: an
// MPI_Get is an RMA_Read of the target region and an RMA_Write of the
// origin buffer, an MPI_Put the reverse, and two overlapping accesses
// conflict when at least one is RMA and at least one writes (§2.2).
// Because the first operation is always a one-sided call, the §5.2
// program-order exemption (local access *before* an RMA call) never
// applies inside this table.
package figure3

import (
	"fmt"
	"io"

	"rmarace/internal/access"
)

// Op is an operation kind appearing in the table.
type Op int

// The operation kinds of Figure 3.
const (
	Get Op = iota
	Put
	Load
	Store
)

// String returns the column label.
func (o Op) String() string {
	switch o {
	case Get:
		return "GET"
	case Put:
		return "PUT"
	case Load:
		return "LOAD"
	case Store:
		return "STORE"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Issuer identifies who issues the second operation.
type Issuer int

// The three issuers of Figure 3's column groups.
const (
	Origin1 Issuer = iota
	Target
	Origin2
)

// String returns the column-group label.
func (i Issuer) String() string {
	switch i {
	case Origin1:
		return "ORIGIN 1"
	case Target:
		return "TARGET"
	case Origin2:
		return "ORIGIN 2"
	}
	return fmt.Sprintf("Issuer(%d)", int(i))
}

// Column is one column of the table.
type Column struct {
	Issuer Issuer
	Op     Op
}

// Columns returns Figure 3's ten columns in order.
func Columns() []Column {
	return []Column{
		{Origin1, Get}, {Origin1, Put}, {Origin1, Load}, {Origin1, Store},
		{Target, Get}, {Target, Put}, {Target, Load}, {Target, Store},
		{Origin2, Get}, {Origin2, Put},
	}
}

// Rows returns the two first-operation rows (O1-GET, O1-PUT).
func Rows() []Op { return []Op{Get, Put} }

// Cell is one table entry: the two error bits for both placements.
type Cell struct {
	// InTarget/InOrigin: error possible at target/origin side when
	// local buffers are inside windows.
	InTarget, InOrigin bool
	// OutTarget/OutOrigin: the same with local buffers outside windows.
	OutTarget, OutOrigin bool
}

// String renders the cell as the figure does: "tb" per placement, left
// bit = target side, right bit = origin side, in-window first.
func (c Cell) String() string {
	f := func(t, o bool) string {
		s := []byte{'0', '0'}
		if t {
			s[0] = '1'
		}
		if o {
			s[1] = '1'
		}
		return string(s)
	}
	return f(c.InTarget, c.InOrigin) + " " + f(c.OutTarget, c.OutOrigin)
}

// firstOpType returns the access type the first operation (by ORIGIN 1)
// performs at the given side: its local buffer b1 at ORIGIN 1, or the
// window region X at TARGET.
func firstOpType(first Op, atOrigin bool) access.Type {
	switch first {
	case Get: // reads X, writes b1
		if atOrigin {
			return access.RMAWrite
		}
		return access.RMARead
	case Put: // reads b1, writes X
		if atOrigin {
			return access.RMARead
		}
		return access.RMAWrite
	}
	panic("figure3: first operation must be GET or PUT")
}

// secondOpType returns the access type the second operation would
// perform at the given side, and whether it can reach that location at
// all under the given placement. The origin side is ORIGIN 1's buffer
// b1; the target side is the region X of TARGET's window.
func secondOpType(col Column, atOrigin, inWindow bool) (access.Type, bool) {
	switch col.Issuer {
	case Origin1:
		if atOrigin {
			// b1 belongs to ORIGIN 1: every operation kind can use it
			// (as plain memory or as the one-sided call's local
			// buffer), whether or not it lies in the window.
			switch col.Op {
			case Get:
				return access.RMAWrite, true
			case Put:
				return access.RMARead, true
			case Load:
				return access.LocalRead, true
			case Store:
				return access.LocalWrite, true
			}
		}
		// X lives at TARGET: ORIGIN 1 reaches it only with another
		// one-sided operation.
		switch col.Op {
		case Get:
			return access.RMARead, true
		case Put:
			return access.RMAWrite, true
		}
		return 0, false
	case Target:
		if atOrigin {
			// TARGET reaches b1 only remotely, which requires b1 to be
			// inside ORIGIN 1's window.
			if !inWindow {
				return 0, false
			}
			switch col.Op {
			case Get:
				return access.RMARead, true
			case Put:
				return access.RMAWrite, true
			}
			return 0, false
		}
		// X is TARGET's own window memory: local accesses always reach
		// it; TARGET's one-sided calls reach it through their local
		// buffer, which overlaps X only in the in-window placement
		// (Fig. 2b's mutual Get).
		switch col.Op {
		case Load:
			return access.LocalRead, true
		case Store:
			return access.LocalWrite, true
		case Get:
			if inWindow {
				return access.RMAWrite, true
			}
		case Put:
			if inWindow {
				return access.RMARead, true
			}
		}
		return 0, false
	case Origin2:
		if atOrigin {
			// ORIGIN 2 reaches b1 only remotely (b1 in ORIGIN 1's
			// window).
			if !inWindow {
				return 0, false
			}
		}
		// Remote access to either side.
		switch col.Op {
		case Get:
			return access.RMARead, true
		case Put:
			return access.RMAWrite, true
		}
		return 0, false
	}
	return 0, false
}

// Compute derives one cell.
func Compute(first Op, col Column) Cell {
	var c Cell
	eval := func(atOrigin, inWindow bool) bool {
		t2, ok := secondOpType(col, atOrigin, inWindow)
		if !ok {
			return false
		}
		return access.Conflicts(firstOpType(first, atOrigin), t2)
	}
	c.InOrigin = eval(true, true)
	c.InTarget = eval(false, true)
	c.OutOrigin = eval(true, false)
	c.OutTarget = eval(false, false)
	return c
}

// Table computes the full figure: Table()[rowIdx][colIdx].
func Table() [][]Cell {
	rows := Rows()
	cols := Columns()
	out := make([][]Cell, len(rows))
	for i, r := range rows {
		out[i] = make([]Cell, len(cols))
		for j, c := range cols {
			out[i][j] = Compute(r, c)
		}
	}
	return out
}

// Write renders the figure as text.
func Write(w io.Writer) {
	cols := Columns()
	fmt.Fprintln(w, "Figure 3: data race situations with 3 processes")
	fmt.Fprintln(w, "(cell: left bit = error at TARGET side, right bit = error at ORIGIN 1 side;")
	fmt.Fprintln(w, " first value: buffers in windows, second: out of windows)")
	fmt.Fprintf(w, "%-8s", "")
	last := Issuer(-1)
	for _, c := range cols {
		label := ""
		if c.Issuer != last {
			label = c.Issuer.String()
			last = c.Issuer
		}
		fmt.Fprintf(w, " %-9s", label)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "")
	for _, c := range cols {
		fmt.Fprintf(w, " %-9s", c.Op)
	}
	fmt.Fprintln(w)
	table := Table()
	for i, r := range Rows() {
		fmt.Fprintf(w, "O1-%-5s", r)
		for j := range cols {
			fmt.Fprintf(w, " %-9s", table[i][j])
		}
		fmt.Fprintln(w)
	}
}
