package oracle

import (
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

func acc(lo, n uint64, tp access.Type, rank int, epoch uint64, line int) access.Access {
	return access.Access{
		Interval: interval.Span(lo, n),
		Type:     tp,
		Rank:     rank,
		Epoch:    epoch,
		Debug:    access.Debug{File: "o.c", Line: line},
	}
}

func TestOverlappingWritesRace(t *testing.T) {
	o := New()
	o.Access(0, acc(0, 16, access.RMAWrite, 1, 0, 1))
	o.Access(0, acc(8, 16, access.RMAWrite, 2, 0, 2))
	if !o.Raced() || o.Len() != 1 {
		t.Fatalf("want exactly one race, got %d", o.Len())
	}
}

func TestCollectsAllRacesNotJustFirst(t *testing.T) {
	o := New()
	o.Access(0, acc(0, 8, access.RMAWrite, 1, 0, 1))
	o.Access(0, acc(100, 8, access.RMAWrite, 1, 0, 2))
	// One incoming access racing with both stored ones.
	o.Access(0, acc(0, 128, access.RMAWrite, 2, 0, 3))
	// And an unrelated later pair.
	o.Access(0, acc(500, 8, access.RMAWrite, 3, 0, 4))
	o.Access(0, acc(500, 8, access.RMARead, 1, 0, 5))
	if o.Len() != 3 {
		t.Fatalf("want 3 distinct races, got %d: %v", o.Len(), o.Keys())
	}
}

func TestDedupByKey(t *testing.T) {
	o := New()
	// The same source line writing adjacent bytes twice against the
	// same conflicting line: one logical race, reported once.
	o.Access(0, acc(0, 8, access.RMAWrite, 1, 0, 1))
	o.Access(0, acc(8, 8, access.RMAWrite, 1, 0, 1))
	o.Access(0, acc(0, 16, access.RMAWrite, 2, 0, 2))
	if o.Len() != 1 {
		t.Fatalf("duplicate pair keys not collapsed: got %d races", o.Len())
	}
}

func TestOrderSensitivityCode1(t *testing.T) {
	// §5.2: Load;MPI_Get is safe, MPI_Get;Load is not.
	safe := New()
	safe.Access(0, acc(0, 8, access.LocalRead, 0, 0, 1))
	safe.Access(0, acc(0, 8, access.RMAWrite, 0, 0, 2)) // origin side of a Get
	if safe.Raced() {
		t.Fatal("Load;Get wrongly flagged")
	}
	racy := New()
	racy.Access(0, acc(0, 8, access.RMAWrite, 0, 0, 2))
	racy.Access(0, acc(0, 8, access.LocalRead, 0, 0, 1))
	if !racy.Raced() {
		t.Fatal("Get;Load not flagged")
	}
}

func TestAccumulateSemantics(t *testing.T) {
	sameOp := New()
	a := acc(0, 8, access.RMAAccum, 1, 0, 1)
	a.AccumOp = access.AccumSum
	b := acc(0, 8, access.RMAAccum, 2, 0, 2)
	b.AccumOp = access.AccumSum
	sameOp.Access(0, a)
	sameOp.Access(0, b)
	if sameOp.Raced() {
		t.Fatal("same-op concurrent accumulates wrongly flagged")
	}
	mixed := New()
	c := b
	c.AccumOp = access.AccumMax
	mixed.Access(0, a)
	mixed.Access(0, c)
	if !mixed.Raced() {
		t.Fatal("mixed-op accumulates not flagged")
	}
}

func TestEpochBoundaryNeverPairs(t *testing.T) {
	o := New()
	o.Access(0, acc(0, 8, access.RMAWrite, 1, 0, 1))
	o.EpochEnd(0)
	o.Access(0, acc(0, 8, access.RMAWrite, 2, 1, 2))
	if o.Raced() {
		t.Fatal("accesses across an epoch boundary paired")
	}
	// Even with equal (buggy) epoch stamps: the structural per-epoch
	// list protects the verdict.
	o2 := New()
	o2.Access(0, acc(0, 8, access.RMAWrite, 1, 0, 1))
	o2.EpochEnd(0)
	o2.Access(0, acc(0, 8, access.RMAWrite, 2, 0, 2))
	if o2.Raced() {
		t.Fatal("stale epoch stamp paired across a boundary")
	}
}

func TestReleaseRetiresRank(t *testing.T) {
	o := New()
	o.Access(1, acc(0, 8, access.RMAWrite, 0, 0, 1))
	o.Release(1, 0)
	o.Access(1, acc(0, 8, access.RMAWrite, 2, 0, 2))
	if o.Raced() {
		t.Fatal("released access still paired")
	}
	// A different rank's accesses survive the release.
	o.Access(1, acc(0, 8, access.RMAWrite, 3, 0, 3))
	if !o.Raced() {
		t.Fatal("unreleased pair missed")
	}
}

func TestOwnersAreIndependent(t *testing.T) {
	o := New()
	o.Access(0, acc(0, 8, access.RMAWrite, 1, 0, 1))
	o.Access(1, acc(0, 8, access.RMAWrite, 2, 0, 2))
	if o.Raced() {
		t.Fatal("accesses at different owners paired")
	}
}

func TestVerdictKeysMatchProductionDedup(t *testing.T) {
	o := New()
	s := acc(0, 16, access.RMAWrite, 1, 0, 1)
	c := acc(8, 8, access.RMAWrite, 2, 0, 2)
	o.Access(0, s)
	o.Access(0, c)
	want := detector.DedupKey(&detector.Race{Prev: s, Cur: c})
	if !o.Has(want) {
		t.Fatalf("oracle key set %v lacks production dedup key %v", o.Keys(), want)
	}
	// And a fragment-narrowed production verdict still matches.
	frag := s
	frag.Interval = interval.Span(8, 8)
	if !o.Has(detector.DedupKey(&detector.Race{Prev: frag, Cur: c})) {
		t.Fatal("fragment-narrowed verdict key not in oracle set")
	}
}
