// Package oracle is the deliberately naive reference race detector the
// differential fuzzer measures every production configuration against.
//
// It is the brute-force spelling of the paper's semantics with none of
// the paper's machinery: one flat per-(owner, window) access list —
// segregated into epochs by EpochEnd, exactly the "memory accesses that
// are contained within each epoch" scope of §2.2 — and an O(n) pairwise
// scan of access.Races on every insertion. No BST, no fragmentation, no
// merging, no batching, no sharding: nothing the contribution adds is
// in the trusted base, so any verdict divergence between the oracle and
// a production configuration implicates the production machinery (or,
// symmetrically, this spelling of the spec — either way a bug worth a
// minimised reproducer).
//
// Unlike the production analyzers, which abort at the first race like
// MPI_Abort does, the oracle records every racing pair and keeps going.
// Its result is the complete verdict set keyed by detector.RaceKey, so
// a subject that stops at its first race can be checked with "did the
// subject race iff the oracle found anything, and is the subject's pair
// in the oracle's set" — which is robust against the subject visiting
// pairs in a different (schedule-, batch- or shard-dependent) order.
package oracle

import (
	"fmt"
	"io"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
	"rmarace/internal/trace"
)

// Oracle is the reference detector for one window across all owners.
// It is not safe for concurrent use.
type Oracle struct {
	stored map[int][]access.Access // per owner, current epoch only
	races  map[detector.RaceKey]detector.Race
	order  []detector.RaceKey
	events int
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{
		stored: make(map[int][]access.Access),
		races:  make(map[detector.RaceKey]detector.Race),
	}
}

// Access records one access at owner's analyzer, first checking it
// pairwise against every access stored there. All races are collected;
// the access is stored regardless (the program under test is assumed to
// keep running, which is what lets one run yield the full verdict set).
func (o *Oracle) Access(owner int, a access.Access) {
	o.events++
	for _, s := range o.stored[owner] {
		if access.Races(s, a) {
			key := detector.PairKey(s, a)
			if _, dup := o.races[key]; !dup {
				o.races[key] = detector.Race{Prev: s, Cur: a,
					Prov: &detector.Provenance{Owner: owner, Shard: -1}}
				o.order = append(o.order, key)
			}
		}
	}
	o.stored[owner] = append(o.stored[owner], a)
}

// EpochEnd completes owner's epoch: the per-epoch list is dropped, so
// accesses across the boundary can never pair even if a buggy producer
// stamps them with equal epoch numbers.
func (o *Oracle) EpochEnd(owner int) {
	o.stored[owner] = o.stored[owner][:0]
}

// Release retires every remote one-sided access at owner's analyzer —
// the effect of an exclusive MPI_Win_unlock. The per-target lock
// grants in FIFO order, so every lock session that completed before
// the unlock — the releasing origin's own and every earlier holder's,
// shared included — is ordered before every later holder's session.
// Only the owner's accesses (its origin-side buffers and
// unsynchronised local loads/stores) are never lock-ordered and stay
// live; which rank performed the unlock does not change what retires,
// so the rank argument is kept only for the trace-record interface.
func (o *Oracle) Release(owner, rank int) {
	_ = rank
	kept := o.stored[owner][:0]
	for _, s := range o.stored[owner] {
		if s.Rank == owner || !s.Type.IsRMA() {
			kept = append(kept, s)
		}
	}
	o.stored[owner] = kept
}

// Complete retires the locally completed span of rank's one-sided
// accesses at owner's analyzer — the effect of an MPI_Wait/MPI_Waitall
// on a request-based operation whose origin buffer is iv. Completion
// orders the request's origin-side accesses before everything after
// the wait on the issuing rank, so their stored one-sided fragments
// are trimmed to the part outside iv (a fragment extending past the
// completed buffer keeps its uncompleted remainder). Only rank's own
// one-sided accesses retire; local accesses and other ranks' accesses
// are untouched, and the target side of the request is not
// synchronised at all.
func (o *Oracle) Complete(owner, rank int, iv interval.Interval) {
	kept := o.stored[owner][:0]
	for _, s := range o.stored[owner] {
		if s.Rank != rank || !s.Type.IsRMA() || !s.Interval.Intersects(iv) {
			kept = append(kept, s)
			continue
		}
		left, okL, right, okR := s.Interval.Subtract(iv)
		if okL {
			ls := s
			ls.Interval = left
			kept = append(kept, ls)
		}
		if okR {
			rs := s
			rs.Interval = right
			kept = append(kept, rs)
		}
	}
	o.stored[owner] = kept
}

// Events returns the number of accesses processed.
func (o *Oracle) Events() int { return o.events }

// Raced reports whether any race was found.
func (o *Oracle) Raced() bool { return len(o.races) > 0 }

// Len returns the number of distinct races found.
func (o *Oracle) Len() int { return len(o.races) }

// Has reports whether the verdict set contains the given pair.
func (o *Oracle) Has(key detector.RaceKey) bool {
	_, ok := o.races[key]
	return ok
}

// Keys returns the verdict set in discovery order.
func (o *Oracle) Keys() []detector.RaceKey {
	out := make([]detector.RaceKey, len(o.order))
	copy(out, o.order)
	return out
}

// Race returns the representative verdict for a key.
func (o *Oracle) Race(key detector.RaceKey) (detector.Race, bool) {
	r, ok := o.races[key]
	return r, ok
}

// SameVerdicts reports whether two oracles agree on their complete
// verdict sets (used to assert schedule independence: permuting a
// program's interleaving must not change what races).
func (o *Oracle) SameVerdicts(p *Oracle) bool {
	if len(o.races) != len(p.races) {
		return false
	}
	for k := range o.races {
		if _, ok := p.races[k]; !ok {
			return false
		}
	}
	return true
}

// Feed processes one trace record. Unknown kinds are an error.
func (o *Oracle) Feed(rec trace.Record) error {
	switch rec.Kind {
	case "access":
		ev, err := rec.Event()
		if err != nil {
			return err
		}
		o.Access(rec.Owner, ev.Acc)
	case "epoch_end":
		o.EpochEnd(rec.Owner)
	case "release":
		o.Release(rec.Owner, rec.Rank)
	case "complete":
		o.Complete(rec.Owner, rec.Rank, interval.New(rec.Lo, rec.Hi))
	default:
		return fmt.Errorf("oracle: unknown record kind %q", rec.Kind)
	}
	return nil
}

// FromTrace runs the oracle over a whole trace stream.
func FromTrace(r *trace.Reader) (*Oracle, error) {
	o := New()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return o, nil
		}
		if err != nil {
			return nil, err
		}
		if err := o.Feed(rec); err != nil {
			return nil, err
		}
	}
}

// FromRecords runs the oracle over in-memory records.
func FromRecords(recs []trace.Record) (*Oracle, error) {
	o := New()
	for _, rec := range recs {
		if err := o.Feed(rec); err != nil {
			return nil, err
		}
	}
	return o, nil
}
