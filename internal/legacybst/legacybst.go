// Package legacybst reimplements the memory-access storage of the
// original RMA-Analyzer (Aitkaci et al., EuroMPI'21) as described in
// §3 and §4.1 of the paper, including its two published defects:
//
//   - Accesses are stored one node per access, never fragmented or
//     merged, so the tree grows linearly with the number of accesses
//     (Code 2 / Fig. 8b: 5,002 nodes for a 1,000-iteration loop).
//
//   - The search for intersecting accesses navigates the tree by
//     comparing interval *lower bounds only* and therefore inspects
//     only the nodes on the descent path. A wide interval stored in a
//     subtree the descent does not enter is missed, which is the false
//     negative of Code 1 / Fig. 5a.
//
// The C++ original stores accesses in a std::multiset (a balanced
// red-black tree); this implementation balances with the same AVL
// scheme as package itree so that size, not pathological shape, is the
// performance variable — exactly the comparison the paper makes.
package legacybst

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
)

type node struct {
	acc         access.Access
	left, right *node
	height      int
}

// Tree is the legacy multiset BST keyed by interval lower bound. The
// zero value is an empty tree ready to use.
type Tree struct {
	root *node
	size int
}

// Len returns the number of stored accesses.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (0 when empty).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) update() { n.height = 1 + max(height(n.left), height(n.right)) }

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func balance(n *node) *node {
	n.update()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// less orders nodes by lower bound only — the legacy comparison the
// paper identifies as the source of missed intersections. Ties go
// right, like std::multiset insertion order for equivalent keys.
func less(a, b access.Access) bool { return a.Lo < b.Lo }

// Insert adds acc as a new node. Nothing is fragmented or merged.
func (t *Tree) Insert(acc access.Access) {
	t.root = insert(t.root, acc)
	t.size++
}

func insert(n *node, acc access.Access) *node {
	if n == nil {
		nn := &node{acc: acc}
		nn.update()
		return nn
	}
	if less(acc, n.acc) {
		n.left = insert(n.left, acc)
	} else {
		n.right = insert(n.right, acc)
	}
	return balance(n)
}

// SearchIntersecting returns the stored accesses intersecting iv that
// the legacy algorithm actually finds: those on the lower-bound descent
// path of iv.Lo. Accesses intersecting iv that live off the path are
// missed — deliberately, to reproduce RMA-Analyzer's behaviour.
func (t *Tree) SearchIntersecting(iv interval.Interval) []access.Access {
	var out []access.Access
	n := t.root
	for n != nil {
		if n.acc.Intersects(iv) {
			out = append(out, n.acc)
		}
		if iv.Lo < n.acc.Lo {
			n = n.left
		} else {
			n = n.right
		}
	}
	return out
}

// InOrder calls fn for every stored access in key order, stopping early
// if fn returns false.
func (t *Tree) InOrder(fn func(access.Access) bool) {
	inOrder(t.root, fn)
}

func inOrder(n *node, fn func(access.Access) bool) bool {
	if n == nil {
		return true
	}
	return inOrder(n.left, fn) && fn(n.acc) && inOrder(n.right, fn)
}

// Items returns all stored accesses in key order.
func (t *Tree) Items() []access.Access {
	out := make([]access.Access, 0, t.size)
	t.InOrder(func(a access.Access) bool {
		out = append(out, a)
		return true
	})
	return out
}

// Clear empties the tree, as happens at the end of an epoch.
func (t *Tree) Clear() {
	t.root = nil
	t.size = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
