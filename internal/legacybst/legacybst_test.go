package legacybst

import (
	"math/rand"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func acc(lo, hi uint64, t access.Type) access.Access {
	return access.Access{Interval: interval.New(lo, hi), Type: t}
}

func TestEmpty(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("zero tree not empty")
	}
	if got := tr.SearchIntersecting(interval.New(0, 10)); len(got) != 0 {
		t.Fatalf("search on empty tree = %v", got)
	}
}

func TestInsertGrowsLinearly(t *testing.T) {
	// The legacy defect of Code 2 (Fig. 8b): every access is a node,
	// even when adjacent and identically typed.
	var tr Tree
	for i := 0; i < 1000; i++ {
		tr.Insert(acc(uint64(i), uint64(i), access.RMAWrite))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000 (one node per access)", tr.Len())
	}
}

// TestPaperFigure5aMiss reproduces the false negative of Code 1:
// Load(4); MPI_Put(2,12); Store(7). The Put's origin-side interval
// [2...12] is keyed left of [4]; the lower-bound search for [7] goes
// right at [4] and never sees it.
func TestPaperFigure5aMiss(t *testing.T) {
	var tr Tree
	tr.Insert(acc(4, 4, access.LocalRead))
	tr.Insert(acc(2, 12, access.RMARead))

	got := tr.SearchIntersecting(interval.At(7))
	if len(got) != 0 {
		t.Fatalf("legacy search found %v; the defect this package reproduces requires a miss", got)
	}
}

func TestSearchFindsOnPathIntersections(t *testing.T) {
	// With the wide interval at the root the descent path does include
	// it, so the race IS found — this is why the two-operation
	// microbenchmarks produce no legacy false negatives (Table 3).
	var tr Tree
	tr.Insert(acc(2, 12, access.RMARead))
	got := tr.SearchIntersecting(interval.At(7))
	if len(got) != 1 || got[0].Interval != interval.New(2, 12) {
		t.Fatalf("search = %v", got)
	}
}

func TestSearchEqualLowerBounds(t *testing.T) {
	var tr Tree
	tr.Insert(acc(5, 10, access.RMAWrite))
	tr.Insert(acc(5, 20, access.RMAWrite))
	got := tr.SearchIntersecting(interval.New(5, 6))
	if len(got) != 2 {
		t.Fatalf("search with duplicate keys = %v", got)
	}
}

func TestClear(t *testing.T) {
	var tr Tree
	tr.Insert(acc(0, 1, access.LocalRead))
	tr.Clear()
	if tr.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestItemsOrdered(t *testing.T) {
	var tr Tree
	for _, lo := range []uint64{9, 3, 7, 1, 5} {
		tr.Insert(acc(lo, lo+1, access.LocalRead))
	}
	items := tr.Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].Lo > items[i].Lo {
			t.Fatalf("items out of order: %v", items)
		}
	}
}

func TestBalancedUnderSortedInsertion(t *testing.T) {
	var tr Tree
	const n = 1 << 12
	for i := 0; i < n; i++ {
		tr.Insert(acc(uint64(i), uint64(i), access.LocalRead))
	}
	if h := tr.Height(); h > 24 {
		t.Fatalf("height %d after sorted insertion; multiset emulation must stay balanced", h)
	}
}

// TestSearchIsSubsetOfTruth: the legacy search may miss intersections
// but must never invent them, and everything it returns must be on the
// lower-bound descent path.
func TestSearchIsSubsetOfTruth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var tr Tree
	var all []access.Access
	for i := 0; i < 500; i++ {
		lo := uint64(r.Intn(500))
		a := acc(lo, lo+uint64(r.Intn(30)), access.RMAWrite)
		tr.Insert(a)
		all = append(all, a)

		qlo := uint64(r.Intn(500))
		q := interval.New(qlo, qlo+uint64(r.Intn(30)))
		got := tr.SearchIntersecting(q)
		for _, g := range got {
			if !g.Intersects(q) {
				t.Fatalf("legacy search returned non-intersecting %v for %v", g, q)
			}
		}
		truth := 0
		for _, a := range all {
			if a.Intersects(q) {
				truth++
			}
		}
		if len(got) > truth {
			t.Fatalf("legacy search returned more hits (%d) than exist (%d)", len(got), truth)
		}
	}
}
