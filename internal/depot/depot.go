// Package depot implements a hash-deduplicated, fixed-depth,
// append-only depot of captured call stacks, modelled on
// ThreadSanitizer's StackDepot: each unique stack is rendered and
// stored exactly once and referenced everywhere else by a dense uint32
// id. Stack capture behind rma.Config.CaptureStacks then costs O(1)
// memory per unique call site instead of one rendered string per
// access, and an access.Access carries a 4-byte id instead of a
// pointer to its own copy of the frames.
//
// The depot is append-only by design: ids stay valid for the life of
// the process, so race reports, flight-recorder snapshots and run
// reports can resolve them long after the recording session is gone —
// the property the multi-tenant daemon of the roadmap relies on.
package depot

import (
	"fmt"
	"hash/maphash"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// ID references one interned stack; the zero ID means "no stack
// captured" and resolves to the empty string.
type ID uint32

// MaxDepth is the fixed capture depth: program counters beyond it are
// dropped before hashing, so two captures that agree on their MaxDepth
// innermost frames intern to the same id.
const MaxDepth = 16

// entry is one interned stack: the (truncated) program counters it was
// captured from, used for exact equality under hash collisions, and
// the rendered human-readable frames.
type entry struct {
	pcs  []uintptr
	text string
}

// Depot is one stack depot. The zero value is not usable; call New.
// All methods are safe for concurrent use: lookups of already-interned
// stacks take a read lock only, inserts of new stacks take the write
// lock — bounded by the number of unique call sites, not accesses.
type Depot struct {
	mu     sync.RWMutex
	byHash map[uint64][]ID
	ents   []entry

	bytes  atomic.Int64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// seed is the per-process hash seed shared by every depot.
var seed = maphash.MakeSeed()

// New returns an empty depot.
func New() *Depot {
	return &Depot{byHash: make(map[uint64][]ID)}
}

// hashPCs hashes a (already truncated) pc slice.
func hashPCs(pcs []uintptr) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	for _, pc := range pcs {
		var b [8]byte
		for i := range b {
			b[i] = byte(pc >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func pcsEqual(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Insert interns the call stack identified by pcs, rendering it with
// render only when the stack has not been seen before. pcs is
// truncated to MaxDepth; an empty slice returns 0. The pcs slice is
// copied on insert, so callers may reuse their capture buffer.
func (d *Depot) Insert(pcs []uintptr, render func(pcs []uintptr) string) ID {
	if len(pcs) == 0 {
		return 0
	}
	if len(pcs) > MaxDepth {
		pcs = pcs[:MaxDepth]
	}
	h := hashPCs(pcs)

	d.mu.RLock()
	for _, id := range d.byHash[h] {
		if pcsEqual(d.ents[id-1].pcs, pcs) {
			d.mu.RUnlock()
			d.hits.Add(1)
			return id
		}
	}
	d.mu.RUnlock()

	text := render(pcs)
	own := make([]uintptr, len(pcs))
	copy(own, pcs)

	d.mu.Lock()
	// Double-check: another goroutine may have interned the same stack
	// between the read unlock and here.
	for _, id := range d.byHash[h] {
		if pcsEqual(d.ents[id-1].pcs, own) {
			d.mu.Unlock()
			d.hits.Add(1)
			return id
		}
	}
	d.ents = append(d.ents, entry{pcs: own, text: text})
	id := ID(len(d.ents))
	d.byHash[h] = append(d.byHash[h], id)
	d.mu.Unlock()

	d.misses.Add(1)
	d.bytes.Add(int64(len(text)) + int64(8*len(own)))
	return id
}

// renderFrames renders pcs in the repro's report format — innermost
// first, "func (file:line)" joined by " <- " — matching what a
// PMPI-based tool's backtraces look like.
func renderFrames(pcs []uintptr) string {
	frames := runtime.CallersFrames(pcs)
	var b strings.Builder
	for {
		f, more := frames.Next()
		if f.Function != "" {
			if b.Len() > 0 {
				b.WriteString(" <- ")
			}
			fmt.Fprintf(&b, "%s (%s:%d)", f.Function, filepath.Base(f.File), f.Line)
		}
		if !more {
			break
		}
	}
	return b.String()
}

// Capture interns the call stack identified by the given program
// counters (as returned by runtime.Callers), rendering the frames on
// first sight only.
func (d *Depot) Capture(pcs []uintptr) ID { return d.Insert(pcs, renderFrames) }

// Resolve returns the rendered frames for id, or "" for the zero id.
// Unknown ids (from a different process, or a corrupted report) also
// resolve to "" rather than panicking.
func (d *Depot) Resolve(id ID) string {
	if id == 0 {
		return ""
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) > len(d.ents) {
		return ""
	}
	return d.ents[id-1].text
}

// Len returns the number of unique interned stacks.
func (d *Depot) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ents)
}

// Bytes returns the retained payload bytes: rendered text plus stored
// program counters, summed over unique stacks.
func (d *Depot) Bytes() int64 { return d.bytes.Load() }

// Stats is a point-in-time snapshot of the depot's occupancy.
type Stats struct {
	// Entries is the number of unique stacks interned.
	Entries int
	// Bytes is the retained payload (rendered text + pcs).
	Bytes int64
	// Hits counts Insert calls resolved to an existing id.
	Hits uint64
	// Misses counts Insert calls that interned a new stack.
	Misses uint64
}

// Stats snapshots the depot.
func (d *Depot) Stats() Stats {
	return Stats{
		Entries: d.Len(),
		Bytes:   d.Bytes(),
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
	}
}

// Global is the process-wide depot every session shares, the way
// TSan's depot is process-global: stacks deduplicate across windows,
// sessions and (in the future daemon) tenants.
var Global = New()

// Capture interns pcs into the process-wide depot.
func Capture(pcs []uintptr) ID { return Global.Capture(pcs) }

// Resolve resolves id against the process-wide depot.
func Resolve(id ID) string { return Global.Resolve(id) }

// GlobalStats snapshots the process-wide depot.
func GlobalStats() Stats { return Global.Stats() }
