package depot

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func fakeRender(pcs []uintptr) string { return fmt.Sprintf("stack%v", pcs) }

func TestDedup(t *testing.T) {
	d := New()
	a := d.Insert([]uintptr{1, 2, 3}, fakeRender)
	b := d.Insert([]uintptr{1, 2, 3}, fakeRender)
	c := d.Insert([]uintptr{1, 2, 4}, fakeRender)
	if a == 0 || a != b {
		t.Fatalf("identical stacks interned as %d and %d", a, b)
	}
	if c == a {
		t.Fatal("distinct stacks shared an id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.Bytes <= 0 {
		t.Fatal("retained bytes not accounted")
	}
	if d.Resolve(a) != fakeRender([]uintptr{1, 2, 3}) {
		t.Fatalf("Resolve(%d) = %q", a, d.Resolve(a))
	}
}

func TestZeroAndUnknownIDs(t *testing.T) {
	d := New()
	if d.Resolve(0) != "" {
		t.Fatal("zero id must resolve empty")
	}
	if d.Resolve(99) != "" {
		t.Fatal("unknown id must resolve empty, not panic")
	}
	if id := d.Insert(nil, fakeRender); id != 0 {
		t.Fatalf("empty capture interned as %d", id)
	}
}

// Captures agreeing on their MaxDepth innermost frames intern to one
// id: the depth is fixed, deeper callers do not fragment the depot.
func TestFixedDepth(t *testing.T) {
	d := New()
	deep := make([]uintptr, MaxDepth+8)
	for i := range deep {
		deep[i] = uintptr(100 + i)
	}
	a := d.Insert(deep, fakeRender)
	b := d.Insert(deep[:MaxDepth], fakeRender)
	deeper := append(append([]uintptr{}, deep...), 999)
	c := d.Insert(deeper[:MaxDepth+1], fakeRender)
	if a != b || a != c {
		t.Fatalf("depth-truncated stacks interned as %d, %d, %d", a, b, c)
	}
}

// The pcs buffer may be reused by the caller after Insert returns.
func TestInsertCopiesPCs(t *testing.T) {
	d := New()
	buf := []uintptr{7, 8, 9}
	id := d.Insert(buf, fakeRender)
	buf[0] = 1000
	if got := d.Insert([]uintptr{7, 8, 9}, fakeRender); got != id {
		t.Fatalf("mutating the caller buffer changed the interned stack: %d vs %d", got, id)
	}
}

func TestRealCapture(t *testing.T) {
	var pcs [MaxDepth]uintptr
	n := runtime.Callers(1, pcs[:])
	id := Capture(pcs[:n])
	if id == 0 {
		t.Fatal("real capture returned the zero id")
	}
	text := Resolve(id)
	if text == "" || !contains(text, "TestRealCapture") {
		t.Fatalf("rendered frames %q miss the capturing function", text)
	}
	if Capture(pcs[:n]) != id {
		t.Fatal("re-capturing the same pcs allocated a new id")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Concurrent inserts of overlapping stack sets must agree on ids and
// never lose an entry (go test -race guards the locking).
func TestConcurrentInsert(t *testing.T) {
	d := New()
	const workers, sites = 8, 32
	ids := make([][sites]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				site := i % sites
				ids[w][site] = d.Insert([]uintptr{uintptr(site), uintptr(site * 7)}, fakeRender)
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != sites {
		t.Fatalf("Len = %d, want %d unique sites", d.Len(), sites)
	}
	for w := 1; w < workers; w++ {
		if ids[w] != ids[0] {
			t.Fatalf("worker %d saw different ids", w)
		}
	}
}
