// Package shard partitions the simulated address space into K
// contiguous interval shards for the sharded analysis layer.
//
// The space is divided into fixed power-of-two granules (DefaultGranule
// bytes); granule g is owned by shard g mod K, so each shard owns a
// striped union of contiguous granule-sized intervals. Every address
// maps to exactly one shard and an access that spans a granule boundary
// is split at the boundary, piece by piece, each piece landing wholly
// inside one shard.
//
// The split preserves race verdicts: the stored intervals are pairwise
// disjoint (the contribution's fragmentation invariant) and the race
// predicate is evaluated per overlap, so any overlap between two
// accesses lies inside a single granule and is seen — whole — by that
// granule's shard, in the same arrival order as the unsharded analyzer
// would see it. Splitting only ever divides an access at addresses
// where no other access's overlap is cut, hence verdicts are identical
// at every shard count (see the equivalence tests in internal/core).
package shard

import (
	"fmt"
	"math/bits"
)

// DefaultGranule is the shard granule in bytes when none is given: one
// 4 KiB page. Large enough that merged runs are rarely cut (node counts
// stay comparable to the unsharded analyzer), small enough that a
// window of a few hundred KiB still spreads over every shard.
const DefaultGranule = 4096

// Map assigns addresses to shards. The zero value is a single-shard map
// (everything in shard 0).
type Map struct {
	shards int
	shift  uint
	mask   uint64
}

// New builds a map of shards shards with granule-byte granules. Both
// must be powers of two (shards ≥ 1, granule ≥ 1); granule 0 selects
// DefaultGranule.
func New(shards, granule int) (Map, error) {
	if granule == 0 {
		granule = DefaultGranule
	}
	if shards < 1 || bits.OnesCount(uint(shards)) != 1 {
		return Map{}, fmt.Errorf("shard: shard count %d is not a power of two", shards)
	}
	if granule < 1 || bits.OnesCount(uint(granule)) != 1 {
		return Map{}, fmt.Errorf("shard: granule %d is not a power of two", granule)
	}
	return Map{
		shards: shards,
		shift:  uint(bits.TrailingZeros(uint(granule))),
		mask:   uint64(shards - 1),
	}, nil
}

// MustNew is New, panicking on invalid arguments (for configuration
// paths that validated them already).
func MustNew(shards, granule int) Map {
	m, err := New(shards, granule)
	if err != nil {
		panic(err)
	}
	return m
}

// Shards returns the shard count (1 for the zero value).
func (m Map) Shards() int {
	if m.shards == 0 {
		return 1
	}
	return m.shards
}

// Granule returns the granule size in bytes.
func (m Map) Granule() int { return 1 << m.shift }

// Of returns the shard owning addr.
func (m Map) Of(addr uint64) int { return int((addr >> m.shift) & m.mask) }

// Split calls emit once per maximal granule-contained piece of
// [lo, hi], in ascending address order, with the owning shard. For a
// single-shard map (or a span inside one granule) that is exactly one
// call covering the whole interval.
func (m Map) Split(lo, hi uint64, emit func(shard int, lo, hi uint64)) {
	if m.shards <= 1 {
		emit(0, lo, hi)
		return
	}
	granuleMask := uint64(1)<<m.shift - 1
	for {
		end := lo | granuleMask // last address of lo's granule
		if end >= hi {
			emit(m.Of(lo), lo, hi)
			return
		}
		emit(m.Of(lo), lo, end)
		lo = end + 1
	}
}

// Pieces returns how many pieces Split would emit for [lo, hi]: the
// number of granules the interval touches (1 for single-shard maps).
func (m Map) Pieces(lo, hi uint64) int {
	if m.shards <= 1 {
		return 1
	}
	return int((hi >> m.shift) - (lo >> m.shift) + 1)
}
