package shard

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ shards, granule int }{
		{0, 64}, {3, 64}, {-4, 64}, {4, 3}, {4, -8},
	} {
		if _, err := New(bad.shards, bad.granule); err == nil {
			t.Errorf("New(%d, %d) accepted", bad.shards, bad.granule)
		}
	}
	m, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Granule() != DefaultGranule || m.Shards() != 8 {
		t.Errorf("default granule map = %d shards × %d bytes", m.Shards(), m.Granule())
	}
}

func TestZeroValueSingleShard(t *testing.T) {
	var m Map
	if m.Shards() != 1 {
		t.Fatalf("zero value has %d shards", m.Shards())
	}
	calls := 0
	m.Split(10, 1<<40, func(s int, lo, hi uint64) {
		calls++
		if s != 0 || lo != 10 || hi != 1<<40 {
			t.Errorf("zero-value split = (%d, %d, %d)", s, lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("zero-value split emitted %d pieces", calls)
	}
}

func TestSplitCoversExactlyAndStaysInShard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		shards := 1 << rng.Intn(5)   // 1..16
		granule := 1 << (3 + rng.Intn(6)) // 8..256
		m := MustNew(shards, granule)
		lo := rng.Uint64() % (1 << 20)
		hi := lo + rng.Uint64()%(4*uint64(granule))
		next := lo
		pieces := 0
		m.Split(lo, hi, func(s int, plo, phi uint64) {
			pieces++
			if plo != next {
				t.Fatalf("gap: piece starts at %d, want %d", plo, next)
			}
			if phi < plo || phi > hi {
				t.Fatalf("piece [%d,%d] outside [%d,%d]", plo, phi, lo, hi)
			}
			if m.Of(plo) != s || m.Of(phi) != s {
				t.Fatalf("piece [%d,%d] not wholly in shard %d", plo, phi, s)
			}
			if shards > 1 && plo/uint64(granule) != phi/uint64(granule) {
				// Multi-shard pieces must sit inside one granule; a
				// single-shard map never splits.
				t.Fatalf("piece [%d,%d] crosses a granule boundary", plo, phi)
			}
			next = phi + 1
		})
		if next != hi+1 {
			t.Fatalf("split stopped at %d, want %d", next, hi+1)
		}
		if want := m.Pieces(lo, hi); pieces != want {
			t.Fatalf("Pieces(%d,%d) = %d, split emitted %d", lo, hi, want, pieces)
		}
	}
}

func TestSplitAtAddressSpaceTop(t *testing.T) {
	m := MustNew(4, 64)
	top := uint64(math.MaxUint64)
	var got []uint64
	m.Split(top-100, top, func(s int, lo, hi uint64) { got = append(got, lo, hi) })
	if len(got) == 0 || got[len(got)-1] != top {
		t.Fatalf("top-of-space split = %v", got)
	}
}

func TestConsecutiveGranulesRoundRobin(t *testing.T) {
	m := MustNew(4, 64)
	for g := 0; g < 16; g++ {
		if got, want := m.Of(uint64(g)*64), g%4; got != want {
			t.Errorf("granule %d in shard %d, want %d", g, got, want)
		}
	}
}
