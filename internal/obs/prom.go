package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promKind maps a report kind string to the Prometheus metric type.
// High-water marks render as gauges (Prometheus has no native max
// type); histograms are real Prometheus histograms.
func promKind(kind string) string {
	switch kind {
	case KindCounter.String():
		return "counter"
	case KindHistogram.String():
		return "histogram"
	}
	return "gauge"
}

// labelEscaper escapes a label VALUE per the Prometheus text
// exposition spec (version 0.0.4): backslash, double-quote and
// line-feed must be backslash-escaped inside the quoted value. Label
// values can be arbitrary request-supplied strings — a tenant name
// arrives straight off the X-Tenant header — so an unescaped `"` or
// newline would corrupt every scrape of the series.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text: backslash and line-feed only (quotes
// are legal there).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promLabel renders a series point's label value: the resolved name
// (escaped) when the snapshot carries one, the numeric label
// otherwise.
func promLabel(pt SeriesPoint) string {
	if pt.LabelName != "" {
		return labelEscaper.Replace(pt.LabelName)
	}
	return strconv.Itoa(pt.Label)
}

// bucketLe returns the inclusive Prometheus upper bound of the
// power-of-two bucket whose lower bound is low: bucket 0 (low 0) holds
// v <= 0, bucket i holds [2^(i-1), 2^i), so le = 2^i - 1 = 2*low - 1.
func bucketLe(low int64) int64 {
	if low <= 0 {
		return 0
	}
	return 2*low - 1
}

// WriteProm renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). It is the single renderer behind
// both the live telemetry server's /metrics endpoint and
// `rmarace stats -format prom`, so a saved report scrapes identically
// to a live run. Every metric is prefixed rmarace_ and labelled with
// its dimension (rank/shard/target).
func WriteProm(w io.Writer, snaps []MetricSnapshot) error {
	for _, ms := range snaps {
		name := "rmarace_" + ms.Name
		dim := ms.LabelDim
		if dim == "" {
			dim = "label"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s rmarace metric %s (per %s)\n# TYPE %s %s\n",
			name, helpEscaper.Replace(ms.Name), helpEscaper.Replace(dim), name, promKind(ms.Kind)); err != nil {
			return err
		}
		for _, pt := range ms.Series {
			if ms.Kind == KindHistogram.String() {
				if err := writePromHist(w, name, dim, pt); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, dim, promLabel(pt), pt.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist renders one label's histogram: cumulative _bucket
// series (the report holds per-bucket counts in ascending bucket
// order), then _sum and _count. The per-label max, which Prometheus
// histograms cannot express, rides along as a companion gauge.
func writePromHist(w io.Writer, name, dim string, pt SeriesPoint) error {
	label := promLabel(pt)
	var cum int64
	for _, b := range pt.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"%d\"} %d\n",
			name, dim, label, bucketLe(b.Low), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", name, dim, label, pt.Value); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %d\n%s_count{%s=\"%s\"} %d\n",
		name, dim, label, pt.Sum, name, dim, label, pt.Value); err != nil {
		return err
	}
	if pt.Max != 0 {
		if _, err := fmt.Fprintf(w, "%s_max{%s=\"%s\"} %d\n", name, dim, label, pt.Max); err != nil {
			return err
		}
	}
	return nil
}
